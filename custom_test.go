package mbavf

import (
	"math"
	"testing"
)

const saxpyAsm = `
; y[i] = a*x[i] + y[i], a in s2 (float bits); s0=&x, s1=&y
v_mov   v0, tid
v_shl   v0, v0, 2
v_add   v1, v0, s0
v_load  v2, [v1]        ; x[i]
v_add   v3, v0, s1
v_load  v4, [v3]        ; y[i]
v_mov   v5, s2
v_fmad  v6, v5, v2, v4  ; a*x + y
v_store [v3], v6
s_endpgm
`

func TestCustomWorkloadEndToEnd(t *testing.T) {
	k, err := AssembleKernel("saxpy", saxpyAsm)
	if err != nil {
		t.Fatal(err)
	}
	if k.Name() != "saxpy" {
		t.Errorf("name = %q", k.Name())
	}
	if k.Disassemble() == "" {
		t.Error("empty disassembly")
	}
	c, err := NewCustom()
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	x := make([]uint32, n)
	y := make([]uint32, n)
	for i := range x {
		x[i] = fbits(float32(i))
		y[i] = fbits(float32(2 * i))
	}
	xAddr := c.Input(x)
	yAddr := c.Input(y)
	c.MarkOutput(yAddr, n)
	c.Dispatch(k, n/16, xAddr, yAddr, fbits(3))
	run, err := c.Finish()
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.ReadWords(yAddr, n)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		want := float32(3)*float32(i) + float32(2*i)
		if ffrom(v) != want {
			t.Fatalf("y[%d] = %v, want %v", i, ffrom(v), want)
		}
	}
	// The custom run is analyzable like any bundled workload.
	avf, err := run.L1AVF(Parity, Interleaving{Style: StyleLogical, Factor: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if avf.Groups == 0 {
		t.Error("no fault groups analyzed")
	}
	vavf, err := run.VGPRAVF(Parity, Interleaving{Style: StyleInterThread, Factor: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if vavf.SBAVF <= 0 {
		t.Error("custom kernel should produce VGPR ACE time")
	}
}

func TestCustomErrorPropagation(t *testing.T) {
	c, err := NewCustom()
	if err != nil {
		t.Fatal(err)
	}
	c.Dispatch(Kernel{}, 1) // zero kernel: recorded error
	c.Input([]uint32{1})    // no-op after error
	if _, err := c.Finish(); err == nil {
		t.Error("Finish should surface the recorded error")
	}
}

func TestCustomUseAfterFinish(t *testing.T) {
	k, err := AssembleKernel("noop", "v_mov v0, 1")
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCustom()
	if err != nil {
		t.Fatal(err)
	}
	c.Output(1)
	c.Dispatch(k, 1)
	if _, err := c.Finish(); err != nil {
		t.Fatal(err)
	}
	c.Dispatch(k, 1)
	if _, err := c.Finish(); err == nil {
		t.Error("use after Finish should error")
	}
}

func TestAssembleKernelError(t *testing.T) {
	if _, err := AssembleKernel("bad", "v_frobnicate v0"); err == nil {
		t.Error("bad source should fail")
	}
}

func fbits(f float32) uint32 { return math.Float32bits(f) }
func ffrom(b uint32) float32 { return math.Float32frombits(b) }
