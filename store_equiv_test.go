package mbavf

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"mbavf/internal/store"
)

// storedMinife records the shared minife run into a fresh store and
// loads it back — the rehydration path every equivalence check exercises.
func storedMinife(t *testing.T) (direct, stored *Run) {
	t.Helper()
	direct = minife(t)
	rs, err := OpenRunStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Save("minife", direct); err != nil {
		t.Fatal(err)
	}
	stored, err = rs.Load("minife")
	if err != nil {
		t.Fatal(err)
	}
	return direct, stored
}

// TestStoreEquivalence proves the store's core contract: every analysis
// over a store-rehydrated run is bit-identical (==, not tolerance-based)
// to the same analysis over the directly simulated run, across the full
// (structure, scheme, interleaving, factor, mode) matrix of the unified
// query API.
func TestStoreEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full analysis matrix; skipped in -short")
	}
	direct, stored := storedMinife(t)

	if direct.Workload() != stored.Workload() ||
		direct.Cycles() != stored.Cycles() ||
		direct.Instructions() != stored.Instructions() {
		t.Fatalf("metadata differs: direct (%s, %d, %d) vs stored (%s, %d, %d)",
			direct.Workload(), direct.Cycles(), direct.Instructions(),
			stored.Workload(), stored.Cycles(), stored.Instructions())
	}

	for _, st := range Structures() {
		for _, style := range st.Styles() {
			// Analyses are read-only over the shared trackers and graph
			// (the serving layer depends on that), so the matrix fans out.
			t.Run(string(st)+"/"+string(style), func(t *testing.T) {
				t.Parallel()
				factors := []int{1, 2}
				if st == L2 {
					// The L2 analyses dominate the matrix's runtime;
					// factor-1 equivalence is already covered by the other
					// structures, so the largest array checks factor 2 only.
					factors = []int{2}
				}
				for _, factor := range factors {
					il := Interleaving{Style: style, Factor: factor}
					for _, scheme := range Schemes() {
						for _, mode := range []int{1, 4} {
							want, werr := direct.AVF(st, scheme, il, mode)
							got, gerr := stored.AVF(st, scheme, il, mode)
							if (werr == nil) != (gerr == nil) {
								t.Fatalf("%s x%d mode %d: error mismatch: %v vs %v",
									scheme, factor, mode, werr, gerr)
							}
							if want != got {
								t.Errorf("%s x%d mode %d: AVF differs:\n direct %+v\n stored %+v",
									scheme, factor, mode, want, got)
							}
						}
					}
				}
			})
		}
	}
}

// TestStoreEquivalenceSER checks the FIT-weighted roll-up (8 analyses per
// call) and the windowed series stay bit-identical through the store.
func TestStoreEquivalenceSER(t *testing.T) {
	if testing.Short() {
		t.Skip("full analysis matrix; skipped in -short")
	}
	direct, stored := storedMinife(t)
	for _, st := range Structures() {
		il := Interleaving{Style: st.Styles()[0], Factor: 2}
		want, err := direct.SER(st, Parity, il)
		if err != nil {
			t.Fatal(err)
		}
		got, err := stored.SER(st, Parity, il)
		if err != nil {
			t.Fatal(err)
		}
		if want != got {
			t.Errorf("%s SER differs: direct %+v stored %+v", st, want, got)
		}

		ws, err := direct.AVFSeries(st, SECDED, il, 2, 6)
		if err != nil {
			t.Fatal(err)
		}
		gs, err := stored.AVFSeries(st, SECDED, il, 2, 6)
		if err != nil {
			t.Fatal(err)
		}
		if ws.Window != gs.Window || ws.Total != gs.Total || len(ws.Windows) != len(gs.Windows) {
			t.Fatalf("%s series shape differs: direct %+v stored %+v", st, ws, gs)
		}
		for i := range ws.Windows {
			if ws.Windows[i] != gs.Windows[i] {
				t.Errorf("%s series window %d differs: direct %+v stored %+v",
					st, i, ws.Windows[i], gs.Windows[i])
			}
		}
	}
}

// sectionPayloadOffsets walks an artifact's framing (magic, version,
// then (id, uvarint length, payload, crc32) per section) and returns the
// midpoint offset of every section's payload.
func sectionPayloadOffsets(t *testing.T, data []byte) map[string]int {
	t.Helper()
	names := map[byte]string{1: "meta", 2: "l1", 3: "l2", 4: "vgpr", 5: "graph"}
	out := map[string]int{}
	off := 5 // "MBAV" + version byte
	for off < len(data) {
		id := data[off]
		off++
		plen, n := binary.Uvarint(data[off:])
		if n <= 0 {
			t.Fatalf("bad framing at offset %d", off)
		}
		off += n
		out[names[id]] = off + int(plen)/2
		off += int(plen) + 4 // payload + crc
	}
	if len(out) != 5 {
		t.Fatalf("walked %d sections, want 5: %v", len(out), out)
	}
	return out
}

// TestStoreCorruptionFallsBackToSimulation flips one byte in every
// section of a recorded artifact and checks the acceptance contract: the
// damaged artifact is rejected with a typed error and quarantined, and
// RunWorkloadStored transparently falls back to a fresh simulation.
func TestStoreCorruptionFallsBackToSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates once per section; skipped in -short")
	}
	r := minife(t)
	dir := t.TempDir()
	rs, err := OpenRunStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Save("minife", r); err != nil {
		t.Fatal(err)
	}
	paths, err := filepath.Glob(filepath.Join(dir, "*.mbavf"))
	if err != nil || len(paths) != 1 {
		t.Fatalf("want 1 artifact, got %v (%v)", paths, err)
	}
	pristine, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}

	for name, off := range sectionPayloadOffsets(t, pristine) {
		t.Run(name, func(t *testing.T) {
			mut := append([]byte(nil), pristine...)
			mut[off] ^= 0x01
			if err := os.WriteFile(paths[0], mut, 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := rs.Load("minife")
			if err == nil {
				t.Fatalf("Load accepted artifact with flipped byte in %s section", name)
			}
			if !errors.Is(err, store.ErrCorrupt) && !errors.Is(err, store.ErrFormat) {
				t.Fatalf("untyped corruption error: %v", err)
			}
			// The damaged file was quarantined; the fallback path simulates
			// and re-records a good artifact.
			got, fromStore, err := RunWorkloadStored(context.Background(), "minife", rs)
			if err != nil {
				t.Fatal(err)
			}
			if fromStore {
				t.Error("fromStore=true for a quarantined artifact")
			}
			if got.Cycles() != r.Cycles() {
				t.Errorf("fallback simulation differs: %d vs %d cycles", got.Cycles(), r.Cycles())
			}
			if again, err := rs.Load("minife"); err != nil || again.Cycles() != r.Cycles() {
				t.Errorf("re-recorded artifact unusable: %v", err)
			}
		})
	}
}

// TestStoreLazyConcurrentQueries exercises the lazily decoding load
// path under concurrent first-touch queries: section decoding is
// memoized behind sync.Once inside the artifact, so racing queries must
// neither decode twice nor observe partial state (this test is the race
// detector's coverage of that path — it stays enabled in -short).
func TestStoreLazyConcurrentQueries(t *testing.T) {
	rs, err := OpenRunStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	direct, err := RunWorkload("vecadd")
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Save("vecadd", direct); err != nil {
		t.Fatal(err)
	}
	loaded, err := rs.Load("vecadd")
	if err != nil {
		t.Fatal(err)
	}
	queries := []struct {
		st Structure
		il Interleaving
	}{
		{L1, Interleaving{Style: StyleLogical, Factor: 1}},
		{L1, Interleaving{Style: StyleWayPhysical, Factor: 2}},
		{VGPR, Interleaving{Style: StyleIntraThread, Factor: 1}},
	}
	var wg sync.WaitGroup
	for _, q := range queries {
		wg.Add(1)
		go func() {
			defer wg.Done()
			want, werr := direct.AVF(q.st, Parity, q.il, 1)
			got, gerr := loaded.AVF(q.st, Parity, q.il, 1)
			if werr != nil || gerr != nil {
				t.Errorf("%s %s: %v / %v", q.st, q.il.Style, werr, gerr)
				return
			}
			if want != got {
				t.Errorf("%s %s: direct %+v stored %+v", q.st, q.il.Style, want, got)
			}
		}()
	}
	wg.Wait()
}

// TestRunPreload covers the warm-up path: Preload forces a store-loaded
// run's deferred decoding (and surfaces nothing for simulated runs).
func TestRunPreload(t *testing.T) {
	rs, err := OpenRunStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	direct, err := RunWorkload("vecadd")
	if err != nil {
		t.Fatal(err)
	}
	if err := direct.Preload(); err != nil {
		t.Errorf("Preload on a simulated run: %v", err)
	}
	if err := rs.Save("vecadd", direct); err != nil {
		t.Fatal(err)
	}
	loaded, err := rs.Load("vecadd")
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Preload(L1); err != nil {
		t.Errorf("Preload(L1): %v", err)
	}
	if err := loaded.Preload(); err != nil {
		t.Errorf("Preload(all): %v", err)
	}
	// A preloaded run must still round-trip through Save bit-identically.
	var buf bytes.Buffer
	if err := loaded.Save(&buf); err != nil {
		t.Fatalf("Save of store-loaded run: %v", err)
	}
	again, err := LoadRun(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if again.Cycles() != direct.Cycles() {
		t.Errorf("re-saved run differs: %d vs %d cycles", again.Cycles(), direct.Cycles())
	}
}

// TestRunWorkloadStoredRoundTrip covers the happy path: first call
// simulates and records, second call answers from the store.
func TestRunWorkloadStoredRoundTrip(t *testing.T) {
	rs, err := OpenRunStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if rs.Has("minife") {
		t.Fatal("fresh store claims to hold minife")
	}
	r1, fromStore, err := RunWorkloadStored(context.Background(), "minife", rs)
	if err != nil {
		t.Fatal(err)
	}
	if fromStore {
		t.Error("first call reported a store hit")
	}
	if !rs.Has("minife") {
		t.Error("first call did not record")
	}
	r2, fromStore, err := RunWorkloadStored(context.Background(), "minife", rs)
	if err != nil {
		t.Fatal(err)
	}
	if !fromStore {
		t.Error("second call simulated despite a recorded artifact")
	}
	if r1.Cycles() != r2.Cycles() || r1.Workload() != r2.Workload() {
		t.Errorf("stored run differs: (%s, %d) vs (%s, %d)",
			r1.Workload(), r1.Cycles(), r2.Workload(), r2.Cycles())
	}
}
