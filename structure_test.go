package mbavf

import (
	"errors"
	"testing"
)

func TestParseStructureRoundTrip(t *testing.T) {
	sts := Structures()
	if len(sts) != 3 {
		t.Fatalf("want 3 structures, got %v", sts)
	}
	for _, st := range sts {
		got, err := ParseStructure(string(st))
		if err != nil {
			t.Errorf("ParseStructure(%q): %v", st, err)
		}
		if got != st {
			t.Errorf("ParseStructure(%q) = %q", st, got)
		}
	}
}

func TestParseStructureRejectsUnknown(t *testing.T) {
	for _, name := range []string{"", "l3", "L1", "sram", "vgpr "} {
		_, err := ParseStructure(name)
		if err == nil {
			t.Errorf("ParseStructure(%q) accepted", name)
			continue
		}
		if !errors.Is(err, ErrBadOption) {
			t.Errorf("ParseStructure(%q) error does not wrap ErrBadOption: %v", name, err)
		}
	}
}

func TestStructureStyles(t *testing.T) {
	for _, st := range []Structure{L1, L2} {
		want := []Style{StyleLogical, StyleWayPhysical, StyleIndexPhysical}
		got := st.Styles()
		if len(got) != len(want) {
			t.Fatalf("%s styles = %v", st, got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s styles[%d] = %q, want %q", st, i, got[i], want[i])
			}
		}
	}
	got := VGPR.Styles()
	if len(got) != 2 || got[0] != StyleIntraThread || got[1] != StyleInterThread {
		t.Errorf("vgpr styles = %v", got)
	}
}

func TestSchemesComplete(t *testing.T) {
	schemes := Schemes()
	if len(schemes) != 4 {
		t.Fatalf("want 4 schemes, got %v", schemes)
	}
	for _, s := range schemes {
		if _, err := s.impl(); err != nil {
			t.Errorf("scheme %q has no implementation: %v", s, err)
		}
	}
}

func TestValidateQueryRejectsBadParams(t *testing.T) {
	r := minife(t)
	cases := []struct {
		name string
		il   Interleaving
		mode int
	}{
		{"zero factor", Interleaving{Style: StyleLogical, Factor: 0}, 2},
		{"negative factor", Interleaving{Style: StyleLogical, Factor: -1}, 2},
		{"zero mode", Interleaving{Style: StyleLogical, Factor: 2}, 0},
		{"negative mode", Interleaving{Style: StyleLogical, Factor: 2}, -3},
	}
	for _, c := range cases {
		if _, err := r.AVF(L1, Parity, c.il, c.mode); !errors.Is(err, ErrBadOption) {
			t.Errorf("%s: AVF error = %v, want ErrBadOption", c.name, err)
		}
		if _, err := r.AVFSeries(L1, Parity, c.il, c.mode, 4); !errors.Is(err, ErrBadOption) {
			t.Errorf("%s: AVFSeries error = %v, want ErrBadOption", c.name, err)
		}
	}
	if _, err := r.AVF(Structure("dram"), Parity, Interleaving{Style: StyleLogical, Factor: 2}, 2); !errors.Is(err, ErrBadOption) {
		t.Errorf("unknown structure error = %v, want ErrBadOption", err)
	}
	if _, err := r.AVF(L1, Scheme("tmr"), Interleaving{Style: StyleLogical, Factor: 2}, 2); !errors.Is(err, ErrBadOption) {
		t.Errorf("unknown scheme error = %v, want ErrBadOption", err)
	}
}
