package mbavf

import "mbavf/internal/mttf"

// MTTFPoint is one sample of the temporal-vs-spatial multi-bit-fault MTTF
// comparison for a 32MB cache (the paper's Figure 2). All MTTFs are in
// hours.
type MTTFPoint struct {
	// RawFITPerBit is the raw per-bit fault rate in FIT.
	RawFITPerBit float64
	// SpatialLow is the MTTF from spatial MBFs at a 0.1% multi-bit
	// fraction; SpatialHigh uses 5%.
	SpatialLow, SpatialHigh float64
	// TemporalInf assumes cache data lives forever; Temporal100yr limits
	// data lifetime to 100 years.
	TemporalInf, Temporal100yr float64
}

// MTTFSweep evaluates the Figure 2 scenarios for each raw per-bit fault
// rate over a 32MB cache with 64-bit protection words.
func MTTFSweep(rawFITsPerBit []float64) ([]MTTFPoint, error) {
	pts, err := mttf.Sweep(mttf.Default32MB(), rawFITsPerBit)
	if err != nil {
		return nil, err
	}
	out := make([]MTTFPoint, len(pts))
	for i, p := range pts {
		out[i] = MTTFPoint{
			RawFITPerBit:  p.RawFITPerBit,
			SpatialLow:    p.SMBF01,
			SpatialHigh:   p.SMBF5,
			TemporalInf:   p.TMBFInf,
			Temporal100yr: p.TMBF100yr,
		}
	}
	return out, nil
}
