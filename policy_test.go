package mbavf

import (
	"errors"
	"sync"
	"testing"

	"mbavf/internal/core"
)

// vecaddRun caches the instrumented vecadd run (the fastest bundled
// workload) shared by the policy facade tests.
var (
	vecaddOnce sync.Once
	vecaddR    *Run
	vecaddErr  error
)

func vecadd(t *testing.T) *Run {
	t.Helper()
	vecaddOnce.Do(func() {
		vecaddR, vecaddErr = RunWorkload("vecadd")
	})
	if vecaddErr != nil {
		t.Fatal(vecaddErr)
	}
	return vecaddR
}

// hugeScrub stands in for "scrub interval -> infinity": far beyond any
// simulated run length, so scrubbing can never bound the window.
const hugeScrub = int64(1) << 62

// structILs pairs every structure with one physical interleaving layout
// (the VGPR one exercises the detection-preempts-SDC rule).
func structILs() []struct {
	st Structure
	il Interleaving
} {
	return []struct {
		st Structure
		il Interleaving
	}{
		{L1, Interleaving{Style: StyleWayPhysical, Factor: 2}},
		{L2, Interleaving{Style: StyleWayPhysical, Factor: 2}},
		{VGPR, Interleaving{Style: StyleInterThread, Factor: 2}},
	}
}

// TestPolicyLimitEquivalence is the limit-equivalence property suite:
// with the scrub interval at infinity and report-on-detect reporting,
// the degenerate policies must reproduce the existing parity/SEC-DED
// DUE/SDC numbers bit-identically (==) for every structure and every
// Table III fault mode, under both the packed and scalar solver paths.
func TestPolicyLimitEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a workload; skipped in -short (the -race CI leg)")
	}
	r := vecadd(t)
	degenerate := []struct {
		policy string
		scheme Scheme
	}{
		{"parity", Parity},
		{"sec-ded", SECDED},
	}
	for _, solver := range []string{"packed", "scalar"} {
		t.Run(solver, func(t *testing.T) {
			core.SetScalarSolve(solver == "scalar")
			defer core.SetScalarSolve(false)
			for _, si := range structILs() {
				for mode := 1; mode <= 8; mode++ {
					for _, d := range degenerate {
						want, err := r.AVF(si.st, d.scheme, si.il, mode)
						if err != nil {
							t.Fatalf("AVF(%s,%s,%d): %v", si.st, d.scheme, mode, err)
						}
						got, err := r.PolicyAVF(si.st, d.policy, si.il, mode, hugeScrub)
						if err != nil {
							t.Fatalf("PolicyAVF(%s,%s,%d): %v", si.st, d.policy, mode, err)
						}
						if got.AVF != want {
							t.Errorf("%s/%s/%s mode %d: policy AVF = %+v, want bit-identical %+v",
								solver, si.st, d.policy, mode, got.AVF, want)
						}
						if got.Baseline != want {
							t.Errorf("%s/%s/%s mode %d: baseline = %+v, want %+v",
								solver, si.st, d.policy, mode, got.Baseline, want)
						}
						if got.DeltaDUE != 0 || got.DeltaSDC != 0 || got.AccumP != 0 || got.Escalated {
							t.Errorf("%s/%s/%s mode %d: degenerate policy must have zero deltas: %+v",
								solver, si.st, d.policy, mode, got)
						}
					}
				}
			}
		})
	}
}

// TestPolicyReportOnUse pins the delayed-reporting discipline against
// the four-class model: DUE collapses to the true-DUE component, false
// DUEs are masked, SDC is untouched.
func TestPolicyReportOnUse(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a workload; skipped in -short (the -race CI leg)")
	}
	r := vecadd(t)
	for _, si := range structILs() {
		for _, mode := range []int{2, 4} {
			avf, err := r.AVF(si.st, SECDED, si.il, mode)
			if err != nil {
				t.Fatal(err)
			}
			got, err := r.PolicyAVF(si.st, "sec-ded-on-use", si.il, mode, hugeScrub)
			if err != nil {
				t.Fatal(err)
			}
			if got.AVF.DUE != avf.TrueDUE {
				t.Errorf("%s mode %d: on-use DUE = %g, want true-DUE %g", si.st, mode, got.AVF.DUE, avf.TrueDUE)
			}
			if got.AVF.FalseDUE != 0 {
				t.Errorf("%s mode %d: on-use FalseDUE = %g, want 0", si.st, mode, got.AVF.FalseDUE)
			}
			if got.AVF.SDC != avf.SDC {
				t.Errorf("%s mode %d: on-use SDC = %g, want unchanged %g", si.st, mode, got.AVF.SDC, avf.SDC)
			}
			if got.DeltaDUE != avf.TrueDUE-avf.DUE {
				t.Errorf("%s mode %d: DeltaDUE = %g, want %g", si.st, mode, got.DeltaDUE, avf.TrueDUE-avf.DUE)
			}
		}
	}
}

// TestPolicyTemporalScrub pins the temporal-accumulation interplay on a
// real run: the scrub policy's accumulation probability is bounded by
// the scrub interval, the no-scrub temporal policy's by the run length,
// and the mixed outcomes stay within [base, escalated] bounds.
func TestPolicyTemporalScrub(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a workload; skipped in -short (the -race CI leg)")
	}
	r := vecadd(t)
	il := Interleaving{Style: StyleWayPhysical, Factor: 2}
	noScrub, err := r.PolicyAVF(L1, "sec-ded-temporal", il, 4, hugeScrub)
	if err != nil {
		t.Fatal(err)
	}
	scrubbed, err := r.PolicyAVF(L1, "sec-ded-scrub", il, 4, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if !noScrub.Escalated || !scrubbed.Escalated {
		t.Fatalf("temporal policies must mix an escalated outcome: %+v / %+v", noScrub, scrubbed)
	}
	if noScrub.AccumP <= 0 || noScrub.AccumP >= 1 {
		t.Errorf("accumulation probability out of range: %g", noScrub.AccumP)
	}
	if scrubbed.AccumP >= noScrub.AccumP {
		t.Errorf("scrubbing must cut the accumulation probability: %g >= %g", scrubbed.AccumP, noScrub.AccumP)
	}
	// Escalation can only hurt SEC-DED here (2 flips detected -> 3 flips
	// defeated), so deltas are non-negative and ordered by exposure.
	if noScrub.DeltaSDC < 0 || scrubbed.DeltaSDC < 0 {
		t.Errorf("escalated SEC-DED must not reduce SDC: %g / %g", noScrub.DeltaSDC, scrubbed.DeltaSDC)
	}
	if scrubbed.DeltaSDC > noScrub.DeltaSDC {
		t.Errorf("scrubbed exposure should not exceed unscrubbed: %g > %g", scrubbed.DeltaSDC, noScrub.DeltaSDC)
	}
}

// TestPolicyBadOptions pins the typed-error contract of the policy knobs
// that need no simulated run.
func TestPolicyBadOptionsNoRun(t *testing.T) {
	for _, tc := range []struct {
		name string
		err  error
	}{
		{"negative scrub interval", ExperimentOptions{ScrubInterval: -1}.Validate()},
		{"unknown policy name", ExperimentOptions{Policies: []string{"chipkill"}}.Validate()},
	} {
		if !errors.Is(tc.err, ErrBadOption) {
			t.Errorf("%s: err = %v, want ErrBadOption", tc.name, tc.err)
		}
	}
	if err := (ExperimentOptions{Policies: []string{"sec-ded-scrub"}, ScrubInterval: 4096}).Validate(); err != nil {
		t.Errorf("valid policy options rejected: %v", err)
	}
	if len(Policies()) < 4 {
		t.Fatalf("Policies() = %v, want at least the 4 required policies", Policies())
	}
}

// TestPolicyBadOptions pins ErrBadOption on the query path.
func TestPolicyBadOptions(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a workload; skipped in -short (the -race CI leg)")
	}
	r := vecadd(t)
	il := Interleaving{Style: StyleWayPhysical, Factor: 2}
	for _, tc := range []struct {
		name string
		call func() error
	}{
		{"zero scrub interval", func() error {
			_, err := r.PolicyAVF(L1, "sec-ded", il, 2, 0)
			return err
		}},
		{"negative scrub interval", func() error {
			_, err := r.PolicyAVF(L1, "sec-ded", il, 2, -4096)
			return err
		}},
		{"unknown policy", func() error {
			_, err := r.PolicyAVF(L1, "chipkill", il, 2, hugeScrub)
			return err
		}},
		{"zero factor", func() error {
			_, err := r.PolicyAVF(L1, "sec-ded", Interleaving{Style: StyleWayPhysical, Factor: 0}, 2, hugeScrub)
			return err
		}},
		{"bad style for structure", func() error {
			_, err := r.PolicyAVF(VGPR, "sec-ded", il, 2, hugeScrub)
			return err
		}},
	} {
		if err := tc.call(); !errors.Is(err, ErrBadOption) {
			t.Errorf("%s: err = %v, want ErrBadOption", tc.name, err)
		}
	}
}
