package interval

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSegmentLen(t *testing.T) {
	cases := []struct {
		seg  Segment
		want Cycle
	}{
		{Segment{0, 0}, 0},
		{Segment{5, 5}, 0},
		{Segment{5, 4}, 0},
		{Segment{0, 10}, 10},
		{Segment{3, 7}, 4},
	}
	for _, c := range cases {
		if got := c.seg.Len(); got != c.want {
			t.Errorf("%v.Len() = %d, want %d", c.seg, got, c.want)
		}
	}
}

func TestSegmentOverlapIntersect(t *testing.T) {
	a := Segment{2, 8}
	b := Segment{6, 12}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatalf("%v and %v should overlap", a, b)
	}
	if got := a.Intersect(b); got != (Segment{6, 8}) {
		t.Errorf("Intersect = %v, want [6,8)", got)
	}
	c := Segment{8, 10} // touching, half-open: no overlap
	if a.Overlaps(c) {
		t.Errorf("%v and %v should not overlap", a, c)
	}
	if !a.Intersect(c).Empty() {
		t.Errorf("touching intersect should be empty, got %v", a.Intersect(c))
	}
}

func TestSetAddCoalesce(t *testing.T) {
	var s Set
	s.AddRange(10, 20)
	s.AddRange(30, 40)
	s.AddRange(20, 30) // bridges the two
	if len(s.Segments()) != 1 {
		t.Fatalf("expected 1 coalesced segment, got %v", s.String())
	}
	if s.Len() != 30 {
		t.Errorf("Len = %d, want 30", s.Len())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSetAddOverlapping(t *testing.T) {
	var s Set
	s.AddRange(0, 5)
	s.AddRange(3, 10)
	s.AddRange(100, 110)
	s.AddRange(8, 99)                 // overlaps first group, touches nothing on right... 99 < 100 so separate
	if got := s.Len(); got != 99+10 { // [0,99) plus [100,110)
		t.Errorf("Len = %d, want 109 (%v)", got, s.String())
	}
	s.AddRange(99, 100) // bridge
	if len(s.Segments()) != 1 {
		t.Errorf("expected single segment after bridge, got %v", s.String())
	}
}

func TestSetAddEmptyIgnored(t *testing.T) {
	var s Set
	s.AddRange(7, 7)
	s.Add(Segment{9, 3})
	if !s.Empty() {
		t.Errorf("adding empty segments should leave set empty, got %v", s.String())
	}
}

func TestSetContains(t *testing.T) {
	s := NewSet(Segment{2, 4}, Segment{10, 12})
	for _, c := range []Cycle{2, 3, 10, 11} {
		if !s.Contains(c) {
			t.Errorf("Contains(%d) = false, want true", c)
		}
	}
	for _, c := range []Cycle{0, 1, 4, 9, 12, 100} {
		if s.Contains(c) {
			t.Errorf("Contains(%d) = true, want false", c)
		}
	}
}

func TestUnionIntersectSubtract(t *testing.T) {
	a := NewSet(Segment{0, 10}, Segment{20, 30})
	b := NewSet(Segment{5, 25})
	u := Union(a, b)
	if u.Len() != 30 {
		t.Errorf("Union len = %d, want 30 (%v)", u.Len(), u.String())
	}
	in := Intersect(a, b)
	if in.Len() != 10 { // [5,10) + [20,25)
		t.Errorf("Intersect len = %d, want 10 (%v)", in.Len(), in.String())
	}
	d := Subtract(a, b)
	if d.Len() != 10 { // [0,5) + [25,30)
		t.Errorf("Subtract len = %d, want 10 (%v)", d.Len(), d.String())
	}
	if err := u.Validate(); err != nil {
		t.Error(err)
	}
	if err := in.Validate(); err != nil {
		t.Error(err)
	}
	if err := d.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSubtractSplitsSegment(t *testing.T) {
	a := NewSet(Segment{0, 100})
	b := NewSet(Segment{10, 20}, Segment{30, 40})
	d := Subtract(a, b)
	want := NewSet(Segment{0, 10}, Segment{20, 30}, Segment{40, 100})
	if d.String() != want.String() {
		t.Errorf("Subtract = %v, want %v", d.String(), want.String())
	}
}

func TestComplement(t *testing.T) {
	s := NewSet(Segment{2, 4})
	c := Complement(s, 10)
	if c.Len() != 8 {
		t.Errorf("Complement len = %d, want 8", c.Len())
	}
	if c.Contains(2) || c.Contains(3) || !c.Contains(0) || !c.Contains(9) {
		t.Errorf("Complement membership wrong: %v", c.String())
	}
}

func TestOverlapLen(t *testing.T) {
	s := NewSet(Segment{0, 10}, Segment{20, 30}, Segment{40, 50})
	if got := s.OverlapLen(Segment{5, 45}); got != 5+10+5 {
		t.Errorf("OverlapLen = %d, want 20", got)
	}
	if got := s.OverlapLen(Segment{10, 20}); got != 0 {
		t.Errorf("OverlapLen over gap = %d, want 0", got)
	}
}

// randomSet builds a random set from r with cycles bounded by horizon.
func randomSet(r *rand.Rand, horizon Cycle) Set {
	var s Set
	n := r.Intn(8)
	for i := 0; i < n; i++ {
		start := Cycle(r.Int63n(int64(horizon)))
		end := start + Cycle(r.Int63n(20))
		s.Add(Segment{start, end})
	}
	return s
}

func TestQuickSetInvariants(t *testing.T) {
	const horizon = 200
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomSet(r, horizon)
		b := randomSet(r, horizon)
		u := Union(a, b)
		in := Intersect(a, b)
		d := Subtract(a, b)
		for _, s := range []*Set{&a, &b, &u, &in, &d} {
			if err := s.Validate(); err != nil {
				t.Logf("invariant violated: %v", err)
				return false
			}
		}
		// |A ∪ B| = |A| + |B| - |A ∩ B|
		if u.Len() != a.Len()+b.Len()-in.Len() {
			t.Logf("inclusion-exclusion failed: |u|=%d |a|=%d |b|=%d |i|=%d", u.Len(), a.Len(), b.Len(), in.Len())
			return false
		}
		// |A \ B| = |A| - |A ∩ B|
		if d.Len() != a.Len()-in.Len() {
			t.Logf("subtract size failed")
			return false
		}
		// A \ B and A ∩ B partition A.
		if Union(d, in).Len() != a.Len() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMembershipAgreement(t *testing.T) {
	const horizon = 100
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomSet(r, horizon)
		b := randomSet(r, horizon)
		u := Union(a, b)
		in := Intersect(a, b)
		d := Subtract(a, b)
		comp := Complement(a, horizon+30)
		for c := Cycle(0); c < horizon+30; c++ {
			ina, inb := a.Contains(c), b.Contains(c)
			if u.Contains(c) != (ina || inb) {
				return false
			}
			if in.Contains(c) != (ina && inb) {
				return false
			}
			if d.Contains(c) != (ina && !inb) {
				return false
			}
			if comp.Contains(c) != !ina {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickOverlapLenMatchesIntersect(t *testing.T) {
	f := func(seed int64, start uint16, length uint8) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSet(r, 300)
		seg := Segment{Cycle(start % 300), Cycle(start%300) + Cycle(length)}
		return s.OverlapLen(seg) == Intersect(s, NewSet(seg)).Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
