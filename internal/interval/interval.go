// Package interval provides half-open cycle-time intervals and disjoint
// interval sets. The AVF engine represents per-bit ACE time as interval
// sets over simulation cycles; all MB-AVF math reduces to measure and
// boolean algebra on these sets.
package interval

import (
	"fmt"
	"sort"
)

// Cycle is a simulation time stamp. Cycle 0 is the first simulated cycle.
type Cycle = uint64

// Segment is the half-open interval [Start, End). A Segment with
// Start >= End is empty.
type Segment struct {
	Start, End Cycle
}

// Len returns the number of cycles covered by s.
func (s Segment) Len() Cycle {
	if s.End <= s.Start {
		return 0
	}
	return s.End - s.Start
}

// Empty reports whether s covers no cycles.
func (s Segment) Empty() bool { return s.End <= s.Start }

// Contains reports whether cycle c lies within s.
func (s Segment) Contains(c Cycle) bool { return c >= s.Start && c < s.End }

// Overlaps reports whether s and t share at least one cycle.
func (s Segment) Overlaps(t Segment) bool {
	return s.Start < t.End && t.Start < s.End
}

// Intersect returns the overlap of s and t (possibly empty).
func (s Segment) Intersect(t Segment) Segment {
	out := Segment{Start: max(s.Start, t.Start), End: min(s.End, t.End)}
	if out.End < out.Start {
		out.End = out.Start
	}
	return out
}

func (s Segment) String() string { return fmt.Sprintf("[%d,%d)", s.Start, s.End) }

// Set is a set of cycles represented as sorted, disjoint, non-adjacent,
// non-empty segments. The zero value is an empty set ready to use.
type Set struct {
	segs []Segment
}

// NewSet returns a set covering the given segments.
func NewSet(segs ...Segment) Set {
	var s Set
	for _, sg := range segs {
		s.Add(sg)
	}
	return s
}

// Segments returns the underlying sorted segments. The returned slice is
// owned by the set and must not be modified.
func (s Set) Segments() []Segment { return s.segs }

// Empty reports whether the set covers no cycles.
func (s Set) Empty() bool { return len(s.segs) == 0 }

// Len returns the total number of cycles covered.
func (s Set) Len() Cycle {
	var n Cycle
	for _, sg := range s.segs {
		n += sg.Len()
	}
	return n
}

// Add inserts segment sg, coalescing with any overlapping or adjacent
// segments.
func (s *Set) Add(sg Segment) {
	if sg.Empty() {
		return
	}
	// Find insertion window: all segments that overlap or touch sg.
	lo := sort.Search(len(s.segs), func(i int) bool { return s.segs[i].End >= sg.Start })
	hi := sort.Search(len(s.segs), func(i int) bool { return s.segs[i].Start > sg.End })
	if lo < hi {
		sg.Start = min(sg.Start, s.segs[lo].Start)
		sg.End = max(sg.End, s.segs[hi-1].End)
	}
	s.segs = append(s.segs[:lo], append([]Segment{sg}, s.segs[hi:]...)...)
}

// AddRange is shorthand for Add(Segment{start, end}).
func (s *Set) AddRange(start, end Cycle) { s.Add(Segment{start, end}) }

// Contains reports whether cycle c is in the set.
func (s Set) Contains(c Cycle) bool {
	i := sort.Search(len(s.segs), func(i int) bool { return s.segs[i].End > c })
	return i < len(s.segs) && s.segs[i].Contains(c)
}

// Union returns the union of s and t.
func Union(s, t Set) Set {
	out := Set{segs: append([]Segment(nil), s.segs...)}
	for _, sg := range t.segs {
		out.Add(sg)
	}
	return out
}

// Intersect returns the intersection of s and t.
func Intersect(s, t Set) Set {
	var out Set
	i, j := 0, 0
	for i < len(s.segs) && j < len(t.segs) {
		ov := s.segs[i].Intersect(t.segs[j])
		if !ov.Empty() {
			out.segs = append(out.segs, ov)
		}
		if s.segs[i].End < t.segs[j].End {
			i++
		} else {
			j++
		}
	}
	return out
}

// Subtract returns the cycles in s that are not in t.
func Subtract(s, t Set) Set {
	var out Set
	j := 0
	for _, sg := range s.segs {
		cur := sg
		for j < len(t.segs) && t.segs[j].End <= cur.Start {
			j++
		}
		k := j
		for k < len(t.segs) && t.segs[k].Start < cur.End {
			cut := t.segs[k]
			if cut.Start > cur.Start {
				out.segs = append(out.segs, Segment{cur.Start, cut.Start})
			}
			if cut.End >= cur.End {
				cur.Start = cur.End // fully consumed
				break
			}
			cur.Start = cut.End
			k++
		}
		if !cur.Empty() {
			out.segs = append(out.segs, cur)
		}
	}
	return out
}

// Complement returns the cycles in [0, horizon) not covered by s.
func Complement(s Set, horizon Cycle) Set {
	full := NewSet(Segment{0, horizon})
	return Subtract(full, s)
}

// OverlapLen returns the number of cycles covered by both s and sg without
// materializing the intersection.
func (s Set) OverlapLen(sg Segment) Cycle {
	var n Cycle
	i := sort.Search(len(s.segs), func(i int) bool { return s.segs[i].End > sg.Start })
	for ; i < len(s.segs) && s.segs[i].Start < sg.End; i++ {
		n += s.segs[i].Intersect(sg).Len()
	}
	return n
}

func (s Set) String() string {
	out := "{"
	for i, sg := range s.segs {
		if i > 0 {
			out += " "
		}
		out += sg.String()
	}
	return out + "}"
}

// Validate checks the internal sortedness/disjointness invariant. It is
// intended for tests.
func (s Set) Validate() error {
	for i, sg := range s.segs {
		if sg.Empty() {
			return fmt.Errorf("segment %d %v is empty", i, sg)
		}
		if i > 0 && s.segs[i-1].End >= sg.Start {
			return fmt.Errorf("segments %d and %d overlap or touch: %v %v", i-1, i, s.segs[i-1], sg)
		}
	}
	return nil
}
