package fabric

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mbavf/internal/inject"
	"mbavf/internal/obs"
)

// Coordinator-side observability; /metrics exposes them as
// mbavf_fabric_*.
var (
	obsDispatched      = obs.NewCounter("fabric.leases_dispatched")
	obsLeasesDone      = obs.NewCounter("fabric.leases_completed")
	obsLeasesExpired   = obs.NewCounter("fabric.leases_expired")
	obsLeasesStolen    = obs.NewCounter("fabric.leases_stolen")
	obsLeasesStalled   = obs.NewCounter("fabric.leases_stalled")
	obsLeaseRetries    = obs.NewCounter("fabric.lease_retries")
	obsChecksumRejects = obs.NewCounter("fabric.checksum_rejects")
	obsQuarantines     = obs.NewCounter("fabric.worker_quarantines")
	obsLocalLeases     = obs.NewCounter("fabric.local_leases")
	obsLocalRuns       = obs.NewCounter("fabric.local_runs")
	obsShotsMerged     = obs.NewCounter("fabric.shots_merged")
	obsDuplicateShots  = obs.NewCounter("fabric.duplicate_shots")
	obsDispatchNS      = obs.NewHistogram("fabric.dispatch_ns")
	obsLeaseNS         = obs.NewHistogram("fabric.lease_ns")
	obsQuarantined     = obs.NewGauge("fabric.workers_quarantined")
)

// ErrDispatchBudget reports that a distributed run was aborted because
// more lease dispatches failed than Config.ErrorBudget allows.
var ErrDispatchBudget = errors.New("fabric: dispatch error budget exceeded")

// errChecksum marks a lease whose result payload failed checksum
// validation — the reject-and-redispatch path.
var errChecksum = errors.New("fabric: response checksum mismatch")

// errLeaseLost marks a poll answered with 404: the worker restarted (or
// GC'd the lease) and no longer holds it. Fail fast and re-dispatch
// rather than polling a ghost until the deadline.
var errLeaseLost = errors.New("fabric: lease lost by worker")

func errGoldenMismatch(workload string) error {
	return fmt.Errorf("fabric: golden digest mismatch for workload %q (coordinator and worker disagree on the fault-free run)", workload)
}

// Config tunes a coordinator.
type Config struct {
	// Workers is the fleet's base URLs (e.g. "http://host:8080"). Empty
	// means every run degrades to in-process execution.
	Workers []string
	// ShardSize is the number of shots (or AVF queries) per lease
	// (default 64).
	ShardSize int
	// LeaseTTL is how long a lease may go without a successful heartbeat
	// poll before the coordinator declares it expired and re-dispatches
	// (default 15s). Every successful poll renews the deadline.
	LeaseTTL time.Duration
	// Heartbeat is the poll interval (default LeaseTTL/10, min 50ms).
	Heartbeat time.Duration
	// StallPolls is the number of consecutive successful polls without
	// forward progress before a lease is declared a straggler and stolen
	// (default 40; 0 disables stall detection).
	StallPolls int
	// MaxAttempts bounds dispatch attempts per lease before the
	// coordinator executes it in-process (default 4).
	MaxAttempts int
	// RetryBase/RetryMax shape the exponential backoff between attempts;
	// jitter of ±50% is applied from a seeded RNG (defaults 100ms / 5s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// ErrorBudget aborts the whole run once more than this many lease
	// dispatches have failed (0 = unlimited: every failure retries or
	// falls back locally).
	ErrorBudget int
	// QuarantineAfter is the consecutive-failure count that quarantines
	// a worker (default 3); QuarantineFor is how long it sits out before
	// a health probe may reinstate it (default 30s).
	QuarantineAfter int
	QuarantineFor   time.Duration
	// Concurrency bounds in-flight leases (default 2×len(Workers)).
	Concurrency int
	// HTTPTimeout bounds each individual fabric request (default 10s).
	HTTPTimeout time.Duration
	// ObsScrapeInterval is how often the coordinator scrapes each
	// worker's /fabric/v1/obs snapshot into the merged mbavf_fleet_*
	// series while a run is in flight (default 1s). Scraping only
	// happens when the obs layer is enabled, so a metrics-off run pays
	// nothing.
	ObsScrapeInterval time.Duration
	// Transport overrides the HTTP transport — the chaos-injection
	// point for fault-tolerance tests (default http.DefaultTransport).
	Transport http.RoundTripper
	// LocalAVF evaluates AVF queries in-process when no worker can —
	// the graceful-degradation path for KindAVF leases.
	LocalAVF AVFEvaluator
	// Seed drives retry jitter; it has no effect on results (default 1).
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.ShardSize <= 0 {
		c.ShardSize = 64
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 15 * time.Second
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = max(c.LeaseTTL/10, 50*time.Millisecond)
	}
	if c.StallPolls == 0 {
		c.StallPolls = 40
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 100 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 5 * time.Second
	}
	if c.QuarantineAfter <= 0 {
		c.QuarantineAfter = 3
	}
	if c.QuarantineFor <= 0 {
		c.QuarantineFor = 30 * time.Second
	}
	if c.Concurrency <= 0 {
		c.Concurrency = max(2*len(c.Workers), 1)
	}
	if c.HTTPTimeout <= 0 {
		c.HTTPTimeout = 10 * time.Second
	}
	if c.ObsScrapeInterval <= 0 {
		c.ObsScrapeInterval = time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// workerRef tracks one worker's health for quarantine decisions.
type workerRef struct {
	url string

	mu               sync.Mutex
	fails            int
	quarantinedUntil time.Time
}

// Coordinator shards work into leases and dispatches them to a worker
// fleet, falling back to in-process execution when the fleet cannot
// help. It is safe for concurrent use.
type Coordinator struct {
	cfg      Config
	local    *inject.Campaign // nil for AVF-only coordinators
	workload string
	golden   string

	client   *http.Client
	workers  []*workerRef
	rr       atomic.Uint64
	failures atomic.Int64

	jmu sync.Mutex
	jrn *rand.Rand
}

// New builds a coordinator. campaign is the local fallback executor and
// the source of the golden digest workers must agree with; it may be nil
// for coordinators that only dispatch AVF batches.
func New(cfg Config, campaign *inject.Campaign) *Coordinator {
	cfg = cfg.withDefaults()
	co := &Coordinator{
		cfg:    cfg,
		local:  campaign,
		client: &http.Client{Transport: cfg.Transport, Timeout: cfg.HTTPTimeout},
		jrn:    rand.New(rand.NewSource(cfg.Seed)),
	}
	if campaign != nil {
		co.workload = campaign.Workload()
		co.golden = inject.GoldenDigest(campaign.Golden())
	}
	for _, u := range cfg.Workers {
		co.workers = append(co.workers, &workerRef{url: u})
	}
	return co
}

// leaseJob is one unit of dispatch: a lease request plus its retry
// bookkeeping, the campaign trace ID it propagates, and, for AVF
// leases, its offset into the caller's batch.
type leaseJob struct {
	req    LeaseRequest
	trace  string
	offset int
}

// leaseOutcome is one finished (or abandoned) lease.
type leaseOutcome struct {
	job   *leaseJob
	shots []inject.Shot
	items []AVFItem
	err   error
}

// Run executes a campaign of rc.N shots across the fleet with the same
// contract as (*inject.Campaign).Run: results are bit-identical to a
// serial run for any fleet size and any failure history, cancelling ctx
// drains merged shots into the report, rc.Completed seeds resume, and
// rc.OnShot observes every newly merged shot (never concurrently) — so
// the existing checkpoint machinery works unchanged on top.
func (co *Coordinator) Run(ctx context.Context, rc inject.RunConfig) (*inject.RunReport, error) {
	if co.local == nil {
		return nil, errors.New("fabric: coordinator has no campaign")
	}
	if len(co.cfg.Workers) == 0 {
		// Zero workers configured: the whole campaign runs in-process on
		// the existing parallel pool. Same results, no fabric overhead.
		obsLocalRuns.Add(1)
		return co.local.Run(ctx, rc)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if rc.N < 0 {
		return nil, fmt.Errorf("fabric: negative campaign size %d", rc.N)
	}
	if rc.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, rc.Timeout)
		defer cancel()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	rep := &inject.RunReport{N: rc.N, Seed: rc.Seed}
	done := make(map[int]bool, len(rc.Completed))
	for _, s := range rc.Completed {
		if s.Index >= 0 && s.Index < rc.N && !done[s.Index] {
			done[s.Index] = true
			rep.Shots = append(rep.Shots, s)
		}
	}
	// The campaign trace ID is deterministic in (workload, seed, N): a
	// coordinator restart re-joins the same logical trace, and the ID
	// doubles as the campaign key of every lifecycle event.
	traceID := fmt.Sprintf("campaign:%s:%d:%d", co.workload, rc.Seed, rc.N)
	jobs := co.shotJobs(rc, done, traceID)

	sp := obs.StartSpan2("fabric:", co.workload)
	defer sp.End()
	obs.CampaignStart(co.workload, rc.N, len(done))
	obs.TraceAsyncBegin("campaign", "campaign:"+co.workload, traceID)
	defer obs.TraceAsyncEnd("campaign", "campaign:"+co.workload, traceID)
	obs.LogEvent(obs.Event{Type: "campaign.start", Campaign: traceID, N: rc.N})
	defer func() {
		obs.LogEvent(obs.Event{Type: "campaign.done", Campaign: traceID, N: len(rep.Shots)})
	}()
	stopScrape := co.startFleetScrape(ctx)
	defer stopScrape()

	outcomes := co.dispatch(ctx, jobs)

	infraErrs := 0
	budgetHit := false
	var dispatchErr error
	for out := range outcomes {
		if out.err != nil {
			if errors.Is(out.err, ErrDispatchBudget) && dispatchErr == nil {
				dispatchErr = out.err
				cancel()
			}
		}
		for _, s := range out.shots {
			if s.Index < 0 || s.Index >= rc.N {
				continue
			}
			if done[s.Index] {
				// A stolen lease's original owner also finished, or a
				// retried POST re-attached: determinism makes the copies
				// identical, so reconciliation is "keep the first".
				obsDuplicateShots.Add(1)
				continue
			}
			done[s.Index] = true
			rep.Shots = append(rep.Shots, s)
			obsShotsMerged.Add(1)
			obs.CampaignShotDone()
			if s.Err != "" {
				infraErrs++
				if rc.MaxErrors > 0 && infraErrs > rc.MaxErrors && !budgetHit {
					budgetHit = true
					cancel() // graceful: drain in-flight leases, keep results
				}
			}
			if rc.OnShot != nil {
				rc.OnShot(s)
			}
		}
	}
	sort.Slice(rep.Shots, func(i, j int) bool { return rep.Shots[i].Index < rep.Shots[j].Index })

	if budgetHit {
		return rep, fmt.Errorf("fabric: %w (%d shots failed)", inject.ErrBudget, infraErrs)
	}
	if dispatchErr != nil {
		return rep, dispatchErr
	}
	if err := ctx.Err(); err != nil && !rep.Complete() {
		return rep, err
	}
	return rep, nil
}

// RunAVFBatch evaluates a batch of AVF queries across the fleet,
// preserving order: item i answers queries[i]. Workers that fail are
// retried elsewhere; with no reachable worker the batch is evaluated
// in-process through Config.LocalAVF.
func (co *Coordinator) RunAVFBatch(ctx context.Context, queries []AVFQuery) ([]AVFItem, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	items := make([]AVFItem, len(queries))
	if len(queries) == 0 {
		return items, nil
	}
	data, _ := json.Marshal(queries)
	sum := sha256.Sum256(data)
	traceID := fmt.Sprintf("avf-batch:%d:%s", len(queries), hex.EncodeToString(sum[:8]))
	var jobs []*leaseJob
	for off := 0; off < len(queries); off += co.cfg.ShardSize {
		end := min(off+co.cfg.ShardSize, len(queries))
		batch := queries[off:end]
		jobs = append(jobs, &leaseJob{
			req: LeaseRequest{
				ID:      avfLeaseID(batch, off),
				Kind:    KindAVF,
				Queries: batch,
			},
			trace:  traceID,
			offset: off,
		})
	}
	var dispatchErr error
	for out := range co.dispatch(ctx, jobs) {
		if out.err != nil {
			if dispatchErr == nil {
				dispatchErr = out.err
			}
			msg := out.err.Error()
			for i := range out.job.req.Queries {
				items[out.job.offset+i] = AVFItem{Error: msg}
			}
			continue
		}
		copy(items[out.job.offset:], out.items)
	}
	if dispatchErr == nil {
		dispatchErr = ctx.Err()
	}
	return items, dispatchErr
}

// avfLeaseID derives a deterministic lease ID from the batch content, so
// coordinator retries and restarts re-attach to in-flight work instead
// of duplicating it.
func avfLeaseID(batch []AVFQuery, off int) string {
	data, _ := json.Marshal(batch)
	sum := sha256.Sum256(data)
	return fmt.Sprintf("avf:%d:%s", off, hex.EncodeToString(sum[:8]))
}

// shotJobs shards the campaign's pending indices into contiguous leased
// ranges of at most ShardSize shots. Resume checkpoints leave scattered
// holes; each maximal run of missing indices becomes its own lease
// sequence.
func (co *Coordinator) shotJobs(rc inject.RunConfig, done map[int]bool, traceID string) []*leaseJob {
	var jobs []*leaseJob
	emit := func(start, end int) {
		for s := start; s < end; s += co.cfg.ShardSize {
			e := min(s+co.cfg.ShardSize, end)
			jobs = append(jobs, &leaseJob{req: LeaseRequest{
				ID:       fmt.Sprintf("shots:%s:%d:%d:%d-%d", co.workload, rc.Seed, rc.N, s, e),
				Kind:     KindShots,
				Workload: co.workload,
				Seed:     rc.Seed,
				Start:    s,
				End:      e,
				Golden:   co.golden,
			}, trace: traceID})
		}
	}
	runStart := -1
	for i := 0; i < rc.N; i++ {
		if done[i] {
			if runStart >= 0 {
				emit(runStart, i)
				runStart = -1
			}
			continue
		}
		if runStart < 0 {
			runStart = i
		}
	}
	if runStart >= 0 {
		emit(runStart, rc.N)
	}
	return jobs
}

// dispatch drives every job through the lease pipeline on a bounded pool
// and streams outcomes. The returned channel closes when every job has
// an outcome (even under cancellation: a cancelled job yields its
// context error, never blocks).
func (co *Coordinator) dispatch(ctx context.Context, jobs []*leaseJob) <-chan leaseOutcome {
	in := make(chan *leaseJob)
	out := make(chan leaseOutcome)
	var wg sync.WaitGroup
	for range min(co.cfg.Concurrency, len(jobs)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range in {
				out <- co.runLease(ctx, j)
			}
		}()
	}
	go func() {
		defer close(in)
		for _, j := range jobs {
			select {
			case in <- j:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// runLease drives one lease to a result: dispatch to a healthy worker,
// poll with heartbeat renewal, and on failure retry with exponential
// backoff and jitter — stealing the lease to another worker — until
// attempts are exhausted and the lease executes in-process. The only
// unrecoverable outcomes are context cancellation and the dispatch
// error budget.
func (co *Coordinator) runLease(ctx context.Context, j *leaseJob) leaseOutcome {
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return leaseOutcome{job: j, err: err}
		}
		w := co.pickWorker(ctx)
		if w == nil || attempt >= co.cfg.MaxAttempts {
			return co.runLeaseLocal(ctx, j)
		}
		st, held, err := co.executeLease(ctx, w, j)
		if err == nil {
			co.noteSuccess(w)
			return leaseOutcome{job: j, shots: st.Shots, items: st.Items}
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if ctx.Err() != nil {
				return leaseOutcome{job: j, err: err}
			}
		}
		if st != nil && st.Fatal {
			// Retrying elsewhere cannot fix a fatal lease (e.g. golden
			// mismatch); the local executor is the authority.
			return co.runLeaseLocal(ctx, j)
		}
		co.noteFailure(w)
		obsLeaseRetries.Add(1)
		obs.LogEvent(obs.Event{Type: "lease.retry", Campaign: j.trace, Lease: j.req.ID, Worker: w.url, N: attempt + 1, Note: err.Error()})
		if held {
			// A worker actually held this lease and we are abandoning it:
			// the re-dispatch is a steal.
			obsLeasesStolen.Add(1)
			obs.LogEvent(obs.Event{Type: "lease.stolen", Campaign: j.trace, Lease: j.req.ID, Worker: w.url})
			obs.TraceAsyncInstant("campaign", "steal "+j.req.ID, j.trace)
		}
		if co.cfg.ErrorBudget > 0 && co.failures.Add(1) > int64(co.cfg.ErrorBudget) {
			return leaseOutcome{job: j, err: fmt.Errorf("%w (lease %s: %v)", ErrDispatchBudget, j.req.ID, err)}
		}
		co.sleepBackoff(ctx, attempt)
	}
}

// runLeaseLocal executes a lease in-process — the graceful-degradation
// path when the fleet is unreachable, quarantined, or out of attempts.
// Partial shot progress under cancellation is still returned so drains
// checkpoint everything already computed.
func (co *Coordinator) runLeaseLocal(ctx context.Context, j *leaseJob) leaseOutcome {
	obsLocalLeases.Add(1)
	obs.LogEvent(obs.Event{Type: "lease.local", Campaign: j.trace, Lease: j.req.ID, N: j.req.total()})
	switch j.req.Kind {
	case KindShots:
		if co.local == nil {
			return leaseOutcome{job: j, err: errors.New("fabric: no local campaign for shot lease")}
		}
		shots := make([]inject.Shot, 0, j.req.End-j.req.Start)
		for i := j.req.Start; i < j.req.End; i++ {
			if ctx.Err() != nil {
				return leaseOutcome{job: j, shots: shots}
			}
			shots = append(shots, co.local.RunShot(j.req.Seed, i))
		}
		return leaseOutcome{job: j, shots: shots}
	case KindAVF:
		if co.cfg.LocalAVF == nil {
			return leaseOutcome{job: j, err: errors.New("fabric: no local AVF evaluator")}
		}
		items := make([]AVFItem, 0, len(j.req.Queries))
		for _, q := range j.req.Queries {
			if err := ctx.Err(); err != nil {
				return leaseOutcome{job: j, err: err}
			}
			res, err := co.cfg.LocalAVF(ctx, q)
			if err != nil {
				items = append(items, AVFItem{Error: err.Error()})
			} else {
				items = append(items, AVFItem{Result: res})
			}
		}
		return leaseOutcome{job: j, items: items}
	}
	return leaseOutcome{job: j, err: fmt.Errorf("fabric: unknown lease kind %q", j.req.Kind)}
}

// executeLease dispatches one lease to one worker and polls it to
// completion. held reports whether the worker accepted the lease (a
// failure after that point abandons held work — a steal). Every
// successful poll renews the lease deadline; consecutive polls without
// progress trip the straggler detector.
func (co *Coordinator) executeLease(ctx context.Context, w *workerRef, j *leaseJob) (st *LeaseState, held bool, err error) {
	req := j.req
	began := time.Now()
	sp := obs.StartSpan2("dispatch:", req.ID)
	st, err = co.post(ctx, w, j)
	sp.End()
	if err != nil {
		return st, false, err
	}
	held = true
	obsDispatched.Add(1)
	obsDispatchNS.Record(uint64(time.Since(began)))
	obs.LogEvent(obs.Event{Type: "lease.dispatched", Campaign: j.trace, Lease: req.ID, Worker: w.url, N: req.total()})
	obs.TraceAsyncInstant("campaign", "dispatch "+req.ID, j.trace)

	deadline := time.Now().Add(co.cfg.LeaseTTL)
	lastProgress := st.Completed
	stalls := 0
	for {
		switch st.State {
		case LeaseDone:
			if err := co.verify(st, req); err != nil {
				obsChecksumRejects.Add(1)
				obs.LogEvent(obs.Event{Type: "lease.checksum_reject", Campaign: j.trace, Lease: req.ID, Worker: w.url, Note: err.Error()})
				obs.TraceAsyncInstant("campaign", "checksum-reject "+req.ID, j.trace)
				co.release(w, req.ID)
				return st, held, err
			}
			obsLeasesDone.Add(1)
			obsLeaseNS.Record(uint64(time.Since(began)))
			obs.LogEvent(obs.Event{Type: "lease.completed", Campaign: j.trace, Lease: req.ID, Worker: w.url,
				DurNS: int64(time.Since(began)), N: st.Completed})
			return st, held, nil
		case LeaseFailed:
			return st, held, fmt.Errorf("fabric: lease %s failed on %s: %s", req.ID, w.url, st.Error)
		}

		select {
		case <-ctx.Done():
			co.release(w, req.ID)
			return st, held, ctx.Err()
		case <-time.After(co.cfg.Heartbeat):
		}

		next, perr := co.poll(ctx, w, j)
		now := time.Now()
		if perr != nil {
			if errors.Is(perr, errLeaseLost) {
				obsLeasesExpired.Add(1)
				obs.LogEvent(obs.Event{Type: "lease.expired", Campaign: j.trace, Lease: req.ID, Worker: w.url, Note: perr.Error()})
				return st, held, perr
			}
			if now.After(deadline) {
				obsLeasesExpired.Add(1)
				obs.LogEvent(obs.Event{Type: "lease.expired", Campaign: j.trace, Lease: req.ID, Worker: w.url, Note: perr.Error()})
				return st, held, fmt.Errorf("fabric: lease %s on %s expired without heartbeat: %w", req.ID, w.url, perr)
			}
			continue // transient poll failure; the deadline is the judge
		}
		deadline = now.Add(co.cfg.LeaseTTL) // heartbeat renewal
		if next.Completed > lastProgress {
			lastProgress = next.Completed
			stalls = 0
			obs.LogEvent(obs.Event{Type: "lease.heartbeat", Campaign: j.trace, Lease: req.ID, Worker: w.url, N: next.Completed})
		} else if next.State == LeaseRunning {
			stalls++
			if co.cfg.StallPolls > 0 && stalls >= co.cfg.StallPolls {
				obsLeasesStalled.Add(1)
				obs.LogEvent(obs.Event{Type: "lease.stalled", Campaign: j.trace, Lease: req.ID, Worker: w.url, N: stalls})
				obs.TraceAsyncInstant("campaign", "stall "+req.ID, j.trace)
				co.release(w, req.ID)
				return next, held, fmt.Errorf("fabric: lease %s stalled on %s (%d polls without progress)", req.ID, w.url, stalls)
			}
		}
		st = next
	}
}

// verify recomputes the result checksum from the decoded payload and
// cross-checks the payload against the lease — the defense against
// corrupt (or fabricated) responses.
func (co *Coordinator) verify(st *LeaseState, req LeaseRequest) error {
	switch req.Kind {
	case KindShots:
		if len(st.Shots) != req.End-req.Start {
			return fmt.Errorf("%w: lease %s returned %d shots, want %d", errChecksum, req.ID, len(st.Shots), req.End-req.Start)
		}
		for _, s := range st.Shots {
			if s.Index < req.Start || s.Index >= req.End {
				return fmt.Errorf("%w: lease %s returned out-of-range shot %d", errChecksum, req.ID, s.Index)
			}
		}
		if ShotsChecksum(st.Shots) != st.Checksum {
			return fmt.Errorf("%w: lease %s", errChecksum, req.ID)
		}
	case KindAVF:
		if len(st.Items) != len(req.Queries) {
			return fmt.Errorf("%w: lease %s returned %d items, want %d", errChecksum, req.ID, len(st.Items), len(req.Queries))
		}
		if ItemsChecksum(st.Items) != st.Checksum {
			return fmt.Errorf("%w: lease %s", errChecksum, req.ID)
		}
	}
	return nil
}

// traceHeaders stamps a fabric request with the campaign trace ID, the
// lease ID, and this coordinator's span identity, so the worker's trace
// events correlate with the coordinator's after a merge.
func traceHeaders(hreq *http.Request, j *leaseJob) {
	if j.trace == "" {
		return
	}
	hreq.Header.Set(HeaderTraceID, j.trace)
	hreq.Header.Set(HeaderLeaseID, j.req.ID)
	hreq.Header.Set(HeaderParentSpan, "campaign:"+j.trace)
}

// post creates (or re-attaches to) a lease on a worker.
func (co *Coordinator) post(ctx context.Context, w *workerRef, j *leaseJob) (*LeaseState, error) {
	req := j.req
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+PathLease, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	traceHeaders(hreq, j)
	resp, err := co.client.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st LeaseState
	if derr := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&st); derr != nil {
		return nil, fmt.Errorf("fabric: decoding lease response from %s: %w", w.url, derr)
	}
	switch resp.StatusCode {
	case http.StatusOK, http.StatusAccepted:
		return &st, nil
	default:
		return &st, fmt.Errorf("fabric: %s refused lease %s: %d %s", w.url, req.ID, resp.StatusCode, st.Error)
	}
}

// poll reads a lease's state; a 404 means the worker no longer holds it.
func (co *Coordinator) poll(ctx context.Context, w *workerRef, j *leaseJob) (*LeaseState, error) {
	id := j.req.ID
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, w.url+PathLease+"/"+id, nil)
	if err != nil {
		return nil, err
	}
	traceHeaders(hreq, j)
	resp, err := co.client.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, fmt.Errorf("%w: %s on %s", errLeaseLost, id, w.url)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fabric: poll %s on %s: status %d", id, w.url, resp.StatusCode)
	}
	var st LeaseState
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&st); err != nil {
		return nil, fmt.Errorf("fabric: decoding poll response from %s: %w", w.url, err)
	}
	return &st, nil
}

// release best-effort cancels a lease the coordinator is abandoning, so
// the worker stops burning cores on work nobody will collect. Uses a
// short detached context: release must work even while ctx is tearing
// down (SIGINT drain).
func (co *Coordinator) release(w *workerRef, id string) {
	ctx, cancel := context.WithTimeout(context.Background(), min(co.cfg.HTTPTimeout, 2*time.Second))
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodDelete, w.url+PathLease+"/"+id, nil)
	if err != nil {
		return
	}
	if resp, err := co.client.Do(hreq); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// probe health-checks a worker (used to reinstate quarantined workers).
func (co *Coordinator) probe(ctx context.Context, w *workerRef) bool {
	ctx, cancel := context.WithTimeout(ctx, min(co.cfg.HTTPTimeout, 2*time.Second))
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, w.url+PathHealth, nil)
	if err != nil {
		return false
	}
	resp, err := co.client.Do(hreq)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	return resp.StatusCode == http.StatusOK
}

// pickWorker returns the next healthy worker in round-robin order, nil
// when the whole fleet is quarantined (the caller then degrades to
// in-process execution). A worker whose quarantine has lapsed must pass
// a health probe before it is reinstated.
func (co *Coordinator) pickWorker(ctx context.Context) *workerRef {
	n := len(co.workers)
	if n == 0 {
		return nil
	}
	start := int(co.rr.Add(1))
	for k := 0; k < n; k++ {
		w := co.workers[(start+k)%n]
		w.mu.Lock()
		until := w.quarantinedUntil
		w.mu.Unlock()
		switch {
		case until.IsZero() || time.Now().After(until):
			if !until.IsZero() {
				// Quarantine lapsed: only a passing health check clears it.
				if !co.probe(ctx, w) {
					co.quarantine(w)
					continue
				}
				w.mu.Lock()
				w.fails = 0
				w.quarantinedUntil = time.Time{}
				w.mu.Unlock()
				co.updateQuarantinedGauge()
			}
			return w
		default:
			continue
		}
	}
	return nil
}

func (co *Coordinator) noteSuccess(w *workerRef) {
	w.mu.Lock()
	w.fails = 0
	w.mu.Unlock()
}

func (co *Coordinator) noteFailure(w *workerRef) {
	w.mu.Lock()
	w.fails++
	hit := w.fails >= co.cfg.QuarantineAfter
	w.mu.Unlock()
	if hit {
		co.quarantine(w)
	}
}

func (co *Coordinator) quarantine(w *workerRef) {
	w.mu.Lock()
	w.quarantinedUntil = time.Now().Add(co.cfg.QuarantineFor)
	w.fails = 0
	w.mu.Unlock()
	obsQuarantines.Add(1)
	obs.LogEvent(obs.Event{Type: "worker.quarantined", Worker: w.url})
	co.updateQuarantinedGauge()
}

func (co *Coordinator) updateQuarantinedGauge() {
	now := time.Now()
	n := 0
	for _, w := range co.workers {
		w.mu.Lock()
		if w.quarantinedUntil.After(now) {
			n++
		}
		w.mu.Unlock()
	}
	obsQuarantined.Set(int64(n))
}

// startFleetScrape begins scraping every worker's /fabric/v1/obs
// snapshot into the merged mbavf_fleet_* series on the scrape interval.
// The returned stop function halts the loop and takes one final scrape
// with a short detached context, so tallies a worker posted between the
// last tick and its death still land in the merged page. The whole
// machinery is gated on the obs layer: a metrics-off run starts no
// goroutine and sends no requests.
func (co *Coordinator) startFleetScrape(ctx context.Context) (stop func()) {
	if !obs.Enabled() || len(co.workers) == 0 {
		return func() {}
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		ticker := time.NewTicker(co.cfg.ObsScrapeInterval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				co.scrapeFleet(ctx)
			case <-ctx.Done():
				return
			case <-done:
				return
			}
		}
	}()
	return func() {
		close(done)
		<-finished
		final, cancel := context.WithTimeout(context.Background(), min(co.cfg.HTTPTimeout, 2*time.Second))
		defer cancel()
		co.scrapeFleet(final)
	}
}

// scrapeFleet pulls one registry snapshot from every worker. Workers
// that do not answer keep their previously published snapshot — a dead
// worker's tallies still happened, so the aggregated series never
// regress.
func (co *Coordinator) scrapeFleet(ctx context.Context) {
	var wg sync.WaitGroup
	for _, w := range co.workers {
		wg.Add(1)
		go func(w *workerRef) {
			defer wg.Done()
			if snap, err := co.scrapeObs(ctx, w); err == nil {
				obs.PublishFleet(w.url, snap)
			}
		}(w)
	}
	wg.Wait()
}

// scrapeObs fetches one worker's /fabric/v1/obs registry snapshot.
func (co *Coordinator) scrapeObs(ctx context.Context, w *workerRef) (obs.RegistrySnapshot, error) {
	var snap obs.RegistrySnapshot
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, w.url+PathObs, nil)
	if err != nil {
		return snap, err
	}
	resp, err := co.client.Do(hreq)
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		return snap, fmt.Errorf("fabric: obs scrape of %s: status %d", w.url, resp.StatusCode)
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&snap); err != nil {
		return snap, fmt.Errorf("fabric: decoding obs snapshot from %s: %w", w.url, err)
	}
	return snap, nil
}

// sleepBackoff waits the attempt's exponential backoff with ±50% jitter
// (seeded, so tests are reproducible), returning early on cancellation.
func (co *Coordinator) sleepBackoff(ctx context.Context, attempt int) {
	d := co.cfg.RetryBase << uint(min(attempt, 16))
	if d > co.cfg.RetryMax || d <= 0 {
		d = co.cfg.RetryMax
	}
	co.jmu.Lock()
	jitter := 0.5 + co.jrn.Float64() // [0.5, 1.5)
	co.jmu.Unlock()
	d = time.Duration(float64(d) * jitter)
	select {
	case <-time.After(d):
	case <-ctx.Done():
	}
}
