// Package fabric is the distributed campaign fabric: a coordinator that
// shards fault-injection campaigns and AVF query batches into leased
// work units dispatched to a worker fleet over HTTP/JSON, and the worker
// side that executes those leases.
//
// Distribution here is first and foremost a robustness problem — workers
// die, stall, and return garbage — so the fabric is built around one
// invariant: a sharded campaign is bit-identical to a serial run no
// matter the worker count or the failure/re-dispatch history. The
// invariant holds because every shot's injection target depends only on
// (campaign seed, shot index) through the splitmix64 per-shot RNG (see
// internal/inject), which makes re-executing a shot anywhere — a second
// worker after a steal, the coordinator itself after total fleet loss —
// produce the identical Shot value. The coordinator therefore never has
// to trust a worker's scheduling, only its arithmetic, and the response
// checksum guards the wire in between.
//
// Lease lifecycle:
//
//	POST   /fabric/v1/lease        create (idempotent by lease ID)
//	GET    /fabric/v1/lease/{id}   poll; doubles as the heartbeat that
//	                               renews the coordinator-side deadline
//	                               and the worker-side GC horizon
//	DELETE /fabric/v1/lease/{id}   cancel/release
//	GET    /fabric/v1/health       worker liveness + lease census
//
// A lease the coordinator stops polling is garbage-collected by the
// worker after its TTL, so an orphaned lease (coordinator crash) never
// burns a core forever; a lease the worker stops answering for is
// re-dispatched by the coordinator (work-stealing), and duplicate
// results reconcile idempotently because they are — by construction —
// identical.
package fabric

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"mbavf/internal/inject"
)

// Endpoint paths of the fabric wire protocol. Workers mount them with
// Worker.Mount; coordinators address them relative to a worker base URL.
const (
	PathLease  = "/fabric/v1/lease"
	PathHealth = "/fabric/v1/health"
	// PathObs serves the worker's metric-registry snapshot (counters,
	// gauges, sparse histograms) as JSON; the coordinator scrapes it on
	// the heartbeat tick and folds the fleet into mbavf_fleet_* series.
	PathObs = "/fabric/v1/obs"
	// PathEvents serves the process's recent structured lease-lifecycle
	// events as JSON.
	PathEvents = "/fabric/v1/events"
)

// Trace-propagation headers. The coordinator stamps every lease request
// with the campaign's trace ID, the lease ID, and its own span name, so
// a worker's trace events correlate with the coordinator's in a merged
// fleet trace without any shared clock or state.
const (
	HeaderTraceID    = "X-Mbavf-Trace-Id"
	HeaderLeaseID    = "X-Mbavf-Lease-Id"
	HeaderParentSpan = "X-Mbavf-Parent-Span"
)

// Kind discriminates the work a lease carries.
type Kind string

const (
	// KindShots is a contiguous shot-range [Start, End) of a
	// fault-injection campaign.
	KindShots Kind = "shots"
	// KindAVF is a batch of AVF queries evaluated by the worker's
	// analysis stack.
	KindAVF Kind = "avf"
)

// AVFQuery names one point of the AVF query space, the fabric's own wire
// form (the serving layer adapts it to its richer query type).
type AVFQuery struct {
	Workload  string `json:"workload"`
	Structure string `json:"structure"`
	Scheme    string `json:"scheme"`
	Style     string `json:"style"`
	Factor    int    `json:"factor"`
	ModeBits  int    `json:"mode_bits"`
}

// AVFItem is one evaluated AVF query: an opaque result document (the
// fabric does not interpret analysis payloads) or a per-item error.
type AVFItem struct {
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// LeaseRequest creates (or idempotently re-attaches to) a lease.
// Re-POSTing an ID the worker already holds returns the existing lease's
// state without re-executing anything — the property that makes
// coordinator retries after a lost response safe.
type LeaseRequest struct {
	ID   string `json:"id"`
	Kind Kind   `json:"kind"`

	// Shot-range leases (KindShots).
	Workload string `json:"workload,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
	Start    int    `json:"start,omitempty"`
	End      int    `json:"end,omitempty"`
	// Golden, when non-empty, is the hex SHA-256 of the campaign's
	// golden output; the worker refuses the lease if its own golden run
	// disagrees (version skew would silently poison results otherwise).
	Golden string `json:"golden,omitempty"`

	// AVF batch leases (KindAVF).
	Queries []AVFQuery `json:"queries,omitempty"`
}

// Lease states.
const (
	LeaseRunning = "running"
	LeaseDone    = "done"
	LeaseFailed  = "failed"
)

// LeaseState is the worker's view of a lease: the poll (heartbeat)
// response, carrying the result payload once done.
type LeaseState struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Completed int    `json:"completed"`
	Total     int    `json:"total"`

	Shots []inject.Shot `json:"shots,omitempty"`
	Items []AVFItem     `json:"items,omitempty"`

	// Checksum is the hex SHA-256 of the canonical JSON of the result
	// payload (Shots or Items); the coordinator recomputes it and
	// rejects-and-redispatches on mismatch.
	Checksum string `json:"checksum,omitempty"`

	Error string `json:"error,omitempty"`
	// Fatal marks a failure retrying elsewhere cannot fix (golden
	// digest mismatch, malformed lease); the coordinator skips straight
	// to local execution instead of burning attempts.
	Fatal bool `json:"fatal,omitempty"`
}

// Health is the worker liveness document.
type Health struct {
	Status string `json:"status"`
	Leases int    `json:"leases"`
}

// payloadChecksum is the response checksum both sides compute: hex
// SHA-256 over the canonical JSON encoding of the payload. Go's
// encoding/json is deterministic for struct slices (fixed field order,
// no map iteration), so worker and coordinator agree byte-for-byte.
func payloadChecksum(payload any) string {
	data, err := json.Marshal(payload)
	if err != nil {
		// The payload types marshal by construction; a failure here is a
		// programming error, not a runtime condition.
		panic(fmt.Sprintf("fabric: checksum marshal: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// ShotsChecksum is the checksum of a shot-range result payload.
func ShotsChecksum(shots []inject.Shot) string { return payloadChecksum(shots) }

// ItemsChecksum is the checksum of an AVF batch result payload.
func ItemsChecksum(items []AVFItem) string { return payloadChecksum(items) }

// Validate rejects malformed lease requests before any work happens.
func (r LeaseRequest) Validate() error {
	if r.ID == "" {
		return fmt.Errorf("fabric: lease without an ID")
	}
	switch r.Kind {
	case KindShots:
		if r.Workload == "" {
			return fmt.Errorf("fabric: shot lease %s without a workload", r.ID)
		}
		if r.Start < 0 || r.End <= r.Start {
			return fmt.Errorf("fabric: shot lease %s has empty range [%d,%d)", r.ID, r.Start, r.End)
		}
	case KindAVF:
		if len(r.Queries) == 0 {
			return fmt.Errorf("fabric: AVF lease %s without queries", r.ID)
		}
	default:
		return fmt.Errorf("fabric: lease %s has unknown kind %q", r.ID, r.Kind)
	}
	return nil
}

// total returns the lease's work-unit count, the denominator of its
// progress reporting.
func (r LeaseRequest) total() int {
	if r.Kind == KindAVF {
		return len(r.Queries)
	}
	return r.End - r.Start
}
