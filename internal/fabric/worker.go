package fabric

import (
	"context"
	"encoding/json"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"mbavf/internal/inject"
	"mbavf/internal/obs"
	"mbavf/internal/sim"
	"mbavf/internal/workloads"
)

// Worker-side observability; /metrics exposes them as
// mbavf_fabric_worker_*.
var (
	obsWLeaseAccepted = obs.NewCounter("fabric.worker.leases_accepted")
	obsWLeaseDone     = obs.NewCounter("fabric.worker.leases_done")
	obsWLeaseFailed   = obs.NewCounter("fabric.worker.leases_failed")
	obsWLeaseExpired  = obs.NewCounter("fabric.worker.leases_expired")
	obsWLeaseActive   = obs.NewGauge("fabric.worker.leases_active")
	obsWShotNS        = obs.NewHistogram("fabric.worker.shot_ns")
)

// AVFEvaluator answers one AVF query with an opaque JSON document. The
// serving layer provides one backed by its cached analysis stack; the
// fabric itself never interprets the payload.
type AVFEvaluator func(ctx context.Context, q AVFQuery) (json.RawMessage, error)

// CampaignResolver builds (or returns a cached) injection campaign for a
// workload name. The default resolver uses the registered workload set
// under the standard injection config; tests substitute synthetic
// workloads.
type CampaignResolver func(workload string) (*inject.Campaign, error)

func defaultResolver(workload string) (*inject.Campaign, error) {
	w, err := workloads.ByName(workload)
	if err != nil {
		return nil, err
	}
	return inject.NewCampaign(w, sim.InjectionConfig())
}

// WorkerConfig tunes a fabric worker.
type WorkerConfig struct {
	// ShotWorkers is the per-lease shot parallelism (default GOMAXPROCS).
	ShotWorkers int
	// LeaseTTL is the garbage-collection horizon: a lease not polled for
	// this long is cancelled and dropped, so an orphaned lease (its
	// coordinator crashed) never burns cores forever (default 2m).
	LeaseTTL time.Duration
	// ShotDelay throttles every shot by this much — a chaos/testing knob
	// that makes "worker killed mid-lease" scenarios deterministic in
	// smoke tests. Zero (the default) adds nothing.
	ShotDelay time.Duration
	// Campaigns resolves workload names to campaigns (default: the
	// registered workload set under the injection config).
	Campaigns CampaignResolver
	// AVF, when non-nil, lets the worker execute KindAVF leases.
	AVF AVFEvaluator
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.ShotWorkers <= 0 {
		c.ShotWorkers = runtime.GOMAXPROCS(0)
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 2 * time.Minute
	}
	if c.Campaigns == nil {
		c.Campaigns = defaultResolver
	}
	return c
}

// Worker executes leases. Mount its handlers on any mux (the analysis
// service's, a dedicated listener) and Close it on shutdown.
type Worker struct {
	cfg  WorkerConfig
	base context.Context
	stop context.CancelFunc

	mu        sync.Mutex
	leases    map[string]*workerLease
	campaigns map[string]*campaignEntry
}

// campaignEntry memoizes one workload's campaign: the golden run is
// seconds-scale, so concurrent leases for one workload must pay it once.
type campaignEntry struct {
	once sync.Once
	c    *inject.Campaign
	err  error
}

// workerLease is one lease's mutable state. trace is the campaign trace
// ID propagated by the coordinator (HeaderTraceID); the worker's async
// trace events carry it so a merged fleet trace nests this lease's
// execution under the coordinator's campaign span.
type workerLease struct {
	req    LeaseRequest
	trace  string
	cancel context.CancelFunc

	mu        sync.Mutex
	state     string
	completed int
	shots     []inject.Shot
	items     []AVFItem
	checksum  string
	errMsg    string
	fatal     bool
	lastPoll  time.Time
}

// NewWorker builds a worker.
func NewWorker(cfg WorkerConfig) *Worker {
	base, stop := context.WithCancel(context.Background())
	return &Worker{
		cfg:       cfg.withDefaults(),
		base:      base,
		stop:      stop,
		leases:    map[string]*workerLease{},
		campaigns: map[string]*campaignEntry{},
	}
}

// Mount registers the fabric endpoints on mux, including the
// observability pair: the registry snapshot the coordinator scrapes
// into mbavf_fleet_* and this process's structured event log.
func (w *Worker) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST "+PathLease, w.handleCreate)
	mux.HandleFunc("GET "+PathLease+"/{id}", w.handleGet)
	mux.HandleFunc("DELETE "+PathLease+"/{id}", w.handleDelete)
	mux.HandleFunc("GET "+PathHealth, w.handleHealth)
	mux.Handle("GET "+PathObs, obs.SnapshotHandler())
	mux.Handle("GET "+PathEvents, obs.EventsHandler())
}

// Close cancels every lease and stops accepting work.
func (w *Worker) Close() {
	w.stop()
	w.mu.Lock()
	defer w.mu.Unlock()
	for id, l := range w.leases {
		l.cancel()
		delete(w.leases, id)
	}
	obsWLeaseActive.Set(0)
}

// campaign returns the memoized campaign for a workload.
func (w *Worker) campaign(name string) (*inject.Campaign, error) {
	w.mu.Lock()
	e, ok := w.campaigns[name]
	if !ok {
		e = &campaignEntry{}
		w.campaigns[name] = e
	}
	w.mu.Unlock()
	e.once.Do(func() { e.c, e.err = w.cfg.Campaigns(name) })
	return e.c, e.err
}

// sweep garbage-collects leases whose coordinator stopped polling.
// Called on every request, so the worker needs no background janitor.
func (w *Worker) sweep() {
	cutoff := time.Now().Add(-w.cfg.LeaseTTL)
	w.mu.Lock()
	defer w.mu.Unlock()
	for id, l := range w.leases {
		l.mu.Lock()
		stale := l.lastPoll.Before(cutoff)
		l.mu.Unlock()
		if stale {
			l.cancel()
			delete(w.leases, id)
			obsWLeaseExpired.Add(1)
			obs.LogEvent(obs.Event{Type: "lease.gc", Campaign: l.trace, Lease: id})
		}
	}
	obsWLeaseActive.Set(int64(len(w.leases)))
}

func writeLeaseJSON(rw http.ResponseWriter, status int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	_ = json.NewEncoder(rw).Encode(v)
}

func (w *Worker) handleCreate(rw http.ResponseWriter, r *http.Request) {
	w.sweep()
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeLeaseJSON(rw, http.StatusBadRequest, LeaseState{Error: "decoding lease: " + err.Error(), Fatal: true})
		return
	}
	if err := req.Validate(); err != nil {
		writeLeaseJSON(rw, http.StatusBadRequest, LeaseState{ID: req.ID, Error: err.Error(), Fatal: true})
		return
	}
	if req.Kind == KindAVF && w.cfg.AVF == nil {
		writeLeaseJSON(rw, http.StatusBadRequest, LeaseState{ID: req.ID, Error: "fabric: worker has no AVF evaluator", Fatal: true})
		return
	}
	if w.base.Err() != nil {
		writeLeaseJSON(rw, http.StatusServiceUnavailable, LeaseState{ID: req.ID, Error: "fabric: worker shutting down"})
		return
	}

	w.mu.Lock()
	if l, ok := w.leases[req.ID]; ok {
		// Idempotent re-attach: the coordinator's first POST response was
		// lost, or a restarted coordinator re-dispatched a lease this
		// worker still holds. Either way the work must not run twice.
		w.mu.Unlock()
		writeLeaseJSON(rw, http.StatusOK, l.snapshot())
		return
	}
	ctx, cancel := context.WithCancel(w.base)
	l := &workerLease{req: req, trace: r.Header.Get(HeaderTraceID), cancel: cancel, state: LeaseRunning, lastPoll: time.Now()}
	w.leases[req.ID] = l
	obsWLeaseActive.Set(int64(len(w.leases)))
	w.mu.Unlock()
	obsWLeaseAccepted.Add(1)
	obs.LogEvent(obs.Event{Type: "lease.accepted", Campaign: l.trace, Lease: req.ID, N: req.total()})
	// The async begin is recorded at accept, not completion, so a worker
	// killed mid-lease still leaves evidence of the lease in its trace.
	obs.TraceAsyncBegin("campaign", "lease "+req.ID, l.trace)

	go w.execute(ctx, l)
	writeLeaseJSON(rw, http.StatusAccepted, l.snapshot())
}

func (w *Worker) handleGet(rw http.ResponseWriter, r *http.Request) {
	w.sweep()
	w.mu.Lock()
	l, ok := w.leases[r.PathValue("id")]
	w.mu.Unlock()
	if !ok {
		writeLeaseJSON(rw, http.StatusNotFound, LeaseState{ID: r.PathValue("id"), Error: "fabric: unknown lease"})
		return
	}
	l.mu.Lock()
	l.lastPoll = time.Now() // the heartbeat that keeps the lease alive
	st := l.snapshotLocked()
	l.mu.Unlock()
	writeLeaseJSON(rw, http.StatusOK, st)
}

func (w *Worker) handleDelete(rw http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	w.mu.Lock()
	l, ok := w.leases[id]
	if ok {
		l.cancel()
		delete(w.leases, id)
	}
	obsWLeaseActive.Set(int64(len(w.leases)))
	w.mu.Unlock()
	if !ok {
		writeLeaseJSON(rw, http.StatusNotFound, LeaseState{ID: id, Error: "fabric: unknown lease"})
		return
	}
	writeLeaseJSON(rw, http.StatusOK, LeaseState{ID: id, State: LeaseFailed, Error: "fabric: lease released"})
}

func (w *Worker) handleHealth(rw http.ResponseWriter, _ *http.Request) {
	w.sweep()
	w.mu.Lock()
	n := len(w.leases)
	w.mu.Unlock()
	writeLeaseJSON(rw, http.StatusOK, Health{Status: "ok", Leases: n})
}

func (l *workerLease) snapshot() LeaseState {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapshotLocked()
}

func (l *workerLease) snapshotLocked() LeaseState {
	st := LeaseState{
		ID:        l.req.ID,
		State:     l.state,
		Completed: l.completed,
		Total:     l.req.total(),
		Error:     l.errMsg,
		Fatal:     l.fatal,
	}
	if l.state == LeaseDone {
		st.Shots = l.shots
		st.Items = l.items
		st.Checksum = l.checksum
	}
	return st
}

// fail records a terminal failure.
func (l *workerLease) fail(err error, fatal bool) {
	l.mu.Lock()
	l.state = LeaseFailed
	l.errMsg = err.Error()
	l.fatal = fatal
	l.mu.Unlock()
	obsWLeaseFailed.Add(1)
	obs.LogEvent(obs.Event{Type: "lease.failed", Campaign: l.trace, Lease: l.req.ID, Note: err.Error()})
}

// execute runs a lease to completion (or cancellation) on its own
// goroutine. The span and async end bracket the actual execution, so
// the worker's trace shows both its own timeline row (the "X" span) and
// the campaign-correlated async lifecycle.
func (w *Worker) execute(ctx context.Context, l *workerLease) {
	began := time.Now()
	sp := obs.StartSpan2("lease:", l.req.ID)
	defer func() {
		sp.End()
		obs.TraceAsyncEnd("campaign", "lease "+l.req.ID, l.trace)
		l.mu.Lock()
		state, completed := l.state, l.completed
		l.mu.Unlock()
		if state == LeaseDone {
			obs.LogEvent(obs.Event{Type: "lease.done", Campaign: l.trace, Lease: l.req.ID,
				DurNS: int64(time.Since(began)), N: completed})
		}
	}()
	switch l.req.Kind {
	case KindShots:
		w.executeShots(ctx, l)
	case KindAVF:
		w.executeAVF(ctx, l)
	}
}

// executeShots runs the lease's shot range on a small pool. Every shot
// depends only on (seed, index), so the pool's schedule cannot affect
// the result.
func (w *Worker) executeShots(ctx context.Context, l *workerLease) {
	c, err := w.campaign(l.req.Workload)
	if err != nil {
		l.fail(err, false)
		return
	}
	if l.req.Golden != "" && l.req.Golden != inject.GoldenDigest(c.Golden()) {
		l.fail(errGoldenMismatch(l.req.Workload), true)
		return
	}

	n := l.req.End - l.req.Start
	workers := min(w.cfg.ShotWorkers, n)
	indices := make(chan int)
	shots := make(chan inject.Shot)
	var wg sync.WaitGroup
	for range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				if w.cfg.ShotDelay > 0 {
					select {
					case <-time.After(w.cfg.ShotDelay):
					case <-ctx.Done():
						return
					}
				}
				began := time.Now()
				s := c.RunShot(l.req.Seed, i)
				obsWShotNS.Record(uint64(time.Since(began)))
				select {
				case shots <- s:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		defer close(indices)
		for i := l.req.Start; i < l.req.End; i++ {
			select {
			case indices <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(shots)
	}()

	out := make([]inject.Shot, 0, n)
	for s := range shots {
		out = append(out, s)
		l.mu.Lock()
		l.completed++
		l.mu.Unlock()
	}
	if ctx.Err() != nil {
		l.fail(ctx.Err(), false)
		return
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })

	l.mu.Lock()
	l.shots = out
	l.checksum = ShotsChecksum(out)
	l.state = LeaseDone
	l.mu.Unlock()
	obsWLeaseDone.Add(1)
}

// executeAVF evaluates the lease's query batch serially (each query is
// itself parallelized by the analysis stack underneath).
func (w *Worker) executeAVF(ctx context.Context, l *workerLease) {
	items := make([]AVFItem, 0, len(l.req.Queries))
	for _, q := range l.req.Queries {
		if ctx.Err() != nil {
			l.fail(ctx.Err(), false)
			return
		}
		res, err := w.cfg.AVF(ctx, q)
		if err != nil {
			items = append(items, AVFItem{Error: err.Error()})
		} else {
			items = append(items, AVFItem{Result: res})
		}
		l.mu.Lock()
		l.completed++
		l.mu.Unlock()
	}
	l.mu.Lock()
	l.items = items
	l.checksum = ItemsChecksum(items)
	l.state = LeaseDone
	l.mu.Unlock()
	obsWLeaseDone.Add(1)
}
