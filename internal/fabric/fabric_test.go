package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"mbavf/internal/gpu"
	"mbavf/internal/inject"
	"mbavf/internal/obs"
	"mbavf/internal/sim"
)

// synthWorkload builds a deterministic synthetic workload: every run
// (golden and injected alike) stores tid*mult through a tiny kernel, so
// campaigns over it are fast and their outcomes depend only on the
// injected fault.
func synthWorkload(t testing.TB, name string, mult int32) sim.Workload {
	t.Helper()
	return sim.Workload{
		Name: name,
		Run: func(s *sim.Session) error {
			b := gpu.NewBuilder(name)
			b.VMov(gpu.V(0), gpu.Tid())
			b.VMul(gpu.V(1), gpu.V(0), gpu.Imm(mult))
			b.VShl(gpu.V(2), gpu.V(0), gpu.Imm(2))
			b.VAdd(gpu.V(2), gpu.V(2), gpu.S(0))
			b.VStore(gpu.V(2), 0, gpu.V(1))
			b.EndPgm()
			prog, err := b.Build()
			if err != nil {
				return err
			}
			out := s.OutputWords(gpu.Lanes)
			return s.Run(gpu.Dispatch{Prog: prog, Waves: 1, Args: []uint32{out}})
		},
	}
}

// synthCampaign builds a fresh campaign over one of the two synthetic
// test workloads. Separate instances of the same workload produce
// identical goldens, exactly like separate fleet processes running one
// binary.
func synthCampaign(t testing.TB, name string) *inject.Campaign {
	t.Helper()
	mult := int32(3)
	if name == "synthB" {
		mult = 5
	}
	c, err := inject.NewCampaign(synthWorkload(t, name, mult), sim.InjectionConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// synthResolver resolves the synthetic workloads, building each campaign
// at most once per worker (mirroring the production memoization).
func synthResolver(t testing.TB) CampaignResolver {
	var cache map[string]*inject.Campaign
	return func(name string) (*inject.Campaign, error) {
		if cache == nil {
			cache = map[string]*inject.Campaign{}
		}
		if c, ok := cache[name]; ok {
			return c, nil
		}
		if name != "synthA" && name != "synthB" {
			return nil, fmt.Errorf("unknown test workload %q", name)
		}
		c := synthCampaign(t, name)
		cache[name] = c
		return c, nil
	}
}

// startWorker boots one fabric worker on an httptest server.
func startWorker(t testing.TB, cfg WorkerConfig) (*Worker, *httptest.Server) {
	t.Helper()
	if cfg.Campaigns == nil {
		cfg.Campaigns = synthResolver(t)
	}
	w := NewWorker(cfg)
	mux := http.NewServeMux()
	w.Mount(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(func() {
		srv.Close()
		w.Close()
	})
	return w, srv
}

// fastConfig returns coordinator settings tight enough for tests.
func fastConfig(workers ...string) Config {
	return Config{
		Workers:     workers,
		ShardSize:   5,
		LeaseTTL:    2 * time.Second,
		Heartbeat:   10 * time.Millisecond,
		StallPolls:  200,
		MaxAttempts: 4,
		RetryBase:   5 * time.Millisecond,
		RetryMax:    50 * time.Millisecond,
	}
}

const (
	testN    = 36
	testSeed = int64(7)
)

// counterDelta samples a counter before/after (the obs registry is
// process-global, so tests assert deltas, never absolutes).
func counterDelta(name string) func() uint64 {
	obs.Enable()
	before := obs.NewCounter(name).Value()
	return func() uint64 { return obs.NewCounter(name).Value() - before }
}

// TestBitIdenticalAcrossFleets is the tentpole property test: for two
// distinct workloads, a serial run, a 1-worker fleet, a 3-worker fleet,
// and a 3-worker fleet behind a fault-injecting chaos transport all
// produce byte-identical shot lists.
func TestBitIdenticalAcrossFleets(t *testing.T) {
	for _, name := range []string{"synthA", "synthB"} {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			rc := inject.RunConfig{N: testN, Seed: testSeed, Workers: 1}
			serial, err := synthCampaign(t, name).Run(context.Background(), rc)
			if err != nil {
				t.Fatal(err)
			}
			if !serial.Complete() {
				t.Fatalf("serial run incomplete: %d/%d", len(serial.Shots), testN)
			}

			_, w1 := startWorker(t, WorkerConfig{})
			_, w2 := startWorker(t, WorkerConfig{})
			_, w3 := startWorker(t, WorkerConfig{})

			cases := []struct {
				label string
				cfg   Config
			}{
				{"one-worker", fastConfig(w1.URL)},
				{"three-workers", fastConfig(w1.URL, w2.URL, w3.URL)},
			}
			chaosCfg := fastConfig(w1.URL, w2.URL, w3.URL)
			chaosCfg.Transport = NewChaosTransport(ChaosConfig{
				Seed:        int64(len(name)) + 41,
				DropRequest: 0.15,
				DropResponse: 0.10,
				Err5xx:      0.10,
				Corrupt:     0.10,
				Delay:       0.20,
				MaxDelay:    5 * time.Millisecond,
			}, nil)
			cases = append(cases, struct {
				label string
				cfg   Config
			}{"three-workers-chaos", chaosCfg})

			for _, tc := range cases {
				co := New(tc.cfg, synthCampaign(t, name))
				rep, err := co.Run(context.Background(), rc)
				if err != nil {
					t.Fatalf("%s: %v", tc.label, err)
				}
				if !reflect.DeepEqual(serial.Shots, rep.Shots) {
					t.Errorf("%s: shots differ from serial run", tc.label)
				}
				if serial.Counts() != rep.Counts() {
					t.Errorf("%s: outcome taxonomy differs: serial %+v vs %+v", tc.label, serial.Counts(), rep.Counts())
				}
			}
		})
	}
}

// TestCoordinatorCrashResume cancels a distributed run mid-campaign and
// resumes from its partial report: the union must equal an uninterrupted
// serial run, shot for shot.
func TestCoordinatorCrashResume(t *testing.T) {
	rc := inject.RunConfig{N: testN, Seed: testSeed, Workers: 1}
	serial, err := synthCampaign(t, "synthA").Run(context.Background(), rc)
	if err != nil {
		t.Fatal(err)
	}

	_, w1 := startWorker(t, WorkerConfig{})
	_, w2 := startWorker(t, WorkerConfig{})

	// Phase 1: cancel after a handful of shots have merged.
	ctx, cancel := context.WithCancel(context.Background())
	var merged atomic.Int64
	rc1 := rc
	rc1.OnShot = func(inject.Shot) {
		if merged.Add(1) == 10 {
			cancel()
		}
	}
	co1 := New(fastConfig(w1.URL, w2.URL), synthCampaign(t, "synthA"))
	partial, err := co1.Run(ctx, rc1)
	cancel()
	if err == nil && partial.Complete() {
		t.Skip("campaign finished before the cancellation landed")
	}
	if len(partial.Shots) == 0 {
		t.Fatal("cancelled run drained no shots")
	}

	// Phase 2: a fresh coordinator (the restarted process) resumes from
	// the partial shots, exactly as -resume feeds a checkpoint back in.
	rc2 := rc
	rc2.Completed = partial.Shots
	co2 := New(fastConfig(w1.URL, w2.URL), synthCampaign(t, "synthA"))
	final, err := co2.Run(context.Background(), rc2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Shots, final.Shots) {
		t.Error("resumed run differs from uninterrupted serial run")
	}
	if serial.Counts() != final.Counts() {
		t.Errorf("taxonomy differs: serial %+v vs resumed %+v", serial.Counts(), final.Counts())
	}
}

// TestZeroWorkersFallsBackInProcess covers the graceful-degradation
// floor: no configured workers means the campaign runs locally with
// identical results.
func TestZeroWorkersFallsBackInProcess(t *testing.T) {
	rc := inject.RunConfig{N: 12, Seed: testSeed, Workers: 2}
	serial, err := synthCampaign(t, "synthA").Run(context.Background(), rc)
	if err != nil {
		t.Fatal(err)
	}
	fell := counterDelta("fabric.local_runs")
	co := New(fastConfig(), synthCampaign(t, "synthA"))
	rep, err := co.Run(context.Background(), rc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Shots, rep.Shots) {
		t.Error("in-process fallback differs from serial run")
	}
	if fell() == 0 {
		t.Error("fabric.local_runs did not count the fallback")
	}
}

// TestUnreachableFleetFallsBackLocal: every worker URL refuses
// connections, so after the retry budget each lease executes in-process
// — and the results are still identical.
func TestUnreachableFleetFallsBackLocal(t *testing.T) {
	rc := inject.RunConfig{N: 12, Seed: testSeed, Workers: 1}
	serial, err := synthCampaign(t, "synthA").Run(context.Background(), rc)
	if err != nil {
		t.Fatal(err)
	}
	local := counterDelta("fabric.local_leases")
	quar := counterDelta("fabric.worker_quarantines")
	cfg := fastConfig("http://127.0.0.1:1", "http://127.0.0.1:2")
	cfg.MaxAttempts = 2
	cfg.QuarantineAfter = 1
	cfg.QuarantineFor = time.Hour
	co := New(cfg, synthCampaign(t, "synthA"))
	rep, err := co.Run(context.Background(), rc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Shots, rep.Shots) {
		t.Error("local-fallback run differs from serial run")
	}
	if local() == 0 {
		t.Error("no leases fell back to local execution")
	}
	if quar() == 0 {
		t.Error("repeat-offender workers were not quarantined")
	}
}

// stallServer imitates a sick worker: it accepts every lease and then
// reports running-with-no-progress forever — the straggler the stall
// detector exists for.
func stallServer(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	state := func(rw http.ResponseWriter, id string) {
		rw.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(rw).Encode(LeaseState{ID: id, State: LeaseRunning})
	}
	mux.HandleFunc("POST "+PathLease, func(rw http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		_ = json.NewDecoder(r.Body).Decode(&req)
		rw.WriteHeader(http.StatusAccepted)
		state(rw, req.ID)
	})
	mux.HandleFunc("GET "+PathLease+"/{id}", func(rw http.ResponseWriter, r *http.Request) {
		state(rw, r.PathValue("id"))
	})
	mux.HandleFunc("DELETE "+PathLease+"/{id}", func(rw http.ResponseWriter, r *http.Request) {
		state(rw, r.PathValue("id"))
	})
	mux.HandleFunc("GET "+PathHealth, func(rw http.ResponseWriter, _ *http.Request) {
		writeLeaseJSON(rw, http.StatusOK, Health{Status: "ok"})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestStalledLeaseIsStolen pairs a healthy worker with a stalling one:
// leases dispatched to the straggler must be stolen, re-dispatched, and
// still produce bit-identical results.
func TestStalledLeaseIsStolen(t *testing.T) {
	rc := inject.RunConfig{N: 20, Seed: testSeed, Workers: 1}
	serial, err := synthCampaign(t, "synthA").Run(context.Background(), rc)
	if err != nil {
		t.Fatal(err)
	}
	_, good := startWorker(t, WorkerConfig{})
	bad := stallServer(t)

	stolen := counterDelta("fabric.leases_stolen")
	stalled := counterDelta("fabric.leases_stalled")
	cfg := fastConfig(bad.URL, good.URL)
	cfg.StallPolls = 3
	co := New(cfg, synthCampaign(t, "synthA"))
	rep, err := co.Run(context.Background(), rc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Shots, rep.Shots) {
		t.Error("run with straggler differs from serial run")
	}
	if stolen() == 0 {
		t.Error("no leases were stolen from the stalling worker")
	}
	if stalled() == 0 {
		t.Error("stall detector never fired")
	}
}

// corruptServer executes nothing and returns a plausible done-state with
// shots that do not match their checksum — the malicious/bit-rotted
// worker the response validation must catch.
func corruptServer(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	done := func(rw http.ResponseWriter, id string) {
		shots := []inject.Shot{{Index: 0, Outcome: inject.OutcomeSDC}}
		_ = json.NewEncoder(rw).Encode(LeaseState{
			ID: id, State: LeaseDone, Completed: 1, Total: 1,
			Shots: shots, Checksum: "feedfacefeedface",
		})
	}
	mux.HandleFunc("POST "+PathLease, func(rw http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		_ = json.NewDecoder(r.Body).Decode(&req)
		rw.WriteHeader(http.StatusAccepted)
		done(rw, req.ID)
	})
	mux.HandleFunc("GET "+PathLease+"/{id}", func(rw http.ResponseWriter, r *http.Request) {
		done(rw, r.PathValue("id"))
	})
	mux.HandleFunc("GET "+PathHealth, func(rw http.ResponseWriter, _ *http.Request) {
		writeLeaseJSON(rw, http.StatusOK, Health{Status: "ok"})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestChecksumRejectAndRedispatch proves a worker returning corrupt
// payloads cannot poison a campaign: its results are rejected on
// checksum and the leases re-dispatch to the honest worker.
func TestChecksumRejectAndRedispatch(t *testing.T) {
	rc := inject.RunConfig{N: 20, Seed: testSeed, Workers: 1}
	serial, err := synthCampaign(t, "synthA").Run(context.Background(), rc)
	if err != nil {
		t.Fatal(err)
	}
	_, good := startWorker(t, WorkerConfig{})
	bad := corruptServer(t)

	rejects := counterDelta("fabric.checksum_rejects")
	co := New(fastConfig(bad.URL, good.URL), synthCampaign(t, "synthA"))
	rep, err := co.Run(context.Background(), rc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Shots, rep.Shots) {
		t.Error("run with corrupt worker differs from serial run")
	}
	if rejects() == 0 {
		t.Error("corrupt payloads were never rejected")
	}
}

// TestWorkerLeaseLifecycle exercises the worker endpoints directly:
// idempotent creation, heartbeat polling to completion, release, and the
// golden-mismatch fatal.
func TestWorkerLeaseLifecycle(t *testing.T) {
	_, srv := startWorker(t, WorkerConfig{})
	client := srv.Client()

	post := func(req LeaseRequest) (LeaseState, int) {
		t.Helper()
		body, _ := json.Marshal(req)
		resp, err := client.Post(srv.URL+PathLease, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st LeaseState
		_ = json.NewDecoder(resp.Body).Decode(&st)
		return st, resp.StatusCode
	}
	get := func(id string) (LeaseState, int) {
		t.Helper()
		resp, err := client.Get(srv.URL + PathLease + "/" + id)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st LeaseState
		_ = json.NewDecoder(resp.Body).Decode(&st)
		return st, resp.StatusCode
	}

	campaign := synthCampaign(t, "synthA")
	req := LeaseRequest{
		ID: "shots:test:1", Kind: KindShots, Workload: "synthA",
		Seed: testSeed, Start: 0, End: 4,
		Golden: inject.GoldenDigest(campaign.Golden()),
	}
	if _, code := post(req); code != http.StatusAccepted {
		t.Fatalf("first POST: status %d, want 202", code)
	}
	if _, code := post(req); code != http.StatusOK {
		t.Fatalf("re-POST: status %d, want 200 (idempotent re-attach)", code)
	}

	deadline := time.Now().Add(30 * time.Second)
	var st LeaseState
	for {
		var code int
		st, code = get(req.ID)
		if code != http.StatusOK {
			t.Fatalf("poll: status %d", code)
		}
		if st.State == LeaseDone || st.State == LeaseFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lease never finished: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.State != LeaseDone || len(st.Shots) != 4 {
		t.Fatalf("lease state %q with %d shots, want done with 4", st.State, len(st.Shots))
	}
	if ShotsChecksum(st.Shots) != st.Checksum {
		t.Error("worker checksum does not validate")
	}
	for i, s := range st.Shots {
		if want := campaign.RunShot(testSeed, i); !reflect.DeepEqual(want, s) {
			t.Errorf("shot %d differs from local execution", i)
		}
	}

	// Release, then poll: the lease must be gone.
	delReq, _ := http.NewRequest(http.MethodDelete, srv.URL+PathLease+"/"+req.ID, nil)
	if resp, err := client.Do(delReq); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	if _, code := get(req.ID); code != http.StatusNotFound {
		t.Errorf("poll after release: status %d, want 404", code)
	}

	// A lease whose golden digest disagrees must fail fatally.
	bad := req
	bad.ID = "shots:test:badgolden"
	bad.Golden = "0000000000000000"
	if _, code := post(bad); code != http.StatusAccepted {
		t.Fatalf("bad-golden POST: status %d", code)
	}
	deadline = time.Now().Add(30 * time.Second)
	for {
		st, _ = get(bad.ID)
		if st.State == LeaseFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("bad-golden lease never failed: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !st.Fatal {
		t.Error("golden mismatch was not marked fatal")
	}
}

// TestWorkerGCExpiresOrphanedLeases: a lease nobody polls is swept after
// the worker-side TTL, so a crashed coordinator cannot leak work.
func TestWorkerGCExpiresOrphanedLeases(t *testing.T) {
	w, srv := startWorker(t, WorkerConfig{LeaseTTL: 50 * time.Millisecond, ShotDelay: 10 * time.Millisecond})
	client := srv.Client()
	body, _ := json.Marshal(LeaseRequest{
		ID: "shots:test:orphan", Kind: KindShots, Workload: "synthA",
		Seed: testSeed, Start: 0, End: 100,
	})
	resp, err := client.Post(srv.URL+PathLease, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST: status %d", resp.StatusCode)
	}
	time.Sleep(100 * time.Millisecond)
	w.sweep()
	gr, err := client.Get(srv.URL + PathLease + "/shots:test:orphan")
	if err != nil {
		t.Fatal(err)
	}
	gr.Body.Close()
	if gr.StatusCode != http.StatusNotFound {
		t.Errorf("orphaned lease still alive after TTL: status %d", gr.StatusCode)
	}
}

// TestAVFBatchDistributed runs an AVF query batch through a worker fleet
// and checks order preservation, per-item errors, and equality with the
// in-process evaluator.
func TestAVFBatchDistributed(t *testing.T) {
	eval := func(_ context.Context, q AVFQuery) (json.RawMessage, error) {
		if q.Workload == "bad" {
			return nil, fmt.Errorf("no such workload")
		}
		return json.Marshal(map[string]any{"workload": q.Workload, "factor": q.Factor})
	}
	_, w1 := startWorker(t, WorkerConfig{AVF: eval})
	_, w2 := startWorker(t, WorkerConfig{AVF: eval})

	queries := make([]AVFQuery, 12)
	for i := range queries {
		queries[i] = AVFQuery{Workload: fmt.Sprintf("wl%d", i), Factor: i}
	}
	queries[5].Workload = "bad"

	cfg := fastConfig(w1.URL, w2.URL)
	cfg.ShardSize = 3
	cfg.LocalAVF = eval
	co := New(cfg, nil)
	items, err := co.RunAVFBatch(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != len(queries) {
		t.Fatalf("got %d items for %d queries", len(items), len(queries))
	}
	for i, it := range items {
		if i == 5 {
			if it.Error == "" {
				t.Error("bad query did not carry its error")
			}
			continue
		}
		want, _ := eval(context.Background(), queries[i])
		if string(it.Result) != string(want) {
			t.Errorf("item %d: got %s want %s", i, it.Result, want)
		}
	}

	// Unreachable fleet: the same batch degrades to LocalAVF.
	cfg2 := fastConfig("http://127.0.0.1:1")
	cfg2.ShardSize = 3
	cfg2.MaxAttempts = 1
	cfg2.LocalAVF = eval
	localItems, err := New(cfg2, nil).RunAVFBatch(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(items, localItems) {
		t.Error("distributed and local AVF batches differ")
	}
}

// TestChaosTransportInjects sanity-checks the chaos transport itself:
// with all probabilities at 1 the request never goes through; at 0 it is
// transparent.
func TestChaosTransportInjects(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(rw, `{"ok":true}`)
	}))
	t.Cleanup(srv.Close)

	drop := NewChaosTransport(ChaosConfig{DropRequest: 1}, nil)
	if _, err := (&http.Client{Transport: drop}).Get(srv.URL); err == nil {
		t.Error("DropRequest=1 let a request through")
	}
	if drop.Injected()["drop_request"] == 0 {
		t.Error("drop not recorded")
	}

	clean := NewChaosTransport(ChaosConfig{}, nil)
	resp, err := (&http.Client{Transport: clean}).Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct{ OK bool `json:"ok"` }
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || !out.OK {
		t.Errorf("zero-probability chaos mangled the response: %v %+v", err, out)
	}

	corrupt := NewChaosTransport(ChaosConfig{Corrupt: 1, Seed: 3}, nil)
	resp2, err := (&http.Client{Transport: corrupt}).Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var out2 struct{ OK bool `json:"ok"` }
	derr := json.NewDecoder(resp2.Body).Decode(&out2)
	if derr == nil && out2.OK && corrupt.Injected()["corrupt"] == 0 {
		t.Error("Corrupt=1 left the body untouched")
	}
}

// TestLeaseRequestValidate covers the malformed-lease rejections.
func TestLeaseRequestValidate(t *testing.T) {
	cases := []struct {
		name string
		req  LeaseRequest
		ok   bool
	}{
		{"valid shots", LeaseRequest{ID: "a", Kind: KindShots, Workload: "w", Start: 0, End: 4}, true},
		{"valid avf", LeaseRequest{ID: "a", Kind: KindAVF, Queries: []AVFQuery{{Workload: "w"}}}, true},
		{"no id", LeaseRequest{Kind: KindShots, Workload: "w", End: 4}, false},
		{"no workload", LeaseRequest{ID: "a", Kind: KindShots, End: 4}, false},
		{"empty range", LeaseRequest{ID: "a", Kind: KindShots, Workload: "w", Start: 4, End: 4}, false},
		{"no queries", LeaseRequest{ID: "a", Kind: KindAVF}, false},
		{"bad kind", LeaseRequest{ID: "a", Kind: "nonsense"}, false},
	}
	for _, tc := range cases {
		if err := tc.req.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}
