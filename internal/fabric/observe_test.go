package fabric

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"mbavf/internal/inject"
	"mbavf/internal/obs"
)

// TestTracePropagationAndEvents runs a distributed campaign with the
// obs layer on and checks the whole observability contract at once: the
// lease protocol carries the trace headers (worker events land under
// the coordinator's campaign ID), the recorded trace contains the
// campaign async span plus worker lease spans correlated by that ID,
// the lifecycle event log tells the lease story, and the coordinator's
// fleet scrape publishes the worker's registry snapshot into the
// mbavf_fleet_* exposition.
//
// Not parallel: it drives the process-global trace recorder.
func TestTracePropagationAndEvents(t *testing.T) {
	obs.Enable()
	obs.StartTrace()
	defer obs.StopTrace()

	_, srv := startWorker(t, WorkerConfig{})
	co := New(func() Config {
		c := fastConfig(srv.URL)
		c.ObsScrapeInterval = 20 * time.Millisecond
		return c
	}(), synthCampaign(t, "synthA"))

	// A seed no other test uses, so the campaign ID — the event filter
	// and trace correlation key — is unique even with parallel tests
	// logging into the shared ring.
	const seed, n = int64(4243), 11
	campaignID := fmt.Sprintf("campaign:synthA:%d:%d", seed, n)
	rep, err := co.Run(context.Background(), inject.RunConfig{N: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete() {
		t.Fatalf("campaign incomplete: %d/%d", len(rep.Shots), n)
	}
	obs.StopTrace()

	// Lifecycle events, filtered to this campaign. Worker and
	// coordinator share a process here, so both sides' events land in
	// one ring — exactly what a single merged timeline should survive.
	byType := map[string]int{}
	for _, e := range obs.Events() {
		if e.Campaign == campaignID {
			byType[e.Type]++
		}
	}
	for _, want := range []string{"campaign.start", "campaign.done", "lease.dispatched", "lease.accepted", "lease.completed", "lease.done"} {
		if byType[want] == 0 {
			t.Fatalf("no %s event for %s; got %v", want, campaignID, byType)
		}
	}
	if byType["lease.dispatched"] != byType["lease.completed"] {
		t.Fatalf("dispatched %d != completed %d with a healthy fleet", byType["lease.dispatched"], byType["lease.completed"])
	}

	// The trace: campaign b/e pair plus per-lease b/e pairs, all
	// correlated by the campaign ID.
	raw, err := obs.TraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
			ID   string `json:"id"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	phases := map[string]int{} // ph of events carrying the campaign ID
	leaseSpans := 0
	for _, e := range doc.TraceEvents {
		if e.ID == campaignID {
			phases[e.Ph]++
			if e.Ph == "b" && strings.HasPrefix(e.Name, "lease ") {
				leaseSpans++
			}
		}
	}
	if phases["b"] == 0 || phases["b"] != phases["e"] {
		t.Fatalf("async begin/end unbalanced for %s: %v", campaignID, phases)
	}
	if leaseSpans == 0 {
		t.Fatalf("no worker lease spans correlated with %s: %v", campaignID, phases)
	}
	if phases["n"] == 0 {
		t.Fatalf("no dispatch instants correlated with %s: %v", campaignID, phases)
	}

	// The fleet scrape: the worker's snapshot is published under its URL
	// and the exposition carries merged mbavf_fleet_* series.
	found := false
	for _, w := range obs.FleetWorkers() {
		if w == srv.URL {
			found = true
		}
	}
	if !found {
		t.Fatalf("fleet workers %v missing %s", obs.FleetWorkers(), srv.URL)
	}
	var b strings.Builder
	obs.WritePrometheus(&b)
	page := b.String()
	for _, want := range []string{
		"# TYPE mbavf_fleet_fabric_worker_leases_done counter",
		`mbavf_fleet_fabric_worker_leases_done{worker="` + srv.URL + `"}`,
	} {
		if !strings.Contains(page, want) {
			t.Fatalf("fleet exposition missing %q", want)
		}
	}

	// The timeline built from the same events reports the campaign.
	tl := SummarizeEvents(obs.Events())
	if tl.Dispatched == 0 || tl.Completed == 0 || len(tl.LeaseMS) == 0 {
		t.Fatalf("timeline empty: %+v", tl)
	}
	if len(tl.Tables()) != 2 {
		t.Fatalf("timeline tables = %d, want summary + per-worker", len(tl.Tables()))
	}
}

// TestWorkerMountsObsEndpoints checks the worker-side observability
// endpoints: /fabric/v1/obs serves a registry snapshot and
// /fabric/v1/events serves the event log.
func TestWorkerMountsObsEndpoints(t *testing.T) {
	obs.Enable()
	_, srv := startWorker(t, WorkerConfig{})

	resp, err := http.Get(srv.URL + PathObs)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.RegistrySnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("obs snapshot does not parse: %v", err)
	}

	resp2, err := http.Get(srv.URL + PathEvents)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var events struct {
		Total  uint64      `json:"total"`
		Events []obs.Event `json:"events"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&events); err != nil {
		t.Fatalf("events payload does not parse: %v", err)
	}
}

// TestSummarizeEventsTimeline pins the timeline arithmetic on a
// hand-built event sequence: a steal, a retry, and three completions
// with known latencies.
func TestSummarizeEventsTimeline(t *testing.T) {
	ms := func(d float64) int64 { return int64(d * float64(time.Millisecond)) }
	events := []obs.Event{
		{Type: "lease.dispatched", Campaign: "c", Lease: "l1", Worker: "w1"},
		{Type: "lease.dispatched", Campaign: "c", Lease: "l2", Worker: "w2"},
		{Type: "lease.retry", Campaign: "c", Lease: "l2", Worker: "w2", N: 1},
		{Type: "lease.stolen", Campaign: "c", Lease: "l2", Worker: "w2"},
		{Type: "lease.dispatched", Campaign: "c", Lease: "l2", Worker: "w1"},
		{Type: "lease.completed", Campaign: "c", Lease: "l1", Worker: "w1", DurNS: ms(10)},
		{Type: "lease.completed", Campaign: "c", Lease: "l2", Worker: "w1", DurNS: ms(30)},
		{Type: "lease.dispatched", Campaign: "c", Lease: "l3", Worker: "w2"},
		{Type: "lease.completed", Campaign: "c", Lease: "l3", Worker: "w2", DurNS: ms(20)},
	}
	tl := SummarizeEvents(events)
	if tl.Dispatched != 4 || tl.Completed != 3 || tl.Stolen != 1 || tl.Retries != 1 {
		t.Fatalf("timeline = %+v", tl)
	}
	if got := quantileMS(tl.LeaseMS, 0.50); got != 20 {
		t.Fatalf("p50 = %v, want 20", got)
	}
	if got := quantileMS(tl.LeaseMS, 0.99); got != 30 {
		t.Fatalf("p99 = %v, want 30", got)
	}
	if tl.SlowestWorker != "w1" {
		t.Fatalf("slowest worker = %q, want w1 (30ms max)", tl.SlowestWorker)
	}
	if len(tl.Workers) != 2 {
		t.Fatalf("workers = %+v", tl.Workers)
	}
	w1 := tl.Workers[0]
	if w1.Worker != "w1" || w1.Completed != 2 || w1.MeanMS != 20 {
		t.Fatalf("w1 = %+v", w1)
	}
	if tl.Campaigns[0] != "c" {
		t.Fatalf("campaigns = %v", tl.Campaigns)
	}
}
