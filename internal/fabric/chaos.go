package fabric

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// ChaosConfig tunes a ChaosTransport. All probabilities are in [0, 1]
// and are drawn independently per request from a seeded RNG, so a chaos
// run is reproducible.
type ChaosConfig struct {
	// Seed drives the fault RNG (default 1).
	Seed int64
	// DropRequest is the probability the request never reaches the
	// server (simulated connection failure).
	DropRequest float64
	// DropResponse is the probability the request executes server-side
	// but the response is lost — the case that makes idempotent lease
	// creation mandatory.
	DropResponse float64
	// Err5xx is the probability the response is replaced with a 503.
	Err5xx float64
	// Corrupt is the probability one byte of the response body is
	// bit-flipped (what the checksum validation must catch).
	Corrupt float64
	// Delay is the probability a request is delayed by up to MaxDelay.
	Delay    float64
	MaxDelay time.Duration
}

// ChaosTransport is an http.RoundTripper that injects faults — drops,
// delays, 5xx replacements, and bit-flipped bodies — in front of a real
// transport. Tests wrap the coordinator's client with it to prove the
// fabric converges to bit-identical results under fire.
type ChaosTransport struct {
	cfg  ChaosConfig
	next http.RoundTripper

	mu  sync.Mutex
	rng *rand.Rand

	// Injected counts faults by kind, for asserting the chaos actually
	// fired.
	injected map[string]int
}

// NewChaosTransport wraps next (nil means http.DefaultTransport).
func NewChaosTransport(cfg ChaosConfig, next http.RoundTripper) *ChaosTransport {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 50 * time.Millisecond
	}
	if next == nil {
		next = http.DefaultTransport
	}
	return &ChaosTransport{
		cfg:      cfg,
		next:     next,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		injected: make(map[string]int),
	}
}

// roll draws the per-request fault decisions under one lock acquisition
// so concurrent requests see a deterministic (if interleaving-dependent)
// fault stream.
func (t *ChaosTransport) roll() (dropReq, dropResp, err5xx, corrupt bool, delay time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	dropReq = t.rng.Float64() < t.cfg.DropRequest
	dropResp = t.rng.Float64() < t.cfg.DropResponse
	err5xx = t.rng.Float64() < t.cfg.Err5xx
	corrupt = t.rng.Float64() < t.cfg.Corrupt
	if t.rng.Float64() < t.cfg.Delay {
		delay = time.Duration(t.rng.Int63n(int64(t.cfg.MaxDelay) + 1))
	}
	return
}

func (t *ChaosTransport) note(kind string) {
	t.mu.Lock()
	t.injected[kind]++
	t.mu.Unlock()
}

// Injected reports how many faults of each kind the transport has
// injected so far.
func (t *ChaosTransport) Injected() map[string]int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int, len(t.injected))
	for k, v := range t.injected {
		out[k] = v
	}
	return out
}

// RoundTrip implements http.RoundTripper.
func (t *ChaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	dropReq, dropResp, err5xx, corrupt, delay := t.roll()

	if delay > 0 {
		t.note("delay")
		select {
		case <-time.After(delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if dropReq {
		t.note("drop_request")
		return nil, fmt.Errorf("chaos: connection refused (%s %s)", req.Method, req.URL.Path)
	}

	resp, err := t.next.RoundTrip(req)
	if err != nil {
		return resp, err
	}

	if dropResp {
		// The server DID execute the request; only the response dies.
		t.note("drop_response")
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("chaos: connection reset reading response (%s %s)", req.Method, req.URL.Path)
	}
	if err5xx {
		t.note("err_5xx")
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		body := []byte(`{"error":"chaos: injected 503"}`)
		return &http.Response{
			StatusCode:    http.StatusServiceUnavailable,
			Status:        "503 Service Unavailable",
			Proto:         req.Proto,
			ProtoMajor:    req.ProtoMajor,
			ProtoMinor:    req.ProtoMinor,
			Header:        http.Header{"Content-Type": []string{"application/json"}},
			Body:          io.NopCloser(bytes.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	}
	if corrupt {
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		if len(body) > 0 {
			t.note("corrupt")
			t.mu.Lock()
			pos := t.rng.Intn(len(body))
			bit := byte(1) << uint(t.rng.Intn(8))
			t.mu.Unlock()
			body[pos] ^= bit
		}
		resp.Body = io.NopCloser(bytes.NewReader(body))
		resp.ContentLength = int64(len(body))
	}
	return resp, nil
}
