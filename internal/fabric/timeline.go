package fabric

import (
	"fmt"
	"sort"
	"time"

	"mbavf/internal/obs"
	"mbavf/internal/report"
)

// Timeline summarizes a campaign's lease lifecycle from the structured
// event log: how many leases were dispatched, completed, stolen,
// stalled, retried, checksum-rejected, or executed locally; the lease
// latency distribution; and a per-worker breakdown naming the slowest
// worker. Built by SummarizeEvents from obs.Events() (a live
// coordinator) or from events fetched off a /fabric/v1/events endpoint.
type Timeline struct {
	Campaigns        []string
	Dispatched       int
	Completed        int
	Stolen           int
	Stalled          int
	Expired          int
	Retries          int
	ChecksumRejects  int
	Quarantines      int
	Local            int
	LeaseMS          []float64 // completed-lease latencies, sorted ascending
	Workers          []WorkerTimeline
	SlowestWorker    string
	SlowestWorkerP99 float64
}

// WorkerTimeline is one worker's share of the campaign.
type WorkerTimeline struct {
	Worker     string
	Dispatched int
	Completed  int
	Stolen     int
	Retries    int
	MeanMS     float64
	MaxMS      float64
}

// SummarizeEvents folds lease-lifecycle events into a Timeline. Events
// of unrelated types pass through untouched, so the full event ring can
// be handed over unfiltered.
func SummarizeEvents(events []obs.Event) Timeline {
	var tl Timeline
	campaigns := map[string]bool{}
	byWorker := map[string]*WorkerTimeline{}
	sums := map[string]float64{}
	worker := func(name string) *WorkerTimeline {
		w := byWorker[name]
		if w == nil {
			w = &WorkerTimeline{Worker: name}
			byWorker[name] = w
		}
		return w
	}
	for _, e := range events {
		if e.Campaign != "" {
			campaigns[e.Campaign] = true
		}
		switch e.Type {
		case "lease.dispatched":
			tl.Dispatched++
			worker(e.Worker).Dispatched++
		case "lease.completed":
			tl.Completed++
			w := worker(e.Worker)
			w.Completed++
			ms := float64(e.DurNS) / float64(time.Millisecond)
			tl.LeaseMS = append(tl.LeaseMS, ms)
			sums[e.Worker] += ms
			if ms > w.MaxMS {
				w.MaxMS = ms
			}
		case "lease.stolen":
			tl.Stolen++
			worker(e.Worker).Stolen++
		case "lease.stalled":
			tl.Stalled++
		case "lease.expired":
			tl.Expired++
		case "lease.retry":
			tl.Retries++
			worker(e.Worker).Retries++
		case "lease.checksum_reject":
			tl.ChecksumRejects++
		case "worker.quarantined":
			tl.Quarantines++
		case "lease.local":
			tl.Local++
		}
	}
	sort.Float64s(tl.LeaseMS)
	for name, w := range byWorker {
		if w.Completed > 0 {
			w.MeanMS = sums[name] / float64(w.Completed)
		}
		tl.Workers = append(tl.Workers, *w)
		if w.MaxMS > tl.SlowestWorkerP99 {
			tl.SlowestWorkerP99 = w.MaxMS
			tl.SlowestWorker = name
		}
	}
	sort.Slice(tl.Workers, func(i, j int) bool { return tl.Workers[i].Worker < tl.Workers[j].Worker })
	for c := range campaigns {
		tl.Campaigns = append(tl.Campaigns, c)
	}
	sort.Strings(tl.Campaigns)
	return tl
}

// quantileMS is the exact q-quantile (nearest-rank) of the sorted
// latency slice.
func quantileMS(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q * float64(len(sorted)))
	if float64(rank) < q*float64(len(sorted)) || rank == 0 {
		rank++
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Tables renders the timeline as report tables: one campaign summary
// (lifecycle counts plus the lease latency distribution) and, when any
// worker participated, one per-worker breakdown.
func (tl Timeline) Tables() []*report.Table {
	title := "fabric timeline"
	if len(tl.Campaigns) == 1 {
		title += ": " + tl.Campaigns[0]
	}
	sum := report.NewTable(title, "event", "value")
	sum.AddRowf("leases dispatched", tl.Dispatched)
	sum.AddRowf("leases completed", tl.Completed)
	sum.AddRowf("leases stolen", tl.Stolen)
	sum.AddRowf("leases stalled", tl.Stalled)
	sum.AddRowf("leases expired", tl.Expired)
	sum.AddRowf("lease retries", tl.Retries)
	sum.AddRowf("checksum rejects", tl.ChecksumRejects)
	sum.AddRowf("workers quarantined", tl.Quarantines)
	sum.AddRowf("local fallbacks", tl.Local)
	if len(tl.LeaseMS) > 0 {
		sum.AddRow("lease ms p50", fmt.Sprintf("%.2f", quantileMS(tl.LeaseMS, 0.50)))
		sum.AddRow("lease ms p99", fmt.Sprintf("%.2f", quantileMS(tl.LeaseMS, 0.99)))
		sum.AddRow("lease ms max", fmt.Sprintf("%.2f", tl.LeaseMS[len(tl.LeaseMS)-1]))
	}
	if tl.SlowestWorker != "" {
		sum.AddRow("slowest worker", fmt.Sprintf("%s (%.2f ms)", tl.SlowestWorker, tl.SlowestWorkerP99))
	}
	out := []*report.Table{sum}

	if len(tl.Workers) > 0 {
		t := report.NewTable("fabric timeline: per worker",
			"worker", "dispatched", "completed", "stolen", "retries", "mean ms", "max ms")
		for _, w := range tl.Workers {
			t.AddRow(w.Worker,
				fmt.Sprintf("%d", w.Dispatched), fmt.Sprintf("%d", w.Completed),
				fmt.Sprintf("%d", w.Stolen), fmt.Sprintf("%d", w.Retries),
				fmt.Sprintf("%.2f", w.MeanMS), fmt.Sprintf("%.2f", w.MaxMS))
		}
		out = append(out, t)
	}
	return out
}

// TimelineTables summarizes this process's own event log — what
// mbavf-inject -fabric-timeline prints after a distributed campaign.
func TimelineTables() []*report.Table {
	events := obs.Events()
	if len(events) == 0 {
		return nil
	}
	return SummarizeEvents(events).Tables()
}
