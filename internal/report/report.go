// Package report renders experiment results as aligned ASCII tables and
// series, the textual equivalent of the paper's tables and figures.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Caption string
	Header  []string
	Rows    [][]string
}

// NewTable starts a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends one row of cells; extra or missing cells are tolerated.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowf appends a row where every cell is formatted with the verb for
// its value.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = FormatFloat(v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		case uint64:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(row...)
}

// FormatFloat renders values with precision suited to AVFs and ratios.
func FormatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v < 0.001:
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	if t.Caption != "" {
		fmt.Fprintf(w, "%s\n", t.Caption)
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, wd := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, "%-*s", wd+2, c)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.Header)
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// CSV renders the table as RFC-4180-ish comma-separated values (header
// then rows), for feeding plots.
func (t *Table) CSV(w io.Writer) {
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, ",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			fmt.Fprint(w, c)
		}
		fmt.Fprintln(w)
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
}
