package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Fig X", "workload", "avf")
	tb.Caption = "example"
	tb.AddRowf("minife", 0.4321)
	tb.AddRowf("comd", 123456.0)
	tb.AddRowf("srad", 0.0)
	out := tb.String()
	for _, want := range []string{"== Fig X ==", "example", "workload", "minife", "0.4321", "1.235e+05", "srad"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		0.5:     "0.5000",
		0.0001:  "1.000e-04",
		12345.6: "1.235e+04",
	}
	for v, want := range cases {
		if got := FormatFloat(v); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestAddRowfTypes(t *testing.T) {
	tb := NewTable("types", "a", "b", "c", "d")
	tb.AddRowf("s", 7, uint64(9), 0.25)
	if tb.Rows[0][1] != "7" || tb.Rows[0][2] != "9" || tb.Rows[0][3] != "0.2500" {
		t.Errorf("row = %v", tb.Rows[0])
	}
}

func TestCSVExport(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("x,y", `quo"te`)
	tb.AddRow("plain", "2")
	var sb strings.Builder
	tb.CSV(&sb)
	want := "a,b\n\"x,y\",\"quo\"\"te\"\nplain,2\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}
