package report

import (
	"strings"
	"testing"
)

func barChart() *Chart {
	return &Chart{
		Title:  "Figure X",
		YLabel: "AVF",
		XTicks: []string{"minife", "matmul"},
		Series: []ChartSeries{
			{Name: "logical", Y: []float64{1.0, 1.1}},
			{Name: "way", Y: []float64{1.5, 1.9}},
		},
		Kind: ChartBars,
	}
}

func TestBarChartSVG(t *testing.T) {
	svg, err := barChart().SVG()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<svg", "Figure X", "minife", "logical", "<path", "<title>minife, way: 1.5</title>", "</svg>"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Two series: legend swatches present (rect with rx).
	if strings.Count(svg, `rx="2"`) < 2 {
		t.Error("expected legend swatches for 2 series")
	}
}

func TestLineChartSVG(t *testing.T) {
	c := &Chart{
		Title:  "Over time",
		XTicks: []string{"0", "1", "2"},
		Series: []ChartSeries{{Name: "SDC", Y: []float64{0.1, 0.3, 0.2}}},
		Kind:   ChartLines,
	}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, "<polyline") || !strings.Contains(svg, "<circle") {
		t.Error("line chart missing marks")
	}
	// Single series: no legend block, but a direct end label.
	if !strings.Contains(svg, ">SDC</text>") {
		t.Error("missing direct series label")
	}
}

func TestLogChart(t *testing.T) {
	c := &Chart{
		Title:  "MTTF",
		XTicks: []string{"a", "b"},
		Series: []ChartSeries{{Name: "s", Y: []float64{1e3, 1e7}}},
		Kind:   ChartLines,
		LogY:   true,
	}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	// Decade gridlines produce exponential tick labels.
	if !strings.Contains(svg, "e+0") {
		t.Errorf("log chart should have exponential ticks")
	}
	c.Series[0].Y[0] = 0
	if _, err := c.SVG(); err == nil {
		t.Error("log chart with zero value should fail validation")
	}
}

func TestChartValidation(t *testing.T) {
	c := &Chart{Title: "bad"}
	if _, err := c.SVG(); err == nil {
		t.Error("empty chart should fail")
	}
	c = barChart()
	c.Series[0].Y = c.Series[0].Y[:1]
	if _, err := c.SVG(); err == nil {
		t.Error("length mismatch should fail")
	}
	c = barChart()
	for i := 0; i < 9; i++ {
		c.Series = append(c.Series, ChartSeries{Name: "x", Y: []float64{1, 1}})
	}
	if _, err := c.SVG(); err == nil {
		t.Error("more series than palette slots should fail")
	}
}

func TestXMLEscaping(t *testing.T) {
	c := barChart()
	c.Title = `a<b & "c"`
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, `a<b`) {
		t.Error("title not escaped")
	}
	if !strings.Contains(svg, "a&lt;b &amp;") {
		t.Error("escaped title missing")
	}
}

func TestChartFromTable(t *testing.T) {
	tb := NewTable("Fig", "workload", "ratioA", "ratioB")
	tb.Caption = "cap"
	tb.AddRowf("minife", 1.2, 1.5)
	tb.AddRowf("matmul", 1.1, 1.9)
	tb.AddRowf("MEAN", 1.15, 1.7)
	c, err := ChartFromTable(tb, ChartBars, "ratio", "MEAN")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.XTicks) != 2 {
		t.Errorf("ticks = %v (MEAN should be skipped)", c.XTicks)
	}
	if len(c.Series) != 2 || c.Series[0].Name != "ratioA" {
		t.Errorf("series = %+v", c.Series)
	}
	if c.Subtitle != "cap" {
		t.Error("caption should become subtitle")
	}
	if _, err := c.SVG(); err != nil {
		t.Fatal(err)
	}
}

func TestChartFromTableNonNumeric(t *testing.T) {
	tb := NewTable("Fig", "workload", "note", "val")
	tb.AddRow("a", "hello", "1.5")
	tb.AddRow("b", "world", "2.5")
	c, err := ChartFromTable(tb, ChartBars, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Series) != 1 || c.Series[0].Name != "val" {
		t.Errorf("non-numeric column should be skipped: %+v", c.Series)
	}
	empty := NewTable("none", "a", "b")
	empty.AddRow("x", "y")
	if _, err := ChartFromTable(empty, ChartBars, ""); err == nil {
		t.Error("no numeric columns should error")
	}
}

func TestNiceStep(t *testing.T) {
	cases := map[float64]float64{
		0.9: 0.2, 4.3: 1, 9: 2, 47: 10, 0: 1,
	}
	for max, want := range cases {
		if got := niceStep(max); got != want {
			t.Errorf("niceStep(%v) = %v, want %v", max, got, want)
		}
	}
}
