package report

// SVG figure rendering for experiment results: grouped bars for
// per-workload comparisons, lines for time series, log-scale lines for
// MTTF sweeps. Every chart ships with the rendered table (the "table
// view"), uses a fixed, CVD-validated categorical palette in slot order,
// one y-axis, thin marks with rounded data ends, a recessive grid, a
// legend whenever there are two or more series, and per-mark <title>
// tooltips.

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// chartPalette is the validated categorical palette (light mode, surface
// #fcfcfb), assigned to series in fixed slot order.
var chartPalette = []string{
	"#2a78d6", // blue
	"#1baf7a", // aqua
	"#eda100", // yellow
	"#4a3aa7", // violet
	"#e34948", // red
	"#e87ba4", // magenta
	"#eb6834", // orange
	"#008300", // green
}

const (
	chartSurface   = "#fcfcfb"
	chartTextMain  = "#0b0b0b"
	chartTextSub   = "#52514e"
	chartGrid      = "#e4e3df"
	chartAxis      = "#b5b4ad"
	chartFont      = "system-ui, -apple-system, 'Segoe UI', sans-serif"
	chartW         = 880.0
	chartH         = 440.0
	chartMarginL   = 70.0
	chartMarginR   = 24.0
	chartMarginTop = 76.0
	chartMarginBot = 78.0
)

// ChartKind selects the mark form.
type ChartKind int

const (
	// ChartBars renders grouped vertical bars: one group per x tick, one
	// bar per series. For categorical comparisons (per-workload AVFs).
	ChartBars ChartKind = iota
	// ChartLines renders one polyline per series with point markers. For
	// time series (windowed AVF profiles).
	ChartLines
)

// ChartSeries is one named series of y values aligned with the chart's
// XTicks.
type ChartSeries struct {
	Name string
	Y    []float64
}

// Chart is a renderable figure.
type Chart struct {
	Title    string
	Subtitle string
	YLabel   string
	XTicks   []string
	Series   []ChartSeries
	Kind     ChartKind
	// LogY plots on a log10 scale (all values must be positive).
	LogY bool
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// niceStep returns a 1/2/5-style tick step covering max with 4-6 ticks.
func niceStep(max float64) float64 {
	if max <= 0 {
		return 1
	}
	raw := max / 5
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	for _, m := range []float64{1, 2, 5, 10} {
		if raw <= m*mag {
			return m * mag
		}
	}
	return 10 * mag
}

func fmtTick(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000 || math.Abs(v) < 0.001:
		return strconv.FormatFloat(v, 'e', 0, 64)
	default:
		return strconv.FormatFloat(v, 'g', 3, 64)
	}
}

// Validate checks chart consistency before rendering.
func (c *Chart) Validate() error {
	if len(c.Series) == 0 || len(c.XTicks) == 0 {
		return fmt.Errorf("report: chart %q needs series and x ticks", c.Title)
	}
	if len(c.Series) > len(chartPalette) {
		return fmt.Errorf("report: chart %q has %d series; max %d (fold extras into 'other')",
			c.Title, len(c.Series), len(chartPalette))
	}
	for _, s := range c.Series {
		if len(s.Y) != len(c.XTicks) {
			return fmt.Errorf("report: series %q has %d values for %d ticks", s.Name, len(s.Y), len(c.XTicks))
		}
		if c.LogY {
			for _, v := range s.Y {
				if v <= 0 {
					return fmt.Errorf("report: log chart %q needs positive values", c.Title)
				}
			}
		}
	}
	return nil
}

// SVG renders the chart.
func (c *Chart) SVG() (string, error) {
	if err := c.Validate(); err != nil {
		return "", err
	}
	var b strings.Builder
	plotW := chartW - chartMarginL - chartMarginR
	plotH := chartH - chartMarginTop - chartMarginBot
	x0, y0 := chartMarginL, chartMarginTop

	maxY := 0.0
	minY := math.Inf(1)
	for _, s := range c.Series {
		for _, v := range s.Y {
			maxY = math.Max(maxY, v)
			minY = math.Min(minY, v)
		}
	}
	if maxY <= 0 {
		maxY = 1
	}

	// y mapping.
	var yOf func(v float64) float64
	var gridVals []float64
	if c.LogY {
		lo := math.Floor(math.Log10(minY))
		hi := math.Ceil(math.Log10(maxY))
		if hi == lo {
			hi++
		}
		yOf = func(v float64) float64 {
			return y0 + plotH - plotH*(math.Log10(v)-lo)/(hi-lo)
		}
		for d := lo; d <= hi; d++ {
			gridVals = append(gridVals, math.Pow(10, d))
		}
	} else {
		step := niceStep(maxY)
		top := step * math.Ceil(maxY/step)
		yOf = func(v float64) float64 { return y0 + plotH - plotH*v/top }
		for v := 0.0; v <= top+step/2; v += step {
			gridVals = append(gridVals, v)
		}
	}

	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f" role="img" aria-label="%s">`,
		chartW, chartH, chartW, chartH, esc(c.Title))
	fmt.Fprintf(&b, `<rect width="%.0f" height="%.0f" fill="%s"/>`, chartW, chartH, chartSurface)
	// Title block.
	fmt.Fprintf(&b, `<text x="%.0f" y="26" font-family="%s" font-size="15" font-weight="600" fill="%s">%s</text>`,
		x0, chartFont, chartTextMain, esc(c.Title))
	if c.Subtitle != "" {
		fmt.Fprintf(&b, `<text x="%.0f" y="44" font-family="%s" font-size="11" fill="%s">%s</text>`,
			x0, chartFont, chartTextSub, esc(c.Subtitle))
	}
	// Legend (only for two or more series; a single series is named by
	// the title).
	if len(c.Series) >= 2 {
		lx := x0
		ly := 60.0
		for i, s := range c.Series {
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="10" height="10" rx="2" fill="%s"/>`,
				lx, ly-9, chartPalette[i])
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="%s" font-size="11" fill="%s">%s</text>`,
				lx+14, ly, chartFont, chartTextSub, esc(s.Name))
			lx += 22 + 6.6*float64(len(s.Name))
		}
	}
	// Grid + y ticks.
	for _, v := range gridVals {
		y := yOf(v)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"/>`,
			x0, y, x0+plotW, y, chartGrid)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="%s" font-size="10" fill="%s" text-anchor="end">%s</text>`,
			x0-8, y+3, chartFont, chartTextSub, fmtTick(v))
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, `<text x="16" y="%.1f" font-family="%s" font-size="11" fill="%s" transform="rotate(-90 16 %.1f)" text-anchor="middle">%s</text>`,
			y0+plotH/2, chartFont, chartTextSub, y0+plotH/2, esc(c.YLabel))
	}
	// Baseline.
	base := yOf(gridVals[0])
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"/>`,
		x0, base, x0+plotW, base, chartAxis)

	n := len(c.XTicks)
	slot := plotW / float64(n)
	// X tick labels (rotated when dense).
	rotate := slot < 60
	for i, t := range c.XTicks {
		cx := x0 + slot*(float64(i)+0.5)
		if rotate {
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="%s" font-size="10" fill="%s" text-anchor="end" transform="rotate(-38 %.1f %.1f)">%s</text>`,
				cx, base+14, chartFont, chartTextSub, cx, base+14, esc(t))
		} else {
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="%s" font-size="10" fill="%s" text-anchor="middle">%s</text>`,
				cx, base+16, chartFont, chartTextSub, esc(t))
		}
	}

	switch c.Kind {
	case ChartBars:
		c.renderBars(&b, x0, slot, base, yOf)
	case ChartLines:
		c.renderLines(&b, x0, slot, yOf)
	}
	fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="%s" font-size="9" fill="%s">values in the accompanying table</text>`,
		x0, chartH-8, chartFont, chartTextSub)
	b.WriteString(`</svg>`)
	return b.String(), nil
}

// renderBars draws grouped bars with 2px spacers and rounded data ends.
func (c *Chart) renderBars(b *strings.Builder, x0, slot, base float64, yOf func(float64) float64) {
	ns := float64(len(c.Series))
	inner := slot * 0.78
	barW := (inner - 2*(ns-1)) / ns
	if barW < 2 {
		barW = 2
	}
	r := math.Min(3, barW/2)
	for si, s := range c.Series {
		color := chartPalette[si]
		for i, v := range s.Y {
			gx := x0 + slot*float64(i) + (slot-inner)/2
			bx := gx + float64(si)*(barW+2)
			by := yOf(v)
			h := base - by
			if h < 0.5 && v > 0 {
				h = 0.5
				by = base - h
			}
			// Rounded top corners only (the data end), flat baseline.
			fmt.Fprintf(b, `<path d="M%.1f %.1f L%.1f %.1f Q%.1f %.1f %.1f %.1f L%.1f %.1f Q%.1f %.1f %.1f %.1f L%.1f %.1f Z" fill="%s"><title>%s, %s: %s</title></path>`,
				bx, base, bx, by+r, bx, by, bx+r, by,
				bx+barW-r, by, bx+barW, by, bx+barW, by+r, bx+barW, base,
				color, esc(c.XTicks[i]), esc(s.Name), fmtTick(v))
		}
	}
}

// renderLines draws 2px polylines with markers and direct end labels.
func (c *Chart) renderLines(b *strings.Builder, x0, slot float64, yOf func(float64) float64) {
	for si, s := range c.Series {
		color := chartPalette[si]
		var pts []string
		for i, v := range s.Y {
			cx := x0 + slot*(float64(i)+0.5)
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", cx, yOf(v)))
		}
		fmt.Fprintf(b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2" stroke-linejoin="round"/>`,
			strings.Join(pts, " "), color)
		for i, v := range s.Y {
			cx := x0 + slot*(float64(i)+0.5)
			cy := yOf(v)
			fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`, cx, cy, color)
			// Oversized invisible hit target carrying the tooltip.
			fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="8" fill="transparent"><title>%s, %s: %s</title></circle>`,
				cx, cy, esc(c.XTicks[i]), esc(s.Name), fmtTick(v))
		}
		// Direct label at the line end, in secondary ink (identity comes
		// from the adjacent marker color, not colored text).
		lastX := x0 + slot*(float64(len(s.Y)-1)+0.5)
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-family="%s" font-size="10" fill="%s">%s</text>`,
			lastX+8, yOf(s.Y[len(s.Y)-1])+3, chartFont, chartTextSub, esc(s.Name))
	}
}

// ChartFromTable builds a chart from a rendered table: column 0 supplies
// the x ticks and every fully numeric column becomes a series. Rows whose
// label is in skipRows (e.g. "MEAN", "TOTAL") are dropped.
func ChartFromTable(t *Table, kind ChartKind, yLabel string, skipRows ...string) (*Chart, error) {
	skip := map[string]bool{}
	for _, s := range skipRows {
		skip[s] = true
	}
	var ticks []string
	var rows [][]string
	for _, row := range t.Rows {
		if len(row) == 0 || skip[row[0]] {
			continue
		}
		ticks = append(ticks, row[0])
		rows = append(rows, row)
	}
	if len(ticks) == 0 {
		return nil, fmt.Errorf("report: table %q has no chartable rows", t.Title)
	}
	c := &Chart{Title: t.Title, Subtitle: t.Caption, YLabel: yLabel, XTicks: ticks, Kind: kind}
	for col := 1; col < len(t.Header); col++ {
		ys := make([]float64, 0, len(rows))
		ok := true
		for _, row := range rows {
			if col >= len(row) {
				ok = false
				break
			}
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil {
				ok = false
				break
			}
			ys = append(ys, v)
		}
		if ok {
			c.Series = append(c.Series, ChartSeries{Name: t.Header[col], Y: ys})
		}
		if len(c.Series) == len(chartPalette) {
			break
		}
	}
	if len(c.Series) == 0 {
		return nil, fmt.Errorf("report: table %q has no numeric columns", t.Title)
	}
	return c, nil
}
