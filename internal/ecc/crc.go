package ecc

// Working CRC codecs backing the CRC reaction model. CRC-8 uses the
// polynomial x^8+x^2+x+1 (0x07) and CRC-16 the CCITT polynomial
// x^16+x^12+x^5+1 (0x1021). A CRC of width w detects every error burst of
// length <= w bits, which is the property the CRC reaction model relies on
// for contiguous spatial multi-bit faults.

// CRC8 computes the CRC-8 (poly 0x07, init 0) of data.
func CRC8(data []byte) uint8 {
	var crc uint8
	for _, b := range data {
		crc ^= b
		for i := 0; i < 8; i++ {
			if crc&0x80 != 0 {
				crc = crc<<1 ^ 0x07
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// CRC16 computes the CRC-16/CCITT (poly 0x1021, init 0xFFFF) of data.
func CRC16(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// CheckCRC8 reports whether data still matches the stored checksum.
func CheckCRC8(data []byte, sum uint8) bool { return CRC8(data) == sum }

// CheckCRC16 reports whether data still matches the stored checksum.
func CheckCRC16(data []byte, sum uint16) bool { return CRC16(data) == sum }
