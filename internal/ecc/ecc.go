// Package ecc models the error-protection schemes that guard SRAM
// protection domains: even parity, SEC-DED and DEC-TED ECC, CRC, and
// no protection.
//
// The MB-AVF engine only needs each scheme's reaction to k simultaneously
// flipped bits within one protection domain (Section V-A of the paper):
// corrected, detected-uncorrected, or undetected. This package provides
// those reaction models plus real encoder/decoder implementations for
// parity, Hamming SEC-DED, and CRC so the reaction models are validated
// against working codecs rather than assumed.
package ecc

import "fmt"

// Reaction is the action a protection domain takes upon observing a fault
// while reading its word.
type Reaction int

const (
	// ReactNone: no bits flipped; the read returns clean data.
	ReactNone Reaction = iota
	// ReactCorrected: the scheme corrects the fault; no error results.
	ReactCorrected
	// ReactDetected: the scheme detects but cannot correct the fault; a
	// detected uncorrected error (DUE) results if the data mattered.
	ReactDetected
	// ReactUndetected: the fault defeats the scheme (possibly via
	// miscorrection); silent data corruption results if the data mattered.
	ReactUndetected
)

func (r Reaction) String() string {
	switch r {
	case ReactNone:
		return "none"
	case ReactCorrected:
		return "corrected"
	case ReactDetected:
		return "detected"
	case ReactUndetected:
		return "undetected"
	default:
		return fmt.Sprintf("Reaction(%d)", int(r))
	}
}

// Scheme describes the protection applied to each protection domain of a
// hardware structure.
type Scheme interface {
	// Name returns a short display name ("parity", "sec-ded", ...).
	Name() string
	// React returns the scheme's reaction to flipped simultaneous bit
	// flips within a single protection domain.
	React(flipped int) Reaction
	// CheckBits returns the number of check bits required to protect a
	// word of dataBits data bits.
	CheckBits(dataBits int) int
}

// Overhead returns the relative area overhead of scheme s protecting
// dataBits-bit words: check bits divided by data bits.
func Overhead(s Scheme, dataBits int) float64 {
	return float64(s.CheckBits(dataBits)) / float64(dataBits)
}

// None is the absence of protection: every fault is undetected.
type None struct{}

func (None) Name() string { return "none" }

func (None) React(flipped int) Reaction {
	if flipped == 0 {
		return ReactNone
	}
	return ReactUndetected
}

func (None) CheckBits(dataBits int) int { return 0 }

// Parity is single-bit even parity over the protection domain. It detects
// every fault flipping an odd number of bits and is defeated by every
// even-sized fault. The paper (Section VIII) leans on this property:
// parity guarantees detection of all odd-weight faults, so it can beat
// SEC-DED on detection of large multi-bit faults.
type Parity struct{}

func (Parity) Name() string { return "parity" }

func (Parity) React(flipped int) Reaction {
	switch {
	case flipped == 0:
		return ReactNone
	case flipped%2 == 1:
		return ReactDetected
	default:
		return ReactUndetected
	}
}

func (Parity) CheckBits(dataBits int) int { return 1 }

// SECDED is single-error-correcting, double-error-detecting Hamming ECC.
// One flipped bit is corrected, two are detected, and three or more defeat
// the code (the decoder may even miscorrect, making the data worse); all
// are undetected for AVF purposes.
type SECDED struct{}

func (SECDED) Name() string { return "sec-ded" }

func (SECDED) React(flipped int) Reaction {
	switch {
	case flipped == 0:
		return ReactNone
	case flipped == 1:
		return ReactCorrected
	case flipped == 2:
		return ReactDetected
	default:
		return ReactUndetected
	}
}

// CheckBits returns the Hamming SEC-DED check-bit count: the smallest r
// with 2^r >= dataBits + r + 1, plus one overall parity bit. For 32-bit
// words this is 7 (21.9% overhead); for 64-bit words 8; for 128-bit words
// 9 (the 7% the paper quotes).
func (SECDED) CheckBits(dataBits int) int {
	r := 0
	for (1 << r) < dataBits+r+1 {
		r++
	}
	return r + 1
}

// DECTED is double-error-correcting, triple-error-detecting ECC. Up to two
// flipped bits are corrected, three are detected, four or more defeat the
// code.
type DECTED struct{}

func (DECTED) Name() string { return "dec-ted" }

func (DECTED) React(flipped int) Reaction {
	switch {
	case flipped == 0:
		return ReactNone
	case flipped <= 2:
		return ReactCorrected
	case flipped == 3:
		return ReactDetected
	default:
		return ReactUndetected
	}
}

// CheckBits returns the DEC-TED check-bit count, 2r+1 where r is the
// single-error Hamming parameter. For 128-bit words this is 17, the 13%
// overhead quoted in the paper's introduction.
func (DECTED) CheckBits(dataBits int) int {
	r := 0
	for (1 << r) < dataBits+r+1 {
		r++
	}
	return 2*r + 1
}

// CRC is a cyclic redundancy code of the given width used purely for
// detection. Spatial multi-bit faults within one protection domain are
// contiguous bursts, and a CRC of width w detects every burst of length
// <= w, so the reaction model detects any fault of up to Width bits and is
// conservatively defeated by larger ones.
type CRC struct {
	// Width is the CRC width in bits (8 or 16 for the real codecs in this
	// package).
	Width int
}

func (c CRC) Name() string { return fmt.Sprintf("crc-%d", c.Width) }

func (c CRC) React(flipped int) Reaction {
	switch {
	case flipped == 0:
		return ReactNone
	case flipped <= c.Width:
		return ReactDetected
	default:
		return ReactUndetected
	}
}

func (c CRC) CheckBits(dataBits int) int { return c.Width }
