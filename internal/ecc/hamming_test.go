package ecc

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

func encode32(h *Hamming, v uint32) []byte {
	var data [4]byte
	binary.LittleEndian.PutUint32(data[:], v)
	return h.Encode(data[:])
}

func TestHammingParameters(t *testing.T) {
	cases := []struct {
		dataBits, checkBits, codeBits int
	}{
		{8, 5, 13},
		{32, 7, 39}, // the (39,32) code
		{64, 8, 72}, // the (72,64) code
		{128, 9, 137},
	}
	for _, c := range cases {
		h := NewHamming(c.dataBits)
		if h.CheckBits() != c.checkBits {
			t.Errorf("Hamming(%d) check bits = %d, want %d", c.dataBits, h.CheckBits(), c.checkBits)
		}
		if h.CodewordBits() != c.codeBits {
			t.Errorf("Hamming(%d) codeword bits = %d, want %d", c.dataBits, h.CodewordBits(), c.codeBits)
		}
		// Codec parameters must agree with the SECDED reaction model's
		// overhead accounting.
		if h.CheckBits() != (SECDED{}).CheckBits(c.dataBits) {
			t.Errorf("Hamming(%d) check bits disagree with SECDED.CheckBits", c.dataBits)
		}
	}
}

func TestHammingRoundTripClean(t *testing.T) {
	h := NewHamming(32)
	for _, v := range []uint32{0, 1, 0xFFFFFFFF, 0xDEADBEEF, 0x80000001} {
		cw := encode32(h, v)
		data, r := h.Decode(cw)
		if r != ReactNone {
			t.Errorf("clean decode of %#x reacted %v", v, r)
		}
		if got := binary.LittleEndian.Uint32(data); got != v {
			t.Errorf("round trip %#x -> %#x", v, got)
		}
	}
}

func TestHammingCorrectsEverySingleBitFlip(t *testing.T) {
	h := NewHamming(32)
	v := uint32(0xCAFEF00D)
	for i := 0; i < h.CodewordBits(); i++ {
		cw := encode32(h, v)
		h.FlipCodewordBit(cw, i)
		data, r := h.Decode(cw)
		if r != ReactCorrected {
			t.Fatalf("flip bit %d: reaction %v, want corrected", i, r)
		}
		if got := binary.LittleEndian.Uint32(data); got != v {
			t.Fatalf("flip bit %d: data %#x, want %#x", i, got, v)
		}
	}
}

func TestHammingDetectsEveryDoubleBitFlip(t *testing.T) {
	h := NewHamming(32)
	v := uint32(0x12345678)
	for i := 0; i < h.CodewordBits(); i++ {
		for j := i + 1; j < h.CodewordBits(); j++ {
			cw := encode32(h, v)
			h.FlipCodewordBit(cw, i)
			h.FlipCodewordBit(cw, j)
			_, r := h.Decode(cw)
			if r != ReactDetected {
				t.Fatalf("flip bits %d,%d: reaction %v, want detected", i, j, r)
			}
		}
	}
}

func TestHamming64SingleAndDouble(t *testing.T) {
	h := NewHamming(64)
	var data [8]byte
	binary.LittleEndian.PutUint64(data[:], 0xA5A5_5A5A_0F0F_F0F0)
	cw := h.Encode(data[:])
	h.FlipCodewordBit(cw, 17)
	out, r := h.Decode(cw)
	if r != ReactCorrected || !bytes.Equal(out, data[:]) {
		t.Fatalf("64-bit single-flip: r=%v data ok=%v", r, bytes.Equal(out, data[:]))
	}
	cw = h.Encode(data[:])
	h.FlipCodewordBit(cw, 3)
	h.FlipCodewordBit(cw, 70)
	_, r = h.Decode(cw)
	if r != ReactDetected {
		t.Fatalf("64-bit double-flip: r=%v, want detected", r)
	}
}

func TestHammingQuickRandomWords(t *testing.T) {
	h := NewHamming(32)
	f := func(v uint32, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cw := encode32(h, v)
		switch r.Intn(3) {
		case 0: // clean
			data, react := h.Decode(cw)
			return react == ReactNone && binary.LittleEndian.Uint32(data) == v
		case 1: // single flip
			h.FlipCodewordBit(cw, r.Intn(h.CodewordBits()))
			data, react := h.Decode(cw)
			return react == ReactCorrected && binary.LittleEndian.Uint32(data) == v
		default: // double flip
			i := r.Intn(h.CodewordBits())
			j := (i + 1 + r.Intn(h.CodewordBits()-1)) % h.CodewordBits()
			h.FlipCodewordBit(cw, i)
			h.FlipCodewordBit(cw, j)
			_, react := h.Decode(cw)
			return react == ReactDetected
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestHammingTripleFaultsAlias demonstrates why >=3-bit faults must be
// modeled as undetected: contiguous triple flips frequently decode as
// (mis)corrected clean-looking words.
func TestHammingTripleFaultsAlias(t *testing.T) {
	h := NewHamming(32)
	v := uint32(0x0BADF00D)
	miscorrected := 0
	for i := 0; i+2 < h.CodewordBits(); i++ {
		cw := encode32(h, v)
		h.FlipCodewordBit(cw, i)
		h.FlipCodewordBit(cw, i+1)
		h.FlipCodewordBit(cw, i+2)
		data, r := h.Decode(cw)
		if r == ReactCorrected && binary.LittleEndian.Uint32(data) != v {
			miscorrected++
		}
	}
	if miscorrected == 0 {
		t.Error("expected at least one miscorrection from 3x1 faults; SECDED undetected model would be vacuous")
	}
}

func TestCRCCodecs(t *testing.T) {
	data := []byte("multi-bit fault analysis")
	s8, s16 := CRC8(data), CRC16(data)
	if !CheckCRC8(data, s8) || !CheckCRC16(data, s16) {
		t.Fatal("clean CRC check failed")
	}
	corrupt := append([]byte(nil), data...)
	corrupt[3] ^= 0x18 // 2-bit burst
	if CheckCRC8(corrupt, s8) {
		t.Error("CRC8 missed a 2-bit burst")
	}
	if CheckCRC16(corrupt, s16) {
		t.Error("CRC16 missed a 2-bit burst")
	}
}

// TestCRCDetectsAllShortBursts validates the burst-detection property the
// CRC reaction model depends on: every contiguous burst of length <= width
// is detected.
func TestCRCDetectsAllShortBursts(t *testing.T) {
	data := make([]byte, 16)
	for i := range data {
		data[i] = byte(i*37 + 11)
	}
	s8, s16 := CRC8(data), CRC16(data)
	totalBits := len(data) * 8
	for burst := 1; burst <= 8; burst++ {
		for start := 0; start+burst <= totalBits; start++ {
			corrupt := append([]byte(nil), data...)
			// Flip first and last bit of the burst plus alternating interior
			// bits: a worst-ish case still within the burst window.
			for b := 0; b < burst; b++ {
				if b == 0 || b == burst-1 || b%2 == 0 {
					corrupt[(start+b)/8] ^= 1 << ((start + b) % 8)
				}
			}
			if CheckCRC8(corrupt, s8) {
				t.Fatalf("CRC8 missed burst len %d at bit %d", burst, start)
			}
			if CheckCRC16(corrupt, s16) {
				t.Fatalf("CRC16 missed burst len %d at bit %d", burst, start)
			}
		}
	}
}
