package ecc

// Hamming is a working single-error-correcting, double-error-detecting
// (SEC-DED) Hamming encoder/decoder over arbitrary data widths. It backs
// the SECDED reaction model with a real codec: the package tests verify
// that every 1-bit corruption is corrected and every 2-bit corruption is
// detected, exactly as SECDED.React assumes.
//
// Codeword layout uses the classic extended-Hamming arrangement: bit
// positions 1..m carry data and Hamming parity bits (parity at power-of-two
// positions), and position 0 carries an overall even-parity bit that
// upgrades SEC to SEC-DED.
type Hamming struct {
	dataBits   int
	parityBits int   // Hamming parity bits (excluding the overall bit)
	codeBits   int   // total codeword bits, including position 0
	dataPos    []int // codeword position of each data bit, ascending
}

// NewHamming returns a SEC-DED codec for dataBits-bit data words.
// NewHamming(32) yields the (39,32) code and NewHamming(64) the (72,64)
// code used for 32- and 64-bit SRAM words.
func NewHamming(dataBits int) *Hamming {
	if dataBits < 1 {
		panic("ecc: Hamming data width must be >= 1")
	}
	r := 0
	for (1 << r) < dataBits+r+1 {
		r++
	}
	h := &Hamming{
		dataBits:   dataBits,
		parityBits: r,
		codeBits:   dataBits + r + 1,
		dataPos:    make([]int, 0, dataBits),
	}
	for pos := 1; len(h.dataPos) < dataBits; pos++ {
		if pos&(pos-1) != 0 { // not a power of two: data position
			h.dataPos = append(h.dataPos, pos)
		}
	}
	return h
}

// DataBits returns the data word width in bits.
func (h *Hamming) DataBits() int { return h.dataBits }

// CheckBits returns the number of check bits (Hamming parity plus the
// overall parity bit). For 32-bit data this is 7.
func (h *Hamming) CheckBits() int { return h.parityBits + 1 }

// CodewordBits returns the total codeword width in bits.
func (h *Hamming) CodewordBits() int { return h.codeBits }

// CodewordBytes returns the codeword buffer size in bytes.
func (h *Hamming) CodewordBytes() int { return (h.codeBits + 7) / 8 }

func getBit(b []byte, i int) int { return int(b[i/8]>>(i%8)) & 1 }
func setBit(b []byte, i, v int)  { b[i/8] = b[i/8]&^(1<<(i%8)) | byte(v&1)<<(i%8) }
func flipBit(b []byte, i int)    { b[i/8] ^= 1 << (i % 8) }
func bitLen(b []byte, bits int)  { _ = b[(bits-1)/8] } // bounds hint

// Encode encodes the low dataBits bits of data (little-endian bit order
// within bytes) into a fresh codeword buffer.
func (h *Hamming) Encode(data []byte) []byte {
	bitLen(data, h.dataBits)
	cw := make([]byte, h.CodewordBytes())
	for i, pos := range h.dataPos {
		setBit(cw, pos, getBit(data, i))
	}
	// Hamming parity bits: parity bit at position 2^j covers every
	// position with bit j set.
	for j := 0; j < h.parityBits; j++ {
		p := 0
		for pos := 1; pos < h.codeBits; pos++ {
			if pos&(1<<j) != 0 && pos != 1<<j {
				p ^= getBit(cw, pos)
			}
		}
		setBit(cw, 1<<j, p)
	}
	// Overall even parity at position 0 over the full codeword.
	p := 0
	for pos := 1; pos < h.codeBits; pos++ {
		p ^= getBit(cw, pos)
	}
	setBit(cw, 0, p)
	return cw
}

// Decode decodes a codeword, correcting a single-bit error in place if one
// is present. It returns the recovered data bits and the decoder reaction:
// ReactNone for a clean word, ReactCorrected after fixing a single flipped
// bit, and ReactDetected for an uncorrectable (double-bit) error, in which
// case the returned data is unreliable. Faults of three or more bits may
// alias to any of these outcomes — that possibility is exactly why the
// SECDED reaction model treats them as undetected.
func (h *Hamming) Decode(cw []byte) ([]byte, Reaction) {
	syndrome := 0
	overall := 0
	for pos := 0; pos < h.codeBits; pos++ {
		if getBit(cw, pos) == 1 {
			syndrome ^= pos
			overall ^= 1
		}
	}
	reaction := ReactNone
	switch {
	case syndrome == 0 && overall == 0:
		// Clean.
	case overall == 1:
		// Single-bit error at position syndrome (syndrome 0 means the
		// overall parity bit itself flipped).
		if syndrome < h.codeBits {
			flipBit(cw, syndrome)
			reaction = ReactCorrected
		} else {
			reaction = ReactDetected
		}
	default:
		// Non-zero syndrome with even overall parity: double-bit error.
		reaction = ReactDetected
	}
	data := make([]byte, (h.dataBits+7)/8)
	for i, pos := range h.dataPos {
		setBit(data, i, getBit(cw, pos))
	}
	return data, reaction
}

// FlipCodewordBit flips bit i of codeword cw; it is exported for fault
// injection in tests and examples.
func (h *Hamming) FlipCodewordBit(cw []byte, i int) {
	if i < 0 || i >= h.codeBits {
		panic("ecc: codeword bit out of range")
	}
	flipBit(cw, i)
}
