package ecc

import "testing"

// FuzzHammingDecode checks the decoder never panics and never reports a
// clean word for a corrupted codeword of weight 1 or 2.
func FuzzHammingDecode(f *testing.F) {
	f.Add([]byte{0xDE, 0xAD, 0xBE, 0xEF}, uint8(3), uint8(17))
	f.Add([]byte{0, 0, 0, 0}, uint8(0), uint8(0))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF}, uint8(38), uint8(38))
	h := NewHamming(32)
	f.Fuzz(func(t *testing.T, data []byte, i, j uint8) {
		if len(data) < 4 {
			return
		}
		cw := h.Encode(data[:4])
		bi := int(i) % h.CodewordBits()
		bj := int(j) % h.CodewordBits()
		h.FlipCodewordBit(cw, bi)
		if bj != bi {
			h.FlipCodewordBit(cw, bj)
		}
		_, r := h.Decode(cw)
		if bj == bi && r != ReactCorrected {
			t.Fatalf("single flip at %d reacted %v", bi, r)
		}
		if bj != bi && r != ReactDetected {
			t.Fatalf("double flip %d,%d reacted %v", bi, bj, r)
		}
	})
}
