package ecc

import (
	"math"
	"testing"
)

func TestReactionStrings(t *testing.T) {
	if ReactNone.String() != "none" || ReactCorrected.String() != "corrected" ||
		ReactDetected.String() != "detected" || ReactUndetected.String() != "undetected" {
		t.Error("reaction strings wrong")
	}
	if Reaction(99).String() != "Reaction(99)" {
		t.Error("unknown reaction string wrong")
	}
}

func TestParityReactions(t *testing.T) {
	p := Parity{}
	if p.React(0) != ReactNone {
		t.Error("parity React(0)")
	}
	for k := 1; k <= 9; k += 2 {
		if p.React(k) != ReactDetected {
			t.Errorf("parity React(%d) = %v, want detected", k, p.React(k))
		}
	}
	for k := 2; k <= 8; k += 2 {
		if p.React(k) != ReactUndetected {
			t.Errorf("parity React(%d) = %v, want undetected", k, p.React(k))
		}
	}
}

func TestSECDEDReactions(t *testing.T) {
	s := SECDED{}
	want := map[int]Reaction{0: ReactNone, 1: ReactCorrected, 2: ReactDetected, 3: ReactUndetected, 8: ReactUndetected}
	for k, w := range want {
		if got := s.React(k); got != w {
			t.Errorf("secded React(%d) = %v, want %v", k, got, w)
		}
	}
}

func TestDECTEDReactions(t *testing.T) {
	d := DECTED{}
	want := map[int]Reaction{0: ReactNone, 1: ReactCorrected, 2: ReactCorrected, 3: ReactDetected, 4: ReactUndetected}
	for k, w := range want {
		if got := d.React(k); got != w {
			t.Errorf("dected React(%d) = %v, want %v", k, got, w)
		}
	}
}

func TestNoneReactions(t *testing.T) {
	n := None{}
	if n.React(0) != ReactNone || n.React(1) != ReactUndetected || n.React(5) != ReactUndetected {
		t.Error("none reactions wrong")
	}
	if n.CheckBits(64) != 0 {
		t.Error("none should need no check bits")
	}
}

func TestCRCReactions(t *testing.T) {
	c := CRC{Width: 8}
	if c.React(0) != ReactNone || c.React(1) != ReactDetected || c.React(8) != ReactDetected || c.React(9) != ReactUndetected {
		t.Error("crc reactions wrong")
	}
	if c.Name() != "crc-8" {
		t.Errorf("crc name = %q", c.Name())
	}
}

// TestPaperOverheads checks the concrete overhead numbers quoted in the
// paper: SEC-DED on 128-bit data needs 9 check bits (7%), DEC-TED needs 17
// (13%), and on 32-bit registers SEC-DED is 21.9% and parity 3.1%.
func TestPaperOverheads(t *testing.T) {
	if got := (SECDED{}).CheckBits(128); got != 9 {
		t.Errorf("SEC-DED 128-bit check bits = %d, want 9", got)
	}
	if got := (DECTED{}).CheckBits(128); got != 17 {
		t.Errorf("DEC-TED 128-bit check bits = %d, want 17", got)
	}
	if got := (SECDED{}).CheckBits(32); got != 7 {
		t.Errorf("SEC-DED 32-bit check bits = %d, want 7", got)
	}
	if got := Overhead(SECDED{}, 32); math.Abs(got-0.219) > 0.001 {
		t.Errorf("SEC-DED 32-bit overhead = %.4f, want 0.219", got)
	}
	if got := Overhead(Parity{}, 32); math.Abs(got-0.031) > 0.001 {
		t.Errorf("parity 32-bit overhead = %.4f, want 0.031", got)
	}
	if got := Overhead(DECTED{}, 128); math.Abs(got-0.133) > 0.001 {
		t.Errorf("DEC-TED 128-bit overhead = %.4f, want 0.133", got)
	}
	if got := Overhead(SECDED{}, 128); math.Abs(got-0.070) > 0.001 {
		t.Errorf("SEC-DED 128-bit overhead = %.4f, want 0.070", got)
	}
}

func TestSchemeInterfaceConformance(t *testing.T) {
	schemes := []Scheme{None{}, Parity{}, SECDED{}, DECTED{}, CRC{Width: 16}}
	for _, s := range schemes {
		if s.Name() == "" {
			t.Errorf("%T has empty name", s)
		}
		if s.React(0) != ReactNone {
			t.Errorf("%s React(0) != none", s.Name())
		}
	}
}
