package core

import (
	"fmt"

	"mbavf/internal/bitgeom"
	"mbavf/internal/interval"
)

// Locality quantifies the paper's ACE-locality property for one fault
// mode over one layout: the tendency of physically adjacent bits to be
// ACE at the same time.
type Locality struct {
	ModeName string
	Groups   int
	// AnyACE is the total group-cycles during which at least one bit of
	// the group is ACE (the MB-AVF numerator for an always-detecting
	// scheme); AllACE counts cycles during which every bit is ACE.
	AnyACE interval.Cycle
	AllACE interval.Cycle
}

// Coefficient returns P(all bits ACE | any bit ACE) in [0, 1]. A
// structure with coefficient 1 has perfectly correlated adjacent-bit
// ACEness, so its MB-AVF equals its SB-AVF (the 1x floor); a coefficient
// near 0 means adjacent ACE times are disjoint and MB-AVF approaches M
// times SB-AVF.
func (l Locality) Coefficient() float64 {
	if l.AnyACE == 0 {
		return 0
	}
	return float64(l.AllACE) / float64(l.AnyACE)
}

// ACELocality measures the ACE locality of fault mode under the
// analyzer's layout, using microarchitectural ACEness (scheme-independent).
// Higher locality predicts lower MB-AVF for the same SB-AVF, which is the
// design lever behind logical interleaving (Section VI-B).
func (a *Analyzer) ACELocality(mode bitgeom.FaultMode) (Locality, error) {
	if err := a.Validate(); err != nil {
		return Locality{}, err
	}
	geom := a.Layout.Geom
	groups := geom.GroupCount(mode)
	if groups == 0 {
		return Locality{}, fmt.Errorf("core: fault mode %s does not fit geometry %dx%d",
			mode.Name(), geom.Rows, geom.Cols)
	}
	loc := Locality{ModeName: mode.Name(), Groups: groups}
	msize := mode.Size()
	cursors := make([]byteCursor, msize)
	states := make([]byteState, msize)
	bitBuf := make([]bitgeom.BitPos, 0, msize)
	for gi := 0; gi < groups; gi++ {
		bitBuf = geom.GroupBits(mode, gi, bitBuf[:0])
		for i, pos := range bitBuf {
			wb, _ := a.Layout.Map(pos)
			byteIdx := wb.Bit / 8
			cursors[i] = byteCursor{
				segs:     a.Tracker.Segments(wb.Word, byteIdx),
				byteIdx:  byteIdx,
				analyzer: a,
				cached:   -1,
			}
		}
		t := interval.Cycle(0)
		for t < a.TotalCycles {
			next := a.TotalCycles
			for i := range cursors {
				st, n := cursors[i].stateAt(t)
				states[i] = st
				if n < next {
					next = n
				}
			}
			if next <= t {
				break
			}
			any, all := false, true
			for i := range states {
				any = any || states[i].uarch
				all = all && states[i].uarch
			}
			span := next - t
			if any {
				loc.AnyACE += span
			}
			if all {
				loc.AllACE += span
			}
			t = next
		}
	}
	return loc, nil
}
