package core

// FuzzPackedTimeline drives a lifetime tracker with an arbitrary event
// stream decoded from fuzz bytes and checks the two properties the
// packed solver rests on:
//
//  1. packed<->segment round trip: lifetime.Pack followed by Unpack
//     reproduces the tracker's timelines clamped to the horizon (also
//     exercised at a shorter horizon so clamping paths run);
//  2. solver agreement: the packed and scalar solvers produce identical
//     Counters for the fuzzed timeline.

import (
	"bytes"
	"testing"

	"mbavf/internal/bitgeom"
	"mbavf/internal/dataflow"
	"mbavf/internal/ecc"
	"mbavf/internal/interleave"
	"mbavf/internal/interval"
	"mbavf/internal/lifetime"
)

// clampSegs normalizes a timeline the way Pack documents: empty and
// at-or-beyond-horizon segments dropped, straddlers clamped.
func clampSegs(segs []lifetime.Seg, horizon interval.Cycle) []lifetime.Seg {
	var out []lifetime.Seg
	for _, sg := range segs {
		if sg.End <= sg.Start || sg.Start >= horizon {
			continue
		}
		if sg.End > horizon {
			sg.End = horizon
		}
		out = append(out, sg)
	}
	return out
}

func segsEqual(a, b []lifetime.Seg) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func checkRoundTrip(t *testing.T, slots [][]lifetime.Seg, horizon interval.Cycle) {
	t.Helper()
	p := lifetime.PackSlots(slots, horizon)
	if p.Spans() == 0 {
		t.Fatalf("horizon %d: packed stream has no spans", horizon)
	}
	if start, _ := p.Span(0); start != 0 {
		t.Fatalf("horizon %d: first span starts at %d, want 0", horizon, start)
	}
	prev := interval.Cycle(0)
	for i := 0; i < p.Spans(); i++ {
		start, end := p.Span(i)
		if start != prev {
			t.Fatalf("horizon %d: span %d starts at %d, want contiguous %d", horizon, i, start, prev)
		}
		if end < start {
			t.Fatalf("horizon %d: span %d is negative [%d,%d)", horizon, i, start, end)
		}
		prev = end
	}
	if prev != horizon {
		t.Fatalf("horizon %d: spans end at %d, want horizon", horizon, prev)
	}
	unpacked := p.Unpack()
	for s := range slots {
		want := clampSegs(slots[s], horizon)
		if !segsEqual(unpacked[s], want) {
			t.Fatalf("horizon %d slot %d: round trip mismatch\n got %+v\nwant %+v", horizon, s, unpacked[s], want)
		}
	}
}

func FuzzPackedTimeline(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 5, 1, 1, 3, 0, 2, 9, 2, 0, 4, 3, 3, 200, 1, 2, 2})
	f.Add(bytes.Repeat([]byte{7, 1, 2, 0, 0, 3}, 12))
	f.Fuzz(func(t *testing.T, data []byte) {
		const (
			words   = 2
			bpw     = 2
			horizon = interval.Cycle(96)
		)
		lay, err := interleave.Logical(words, bpw*8, 2)
		if err != nil {
			t.Fatal(err)
		}
		tr := lifetime.NewTracker(words, bpw)
		g := dataflow.NewGraph()
		// Decode (slot, op, dt) triples; per-slot clocks stay monotonic.
		clock := make([]interval.Cycle, words*bpw)
		held := make([]bool, words*bpw)
		ops := len(data) / 3
		if ops > 256 {
			ops = 256
		}
		for i := 0; i < ops; i++ {
			slot := int(data[3*i]) % (words * bpw)
			op := data[3*i+1]
			clock[slot] += interval.Cycle(data[3*i+2]%13) + 1
			w, b := slot/bpw, slot%bpw
			switch op % 4 {
			case 0:
				v := g.New(dataflow.TransferNone, 0)
				g.MarkRootLive(v, uint32(op)*2654435761)
				if op&4 != 0 {
					g.NoteRead(v, clock[slot]+interval.Cycle(op%32))
				}
				tr.Open(w, b, clock[slot], v)
				held[slot] = true
			case 1:
				if held[slot] {
					tr.Read(w, b, clock[slot])
				}
			case 2:
				if held[slot] {
					tr.CloseClean(w, b, clock[slot])
					held[slot] = false
				}
			default:
				if held[slot] {
					tr.CloseDirty(w, b, clock[slot])
					held[slot] = false
				}
			}
		}
		tr.Finish(horizon)
		g.Solve()

		var slots [][]lifetime.Seg
		for w := 0; w < words; w++ {
			for b := 0; b < bpw; b++ {
				slots = append(slots, tr.Segments(w, b))
			}
		}
		checkRoundTrip(t, slots, horizon)
		checkRoundTrip(t, slots, horizon/2) // exercises clamping
		checkRoundTrip(t, slots, 1)

		a := &Analyzer{
			Layout:               lay,
			Tracker:              tr,
			Graph:                g,
			TotalCycles:          horizon,
			DetectionPreemptsSDC: len(data)%2 == 0,
		}
		schemes := []ecc.Scheme{ecc.None{}, ecc.Parity{}, ecc.SECDED{}}
		scheme := schemes[len(data)%len(schemes)]
		mode := bitgeom.Mx1(1 + len(data)%4)
		a.ScalarSolve = false
		packed, err := a.Analyze(scheme, mode)
		if err != nil {
			t.Fatal(err)
		}
		a.ScalarSolve = true
		scalar, err := a.Analyze(scheme, mode)
		if err != nil {
			t.Fatal(err)
		}
		if *packed != *scalar {
			t.Fatalf("scheme %s mode %s: solver mismatch\npacked %+v\nscalar %+v",
				scheme.Name(), mode.Name(), packed, scalar)
		}
	})
}
