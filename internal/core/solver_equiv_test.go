package core

// Scalar-vs-packed solver equivalence harness. The word-packed solver
// (packed.go) must produce results bit-identical (==, not approximately)
// to the scalar per-bit sweep for every scheme x fault-mode combination,
// including geometries whose row widths straddle 64-bit word boundaries.
// These tests are the proof the packed fast path leans on.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"mbavf/internal/bitgeom"
	"mbavf/internal/dataflow"
	"mbavf/internal/ecc"
	"mbavf/internal/interleave"
	"mbavf/internal/lifetime"
	"mbavf/internal/obs"
)

// boundaryLayout builds a logical-style layout whose rows are exactly
// cols bits wide — including widths that are not multiples of 64 (or
// even 8: the backing word is padded to the next byte, leaving the top
// bits unmapped, which is precisely the word-boundary shape the packed
// extraction has to get right).
func boundaryLayout(t testing.TB, rows, cols, factor int) *interleave.Layout {
	t.Helper()
	wordBits := (cols + 7) / 8 * 8
	lay, err := interleave.NewCustom(
		fmt.Sprintf("equiv-%dc-x%d", cols, factor),
		bitgeom.Geometry{Rows: rows, Cols: cols},
		rows, wordBits, rows*factor, factor,
		func(p bitgeom.BitPos) (interleave.WordBit, int) {
			return interleave.WordBit{Word: p.Row, Bit: p.Col}, p.Row*factor + p.Col%factor
		})
	if err != nil {
		t.Fatal(err)
	}
	return lay
}

// randomTimelineAnalyzer fills the layout's backing tracker with a
// seeded random lifetime history and random liveness.
func randomTimelineAnalyzer(r *rand.Rand, lay *interleave.Layout, wordVersions bool, horizon uint64, preempt bool) *Analyzer {
	words := lay.Words
	bpw := lay.WordBits / 8
	tr := lifetime.NewTracker(words, bpw)
	g := dataflow.NewGraph()
	for w := 0; w < words; w++ {
		for b := 0; b < bpw; b++ {
			t := uint64(r.Intn(8))
			held := false
			for e, n := 0, r.Intn(7); e < n && t < horizon; e++ {
				switch r.Intn(4) {
				case 0:
					v := g.New(dataflow.TransferNone, 0)
					g.MarkRootLive(v, r.Uint32())
					if r.Intn(2) == 0 {
						g.NoteRead(v, t+uint64(r.Intn(int(horizon))))
					}
					tr.Open(w, b, t, v)
					held = true
				case 1:
					if held {
						tr.Read(w, b, t)
					}
				case 2:
					if held {
						tr.CloseClean(w, b, t)
						held = false
					}
				default:
					if held {
						tr.CloseDirty(w, b, t)
						held = false
					}
				}
				t += 1 + uint64(r.Intn(9))
			}
		}
	}
	tr.Finish(horizon)
	g.Solve()
	return &Analyzer{
		Layout:               lay,
		Tracker:              tr,
		Graph:                g,
		WordVersions:         wordVersions,
		TotalCycles:          horizon,
		DetectionPreemptsSDC: preempt,
	}
}

// solveBoth runs the same windowed analysis through the packed and the
// scalar solver. Error outcomes must agree; on success both series are
// returned.
func solveBoth(t *testing.T, a *Analyzer, scheme ecc.Scheme, mode bitgeom.FaultMode, window uint64) (packed, scalar *Series, ok bool) {
	t.Helper()
	a.ScalarSolve = false
	packed, errP := a.AnalyzeWindowed(scheme, mode, window)
	a.ScalarSolve = true
	scalar, errS := a.AnalyzeWindowed(scheme, mode, window)
	a.ScalarSolve = false
	if (errP == nil) != (errS == nil) {
		t.Fatalf("scheme %s mode %s: packed err %v, scalar err %v", scheme.Name(), mode.Name(), errP, errS)
	}
	return packed, scalar, errP == nil
}

func requireSeriesIdentical(t *testing.T, label string, packed, scalar *Series) {
	t.Helper()
	if packed.Total != scalar.Total {
		t.Errorf("%s: totals differ\npacked %+v\nscalar %+v", label, packed.Total, scalar.Total)
	}
	if len(packed.Windows) != len(scalar.Windows) {
		t.Fatalf("%s: window counts differ: %d vs %d", label, len(packed.Windows), len(scalar.Windows))
	}
	for i := range packed.Windows {
		if packed.Windows[i] != scalar.Windows[i] {
			t.Errorf("%s: window %d differs\npacked %+v\nscalar %+v",
				label, i, packed.Windows[i], scalar.Windows[i])
		}
	}
}

// equivSchemes spans every reaction pattern: all-undetected, parity
// (odd/even), SEC-DED, DEC-TED, and a burst-detection CRC.
func equivSchemes() []ecc.Scheme {
	return []ecc.Scheme{ecc.None{}, ecc.Parity{}, ecc.SECDED{}, ecc.DECTED{}, ecc.CRC{Width: 2}}
}

// equivModes spans packable Mx1 widths (including the full 64-bit word),
// a sparse single-row custom pattern, and modes the packed solver must
// decline (multi-row, wider than a word) so the dispatch fallback is
// exercised through the same assertions.
func equivModes() []bitgeom.FaultMode {
	return []bitgeom.FaultMode{
		bitgeom.Mx1(1),
		bitgeom.Mx1(2),
		bitgeom.Mx1(3),
		bitgeom.Mx1(4),
		bitgeom.Mx1(8),
		bitgeom.Mx1(16),
		bitgeom.Mx1(64),
		bitgeom.Custom("gap3", []bitgeom.Offset{{DRow: 0, DCol: 0}, {DRow: 0, DCol: 2}}),
		bitgeom.Rect(2, 2),
		bitgeom.Mx1(65),
	}
}

// TestSolverEquivalence is the randomized scalar-vs-packed matrix:
// word-boundary row widths x every scheme x every fault mode x both
// preemption rules, each on a fresh seeded random timeline, asserting
// ==-identical Series (Total and every window Result).
func TestSolverEquivalence(t *testing.T) {
	widths := []struct {
		cols, factor int
	}{
		{63, 1}, // one bit short of a word
		{64, 2}, // exactly one word
		{65, 1}, // one bit past a word (straddling extraction)
		{128, 4},
	}
	for _, wc := range widths {
		t.Run(fmt.Sprintf("cols=%d", wc.cols), func(t *testing.T) {
			for si, scheme := range equivSchemes() {
				for mi, mode := range equivModes() {
					for pi, preempt := range []bool{false, true} {
						seed := int64(1000*wc.cols + 100*si + 10*mi + pi)
						r := rand.New(rand.NewSource(seed))
						lay := boundaryLayout(t, 4, wc.cols, wc.factor)
						a := randomTimelineAnalyzer(r, lay, pi == 1, 64, preempt)
						packed, scalar, ok := solveBoth(t, a, scheme, mode, 0)
						if !ok {
							continue
						}
						label := fmt.Sprintf("cols=%d scheme=%s mode=%s preempt=%v seed=%d",
							wc.cols, scheme.Name(), mode.Name(), preempt, seed)
						requireSeriesIdentical(t, label, packed, scalar)
					}
				}
			}
		})
	}
}

// TestSolverEquivalenceWindowed is the AnalyzeWindowed series case:
// per-window counters must match ==, window by window, including windows
// that do not divide the horizon.
func TestSolverEquivalenceWindowed(t *testing.T) {
	for _, window := range []uint64{1, 7, 13, 64, 100} {
		for seed := int64(0); seed < 8; seed++ {
			r := rand.New(rand.NewSource(seed))
			lay := boundaryLayout(t, 4, 65, 1)
			a := randomTimelineAnalyzer(r, lay, false, 64, seed%2 == 0)
			packed, scalar, ok := solveBoth(t, a, ecc.Parity{}, bitgeom.Mx1(3), window)
			if !ok {
				t.Fatalf("window %d seed %d: analysis failed", window, seed)
			}
			requireSeriesIdentical(t, fmt.Sprintf("window=%d seed=%d", window, seed), packed, scalar)
		}
	}
}

// TestSolverEquivalenceStandardLayouts runs the matrix over the real
// constructors (way/index-physical, intra/inter-thread) so the packed
// row remap handles strided column->word mappings, not just identity.
func TestSolverEquivalenceStandardLayouts(t *testing.T) {
	mk := []func() (*interleave.Layout, bool, error){
		func() (*interleave.Layout, bool, error) {
			l, err := interleave.WayPhysical(2, 4, 16, 2)
			return l, false, err
		},
		func() (*interleave.Layout, bool, error) {
			l, err := interleave.IndexPhysical(4, 2, 16, 2)
			return l, false, err
		},
		func() (*interleave.Layout, bool, error) {
			l, err := interleave.IntraThread(2, 4, 16, 2)
			return l, true, err
		},
		func() (*interleave.Layout, bool, error) {
			l, err := interleave.InterThread(4, 2, 16, 4)
			return l, true, err
		},
		func() (*interleave.Layout, bool, error) {
			l, err := interleave.Logical(4, 32, 4)
			return l, false, err
		},
		// Aperiodic domain assignment: anchors induce varying offset
		// partitions, forcing the packed solver's per-anchor fallback
		// (the bit-sliced uniform-row path declines the row).
		func() (*interleave.Layout, bool, error) {
			l, err := interleave.NewCustom("aperiodic", bitgeom.Geometry{Rows: 4, Cols: 32}, 4, 32, 5, 1,
				func(p bitgeom.BitPos) (interleave.WordBit, int) {
					return interleave.WordBit{Word: p.Row, Bit: p.Col}, (p.Col * p.Col / 3) % 5
				})
			return l, false, err
		},
	}
	for li, f := range mk {
		lay, wordVersions, err := f()
		if err != nil {
			t.Fatal(err)
		}
		t.Run(lay.Name(), func(t *testing.T) {
			for si, scheme := range equivSchemes() {
				for mi, mode := range equivModes() {
					seed := int64(7777*li + 100*si + mi)
					r := rand.New(rand.NewSource(seed))
					a := randomTimelineAnalyzer(r, lay, wordVersions, 48, li%2 == 0)
					packed, scalar, ok := solveBoth(t, a, scheme, mode, 11)
					if !ok {
						continue
					}
					label := fmt.Sprintf("%s scheme=%s mode=%s seed=%d", lay.Name(), scheme.Name(), mode.Name(), seed)
					requireSeriesIdentical(t, label, packed, scalar)
				}
			}
		})
	}
}

// TestPackedPathTaken pins the dispatch: an eligible mode must actually
// run through the packed solver (not silently fall back to scalar, which
// would make every equivalence assertion vacuous).
func TestPackedPathTaken(t *testing.T) {
	obs.Enable()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	r := rand.New(rand.NewSource(1))
	a := randomTimelineAnalyzer(r, boundaryLayout(t, 4, 64, 2), false, 32, false)

	before := obs.NewCounter("core.packed_rows").Value()
	if _, err := a.Analyze(ecc.Parity{}, bitgeom.Mx1(2)); err != nil {
		t.Fatal(err)
	}
	if after := obs.NewCounter("core.packed_rows").Value(); after == before {
		t.Fatal("eligible mode did not take the packed path")
	}

	before = obs.NewCounter("core.packed_rows").Value()
	a.ScalarSolve = true
	if _, err := a.Analyze(ecc.Parity{}, bitgeom.Mx1(2)); err != nil {
		t.Fatal(err)
	}
	if after := obs.NewCounter("core.packed_rows").Value(); after != before {
		t.Fatal("ScalarSolve analyzer still took the packed path")
	}
	a.ScalarSolve = false

	SetScalarSolve(true)
	defer SetScalarSolve(false)
	before = obs.NewCounter("core.packed_rows").Value()
	if _, err := a.Analyze(ecc.Parity{}, bitgeom.Mx1(2)); err != nil {
		t.Fatal(err)
	}
	if after := obs.NewCounter("core.packed_rows").Value(); after != before {
		t.Fatal("-scalar-solve escape hatch still took the packed path")
	}
}

// TestSolverConcurrentPaths solves the same run concurrently from both
// solver paths (sharing one tracker, graph, and layout, each analysis
// itself internally sharded) — the race-detector leg of the equivalence
// harness.
func TestSolverConcurrentPaths(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	lay := boundaryLayout(t, 8, 64, 2)
	base := randomTimelineAnalyzer(r, lay, false, 96, false)
	base.Parallelism = 4

	packedA := *base
	scalarA := *base
	scalarA.ScalarSolve = true

	want, err := packedA.AnalyzeWindowed(ecc.SECDED{}, bitgeom.Mx1(2), 17)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	results := make([]*Series, 8)
	errs := make([]error, 8)
	for i := range results {
		a := &packedA
		if i%2 == 1 {
			a = &scalarA
		}
		wg.Add(1)
		go func(i int, a *Analyzer) {
			defer wg.Done()
			results[i], errs[i] = a.AnalyzeWindowed(ecc.SECDED{}, bitgeom.Mx1(2), 17)
		}(i, a)
	}
	wg.Wait()
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		requireSeriesIdentical(t, fmt.Sprintf("goroutine %d", i), results[i], want)
	}
}
