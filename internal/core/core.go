// Package core implements the paper's contribution: architectural
// vulnerability factor analysis for spatial multi-bit transient faults
// (MB-AVF), via ACE analysis over per-bit lifetime timelines.
//
// For a hardware structure laid out by an interleave.Layout, a fault mode
// defines fault groups (sets of physically adjacent bits that flip
// together, Section IV-A). Each fault group is split by the layout into
// overlapped regions — the bits it shares with each protection domain
// (Section V-A). At every cycle, each region is classified from:
//
//   - the protection scheme's reaction to the region's size (corrected /
//     detected / undetected), and
//   - the region's ACEness: microarchitectural ACE (uarch: the value will
//     be consumed) for DUE analysis, and program-level liveness (prog: the
//     bits influence program output) for SDC analysis, per Section VII-B.
//
// The group's classification is the worst of its regions (SDC > true DUE >
// false DUE > unACE), with the optional detection-preempts-SDC rule used
// for inter-thread interleaved register files (Section VIII). The DUE
// MB-AVF of equations 6-7 — the union over regions of detected-and-ACE
// time — is accumulated independently of the four-class split so that both
// of the paper's models are available from one pass.
package core

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"

	"mbavf/internal/bitgeom"
	"mbavf/internal/dataflow"
	"mbavf/internal/ecc"
	"mbavf/internal/interleave"
	"mbavf/internal/interval"
	"mbavf/internal/lifetime"
	"mbavf/internal/obs"
)

// Observability series for the MB-AVF engine. Sweep workers accumulate
// into plain locals (counters and LocalHists) and publish one atomic
// flush per shard, so the group sweep's inner loop never touches shared
// state.
var (
	obsAnalyses = obs.NewCounter("core.analyses")
	obsGroups   = obs.NewCounter("core.fault_groups")
	obsMerges   = obs.NewCounter("core.interval_merges")
	// obsGroupBits is the distribution of fault-group sizes in bits (how
	// many physical bits flip together per enumerated group).
	obsGroupBits = obs.NewHistogram("core.group_bits")
	// obsMergeChain is the distribution of interval-merge chain lengths:
	// how many timeline points one group's sweep had to combine.
	obsMergeChain = obs.NewHistogram("core.merge_chain")
)

// Class is the outcome class of a fault group (or region) at an instant.
type Class uint8

const (
	// ClassUnACE: the fault has no effect (masked or corrected).
	ClassUnACE Class = iota
	// ClassFalseDUE: the fault is detected but would not have corrupted
	// program output if ignored.
	ClassFalseDUE
	// ClassTrueDUE: the fault is detected and would have corrupted
	// program output.
	ClassTrueDUE
	// ClassSDC: the fault defeats the protection and corrupts output.
	ClassSDC
)

func (c Class) String() string {
	switch c {
	case ClassUnACE:
		return "unace"
	case ClassFalseDUE:
		return "false-due"
	case ClassTrueDUE:
		return "true-due"
	case ClassSDC:
		return "sdc"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Analyzer computes MB-AVFs for one hardware structure from one workload
// run.
type Analyzer struct {
	// Name labels this analyzer's observability spans (typically the
	// workload name, e.g. "minife"). Empty is fine: spans fall back to a
	// generic label.
	Name string
	// Layout maps physical bits to logical words and protection domains.
	Layout *interleave.Layout
	// Tracker holds the structure's per-byte lifetime segments.
	Tracker *lifetime.Tracker
	// Graph is the solved dataflow graph of the run.
	Graph *dataflow.Graph
	// WordVersions is true when the tracker records one version for a
	// whole multi-byte word (register files); false when each byte has
	// its own version (caches).
	WordVersions bool
	// TotalCycles is the AVF denominator N: the length of the measured
	// execution.
	TotalCycles interval.Cycle
	// DetectionPreemptsSDC applies the case-study rule: when a detected
	// ACE region coexists with an SDC region in a fault group, detection
	// fires before the corruption propagates, converting the SDC into a
	// (true) DUE. Valid for structures read in lock-step groups, like
	// inter-thread interleaved VGPRs.
	DetectionPreemptsSDC bool
	// Parallelism bounds the worker goroutines used to sweep fault
	// groups. Zero means GOMAXPROCS; one forces a serial sweep. Results
	// are identical at any setting (fault groups are independent).
	Parallelism int
	// ScalarSolve forces the per-bit scalar sweep even for fault modes
	// the word-packed solver could serve. Results are bit-identical on
	// both paths; the flag exists as an escape hatch (-scalar-solve) and
	// for the equivalence tests that prove that identity.
	ScalarSolve bool
}

// Validate checks that the layout and tracker describe the same structure.
func (a *Analyzer) Validate() error {
	if a.Layout == nil || a.Tracker == nil || a.Graph == nil {
		return fmt.Errorf("core: analyzer needs layout, tracker, and graph")
	}
	if a.TotalCycles == 0 {
		return fmt.Errorf("core: TotalCycles is zero")
	}
	if a.Layout.Words != a.Tracker.Words() {
		return fmt.Errorf("core: layout has %d words, tracker %d", a.Layout.Words, a.Tracker.Words())
	}
	if a.Layout.WordBits != a.Tracker.BytesPerWord()*8 {
		return fmt.Errorf("core: layout words are %d bits, tracker words %d",
			a.Layout.WordBits, a.Tracker.BytesPerWord()*8)
	}
	return nil
}

// bitState is the resolved (uarch, live) classification of one bit over
// one time span.
type bitState struct {
	uarch, live bool
}

// byteState is the resolved classification of all eight bits of one byte
// slot over one time span: uarch ACEness is byte-uniform, program
// liveness per bit.
type byteState struct {
	uarch bool
	live  uint8
}

// byteCursor walks one byte slot's lifetime timeline in time order,
// exposing a piecewise-constant state. Gaps between segments are dead.
// The per-segment state is memoized so repeated spans within one segment
// cost nothing.
type byteCursor struct {
	segs     []lifetime.Seg
	idx      int
	byteIdx  int // byte within word (for word-granular versions)
	analyzer *Analyzer
	cached   int // segment index the memoized state belongs to (-1 none)
	state    byteState
}

// stateAt returns the byte's state during [t, next); next is the first
// cycle at which the state may change.
func (c *byteCursor) stateAt(t interval.Cycle) (byteState, interval.Cycle) {
	for c.idx < len(c.segs) && c.segs[c.idx].End <= t {
		c.idx++
	}
	if c.idx >= len(c.segs) {
		return byteState{}, c.analyzer.TotalCycles
	}
	seg := c.segs[c.idx]
	if t < seg.Start {
		return byteState{}, seg.Start
	}
	if c.cached != c.idx {
		c.state = c.analyzer.segStateByte(seg, c.byteIdx)
		c.cached = c.idx
	}
	return c.state, seg.End
}

// segStateByte classifies one lifetime segment of one byte slot.
func (a *Analyzer) segStateByte(seg lifetime.Seg, byteIdx int) byteState {
	var st byteState
	switch seg.Kind {
	case lifetime.SegDead:
		return st
	case lifetime.SegACE:
		st.uarch = true
	case lifetime.SegPending:
		// A dirty-evicted value matters only if it is consumed after the
		// eviction (the writeback corrupts the next level).
		st.uarch = a.Graph.ReadAfter(seg.Version, seg.End)
	}
	if st.uarch {
		vb := 0
		if a.WordVersions {
			vb = byteIdx
		}
		st.live = a.Graph.LiveByte(seg.Version, vb)
	}
	return st
}

// bit projects the byte-level state onto one bit of the byte: uarch
// ACEness is byte-uniform, liveness per bit.
func (bs byteState) bit(bit int) bitState {
	return bitState{uarch: bs.uarch, live: bs.live&(1<<bit) != 0}
}

// segState classifies one lifetime segment of one bit. It derives the
// answer from the byte-level classification — segStateByte is the single
// source of truth for the state walk; this is only a per-bit projection
// of it (used by the brute-force reference path the solver tests compare
// against).
func (a *Analyzer) segState(seg lifetime.Seg, byteIdx, bit int) bitState {
	return a.segStateByte(seg, byteIdx).bit(bit)
}

// Counters accumulates classified cycles.
type Counters struct {
	// DUE is the Section V model (equations 6-7): cycles during which any
	// region of the group is detected and uarch-ACE, ignoring SDC overlap.
	DUE interval.Cycle
	// TrueDUE, FalseDUE and SDC are the four-class precedence model of
	// Section VII-B.
	TrueDUE  interval.Cycle
	FalseDUE interval.Cycle
	SDC      interval.Cycle
}

func (c *Counters) add(o Counters) {
	c.DUE += o.DUE
	c.TrueDUE += o.TrueDUE
	c.FalseDUE += o.FalseDUE
	c.SDC += o.SDC
}

// Result is the MB-AVF of one (structure, scheme, fault mode) combination.
type Result struct {
	SchemeName  string
	ModeName    string
	ModeSize    int
	Groups      int
	Bits        int
	TotalCycles interval.Cycle
	// Group-level classified cycles summed over all fault groups.
	Counters Counters
	// BitUarch / BitLive are bit-level ACE cycle totals over all bits:
	// the raw single-bit ACE fractions used for normalization.
	BitUarch interval.Cycle
	BitLive  interval.Cycle
}

func (r *Result) denomGroups() float64 {
	return float64(r.Groups) * float64(r.TotalCycles)
}

// DUEMBAVF returns the detected-uncorrected-error MB-AVF (Section V
// model).
func (r *Result) DUEMBAVF() float64 {
	if r.Groups == 0 {
		return 0
	}
	return float64(r.Counters.DUE) / r.denomGroups()
}

// SDCMBAVF returns the silent-data-corruption MB-AVF.
func (r *Result) SDCMBAVF() float64 {
	if r.Groups == 0 {
		return 0
	}
	return float64(r.Counters.SDC) / r.denomGroups()
}

// TrueDUEMBAVF returns the true-DUE MB-AVF of the four-class model.
func (r *Result) TrueDUEMBAVF() float64 {
	if r.Groups == 0 {
		return 0
	}
	return float64(r.Counters.TrueDUE) / r.denomGroups()
}

// FalseDUEMBAVF returns the false-DUE MB-AVF of the four-class model.
func (r *Result) FalseDUEMBAVF() float64 {
	if r.Groups == 0 {
		return 0
	}
	return float64(r.Counters.FalseDUE) / r.denomGroups()
}

// BitAVF returns the structure's conservative single-bit ACE fraction
// (microarchitectural ACE bit-cycles over all bit-cycles) — the
// traditional unprotected SB-AVF used for normalization in the paper's
// figures.
func (r *Result) BitAVF() float64 {
	if r.Bits == 0 {
		return 0
	}
	return float64(r.BitUarch) / (float64(r.Bits) * float64(r.TotalCycles))
}

// BitAVFLive returns the program-level (SDC) single-bit ACE fraction.
func (r *Result) BitAVFLive() float64 {
	if r.Bits == 0 {
		return 0
	}
	return float64(r.BitLive) / (float64(r.Bits) * float64(r.TotalCycles))
}

// Analyze computes the MB-AVF of fault mode under scheme.
func (a *Analyzer) Analyze(scheme ecc.Scheme, mode bitgeom.FaultMode) (*Result, error) {
	series, err := a.AnalyzeWindowed(scheme, mode, 0)
	if err != nil {
		return nil, err
	}
	return &series.Total, nil
}

// Series is a windowed MB-AVF time profile: Total plus one Result per
// window of Window cycles (the paper's Figures 5 and 8 plots).
type Series struct {
	Window  interval.Cycle
	Total   Result
	Windows []Result
}

// PublishGauges exposes the series' per-window DUE and SDC MB-AVF (plus
// the whole-run totals) as observability float gauges named
// avf.<structure>.<mode>.{due,sdc}.{total,w<i>}, so a scrape of the debug
// endpoint's /metrics sees the time-resolved vulnerability profile of
// every analyzed structure.
func (s *Series) PublishGauges(structure string) {
	if !obs.Enabled() {
		return
	}
	prefix := "avf." + structure + "." + s.Total.ModeName + "."
	obs.NewFloatGauge(prefix + "due.total").Set(s.Total.DUEMBAVF())
	obs.NewFloatGauge(prefix + "sdc.total").Set(s.Total.SDCMBAVF())
	for i := range s.Windows {
		w := &s.Windows[i]
		obs.NewFloatGauge(fmt.Sprintf("%sdue.w%03d", prefix, i)).Set(w.DUEMBAVF())
		obs.NewFloatGauge(fmt.Sprintf("%ssdc.w%03d", prefix, i)).Set(w.SDCMBAVF())
	}
}

// AnalyzeWindowed computes the MB-AVF of fault mode under scheme, also
// accumulating per-window counters when window > 0.
func (a *Analyzer) AnalyzeWindowed(scheme ecc.Scheme, mode bitgeom.FaultMode, window interval.Cycle) (*Series, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	label := a.Name
	if label == "" {
		label = "mbavf"
	}
	sp := obs.StartSpan2("analyze:", label)
	defer sp.End()
	geom := a.Layout.Geom
	groups := geom.GroupCount(mode)
	if groups == 0 {
		return nil, fmt.Errorf("core: fault mode %s does not fit geometry %dx%d",
			mode.Name(), geom.Rows, geom.Cols)
	}
	obsAnalyses.Add(1)
	obsGroups.Add(uint64(groups))
	nWindows := 0
	if window > 0 {
		nWindows = int((a.TotalCycles + window - 1) / window)
	}
	mk := func() Result {
		return Result{
			SchemeName:  scheme.Name(),
			ModeName:    mode.Name(),
			ModeSize:    mode.Size(),
			Groups:      groups,
			Bits:        geom.Bits(),
			TotalCycles: a.TotalCycles,
		}
	}
	s := &Series{Window: window, Total: mk()}
	for i := 0; i < nWindows; i++ {
		r := mk()
		r.TotalCycles = min(window, a.TotalCycles-interval.Cycle(i)*window)
		s.Windows = append(s.Windows, r)
	}
	a.accumulateBits(s, window)

	// The packed word-parallel solver serves every single-row mode up to
	// 64 columns wide (all of the paper's Mx1 modes); taller or wider
	// patterns and the -scalar-solve escape hatch take the per-bit
	// reference sweep. Both paths are bit-identical; the packed path
	// shards by wordline (its unit of work), the scalar path by group.
	usePacked := PackedEligible(mode) && !a.ScalarSolve && !ScalarSolveForced()
	units := groups
	if usePacked {
		units = geom.Rows
	}
	sweep := func(sh *Series, lo, hi int) {
		if usePacked {
			a.sweepRowsPacked(scheme, mode, sh, window, lo, hi)
		} else {
			a.sweepGroups(scheme, mode, sh, window, lo, hi)
		}
	}

	workers := a.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	workers = min(workers, units)
	if workers <= 1 {
		sweep(s, 0, units)
		return s, nil
	}
	// Each worker sweeps a contiguous shard of work units into a
	// private shadow series; shards merge at the end.
	shadows := make([]*Series, workers)
	var wg sync.WaitGroup
	per := (units + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := min(lo+per, units)
		if lo >= hi {
			break
		}
		sh := &Series{Window: window, Total: mk()}
		sh.Windows = make([]Result, nWindows)
		shadows[w] = sh
		wg.Add(1)
		go func() {
			defer wg.Done()
			sweep(sh, lo, hi)
		}()
	}
	wg.Wait()
	for _, sh := range shadows {
		if sh == nil {
			continue
		}
		s.Total.Counters.add(sh.Total.Counters)
		for i := range sh.Windows {
			s.Windows[i].Counters.add(sh.Windows[i].Counters)
		}
	}
	return s, nil
}

// addCounters distributes span cycles of the given class into total and
// window counters.
func addCounters(s *Series, window interval.Cycle, cls Class, dueUnion bool, start, end interval.Cycle) {
	addOne := func(r *Result, n interval.Cycle) {
		if dueUnion {
			r.Counters.DUE += n
		}
		switch cls {
		case ClassTrueDUE:
			r.Counters.TrueDUE += n
		case ClassFalseDUE:
			r.Counters.FalseDUE += n
		case ClassSDC:
			r.Counters.SDC += n
		}
	}
	addOne(&s.Total, end-start)
	if window == 0 {
		return
	}
	for wi := int(start / window); ; wi++ {
		ws := interval.Cycle(wi) * window
		if ws >= end || wi >= len(s.Windows) {
			break
		}
		we := ws + window
		overlap := min(end, we) - max(start, ws)
		addOne(&s.Windows[wi], overlap)
	}
}

// addBitCycles distributes bit-level ACE cycles into total and windows,
// weighted by the number of uarch-ACE and live bits in the byte.
func addBitCycles(s *Series, window interval.Cycle, uarchBits, liveBits int, start, end interval.Cycle) {
	addOne := func(r *Result, n interval.Cycle) {
		r.BitUarch += interval.Cycle(uarchBits) * n
		r.BitLive += interval.Cycle(liveBits) * n
	}
	addOne(&s.Total, end-start)
	if window == 0 {
		return
	}
	for wi := int(start / window); ; wi++ {
		ws := interval.Cycle(wi) * window
		if ws >= end || wi >= len(s.Windows) {
			break
		}
		we := ws + window
		overlap := min(end, we) - max(start, ws)
		addOne(&s.Windows[wi], overlap)
	}
}

// accumulateBits sums raw per-bit ACE time (the SB-AVF numerators).
func (a *Analyzer) accumulateBits(s *Series, window interval.Cycle) {
	for w := 0; w < a.Tracker.Words(); w++ {
		for b := 0; b < a.Tracker.BytesPerWord(); b++ {
			for _, seg := range a.Tracker.Segments(w, b) {
				end := min(seg.End, a.TotalCycles)
				if end <= seg.Start {
					continue
				}
				st := a.segStateByte(seg, b)
				if !st.uarch {
					continue
				}
				liveBits := bits.OnesCount8(st.live)
				addBitCycles(s, window, 8, liveBits, seg.Start, end)
			}
		}
	}
}

// groupBit locates one group member bit: an index into the group's
// deduplicated byte-cursor array plus a bit mask within that byte.
type groupBit struct {
	cur  int
	mask uint8
}

// region is one overlapped region: the bits a fault group shares with one
// protection domain.
type region struct {
	reaction ecc.Reaction
	bits     []groupBit
	nbits    int
}

type byteKey struct{ word, byteIdx int }

// sweepGroups classifies fault groups [lo, hi) over time, accumulating
// into s. Group bits sharing a byte slot share one memoized cursor.
func (a *Analyzer) sweepGroups(scheme ecc.Scheme, mode bitgeom.FaultMode, s *Series, window interval.Cycle, lo, hi int) {
	geom := a.Layout.Geom
	msize := mode.Size()
	var merges uint64
	observing := obs.Enabled()
	var groupBits, mergeChain obs.LocalHist

	cursors := make([]byteCursor, 0, msize)
	regions := make([]region, 0, msize)
	domOf := make(map[int]int, msize)     // domain -> region index
	curOf := make(map[byteKey]int, msize) // byte slot -> cursor index
	bitBuf := make([]bitgeom.BitPos, 0, msize)

	for gi := lo; gi < hi; gi++ {
		bitBuf = geom.GroupBits(mode, gi, bitBuf[:0])
		regions = regions[:0]
		cursors = cursors[:0]
		clear(domOf)
		clear(curOf)
		for _, pos := range bitBuf {
			wb, dom := a.Layout.Map(pos)
			byteIdx := wb.Bit / 8
			key := byteKey{wb.Word, byteIdx}
			ci, ok := curOf[key]
			if !ok {
				ci = len(cursors)
				cursors = append(cursors, byteCursor{
					segs:     a.Tracker.Segments(wb.Word, byteIdx),
					byteIdx:  byteIdx,
					analyzer: a,
					cached:   -1,
				})
				curOf[key] = ci
			}
			ri, ok := domOf[dom]
			if !ok {
				ri = len(regions)
				regions = append(regions, region{})
				domOf[dom] = ri
			}
			regions[ri].bits = append(regions[ri].bits, groupBit{cur: ci, mask: 1 << (wb.Bit % 8)})
			regions[ri].nbits++
		}
		for ri := range regions {
			regions[ri].reaction = scheme.React(regions[ri].nbits)
		}
		chain := a.sweepOneGroup(cursors, regions, s, window)
		merges += chain
		if observing {
			groupBits.Observe(uint64(len(bitBuf)))
			mergeChain.Observe(chain)
		}
	}
	obsMerges.Add(merges)
	groupBits.FlushTo(obsGroupBits)
	mergeChain.FlushTo(obsMergeChain)
}

// sweepOneGroup walks one group's merged timeline, classifying each
// span. It returns the number of interval-merge steps taken (timeline
// points at which the cursors' piecewise-constant states were combined),
// the engine-work measure the observability layer reports.
func (a *Analyzer) sweepOneGroup(cursors []byteCursor, regions []region, s *Series, window interval.Cycle) uint64 {
	states := make([]byteState, len(cursors))
	var merges uint64
	t := interval.Cycle(0)
	for t < a.TotalCycles {
		merges++
		next := a.TotalCycles
		for i := range cursors {
			st, n := cursors[i].stateAt(t)
			states[i] = st
			if n < next {
				next = n
			}
		}
		if next <= t {
			break // defensive: no progress possible
		}
		var anyDetACE, anyTrueDUE, anySDC bool
		for _, r := range regions {
			if r.reaction == ecc.ReactCorrected || r.reaction == ecc.ReactNone {
				continue
			}
			var uarch, live bool
			for _, gb := range r.bits {
				st := states[gb.cur]
				uarch = uarch || st.uarch
				live = live || st.live&gb.mask != 0
			}
			switch r.reaction {
			case ecc.ReactDetected:
				if uarch {
					anyDetACE = true
					if live {
						anyTrueDUE = true
					}
				}
			case ecc.ReactUndetected:
				if live {
					anySDC = true
				}
			}
		}
		cls := ClassUnACE
		if a.DetectionPreemptsSDC && anyDetACE {
			if anyTrueDUE || anySDC {
				cls = ClassTrueDUE
			} else {
				cls = ClassFalseDUE
			}
		} else {
			switch {
			case anySDC:
				cls = ClassSDC
			case anyTrueDUE:
				cls = ClassTrueDUE
			case anyDetACE:
				cls = ClassFalseDUE
			}
		}
		if cls != ClassUnACE || anyDetACE {
			addCounters(s, window, cls, anyDetACE, t, next)
		}
		t = next
	}
	return merges
}
