package core

import (
	"math/bits"
	"sync/atomic"

	"mbavf/internal/bitgeom"
	"mbavf/internal/ecc"
	"mbavf/internal/interleave"
	"mbavf/internal/interval"
	"mbavf/internal/lifetime"
	"mbavf/internal/obs"
)

// The word-packed ACE solver. The scalar sweep (sweepGroups) walks one
// merged per-bit timeline per fault group: for a C-column wordline and an
// Mx1 mode that re-walks every byte slot's timeline ~(8+M) times and pays
// per-group cursor and map setup ~C times per row. The packed solver
// instead processes each wordline once:
//
//   - the row's byte-slot timelines are merged into a single breakpoint
//     stream (lifetime.Packer);
//   - two bitmaps of 64-bit occupancy words span the row's columns — bit
//     c of word w in `uarch` (resp. `live`) is the microarchitectural
//     (resp. program-level) ACEness of column 64*w+c at the current
//     breakpoint — updated incrementally as slots change state;
//   - every fault group anchored in the row is precomputed as word masks
//     over its 64-column window (detected-region union, undetected-region
//     union, and the per-region masks the true-DUE refinement needs), so
//     classifying a group is a handful of AND/OR word operations;
//   - groups are re-classified only when a slot under their window
//     changes (delta flushing): each group's previous classification is
//     flushed into the counters for the interval since its last change,
//     exactly mirroring the scalar sweep's piecewise-constant spans.
//
// Counters are integer sums of span-length * class contributions, and the
// packed spans refine the scalar spans (both are piecewise-constant
// partitions of the same step functions), so results are bit-identical
// (==) to the scalar solver — solver_equiv_test.go pins this across every
// scheme x fault-mode combination.

var obsPackedRows = obs.NewCounter("core.packed_rows")

// scalarSolve is the process-wide escape hatch behind the -scalar-solve
// flag: when set, every analysis takes the scalar per-bit path even for
// packable fault modes.
var scalarSolve atomic.Bool

// SetScalarSolve toggles the process-wide scalar-solver escape hatch
// (the -scalar-solve flag on mbavf-exp and mbavf-serve).
func SetScalarSolve(v bool) { scalarSolve.Store(v) }

// ScalarSolveForced reports whether the escape hatch is set.
func ScalarSolveForced() bool { return scalarSolve.Load() }

// PackedEligible reports whether the word-packed solver can serve the
// given fault mode: a single-wordline pattern at most 64 columns wide.
// (Every Mx1 mode in the paper's evaluation qualifies; multi-row Rect
// and wider Custom modes fall back to the scalar solver.)
func PackedEligible(mode bitgeom.FaultMode) bool {
	_, ok := mode.RowMask()
	return ok
}

// classDue packs a group classification and its DUE-union membership
// (equations 6-7 accumulate detected-and-ACE time independently of the
// four-class split) into one byte: bits 0-1 the Class, bit 2 the union.
type classDue uint8

const classDueUnion classDue = 4

func (c classDue) class() Class { return Class(c & 3) }
func (c classDue) due() bool    { return c&classDueUnion != 0 }

// rowSolver is the reusable scratch of one packed-sweep worker. All
// state is row-local; nothing is shared between workers.
type rowSolver struct {
	a      *Analyzer
	scheme ecc.Scheme
	s      *Series
	window interval.Cycle

	offs  []int32 // mode column offsets (DCol), ascending
	width int     // mode bounding width
	ac    int     // anchors (fault groups) per row
	cols  int     // geometry columns per row
	bpw   int     // tracker bytes per word

	rm interleave.RowMap
	pk lifetime.Packer

	// Slot index: keySlot/keyStamp map tracker slot (word*bpw+byte) to a
	// row-local slot id; stamped per row so no clearing is needed.
	keySlot  []int32
	keyStamp []int64
	rowSeq   int64

	slotByte []int32          // per slot: byte index within the word
	rawLists [][]lifetime.Seg // per slot: its tracker timeline
	segLists [][]lifetime.Seg // per slot: filtered timeline (views into segBuf)
	segBuf   []lifetime.Seg   // filtered-segment arena for the row
	stateBuf []byteState      // per filtered segment: its resolved state
	segOff   []int32          // per slot: offset into segBuf/stateBuf
	slotCols []int32          // columns grouped by slot (each ascending)
	slotOff  []int32          // per slot: offset of its columns in slotCols
	colSlot  []int32          // per column: owning slot id
	colSrc   []uint8          // per column: source bit within the slot's live byte

	// Per-anchor group tables and solver state, consolidated into one
	// struct array so a group touch costs one cache line instead of a
	// load from half a dozen parallel arrays.
	anchors  []anchorState
	detRegs  []uint64 // detected-region masks, flattened
	doms     []domAcc // domain accumulation scratch (<= mode size entries)
	prevDoms []domAcc // previous anchor's partition, for table reuse

	// Uniform-row fast path: when every anchor of the row shares one
	// region partition (interleaved layouts assign domains periodically,
	// so this is the overwhelmingly common case), classification is
	// evaluated bit-sliced — one boolean-word computation classifies 64
	// anchors at once, and flushes fire only where the packed class
	// planes actually changed.
	uniform  bool
	detOffs  []int32 // offsets under the shared detected mask
	umOffs   []int32 // offsets under the shared undetected mask
	regStart []int32 // per detected region: offset into regOffs
	regOffs  []int32
	planeDue []uint64 // per anchor word: DUE-union bit plane
	planeC0  []uint64 // class bit 0 plane
	planeC1  []uint64 // class bit 1 plane
	validW   []uint64 // per anchor word: in-range anchor mask
	lastT    []interval.Cycle

	// Per-breakpoint solver state.
	uarch  []uint64 // occupancy words (+2 guard words for extraction)
	live   []uint64
	ranges []anchorRange // scratch: anchor ranges affected by a span
}

// anchorRange is an inclusive range of anchor columns whose occupancy
// may have changed in the current span. Changed columns arrive in
// ascending order per slot, so affected anchors coalesce into a handful
// of ranges per span — the re-classification pass walks them
// sequentially instead of chasing individually marked anchors.
type anchorRange struct{ lo, hi int32 }

// mergeRanges sorts the span's anchor ranges and merges overlapping or
// adjacent ones in place, so no anchor is re-classified twice. Ranges
// from different slots of one span can interleave; the list is tiny, so
// insertion sort suffices.
func mergeRanges(ranges *[]anchorRange) {
	rs := *ranges
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].lo < rs[j-1].lo; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
	out := rs[:1]
	for _, rg := range rs[1:] {
		last := &out[len(out)-1]
		if rg.lo <= last.hi+1 {
			if rg.hi > last.hi {
				last.hi = rg.hi
			}
		} else {
			out = append(out, rg)
		}
	}
	*ranges = out
}

// anchorState is the per-fault-group row state: the group's region
// masks (rebuilt per row by buildAnchors, which zeroes the rest) and
// the delta-flushing bookkeeping of the span sweep.
type anchorState struct {
	dm, um       uint64 // detected / undetected region mask unions
	prevU, prevL uint64 // masked occupancy at the last classification
	last         interval.Cycle
	detOff       int32 // detected-region masks: detRegs[detOff:detOff+nDet]
	nDet         int32
	class        classDue
}

type domAcc struct {
	dom   int32
	nbits int32
	mask  uint64
}

// extract64 returns the 64 occupancy bits starting at column c. words
// carries one guard word past the row's columns, so the two-word read
// never goes out of bounds and bits past the row read as zero.
func extract64(words []uint64, c int) uint64 {
	w, s := c>>6, uint(c&63)
	x := words[w] >> s
	if s != 0 {
		x |= words[w+1] << (64 - s)
	}
	return x
}

// sweepRowsPacked classifies every fault group anchored in rows
// [rowLo, rowHi) with the word-packed solver, accumulating into s.
func (a *Analyzer) sweepRowsPacked(scheme ecc.Scheme, mode bitgeom.FaultMode, s *Series, window interval.Cycle, rowLo, rowHi int) {
	geom := a.Layout.Geom
	rs := rowSolver{
		a:      a,
		scheme: scheme,
		s:      s,
		window: window,
		width:  0,
		ac:     geom.AnchorsPerRow(mode),
		cols:   geom.Cols,
		bpw:    a.Tracker.BytesPerWord(),
	}
	_, rs.width = mode.Bounds()
	for _, o := range mode.Offsets() {
		rs.offs = append(rs.offs, int32(o.DCol))
	}
	nslots := a.Tracker.Words() * rs.bpw
	rs.keySlot = make([]int32, nslots)
	rs.keyStamp = make([]int64, nslots)
	rs.colSlot = make([]int32, rs.cols)
	rs.colSrc = make([]uint8, rs.cols)
	rs.anchors = make([]anchorState, rs.ac)
	// Two guard words: the bit-sliced path extracts at anchor-word
	// granularity, up to 63 columns past the last real anchor.
	rs.uarch = make([]uint64, (rs.cols+63)/64+2)
	rs.live = make([]uint64, (rs.cols+63)/64+2)
	naw := (rs.ac + 63) / 64
	rs.planeDue = make([]uint64, naw)
	rs.planeC0 = make([]uint64, naw)
	rs.planeC1 = make([]uint64, naw)
	rs.validW = make([]uint64, naw)
	rs.lastT = make([]interval.Cycle, rs.ac)
	for wi := 0; wi < naw; wi++ {
		n := rs.ac - wi*64
		if n >= 64 {
			rs.validW[wi] = ^uint64(0)
		} else {
			rs.validW[wi] = uint64(1)<<n - 1
		}
	}

	var merges uint64
	observing := obs.Enabled()
	var groupBits, mergeChain obs.LocalHist
	msize := uint64(mode.Size())
	for r := rowLo; r < rowHi; r++ {
		spans := rs.solveRow(r)
		merges += spans
		if observing {
			mergeChain.Observe(spans)
			for i := 0; i < rs.ac; i++ {
				groupBits.Observe(msize)
			}
		}
	}
	obsMerges.Add(merges)
	obsPackedRows.Add(uint64(rowHi - rowLo))
	groupBits.FlushTo(obsGroupBits)
	mergeChain.FlushTo(obsMergeChain)
}

// buildSlots resolves the row's columns to tracker byte slots and
// builds the column<->slot cross references.
func (rs *rowSolver) buildSlots() {
	rs.rowSeq++
	rs.slotByte = rs.slotByte[:0]
	rs.rawLists = rs.rawLists[:0]
	for c := 0; c < rs.cols; c++ {
		word, bit := rs.rm.Word[c], rs.rm.Bit[c]
		byteIdx := bit >> 3
		key := int(word)*rs.bpw + int(byteIdx)
		if rs.keyStamp[key] != rs.rowSeq {
			rs.keyStamp[key] = rs.rowSeq
			rs.keySlot[key] = int32(len(rs.slotByte))
			rs.slotByte = append(rs.slotByte, byteIdx)
			rs.rawLists = append(rs.rawLists, rs.a.Tracker.Segments(int(word), int(byteIdx)))
		}
		rs.colSlot[c] = rs.keySlot[key]
		rs.colSrc[c] = uint8(bit & 7)
	}
	// Filter each timeline down to segments whose state can matter,
	// resolving the byte state once per segment. Dead segments — and
	// pending segments whose version is never consumed — have live == 0
	// and uarch == false, indistinguishable from gaps, so keeping them
	// would only add breakpoints that flip no occupancy bits. Adjacent
	// segments resolving to the same state merge into one span.
	rs.segBuf = rs.segBuf[:0]
	rs.stateBuf = rs.stateBuf[:0]
	nslots := len(rs.slotByte)
	if cap(rs.segOff) < nslots+1 {
		rs.segOff = make([]int32, nslots+1)
	}
	rs.segOff = rs.segOff[:nslots+1]
	for i := 0; i < nslots; i++ {
		rs.segOff[i] = int32(len(rs.segBuf))
		byteIdx := int(rs.slotByte[i])
		for _, sg := range rs.rawLists[i] {
			st := rs.a.segStateByte(sg, byteIdx)
			if !st.uarch {
				continue
			}
			if k := len(rs.segBuf); k > int(rs.segOff[i]) && rs.segBuf[k-1].End == sg.Start && rs.stateBuf[k-1] == st {
				rs.segBuf[k-1].End = sg.End
				continue
			}
			rs.segBuf = append(rs.segBuf, sg)
			rs.stateBuf = append(rs.stateBuf, st)
		}
	}
	rs.segOff[nslots] = int32(len(rs.segBuf))
	rs.segLists = rs.segLists[:0]
	for i := 0; i < nslots; i++ {
		rs.segLists = append(rs.segLists, rs.segBuf[rs.segOff[i]:rs.segOff[i+1]])
	}
	// Group columns by slot, preserving ascending column order per slot.
	n := len(rs.slotByte)
	if cap(rs.slotOff) < n+1 {
		rs.slotOff = make([]int32, n+1)
	}
	rs.slotOff = rs.slotOff[:n+1]
	clear(rs.slotOff)
	for c := 0; c < rs.cols; c++ {
		rs.slotOff[rs.colSlot[c]+1]++
	}
	for i := 0; i < n; i++ {
		rs.slotOff[i+1] += rs.slotOff[i]
	}
	if cap(rs.slotCols) < rs.cols {
		rs.slotCols = make([]int32, rs.cols)
	}
	rs.slotCols = rs.slotCols[:rs.cols]
	fill := make([]int32, n)
	copy(fill, rs.slotOff[:n])
	for c := 0; c < rs.cols; c++ {
		s := rs.colSlot[c]
		rs.slotCols[fill[s]] = int32(c)
		fill[s]++
	}
}

// buildAnchors precomputes, for every fault group anchored in the row,
// its region word masks and the scheme's reaction to each region size.
// It fully overwrites rs.anchors, which also resets the sweep state
// (class, last, prevU/prevL) for the new row. Interleaved layouts
// assign domains periodically along the row, so consecutive anchors
// usually induce the same partition of mode offsets into regions —
// when the partition repeats, the previous anchor's masks and reaction
// tables are reused without consulting the scheme again.
func (rs *rowSolver) buildAnchors() {
	rs.detRegs = rs.detRegs[:0]
	rs.prevDoms = rs.prevDoms[:0]
	rs.uniform = true
	for a := 0; a < rs.ac; a++ {
		rs.doms = rs.doms[:0]
		for _, o := range rs.offs {
			dom := rs.rm.Dom[a+int(o)]
			j := 0
			for ; j < len(rs.doms); j++ {
				if rs.doms[j].dom == dom {
					break
				}
			}
			if j == len(rs.doms) {
				rs.doms = append(rs.doms, domAcc{dom: dom})
			}
			rs.doms[j].nbits++
			rs.doms[j].mask |= uint64(1) << o
		}
		// Reactions depend only on the partition shape (region sizes and
		// masks), not on domain identities.
		if a > 0 && samePartition(rs.doms, rs.prevDoms) {
			prev := rs.anchors[a-1]
			rs.anchors[a] = anchorState{dm: prev.dm, um: prev.um, detOff: prev.detOff, nDet: prev.nDet}
			continue
		}
		if a > 0 {
			rs.uniform = false
		}
		var dm, um uint64
		off := int32(len(rs.detRegs))
		for _, d := range rs.doms {
			switch rs.scheme.React(int(d.nbits)) {
			case ecc.ReactDetected:
				dm |= d.mask
				rs.detRegs = append(rs.detRegs, d.mask)
			case ecc.ReactUndetected:
				um |= d.mask
			}
		}
		rs.anchors[a] = anchorState{dm: dm, um: um, detOff: off, nDet: int32(len(rs.detRegs)) - off}
		rs.doms, rs.prevDoms = rs.prevDoms[:0], rs.doms
	}
	if rs.uniform && rs.ac > 0 {
		rs.buildUniformOffsets()
	}
}

// buildUniformOffsets flattens the row's shared partition into offset
// lists for the bit-sliced classifier: bit a of OR-over-detOffs of
// (uarch >> o) is exactly anyDet of the group anchored at column a.
func (rs *rowSolver) buildUniformOffsets() {
	rs.detOffs, rs.umOffs = rs.detOffs[:0], rs.umOffs[:0]
	rs.regStart, rs.regOffs = rs.regStart[:0], rs.regOffs[:0]
	an0 := rs.anchors[0]
	for m := an0.dm; m != 0; m &= m - 1 {
		rs.detOffs = append(rs.detOffs, int32(bits.TrailingZeros64(m)))
	}
	for m := an0.um; m != 0; m &= m - 1 {
		rs.umOffs = append(rs.umOffs, int32(bits.TrailingZeros64(m)))
	}
	for _, reg := range rs.detRegs[an0.detOff : an0.detOff+an0.nDet] {
		rs.regStart = append(rs.regStart, int32(len(rs.regOffs)))
		for m := reg; m != 0; m &= m - 1 {
			rs.regOffs = append(rs.regOffs, int32(bits.TrailingZeros64(m)))
		}
	}
	rs.regStart = append(rs.regStart, int32(len(rs.regOffs)))
}

// classifyWord re-classifies the 64 groups of anchor word wi in one
// bit-sliced evaluation and flushes exactly the anchors whose class (or
// DUE-union membership) changed. Anchors in the word that no changed
// column touches recompute to their previous planes and cost nothing.
func (rs *rowSolver) classifyWord(wi int, t interval.Cycle) {
	base := wi << 6
	var D, S, T uint64
	for _, o := range rs.detOffs {
		D |= extract64(rs.uarch, base+int(o))
	}
	for _, o := range rs.umOffs {
		S |= extract64(rs.live, base+int(o))
	}
	for r := 0; r+1 < len(rs.regStart); r++ {
		var ur, lr uint64
		for _, o := range rs.regOffs[rs.regStart[r]:rs.regStart[r+1]] {
			ur |= extract64(rs.uarch, base+int(o))
			lr |= extract64(rs.live, base+int(o))
		}
		T |= ur & lr
	}
	// Class planes, mirroring classify's switch bit-parallel
	// (UnACE=0, FalseDUE=1, TrueDUE=2, SDC=3).
	var sdc, td, fd uint64
	if rs.a.DetectionPreemptsSDC {
		td = D & (T | S)
		fd = D &^ (T | S)
		sdc = S &^ D
	} else {
		sdc = S
		td = T &^ S
		fd = D &^ (T | S)
	}
	valid := rs.validW[wi]
	due := D & valid
	c0 := (fd | sdc) & valid
	c1 := (td | sdc) & valid
	diff := (c0 ^ rs.planeC0[wi]) | (c1 ^ rs.planeC1[wi]) | (due ^ rs.planeDue[wi])
	for m := diff; m != 0; m &= m - 1 {
		j := uint(bits.TrailingZeros64(m))
		ai := base + int(j)
		old := classDue((rs.planeC0[wi]>>j)&1 | ((rs.planeC1[wi]>>j)&1)<<1 | ((rs.planeDue[wi]>>j)&1)<<2)
		if old != 0 && t > rs.lastT[ai] {
			addCounters(rs.s, rs.window, old.class(), old.due(), rs.lastT[ai], t)
		}
		rs.lastT[ai] = t
	}
	rs.planeC0[wi], rs.planeC1[wi], rs.planeDue[wi] = c0, c1, due
}

// samePartition reports whether two offset partitions have identical
// region masks and sizes (domain identities excluded).
func samePartition(a, b []domAcc) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].mask != b[i].mask || a[i].nbits != b[i].nbits {
			return false
		}
	}
	return true
}

// classify resolves the current classification of the group an from its
// masked occupancy extracts — the word-level equivalent of the scalar
// sweep's per-region bit walk. u and l carry only bits under dm|um (the
// caller masks them so unchanged extracts can be skipped without a
// spurious re-classification).
func (rs *rowSolver) classify(an *anchorState, u, l uint64) classDue {
	dm, um := an.dm, an.um
	anyDet := u&dm != 0
	if !anyDet && um == 0 {
		return 0
	}
	anySDC := l&um != 0
	anyTrue := false
	if anyDet && l&dm != 0 {
		for _, reg := range rs.detRegs[an.detOff : an.detOff+an.nDet] {
			if u&reg != 0 && l&reg != 0 {
				anyTrue = true
				break
			}
		}
	}
	cls := ClassUnACE
	if rs.a.DetectionPreemptsSDC && anyDet {
		if anyTrue || anySDC {
			cls = ClassTrueDUE
		} else {
			cls = ClassFalseDUE
		}
	} else {
		switch {
		case anySDC:
			cls = ClassSDC
		case anyTrue:
			cls = ClassTrueDUE
		case anyDet:
			cls = ClassFalseDUE
		}
	}
	out := classDue(cls)
	if anyDet {
		out |= classDueUnion
	}
	return out
}

// flush accumulates the anchor's current classification over
// [an.last, t) and restarts its interval at t.
func (rs *rowSolver) flush(an *anchorState, t interval.Cycle) {
	if c := an.class; c != 0 && t > an.last {
		addCounters(rs.s, rs.window, c.class(), c.due(), an.last, t)
	}
	an.last = t
}

// solveRow sweeps one wordline's packed timeline, returning the number
// of breakpoint spans processed (the merge-chain work measure).
func (rs *rowSolver) solveRow(r int) uint64 {
	a := rs.a
	a.Layout.Row(r, &rs.rm)
	rs.buildSlots()
	rs.buildAnchors()
	p := rs.pk.Pack(rs.segLists, a.TotalCycles)

	clear(rs.uarch)
	clear(rs.live)
	if rs.uniform {
		clear(rs.planeDue)
		clear(rs.planeC0)
		clear(rs.planeC1)
		clear(rs.lastT)
	}

	nspans := p.Spans()
	for i := 0; i < nspans; i++ {
		t, _ := p.Span(i)
		rs.ranges = rs.ranges[:0]
		rlo, rhi := -1, -1 // pending anchor range
		for _, ch := range p.Changes(i) {
			var st byteState
			if ch.Seg >= 0 {
				st = rs.stateBuf[rs.segOff[ch.Slot]+ch.Seg]
			}
			cols := rs.slotCols[rs.slotOff[ch.Slot]:rs.slotOff[ch.Slot+1]]
			for _, col := range cols {
				w, b := col>>6, uint(col&63)
				bit := uint64(1) << b
				var nu, nl uint64
				if st.uarch {
					nu = bit
				}
				if st.live>>(rs.colSrc[col]&7)&1 != 0 {
					nl = bit
				}
				if rs.uarch[w]&bit == nu && rs.live[w]&bit == nl {
					continue // occupancy unchanged: no group can change class
				}
				rs.uarch[w] = rs.uarch[w]&^bit | nu
				rs.live[w] = rs.live[w]&^bit | nl
				// Every group whose window covers this column may change
				// class; grow or emit the pending anchor range.
				lo := int(col) - rs.width + 1
				if lo < 0 {
					lo = 0
				}
				hi := int(col)
				if hi > rs.ac-1 {
					hi = rs.ac - 1
				}
				switch {
				case rlo < 0:
					rlo, rhi = lo, hi
				case lo >= rlo && lo <= rhi+1:
					if hi > rhi {
						rhi = hi
					}
				default:
					rs.ranges = append(rs.ranges, anchorRange{int32(rlo), int32(rhi)})
					rlo, rhi = lo, hi
				}
			}
		}
		if rlo < 0 {
			continue // no occupancy bit changed this span
		}
		rs.ranges = append(rs.ranges, anchorRange{int32(rlo), int32(rhi)})
		if len(rs.ranges) > 1 {
			mergeRanges(&rs.ranges)
		}
		if rs.uniform {
			lastWi := -1
			for _, rg := range rs.ranges {
				for wi := int(rg.lo) >> 6; wi <= int(rg.hi)>>6; wi++ {
					if wi == lastWi {
						continue
					}
					lastWi = wi
					rs.classifyWord(wi, t)
				}
			}
			continue
		}
		for _, rg := range rs.ranges {
			for ai := rg.lo; ai <= rg.hi; ai++ {
				an := &rs.anchors[ai]
				m := an.dm | an.um
				if m == 0 {
					continue // every region corrected: never anything to count
				}
				u := extract64(rs.uarch, int(ai)) & m
				l := extract64(rs.live, int(ai)) & m
				if u == an.prevU && l == an.prevL {
					continue // inputs under the group's masks are unchanged
				}
				an.prevU, an.prevL = u, l
				rs.flush(an, t)
				an.class = rs.classify(an, u, l)
			}
		}
	}
	if rs.uniform {
		for wi := range rs.planeDue {
			nz := rs.planeDue[wi] | rs.planeC0[wi] | rs.planeC1[wi]
			for m := nz; m != 0; m &= m - 1 {
				j := uint(bits.TrailingZeros64(m))
				ai := wi<<6 + int(j)
				cd := classDue((rs.planeC0[wi]>>j)&1 | ((rs.planeC1[wi]>>j)&1)<<1 | ((rs.planeDue[wi]>>j)&1)<<2)
				if a.TotalCycles > rs.lastT[ai] {
					addCounters(rs.s, rs.window, cd.class(), cd.due(), rs.lastT[ai], a.TotalCycles)
				}
			}
		}
		return uint64(nspans)
	}
	for ai := range rs.anchors {
		rs.flush(&rs.anchors[ai], a.TotalCycles)
	}
	return uint64(nspans)
}
