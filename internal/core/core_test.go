package core

import (
	"math"
	"testing"

	"mbavf/internal/bitgeom"
	"mbavf/internal/dataflow"
	"mbavf/internal/ecc"
	"mbavf/internal/interleave"
	"mbavf/internal/lifetime"
)

const horizon = 100

// liveVer creates a version with the given root-live mask. Graphs in these
// tests are built up-front and solved by mkAnalyzer.
func liveVer(g *dataflow.Graph, mask uint32) dataflow.VersionID {
	v := g.New(dataflow.TransferNone, 0)
	g.MarkRootLive(v, mask)
	return v
}

func mustLayout(l *interleave.Layout, err error) *interleave.Layout {
	if err != nil {
		panic(err)
	}
	return l
}

func mkAnalyzer(t *testing.T, l *interleave.Layout, tr *lifetime.Tracker, g *dataflow.Graph) *Analyzer {
	t.Helper()
	g.Solve()
	a := &Analyzer{Layout: l, Tracker: tr, Graph: g, TotalCycles: horizon}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	return a
}

func approx(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("%s = %v, want %v", name, got, want)
	}
}

// TestAllBitsACEGivesRatioOne encodes Section IV-D's first principle: if
// all bits of a fault group are ACE at the same time, MB-AVF equals
// SB-AVF (ratio 1x).
func TestAllBitsACEGivesRatioOne(t *testing.T) {
	// One 16-bit word split into 2 logically interleaved parity domains.
	l := mustLayout(interleave.Logical(1, 16, 2))
	tr := lifetime.NewTracker(1, 2)
	g := dataflow.NewGraph()
	v := liveVer(g, 0xFFFFFFFF)
	for b := 0; b < 2; b++ {
		tr.Open(0, b, 0, v)
		tr.Read(0, b, horizon)
	}
	a := mkAnalyzer(t, l, tr, g)
	r, err := a.Analyze(ecc.Parity{}, bitgeom.Mx1(2))
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "BitAVF", r.BitAVF(), 1.0)
	approx(t, "DUEMBAVF", r.DUEMBAVF(), 1.0)
	if r.Groups != 15 {
		t.Errorf("groups = %d, want 15", r.Groups)
	}
}

// TestDisjointACEGivesRatioM encodes the other extreme of Section IV-D:
// if only one bit of an M-bit group is ACE at any time, MB-AVF is M times
// SB-AVF.
func TestDisjointACEGivesRatioM(t *testing.T) {
	// One 16-bit word; bits 0-7 (byte 0) ACE for the first half, bits
	// 8-15 (byte 1) for the second half. A 2x1 group straddling the byte
	// boundary is ACE the whole time.
	l := mustLayout(interleave.Logical(1, 16, 2))
	tr := lifetime.NewTracker(1, 2)
	g := dataflow.NewGraph()
	v := liveVer(g, 0xFFFFFFFF)
	tr.Open(0, 0, 0, v)
	tr.Read(0, 0, 50)
	tr.CloseClean(0, 0, 50)
	tr.Open(0, 1, 50, v)
	tr.Read(0, 1, horizon)
	a := mkAnalyzer(t, l, tr, g)
	r, err := a.Analyze(ecc.Parity{}, bitgeom.Mx1(2))
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "BitAVF", r.BitAVF(), 0.5)
	// 15 groups: 14 fully inside one byte (ACE half the time), 1
	// straddling (ACE all the time): (14*50 + 100) / (15*100).
	approx(t, "DUEMBAVF", r.DUEMBAVF(), float64(14*50+100)/float64(15*horizon))
	// The straddling group alone has MB-AVF = 2x SB-AVF; overall ratio
	// must exceed 1x.
	if ratio := r.DUEMBAVF() / r.BitAVF(); ratio <= 1.0 {
		t.Errorf("MB/SB ratio = %v, want > 1", ratio)
	}
}

// TestFigure3SECDED reproduces the paper's Figure 3: a 3x1 fault group
// over two SEC-DED protection domains, two bits in PD0 and one in PD1.
// The PD0 overlap (2 flips) is detected; the PD1 overlap (1 flip) is
// corrected. DUE ACEness of the group equals PD0's ACE time.
func TestFigure3SECDED(t *testing.T) {
	// 1 set x 2 ways of 8-bit lines, x2 way-physical interleave:
	// physical cols alternate way0, way1. 3x1 at anchor 0 = way0 bits
	// {0,1} + way1 bit {0}.
	l := mustLayout(interleave.WayPhysical(1, 2, 8, 2))
	tr := lifetime.NewTracker(2, 1)
	g := dataflow.NewGraph()
	v := liveVer(g, 0xFFFFFFFF)
	// Way 0 (PD0) ACE [0,30); way 1 (PD1) ACE [0,80).
	tr.Open(0, 0, 0, v)
	tr.Read(0, 0, 30)
	tr.Open(1, 0, 0, v)
	tr.Read(1, 0, 80)
	a := mkAnalyzer(t, l, tr, g)

	// Restrict to the single anchored group by using a custom 3-bit mode
	// on the 16-col geometry: groups = 14, but we check totals match the
	// analytical sum: every group has 2 bits in one way and 1 in the
	// other; SEC-DED corrects the 1-bit region and detects the 2-bit one.
	r, err := a.Analyze(ecc.SECDED{}, bitgeom.Mx1(3))
	if err != nil {
		t.Fatal(err)
	}
	// Groups anchored at even columns have 2 bits in way0 (ACE 30); odd
	// anchors have 2 bits in way1 (ACE 80). Anchors 0..13: 7 even, 7 odd.
	want := float64(7*30+7*80) / float64(14*horizon)
	approx(t, "DUEMBAVF", r.DUEMBAVF(), want)
	// Corrected single-bit regions contribute nothing: no SDC anywhere.
	approx(t, "SDCMBAVF", r.SDCMBAVF(), 0)
}

// TestFigure7ParitySDCPrecedence reproduces Figure 7: a 3x1 fault over two
// parity domains. The 2-bit overlap defeats parity (SDC when live); the
// 1-bit overlap is detected (DUE when ACE). SDC takes precedence in the
// group classification.
func TestFigure7ParitySDCPrecedence(t *testing.T) {
	l := mustLayout(interleave.WayPhysical(1, 2, 8, 2))
	tr := lifetime.NewTracker(2, 1)
	g := dataflow.NewGraph()
	v := liveVer(g, 0xFFFFFFFF)
	// Both ways ACE+live for [0,60).
	tr.Open(0, 0, 0, v)
	tr.Read(0, 0, 60)
	tr.Open(1, 0, 0, v)
	tr.Read(1, 0, 60)
	a := mkAnalyzer(t, l, tr, g)
	r, err := a.Analyze(ecc.Parity{}, bitgeom.Mx1(3))
	if err != nil {
		t.Fatal(err)
	}
	// Every group: 2-bit region SDC-live and 1-bit region DUE-ACE during
	// [0,60). Precedence: SDC. Four-class DUE must be zero; eq-7 DUE
	// union is still 60 cycles per group.
	approx(t, "SDCMBAVF", r.SDCMBAVF(), 0.6)
	approx(t, "TrueDUE", r.TrueDUEMBAVF(), 0)
	approx(t, "DUE union", r.DUEMBAVF(), 0.6)
}

// TestDetectionPreemptsSDC flips the case-study rule on: the same Figure 7
// situation becomes a true DUE because the adjacent domain's detection
// fires before the corruption propagates (Section VIII inter-thread
// interleaving).
func TestDetectionPreemptsSDC(t *testing.T) {
	l := mustLayout(interleave.WayPhysical(1, 2, 8, 2))
	tr := lifetime.NewTracker(2, 1)
	g := dataflow.NewGraph()
	v := liveVer(g, 0xFFFFFFFF)
	tr.Open(0, 0, 0, v)
	tr.Read(0, 0, 60)
	tr.Open(1, 0, 0, v)
	tr.Read(1, 0, 60)
	a := mkAnalyzer(t, l, tr, g)
	a.DetectionPreemptsSDC = true
	r, err := a.Analyze(ecc.Parity{}, bitgeom.Mx1(3))
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "SDCMBAVF", r.SDCMBAVF(), 0)
	approx(t, "TrueDUE", r.TrueDUEMBAVF(), 0.6)
}

// TestFalseDUE: data that is uarch-ACE (it is read) but dynamically dead
// (its value never reaches output) produces false DUEs when detected.
func TestFalseDUE(t *testing.T) {
	l := mustLayout(interleave.Logical(1, 8, 1))
	tr := lifetime.NewTracker(1, 1)
	g := dataflow.NewGraph()
	dead := g.New(dataflow.TransferNone, 0) // never marked live
	tr.Open(0, 0, 0, dead)
	tr.Read(0, 0, 40)
	a := mkAnalyzer(t, l, tr, g)
	r, err := a.Analyze(ecc.Parity{}, bitgeom.Mx1(1))
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "FalseDUE", r.FalseDUEMBAVF(), 0.4)
	approx(t, "TrueDUE", r.TrueDUEMBAVF(), 0)
	approx(t, "BitAVFLive", r.BitAVFLive(), 0)
	approx(t, "BitAVF", r.BitAVF(), 0.4)
}

// TestPendingResolution: dirty-evicted data is ACE only when the evicted
// version is consumed after the eviction.
func TestPendingResolution(t *testing.T) {
	l := mustLayout(interleave.Logical(2, 8, 1))
	tr := lifetime.NewTracker(2, 1)
	g := dataflow.NewGraph()
	consumed := liveVer(g, 0xFF)
	g.NoteRead(consumed, 90) // read after the eviction at 50
	abandoned := liveVer(g, 0xFF)

	tr.Open(0, 0, 0, consumed)
	tr.CloseDirty(0, 0, 50)
	tr.Open(1, 0, 0, abandoned)
	tr.CloseDirty(1, 0, 50)

	a := mkAnalyzer(t, l, tr, g)
	r, err := a.Analyze(ecc.Parity{}, bitgeom.Mx1(1))
	if err != nil {
		t.Fatal(err)
	}
	// Word 0: pending resolved ACE (consumed later): 50 cycles x 8 bits.
	// Word 1: pending unACE. SB DUE AVF = 50*8 / (16*100).
	approx(t, "DUE", r.DUEMBAVF(), float64(50*8)/float64(16*horizon))
}

// TestPartialLiveMask: logic masking. Only the low nibble of the value is
// live; detected faults on dead bits are false DUEs, on live bits true
// DUEs; with no protection only live bits give SDC.
func TestPartialLiveMask(t *testing.T) {
	l := mustLayout(interleave.Logical(1, 8, 1))
	tr := lifetime.NewTracker(1, 1)
	g := dataflow.NewGraph()
	v := liveVer(g, 0x0F)
	tr.Open(0, 0, 0, v)
	tr.Read(0, 0, horizon)
	a := mkAnalyzer(t, l, tr, g)

	r, err := a.Analyze(ecc.None{}, bitgeom.Mx1(1))
	if err != nil {
		t.Fatal(err)
	}
	// 4 of 8 bits live for all 100 cycles.
	approx(t, "SDC", r.SDCMBAVF(), 0.5)
	approx(t, "BitAVFLive", r.BitAVFLive(), 0.5)
	approx(t, "BitAVF", r.BitAVF(), 1.0)

	// A 2x1 fault group is SDC-live if either bit is live: groups
	// 0-3 live (bits 0-4 involved), group 4 live (bits 4,5: bit 4 dead,
	// bit 3... anchor 3 = bits {3,4}: bit 3 live). Anchors 0..6; anchor k
	// covers bits k,k+1; live iff k <= 3.
	r2, err := a.Analyze(ecc.None{}, bitgeom.Mx1(2))
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "SDC 2x1", r2.SDCMBAVF(), 4.0/7.0)
}

// TestWindowedSeriesSumsToTotal: windowed counters must partition the
// totals exactly.
func TestWindowedSeriesSumsToTotal(t *testing.T) {
	l := mustLayout(interleave.Logical(2, 16, 2))
	tr := lifetime.NewTracker(2, 2)
	g := dataflow.NewGraph()
	v := liveVer(g, 0xFFFFFFFF)
	dead := g.New(dataflow.TransferNone, 0)
	tr.Open(0, 0, 5, v)
	tr.Read(0, 0, 42)
	tr.Open(0, 1, 13, dead)
	tr.Read(0, 1, 77)
	tr.Open(1, 0, 30, v)
	tr.CloseDirty(1, 0, 66)
	g.NoteRead(v, 99)
	a := mkAnalyzer(t, l, tr, g)
	series, err := a.AnalyzeWindowed(ecc.Parity{}, bitgeom.Mx1(2), 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Windows) != (horizon+16)/17 {
		t.Fatalf("windows = %d", len(series.Windows))
	}
	var sum Counters
	var bitU, bitL uint64
	var cyc uint64
	for _, w := range series.Windows {
		sum.add(w.Counters)
		bitU += w.BitUarch
		bitL += w.BitLive
		cyc += w.TotalCycles
	}
	if sum != series.Total.Counters {
		t.Errorf("window counters %+v != total %+v", sum, series.Total.Counters)
	}
	if bitU != series.Total.BitUarch || bitL != series.Total.BitLive {
		t.Errorf("window bit cycles %d/%d != total %d/%d", bitU, bitL, series.Total.BitUarch, series.Total.BitLive)
	}
	if cyc != horizon {
		t.Errorf("window cycle sum = %d, want %d", cyc, horizon)
	}
}

// TestSECDEDEquivalenceToParity encodes the paper's Section VI-C finding:
// Mx1 MB-AVF with SEC-DED equals (M/2)x1 MB-AVF with parity for x2
// interleaving when ACEness is uniform, because both leave the same
// number of affected-but-unprotected domains.
func TestSECDEDEquivalence(t *testing.T) {
	l := mustLayout(interleave.WayPhysical(2, 2, 32, 2))
	tr := lifetime.NewTracker(4, 4)
	g := dataflow.NewGraph()
	v := liveVer(g, 0xFFFFFFFF)
	// Make a patchwork of ACE times across lines.
	spans := [][2]uint64{{0, 40}, {20, 90}, {50, 100}, {0, 100}}
	for w := 0; w < 4; w++ {
		for b := 0; b < 4; b++ {
			tr.Open(w, b, spans[w][0], v)
			tr.Read(w, b, spans[w][1])
		}
	}
	a := mkAnalyzer(t, l, tr, g)
	// 4x1 with SEC-DED x2: each domain sees 2 flips -> detected. 2x1 with
	// parity x2: each domain sees 1 flip -> detected. Same domains pair
	// (anchor parity aside); DUE AVFs should be very close. With aligned
	// anchors they are identical for even anchors; compare averages
	// loosely.
	r4, err := a.Analyze(ecc.SECDED{}, bitgeom.Mx1(4))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Analyze(ecc.Parity{}, bitgeom.Mx1(2))
	if err != nil {
		t.Fatal(err)
	}
	if r4.DUEMBAVF() < r2.DUEMBAVF()*0.9 || r4.DUEMBAVF() > r2.DUEMBAVF()*1.1 {
		t.Errorf("4x1 SEC-DED DUE %v vs 2x1 parity DUE %v: want within 10%%",
			r4.DUEMBAVF(), r2.DUEMBAVF())
	}
}

// TestMBAVFBounds: DUE MB-AVF must lie within [SB-AVF-ish, M x SB-AVF]
// for parity with per-bit domains (every region detected).
func TestMBAVFMonotoneInModeSize(t *testing.T) {
	l := mustLayout(interleave.Logical(4, 32, 4))
	tr := lifetime.NewTracker(4, 4)
	g := dataflow.NewGraph()
	v := liveVer(g, 0xFFFFFFFF)
	spans := [][2]uint64{{0, 25}, {25, 50}, {50, 75}, {75, 100}}
	for w := 0; w < 4; w++ {
		for b := 0; b < 4; b++ {
			tr.Open(w, b, spans[(w+b)%4][0], v)
			tr.Read(w, b, spans[(w+b)%4][1])
		}
	}
	a := mkAnalyzer(t, l, tr, g)
	// With x4 logical interleave and parity, any Mx1 fault (M<=4) puts
	// at most 1 bit per domain: all regions detected. MB-AVF must grow
	// with M (larger groups more likely to contain an ACE bit).
	prev := -1.0
	for m := 1; m <= 4; m++ {
		r, err := a.Analyze(ecc.Parity{}, bitgeom.Mx1(m))
		if err != nil {
			t.Fatal(err)
		}
		v := r.DUEMBAVF()
		if v < prev {
			t.Errorf("DUE MB-AVF decreased from %v to %v at %dx1", prev, v, m)
		}
		if sb := r.BitAVF(); v > float64(m)*sb+1e-9 {
			t.Errorf("%dx1 MB-AVF %v exceeds M x SB-AVF %v", m, v, float64(m)*sb)
		}
		prev = v
	}
}

func TestValidateRejectsMismatch(t *testing.T) {
	l := mustLayout(interleave.Logical(2, 16, 1))
	tr := lifetime.NewTracker(3, 2) // wrong word count
	g := dataflow.NewGraph()
	g.Solve()
	a := &Analyzer{Layout: l, Tracker: tr, Graph: g, TotalCycles: 10}
	if err := a.Validate(); err == nil {
		t.Error("mismatched tracker should fail validation")
	}
	tr2 := lifetime.NewTracker(2, 4) // wrong word width
	a.Tracker = tr2
	if err := a.Validate(); err == nil {
		t.Error("word width mismatch should fail validation")
	}
	a.Tracker = lifetime.NewTracker(2, 2)
	a.TotalCycles = 0
	if err := a.Validate(); err == nil {
		t.Error("zero cycles should fail validation")
	}
}

func TestModeTooLargeRejected(t *testing.T) {
	l := mustLayout(interleave.Logical(1, 8, 1))
	tr := lifetime.NewTracker(1, 1)
	g := dataflow.NewGraph()
	a := mkAnalyzer(t, l, tr, g)
	if _, err := a.Analyze(ecc.Parity{}, bitgeom.Mx1(9)); err == nil {
		t.Error("9x1 on an 8-bit row should be rejected")
	}
}
