package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mbavf/internal/bitgeom"
	"mbavf/internal/dataflow"
	"mbavf/internal/ecc"
	"mbavf/internal/interleave"
	"mbavf/internal/lifetime"
)

// referenceAnalyze is a brute-force per-cycle implementation of the MB-AVF
// classification (literally equation 2's cycle sum), used to cross-check
// the interval-sweep engine on randomized inputs. It walks every cycle of
// every fault group independently.
func referenceAnalyze(a *Analyzer, scheme ecc.Scheme, mode bitgeom.FaultMode) Counters {
	geom := a.Layout.Geom
	var out Counters
	groups := geom.GroupCount(mode)
	for gi := 0; gi < groups; gi++ {
		bits := geom.GroupBits(mode, gi, nil)
		// Partition into regions by domain.
		domains := map[int][]interleave.WordBit{}
		for _, pos := range bits {
			wb, dom := a.Layout.Map(pos)
			domains[dom] = append(domains[dom], wb)
		}
		for c := uint64(0); c < a.TotalCycles; c++ {
			var anyDetACE, anyTrueDUE, anySDC bool
			for _, members := range domains {
				react := scheme.React(len(members))
				if react == ecc.ReactCorrected || react == ecc.ReactNone {
					continue
				}
				var uarch, live bool
				for _, wb := range members {
					st := refBitState(a, wb, c)
					uarch = uarch || st.uarch
					live = live || st.live
				}
				switch react {
				case ecc.ReactDetected:
					if uarch {
						anyDetACE = true
						if live {
							anyTrueDUE = true
						}
					}
				case ecc.ReactUndetected:
					if live {
						anySDC = true
					}
				}
			}
			if anyDetACE {
				out.DUE++
			}
			if a.DetectionPreemptsSDC && anyDetACE {
				if anyTrueDUE || anySDC {
					out.TrueDUE++
				} else {
					out.FalseDUE++
				}
				continue
			}
			switch {
			case anySDC:
				out.SDC++
			case anyTrueDUE:
				out.TrueDUE++
			case anyDetACE:
				out.FalseDUE++
			}
		}
	}
	return out
}

// refBitState evaluates one bit's state at one cycle by linear search over
// its segments.
func refBitState(a *Analyzer, wb interleave.WordBit, c uint64) bitState {
	byteIdx := wb.Bit / 8
	for _, seg := range a.Tracker.Segments(wb.Word, byteIdx) {
		if c >= seg.Start && c < seg.End {
			return a.segState(seg, byteIdx, wb.Bit%8)
		}
	}
	return bitState{}
}

// randomAnalyzer builds a small random structure with random lifetime
// events and liveness.
func randomAnalyzer(r *rand.Rand, horizonC uint64, preempt bool) *Analyzer {
	words := 2 * (1 + r.Intn(2)) // even, so x2 layouts always divide
	var lay *interleave.Layout
	var err error
	switch r.Intn(3) {
	case 0:
		lay, err = interleave.Logical(words, 16, 1<<r.Intn(2))
	case 1:
		lay, err = interleave.WayPhysical(1, words, 16, 2)
	default:
		lay, err = interleave.IntraThread(1, words, 16, 2)
	}
	if err != nil {
		panic(err)
	}
	tr := lifetime.NewTracker(words, 2)
	g := dataflow.NewGraph()
	for w := 0; w < words; w++ {
		for b := 0; b < 2; b++ {
			t := uint64(r.Intn(10))
			nEvents := r.Intn(5)
			held := false
			for e := 0; e < nEvents && t < horizonC; e++ {
				switch r.Intn(4) {
				case 0:
					v := g.New(dataflow.TransferNone, 0)
					g.MarkRootLive(v, r.Uint32())
					if r.Intn(2) == 0 {
						g.NoteRead(v, t+uint64(r.Intn(int(horizonC))))
					}
					tr.Open(w, b, t, v)
					held = true
				case 1:
					if held {
						tr.Read(w, b, t)
					}
				case 2:
					if held {
						tr.CloseClean(w, b, t)
						held = false
					}
				default:
					if held {
						tr.CloseDirty(w, b, t)
						held = false
					}
				}
				t += 1 + uint64(r.Intn(12))
			}
		}
	}
	tr.Finish(horizonC)
	g.Solve()
	return &Analyzer{
		Layout:               lay,
		Tracker:              tr,
		Graph:                g,
		TotalCycles:          horizonC,
		DetectionPreemptsSDC: preempt,
	}
}

// TestQuickSweepMatchesBruteForce cross-checks the production interval
// sweep against the per-cycle reference on random structures, schemes,
// modes, and lifetime histories.
func TestQuickSweepMatchesBruteForce(t *testing.T) {
	schemes := []ecc.Scheme{ecc.None{}, ecc.Parity{}, ecc.SECDED{}, ecc.DECTED{}}
	f := func(seed int64, preempt bool) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomAnalyzer(r, 40, preempt)
		scheme := schemes[r.Intn(len(schemes))]
		mode := bitgeom.Mx1(1 + r.Intn(4))
		got, err := a.Analyze(scheme, mode)
		if err != nil {
			// Mode may not fit tiny geometries; skip.
			return true
		}
		want := referenceAnalyze(a, scheme, mode)
		if got.Counters != want {
			t.Logf("seed %d scheme %s mode %s preempt %v:\n got %+v\nwant %+v",
				seed, scheme.Name(), mode.Name(), preempt, got.Counters, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBitAVFMatchesBruteForce cross-checks the bit-level AVF
// accumulation against per-cycle counting.
func TestQuickBitAVFMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomAnalyzer(r, 40, false)
		got, err := a.Analyze(ecc.Parity{}, bitgeom.Mx1(1))
		if err != nil {
			return true
		}
		var wantUarch, wantLive uint64
		for w := 0; w < a.Tracker.Words(); w++ {
			for byteIdx := 0; byteIdx < a.Tracker.BytesPerWord(); byteIdx++ {
				for bit := 0; bit < 8; bit++ {
					wb := interleave.WordBit{Word: w, Bit: byteIdx*8 + bit}
					for c := uint64(0); c < a.TotalCycles; c++ {
						st := refBitState(a, wb, c)
						if st.uarch {
							wantUarch++
						}
						if st.live {
							wantLive++
						}
					}
				}
			}
		}
		if got.BitUarch != wantUarch || got.BitLive != wantLive {
			t.Logf("seed %d: got %d/%d want %d/%d", seed, got.BitUarch, got.BitLive, wantUarch, wantLive)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWindowedPartition checks on random inputs that windowed
// counters always partition totals.
func TestQuickWindowedPartition(t *testing.T) {
	f := func(seed int64, winRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomAnalyzer(r, 60, false)
		window := uint64(winRaw%17) + 3
		series, err := a.AnalyzeWindowed(ecc.Parity{}, bitgeom.Mx1(2), window)
		if err != nil {
			return true
		}
		var sum Counters
		var bu, bl, cyc uint64
		for _, w := range series.Windows {
			sum.add(w.Counters)
			bu += w.BitUarch
			bl += w.BitLive
			cyc += w.TotalCycles
		}
		return sum == series.Total.Counters &&
			bu == series.Total.BitUarch && bl == series.Total.BitLive &&
			cyc == series.Total.TotalCycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickParallelMatchesSerial: sweeping with any worker count must give
// identical results (groups are independent; shards merge losslessly).
func TestQuickParallelMatchesSerial(t *testing.T) {
	f := func(seed int64, workers uint8) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomAnalyzer(r, 50, false)
		mode := bitgeom.Mx1(1 + r.Intn(4))
		a.Parallelism = 1
		serial, err := a.AnalyzeWindowed(ecc.Parity{}, mode, 13)
		if err != nil {
			return true
		}
		a.Parallelism = int(workers%7) + 2
		par, err := a.AnalyzeWindowed(ecc.Parity{}, mode, 13)
		if err != nil {
			t.Logf("parallel errored: %v", err)
			return false
		}
		if serial.Total.Counters != par.Total.Counters {
			t.Logf("totals differ: %+v vs %+v", serial.Total.Counters, par.Total.Counters)
			return false
		}
		for i := range serial.Windows {
			if serial.Windows[i].Counters != par.Windows[i].Counters {
				t.Logf("window %d differs", i)
				return false
			}
		}
		return serial.Total.BitUarch == par.Total.BitUarch
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
