package core

import (
	"testing"

	"mbavf/internal/bitgeom"
	"mbavf/internal/dataflow"
	"mbavf/internal/ecc"
	"mbavf/internal/interleave"
	"mbavf/internal/lifetime"
)

func TestACELocalityPerfectCorrelation(t *testing.T) {
	// Both bytes of one word ACE at identical times: locality 1.
	l := mustLayout(interleave.Logical(1, 16, 2))
	tr := lifetime.NewTracker(1, 2)
	g := dataflow.NewGraph()
	v := liveVer(g, 0xFFFFFFFF)
	for b := 0; b < 2; b++ {
		tr.Open(0, b, 0, v)
		tr.Read(0, b, 60)
	}
	a := mkAnalyzer(t, l, tr, g)
	loc, err := a.ACELocality(bitgeom.Mx1(2))
	if err != nil {
		t.Fatal(err)
	}
	if loc.Coefficient() != 1.0 {
		t.Errorf("coefficient = %v, want 1", loc.Coefficient())
	}
	if loc.AnyACE != 15*60 {
		t.Errorf("AnyACE = %d, want %d", loc.AnyACE, 15*60)
	}
}

func TestACELocalityDisjointTimes(t *testing.T) {
	// Byte 0 ACE in the first half, byte 1 in the second half: groups
	// straddling the boundary never have both bits ACE.
	l := mustLayout(interleave.Logical(1, 16, 2))
	tr := lifetime.NewTracker(1, 2)
	g := dataflow.NewGraph()
	v := liveVer(g, 0xFFFFFFFF)
	tr.Open(0, 0, 0, v)
	tr.Read(0, 0, 50)
	tr.CloseClean(0, 0, 50)
	tr.Open(0, 1, 50, v)
	tr.Read(0, 1, horizon)
	a := mkAnalyzer(t, l, tr, g)
	loc, err := a.ACELocality(bitgeom.Mx1(2))
	if err != nil {
		t.Fatal(err)
	}
	// 14 same-byte groups: all-ACE half the time. 1 straddling group:
	// any-ACE always, all-ACE never.
	wantAll := uint64(14 * 50)
	wantAny := uint64(14*50 + 100)
	if loc.AllACE != wantAll || loc.AnyACE != wantAny {
		t.Errorf("locality = %+v, want all=%d any=%d", loc, wantAll, wantAny)
	}
	if c := loc.Coefficient(); c >= 1.0 {
		t.Errorf("coefficient %v should be < 1", c)
	}
}

func TestACELocalityEmptyStructure(t *testing.T) {
	l := mustLayout(interleave.Logical(1, 8, 1))
	tr := lifetime.NewTracker(1, 1)
	g := dataflow.NewGraph()
	a := mkAnalyzer(t, l, tr, g)
	loc, err := a.ACELocality(bitgeom.Mx1(2))
	if err != nil {
		t.Fatal(err)
	}
	if loc.Coefficient() != 0 || loc.AnyACE != 0 {
		t.Errorf("empty structure locality = %+v", loc)
	}
}

func TestACELocalityPredictsMBAVFRatio(t *testing.T) {
	// With parity and per-bit domains, MB-AVF numerator == AnyACE: the
	// locality sweep and the full analysis must agree exactly.
	l := mustLayout(interleave.Logical(2, 16, 2))
	tr := lifetime.NewTracker(2, 2)
	g := dataflow.NewGraph()
	v := liveVer(g, 0xFFFFFFFF)
	tr.Open(0, 0, 3, v)
	tr.Read(0, 0, 47)
	tr.Open(0, 1, 20, v)
	tr.Read(0, 1, 90)
	tr.Open(1, 0, 10, v)
	tr.Read(1, 0, 30)
	a := mkAnalyzer(t, l, tr, g)
	mode := bitgeom.Mx1(2)
	loc, err := a.ACELocality(mode)
	if err != nil {
		t.Fatal(err)
	}
	r, err := a.Analyze(ecc.Parity{}, mode)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Counters.DUE; got != loc.AnyACE {
		t.Errorf("DUE cycles %d != AnyACE %d", got, loc.AnyACE)
	}
}
