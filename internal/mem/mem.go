// Package mem provides the flat, byte-addressable memory backing the APU
// simulator. Memory holds the functional state (values) plus the dynamic
// dataflow version of every byte, so caches and the AVF infrastructure can
// associate the data resident in any SRAM slot with its liveness.
package mem

import (
	"encoding/binary"
	"fmt"

	"mbavf/internal/dataflow"
)

// Memory is the simulated physical memory.
type Memory struct {
	data    []byte
	version []dataflow.VersionID
}

// New returns a zeroed memory of size bytes. All bytes start at the ground
// version (0).
func New(size int) *Memory {
	return &Memory{
		data:    make([]byte, size),
		version: make([]dataflow.VersionID, size),
	}
}

// Size returns the memory size in bytes.
func (m *Memory) Size() int { return len(m.data) }

func (m *Memory) check(addr uint32, n int) error {
	if int(addr)+n > len(m.data) {
		return fmt.Errorf("mem: access [%#x,%#x) beyond size %#x", addr, int(addr)+n, len(m.data))
	}
	return nil
}

// LoadByte returns the value and version of the byte at addr.
func (m *Memory) LoadByte(addr uint32) (byte, dataflow.VersionID, error) {
	if err := m.check(addr, 1); err != nil {
		return 0, 0, err
	}
	return m.data[addr], m.version[addr], nil
}

// StoreByte stores value v with version ver at addr.
func (m *Memory) StoreByte(addr uint32, v byte, ver dataflow.VersionID) error {
	if err := m.check(addr, 1); err != nil {
		return err
	}
	m.data[addr] = v
	m.version[addr] = ver
	return nil
}

// LoadWord returns the little-endian 32-bit value at addr and the versions
// of its four bytes.
func (m *Memory) LoadWord(addr uint32) (uint32, [4]dataflow.VersionID, error) {
	var vers [4]dataflow.VersionID
	if err := m.check(addr, 4); err != nil {
		return 0, vers, err
	}
	copy(vers[:], m.version[addr:addr+4])
	return binary.LittleEndian.Uint32(m.data[addr : addr+4]), vers, nil
}

// StoreWord stores a little-endian 32-bit value at addr; vers supplies the
// version of each byte.
func (m *Memory) StoreWord(addr uint32, v uint32, vers [4]dataflow.VersionID) error {
	if err := m.check(addr, 4); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(m.data[addr:addr+4], v)
	copy(m.version[addr:addr+4], vers[:])
	return nil
}

// VersionAt returns the version of the byte at addr without bounds checks
// beyond the slice's own; it is used by caches when filling lines.
func (m *Memory) VersionAt(addr uint32) dataflow.VersionID { return m.version[addr] }

// ByteAt returns the value of the byte at addr.
func (m *Memory) ByteAt(addr uint32) byte { return m.data[addr] }

// SetInput writes host-provided input data starting at addr, creating one
// fresh TransferNone version per byte in g so that input data flowing
// through caches participates in liveness analysis. If g is nil the bytes
// keep the ground version.
func (m *Memory) SetInput(g *dataflow.Graph, addr uint32, data []byte) error {
	if err := m.check(addr, len(data)); err != nil {
		return err
	}
	copy(m.data[addr:], data)
	for i := range data {
		if g != nil {
			m.version[addr+uint32(i)] = g.New(dataflow.TransferNone, 0)
		} else {
			m.version[addr+uint32(i)] = 0
		}
	}
	return nil
}

// SetInputWords writes host-provided 32-bit values starting at addr, with
// per-byte input versions as in SetInput.
func (m *Memory) SetInputWords(g *dataflow.Graph, addr uint32, words []uint32) error {
	buf := make([]byte, 4*len(words))
	for i, w := range words {
		binary.LittleEndian.PutUint32(buf[4*i:], w)
	}
	return m.SetInput(g, addr, buf)
}

// Bytes returns a copy of the byte range [addr, addr+n); it is the host
// view used to compare program output against a golden result.
func (m *Memory) Bytes(addr uint32, n int) ([]byte, error) {
	if err := m.check(addr, n); err != nil {
		return nil, err
	}
	return append([]byte(nil), m.data[addr:int(addr)+n]...), nil
}

// Words returns n little-endian 32-bit values starting at addr.
func (m *Memory) Words(addr uint32, n int) ([]uint32, error) {
	b, err := m.Bytes(addr, 4*n)
	if err != nil {
		return nil, err
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out, nil
}

// MarkOutput marks the byte range [addr, addr+n) as final program output:
// the current version of every byte is root-live and counts as consumed at
// cycle end for uarch purposes.
func (m *Memory) MarkOutput(g *dataflow.Graph, addr uint32, n int, end uint64) error {
	if err := m.check(addr, n); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		v := m.version[addr+uint32(i)]
		g.MarkRootLive(v, 0xFF)
		g.NoteRead(v, end+1)
	}
	return nil
}
