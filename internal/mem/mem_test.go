package mem

import (
	"testing"

	"mbavf/internal/dataflow"
)

func TestLoadStoreWordRoundTrip(t *testing.T) {
	m := New(64)
	vers := [4]dataflow.VersionID{1, 2, 3, 4}
	if err := m.StoreWord(8, 0xDEADBEEF, vers); err != nil {
		t.Fatal(err)
	}
	v, gotVers, err := m.LoadWord(8)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xDEADBEEF {
		t.Errorf("value = %#x", v)
	}
	if gotVers != vers {
		t.Errorf("versions = %v, want %v", gotVers, vers)
	}
	// Little-endian byte order.
	if b, _, _ := m.LoadByte(8); b != 0xEF {
		t.Errorf("byte 0 = %#x, want 0xEF", b)
	}
	if b, _, _ := m.LoadByte(11); b != 0xDE {
		t.Errorf("byte 3 = %#x, want 0xDE", b)
	}
}

func TestBoundsChecks(t *testing.T) {
	m := New(8)
	if _, _, err := m.LoadWord(6); err == nil {
		t.Error("LoadWord straddling the end should fail")
	}
	if err := m.StoreByte(8, 1, 0); err == nil {
		t.Error("StoreByte past the end should fail")
	}
	if _, err := m.Bytes(4, 5); err == nil {
		t.Error("Bytes past the end should fail")
	}
}

func TestSetInputCreatesVersions(t *testing.T) {
	g := dataflow.NewGraph()
	m := New(16)
	if err := m.SetInput(g, 4, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	v0 := m.VersionAt(4)
	v1 := m.VersionAt(5)
	if v0 == 0 || v1 == 0 || v0 == v1 {
		t.Errorf("input versions = %d,%d, want distinct non-ground", v0, v1)
	}
	if m.VersionAt(7) != 0 {
		t.Error("untouched byte should keep ground version")
	}
	if m.ByteAt(5) != 2 {
		t.Errorf("value = %d, want 2", m.ByteAt(5))
	}
}

func TestSetInputNilGraph(t *testing.T) {
	m := New(8)
	if err := m.SetInput(nil, 0, []byte{9}); err != nil {
		t.Fatal(err)
	}
	if m.VersionAt(0) != 0 {
		t.Error("nil graph input should use ground version")
	}
}

func TestSetInputWordsAndWords(t *testing.T) {
	g := dataflow.NewGraph()
	m := New(64)
	in := []uint32{10, 20, 30}
	if err := m.SetInputWords(g, 16, in); err != nil {
		t.Fatal(err)
	}
	out, err := m.Words(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("word %d = %d, want %d", i, out[i], in[i])
		}
	}
}

func TestMarkOutputMarksLiveAndConsumed(t *testing.T) {
	g := dataflow.NewGraph()
	m := New(16)
	ver := g.New(dataflow.TransferNone, 0)
	if err := m.StoreByte(3, 0xAB, ver); err != nil {
		t.Fatal(err)
	}
	if err := m.MarkOutput(g, 3, 1, 100); err != nil {
		t.Fatal(err)
	}
	g.Solve()
	if g.Live(ver) != 0xFF {
		t.Errorf("output byte live = %#x, want 0xFF", g.Live(ver))
	}
	if !g.ReadAfter(ver, 100) {
		t.Error("output version should count as consumed after end")
	}
}
