package policy

import (
	"errors"
	"math"
	"testing"

	"mbavf/internal/core"
	"mbavf/internal/ecc"
)

// fakeResult builds a solved Result with known classified cycle totals:
// 1000 groups x 1000 cycles, with the given group-cycle counters.
func fakeResult(due, trueDUE, falseDUE, sdc uint64) *core.Result {
	return &core.Result{
		Groups:      1000,
		Bits:        4000,
		TotalCycles: 1000,
		Counters:    core.Counters{DUE: due, TrueDUE: trueDUE, FalseDUE: falseDUE, SDC: sdc},
		BitUarch:    500000,
		BitLive:     250000,
	}
}

func TestNamedCoversAllNames(t *testing.T) {
	for _, name := range Names() {
		p, err := Named(name, Spec{})
		if err != nil {
			t.Fatalf("Named(%q): %v", name, err)
		}
		if p.Name != name {
			t.Errorf("Named(%q).Name = %q", name, p.Name)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("Named(%q).Validate: %v", name, err)
		}
		if !Known(name) {
			t.Errorf("Known(%q) = false", name)
		}
	}
	if Known("tmr") {
		t.Error(`Known("tmr") = true`)
	}
}

func TestNamedUnknown(t *testing.T) {
	_, err := Named("chipkill", Spec{})
	if !errors.Is(err, ErrBadPolicy) {
		t.Fatalf("unknown policy: err = %v, want ErrBadPolicy", err)
	}
}

func TestValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    Policy
		ok   bool
	}{
		{"plain", Policy{Name: "p", Scheme: ecc.Parity{}}, true},
		{"no scheme", Policy{Name: "p"}, false},
		{"bad reporting", Policy{Name: "p", Scheme: ecc.Parity{}, Reporting: Reporting(9)}, false},
		{"negative intensity", Policy{Name: "p", Scheme: ecc.Parity{}, TemporalIntensity: -1}, false},
		{"nan intensity", Policy{Name: "p", Scheme: ecc.Parity{}, TemporalIntensity: math.NaN()}, false},
		{"inf intensity", Policy{Name: "p", Scheme: ecc.Parity{}, TemporalIntensity: math.Inf(1)}, false},
	} {
		err := tc.p.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok {
			if err == nil {
				t.Errorf("%s: want error", tc.name)
			} else if !errors.Is(err, ErrBadPolicy) {
				t.Errorf("%s: err = %v, want ErrBadPolicy", tc.name, err)
			}
		}
	}
}

func TestEscalatedReactions(t *testing.T) {
	e := Escalated{Base: ecc.SECDED{}}
	// k=0 stays untouched: no spatial fault in the region means the
	// accumulated strike alone, which SEC-DED corrects — and more to the
	// point, un-overlapped regions must not react.
	if got := e.React(0); got != (ecc.SECDED{}).React(0) {
		t.Errorf("React(0) = %v, want base React(0)", got)
	}
	// A 1-bit spatial flip + 1 accumulated = 2 flips: detected.
	if got, want := e.React(1), (ecc.SECDED{}).React(2); got != want {
		t.Errorf("React(1) = %v, want %v", got, want)
	}
	// A 2-bit spatial flip + 1 accumulated = 3 flips: defeated.
	if got, want := e.React(2), (ecc.SECDED{}).React(3); got != want {
		t.Errorf("React(2) = %v, want %v", got, want)
	}
	if e.Name() != "sec-ded+accum" {
		t.Errorf("Name() = %q", e.Name())
	}
	if got, want := e.CheckBits(64), (ecc.SECDED{}).CheckBits(64); got != want {
		t.Errorf("CheckBits(64) = %d, want %d", got, want)
	}
}

func TestClassifyDisciplines(t *testing.T) {
	r := fakeResult(70000, 30000, 40000, 20000)
	det := Classify(r, ReportOnDetect)
	if det.DUE != r.DUEMBAVF() || det.SDC != r.SDCMBAVF() ||
		det.TrueDUE != r.TrueDUEMBAVF() || det.FalseDUE != r.FalseDUEMBAVF() {
		t.Errorf("on-detect must mirror the result: %+v", det)
	}
	use := Classify(r, ReportOnUse)
	if use.DUE != r.TrueDUEMBAVF() {
		t.Errorf("on-use DUE = %g, want true-DUE %g", use.DUE, r.TrueDUEMBAVF())
	}
	if use.FalseDUE != 0 {
		t.Errorf("on-use FalseDUE = %g, want 0", use.FalseDUE)
	}
	if use.SDC != r.SDCMBAVF() {
		t.Errorf("on-use must not change SDC: %g != %g", use.SDC, r.SDCMBAVF())
	}
	if use.SBAVF != r.BitAVF() || use.SBAVFLive != r.BitAVFLive() {
		t.Errorf("normalization bases must be discipline-independent: %+v", use)
	}
}

func TestAccumulationWindowBoundedByScrub(t *testing.T) {
	env := Env{TotalCycles: 1 << 20, DomainBits: 64}
	noScrub := Policy{Scheme: ecc.SECDED{}, TemporalIntensity: 1}
	if got := noScrub.AccumulationWindow(env); got != env.TotalCycles {
		t.Errorf("no scrubber: window = %d, want run length %d", got, env.TotalCycles)
	}
	scrub := noScrub
	scrub.ScrubInterval = 1 << 16
	if got := scrub.AccumulationWindow(env); got != 1<<16 {
		t.Errorf("scrubbed: window = %d, want %d", got, 1<<16)
	}
	// A scrub interval beyond the run cannot extend the window.
	scrub.ScrubInterval = 1 << 40
	if got := scrub.AccumulationWindow(env); got != env.TotalCycles {
		t.Errorf("huge scrub interval: window = %d, want run length %d", got, env.TotalCycles)
	}
}

func TestAccumulationProbability(t *testing.T) {
	env := Env{TotalCycles: 1 << 20, DomainBits: 64}
	zero := Policy{Scheme: ecc.SECDED{}}
	if got := zero.AccumulationProbability(env); got != 0 {
		t.Errorf("zero intensity: p = %g, want exactly 0", got)
	}
	p := Policy{Scheme: ecc.SECDED{}, TemporalIntensity: 1}
	got := p.AccumulationProbability(env)
	want := -math.Expm1(-1.0 * float64(env.TotalCycles) / 1e6)
	if got != want {
		t.Errorf("p = %g, want %g", got, want)
	}
	if got <= 0 || got >= 1 {
		t.Errorf("p = %g, want in (0,1)", got)
	}
	// Scrubbing is monotone: a shorter scrub interval gives a smaller
	// accumulation probability.
	prev := got
	for _, scrub := range []uint64{1 << 19, 1 << 17, 1 << 14, 1 << 8, 1} {
		q := p
		q.ScrubInterval = scrub
		cur := q.AccumulationProbability(env)
		if cur >= prev {
			t.Errorf("scrub %d: p = %g, want < %g", scrub, cur, prev)
		}
		prev = cur
	}
}

func TestIntensityFromFIT(t *testing.T) {
	// Realistic field rates give a vanishingly small intensity: the
	// Figure 2 conclusion that temporal accumulation is negligible.
	got := IntensityFromFIT(64, 1e-4, 1e9)
	if got <= 0 || got > 1e-15 {
		t.Errorf("realistic intensity = %g, want tiny but positive", got)
	}
	// Consistency with the closed form: mu/3600/clock*1e6.
	want := 64 * 1e-4 / 1e9 / 3600 / 1e9 * 1e6
	if math.Abs(got-want) > want*1e-12 {
		t.Errorf("IntensityFromFIT = %g, want %g", got, want)
	}
	for _, bad := range [][3]float64{{0, 1e-4, 1e9}, {64, 0, 1e9}, {64, 1e-4, 0}} {
		if got := IntensityFromFIT(int(bad[0]), bad[1], bad[2]); got != 0 {
			t.Errorf("IntensityFromFIT(%v) = %g, want 0", bad, got)
		}
	}
}

func TestEvaluateDegenerateIsExactCopy(t *testing.T) {
	r := fakeResult(70000, 30000, 40000, 20000)
	p, err := Named("sec-ded", Spec{})
	if err != nil {
		t.Fatal(err)
	}
	env := Env{TotalCycles: r.TotalCycles, DomainBits: 64}
	// No solver given: the degenerate policy must never need one.
	out, err := p.Evaluate(env, r, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := Outcome{
		DUE: r.DUEMBAVF(), SDC: r.SDCMBAVF(),
		TrueDUE: r.TrueDUEMBAVF(), FalseDUE: r.FalseDUEMBAVF(),
		SBAVF: r.BitAVF(), SBAVFLive: r.BitAVFLive(),
	}
	if out != want {
		t.Errorf("degenerate Evaluate = %+v, want exact copy %+v", out, want)
	}
}

func TestEvaluateTemporalMix(t *testing.T) {
	base := fakeResult(70000, 30000, 40000, 20000)
	esc := fakeResult(200000, 90000, 110000, 100000)
	p := Policy{Name: "t", Scheme: ecc.SECDED{}, TemporalIntensity: 1}
	env := Env{TotalCycles: base.TotalCycles, DomainBits: 64}
	var solvedName string
	out, err := p.Evaluate(env, base, func(s ecc.Scheme) (*core.Result, error) {
		solvedName = s.Name()
		return esc, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if solvedName != "sec-ded+accum" {
		t.Errorf("escalated solve used scheme %q", solvedName)
	}
	if !out.Escalated {
		t.Error("Escalated flag not set")
	}
	prob := p.AccumulationProbability(env)
	if out.AccumP != prob {
		t.Errorf("AccumP = %g, want %g", out.AccumP, prob)
	}
	wantDUE := (1-prob)*base.DUEMBAVF() + prob*esc.DUEMBAVF()
	if math.Abs(out.DUE-wantDUE) > 1e-15 {
		t.Errorf("mixed DUE = %g, want %g", out.DUE, wantDUE)
	}
	wantSDC := (1-prob)*base.SDCMBAVF() + prob*esc.SDCMBAVF()
	if math.Abs(out.SDC-wantSDC) > 1e-15 {
		t.Errorf("mixed SDC = %g, want %g", out.SDC, wantSDC)
	}
	// The escalated SEC-DED outcome is strictly worse here, so the mix
	// must raise both DUE and SDC above the base.
	if out.DUE <= base.DUEMBAVF() || out.SDC <= base.SDCMBAVF() {
		t.Errorf("temporal mix should raise DUE/SDC: %+v vs base DUE=%g SDC=%g",
			out, base.DUEMBAVF(), base.SDCMBAVF())
	}
}

func TestEvaluateNeedsSolverOnlyWhenMixing(t *testing.T) {
	base := fakeResult(70000, 30000, 40000, 20000)
	p := Policy{Name: "t", Scheme: ecc.SECDED{}, TemporalIntensity: 1}
	env := Env{TotalCycles: base.TotalCycles, DomainBits: 64}
	if _, err := p.Evaluate(env, base, nil); err == nil {
		t.Error("active temporal mix with nil solver should error")
	}
	if _, err := p.Evaluate(env, nil, nil); err == nil {
		t.Error("nil base result should error")
	}
	bad := Policy{Name: "t", Scheme: ecc.SECDED{}, TemporalIntensity: -1}
	if _, err := bad.Evaluate(env, base, nil); !errors.Is(err, ErrBadPolicy) {
		t.Error("invalid policy should fail Evaluate with ErrBadPolicy")
	}
}

func TestSpecDefaults(t *testing.T) {
	p, err := Named("sec-ded-scrub", Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if p.ScrubInterval != DefaultScrubInterval {
		t.Errorf("default scrub interval = %d, want %d", p.ScrubInterval, DefaultScrubInterval)
	}
	if p.TemporalIntensity != DefaultTemporalIntensity {
		t.Errorf("default intensity = %g, want %g", p.TemporalIntensity, DefaultTemporalIntensity)
	}
	p, err = Named("sec-ded-scrub", Spec{ScrubInterval: 4096, TemporalIntensity: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if p.ScrubInterval != 4096 || p.TemporalIntensity != 0.25 {
		t.Errorf("spec not honored: %+v", p)
	}
	// The plain policies ignore the spec entirely.
	p, err = Named("sec-ded", Spec{ScrubInterval: 4096, TemporalIntensity: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if p.ScrubInterval != 0 || p.TemporalIntensity != 0 {
		t.Errorf("plain policy must stay degenerate: %+v", p)
	}
}
