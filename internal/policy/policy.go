// Package policy evaluates protection policies: an error-protection
// scheme composed with an error-reporting discipline and a scrubbing /
// temporal-accumulation model.
//
// The paper computes MB-AVFs under a fixed protection assumption per
// structure (parity vs SEC-DED). A policy generalizes that assumption
// along two axes the serving tier actually tunes:
//
//   - Reporting discipline. Report-on-detect is the paper's accounting:
//     a detected-uncorrectable fault in a microarchitecturally ACE window
//     is a DUE, whether or not the consuming computation influences
//     program output. Report-on-use (Jaulmes et al., arXiv:1810.06472)
//     delays the report until the corrupted value is consumed by
//     output-affecting computation — decided here from the solved
//     liveness graph's read points — so detected-but-dynamically-dead
//     consumption (the false-DUE class) raises no error at all.
//
//   - Scrubbing and temporal accumulation. A spatial fault group may land
//     in a protection domain that already holds an earlier single-bit
//     strike, escalating every overlapped region by one flip (a 2-bit
//     detected fault becomes a 3-bit undetected one). The probability of
//     that multi-event occupancy follows the Poisson math of
//     mttf.TemporalMTTF: p = 1 - exp(-lambda * W), where lambda is the
//     per-domain strike intensity and W the accumulation window. A
//     periodic scrubber bounds W at the scrub interval — scrubs clear
//     accumulated correctable faults between ACE windows — so temporal
//     and spatial vulnerability interact through one first-class model
//     instead of being assumed independent.
//
// A policy pass reclassifies the spatial solver's fault-group outcomes;
// it never re-simulates. Evaluate consumes an already-solved core.Result
// (base scheme) and requests at most one extra solve (the
// escalated-by-one-flip scheme) when the temporal mix is active. With
// temporal accumulation off and report-on-detect, a policy's numbers are
// bit-identical to the plain scheme's — the degenerate-limit property the
// equivalence suite pins.
package policy

import (
	"errors"
	"fmt"
	"math"

	"mbavf/internal/core"
	"mbavf/internal/ecc"
	"mbavf/internal/interval"
	"mbavf/internal/mttf"
	"mbavf/internal/obs"
)

// Observability series: evaluation volume, how often the reporting
// discipline actually changed an outcome, and how often the temporal mix
// required an escalated solve. Exposed as mbavf_policy_* on /metrics.
var (
	obsEvals     = obs.NewCounter("policy.evals")
	obsReclass   = obs.NewCounter("policy.reclassified")
	obsEscalated = obs.NewCounter("policy.escalated_solves")
)

// ErrBadPolicy marks a semantically invalid policy configuration: an
// unknown policy name, a non-positive scrub interval, a negative strike
// intensity. The public facade wraps it into mbavf.ErrBadOption so the
// serving layer maps it to a client error.
var ErrBadPolicy = errors.New("policy: bad option")

// Reporting selects when a detected-but-uncorrectable fault is reported.
type Reporting uint8

const (
	// ReportOnDetect raises the error as soon as a read detects it — the
	// paper's DUE accounting: every detected fault in a uarch-ACE window
	// counts, including dynamically dead consumption (false DUEs).
	ReportOnDetect Reporting = iota
	// ReportOnUse delays the report until the corrupted value is consumed
	// by output-affecting computation, per the solved liveness graph:
	// detected faults whose consumers are dynamically dead (the false-DUE
	// class) raise no error, so only true DUEs remain.
	ReportOnUse
)

func (r Reporting) String() string {
	switch r {
	case ReportOnDetect:
		return "on-detect"
	case ReportOnUse:
		return "on-use"
	default:
		return fmt.Sprintf("Reporting(%d)", uint8(r))
	}
}

// DefaultScrubInterval is the scrub period, in cycles, the named scrub
// policies use when the caller does not choose one: 64Ki cycles sits
// well inside a typical instrumented run, so scrubbing visibly bounds
// the accumulation window.
const DefaultScrubInterval = 1 << 16

// DefaultTemporalIntensity is the accumulated-strike intensity (expected
// single-bit strikes per protection domain per million cycles) of the
// named temporal policies. Like the accelerated beam conditions behind
// the paper's Table I, it is deliberately far above field rates so the
// temporal+spatial interplay is visible within a simulated run;
// IntensityFromFIT converts realistic physical rates, which put the
// accumulation probability near 1e-19 — the Figure 2 conclusion that
// temporal MBFs are negligible next to spatial ones.
const DefaultTemporalIntensity = 1.0

// Policy is one protection policy: a scheme, a reporting discipline, and
// the scrub/temporal-accumulation knobs.
type Policy struct {
	// Name labels the policy in tables, cache keys, and metrics.
	Name string
	// Scheme is the protection code guarding each domain.
	Scheme ecc.Scheme
	// Reporting is the error-reporting discipline.
	Reporting Reporting
	// ScrubInterval is the period, in cycles, of a background scrubber
	// that rewrites every protection word, clearing accumulated
	// correctable faults. Zero means no scrubber: accumulated strikes
	// persist for the whole run. The scrubber only bounds temporal
	// accumulation; it has no effect when TemporalIntensity is zero.
	ScrubInterval interval.Cycle
	// TemporalIntensity is the rate at which independent single-bit
	// strikes accumulate, in expected strikes per protection domain per
	// million cycles. Zero disables the temporal-accumulation mix
	// entirely (the spatial-only model of the paper).
	TemporalIntensity float64
}

// Validate checks the policy's configuration.
func (p Policy) Validate() error {
	if p.Scheme == nil {
		return fmt.Errorf("%w: policy %q has no scheme", ErrBadPolicy, p.Name)
	}
	if p.Reporting > ReportOnUse {
		return fmt.Errorf("%w: unknown reporting discipline %d", ErrBadPolicy, p.Reporting)
	}
	if p.TemporalIntensity < 0 || math.IsNaN(p.TemporalIntensity) || math.IsInf(p.TemporalIntensity, 0) {
		return fmt.Errorf("%w: temporal intensity must be finite and non-negative (got %g)", ErrBadPolicy, p.TemporalIntensity)
	}
	return nil
}

// Env is the structure-level context a policy is evaluated in.
type Env struct {
	// TotalCycles is the measured run length (the AVF denominator).
	TotalCycles interval.Cycle
	// DomainBits is the number of data bits per protection domain (one
	// code word), from the interleaving layout.
	DomainBits int
}

// AccumulationWindow returns the cycles during which an earlier strike
// can persist in a domain before the spatial fault lands: the run length,
// bounded by the scrub interval when a scrubber runs.
func (p Policy) AccumulationWindow(env Env) interval.Cycle {
	w := env.TotalCycles
	if p.ScrubInterval > 0 && p.ScrubInterval < w {
		w = p.ScrubInterval
	}
	return w
}

// AccumulationProbability returns the probability that at least one
// independent single-bit strike has accumulated in a protection domain
// within the accumulation window — the Poisson tail 1 - exp(-lambda*W)
// of mttf.TemporalMTTF's per-word strike model. Zero intensity gives
// exactly zero, which keeps the degenerate policy bit-identical to the
// plain scheme.
func (p Policy) AccumulationProbability(env Env) float64 {
	if p.TemporalIntensity <= 0 {
		return 0
	}
	w := float64(p.AccumulationWindow(env)) / 1e6
	return -math.Expm1(-p.TemporalIntensity * w)
}

// IntensityFromFIT converts a physical raw fault rate into a policy
// TemporalIntensity, through the same per-domain strike rate mu that
// mttf.TemporalMTTF accumulates: strikes/domain/Mcycle =
// mu[strikes/hour] / clockHz * 1e6 / 3600. At realistic field rates
// (1e-4 FIT/bit, 64-bit domains, 1GHz) this is ~1.8e-18 — temporal
// accumulation is negligible, the paper's Figure 2 conclusion.
func IntensityFromFIT(domainBits int, rawFITPerBit, clockHz float64) float64 {
	if domainBits <= 0 || rawFITPerBit <= 0 || clockHz <= 0 {
		return 0
	}
	muPerHour := mttf.DomainStrikeRate(float64(domainBits), rawFITPerBit)
	return muPerHour / 3600 / clockHz * 1e6
}

// Escalated wraps a scheme so every region reacts as if one extra bit
// had flipped: the accumulated single-bit strike joins the spatial fault
// group inside the domain. The wrapper is itself an ecc.Scheme, so the
// escalated pass rides the same packed solver as the base pass.
//
// Escalating every overlapped region of a group jointly is conservative
// (one strike lands in one domain); the approximation is second-order in
// the accumulation probability and documented in DESIGN.md §12.
type Escalated struct {
	Base ecc.Scheme
}

func (e Escalated) Name() string { return e.Base.Name() + "+accum" }

func (e Escalated) React(flipped int) ecc.Reaction {
	if flipped == 0 {
		return e.Base.React(0)
	}
	return e.Base.React(flipped + 1)
}

func (e Escalated) CheckBits(dataBits int) int { return e.Base.CheckBits(dataBits) }

// Outcome is the policy-adjusted vulnerability of one (structure, fault
// mode) point. All AVF fields are fractions of group-cycles, directly
// comparable to the plain scheme's MB-AVFs.
type Outcome struct {
	DUE      float64
	SDC      float64
	TrueDUE  float64
	FalseDUE float64
	// SBAVF / SBAVFLive are the structure's raw single-bit ACE fractions
	// (policy-independent normalization bases).
	SBAVF     float64
	SBAVFLive float64
	// AccumP is the temporal multi-event occupancy probability that was
	// mixed in (0 when the temporal model is off).
	AccumP float64
	// Escalated reports that an escalated-scheme solve contributed.
	Escalated bool
}

// Solver produces the solved spatial MB-AVF result of one scheme over
// the structure and fault mode under evaluation — the seam through which
// a policy pass rides the existing (packed or scalar) solver without
// re-simulating. Callers memoize it per scheme name when sweeping many
// policies.
type Solver func(ecc.Scheme) (*core.Result, error)

// Classify maps one solved spatial result into reporting-adjusted AVFs.
// Report-on-detect reproduces the solver's own accounting untouched;
// report-on-use keeps only detected faults whose consumption influences
// program output (the liveness graph's true-DUE time), reclassifying
// false DUEs as masked. SDC is unchanged by the discipline: corrupted
// data that defeats the code silently is silent under either discipline,
// and on structures with detection-preempts-SDC the solver has already
// converted preempted corruption into true DUEs, which a delayed report
// still catches at the consuming read.
func Classify(r *core.Result, rep Reporting) Outcome {
	out := Outcome{SBAVF: r.BitAVF(), SBAVFLive: r.BitAVFLive()}
	switch rep {
	case ReportOnUse:
		out.DUE = r.TrueDUEMBAVF()
		out.TrueDUE = r.TrueDUEMBAVF()
		out.FalseDUE = 0
	default:
		out.DUE = r.DUEMBAVF()
		out.TrueDUE = r.TrueDUEMBAVF()
		out.FalseDUE = r.FalseDUEMBAVF()
	}
	out.SDC = r.SDCMBAVF()
	return out
}

// Evaluate computes the policy's outcome from the base scheme's solved
// result, requesting one escalated solve through solve only when the
// temporal mix is active (AccumP > 0). With the mix off the base
// classification is returned untouched — no floating-point operation
// separates the degenerate policy from the plain scheme.
func (p Policy) Evaluate(env Env, base *core.Result, solve Solver) (Outcome, error) {
	if err := p.Validate(); err != nil {
		return Outcome{}, err
	}
	if base == nil {
		return Outcome{}, fmt.Errorf("policy: %s: nil base result", p.Name)
	}
	obsEvals.Add(1)
	out := Classify(base, p.Reporting)
	if p.Reporting == ReportOnUse && base.FalseDUEMBAVF() > 0 {
		obsReclass.Add(1)
	}
	prob := p.AccumulationProbability(env)
	if prob == 0 {
		return out, nil
	}
	if solve == nil {
		return Outcome{}, fmt.Errorf("policy: %s needs an escalated solve (p=%g) but got no solver", p.Name, prob)
	}
	escRes, err := solve(Escalated{p.Scheme})
	if err != nil {
		return Outcome{}, err
	}
	esc := Classify(escRes, p.Reporting)
	obsEscalated.Add(1)
	mix := func(a, b float64) float64 { return (1-prob)*a + prob*b }
	out.DUE = mix(out.DUE, esc.DUE)
	out.SDC = mix(out.SDC, esc.SDC)
	out.TrueDUE = mix(out.TrueDUE, esc.TrueDUE)
	out.FalseDUE = mix(out.FalseDUE, esc.FalseDUE)
	out.AccumP = prob
	out.Escalated = true
	return out, nil
}

// Spec parameterizes the named policies: the scrub period for the
// *-scrub policies and the strike intensity for the temporal ones. Zero
// values select the package defaults.
type Spec struct {
	// ScrubInterval is the scrub period in cycles; 0 selects
	// DefaultScrubInterval. Negative values are rejected by Named's
	// callers before conversion (the wire/flag forms are signed).
	ScrubInterval interval.Cycle
	// TemporalIntensity is the accumulated-strike intensity; 0 selects
	// DefaultTemporalIntensity for the temporal/scrub policies.
	TemporalIntensity float64
}

func (s Spec) withDefaults() Spec {
	if s.ScrubInterval == 0 {
		s.ScrubInterval = DefaultScrubInterval
	}
	if s.TemporalIntensity == 0 {
		s.TemporalIntensity = DefaultTemporalIntensity
	}
	return s
}

// Names lists the built-in policies in presentation order.
func Names() []string {
	return []string{
		"parity",
		"parity-on-use",
		"sec-ded",
		"sec-ded-on-use",
		"sec-ded-temporal",
		"sec-ded-scrub",
	}
}

// Known reports whether name is a built-in policy.
func Known(name string) bool {
	for _, n := range Names() {
		if n == name {
			return true
		}
	}
	return false
}

// Named builds one of the built-in policies:
//
//   - parity / sec-ded: the plain scheme with report-on-detect and no
//     temporal model — the paper's Table 2 assumptions, bit-identical to
//     Run.AVF under the same scheme.
//   - parity-on-use / sec-ded-on-use: the same schemes under delayed
//     (report-on-use) reporting.
//   - sec-ded-temporal: SEC-DED with temporal accumulation at the spec's
//     intensity and no scrubber (the accumulation window is the run).
//   - sec-ded-scrub: sec-ded-temporal plus a periodic scrubber at the
//     spec's interval, bounding the accumulation window.
func Named(name string, spec Spec) (Policy, error) {
	spec = spec.withDefaults()
	switch name {
	case "parity":
		return Policy{Name: name, Scheme: ecc.Parity{}, Reporting: ReportOnDetect}, nil
	case "parity-on-use":
		return Policy{Name: name, Scheme: ecc.Parity{}, Reporting: ReportOnUse}, nil
	case "sec-ded":
		return Policy{Name: name, Scheme: ecc.SECDED{}, Reporting: ReportOnDetect}, nil
	case "sec-ded-on-use":
		return Policy{Name: name, Scheme: ecc.SECDED{}, Reporting: ReportOnUse}, nil
	case "sec-ded-temporal":
		return Policy{
			Name: name, Scheme: ecc.SECDED{}, Reporting: ReportOnDetect,
			TemporalIntensity: spec.TemporalIntensity,
		}, nil
	case "sec-ded-scrub":
		return Policy{
			Name: name, Scheme: ecc.SECDED{}, Reporting: ReportOnDetect,
			ScrubInterval:     spec.ScrubInterval,
			TemporalIntensity: spec.TemporalIntensity,
		}, nil
	default:
		return Policy{}, fmt.Errorf("%w: unknown policy %q (have %v)", ErrBadPolicy, name, Names())
	}
}
