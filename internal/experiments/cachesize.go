package experiments

import (
	"fmt"

	"mbavf/internal/bitgeom"
	"mbavf/internal/ecc"
	"mbavf/internal/interleave"
	"mbavf/internal/report"
	"mbavf/internal/sim"
	"mbavf/internal/stats"
	"mbavf/internal/workloads"
)

// cachesize sweeps the L1 capacity and reports how SB-AVF and the 2x1
// MB/SB ratio respond — the capacity-vs-vulnerability tradeoff an
// architect weighs alongside protection choices. Larger caches hold data
// longer (more ACE residency per byte) but spread the working set over
// more bits (lower occupancy), so AVF can move either way.
func cachesize(o Options) ([]*report.Table, error) {
	sizes := []int{8 << 10, 16 << 10, 32 << 10}
	header := []string{"workload"}
	for _, sz := range sizes {
		header = append(header, fmt.Sprintf("%dKB SB-AVF", sz/1024), fmt.Sprintf("%dKB MB/SB", sz/1024))
	}
	t := report.NewTable("Ablation: L1 capacity sweep, 2x1 parity x2 way-physical", header...)
	t.Caption = "Fresh simulation per size (the memoized run cache holds only the default 16KB configuration)."
	names := o.Workloads
	if len(names) == 0 {
		names = []string{"minife", "matmul", "srad"}
	}
	for _, name := range names {
		w, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		row := []any{name}
		for _, sz := range sizes {
			cfg := sim.DefaultConfig()
			cfg.Caches.L1.SizeBytes = sz
			cfg.TrackL2 = false
			cfg.TrackVGPR = false
			sess, err := sim.Execute(w, cfg)
			if err != nil {
				return nil, err
			}
			s := sess.Measurements()
			sets, ways := s.L1Slots()
			lay, err := interleave.WayPhysical(sets, ways, s.LineBytes*8, 2)
			if err != nil {
				return nil, err
			}
			r, err := l1Analyzer(s, lay).Analyze(ecc.Parity{}, bitgeom.Mx1(2))
			if err != nil {
				return nil, err
			}
			row = append(row, r.BitAVF(), stats.Ratio(r.DUEMBAVF(), r.BitAVF()))
		}
		t.AddRowf(row...)
	}
	return []*report.Table{t}, nil
}

func init() {
	registerExp("cachesize", "L1 capacity sensitivity (ablation)", cachesize)
}
