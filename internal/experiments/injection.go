package experiments

import (
	"context"
	"fmt"

	"mbavf/internal/fabric"
	"mbavf/internal/inject"
	"mbavf/internal/report"
	"mbavf/internal/sim"
	"mbavf/internal/workloads"
)

// runInjection executes a campaign either in-process or — when the
// options name a fabric fleet — distributed across it. Either path is
// bit-identical (deterministic per-shot sampling), so experiments never
// have to care where their shots ran.
func runInjection(ctx context.Context, o Options, c *inject.Campaign, rc inject.RunConfig) (*inject.RunReport, error) {
	if len(o.FabricWorkers) == 0 {
		return c.Run(ctx, rc)
	}
	return fabric.New(fabric.Config{Workers: o.FabricWorkers}, c).Run(ctx, rc)
}

// table2Workloads mirrors the paper's Table II benchmark list (the AMD
// OpenCL sample suite).
func table2Workloads() []string {
	return []string{
		"scanlargearrays", "dct", "dwthaar1d", "fastwalsh", "histogram",
		"matrixtranspose", "prefixsum", "recursivegaussian", "matmul",
	}
}

// table2 runs the ACE-interference fault-injection study (paper Table
// II): single-bit campaigns identify SDC ACE bits, then 2x1/3x1/4x1
// multi-bit groups containing those bits are injected and groups whose
// outcome is masked are counted as ACE interference.
func table2(o Options) ([]*report.Table, error) {
	t := report.NewTable("Table II: ACE interference in multi-bit faults",
		"benchmark", "injections", "SDC ACE bits", "2x1 interf", "3x1 interf", "4x1 interf")
	t.Caption = fmt.Sprintf("Single-bit campaign of %d injections per benchmark (paper: 5000); interference = multi-bit group masked despite containing an SDC ACE bit.", o.Injections)
	names := o.Workloads
	if len(names) == 0 {
		names = table2Workloads()
	}
	totalBits, totalInterf, lostShots := 0, 0, 0
	for _, name := range names {
		w, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		c, err := inject.NewCampaignContext(o.ctx(), w, sim.InjectionConfig())
		if err != nil {
			return nil, err
		}
		rep, err := runInjection(o.ctx(), o, c, inject.RunConfig{N: o.Injections, Seed: o.Seed, Workers: o.Workers})
		if err != nil {
			return nil, err
		}
		lostShots += rep.InfraErrors()
		sdc := inject.SDCBits(rep.Results())
		study, err := c.InterferenceStudy(sdc, []int{2, 3, 4})
		if err != nil {
			return nil, err
		}
		row := []any{name, o.Injections, len(sdc)}
		for _, sres := range study {
			row = append(row, sres.Interference)
			totalInterf += sres.Interference
		}
		totalBits += len(sdc)
		t.AddRowf(row...)
	}
	t.AddRowf("TOTAL", "", totalBits, "", "", "")
	if totalBits > 0 {
		t.Caption += fmt.Sprintf(" Overall interference: %d of %d group injections (%.2f%%).",
			totalInterf, 3*totalBits, 100*float64(totalInterf)/float64(3*totalBits))
	}
	if lostShots > 0 {
		t.Caption += fmt.Sprintf(" %d shots lost to infrastructure errors.", lostShots)
	}
	return []*report.Table{t}, nil
}

func init() {
	registerExp("table2", "ACE interference injection study", table2)
}
