package experiments

import (
	"strconv"
	"strings"
	"testing"

	"mbavf/internal/policy"
	"mbavf/internal/report"
)

// quickOpts restricts experiments to two representative workloads so the
// whole suite runs in seconds.
func quickOpts() Options {
	o := DefaultOptions()
	o.Workloads = []string{"minife", "matmul"}
	o.Injections = 15
	o.Windows = 4
	return o
}

func runExp(t *testing.T, name string, o Options) []*report.Table {
	t.Helper()
	if testing.Short() {
		t.Skip("full experiment pipeline; skipped in -short (the -race CI leg)")
	}
	e, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 {
		t.Fatal("experiment produced no tables")
	}
	return tables
}

func cell(t *testing.T, tb *report.Table, rowLabel string, col int) float64 {
	t.Helper()
	for _, row := range tb.Rows {
		if row[0] == rowLabel {
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil {
				t.Fatalf("cell %s[%d] = %q: %v", rowLabel, col, row[col], err)
			}
			return v
		}
	}
	t.Fatalf("row %q not found in %s", rowLabel, tb.Title)
	return 0
}

func TestResetCachePerWorkload(t *testing.T) {
	ResetCache()
	a1, err := run(Options{}, "vecadd")
	if err != nil {
		t.Fatal(err)
	}
	b1, err := run(Options{}, "prefixsum")
	if err != nil {
		t.Fatal(err)
	}
	if a2, _ := run(Options{}, "vecadd"); a2 != a1 {
		t.Fatal("second run was not memoized")
	}
	// Named reset drops only that workload's session.
	ResetCache("vecadd")
	if a3, _ := run(Options{}, "vecadd"); a3 == a1 {
		t.Fatal("ResetCache(name) did not drop the named session")
	}
	if b2, _ := run(Options{}, "prefixsum"); b2 != b1 {
		t.Fatal("ResetCache(name) dropped a session it was not asked to drop")
	}
	// Bare reset drops everything.
	ResetCache()
	if b3, _ := run(Options{}, "prefixsum"); b3 == b1 {
		t.Fatal("ResetCache() did not clear the cache")
	}
	ResetCache()
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"avft", "cachesize", "fig10", "fig11", "fig2", "fig4", "fig5", "fig6", "fig8", "fig9",
		"geometry", "l2", "locality", "policies", "schemes", "table1", "table2", "table3", "validate"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("experiments = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("experiment %d = %s, want %s", i, got[i], want[i])
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestTable1(t *testing.T) {
	tables := runExp(t, "table1", quickOpts())
	if len(tables[0].Rows) != 7 {
		t.Errorf("Table I rows = %d, want 7", len(tables[0].Rows))
	}
}

func TestTable3(t *testing.T) {
	tables := runExp(t, "table3", quickOpts())
	if len(tables[0].Rows) != 8 {
		t.Errorf("Table III rows = %d, want 8", len(tables[0].Rows))
	}
}

func TestFig2(t *testing.T) {
	tables := runExp(t, "fig2", quickOpts())
	// Gap column must grow monotonically down the sweep.
	prev := 0.0
	for _, row := range tables[0].Rows {
		gap, err := strconv.ParseFloat(row[5], 64)
		if err != nil {
			t.Fatal(err)
		}
		if gap <= prev {
			t.Errorf("gap not growing: %v after %v", gap, prev)
		}
		prev = gap
	}
}

func TestFig4Shape(t *testing.T) {
	tables := runExp(t, "fig4", quickOpts())
	tb := tables[0]
	for _, row := range tb.Rows {
		if row[0] == "MEAN" {
			continue
		}
		logical, _ := strconv.ParseFloat(row[2], 64)
		way, _ := strconv.ParseFloat(row[3], 64)
		idx, _ := strconv.ParseFloat(row[4], 64)
		if logical < 1-1e-9 || logical > 2+1e-9 {
			t.Errorf("%s logical ratio %v outside [1,2]", row[0], logical)
		}
		if logical > way+1e-9 || logical > idx+1e-9 {
			t.Errorf("%s: logical %v should be lowest (way %v, idx %v)", row[0], logical, way, idx)
		}
	}
}

func TestFig5WindowsPresent(t *testing.T) {
	o := quickOpts()
	tables := runExp(t, "fig5", o)
	if len(tables) != 2 {
		t.Fatalf("fig5 tables = %d, want 2", len(tables))
	}
	// windows + TOTAL row
	if len(tables[0].Rows) != o.Windows+1 {
		t.Errorf("fig5a rows = %d, want %d", len(tables[0].Rows), o.Windows+1)
	}
}

func TestFig6Shape(t *testing.T) {
	tables := runExp(t, "fig6", quickOpts())
	if len(tables) != 2 {
		t.Fatalf("fig6 tables = %d", len(tables))
	}
	// Parity table: mean ratio grows 2x1 -> 4x1.
	parity := tables[0]
	m2 := cell(t, parity, "MEAN", 1)
	m4 := cell(t, parity, "MEAN", 3)
	if m4 <= m2 {
		t.Errorf("parity mean ratio should grow with mode size: 2x1=%v 4x1=%v", m2, m4)
	}
	// Section VI-C equivalence: 8x1 SEC-DED ~ 4x1 parity.
	secded := tables[1]
	s8 := cell(t, secded, "MEAN", 4)
	if ratio := s8 / m4; ratio < 0.9 || ratio > 1.1 {
		t.Errorf("8x1 SEC-DED (%v) should match 4x1 parity (%v), ratio %v", s8, m4, ratio)
	}
}

func TestFig8Shape(t *testing.T) {
	tables := runExp(t, "fig8", quickOpts())
	if len(tables) != 2 {
		t.Fatalf("fig8 tables = %d", len(tables))
	}
	for _, tb := range tables {
		sdc := cell(t, tb, "TOTAL", 1)
		due := cell(t, tb, "TOTAL", 2)
		if sdc <= 0 {
			t.Errorf("%s: no SDC for 3x1 under parity", tb.Title)
		}
		if due <= 0 {
			t.Errorf("%s: expected a non-trivial DUE component", tb.Title)
		}
		if sdc <= due {
			t.Errorf("%s: SDC (%v) should exceed DUE (%v) for 3x1 parity", tb.Title, sdc, due)
		}
	}
}

func TestFig9Shape(t *testing.T) {
	tables := runExp(t, "fig9", quickOpts())
	tb := tables[0]
	for _, row := range tb.Rows {
		sdc5, _ := strconv.ParseFloat(row[1], 64)
		due5, _ := strconv.ParseFloat(row[2], 64)
		sdc6, _ := strconv.ParseFloat(row[3], 64)
		due6, _ := strconv.ParseFloat(row[4], 64)
		sdc8, _ := strconv.ParseFloat(row[7], 64)
		if due5 <= 0 {
			t.Errorf("%s: 5x1 should retain DUE under SEC-DED x2", row[0])
		}
		if due6 != 0 {
			t.Errorf("%s: 6x1 should be all-SDC, DUE = %v", row[0], due6)
		}
		if sdc6 < sdc5 {
			t.Errorf("%s: SDC should jump 5x1 (%v) -> 6x1 (%v)", row[0], sdc5, sdc6)
		}
		// Plateau: 8x1 within 25% of 6x1.
		if sdc6 > 0 && (sdc8 < 0.75*sdc6 || sdc8 > 1.5*sdc6) {
			t.Errorf("%s: SDC should plateau 6x1 (%v) -> 8x1 (%v)", row[0], sdc6, sdc8)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	tables := runExp(t, "fig10", quickOpts())
	tb := tables[0]
	for _, row := range tb.Rows {
		for col := 1; col < len(row); col++ {
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil {
				t.Fatalf("%s col %d: %v", row[0], col, err)
			}
			if v < 0 {
				t.Errorf("%s: negative value %v", row[0], v)
			}
		}
	}
}

func TestFig11Shape(t *testing.T) {
	tables := runExp(t, "fig11", quickOpts())
	tb := tables[0]
	get := func(label string, col int) float64 {
		return cell(t, tb, label, col)
	}
	parityTX4 := get("parity tx4", 1)
	eccRX2 := get("sec-ded rx2", 1)
	eccTX2 := get("sec-ded tx2", 1)
	if parityTX4 >= eccRX2 {
		t.Errorf("parity tx4 SDC (%v) should be below sec-ded rx2 (%v)", parityTX4, eccRX2)
	}
	if parityTX4 >= eccTX2 {
		t.Errorf("parity tx4 SDC (%v) should be below sec-ded tx2 (%v)", parityTX4, eccTX2)
	}
	// Inter-thread beats intra-thread at equal cost.
	if tx2, rx2 := get("parity tx2", 1), get("parity rx2", 1); tx2 > rx2 {
		t.Errorf("inter-thread (%v) should not exceed intra-thread (%v) SDC", tx2, rx2)
	}
	// MB-AVF analysis should not exceed the conservative SB approximation
	// for the inter-thread configs (detection preemption converts SDC to
	// DUE).
	if mb, approx := get("parity tx4", 1), get("parity tx4", 2); mb > approx+1e-9 {
		t.Errorf("MB-AVF SDC (%v) exceeds SB approximation (%v) for parity tx4", mb, approx)
	}
}

func TestTable2Runs(t *testing.T) {
	o := quickOpts()
	o.Workloads = []string{"prefixsum"}
	o.Injections = 12
	tables := runExp(t, "table2", o)
	tb := tables[0]
	if len(tb.Rows) != 2 { // benchmark + TOTAL
		t.Fatalf("table2 rows = %d", len(tb.Rows))
	}
	if !strings.Contains(tb.Caption, "interference") {
		t.Error("caption should describe interference")
	}
}

func TestValidateRuns(t *testing.T) {
	o := quickOpts()
	o.Workloads = []string{"matmul"}
	o.Injections = 40
	tables := runExp(t, "validate", o)
	tb := tables[0]
	analysis := cell(t, tb, "matmul", 1)
	if analysis <= 0 || analysis > 1 {
		t.Errorf("analysis AVF = %v", analysis)
	}
	injected := cell(t, tb, "matmul", 4)
	if injected < 0 || injected > 1 {
		t.Errorf("injected fraction = %v", injected)
	}
	// With small campaigns the estimate is noisy; just require the two
	// to be the same order of magnitude (the dedicated 1000-shot check
	// in EXPERIMENTS.md shows ratios near 1).
	if injected > 0 && (analysis/injected < 0.2 || analysis/injected > 5) {
		t.Errorf("analysis %v and injection %v differ wildly", analysis, injected)
	}
}

func TestPoliciesExperiment(t *testing.T) {
	o := quickOpts()
	o.Workloads = []string{"vecadd", "matmul"}
	tables := runExp(t, "policies", o)
	// Two tables (absolute, delta) per structure.
	if len(tables) != 6 {
		t.Fatalf("policies tables = %d, want 6", len(tables))
	}
	// Every built-in policy contributes a DUE and an SDC column.
	wantCols := 1 + 2*len(policy.Names())
	if got := len(tables[0].Header); got != wantCols {
		t.Fatalf("policies columns = %d, want %d (header %v)", got, wantCols, tables[0].Header)
	}
	for _, tb := range tables {
		if len(tb.Rows) != 2 {
			t.Fatalf("%s: rows = %d, want 2", tb.Title, len(tb.Rows))
		}
	}
	// Delta tables: the degenerate policies (columns 1..4: parity and
	// sec-ded DUE/SDC) deviate exactly zero from their baselines.
	for i := 1; i < len(tables); i += 2 {
		tb := tables[i]
		for _, wl := range o.Workloads {
			for col := 1; col <= 4; col++ {
				if v := cell(t, tb, wl, col); v != 0 {
					t.Errorf("%s: %s col %d (%s) = %v, want exactly 0", tb.Title, wl, col, tb.Header[col], v)
				}
			}
		}
	}
	// The absolute tables: on-use DUE never exceeds on-detect DUE for the
	// same scheme (false DUEs can only be removed). matmul on l1:
	// parity DUE col 1, parity-on-use DUE col 3, sec-ded DUE col 5,
	// sec-ded-on-use DUE col 7.
	l1 := tables[0]
	for _, wl := range o.Workloads {
		if onUse, onDet := cell(t, l1, wl, 3), cell(t, l1, wl, 1); onUse > onDet {
			t.Errorf("%s: parity-on-use DUE %v exceeds parity DUE %v", wl, onUse, onDet)
		}
		if onUse, onDet := cell(t, l1, wl, 7), cell(t, l1, wl, 5); onUse > onDet {
			t.Errorf("%s: sec-ded-on-use DUE %v exceeds sec-ded DUE %v", wl, onUse, onDet)
		}
	}
	// Restricting the policy set narrows the tables.
	o.Policies = []string{"sec-ded", "sec-ded-scrub"}
	o.ScrubInterval = 2048
	tables = runExp(t, "policies", o)
	if got := len(tables[0].Header); got != 5 {
		t.Fatalf("restricted policies columns = %d, want 5", got)
	}
}

// TestFiguresRender: every non-skipped experiment's tables must convert
// to valid SVG figures.
func TestFiguresRender(t *testing.T) {
	o := quickOpts()
	for _, name := range []string{"fig2", "fig4", "fig5", "fig6", "fig9", "locality"} {
		e, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		tables, err := e.Run(o)
		if err != nil {
			t.Fatal(err)
		}
		figs, err := e.Figures(tables)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(figs) != len(tables) {
			t.Errorf("%s: %d figures for %d tables", name, len(figs), len(tables))
		}
		for i, svg := range figs {
			if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "</svg>") {
				t.Errorf("%s figure %d is not an SVG", name, i)
			}
		}
	}
	// Pure data tables render no figures.
	e, _ := ByName("table3")
	tables, err := e.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	figs, err := e.Figures(tables)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 0 {
		t.Error("table3 should not produce figures")
	}
}
