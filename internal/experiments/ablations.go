package experiments

// Ablation experiments beyond the paper's figures, exercising the design
// choices DESIGN.md calls out: the ACE-locality metric that explains the
// interleaving results, alternative protection codes (DEC-TED, CRC), and
// non-contiguous (rectangular) fault geometries.

import (
	"mbavf/internal/bitgeom"
	"mbavf/internal/core"
	"mbavf/internal/ecc"
	"mbavf/internal/interleave"
	"mbavf/internal/report"
	"mbavf/internal/stats"
)

// locality quantifies ACE locality per interleaving style, the mechanism
// behind Figure 4's ordering: layouts whose adjacent bits belong to data
// used together have locality near 1 and MB-AVF near the 1x floor.
func locality(o Options) ([]*report.Table, error) {
	t := report.NewTable("Ablation: ACE locality coefficient (2x1 groups, L1) vs MB/SB ratio",
		"workload", "logical loc", "logical MB/SB", "way-phys loc", "way-phys MB/SB", "index-phys loc", "index-phys MB/SB")
	t.Caption = "Higher locality -> lower MB/SB ratio; logical interleaving maximizes locality by construction."
	for _, name := range o.workloadNames() {
		s, err := run(o, name)
		if err != nil {
			return nil, err
		}
		logical, wayPhys, idxPhys, err := l1Layouts(s, 2)
		if err != nil {
			return nil, err
		}
		mode := bitgeom.Mx1(2)
		row := []any{name}
		for _, lay := range []*interleave.Layout{logical, wayPhys, idxPhys} {
			an := l1Analyzer(s, lay)
			loc, err := an.ACELocality(mode)
			if err != nil {
				return nil, err
			}
			r, err := an.Analyze(ecc.Parity{}, mode)
			if err != nil {
				return nil, err
			}
			row = append(row, loc.Coefficient(), stats.Ratio(r.DUEMBAVF(), r.BitAVF()))
		}
		t.AddRowf(row...)
	}
	return []*report.Table{t}, nil
}

// schemes compares protection codes on equal footing: 4x1 faults over x2
// way-physical interleaving, where each domain sees two flips — parity is
// defeated (SDC), SEC-DED detects, DEC-TED corrects, and CRC-8 detects.
func schemes(o Options) ([]*report.Table, error) {
	codes := []ecc.Scheme{ecc.None{}, ecc.Parity{}, ecc.SECDED{}, ecc.DECTED{}, ecc.CRC{Width: 8}}
	header := []string{"workload"}
	for _, c := range codes {
		header = append(header, c.Name()+" DUE", c.Name()+" SDC")
	}
	t := report.NewTable("Ablation: protection schemes on 4x1 faults, x2 way-physical interleaving", header...)
	t.Caption = "Each domain sees 2 flips: parity undetected, SEC-DED detected, DEC-TED corrected, CRC detected."
	for _, name := range o.workloadNames() {
		s, err := run(o, name)
		if err != nil {
			return nil, err
		}
		sets, ways := s.L1Slots()
		lay, err := interleave.WayPhysical(sets, ways, s.LineBytes*8, 2)
		if err != nil {
			return nil, err
		}
		an := l1Analyzer(s, lay)
		row := []any{name}
		for _, c := range codes {
			r, err := an.Analyze(c, bitgeom.Mx1(4))
			if err != nil {
				return nil, err
			}
			row = append(row, r.DUEMBAVF(), r.SDCMBAVF())
		}
		t.AddRowf(row...)
	}
	return []*report.Table{t}, nil
}

// geometry compares contiguous Mx1 fault modes with rectangular 2x2 and
// 2x4 geometries, which the engine supports but the paper only gestures
// at ("arbitrary shapes and sizes").
func geometry(o Options) ([]*report.Table, error) {
	modes := []bitgeom.FaultMode{
		bitgeom.Mx1(2),
		bitgeom.Mx1(4),
		bitgeom.Rect(2, 2), // 2 rows x 2 cols
		bitgeom.Rect(2, 4),
	}
	header := []string{"workload"}
	for _, m := range modes {
		header = append(header, m.Name())
	}
	t := report.NewTable("Ablation: contiguous vs rectangular fault geometries (CRC-8, x2 way-physical, DUE/SB)", header...)
	t.Caption = "Mode names are width x height. CRC-8 detects every tested size, so DUE/SB isolates pure geometry: rectangular faults span wordlines, touch more distinct lines, and push MB-AVF higher than same-size contiguous faults."
	for _, name := range o.workloadNames() {
		s, err := run(o, name)
		if err != nil {
			return nil, err
		}
		sets, ways := s.L1Slots()
		lay, err := interleave.WayPhysical(sets, ways, s.LineBytes*8, 2)
		if err != nil {
			return nil, err
		}
		an := l1Analyzer(s, lay)
		row := []any{name}
		for _, m := range modes {
			r, err := an.Analyze(ecc.CRC{Width: 8}, m)
			if err != nil {
				return nil, err
			}
			row = append(row, stats.Ratio(r.DUEMBAVF(), r.BitAVF()))
		}
		t.AddRowf(row...)
	}
	return []*report.Table{t}, nil
}

func init() {
	registerExp("locality", "ACE locality vs MB/SB ratio (ablation)", locality)
	registerExp("schemes", "Protection scheme comparison (ablation)", schemes)
	registerExp("geometry", "Rectangular fault geometries (ablation)", geometry)
}

// l2 compares the same fault mode in the L1 and the shared L2. L2 data
// lives longer between uses (only L1 misses touch it), shifting both the
// raw AVF and the ACE-locality profile.
func l2(o Options) ([]*report.Table, error) {
	t := report.NewTable("Ablation: L1 vs L2, 2x1 DUE MB-AVF, parity, x2 way-physical",
		"workload", "L1 SB-AVF", "L1 MB/SB", "L2 SB-AVF", "L2 MB/SB")
	t.Caption = "The shared L2 filters L1 hits: its residency and locality profile differ from the L1's."
	mode := bitgeom.Mx1(2)
	for _, name := range o.workloadNames() {
		s, err := run(o, name)
		if err != nil {
			return nil, err
		}
		lineBits := s.LineBytes * 8
		l1sets, l1ways := s.L1Slots()
		l1lay, err := interleave.WayPhysical(l1sets, l1ways, lineBits, 2)
		if err != nil {
			return nil, err
		}
		r1, err := l1Analyzer(s, l1lay).Analyze(ecc.Parity{}, mode)
		if err != nil {
			return nil, err
		}
		l2sets, l2ways := s.L2Slots()
		l2lay, err := interleave.WayPhysical(l2sets, l2ways, lineBits, 2)
		if err != nil {
			return nil, err
		}
		r2 := &core.Analyzer{
			Layout:      l2lay,
			Tracker:     s.L2Tracker,
			Graph:       s.Graph,
			TotalCycles: s.Cycles,
		}
		res2, err := r2.Analyze(ecc.Parity{}, mode)
		if err != nil {
			return nil, err
		}
		t.AddRowf(name,
			r1.BitAVF(), stats.Ratio(r1.DUEMBAVF(), r1.BitAVF()),
			res2.BitAVF(), stats.Ratio(res2.DUEMBAVF(), res2.BitAVF()))
	}
	return []*report.Table{t}, nil
}

func init() {
	registerExp("l2", "L1 vs L2 vulnerability (ablation)", l2)
}
