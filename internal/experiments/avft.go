package experiments

import (
	"fmt"
	"math"
	"strconv"

	"mbavf/internal/bitgeom"
	"mbavf/internal/core"
	"mbavf/internal/ecc"
	"mbavf/internal/interleave"
	"mbavf/internal/report"
)

// avft is the time-resolved AVF report: for every workload it bins the
// per-bit ACE occupancy of the L1 data array and the vector register file
// into AVFWindows windows of simulated cycles and emits one AVF(t) row
// per (structure, fault mode, window), plus the whole-run TOTAL. AVF
// cells are rendered at full float64 precision (not the display-rounded
// report format), so the CSV form round-trips exactly into plots and the
// window-weighted mean can be checked against the whole-run AVF. Each
// series is also published as observability float gauges
// (avf.<structure>.<workload>.<mode>.{due,sdc}.{total,w<i>}) for the
// debug endpoint's /metrics exposition.
func avft(o Options) ([]*report.Table, error) {
	n := o.AVFWindows
	if n <= 0 {
		n = o.Windows
	}
	if n <= 0 {
		n = 1
	}
	t := report.NewTable(fmt.Sprintf("AVF(t): windowed MB-AVF, parity, %d windows", n),
		"workload", "structure", "mode", "window", "cycles", "DUE MB-AVF", "SDC MB-AVF", "SB-AVF")
	t.Caption = "Per-window AVFs are exact over the window's cycles; the cycle-weighted mean of the windows reproduces the TOTAL row."
	for _, name := range o.workloadNames() {
		s, err := run(o, name)
		if err != nil {
			return nil, err
		}
		sets, ways := s.L1Slots()
		l1lay, err := interleave.WayPhysical(sets, ways, s.LineBytes*8, 2)
		if err != nil {
			return nil, err
		}
		vlay, err := vgprLayout(s, true, 2)
		if err != nil {
			return nil, err
		}
		window := (s.Cycles + uint64(n) - 1) / uint64(n)
		if window == 0 {
			window = 1
		}
		structures := []struct {
			label string
			an    *core.Analyzer
		}{
			{"l1", l1Analyzer(s, l1lay)},
			{"vgpr", vgprAnalyzer(s, vlay, false)},
		}
		for _, st := range structures {
			for _, m := range []int{2, 4} {
				series, err := st.an.AnalyzeWindowed(ecc.Parity{}, bitgeom.Mx1(m), window)
				if err != nil {
					return nil, err
				}
				if err := CheckSeriesConsistency(series); err != nil {
					return nil, fmt.Errorf("avft: %s %s %dx1: %w", name, st.label, m, err)
				}
				series.PublishGauges(st.label + "." + name)
				for i := range series.Windows {
					addAVFRow(t, name, st.label, strconv.Itoa(i), &series.Windows[i])
				}
				addAVFRow(t, name, st.label, "TOTAL", &series.Total)
			}
		}
	}
	return []*report.Table{t}, nil
}

// addAVFRow appends one AVF(t) row with full-precision float cells.
func addAVFRow(t *report.Table, workload, structure, window string, r *core.Result) {
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	t.AddRow(workload, structure, r.ModeName, window,
		strconv.FormatUint(r.TotalCycles, 10), f(r.DUEMBAVF()), f(r.SDCMBAVF()), f(r.BitAVF()))
}

// CheckSeriesConsistency verifies the windowing invariant behind the
// AVF(t) report: the cycle-weighted mean of the per-window AVFs must
// equal the whole-run AVF to within 1e-9 (every classified cycle lands in
// exactly one window, so the decomposition is exact up to float
// rounding). It is exported so tests and the avft experiment share one
// definition of "consistent".
func CheckSeriesConsistency(s *core.Series) error {
	if len(s.Windows) == 0 {
		return fmt.Errorf("series has no windows")
	}
	total := float64(s.Total.TotalCycles)
	check := func(kind string, totalAVF float64, windowAVF func(*core.Result) float64) error {
		var mean float64
		var cycles uint64
		for i := range s.Windows {
			w := &s.Windows[i]
			mean += windowAVF(w) * float64(w.TotalCycles) / total
			cycles += w.TotalCycles
		}
		if cycles != s.Total.TotalCycles {
			return fmt.Errorf("windows cover %d cycles, run has %d", cycles, s.Total.TotalCycles)
		}
		if diff := math.Abs(mean - totalAVF); diff > 1e-9 {
			return fmt.Errorf("%s window-weighted mean %v != whole-run %v (diff %v)",
				kind, mean, totalAVF, diff)
		}
		return nil
	}
	if err := check("DUE", s.Total.DUEMBAVF(), (*core.Result).DUEMBAVF); err != nil {
		return err
	}
	if err := check("SDC", s.Total.SDCMBAVF(), (*core.Result).SDCMBAVF); err != nil {
		return err
	}
	return check("SB", s.Total.BitAVF(), (*core.Result).BitAVF)
}

func init() {
	registerExp("avft", "Time-resolved AVF per structure and fault mode", avft)
}
