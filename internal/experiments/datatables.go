package experiments

import (
	"fmt"

	"mbavf/internal/faultrate"
	"mbavf/internal/mttf"
	"mbavf/internal/report"
)

// table1 renders the Ibe et al. fault-width distribution (paper Table I).
func table1(Options) ([]*report.Table, error) {
	t := report.NewTable("Table I: percent ratio of multi-bit faults to total faults",
		"node (nm)", "total MB%", "2-bit", "3-bit", "4-bit", "5-bit", "6-bit", "7-bit", "8-bit", ">8-bit")
	t.Caption = "Reproduced from Ibe et al.; multi-bit share grows from 0.5% at 180nm to 3.9% at 22nm."
	for _, r := range faultrate.TableI() {
		row := []any{r.NodeNM, r.TotalPct}
		for _, w := range r.WidthPct {
			row = append(row, w)
		}
		t.AddRowf(row...)
	}
	return []*report.Table{t}, nil
}

// table3 renders the case-study per-mode fault rates (paper Table III).
func table3(Options) ([]*report.Table, error) {
	t := report.NewTable("Table III: fault rates used for the case study (total = 100)",
		"fault mode", "rate")
	for _, r := range faultrate.TableIII() {
		t.AddRowf(fmt.Sprintf("%dx1", r.Width), r.FIT)
	}
	return []*report.Table{t}, nil
}

// fig2 sweeps raw fault rates and reports the Figure 2 MTTF scenarios.
func fig2(Options) ([]*report.Table, error) {
	rates := []float64{1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8}
	pts, err := mttf.Sweep(mttf.Default32MB(), rates)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Figure 2: MTTF of a 32MB cache, temporal vs spatial MBFs (hours)",
		"raw FIT/bit", "sMBF 0.1%", "sMBF 5%", "tMBF inf life", "tMBF 100yr life",
		"tMBF100yr / sMBF0.1%")
	t.Caption = "Spatial MBFs dominate: their MTTF sits orders of magnitude below temporal MBFs across realistic raw rates, and finite data lifetime pushes temporal MTTFs further up."
	for _, p := range pts {
		t.AddRowf(p.RawFITPerBit, p.SMBF01, p.SMBF5, p.TMBFInf, p.TMBF100yr, p.TMBF100yr/p.SMBF01)
	}
	return []*report.Table{t}, nil
}

func init() {
	registerExp("table1", "Ibe et al. multi-bit fault distribution", table1)
	registerExp("table3", "Case-study fault rates", table3)
	registerExp("fig2", "Temporal vs spatial MBF MTTF sweep", fig2)
}
