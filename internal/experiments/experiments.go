// Package experiments regenerates every table and figure of the paper's
// evaluation from the simulator and the MB-AVF engine. Each experiment
// has one entry point returning rendered tables; the cmd/mbavf-exp binary
// and the repository benchmarks are thin wrappers around them.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"mbavf/internal/core"
	"mbavf/internal/interleave"
	"mbavf/internal/obs"
	"mbavf/internal/report"
	"mbavf/internal/sim"
	"mbavf/internal/store"
	"mbavf/internal/store/httpstore"
	"mbavf/internal/workloads"
)

// Options tunes an experiment run.
type Options struct {
	// Workloads restricts the benchmark set; nil means all workloads.
	Workloads []string
	// Injections is the single-bit campaign size per benchmark for the
	// Table II study (the paper used 5000; the default here is smaller so
	// the study completes in minutes on a laptop).
	Injections int
	// Seed drives the injection campaigns.
	Seed int64
	// Windows is the number of time windows for the over-time figures
	// (Figures 5 and 8).
	Windows int
	// Workers is the worker-pool size for injection campaigns; results
	// are identical for any value (deterministic per-shot sampling).
	Workers int
	// AVFWindows is the number of time windows for the avft experiment's
	// time-resolved AVF series; zero falls back to Windows.
	AVFWindows int
	// Context, when non-nil, bounds the experiment: simulations and
	// injection campaigns poll it and a cancellation aborts the run with
	// the context's error. Nil means context.Background().
	Context context.Context
	// StoreDir, when non-empty, points at a persistent run-artifact
	// store (see internal/store): instrumented runs are loaded from it
	// instead of simulated when a valid artifact is recorded, and
	// recorded after simulating otherwise, so repeated sweeps pay the
	// simulation cost once per (workload, machine config) across
	// processes, not once per process. A local directory uses the disk
	// backend; an http(s):// base URL shares another mbavf-serve
	// process's artifact store over the fleet.
	StoreDir string
	// FabricWorkers, when non-empty, distributes injection campaigns
	// across these fabric worker base URLs. Results stay bit-identical
	// to a local run (deterministic per-shot sampling); an unreachable
	// fleet degrades to in-process execution.
	FabricWorkers []string
	// Policies restricts the protection policies the policies experiment
	// sweeps; nil means every built-in policy (policy.Names()). Names are
	// validated by the public facade before reaching here.
	Policies []string
	// ScrubInterval is the scrub period, in cycles, of the scrubbing
	// policies; 0 selects the policy package's default.
	ScrubInterval int64
}

// ctx returns the experiment's context, never nil.
func (o Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// DefaultOptions returns the settings used by cmd/mbavf-exp.
func DefaultOptions() Options {
	return Options{Injections: 200, Seed: 42, Windows: 12, Workers: runtime.GOMAXPROCS(0)}
}

func (o Options) workloadNames() []string {
	if len(o.Workloads) > 0 {
		return o.Workloads
	}
	// The paper's benchmark set: every registered workload except the
	// quickstart vecadd, whose purely streaming accesses make its cache
	// AVF degenerate (data is consumed the same cycle it arrives).
	var names []string
	for _, n := range workloads.Names() {
		if n != "vecadd" {
			names = append(names, n)
		}
	}
	return names
}

// runCache memoizes instrumented run measurements: every figure reuses
// the same lifetime/dataflow artifacts per workload.
var runCache sync.Map // name -> *sim.Measurements

// stores memoizes opened artifact stores per location. A directory
// that fails to open is remembered as unusable so every run() does not
// retry the mkdir.
var stores sync.Map // dir/url -> *store.Store (nil when unusable)

// storeFor opens the artifact store at loc: an http(s):// base URL gets
// the fleet-shared HTTP backend, anything else is a local directory.
func storeFor(loc string) *store.Store {
	if loc == "" {
		return nil
	}
	if v, ok := stores.Load(loc); ok {
		st, _ := v.(*store.Store)
		return st
	}
	var st *store.Store
	if strings.HasPrefix(loc, "http://") || strings.HasPrefix(loc, "https://") {
		st = store.NewStore(httpstore.New(loc))
	} else if local, err := store.Open(loc); err == nil {
		st = local
	}
	stores.Store(loc, st)
	return st
}

// run returns the instrumented measurements of a workload. The lookup
// order is the cost order: the in-process memo, then the persistent
// artifact store (milliseconds), then a fresh simulation (the dominant
// cost by orders of magnitude), which is recorded back into the store
// when one is configured.
func run(o Options, name string) (*sim.Measurements, error) {
	if v, ok := runCache.Load(name); ok {
		return v.(*sim.Measurements), nil
	}
	st := storeFor(o.StoreDir)
	key := store.KeyFor(name, sim.DefaultConfig())
	if st != nil {
		// A miss or a quarantined corrupt artifact both fall through to
		// simulation; the store never serves wrong numbers.
		if m, err := st.Get(o.ctx(), key); err == nil && m.Workload == name {
			runCache.Store(name, m)
			return m, nil
		}
	}
	w, err := workloads.ByName(name)
	if err != nil {
		return nil, err
	}
	s, err := sim.ExecuteContext(o.ctx(), w, sim.DefaultConfig())
	if err != nil {
		return nil, err
	}
	m := s.Measurements()
	if st != nil {
		_ = st.Put(o.ctx(), key, m) // best-effort; persistence never fails a run
	}
	runCache.Store(name, m)
	return m, nil
}

// ResetCache drops memoized simulation runs. With no arguments the whole
// cache is cleared; with names, only those workloads' sessions are
// dropped — so a memory-constrained caller can release one finished
// workload while keeping the rest warm.
func ResetCache(names ...string) {
	if len(names) == 0 {
		runCache.Range(func(k, _ any) bool {
			runCache.Delete(k)
			return true
		})
		return
	}
	for _, n := range names {
		runCache.Delete(n)
	}
}

// l1Analyzer builds an analyzer over CU0's L1 data array with the given
// layout.
func l1Analyzer(s *sim.Measurements, layout *interleave.Layout) *core.Analyzer {
	return &core.Analyzer{
		Name:        s.Workload,
		Layout:      layout,
		Tracker:     s.L1Tracker,
		Graph:       s.Graph,
		TotalCycles: s.Cycles,
	}
}

// vgprAnalyzer builds an analyzer over CU0's vector register file.
func vgprAnalyzer(s *sim.Measurements, layout *interleave.Layout, preempt bool) *core.Analyzer {
	return &core.Analyzer{
		Name:                 s.Workload,
		Layout:               layout,
		Tracker:              s.VGPRTracker,
		Graph:                s.Graph,
		WordVersions:         true,
		TotalCycles:          s.Cycles,
		DetectionPreemptsSDC: preempt,
	}
}

// l1Layouts returns the three Figure 4 interleaving layouts for the L1 at
// the given factor.
func l1Layouts(s *sim.Measurements, factor int) (logical, wayPhys, idxPhys *interleave.Layout, err error) {
	sets, ways := s.L1Slots()
	lineBits := s.LineBytes * 8
	logical, err = interleave.Logical(sets*ways, lineBits, factor)
	if err != nil {
		return
	}
	wayPhys, err = interleave.WayPhysical(sets, ways, lineBits, factor)
	if err != nil {
		return
	}
	idxPhys, err = interleave.IndexPhysical(sets, ways, lineBits, factor)
	return
}

// vgprLayout builds an intra- or inter-thread VGPR layout.
func vgprLayout(s *sim.Measurements, interThread bool, factor int) (*interleave.Layout, error) {
	threads := s.VGPRThreads
	regs := s.VGPRRegs
	if interThread {
		return interleave.InterThread(threads, regs, 32, factor)
	}
	return interleave.IntraThread(threads, regs, 32, factor)
}

// RenderAll renders tables as text or CSV.
func RenderAll(tables []*report.Table, csv bool) string {
	var b strings.Builder
	for _, t := range tables {
		if csv {
			fmt.Fprintf(&b, "# %s\n", t.Title)
			t.CSV(&b)
			fmt.Fprintln(&b)
		} else {
			t.Render(&b)
		}
	}
	return b.String()
}

// ChartSpec says how an experiment's tables translate to figures.
type ChartSpec struct {
	// Kind selects the mark form; Skip disables figure rendering (pure
	// data tables).
	Kind report.ChartKind
	Skip bool
	// LogY plots on a log axis (the MTTF sweep).
	LogY bool
	// YLabel annotates the y axis.
	YLabel string
	// DropRows excludes summary rows ("MEAN", "TOTAL") from figures.
	DropRows []string
	// DropCols excludes columns whose units differ from the y axis
	// (e.g. a ratio column in an hours chart).
	DropCols []string
}

// Experiment is a runnable paper artifact.
type Experiment struct {
	Name  string // "table1", "fig4", ...
	Title string
	Run   func(Options) ([]*report.Table, error)
	Chart ChartSpec
}

var registry = map[string]Experiment{}

func registerExp(name, title string, fn func(Options) ([]*report.Table, error)) {
	wrapped := func(o Options) ([]*report.Table, error) {
		sp := obs.StartSpan2("exp:", name)
		defer sp.End()
		return fn(o)
	}
	registry[name] = Experiment{Name: name, Title: title, Run: wrapped, Chart: chartSpecs[name]}
}

// chartSpecs maps experiments to their figure form. Bars compare
// categories (workloads, configs); lines plot time windows; the MTTF
// sweep is log-scale lines.
var chartSpecs = map[string]ChartSpec{
	"avft":     {Skip: true},
	"policies": {Skip: true},
	"table1":   {Skip: true},
	"table2":   {Skip: true},
	"table3":   {Skip: true},
	"fig2":     {Kind: report.ChartLines, LogY: true, YLabel: "MTTF (hours)", DropCols: []string{"tMBF100yr / sMBF0.1%"}},
	"fig4":     {Kind: report.ChartBars, YLabel: "MB-AVF / SB-AVF", DropRows: []string{"MEAN"}},
	"fig5":     {Kind: report.ChartLines, YLabel: "AVF", DropRows: []string{"TOTAL"}},
	"fig6":     {Kind: report.ChartBars, YLabel: "MB-AVF / SB-AVF", DropRows: []string{"MEAN"}},
	"fig8":     {Kind: report.ChartLines, YLabel: "MB-AVF", DropRows: []string{"TOTAL"}},
	"fig9":     {Kind: report.ChartBars, YLabel: "MB-AVF / SB-AVF"},
	"fig10":    {Kind: report.ChartBars, YLabel: "DUE MB-AVF"},
	"fig11":    {Kind: report.ChartBars, YLabel: "SDC rate (FIT-weighted)"},
	"locality": {Kind: report.ChartBars, YLabel: "coefficient / ratio"},
	"schemes":  {Kind: report.ChartBars, YLabel: "MB-AVF"},
	"geometry": {Kind: report.ChartBars, YLabel: "DUE / SB"},
	"l2":       {Kind: report.ChartBars, YLabel: "AVF / ratio"},
	"validate": {Kind: report.ChartBars, YLabel: "AVF / fraction"},
}

// dropColumns returns a copy of t without the named header columns.
func dropColumns(t *report.Table, names []string) *report.Table {
	drop := map[string]bool{}
	for _, n := range names {
		drop[n] = true
	}
	keep := []int{}
	out := &report.Table{Title: t.Title, Caption: t.Caption}
	for i, h := range t.Header {
		if !drop[h] {
			keep = append(keep, i)
			out.Header = append(out.Header, h)
		}
	}
	for _, row := range t.Rows {
		nr := make([]string, 0, len(keep))
		for _, i := range keep {
			if i < len(row) {
				nr = append(nr, row[i])
			}
		}
		out.Rows = append(out.Rows, nr)
	}
	return out
}

// Figures renders an experiment's tables as SVG figures per its chart
// spec. Pure data tables return no figures.
func (e Experiment) Figures(tables []*report.Table) ([]string, error) {
	if e.Chart.Skip {
		return nil, nil
	}
	var out []string
	for _, t := range tables {
		if len(e.Chart.DropCols) > 0 {
			t = dropColumns(t, e.Chart.DropCols)
		}
		c, err := report.ChartFromTable(t, e.Chart.Kind, e.Chart.YLabel, e.Chart.DropRows...)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", e.Name, err)
		}
		c.LogY = e.Chart.LogY
		svg, err := c.SVG()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", e.Name, err)
		}
		out = append(out, svg)
	}
	return out, nil
}

// Names lists all experiment names in a sensible order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ByName returns the named experiment.
func ByName(name string) (Experiment, error) {
	e, ok := registry[name]
	if !ok {
		return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return e, nil
}
