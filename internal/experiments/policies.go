package experiments

// The policies experiment: the protection-policy scenario engine swept
// over every bundled workload and every analyzable structure. Where
// Table 2 answers "what is the MB-AVF under the paper's fixed protection
// assumptions?", this sweep answers the serving tier's design question —
// which policy buys what, per structure, per workload — by evaluating
// each policy's reporting discipline and scrub/temporal-accumulation
// model on top of the same solved spatial fault-group outcomes.

import (
	"fmt"

	"mbavf/internal/bitgeom"
	"mbavf/internal/core"
	"mbavf/internal/ecc"
	"mbavf/internal/interleave"
	"mbavf/internal/interval"
	"mbavf/internal/obs"
	"mbavf/internal/policy"
	"mbavf/internal/report"
	"mbavf/internal/workloads"
)

// Per-sweep observability: how many policy cells the experiment emitted
// and the mean absolute DUE/SDC deviation from the plain-scheme baseline
// across the whole sweep (a quick health signal that the policy engine
// is actually differentiating scenarios).
var (
	obsPolicyCells    = obs.NewCounter("policy.exp.cells")
	obsPolicyMeanDDUE = obs.NewFloatGauge("policy.exp.mean_abs_due_delta")
	obsPolicyMeanDSDC = obs.NewFloatGauge("policy.exp.mean_abs_sdc_delta")
)

// policyWorkloads is the sweep's benchmark set: unlike the paper-figure
// experiments (which drop the degenerate quickstart), the policy sweep
// covers every bundled workload — the scenario engine serves arbitrary
// queries, so its table should too.
func policyWorkloads(o Options) []string {
	if len(o.Workloads) > 0 {
		return o.Workloads
	}
	return workloads.Names()
}

func policyNames(o Options) []string {
	if len(o.Policies) > 0 {
		return o.Policies
	}
	return policy.Names()
}

// policies sweeps the configured protection policies over all workloads
// and all three structures at the 4x1 fault mode over x2 physical
// interleaving — the regime where each protection domain sees two
// adjacent flips, so the schemes and disciplines genuinely diverge. Per
// structure it emits two tables: absolute DUE/SDC MB-AVFs per policy,
// and each policy's delta against its own plain-scheme report-on-detect
// baseline (the paper's accounting). Every (workload, structure, scheme)
// spatial solve happens once; policy passes reclassify it.
func policies(o Options) ([]*report.Table, error) {
	pols := make([]policy.Policy, 0, len(policyNames(o)))
	spec := policy.Spec{ScrubInterval: interval.Cycle(o.ScrubInterval)}
	for _, name := range policyNames(o) {
		p, err := policy.Named(name, spec)
		if err != nil {
			return nil, err
		}
		pols = append(pols, p)
	}

	structures := []struct {
		name string
		an   func(o Options, wl string) (*core.Analyzer, error)
	}{
		{"l1", func(o Options, wl string) (*core.Analyzer, error) {
			s, err := run(o, wl)
			if err != nil {
				return nil, err
			}
			sets, ways := s.L1Slots()
			lay, err := interleave.WayPhysical(sets, ways, s.LineBytes*8, 2)
			if err != nil {
				return nil, err
			}
			return l1Analyzer(s, lay), nil
		}},
		{"l2", func(o Options, wl string) (*core.Analyzer, error) {
			s, err := run(o, wl)
			if err != nil {
				return nil, err
			}
			sets, ways := s.L2Slots()
			lay, err := interleave.WayPhysical(sets, ways, s.LineBytes*8, 2)
			if err != nil {
				return nil, err
			}
			return &core.Analyzer{
				Name:        s.Workload,
				Layout:      lay,
				Tracker:     s.L2Tracker,
				Graph:       s.Graph,
				TotalCycles: s.Cycles,
			}, nil
		}},
		{"vgpr", func(o Options, wl string) (*core.Analyzer, error) {
			s, err := run(o, wl)
			if err != nil {
				return nil, err
			}
			lay, err := vgprLayout(s, true, 2)
			if err != nil {
				return nil, err
			}
			return vgprAnalyzer(s, lay, true), nil
		}},
	}

	mode := bitgeom.Mx1(4)
	var tables []*report.Table
	var sumDDUE, sumDSDC float64
	var cells int
	for _, st := range structures {
		headerAbs := []string{"workload"}
		headerDelta := []string{"workload"}
		for _, p := range pols {
			headerAbs = append(headerAbs, p.Name+" DUE", p.Name+" SDC")
			headerDelta = append(headerDelta, p.Name+" dDUE", p.Name+" dSDC")
		}
		abs := report.NewTable(
			fmt.Sprintf("Policies: %s DUE/SDC MB-AVF per protection policy (4x1 faults, x2 physical interleaving)", st.name),
			headerAbs...)
		abs.Caption = "Report-on-use converts false DUEs to masked; the temporal policies mix in an escalated-by-one-flip outcome at the accumulation probability; scrubbing bounds the accumulation window."
		delta := report.NewTable(
			fmt.Sprintf("Policies: %s deviation from plain-scheme report-on-detect baseline (policy minus baseline)", st.name),
			headerDelta...)
		delta.Caption = "Zero rows are the degenerate policies (the bit-identity anchor); negative dDUE is reporting deferred or avoided, positive dDUE/dSDC is temporal exposure."
		for _, wl := range policyWorkloads(o) {
			an, err := st.an(o, wl)
			if err != nil {
				return nil, err
			}
			// One spatial solve per distinct scheme; policy passes share it.
			solved := map[string]*core.Result{}
			solve := func(s ecc.Scheme) (*core.Result, error) {
				if r, ok := solved[s.Name()]; ok {
					return r, nil
				}
				r, err := an.Analyze(s, mode)
				if err != nil {
					return nil, err
				}
				solved[s.Name()] = r
				return r, nil
			}
			env := policy.Env{TotalCycles: an.TotalCycles, DomainBits: an.Layout.DomainBits}
			rowAbs := []any{wl}
			rowDelta := []any{wl}
			for _, p := range pols {
				base, err := solve(p.Scheme)
				if err != nil {
					return nil, err
				}
				out, err := p.Evaluate(env, base, solve)
				if err != nil {
					return nil, err
				}
				baseline := policy.Classify(base, policy.ReportOnDetect)
				rowAbs = append(rowAbs, out.DUE, out.SDC)
				rowDelta = append(rowDelta, out.DUE-baseline.DUE, out.SDC-baseline.SDC)
				sumDDUE += absf(out.DUE - baseline.DUE)
				sumDSDC += absf(out.SDC - baseline.SDC)
				cells++
				obsPolicyCells.Add(1)
			}
			abs.AddRowf(rowAbs...)
			delta.AddRowf(rowDelta...)
		}
		tables = append(tables, abs, delta)
	}
	if cells > 0 {
		obsPolicyMeanDDUE.Set(sumDDUE / float64(cells))
		obsPolicyMeanDSDC.Set(sumDSDC / float64(cells))
	}
	return tables, nil
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func init() {
	registerExp("policies", "Protection-policy scenario sweep (delayed reporting, scrubbing, temporal accumulation)", policies)
}
