package experiments

import (
	"strconv"
	"testing"

	"mbavf/internal/bitgeom"
	"mbavf/internal/core"
	"mbavf/internal/ecc"
	"mbavf/internal/interleave"
	"mbavf/internal/obs"
)

// TestAVFTWindowedMeanMatchesTotal is the acceptance check behind the
// avft experiment: an 8-window AnalyzeWindowed series' cycle-weighted
// mean must reproduce the whole-run AVF to within 1e-9 for every AVF
// kind, on both instrumented structures.
func TestAVFTWindowedMeanMatchesTotal(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation; skipped in -short")
	}
	s, err := run(Options{}, "minife")
	if err != nil {
		t.Fatal(err)
	}
	sets, ways := s.L1Slots()
	l1lay, err := interleave.WayPhysical(sets, ways, s.LineBytes*8, 2)
	if err != nil {
		t.Fatal(err)
	}
	vlay, err := vgprLayout(s, true, 2)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	window := (s.Cycles + n - 1) / n
	structures := []struct {
		label string
		an    *core.Analyzer
	}{
		{"l1", l1Analyzer(s, l1lay)},
		{"vgpr", vgprAnalyzer(s, vlay, false)},
	}
	for _, st := range structures {
		for _, m := range []int{2, 4} {
			series, err := st.an.AnalyzeWindowed(ecc.Parity{}, bitgeom.Mx1(m), window)
			if err != nil {
				t.Fatalf("%s %dx1: %v", st.label, m, err)
			}
			if len(series.Windows) < 2 || len(series.Windows) > n {
				t.Fatalf("%s %dx1: %d windows, want 2..%d", st.label, m, len(series.Windows), n)
			}
			if err := CheckSeriesConsistency(series); err != nil {
				t.Fatalf("%s %dx1: %v", st.label, m, err)
			}
		}
	}
}

// TestAVFTTableShape runs the registered experiment end to end and checks
// the emitted table: TOTAL rows present, per-window rows per structure
// and mode, and AVF cells at full float precision (parseable and within
// [0,1]).
func TestAVFTTableShape(t *testing.T) {
	o := quickOpts()
	o.Workloads = []string{"minife"}
	o.AVFWindows = 8
	tables := runExp(t, "avft", o)
	if len(tables) != 1 {
		t.Fatalf("got %d tables, want 1", len(tables))
	}
	tb := tables[0]
	totals := 0
	windows := 0
	for _, row := range tb.Rows {
		if row[0] != "minife" {
			t.Fatalf("unexpected workload cell %q", row[0])
		}
		for _, col := range []int{5, 6, 7} {
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil {
				t.Fatalf("AVF cell %q does not parse: %v", row[col], err)
			}
			if v < 0 || v > 1 {
				t.Fatalf("AVF cell %v outside [0,1]", v)
			}
		}
		if row[3] == "TOTAL" {
			totals++
		} else {
			windows++
		}
	}
	// 2 structures x 2 fault modes, one TOTAL each.
	if totals != 4 {
		t.Fatalf("%d TOTAL rows, want 4", totals)
	}
	if windows < 2*totals {
		t.Fatalf("%d window rows for %d series, want at least 2 per series", windows, totals)
	}
}

// TestAVFTPublishesGauges checks the avft series land on the debug
// endpoint as float gauges when the layer is enabled.
func TestAVFTPublishesGauges(t *testing.T) {
	o := quickOpts()
	o.Workloads = []string{"minife"}
	o.AVFWindows = 4
	obs.Enable()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	obs.Reset()
	runExp(t, "avft", o)
	gauges := obs.Gauges()
	found := 0
	for name := range gauges {
		switch name {
		case "avf.l1.minife.2x1.due.total", "avf.vgpr.minife.4x1.sdc.total":
			found++
		}
	}
	if found != 2 {
		t.Fatalf("avft gauges missing from registry; have %d names", len(gauges))
	}
}
