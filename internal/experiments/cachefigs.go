package experiments

import (
	"fmt"

	"mbavf/internal/bitgeom"
	"mbavf/internal/ecc"
	"mbavf/internal/interleave"
	"mbavf/internal/report"
	"mbavf/internal/stats"
)

// fig4 measures the 2x1 DUE MB-AVF of the L1 cache with parity under
// three x2 interleaving styles, normalized to the single-bit AVF (paper
// Figure 4).
func fig4(o Options) ([]*report.Table, error) {
	t := report.NewTable("Figure 4: L1 2x1 DUE MB-AVF / SB-AVF, parity, x2 interleavings",
		"workload", "SB-AVF", "logical-x2", "way-phys-x2", "index-phys-x2")
	t.Caption = "Ratios lie in [1x, 2x]; logical interleaving tracks the 1x floor (highest ACE locality)."
	var logR, wayR, idxR []float64
	for _, name := range o.workloadNames() {
		s, err := run(o, name)
		if err != nil {
			return nil, err
		}
		logical, wayPhys, idxPhys, err := l1Layouts(s, 2)
		if err != nil {
			return nil, err
		}
		mode := bitgeom.Mx1(2)
		var ratios [3]float64
		var sb float64
		for i, lay := range []*interleave.Layout{logical, wayPhys, idxPhys} {
			r, err := l1Analyzer(s, lay).Analyze(ecc.Parity{}, mode)
			if err != nil {
				return nil, err
			}
			sb = r.BitAVF()
			ratios[i] = stats.Ratio(r.DUEMBAVF(), sb)
		}
		logR = append(logR, ratios[0])
		wayR = append(wayR, ratios[1])
		idxR = append(idxR, ratios[2])
		t.AddRowf(name, sb, ratios[0], ratios[1], ratios[2])
	}
	t.AddRowf("MEAN", "", stats.Mean(logR), stats.Mean(wayR), stats.Mean(idxR))
	return []*report.Table{t}, nil
}

// fig5 plots MiniFE's SB-AVF and 2x1 MB-AVF over time, plus the 2x1
// MB-AVF of each interleaving style over time (paper Figures 5a and 5b).
func fig5(o Options) ([]*report.Table, error) {
	s, err := run(o, "minife")
	if err != nil {
		return nil, err
	}
	logical, wayPhys, idxPhys, err := l1Layouts(s, 2)
	if err != nil {
		return nil, err
	}
	window := (s.Cycles + uint64(o.Windows) - 1) / uint64(o.Windows)
	if window == 0 {
		window = 1
	}
	mode := bitgeom.Mx1(2)

	idxSeries, err := l1Analyzer(s, idxPhys).AnalyzeWindowed(ecc.Parity{}, mode, window)
	if err != nil {
		return nil, err
	}
	logSeries, err := l1Analyzer(s, logical).AnalyzeWindowed(ecc.Parity{}, mode, window)
	if err != nil {
		return nil, err
	}
	waySeries, err := l1Analyzer(s, wayPhys).AnalyzeWindowed(ecc.Parity{}, mode, window)
	if err != nil {
		return nil, err
	}

	a := report.NewTable("Figure 5a: MiniFE L1 SB-AVF and 2x1 MB-AVF over time (x2 index interleaving)",
		"window", "SB-AVF", "2x1 MB-AVF", "MB/SB")
	a.Caption = "The MB/SB ratio shifts across application phases."
	for i, w := range idxSeries.Windows {
		a.AddRowf(i, w.BitAVF(), w.DUEMBAVF(), stats.Ratio(w.DUEMBAVF(), w.BitAVF()))
	}
	a.AddRowf("TOTAL", idxSeries.Total.BitAVF(), idxSeries.Total.DUEMBAVF(),
		stats.Ratio(idxSeries.Total.DUEMBAVF(), idxSeries.Total.BitAVF()))

	b := report.NewTable("Figure 5b: MiniFE 2x1 DUE MB-AVF over time by interleaving style",
		"window", "logical-x2", "way-phys-x2", "index-phys-x2")
	for i := range logSeries.Windows {
		b.AddRowf(i, logSeries.Windows[i].DUEMBAVF(), waySeries.Windows[i].DUEMBAVF(),
			idxSeries.Windows[i].DUEMBAVF())
	}
	b.AddRowf("TOTAL", logSeries.Total.DUEMBAVF(), waySeries.Total.DUEMBAVF(),
		idxSeries.Total.DUEMBAVF())
	return []*report.Table{a, b}, nil
}

// fig6 sweeps the fault-mode size from 2x1 to 8x1 with x4 way-physical
// interleaving under parity (6a) and SEC-DED (6b), reporting DUE MB-AVF
// normalized to SB-AVF per workload (paper Figure 6).
func fig6(o Options) ([]*report.Table, error) {
	mk := func(scheme ecc.Scheme, sub string, modes []int) (*report.Table, error) {
		header := []string{"workload"}
		for _, m := range modes {
			header = append(header, fmt.Sprintf("%dx1", m))
		}
		t := report.NewTable(fmt.Sprintf("Figure 6%s: L1 DUE MB-AVF / SB-AVF, %s, x4 way-physical", sub, scheme.Name()), header...)
		sums := make([]float64, len(modes))
		n := 0
		for _, name := range o.workloadNames() {
			s, err := run(o, name)
			if err != nil {
				return nil, err
			}
			sets, ways := s.L1Slots()
			lay, err := interleave.WayPhysical(sets, ways, s.LineBytes*8, 4)
			if err != nil {
				return nil, err
			}
			an := l1Analyzer(s, lay)
			row := []any{name}
			for i, m := range modes {
				r, err := an.Analyze(scheme, bitgeom.Mx1(m))
				if err != nil {
					return nil, err
				}
				ratio := stats.Ratio(r.DUEMBAVF(), r.BitAVF())
				sums[i] += ratio
				row = append(row, ratio)
			}
			n++
			t.AddRowf(row...)
		}
		mean := []any{"MEAN"}
		for _, s := range sums {
			mean = append(mean, s/float64(n))
		}
		t.AddRowf(mean...)
		return t, nil
	}
	// Parity with x4 interleaving detects Mx1 faults up to the interleave
	// degree (each domain sees one flip); SEC-DED needs 5x1..8x1 to leave
	// two flips in a domain. An 8x1 fault under SEC-DED splits exactly
	// like a 4x1 fault under parity, the paper's Section VI-C
	// equivalence.
	a, err := mk(ecc.Parity{}, "a", []int{2, 3, 4})
	if err != nil {
		return nil, err
	}
	a.Caption = "MB-AVF grows with fault-mode size: a larger group is more likely to contain an ACE bit."
	b, err := mk(ecc.SECDED{}, "b", []int{5, 6, 7, 8})
	if err != nil {
		return nil, err
	}
	b.Caption = "Mx1 under SEC-DED tracks (M-4)x1 under parity: correction absorbs per-domain single flips, so 8x1 SEC-DED matches 4x1 parity."
	return []*report.Table{a, b}, nil
}

// fig8 compares SDC and DUE MB-AVF for 3x1 faults under parity with x2
// index- vs way-physical interleaving on MiniFE, over time (paper
// Figure 8).
func fig8(o Options) ([]*report.Table, error) {
	s, err := run(o, "minife")
	if err != nil {
		return nil, err
	}
	_, wayPhys, idxPhys, err := l1Layouts(s, 2)
	if err != nil {
		return nil, err
	}
	window := (s.Cycles + uint64(o.Windows) - 1) / uint64(o.Windows)
	if window == 0 {
		window = 1
	}
	mode := bitgeom.Mx1(3)
	mk := func(lay *interleave.Layout, name string) (*report.Table, error) {
		series, err := l1Analyzer(s, lay).AnalyzeWindowed(ecc.Parity{}, mode, window)
		if err != nil {
			return nil, err
		}
		t := report.NewTable("Figure 8: MiniFE 3x1 MB-AVF, parity, "+name,
			"window", "SDC MB-AVF", "DUE MB-AVF (true+false)")
		for i, w := range series.Windows {
			t.AddRowf(i, w.SDCMBAVF(), w.TrueDUEMBAVF()+w.FalseDUEMBAVF())
		}
		t.AddRowf("TOTAL", series.Total.SDCMBAVF(),
			series.Total.TrueDUEMBAVF()+series.Total.FalseDUEMBAVF())
		return t, nil
	}
	a, err := mk(idxPhys, "x2 index-physical")
	if err != nil {
		return nil, err
	}
	a.Caption = "SDC dominates 3x1 outcomes, but a non-trivial DUE fraction remains (single-flip regions detect)."
	b, err := mk(wayPhys, "x2 way-physical")
	if err != nil {
		return nil, err
	}
	return []*report.Table{a, b}, nil
}

// fig9 reports SDC MB-AVF for 5x1..8x1 faults with SEC-DED and x2
// way-physical interleaving, normalized to SB-AVF (paper Figure 9).
func fig9(o Options) ([]*report.Table, error) {
	modes := []int{5, 6, 7, 8}
	header := []string{"workload"}
	for _, m := range modes {
		header = append(header, fmt.Sprintf("%dx1 SDC", m), fmt.Sprintf("%dx1 DUE", m))
	}
	t := report.NewTable("Figure 9: L1 SDC MB-AVF / SB-AVF, SEC-DED, x2 way-physical", header...)
	t.Caption = "SDC jumps from 5x1 to 6x1 (5x1 leaves one detectable 2-flip domain) then plateaus through 8x1 (high in-line ACE locality)."
	for _, name := range o.workloadNames() {
		s, err := run(o, name)
		if err != nil {
			return nil, err
		}
		sets, ways := s.L1Slots()
		lay, err := interleave.WayPhysical(sets, ways, s.LineBytes*8, 2)
		if err != nil {
			return nil, err
		}
		an := l1Analyzer(s, lay)
		row := []any{name}
		for _, m := range modes {
			r, err := an.Analyze(ecc.SECDED{}, bitgeom.Mx1(m))
			if err != nil {
				return nil, err
			}
			sb := r.BitAVF()
			row = append(row, stats.Ratio(r.SDCMBAVF(), sb),
				stats.Ratio(r.TrueDUEMBAVF()+r.FalseDUEMBAVF(), sb))
		}
		t.AddRowf(row...)
	}
	return []*report.Table{t}, nil
}

// fig10 splits DUE MB-AVF into true and false DUE per fault mode under
// parity with x4 way-physical interleaving (paper Figure 10).
func fig10(o Options) ([]*report.Table, error) {
	modes := []int{1, 2, 3, 4}
	header := []string{"workload"}
	for _, m := range modes {
		header = append(header, fmt.Sprintf("%dx1 true", m), fmt.Sprintf("%dx1 false", m), fmt.Sprintf("%dx1 false%%", m))
	}
	t := report.NewTable("Figure 10: true vs false DUE MB-AVF by fault mode, parity, x4 way-physical", header...)
	t.Caption = "False DUE is small on average but benchmark-dependent; its share shifts with fault-mode size."
	for _, name := range o.workloadNames() {
		s, err := run(o, name)
		if err != nil {
			return nil, err
		}
		sets, ways := s.L1Slots()
		lay, err := interleave.WayPhysical(sets, ways, s.LineBytes*8, 4)
		if err != nil {
			return nil, err
		}
		an := l1Analyzer(s, lay)
		row := []any{name}
		for _, m := range modes {
			r, err := an.Analyze(ecc.Parity{}, bitgeom.Mx1(m))
			if err != nil {
				return nil, err
			}
			tr, fa := r.TrueDUEMBAVF(), r.FalseDUEMBAVF()
			row = append(row, tr, fa, 100*stats.Ratio(fa, tr+fa))
		}
		t.AddRowf(row...)
	}
	return []*report.Table{t}, nil
}

func init() {
	registerExp("fig4", "2x1 DUE MB-AVF vs interleaving style", fig4)
	registerExp("fig5", "MiniFE AVFs over time", fig5)
	registerExp("fig6", "DUE MB-AVF vs fault-mode size", fig6)
	registerExp("fig8", "SDC vs DUE MB-AVF for 3x1 faults", fig8)
	registerExp("fig9", "SDC MB-AVF for 5x1..8x1 with SEC-DED", fig9)
	registerExp("fig10", "True vs false DUE", fig10)
}
