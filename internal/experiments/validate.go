package experiments

import (
	"fmt"

	"mbavf/internal/bitgeom"
	"mbavf/internal/ecc"
	"mbavf/internal/inject"
	"mbavf/internal/report"
	"mbavf/internal/sim"
	"mbavf/internal/workloads"
)

// validate cross-checks the ACE-analysis SDC AVF of the vector register
// file against a statistical fault-injection estimate of the same
// quantity — the Wang-vs-Biswas methodological debate the paper cites.
//
// The analysis side is the unprotected single-bit SDC AVF (program-live
// bit fraction). The injection side is the fraction of uniform random
// single-bit flips that corrupt program output; flips that trap (corrupted
// addresses) are reported separately, since ACE analysis conservatively
// counts address bits as ACE. ACE analysis is an upper bound, so
// analysis >= injection SDC must hold, and the gap measures the
// conservatism of the ACE assumptions.
func validate(o Options) ([]*report.Table, error) {
	t := report.NewTable("Validation: VGPR SDC AVF, ACE analysis vs statistical fault injection",
		"workload", "analysis SDC AVF", "inject SDC frac", "inject DUE frac", "inject SDC+DUE", "conservatism")
	t.Caption = fmt.Sprintf("Injection: %d uniform single-bit flips per workload. ACE analysis upper-bounds the injected SDC+DUE rate; the ratio is its conservatism.", o.Injections)
	names := o.Workloads
	if len(names) == 0 {
		names = table2Workloads()
	}
	for _, name := range names {
		s, err := run(o, name)
		if err != nil {
			return nil, err
		}
		lay, err := vgprLayout(s, false, 1)
		if err != nil {
			return nil, err
		}
		res, err := vgprAnalyzer(s, lay, false).Analyze(ecc.None{}, bitgeom.Mx1(1))
		if err != nil {
			return nil, err
		}
		analysis := res.SDCMBAVF()

		w, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		c, err := inject.NewCampaignContext(o.ctx(), w, sim.InjectionConfig())
		if err != nil {
			return nil, err
		}
		rep, err := runInjection(o.ctx(), o, c, inject.RunConfig{N: o.Injections, Seed: o.Seed, Workers: o.Workers})
		if err != nil {
			return nil, err
		}
		results := rep.Results()
		counts := inject.Count(results)
		n := float64(len(results))
		sdcFrac := float64(counts.SDC) / n
		dueFrac := float64(counts.DUE) / n
		conserv := 0.0
		if sdcFrac+dueFrac > 0 {
			conserv = analysis / (sdcFrac + dueFrac)
		}
		t.AddRowf(name, analysis, sdcFrac, dueFrac, sdcFrac+dueFrac, conserv)
	}
	return []*report.Table{t}, nil
}

func init() {
	registerExp("validate", "ACE analysis vs fault injection (validation)", validate)
}
