package experiments

import (
	"fmt"

	"mbavf/internal/bitgeom"
	"mbavf/internal/ecc"
	"mbavf/internal/faultrate"
	"mbavf/internal/report"
	"mbavf/internal/stats"
)

// vgprConfig is one design point of the Section VIII case study.
type vgprConfig struct {
	label       string
	scheme      ecc.Scheme
	interThread bool
	factor      int
}

func caseStudyConfigs() []vgprConfig {
	return []vgprConfig{
		{"parity rx2", ecc.Parity{}, false, 2},
		{"parity rx4", ecc.Parity{}, false, 4},
		{"parity tx2", ecc.Parity{}, true, 2},
		{"parity tx4", ecc.Parity{}, true, 4},
		{"sec-ded rx2", ecc.SECDED{}, false, 2},
		{"sec-ded rx4", ecc.SECDED{}, false, 4},
		{"sec-ded tx2", ecc.SECDED{}, true, 2},
		{"sec-ded tx4", ecc.SECDED{}, true, 4},
	}
}

// approxSDCAVF is the baseline designers use without MB-AVF analysis:
// approximate every fault mode's AVF with the single-bit AVF and
// conservatively assume any fault the protection cannot detect causes
// SDC. A contiguous Mx1 fault over factor-I interleaving concentrates
// ceil(M/I) flips in the worst-hit domain.
func approxSDCAVF(scheme ecc.Scheme, factor, modeSize int, sbLive float64) float64 {
	worst := (modeSize + factor - 1) / factor
	if scheme.React(worst) == ecc.ReactUndetected {
		return sbLive
	}
	return 0
}

// fig11 reproduces the VGPR protection case study: SDC rates (AVF-weighted
// FIT summed over all fault modes, averaged across workloads) for parity
// and SEC-DED under intra-thread (rx) and inter-thread (tx) x2/x4
// interleaving, from full MB-AVF analysis and from the SB-AVF
// approximation (paper Figure 11).
func fig11(o Options) ([]*report.Table, error) {
	rates := faultrate.TableIII()
	configs := caseStudyConfigs()
	t := report.NewTable("Figure 11: GPU VGPR SDC rate by protection scheme (FIT-weighted, mean across workloads)",
		"config", "SDC (MB-AVF analysis)", "SDC (SB-AVF approximation)", "DUE (MB-AVF)", "check-bit overhead")
	t.Caption = "MB-AVF analysis lowers SDC estimates versus the SB-AVF approximation, and parity with x4 inter-thread interleaving beats SEC-DED with x2 interleaving on SDC."

	names := o.workloadNames()
	for _, cfg := range configs {
		var sdcMB, sdcApprox, dueMB []float64
		for _, name := range names {
			s, err := run(o, name)
			if err != nil {
				return nil, err
			}
			lay, err := vgprLayout(s, cfg.interThread, cfg.factor)
			if err != nil {
				return nil, err
			}
			an := vgprAnalyzer(s, lay, cfg.interThread)
			var serSDC, serApprox, serDUE float64
			var sbLive float64
			for _, mr := range rates {
				r, err := an.Analyze(cfg.scheme, bitgeom.Mx1(mr.Width))
				if err != nil {
					return nil, err
				}
				sbLive = r.BitAVFLive()
				serSDC += faultrate.SER(mr.FIT, r.SDCMBAVF())
				serDUE += faultrate.SER(mr.FIT, r.TrueDUEMBAVF()+r.FalseDUEMBAVF())
				serApprox += faultrate.SER(mr.FIT, approxSDCAVF(cfg.scheme, cfg.factor, mr.Width, sbLive))
			}
			sdcMB = append(sdcMB, serSDC)
			sdcApprox = append(sdcApprox, serApprox)
			dueMB = append(dueMB, serDUE)
		}
		overhead := ecc.Overhead(cfg.scheme, 32)
		t.AddRowf(cfg.label, stats.Mean(sdcMB), stats.Mean(sdcApprox), stats.Mean(dueMB),
			fmt.Sprintf("%.1f%%", 100*overhead))
	}
	return []*report.Table{t}, nil
}

// CaseStudySDC returns the mean MB-AVF SDC rate for one named config,
// used by tests and EXPERIMENTS.md shape checks.
func CaseStudySDC(o Options, label string) (float64, error) {
	tables, err := fig11(o)
	if err != nil {
		return 0, err
	}
	for _, row := range tables[0].Rows {
		if row[0] == label {
			var v float64
			if _, err := fmt.Sscanf(row[1], "%g", &v); err != nil {
				return 0, err
			}
			return v, nil
		}
	}
	return 0, fmt.Errorf("experiments: config %q not in Figure 11", label)
}

func init() {
	registerExp("fig11", "VGPR protection case study", fig11)
}
