// Package mttf models the mean time to failure of a large cache from
// temporal and spatial multi-bit faults, reproducing the analysis behind
// the paper's Figure 2 (built on the methodology of Saleh et al. for
// temporal accumulation).
//
// A temporal multi-bit fault (tMBF) needs two independent strikes to land
// in the same protection word before the word's data is replaced: its
// failure rate scales with the square of the raw fault rate and with the
// data lifetime. A spatial multi-bit fault (sMBF) needs a single strike:
// its rate is the raw rate times the multi-bit fraction measured in
// accelerated testing. This asymmetry is the paper's justification for
// focusing on spatial faults: at realistic raw rates the sMBF MTTF is
// orders of magnitude below the tMBF MTTF.
package mttf

import (
	"fmt"
	"math"
)

// HoursPerYear converts lifetimes for reporting.
const HoursPerYear = 24 * 365.25

// CacheParams describes the SRAM under analysis.
type CacheParams struct {
	// Bits is the total cache capacity in bits (the paper uses 32MB).
	Bits float64
	// WordBits is the protection-domain size in bits (one ECC word).
	WordBits float64
	// RawFITPerBit is the raw per-bit transient fault rate in FIT
	// (failures per 10^9 device-hours).
	RawFITPerBit float64
	// SMBFFraction is the fraction of strikes that flip multiple bits
	// spatially (e.g. 0.001 for the 0.1% >8-bit rate, 0.05 for 5%).
	SMBFFraction float64
	// LifetimeHours is how long a word's data lives before being
	// overwritten or scrubbed; 0 means infinite (data never replaced).
	LifetimeHours float64
}

// Default32MB returns the paper's Figure 2 structure: a 32MB cache with
// 64-bit protection words.
func Default32MB() CacheParams {
	return CacheParams{
		Bits:     32 * 8 * 1024 * 1024,
		WordBits: 64,
	}
}

func (p CacheParams) validate() error {
	if p.Bits <= 0 || p.WordBits <= 0 {
		return fmt.Errorf("mttf: non-positive parameters: %+v", p)
	}
	// A zero raw rate is not a degenerate sweep point — it is an input
	// error: every MTTF below divides by the rate, so accepting it would
	// silently emit +Inf/NaN points into Figure 2 sweeps.
	if p.RawFITPerBit <= 0 {
		return fmt.Errorf("mttf: raw FIT/bit must be positive (got %g)", p.RawFITPerBit)
	}
	return nil
}

// perBitRate returns the per-bit fault rate in events per hour.
func (p CacheParams) perBitRate() float64 { return p.RawFITPerBit / 1e9 }

// DomainStrikeRate returns the per-protection-domain strike rate in
// events per hour for a domain of wordBits data bits under a raw per-bit
// rate of rawFITPerBit FIT — the mu of TemporalMTTF's accumulation
// model, exported so policy-level temporal models are seeded by the same
// math as the Figure 2 sweep.
func DomainStrikeRate(wordBits, rawFITPerBit float64) float64 {
	return wordBits * rawFITPerBit / 1e9
}

// SpatialMTTF returns the cache's MTTF in hours from spatial multi-bit
// faults: a single strike whose spatial extent defeats the protection.
func SpatialMTTF(p CacheParams) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	if p.SMBFFraction <= 0 {
		return math.Inf(1), nil
	}
	rate := p.Bits * p.perBitRate() * p.SMBFFraction
	return 1 / rate, nil
}

// TemporalMTTF returns the cache's MTTF in hours from temporal multi-bit
// faults: two strikes accumulating in one protection word while the data
// lives there.
//
// With a finite lifetime T, each word independently fails in an interval
// with probability ~ (mu*T)^2/2 (mu = per-word strike rate), giving a
// failure rate of W*mu^2*T/2 and MTTF = 2/(W*mu^2*T).
//
// With an infinite lifetime, strikes accumulate forever and the MTTF is
// the expected time until any of W words collects two strikes — the
// birthday bound sqrt(pi/(2W))/mu.
func TemporalMTTF(p CacheParams) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	words := p.Bits / p.WordBits
	mu := DomainStrikeRate(p.WordBits, p.RawFITPerBit)
	if p.LifetimeHours <= 0 {
		return math.Sqrt(math.Pi/(2*words)) / mu, nil
	}
	rate := words * mu * mu * p.LifetimeHours / 2
	return 1 / rate, nil
}

// Point is one sweep sample for Figure 2.
type Point struct {
	RawFITPerBit float64
	// MTTF in hours per scenario.
	SMBF01    float64 // spatial, 0.1% multi-bit fraction
	SMBF5     float64 // spatial, 5% multi-bit fraction
	TMBFInf   float64 // temporal, infinite data lifetime
	TMBF100yr float64 // temporal, 100-year data lifetime
}

// Sweep evaluates the four Figure 2 scenarios for each raw fault rate.
func Sweep(base CacheParams, rawFITs []float64) ([]Point, error) {
	out := make([]Point, 0, len(rawFITs))
	for _, fit := range rawFITs {
		p := base
		p.RawFITPerBit = fit

		p.SMBFFraction = 0.001
		s01, err := SpatialMTTF(p)
		if err != nil {
			return nil, err
		}
		p.SMBFFraction = 0.05
		s5, err := SpatialMTTF(p)
		if err != nil {
			return nil, err
		}
		p.LifetimeHours = 0
		tInf, err := TemporalMTTF(p)
		if err != nil {
			return nil, err
		}
		p.LifetimeHours = 100 * HoursPerYear
		t100, err := TemporalMTTF(p)
		if err != nil {
			return nil, err
		}
		out = append(out, Point{RawFITPerBit: fit, SMBF01: s01, SMBF5: s5, TMBFInf: tInf, TMBF100yr: t100})
	}
	return out, nil
}
