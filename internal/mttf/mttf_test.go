package mttf

import (
	"math"
	"strings"
	"testing"
)

func params(fit float64) CacheParams {
	p := Default32MB()
	p.RawFITPerBit = fit
	p.SMBFFraction = 0.001
	return p
}

func TestSpatialScalesInverselyWithRate(t *testing.T) {
	a, err := SpatialMTTF(params(1e-4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SpatialMTTF(params(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	if ratio := a / b; math.Abs(ratio-10) > 1e-9 {
		t.Errorf("10x rate should give 10x lower MTTF, got ratio %v", ratio)
	}
}

func TestTemporalScalesQuadratically(t *testing.T) {
	pa := params(1e-4)
	pa.LifetimeHours = 1000
	pb := params(1e-3)
	pb.LifetimeHours = 1000
	a, err := TemporalMTTF(pa)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TemporalMTTF(pb)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := a / b; math.Abs(ratio-100) > 1e-6 {
		t.Errorf("10x rate should give 100x lower temporal MTTF, got ratio %v", ratio)
	}
}

func TestSMBFFractionScalesLinearly(t *testing.T) {
	// The paper: a 5% sMBF rate decreases MTTF by ~2 orders of magnitude
	// relative to 0.1%.
	p := params(1e-4)
	p.SMBFFraction = 0.001
	a, _ := SpatialMTTF(p)
	p.SMBFFraction = 0.05
	b, _ := SpatialMTTF(p)
	if ratio := a / b; math.Abs(ratio-50) > 1e-9 {
		t.Errorf("5%% vs 0.1%% should differ 50x, got %v", ratio)
	}
}

func TestFiniteLifetimeRaisesTemporalMTTF(t *testing.T) {
	// The paper: limiting lifetime to 100 years raises tMBF MTTFs by
	// several orders of magnitude versus infinite lifetime.
	p := params(1e-4)
	p.LifetimeHours = 0
	inf, err := TemporalMTTF(p)
	if err != nil {
		t.Fatal(err)
	}
	p.LifetimeHours = 100 * HoursPerYear
	fin, err := TemporalMTTF(p)
	if err != nil {
		t.Fatal(err)
	}
	if fin < inf*100 {
		t.Errorf("100-year lifetime should raise MTTF by orders of magnitude: inf=%g fin=%g", inf, fin)
	}
}

func TestSpatialDominatesAtRealisticRates(t *testing.T) {
	// The paper's core Figure 2 claim: sMBF MTTF is far below tMBF MTTF
	// across realistic raw rates, so spatial faults are the threat.
	for _, fit := range []float64{1e-6, 1e-5, 1e-4, 1e-3} {
		p := params(fit)
		s, err := SpatialMTTF(p)
		if err != nil {
			t.Fatal(err)
		}
		p.LifetimeHours = 100 * HoursPerYear
		tm, err := TemporalMTTF(p)
		if err != nil {
			t.Fatal(err)
		}
		if s >= tm {
			t.Errorf("rate %g: spatial MTTF %g should be below temporal %g", fit, s, tm)
		}
	}
}

func TestGapGrowsAsRateFalls(t *testing.T) {
	pts, err := Sweep(Default32MB(), []float64{1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	prevGap := 0.0
	for _, pt := range pts {
		gap := pt.TMBF100yr / pt.SMBF01
		if gap <= prevGap {
			t.Errorf("temporal/spatial MTTF gap should grow as raw rate falls: %v then %v", prevGap, gap)
		}
		prevGap = gap
	}
	// At the low-rate end the gap reaches the many-orders-of-magnitude
	// regime the paper reports.
	if last := pts[len(pts)-1]; last.TMBF100yr/last.SMBF01 < 1e6 {
		t.Errorf("gap at 1e-8 FIT/bit = %g, want >= 1e6", last.TMBF100yr/last.SMBF01)
	}
}

func TestZeroFractionGivesInfiniteMTTF(t *testing.T) {
	p := params(1e-4)
	p.SMBFFraction = 0
	mttf, err := SpatialMTTF(p)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(mttf, 1) {
		t.Errorf("zero multi-bit fraction should give infinite MTTF, got %g", mttf)
	}
}

func TestInvalidParams(t *testing.T) {
	var p CacheParams
	if _, err := SpatialMTTF(p); err == nil {
		t.Error("zero params should error")
	}
	if _, err := TemporalMTTF(p); err == nil {
		t.Error("zero params should error")
	}
}

func TestNonPositiveRawFITRejected(t *testing.T) {
	// A zero or negative raw rate must be an explicit error, not a
	// degenerate (+Inf/NaN) MTTF point silently entering a sweep.
	for _, fit := range []float64{0, -1e-4} {
		p := Default32MB()
		p.RawFITPerBit = fit
		p.SMBFFraction = 0.001
		for name, f := range map[string]func(CacheParams) (float64, error){
			"SpatialMTTF":  SpatialMTTF,
			"TemporalMTTF": TemporalMTTF,
		} {
			_, err := f(p)
			if err == nil {
				t.Fatalf("%s with RawFITPerBit=%g: want error, got nil", name, fit)
			}
			if !strings.Contains(err.Error(), "raw FIT/bit must be positive") {
				t.Errorf("%s with RawFITPerBit=%g: error %q does not name the raw rate", name, fit, err)
			}
		}
	}
}

func TestDomainStrikeRate(t *testing.T) {
	// 64-bit domains at 1e-4 FIT/bit: 64e-4 FIT/domain = 6.4e-12/hour.
	if got, want := DomainStrikeRate(64, 1e-4), 6.4e-12; math.Abs(got-want) > 1e-24 {
		t.Errorf("DomainStrikeRate(64, 1e-4) = %g, want %g", got, want)
	}
}
