package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mbavf/internal/dataflow"
	"mbavf/internal/lifetime"
	"mbavf/internal/mem"
)

// refCache is an independent reference model of one cache level: a
// map-based fully explicit LRU set-associative cache used to cross-check
// hit/miss decisions.
type refCache struct {
	lineBytes, sets, ways int
	// lines[set] is the LRU-ordered list of resident line addresses,
	// most recent first.
	lines map[int][]uint32
	dirty map[uint32]bool
}

func newRefCache(cfg Config) *refCache {
	return &refCache{
		lineBytes: cfg.LineBytes,
		sets:      cfg.Sets(),
		ways:      cfg.Ways,
		lines:     map[int][]uint32{},
		dirty:     map[uint32]bool{},
	}
}

func (r *refCache) lineAddr(addr uint32) uint32 { return addr / uint32(r.lineBytes) }
func (r *refCache) set(addr uint32) int         { return int(r.lineAddr(addr)) % r.sets }

// touch returns whether addr hit, inserting it MRU if insert is set.
func (r *refCache) access(addr uint32, insert bool) bool {
	set := r.set(addr)
	la := r.lineAddr(addr)
	lst := r.lines[set]
	for i, l := range lst {
		if l == la {
			// Move to front.
			copy(lst[1:i+1], lst[:i])
			lst[0] = la
			return true
		}
	}
	if insert {
		if len(lst) >= r.ways {
			victim := lst[len(lst)-1]
			lst = lst[:len(lst)-1]
			delete(r.dirty, victim)
		}
		r.lines[set] = append([]uint32{la}, lst...)
	}
	return false
}

// TestQuickHitMissMatchesReference drives random loads/stores through one
// CU and compares every hit/miss decision (via latency) with the
// reference model.
func TestQuickHitMissMatchesReference(t *testing.T) {
	cfg := HierConfig{
		NumCUs:     1,
		L1:         Config{SizeBytes: 1024, LineBytes: 64, Ways: 2, HitLatency: 4},
		L2:         Config{SizeBytes: 4096, LineBytes: 64, Ways: 4, HitLatency: 24},
		MemLatency: 120,
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := mem.New(1 << 16)
		h, err := NewHierarchy(cfg, m)
		if err != nil {
			t.Fatal(err)
		}
		refL1 := newRefCache(cfg.L1)
		refL2 := newRefCache(cfg.L2)
		for i := 0; i < 300; i++ {
			addr := uint32(r.Intn(1<<14)) &^ 3
			cycle := uint64(i)
			if r.Intn(3) == 0 {
				// Store: write-through. L1 updates only on hit (no
				// allocate); L2 allocates.
				h.Store(0, addr, 4, cycle, nil)
				refL1.access(addr, false)
				refL2.access(addr, true)
				refL2.dirty[refL2.lineAddr(addr)] = true
				continue
			}
			lat := h.Load(0, addr, 4, cycle)
			l1Hit := refL1.access(addr, true)
			var want uint64
			if l1Hit {
				want = cfg.L1.HitLatency
			} else if refL2.access(addr, true) {
				want = cfg.L1.HitLatency + cfg.L2.HitLatency
			} else {
				want = cfg.L1.HitLatency + cfg.L2.HitLatency + cfg.MemLatency
			}
			if lat != want {
				t.Logf("seed %d access %d addr %#x: latency %d, reference %d", seed, i, addr, lat, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTrackerSegmentsConsistent drives random traffic with trackers
// attached and validates structural invariants of the produced lifetime
// segments.
func TestQuickTrackerSegmentsConsistent(t *testing.T) {
	cfg := HierConfig{
		NumCUs:     1,
		L1:         Config{SizeBytes: 512, LineBytes: 64, Ways: 2, HitLatency: 4},
		L2:         Config{SizeBytes: 2048, LineBytes: 64, Ways: 2, HitLatency: 24},
		MemLatency: 120,
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := dataflow.NewGraph()
		m := mem.New(1 << 14)
		h, err := NewHierarchy(cfg, m)
		if err != nil {
			t.Fatal(err)
		}
		l1sets, l1ways := h.L1Slots()
		l2sets, l2ways := h.L2Slots()
		tr1 := lifetime.NewTracker(l1sets*l1ways, 64)
		tr2 := lifetime.NewTracker(l2sets*l2ways, 64)
		h.TrackL1(0, tr1)
		h.TrackL2(tr2)
		var cycle uint64
		for i := 0; i < 200; i++ {
			addr := uint32(r.Intn(1<<12)) &^ 3
			cycle += uint64(1 + r.Intn(5))
			if r.Intn(3) == 0 {
				v := g.New(dataflow.TransferNone, 0)
				h.Store(0, addr, 4, cycle, []dataflow.VersionID{v, v, v, v})
			} else {
				h.Load(0, addr, 4, cycle)
			}
		}
		cycle++
		h.FlushAll(cycle)
		tr1.Finish(cycle)
		tr2.Finish(cycle)
		for _, tr := range []*lifetime.Tracker{tr1, tr2} {
			for w := 0; w < tr.Words(); w++ {
				for by := 0; by < 64; by++ {
					segs := tr.Segments(w, by)
					var prevEnd uint64
					for _, sg := range segs {
						if sg.Start >= sg.End {
							t.Logf("seed %d: empty segment %+v", seed, sg)
							return false
						}
						if sg.Start < prevEnd {
							t.Logf("seed %d: overlapping segments at (%d,%d)", seed, w, by)
							return false
						}
						if sg.End > cycle {
							t.Logf("seed %d: segment beyond horizon", seed)
							return false
						}
						prevEnd = sg.End
					}
				}
			}
		}
		// L1 is write-through: it must never produce pending (dirty
		// writeback) segments.
		for w := 0; w < tr1.Words(); w++ {
			for by := 0; by < 64; by++ {
				for _, sg := range tr1.Segments(w, by) {
					if sg.Kind == lifetime.SegPending {
						t.Logf("seed %d: write-through L1 produced a pending segment", seed)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
