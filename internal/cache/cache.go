// Package cache implements the APU's data cache hierarchy: a write-through
// L1 per compute unit and a shared write-back, write-allocate L2, both
// with 64-byte lines, LRU replacement, and byte-granularity access event
// emission into lifetime trackers.
//
// The caches are timing and event models only: functional values and
// dataflow versions always live in mem.Memory (stores write through to
// memory state immediately), so cache state can never corrupt program
// results. What the caches decide is (a) access latency and (b) the
// occupancy history of every physical line slot — which data version each
// byte of the SRAM held and when it was filled, read, written, and
// evicted. That history is exactly the input the ACE analysis needs.
package cache

import (
	"fmt"

	"mbavf/internal/dataflow"
	"mbavf/internal/lifetime"
	"mbavf/internal/mem"
	"mbavf/internal/obs"
)

// Observability series: per-level cache line residency — cycles between a
// line's fill and its eviction, the occupancy distribution that decides
// how long a resident value is exposed to particle strikes. Recorded once
// per eviction (far off the per-access hot path); the disabled path is
// Histogram.Record's single atomic load.
var (
	obsL1Residency = obs.NewHistogram("cache.l1.residency_cycles")
	obsL2Residency = obs.NewHistogram("cache.l2.residency_cycles")
)

// Config describes one cache level.
type Config struct {
	// SizeBytes is the total data capacity.
	SizeBytes int
	// LineBytes is the line size (64 in the paper's APU).
	LineBytes int
	// Ways is the set associativity.
	Ways int
	// HitLatency is the access latency in cycles on a hit.
	HitLatency uint64
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int { return c.SizeBytes / c.LineBytes / c.Ways }

func (c Config) validate(name string) error {
	if c.LineBytes <= 0 || c.SizeBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache: %s config has non-positive fields: %+v", name, c)
	}
	if c.SizeBytes%(c.LineBytes*c.Ways) != 0 {
		return fmt.Errorf("cache: %s size %d not divisible by line*ways", name, c.SizeBytes)
	}
	return nil
}

type line struct {
	valid, dirty bool
	tag          uint32
	lastUse      uint64
	fillCycle    uint64
}

type level struct {
	cfg       Config
	sets      int
	lines     []line
	tracker   *lifetime.Tracker // nil when untracked
	resHist   *obs.Histogram    // residency series for this level
	hits      uint64
	misses    uint64
	evictions uint64
}

func newLevel(cfg Config, resHist *obs.Histogram) *level {
	sets := cfg.Sets()
	return &level{cfg: cfg, sets: sets, lines: make([]line, sets*cfg.Ways), resHist: resHist}
}

func (l *level) set(addr uint32) int { return int(addr/uint32(l.cfg.LineBytes)) % l.sets }
func (l *level) tag(addr uint32) uint32 {
	return addr / uint32(l.cfg.LineBytes) / uint32(l.sets)
}
func (l *level) lineBase(set int, tag uint32) uint32 {
	return (tag*uint32(l.sets) + uint32(set)) * uint32(l.cfg.LineBytes)
}

// lookup returns the way holding addr, or -1.
func (l *level) lookup(addr uint32) int {
	set, tag := l.set(addr), l.tag(addr)
	for w := 0; w < l.cfg.Ways; w++ {
		ln := &l.lines[set*l.cfg.Ways+w]
		if ln.valid && ln.tag == tag {
			return w
		}
	}
	return -1
}

// victim picks the replacement way in addr's set: an invalid way if any,
// else the least recently used.
func (l *level) victim(addr uint32) int {
	set := l.set(addr)
	best, bestUse := 0, ^uint64(0)
	for w := 0; w < l.cfg.Ways; w++ {
		ln := &l.lines[set*l.cfg.Ways+w]
		if !ln.valid {
			return w
		}
		if ln.lastUse < bestUse {
			best, bestUse = w, ln.lastUse
		}
	}
	return best
}

// slot returns the tracker word index of (set, way): the physical line
// frame identity used by the interleave layouts.
func (l *level) slot(set, way int) int { return set*l.cfg.Ways + way }

// evict invalidates (set, way), emitting close events for every byte.
func (l *level) evict(set, way int, cycle uint64) {
	ln := &l.lines[set*l.cfg.Ways+way]
	if !ln.valid {
		return
	}
	l.evictions++
	if cycle >= ln.fillCycle {
		l.resHist.Record(cycle - ln.fillCycle)
	}
	if l.tracker != nil {
		slot := l.slot(set, way)
		for b := 0; b < l.cfg.LineBytes; b++ {
			if ln.dirty {
				l.tracker.CloseDirty(slot, b, cycle)
			} else {
				l.tracker.CloseClean(slot, b, cycle)
			}
		}
	}
	ln.valid = false
	ln.dirty = false
}

// fill installs addr's line into (set, way) at cycle, opening every byte
// with its current memory version.
func (l *level) fill(addr uint32, way int, cycle uint64, memory *mem.Memory) {
	set, tag := l.set(addr), l.tag(addr)
	l.evict(set, way, cycle)
	ln := &l.lines[set*l.cfg.Ways+way]
	ln.valid = true
	ln.dirty = false
	ln.tag = tag
	ln.lastUse = cycle
	ln.fillCycle = cycle
	if l.tracker != nil {
		slot := l.slot(set, way)
		base := l.lineBase(set, tag)
		for b := 0; b < l.cfg.LineBytes; b++ {
			l.tracker.Open(slot, b, cycle, memory.VersionAt(base+uint32(b)))
		}
	}
}

// readBytes emits Read events for bytes [off, off+n) of the line holding
// addr in the given way.
func (l *level) readBytes(addr uint32, way, n int, cycle uint64) {
	set := l.set(addr)
	l.lines[set*l.cfg.Ways+way].lastUse = cycle
	if l.tracker == nil {
		return
	}
	slot := l.slot(set, way)
	off := int(addr) % l.cfg.LineBytes
	for b := 0; b < n; b++ {
		l.tracker.Read(slot, off+b, cycle)
	}
}

// readLine emits Read events for every byte of the line (used when a fill
// at the level above consumes the whole line).
func (l *level) readLine(addr uint32, way int, cycle uint64) {
	set := l.set(addr)
	l.lines[set*l.cfg.Ways+way].lastUse = cycle
	if l.tracker == nil {
		return
	}
	slot := l.slot(set, way)
	for b := 0; b < l.cfg.LineBytes; b++ {
		l.tracker.Read(slot, b, cycle)
	}
}

// writeBytes emits Open events with new versions for bytes [off, off+n).
func (l *level) writeBytes(addr uint32, way, n int, cycle uint64, vers []dataflow.VersionID, markDirty bool) {
	set := l.set(addr)
	ln := &l.lines[set*l.cfg.Ways+way]
	ln.lastUse = cycle
	if markDirty {
		ln.dirty = true
	}
	if l.tracker == nil {
		return
	}
	slot := l.slot(set, way)
	off := int(addr) % l.cfg.LineBytes
	for b := 0; b < n; b++ {
		var v dataflow.VersionID
		if b < len(vers) {
			v = vers[b]
		}
		l.tracker.Open(slot, off+b, cycle, v)
	}
}

// Hierarchy is the full data-cache system: one L1 per compute unit plus a
// shared L2 in front of memory.
type Hierarchy struct {
	l1s        []*level
	l2         *level
	memory     *mem.Memory
	memLatency uint64
}

// HierConfig configures a Hierarchy.
type HierConfig struct {
	NumCUs     int
	L1, L2     Config
	MemLatency uint64
}

// DefaultHierConfig mirrors the paper's APU: 4 CUs with 16KB 4-way L1s and
// one 256KB 16-way shared L2, 64-byte lines throughout.
func DefaultHierConfig() HierConfig {
	return HierConfig{
		NumCUs:     4,
		L1:         Config{SizeBytes: 16 * 1024, LineBytes: 64, Ways: 4, HitLatency: 4},
		L2:         Config{SizeBytes: 256 * 1024, LineBytes: 64, Ways: 16, HitLatency: 24},
		MemLatency: 120,
	}
}

// NewHierarchy builds the hierarchy over the given memory.
func NewHierarchy(cfg HierConfig, memory *mem.Memory) (*Hierarchy, error) {
	if cfg.NumCUs < 1 {
		return nil, fmt.Errorf("cache: NumCUs %d must be >= 1", cfg.NumCUs)
	}
	if err := cfg.L1.validate("L1"); err != nil {
		return nil, err
	}
	if err := cfg.L2.validate("L2"); err != nil {
		return nil, err
	}
	if cfg.L1.LineBytes != cfg.L2.LineBytes {
		return nil, fmt.Errorf("cache: L1 and L2 line sizes differ (%d vs %d)", cfg.L1.LineBytes, cfg.L2.LineBytes)
	}
	h := &Hierarchy{l2: newLevel(cfg.L2, obsL2Residency), memory: memory, memLatency: cfg.MemLatency}
	for i := 0; i < cfg.NumCUs; i++ {
		h.l1s = append(h.l1s, newLevel(cfg.L1, obsL1Residency))
	}
	return h, nil
}

// TrackL1 attaches a lifetime tracker to the given CU's L1. The tracker
// must have Sets()*Ways words of LineBytes bytes.
func (h *Hierarchy) TrackL1(cu int, t *lifetime.Tracker) { h.l1s[cu].tracker = t }

// TrackL2 attaches a lifetime tracker to the shared L2.
func (h *Hierarchy) TrackL2(t *lifetime.Tracker) { h.l2.tracker = t }

// L1Slots returns (sets, ways) of the L1 caches, for building layouts and
// trackers.
func (h *Hierarchy) L1Slots() (sets, ways int) { return h.l1s[0].sets, h.l1s[0].cfg.Ways }

// L2Slots returns (sets, ways) of the L2.
func (h *Hierarchy) L2Slots() (sets, ways int) { return h.l2.sets, h.l2.cfg.Ways }

// LineBytes returns the cache line size.
func (h *Hierarchy) LineBytes() int { return h.l2.cfg.LineBytes }

// accessL2Read brings addr's line into L2 (if missing) and emits whole-line
// or partial read events. wholeLine selects whether the read consumes the
// full line (an L1 fill) or only n bytes (uncached/partial semantics are
// not used today but kept explicit). It returns the latency beyond L1.
func (h *Hierarchy) accessL2Read(addr uint32, n int, cycle uint64, wholeLine bool) uint64 {
	lat := h.l2.cfg.HitLatency
	way := h.l2.lookup(addr)
	if way < 0 {
		h.l2.misses++
		way = h.l2.victim(addr)
		h.l2.fill(addr, way, cycle, h.memory)
		lat += h.memLatency
	} else {
		h.l2.hits++
	}
	if wholeLine {
		h.l2.readLine(addr, way, cycle)
	} else {
		h.l2.readBytes(addr, way, n, cycle)
	}
	return lat
}

// Load simulates a data load of size bytes at addr by compute unit cu,
// returning the access latency. The access must not cross a line boundary.
func (h *Hierarchy) Load(cu int, addr uint32, size int, cycle uint64) uint64 {
	l1 := h.l1s[cu]
	if way := l1.lookup(addr); way >= 0 {
		l1.hits++
		l1.readBytes(addr, way, size, cycle)
		return l1.cfg.HitLatency
	}
	l1.misses++
	lat := l1.cfg.HitLatency + h.accessL2Read(addr, size, cycle, true)
	way := l1.victim(addr)
	l1.fill(addr, way, cycle, h.memory)
	l1.readBytes(addr, way, size, cycle)
	return lat
}

// Store simulates a data store of size bytes at addr by compute unit cu.
// vers supplies the new version of each stored byte. The L1 is
// write-through (update on hit, no allocate on miss); the L2 is
// write-back, write-allocate. The caller must update mem.Memory with the
// stored values after Store returns, so that line fills performed here
// observe pre-store memory versions.
func (h *Hierarchy) Store(cu int, addr uint32, size int, cycle uint64, vers []dataflow.VersionID) uint64 {
	l1 := h.l1s[cu]
	if way := l1.lookup(addr); way >= 0 {
		l1.hits++
		l1.writeBytes(addr, way, size, cycle, vers, false)
	} else {
		l1.misses++
	}
	lat := h.l2.cfg.HitLatency
	way := h.l2.lookup(addr)
	if way < 0 {
		h.l2.misses++
		way = h.l2.victim(addr)
		h.l2.fill(addr, way, cycle, h.memory)
		lat += h.memLatency
	} else {
		h.l2.hits++
	}
	h.l2.writeBytes(addr, way, size, cycle, vers, true)
	return lat
}

// FlushL1s invalidates every L1 line (kernel-boundary behavior on real
// GPUs). L1s are write-through, so no data motion results.
func (h *Hierarchy) FlushL1s(cycle uint64) {
	for _, l1 := range h.l1s {
		for set := 0; set < l1.sets; set++ {
			for w := 0; w < l1.cfg.Ways; w++ {
				l1.evict(set, w, cycle)
			}
		}
	}
}

// FlushAll flushes the L1s and writes back / invalidates the entire L2.
// Dirty L2 lines emit dirty-close (writeback) events. Call at end of
// simulation so end-of-run cache state resolves correctly.
func (h *Hierarchy) FlushAll(cycle uint64) {
	h.FlushL1s(cycle)
	for set := 0; set < h.l2.sets; set++ {
		for w := 0; w < h.l2.cfg.Ways; w++ {
			h.l2.evict(set, w, cycle)
		}
	}
}

// Stats reports aggregate hit/miss/eviction counts. Evictions include
// the end-of-run flushes (every resident line is closed out once).
type Stats struct {
	L1Hits, L1Misses, L1Evictions uint64
	L2Hits, L2Misses, L2Evictions uint64
}

// Stats returns hit/miss/eviction counters summed over all L1s plus the
// L2.
func (h *Hierarchy) Stats() Stats {
	var s Stats
	for _, l1 := range h.l1s {
		s.L1Hits += l1.hits
		s.L1Misses += l1.misses
		s.L1Evictions += l1.evictions
	}
	s.L2Hits = h.l2.hits
	s.L2Misses = h.l2.misses
	s.L2Evictions = h.l2.evictions
	return s
}
