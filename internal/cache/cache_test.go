package cache

import (
	"testing"

	"mbavf/internal/dataflow"
	"mbavf/internal/lifetime"
	"mbavf/internal/mem"
)

func smallHier(t *testing.T) (*Hierarchy, *mem.Memory, *dataflow.Graph) {
	t.Helper()
	g := dataflow.NewGraph()
	m := mem.New(1 << 16)
	cfg := HierConfig{
		NumCUs:     2,
		L1:         Config{SizeBytes: 512, LineBytes: 64, Ways: 2, HitLatency: 4},
		L2:         Config{SizeBytes: 2048, LineBytes: 64, Ways: 2, HitLatency: 24},
		MemLatency: 120,
	}
	h, err := NewHierarchy(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	return h, m, g
}

func TestConfigSets(t *testing.T) {
	c := Config{SizeBytes: 16 * 1024, LineBytes: 64, Ways: 4}
	if c.Sets() != 64 {
		t.Errorf("16KB 4-way 64B: sets = %d, want 64", c.Sets())
	}
	d := DefaultHierConfig()
	if d.L2.Sets() != 256 {
		t.Errorf("256KB 16-way 64B: sets = %d, want 256", d.L2.Sets())
	}
}

func TestInvalidConfigs(t *testing.T) {
	m := mem.New(64)
	bad := []HierConfig{
		{NumCUs: 0, L1: Config{64, 64, 1, 1}, L2: Config{64, 64, 1, 1}},
		{NumCUs: 1, L1: Config{0, 64, 1, 1}, L2: Config{64, 64, 1, 1}},
		{NumCUs: 1, L1: Config{100, 64, 1, 1}, L2: Config{64, 64, 1, 1}},
		{NumCUs: 1, L1: Config{64, 64, 1, 1}, L2: Config{128, 32, 1, 1}}, // line mismatch
	}
	for i, cfg := range bad {
		if _, err := NewHierarchy(cfg, m); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestMissThenHitLatency(t *testing.T) {
	h, _, _ := smallHier(t)
	lat1 := h.Load(0, 0x1000, 4, 10)
	if lat1 != 4+24+120 {
		t.Errorf("cold miss latency = %d, want 148", lat1)
	}
	lat2 := h.Load(0, 0x1004, 4, 20)
	if lat2 != 4 {
		t.Errorf("hit latency = %d, want 4", lat2)
	}
	s := h.Stats()
	if s.L1Hits != 1 || s.L1Misses != 1 || s.L2Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestL2HitAfterOtherCU(t *testing.T) {
	h, _, _ := smallHier(t)
	h.Load(0, 0x2000, 4, 10)
	lat := h.Load(1, 0x2000, 4, 20) // other CU: L1 miss, L2 hit
	if lat != 4+24 {
		t.Errorf("L2 hit latency = %d, want 28", lat)
	}
	if s := h.Stats(); s.L2Hits != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestL1TrackerEvents(t *testing.T) {
	h, _, _ := smallHier(t)
	sets, ways := h.L1Slots()
	tr := lifetime.NewTracker(sets*ways, 64)
	h.TrackL1(0, tr)

	h.Load(0, 0x1000, 4, 10) // fill + read bytes 0..3
	h.Load(0, 0x1004, 4, 30) // read bytes 4..7
	h.FlushAll(100)          // clean evict

	// Find the slot that was filled: set of 0x1000.
	set := int(0x1000/64) % sets
	slot := set * ways // way 0 (first fill)
	segs := tr.Segments(slot, 4)
	// Byte 4: fill@10 -> read@30 (ACE), read@30 -> evict@100 (dead).
	if len(segs) != 2 || segs[0].Kind != lifetime.SegACE || segs[1].Kind != lifetime.SegDead {
		t.Fatalf("byte 4 segments = %+v", segs)
	}
	if segs[0].Start != 10 || segs[0].End != 30 {
		t.Errorf("byte 4 ACE span = [%d,%d), want [10,30)", segs[0].Start, segs[0].End)
	}
	// Byte 32 was never read: single dead segment.
	segs = tr.Segments(slot, 32)
	if len(segs) != 1 || segs[0].Kind != lifetime.SegDead {
		t.Errorf("untouched byte segments = %+v", segs)
	}
}

func TestStoreWriteThroughDirtyL2(t *testing.T) {
	h, m, g := smallHier(t)
	l2sets, l2ways := h.L2Slots()
	tr2 := lifetime.NewTracker(l2sets*l2ways, 64)
	h.TrackL2(tr2)

	ver := g.New(dataflow.TransferNone, 0)
	vers := []dataflow.VersionID{ver, ver, ver, ver}
	h.Store(0, 0x3000, 4, 10, vers)
	if err := m.StoreWord(0x3000, 0xABCD, [4]dataflow.VersionID{ver, ver, ver, ver}); err != nil {
		t.Fatal(err)
	}
	h.FlushAll(200) // dirty L2 line writes back

	set := int(0x3000/64) % l2sets
	slot := set * l2ways
	segs := tr2.Segments(slot, 0)
	// fill@10 (zero-length before store) -> store opens v -> dirty evict@200: pending.
	last := segs[len(segs)-1]
	if last.Kind != lifetime.SegPending {
		t.Errorf("stored byte should end pending, got %+v", segs)
	}
	if last.Version != ver {
		t.Errorf("pending version = %d, want %d", last.Version, ver)
	}
	// An unstored byte of the same line is also written back (line-granular
	// dirty): pending with its fill version (ground).
	segs = tr2.Segments(slot, 8)
	if len(segs) == 0 || segs[len(segs)-1].Kind != lifetime.SegPending {
		t.Errorf("clean byte of dirty line should end pending, got %+v", segs)
	}
}

func TestStoreMissDoesNotAllocateL1(t *testing.T) {
	h, _, _ := smallHier(t)
	h.Store(0, 0x4000, 4, 10, nil)
	// A subsequent load must miss L1 (write-no-allocate) but hit L2.
	lat := h.Load(0, 0x4000, 4, 20)
	if lat != 4+24 {
		t.Errorf("load after store-miss latency = %d, want 28 (L2 hit)", lat)
	}
}

func TestStoreHitUpdatesL1(t *testing.T) {
	h, _, _ := smallHier(t)
	h.Load(0, 0x5000, 4, 10) // allocate in L1
	h.Store(0, 0x5000, 4, 20, nil)
	lat := h.Load(0, 0x5000, 4, 30)
	if lat != 4 {
		t.Errorf("load after store-hit latency = %d, want 4 (L1 hit)", lat)
	}
}

func TestLRUEviction(t *testing.T) {
	h, _, _ := smallHier(t)
	// L1: 512B, 2-way, 64B lines -> 4 sets. Addresses mapping to set 0:
	// line addresses 0, 256, 512. Fill two ways then a third evicts LRU.
	h.Load(0, 0, 4, 10)
	h.Load(0, 256, 4, 20)
	h.Load(0, 0, 4, 30) // touch 0: now 256 is LRU
	h.Load(0, 512, 4, 40)
	// 0 should still hit; 256 should miss.
	if lat := h.Load(0, 0, 4, 50); lat != 4 {
		t.Errorf("line 0 evicted despite recent use (lat=%d)", lat)
	}
	if lat := h.Load(0, 256, 4, 60); lat == 4 {
		t.Error("line 256 should have been evicted as LRU")
	}
}

func TestFlushL1KeepsL2(t *testing.T) {
	h, _, _ := smallHier(t)
	h.Load(0, 0x6000, 4, 10)
	h.FlushL1s(20)
	lat := h.Load(0, 0x6000, 4, 30)
	if lat != 4+24 {
		t.Errorf("post-flush load latency = %d, want 28 (L2 hit)", lat)
	}
}

func TestL2FillVersionsFromMemory(t *testing.T) {
	h, m, g := smallHier(t)
	l2sets, l2ways := h.L2Slots()
	tr2 := lifetime.NewTracker(l2sets*l2ways, 64)
	h.TrackL2(tr2)
	if err := m.SetInput(g, 0x7000, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	wantVer := m.VersionAt(0x7001)
	h.Load(0, 0x7000, 4, 10)
	h.FlushAll(50)
	set := int(0x7000/64) % l2sets
	segs := tr2.Segments(set*l2ways, 1)
	if len(segs) == 0 || segs[0].Version != wantVer {
		t.Errorf("L2 fill version = %+v, want version %d", segs, wantVer)
	}
}
