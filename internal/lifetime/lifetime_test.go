package lifetime

import (
	"testing"

	"mbavf/internal/dataflow"
)

func TestFillReadEvictClean(t *testing.T) {
	tr := NewTracker(2, 4)
	tr.Open(0, 0, 10, 1)
	tr.Read(0, 0, 20)
	tr.CloseClean(0, 0, 35)
	tr.Finish(100)
	segs := tr.Segments(0, 0)
	if len(segs) != 2 {
		t.Fatalf("got %d segments, want 2: %+v", len(segs), segs)
	}
	if segs[0] != (Seg{10, 20, SegACE, 1}) {
		t.Errorf("seg0 = %+v, want fill->read ACE", segs[0])
	}
	if segs[1] != (Seg{20, 35, SegDead, 1}) {
		t.Errorf("seg1 = %+v, want read->clean-evict dead", segs[1])
	}
}

func TestMultipleReadsChainACE(t *testing.T) {
	tr := NewTracker(1, 1)
	tr.Open(0, 0, 0, 7)
	tr.Read(0, 0, 5)
	tr.Read(0, 0, 9)
	tr.CloseClean(0, 0, 12)
	segs := tr.Segments(0, 0)
	if len(segs) != 3 {
		t.Fatalf("got %d segments: %+v", len(segs), segs)
	}
	if segs[0].Kind != SegACE || segs[1].Kind != SegACE || segs[2].Kind != SegDead {
		t.Errorf("kinds = %v %v %v, want ace ace dead", segs[0].Kind, segs[1].Kind, segs[2].Kind)
	}
	if segs[1].Start != 5 || segs[1].End != 9 {
		t.Errorf("seg1 span = [%d,%d), want [5,9)", segs[1].Start, segs[1].End)
	}
}

func TestOverwriteClosesDead(t *testing.T) {
	tr := NewTracker(1, 1)
	tr.Open(0, 0, 0, 1)
	tr.Open(0, 0, 8, 2) // overwrite without read: first value dead
	tr.Read(0, 0, 15)
	tr.Finish(20)
	segs := tr.Segments(0, 0)
	if len(segs) != 3 {
		t.Fatalf("got %d segments: %+v", len(segs), segs)
	}
	if segs[0].Kind != SegDead || segs[0].Version != 1 {
		t.Errorf("overwritten value segment = %+v, want dead v1", segs[0])
	}
	if segs[1].Kind != SegACE || segs[1].Version != 2 {
		t.Errorf("read segment = %+v, want ace v2", segs[1])
	}
	if segs[2].Kind != SegDead {
		t.Errorf("tail segment = %+v, want dead", segs[2])
	}
}

func TestDirtyEvictionPending(t *testing.T) {
	tr := NewTracker(1, 1)
	tr.Open(0, 0, 0, 9)
	tr.Read(0, 0, 4)
	tr.CloseDirty(0, 0, 30)
	segs := tr.Segments(0, 0)
	if len(segs) != 2 {
		t.Fatalf("got %d segments: %+v", len(segs), segs)
	}
	if segs[1] != (Seg{4, 30, SegPending, 9}) {
		t.Errorf("dirty tail = %+v, want pending v9 [4,30)", segs[1])
	}
}

func TestZeroLengthSegmentsDropped(t *testing.T) {
	tr := NewTracker(1, 1)
	tr.Open(0, 0, 10, 1)
	tr.Read(0, 0, 10) // same-cycle fill+read
	tr.CloseClean(0, 0, 10)
	if n := len(tr.Segments(0, 0)); n != 0 {
		t.Errorf("got %d segments, want 0 (all zero-length)", n)
	}
}

func TestReadWithoutOpenIgnored(t *testing.T) {
	tr := NewTracker(1, 1)
	tr.Read(0, 0, 5)
	tr.CloseClean(0, 0, 8)
	if n := len(tr.Segments(0, 0)); n != 0 {
		t.Errorf("events on empty slot must not create segments, got %d", n)
	}
}

func TestFinishClosesOpenSlots(t *testing.T) {
	tr := NewTracker(2, 2)
	tr.Open(1, 1, 3, 4)
	tr.Finish(50)
	segs := tr.Segments(1, 1)
	if len(segs) != 1 || segs[0] != (Seg{3, 50, SegDead, 4}) {
		t.Errorf("finish segment = %+v", segs)
	}
	// Finish is terminal for held state: another Finish adds nothing.
	tr.Finish(60)
	if len(tr.Segments(1, 1)) != 1 {
		t.Error("double Finish added segments")
	}
}

func TestSegmentCount(t *testing.T) {
	tr := NewTracker(2, 2)
	tr.Open(0, 0, 0, 1)
	tr.Read(0, 0, 5)
	tr.Open(1, 1, 2, 2)
	tr.Finish(10)
	if got := tr.SegmentCount(); got != 3 {
		t.Errorf("SegmentCount = %d, want 3", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	tr := NewTracker(1, 4)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tr.Open(0, 4, 0, 1)
}

func TestSlotIsolation(t *testing.T) {
	tr := NewTracker(2, 2)
	tr.Open(0, 0, 0, 1)
	tr.Open(0, 1, 0, 2)
	tr.Read(0, 0, 10)
	tr.CloseClean(0, 1, 10)
	tr.Finish(20)
	if tr.Segments(0, 0)[0].Kind != SegACE {
		t.Error("slot (0,0) should have ACE first segment")
	}
	if tr.Segments(0, 1)[0].Kind != SegDead {
		t.Error("slot (0,1) should have dead segment")
	}
	if len(tr.Segments(1, 0)) != 0 || len(tr.Segments(1, 1)) != 0 {
		t.Error("untouched word has segments")
	}
}

func TestVersionsCarriedThrough(t *testing.T) {
	tr := NewTracker(1, 1)
	vers := []dataflow.VersionID{11, 22, 33}
	c := uint64(0)
	for _, v := range vers {
		tr.Open(0, 0, c, v)
		tr.Read(0, 0, c+3)
		c += 10
	}
	tr.Finish(c)
	segs := tr.Segments(0, 0)
	want := []dataflow.VersionID{11, 11, 22, 22, 33, 33}
	if len(segs) != len(want) {
		t.Fatalf("got %d segments: %+v", len(segs), segs)
	}
	for i, s := range segs {
		if s.Version != want[i] {
			t.Errorf("seg %d version = %d, want %d", i, s.Version, want[i])
		}
	}
}
