// Package lifetime tracks the occupancy and access history of every byte
// slot in a hardware structure (a cache data array, a register file) and
// reduces it to per-byte ACE lifetime segments.
//
// The classification follows standard ACE lifetime analysis (Biswas et
// al.), extended with deferred resolution for dirty evictions:
//
//   - a segment ending in a read is ACE: a flip during it corrupts the
//     value consumed by that read;
//   - a segment ending in an overwrite or a clean eviction is unACE: the
//     flipped copy is discarded;
//   - a segment ending in a dirty eviction is Pending: the flip escapes to
//     the next memory level, so it is ACE exactly when the evicted value
//     (version) is consumed after the eviction — resolved later against
//     the dataflow graph.
//
// Slots are identified by (word, byte): word is a physical slot index
// (cache line frame = set*ways+way, or register instance = thread*regs +
// reg), not a memory address — the structure under analysis is the SRAM,
// whose content changes over time.
package lifetime

import (
	"fmt"

	"mbavf/internal/dataflow"
	"mbavf/internal/interval"
	"mbavf/internal/obs"
)

// Observability series: the distribution of lifetime-segment lengths in
// cycles, split by resolved ACEness kind. Recorded once per tracker at
// Finish (a single pass over the finished timeline), never on the
// per-event hot path.
var (
	obsACESegCycles     = obs.NewHistogram("lifetime.ace_seg_cycles")
	obsPendingSegCycles = obs.NewHistogram("lifetime.pending_seg_cycles")
)

// SegKind classifies a lifetime segment's microarchitectural ACEness.
type SegKind uint8

const (
	// SegDead marks time when a flip in the byte cannot propagate: the
	// value is overwritten, discarded on clean eviction, or never touched
	// again.
	SegDead SegKind = iota
	// SegACE marks time ending in an architectural read of the byte.
	SegACE
	// SegPending marks time ending in a dirty eviction; ACEness depends
	// on whether the evicted version is consumed after the eviction.
	SegPending
)

func (k SegKind) String() string {
	switch k {
	case SegDead:
		return "dead"
	case SegACE:
		return "ace"
	case SegPending:
		return "pending"
	default:
		return fmt.Sprintf("SegKind(%d)", uint8(k))
	}
}

// Seg is one lifetime segment of one byte slot: during [Start, End) the
// slot held Version and the segment's ACEness is Kind (Pending resolved
// later).
type Seg struct {
	Start, End interval.Cycle
	Kind       SegKind
	Version    dataflow.VersionID
}

// Tracker accumulates lifetime segments for a words x bytesPerWord
// structure.
type Tracker struct {
	words, bytesPerWord int
	segs                [][]Seg
	held                []bool
	version             []dataflow.VersionID
	start               []interval.Cycle
}

// NewTracker returns a tracker for a structure of words logical words of
// bytesPerWord bytes each.
func NewTracker(words, bytesPerWord int) *Tracker {
	n := words * bytesPerWord
	return &Tracker{
		words:        words,
		bytesPerWord: bytesPerWord,
		segs:         make([][]Seg, n),
		held:         make([]bool, n),
		version:      make([]dataflow.VersionID, n),
		start:        make([]interval.Cycle, n),
	}
}

// Words returns the number of word slots tracked.
func (t *Tracker) Words() int { return t.words }

// BytesPerWord returns the byte width of each word slot.
func (t *Tracker) BytesPerWord() int { return t.bytesPerWord }

func (t *Tracker) idx(word, b int) int {
	if word < 0 || word >= t.words || b < 0 || b >= t.bytesPerWord {
		panic(fmt.Sprintf("lifetime: slot (%d,%d) out of range %dx%d", word, b, t.words, t.bytesPerWord))
	}
	return word*t.bytesPerWord + b
}

func (t *Tracker) close(i int, cycle interval.Cycle, kind SegKind) {
	if !t.held[i] {
		return
	}
	if cycle > t.start[i] {
		t.segs[i] = append(t.segs[i], Seg{Start: t.start[i], End: cycle, Kind: kind, Version: t.version[i]})
	}
	t.start[i] = cycle
}

// Open records that the byte slot starts holding version ver at cycle
// (a cache fill or a write). Any value previously held is closed as dead:
// an overwrite discards flips.
func (t *Tracker) Open(word, b int, cycle interval.Cycle, ver dataflow.VersionID) {
	i := t.idx(word, b)
	t.close(i, cycle, SegDead)
	t.held[i] = true
	t.version[i] = ver
	t.start[i] = cycle
}

// Read records an architectural read of the byte slot at cycle: the time
// since the previous event is ACE.
func (t *Tracker) Read(word, b int, cycle interval.Cycle) {
	i := t.idx(word, b)
	if !t.held[i] {
		return
	}
	t.close(i, cycle, SegACE)
}

// CloseClean records that the slot's value is discarded at cycle (clean
// eviction or invalidation): the tail time is dead.
func (t *Tracker) CloseClean(word, b int, cycle interval.Cycle) {
	i := t.idx(word, b)
	t.close(i, cycle, SegDead)
	t.held[i] = false
}

// CloseDirty records that the slot's value escapes to the next level at
// cycle (dirty eviction / writeback): the tail time is pending on later
// consumption of the version.
func (t *Tracker) CloseDirty(word, b int, cycle interval.Cycle) {
	i := t.idx(word, b)
	t.close(i, cycle, SegPending)
	t.held[i] = false
}

// Finish closes every still-open slot as dead at the end cycle. Callers
// that need dirty end-of-run state to stay visible should flush their
// structures (producing CloseDirty events) before calling Finish.
func (t *Tracker) Finish(end interval.Cycle) {
	for i := range t.held {
		if t.held[i] {
			t.close(i, end, SegDead)
			t.held[i] = false
		}
	}
	t.publishObs()
}

// publishObs records the finished timeline's ACE and pending segment
// lengths into the lifetime histograms via goroutine-local accumulators.
func (t *Tracker) publishObs() {
	if !obs.Enabled() {
		return
	}
	var ace, pending obs.LocalHist
	for _, segs := range t.segs {
		for _, s := range segs {
			switch s.Kind {
			case SegACE:
				ace.Observe(s.End - s.Start)
			case SegPending:
				pending.Observe(s.End - s.Start)
			}
		}
	}
	ace.FlushTo(obsACESegCycles)
	pending.FlushTo(obsPendingSegCycles)
}

// Segments returns the lifetime segments of byte b of word. The slice is
// owned by the tracker.
func (t *Tracker) Segments(word, b int) []Seg {
	return t.segs[t.idx(word, b)]
}

// SegmentCount returns the total number of segments recorded, for
// reporting and memory budgeting.
func (t *Tracker) SegmentCount() int {
	n := 0
	for _, s := range t.segs {
		n += len(s)
	}
	return n
}

// Snapshot is a serializable copy of a tracker's recorded segments, used
// to persist measurement artifacts (gob/JSON friendly: exported fields
// only).
type Snapshot struct {
	Words        int
	BytesPerWord int
	Segs         [][]Seg
}

// Snapshot copies the tracker's segments. Call after Finish; open slots
// are not captured.
func (t *Tracker) Snapshot() Snapshot {
	s := Snapshot{Words: t.words, BytesPerWord: t.bytesPerWord, Segs: make([][]Seg, len(t.segs))}
	for i, segs := range t.segs {
		s.Segs[i] = append([]Seg(nil), segs...)
	}
	return s
}

// Adopt builds a finished tracker directly over segs without copying:
// the caller hands over ownership of the slice and must not mutate it
// afterwards. It is the rehydration path of the run-artifact store,
// where the decoded segments are freshly allocated and copying them
// again would double decode cost.
func Adopt(words, bytesPerWord int, segs [][]Seg) (*Tracker, error) {
	if words <= 0 || bytesPerWord <= 0 || len(segs) != words*bytesPerWord {
		return nil, fmt.Errorf("lifetime: inconsistent adoption (%d words x %d bytes, %d slots)",
			words, bytesPerWord, len(segs))
	}
	t := NewTracker(words, bytesPerWord)
	t.segs = segs
	return t, nil
}

// FromSnapshot reconstructs a finished tracker from a snapshot.
func FromSnapshot(s Snapshot) (*Tracker, error) {
	if s.Words <= 0 || s.BytesPerWord <= 0 || len(s.Segs) != s.Words*s.BytesPerWord {
		return nil, fmt.Errorf("lifetime: inconsistent snapshot (%d words x %d bytes, %d slots)",
			s.Words, s.BytesPerWord, len(s.Segs))
	}
	t := NewTracker(s.Words, s.BytesPerWord)
	for i, segs := range s.Segs {
		t.segs[i] = append([]Seg(nil), segs...)
	}
	return t, nil
}
