package lifetime

import (
	"slices"

	"mbavf/internal/interval"
)

// Packed is a word-packed-solver view of a set of byte-slot timelines
// merged onto one breakpoint axis. Instead of one cursor per slot walked
// independently per fault group (the scalar solver's representation), a
// Packed holds the sorted union of every slot's segment boundaries below
// a horizon, plus, per boundary, the slots whose piecewise-constant
// state changes there. A consumer replays the stream once, maintaining
// whatever per-slot derived state it needs (the MB-AVF engine keeps
// 64-bit ACE occupancy words), touching only the slots that changed.
//
// Span i covers [Times(i), Times(i+1)) — the last span ends at the
// horizon — and Changes(i) are the slot transitions taking effect at the
// span's start. Span 0 always starts at cycle 0; slots with no change
// recorded yet are in the dead (gap) state.
type Packed struct {
	horizon interval.Cycle
	slots   [][]Seg
	times   []interval.Cycle
	starts  []int32
	changes []SlotChange
}

// SlotChange records that a slot's state changes at a breakpoint: the
// slot enters segment Seg of its timeline, or goes dead when Seg is -1.
type SlotChange struct {
	Slot int32
	Seg  int32
}

// Horizon returns the clamp cycle the timelines were packed under.
func (p *Packed) Horizon() interval.Cycle { return p.horizon }

// SlotCount returns the number of slot timelines merged.
func (p *Packed) SlotCount() int { return len(p.slots) }

// Spans returns the number of breakpoint spans.
func (p *Packed) Spans() int { return len(p.times) }

// Span returns the half-open cycle range of span i.
func (p *Packed) Span(i int) (start, end interval.Cycle) {
	start = p.times[i]
	if i+1 < len(p.times) {
		return start, p.times[i+1]
	}
	return start, p.horizon
}

// Changes returns the slot transitions taking effect at the start of
// span i. The slice is owned by the Packed.
func (p *Packed) Changes(i int) []SlotChange {
	return p.changes[p.starts[i]:p.starts[i+1]]
}

// Seg returns segment seg of slot s as packed.
func (p *Packed) Seg(s, seg int32) Seg { return p.slots[s][seg] }

// Unpack reconstructs per-slot segment lists from the breakpoint stream:
// the packed<->segment round trip. The result equals the packed input
// with segments clamped to the horizon and empty or beyond-horizon
// segments dropped.
func (p *Packed) Unpack() [][]Seg {
	out := make([][]Seg, len(p.slots))
	cur := make([]int32, len(p.slots))
	open := make([]interval.Cycle, len(p.slots))
	for i := range cur {
		cur[i] = -1
	}
	for i := 0; i < p.Spans(); i++ {
		t, _ := p.Span(i)
		for _, ch := range p.Changes(i) {
			if prev := cur[ch.Slot]; prev >= 0 {
				sg := p.slots[ch.Slot][prev]
				out[ch.Slot] = append(out[ch.Slot], Seg{Start: open[ch.Slot], End: t, Kind: sg.Kind, Version: sg.Version})
			}
			cur[ch.Slot] = ch.Seg
			open[ch.Slot] = t
		}
	}
	for s := range cur {
		if cur[s] >= 0 {
			sg := p.slots[s][cur[s]]
			out[s] = append(out[s], Seg{Start: open[s], End: p.horizon, Kind: sg.Kind, Version: sg.Version})
		}
	}
	return out
}

// packedEvent is one slot transition before merging.
type packedEvent struct {
	time interval.Cycle
	slot int32
	seg  int32
}

// Packer merges slot timelines into Packed streams, reusing its internal
// buffers across calls: the packed solver packs one wordline's slots per
// row, and per-row allocation would dominate small rows. The returned
// Packed aliases the packer's buffers and is valid until the next Pack.
// A Packer is not safe for concurrent use; the Packed views it returns
// are read-only and safe to share.
type Packer struct {
	events  []packedEvent
	scratch []packedEvent
	out     Packed
}

// sortEvents orders events by (time, slot). Events are generated as a
// concatenation of per-slot runs, each already time-sorted, so a stable
// LSD radix sort on the time bytes yields exactly the (time, slot)
// order — and runs several times faster than a comparison sort, which
// dominated the packed solver's profile.
func (pk *Packer) sortEvents() {
	ev := pk.events
	if len(ev) < 48 {
		slices.SortFunc(ev, func(a, b packedEvent) int {
			if a.time != b.time {
				if a.time < b.time {
					return -1
				}
				return 1
			}
			return int(a.slot) - int(b.slot)
		})
		return
	}
	var maxT interval.Cycle
	for i := range ev {
		if ev[i].time > maxT {
			maxT = ev[i].time
		}
	}
	if cap(pk.scratch) < len(ev) {
		pk.scratch = make([]packedEvent, len(ev))
	}
	src, dst := ev, pk.scratch[:len(ev)]
	var counts [256]int
	for shift := uint(0); maxT>>shift != 0; shift += 8 {
		for i := range counts {
			counts[i] = 0
		}
		for i := range src {
			counts[(src[i].time>>shift)&0xff]++
		}
		sum := 0
		for i := range counts {
			counts[i], sum = sum, sum+counts[i]
		}
		for i := range src {
			b := (src[i].time >> shift) & 0xff
			dst[counts[b]] = src[i]
			counts[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &ev[0] {
		copy(ev, src)
	}
}

// Pack merges the given per-slot segment lists into one breakpoint
// stream clamped to [0, horizon). Each slot's segments must be sorted,
// non-overlapping, and non-empty — the invariant Tracker timelines hold
// by construction; empty segments and segments at or beyond the horizon
// are ignored, and segments straddling it are clamped.
func (pk *Packer) Pack(slots [][]Seg, horizon interval.Cycle) *Packed {
	ev := pk.events[:0]
	for s := range slots {
		var openEnd interval.Cycle
		opened := false
		for j, sg := range slots[s] {
			if sg.End <= sg.Start || sg.Start >= horizon {
				continue
			}
			if opened && sg.Start > openEnd {
				ev = append(ev, packedEvent{openEnd, int32(s), -1})
			}
			ev = append(ev, packedEvent{sg.Start, int32(s), int32(j)})
			opened = true
			openEnd = sg.End
		}
		if opened && openEnd < horizon {
			ev = append(ev, packedEvent{openEnd, int32(s), -1})
		}
	}
	pk.events = ev
	pk.sortEvents()
	ev = pk.events

	out := &pk.out
	out.horizon = horizon
	out.slots = slots
	out.times = out.times[:0]
	out.starts = out.starts[:0]
	out.changes = out.changes[:0]
	// Span 0 always starts at cycle 0 so consumers can assume complete
	// coverage of [0, horizon).
	out.times = append(out.times, 0)
	out.starts = append(out.starts, 0)
	for _, e := range ev {
		if e.time != out.times[len(out.times)-1] {
			out.starts = append(out.starts, int32(len(out.changes)))
			out.times = append(out.times, e.time)
		}
		out.changes = append(out.changes, SlotChange{Slot: e.slot, Seg: e.seg})
	}
	out.starts = append(out.starts, int32(len(out.changes)))
	return out
}

// PackSlots is a one-shot Pack for callers without a reusable Packer.
func PackSlots(slots [][]Seg, horizon interval.Cycle) *Packed {
	var pk Packer
	return pk.Pack(slots, horizon)
}
