package lifetime

import (
	"testing"

	"mbavf/internal/dataflow"
)

func TestPackHandcrafted(t *testing.T) {
	slots := [][]Seg{
		{{Start: 2, End: 5, Kind: SegACE}, {Start: 5, End: 9, Kind: SegDead}},
		{{Start: 0, End: 4, Kind: SegPending, Version: 3}},
		nil,
	}
	p := PackSlots(slots, 12)

	if p.SlotCount() != 3 {
		t.Fatalf("slot count %d, want 3", p.SlotCount())
	}
	// Breakpoints: 0 (slot 1 opens), 2 (slot 0 opens), 4 (slot 1 gap),
	// 5 (slot 0 seg change), 9 (slot 0 gap).
	wantTimes := []uint64{0, 2, 4, 5, 9}
	if p.Spans() != len(wantTimes) {
		t.Fatalf("spans %d, want %d", p.Spans(), len(wantTimes))
	}
	for i, wt := range wantTimes {
		start, end := p.Span(i)
		if start != wt {
			t.Errorf("span %d starts at %d, want %d", i, start, wt)
		}
		wantEnd := uint64(12)
		if i+1 < len(wantTimes) {
			wantEnd = wantTimes[i+1]
		}
		if end != wantEnd {
			t.Errorf("span %d ends at %d, want %d", i, end, wantEnd)
		}
	}

	wantChanges := [][]SlotChange{
		{{Slot: 1, Seg: 0}},
		{{Slot: 0, Seg: 0}},
		{{Slot: 1, Seg: -1}},
		{{Slot: 0, Seg: 1}},
		{{Slot: 0, Seg: -1}},
	}
	for i, want := range wantChanges {
		got := p.Changes(i)
		if len(got) != len(want) {
			t.Fatalf("span %d changes %+v, want %+v", i, got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Errorf("span %d change %d = %+v, want %+v", i, j, got[j], want[j])
			}
		}
	}

	if sg := p.Seg(1, 0); sg.Version != 3 || sg.Kind != SegPending {
		t.Errorf("Seg(1,0) = %+v", sg)
	}
}

func TestPackEmpty(t *testing.T) {
	p := PackSlots([][]Seg{nil, nil}, 7)
	if p.Spans() != 1 {
		t.Fatalf("spans %d, want 1", p.Spans())
	}
	if start, end := p.Span(0); start != 0 || end != 7 {
		t.Fatalf("span 0 = [%d,%d), want [0,7)", start, end)
	}
	if len(p.Changes(0)) != 0 {
		t.Fatalf("changes %+v, want none", p.Changes(0))
	}
	for s, segs := range p.Unpack() {
		if len(segs) != 0 {
			t.Fatalf("slot %d unpacked %+v, want none", s, segs)
		}
	}
}

func TestPackClampsToHorizon(t *testing.T) {
	slots := [][]Seg{
		{{Start: 1, End: 20, Kind: SegACE}},        // straddles the horizon
		{{Start: 10, End: 15, Kind: SegDead}},      // entirely beyond it
		{{Start: 3, End: 3, Kind: SegACE}},         // empty
		{{Start: 0, End: 2}, {Start: 8, End: 100}}, // gap then straddle
	}
	p := PackSlots(slots, 10)
	got := p.Unpack()
	want := [][]Seg{
		{{Start: 1, End: 10, Kind: SegACE}},
		nil,
		nil,
		{{Start: 0, End: 2}, {Start: 8, End: 10}},
	}
	for s := range want {
		if len(got[s]) != len(want[s]) {
			t.Fatalf("slot %d: %+v, want %+v", s, got[s], want[s])
		}
		for j := range want[s] {
			if got[s][j] != want[s][j] {
				t.Errorf("slot %d seg %d: %+v, want %+v", s, j, got[s][j], want[s][j])
			}
		}
	}
}

func TestPackAdjacentSegmentsNoGap(t *testing.T) {
	// Back-to-back segments must not emit a dead transition between them.
	slots := [][]Seg{{
		{Start: 0, End: 3, Kind: SegACE},
		{Start: 3, End: 6, Kind: SegDead},
		{Start: 6, End: 9, Kind: SegPending},
	}}
	p := PackSlots(slots, 9)
	for i := 0; i < p.Spans(); i++ {
		for _, ch := range p.Changes(i) {
			if ch.Seg < 0 {
				start, _ := p.Span(i)
				t.Fatalf("unexpected gap transition at cycle %d", start)
			}
		}
	}
	if p.Spans() != 3 {
		t.Fatalf("spans %d, want 3", p.Spans())
	}
}

func TestPackerReuseMatchesOneShot(t *testing.T) {
	tr := NewTracker(2, 2)
	g := dataflow.NewGraph()
	v := g.New(dataflow.TransferNone, 0)
	tr.Open(0, 0, 1, v)
	tr.Read(0, 0, 4)
	tr.CloseDirty(0, 0, 6)
	tr.Open(1, 1, 3, v)
	tr.CloseClean(1, 1, 8)
	tr.Finish(10)

	slots := [][]Seg{
		tr.Segments(0, 0), tr.Segments(0, 1),
		tr.Segments(1, 0), tr.Segments(1, 1),
	}
	var pk Packer
	// A reused packer must produce the same stream as a fresh one even
	// after packing something else first.
	pk.Pack([][]Seg{{{Start: 0, End: 50, Kind: SegACE}}}, 60)
	got := pk.Pack(slots, 10)
	want := PackSlots(slots, 10)
	if got.Spans() != want.Spans() {
		t.Fatalf("spans %d, want %d", got.Spans(), want.Spans())
	}
	for i := 0; i < want.Spans(); i++ {
		gs, ge := got.Span(i)
		ws, we := want.Span(i)
		if gs != ws || ge != we {
			t.Errorf("span %d = [%d,%d), want [%d,%d)", i, gs, ge, ws, we)
		}
		gc, wc := got.Changes(i), want.Changes(i)
		if len(gc) != len(wc) {
			t.Fatalf("span %d changes %+v, want %+v", i, gc, wc)
		}
		for j := range wc {
			if gc[j] != wc[j] {
				t.Errorf("span %d change %d = %+v, want %+v", i, j, gc[j], wc[j])
			}
		}
	}
}
