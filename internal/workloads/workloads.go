// Package workloads re-implements the paper's benchmark suite on the
// simulator's GPU ISA. Each workload reproduces the access-pattern class
// of its namesake from Rodinia, the AMD OpenCL samples, or Mantevo:
//
//	vecadd             streaming (quickstart)
//	matmul             dense compute, row/column reuse  (MatrixMultiplication)
//	matrixtranspose    strided scatter                  (MatrixTranspose)
//	dct                blocked 2D transform             (DCT)
//	fastwalsh          global butterfly passes          (FastWalshTransform)
//	dwthaar1d          shrinking pair reduction         (DwtHaar1D)
//	histogram          byte gather + private bins       (Histogram)
//	prefixsum          log-step Hillis-Steele scan      (PrefixSum)
//	scanlargearrays    blocked scan + add-back          (ScanLargeArrays)
//	recursivegaussian  per-column serial IIR filter     (RecursiveGaussian)
//	srad               5-point stencil with exp         (Rodinia srad)
//	minife             sparse Jacobi over a 5-point FEM matrix (Mantevo MiniFE)
//	comd               neighbor-list force + integrate  (Mantevo CoMD)
//
// Every workload has a host-side golden implementation with identical
// arithmetic; the tests assert bit-exact agreement, which is also the
// basis of the fault-injection outcome classification.
package workloads

import (
	"fmt"
	"math"
	"sort"

	"mbavf/internal/sim"
)

// entry couples a runnable workload with its golden output computation.
type entry struct {
	w      sim.Workload
	golden func() []byte
}

var registry = map[string]entry{}

func register(name, desc string, run func(*sim.Session) error, golden func() []byte) {
	if _, dup := registry[name]; dup {
		panic("workloads: duplicate " + name)
	}
	registry[name] = entry{
		w:      sim.Workload{Name: name, Description: desc, Run: run},
		golden: golden,
	}
}

// Names returns all workload names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ByName returns the named workload.
func ByName(name string) (sim.Workload, error) {
	e, ok := registry[name]
	if !ok {
		return sim.Workload{}, fmt.Errorf("workloads: unknown workload %q (have %v)", name, Names())
	}
	return e.w, nil
}

// All returns every workload, sorted by name.
func All() []sim.Workload {
	out := make([]sim.Workload, 0, len(registry))
	for _, n := range Names() {
		out = append(out, registry[n].w)
	}
	return out
}

// Golden returns the expected output bytes of the named workload,
// computed host-side.
func Golden(name string) ([]byte, error) {
	e, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown workload %q", name)
	}
	return e.golden(), nil
}

// rng is a deterministic xorshift32 generator used for all input data.
type rng uint32

func newRNG(seed uint32) *rng {
	r := rng(seed | 1)
	return &r
}

func (r *rng) next() uint32 {
	x := uint32(*r)
	x ^= x << 13
	x ^= x >> 17
	x ^= x << 5
	*r = rng(x)
	return x
}

// words returns n pseudo-random 32-bit values bounded to [0, limit).
func (r *rng) words(n int, limit uint32) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = r.next() % limit
	}
	return out
}

// floats returns n pseudo-random float32 bit patterns in [0, 1).
func (r *rng) floats(n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = math.Float32bits(float32(r.next()%65536) / 65536)
	}
	return out
}

func expf(v float32) float32 { return float32(math.Exp(float64(v))) }

func fb(f float32) uint32 { return math.Float32bits(f) }
func bf(b uint32) float32 { return math.Float32frombits(b) }
func wordsBytes(ws []uint32) []byte {
	out := make([]byte, 4*len(ws))
	for i, w := range ws {
		out[4*i] = byte(w)
		out[4*i+1] = byte(w >> 8)
		out[4*i+2] = byte(w >> 16)
		out[4*i+3] = byte(w >> 24)
	}
	return out
}
