package workloads

import (
	"math"

	"mbavf/internal/gpu"
	"mbavf/internal/sim"
)

// fastwalsh: in-place Walsh-Hadamard transform of 1024 int32 values, one
// butterfly pair per thread, one dispatch per stage — the global
// power-of-two stride pattern of the AMD FastWalshTransform sample.
const fwtN = 1024

func fwtIn() []uint32 {
	return newRNG(0xFA57).words(fwtN, 1<<16)
}

func buildFWTPass() (*gpu.Program, error) {
	// Args: s0 = buffer, s1 = log2(h), s2 = h-1, s3 = h (element counts).
	k := gpu.NewBuilder("fastwalsh-pass")
	k.VMov(gpu.V(0), gpu.Tid())          // pair index p
	k.VShr(gpu.V(1), gpu.V(0), gpu.S(1)) // p >> log2h
	k.VShl(gpu.V(2), gpu.V(1), gpu.S(1))
	k.VShl(gpu.V(2), gpu.V(2), gpu.Imm(1)) // (p>>log2h) << (log2h+1)
	k.VAnd(gpu.V(3), gpu.V(0), gpu.S(2))   // p & (h-1)
	k.VAdd(gpu.V(2), gpu.V(2), gpu.V(3))   // i
	k.VAdd(gpu.V(4), gpu.V(2), gpu.S(3))   // i + h
	k.VShl(gpu.V(2), gpu.V(2), gpu.Imm(2))
	k.VAdd(gpu.V(2), gpu.V(2), gpu.S(0))
	k.VShl(gpu.V(4), gpu.V(4), gpu.Imm(2))
	k.VAdd(gpu.V(4), gpu.V(4), gpu.S(0))
	k.VLoad(gpu.V(5), gpu.V(2), 0)
	k.VLoad(gpu.V(6), gpu.V(4), 0)
	k.VAdd(gpu.V(7), gpu.V(5), gpu.V(6))
	k.VSub(gpu.V(8), gpu.V(5), gpu.V(6))
	k.VStore(gpu.V(2), 0, gpu.V(7))
	k.VStore(gpu.V(4), 0, gpu.V(8))
	return k.Build()
}

func fwtRun(s *sim.Session) error {
	buf, err := s.InputWords(fwtIn())
	if err != nil {
		return err
	}
	s.DeclareOutput(buf, 4*fwtN)
	prog, err := buildFWTPass()
	if err != nil {
		return err
	}
	waves := fwtN / 2 / gpu.Lanes
	for logH := 0; 1<<logH < fwtN; logH++ {
		h := uint32(1) << logH
		err := s.Run(gpu.Dispatch{Prog: prog, Waves: waves, Args: []uint32{buf, uint32(logH), h - 1, h}})
		if err != nil {
			return err
		}
	}
	return nil
}

func fwtGolden() []byte {
	x := fwtIn()
	for h := 1; h < fwtN; h *= 2 {
		for p := 0; p < fwtN/2; p++ {
			i := (p>>uint(log2(h)))<<uint(log2(h)+1) + p&(h-1)
			a, b := x[i], x[i+h]
			x[i], x[i+h] = a+b, a-b
		}
	}
	return wordsBytes(x)
}

func log2(h int) int {
	l := 0
	for 1<<l < h {
		l++
	}
	return l
}

// dwthaar1d: 1-D Haar wavelet decomposition of 1024 floats. Each level
// halves the working set (approximations ping-pong between buffers,
// details go straight to the output), so late levels run nearly-empty
// wavefronts — a shrinking-parallelism pattern.
const haarN = 1024

func haarIn() []uint32 {
	return newRNG(0xD897).floats(haarN)
}

const invSqrt2 = float32(0.70710678118654752)

func buildHaarPass() (*gpu.Program, error) {
	// Args: s0 = src, s1 = dst (approx), s2 = output base, s3 = count,
	// s4 = half offset within output (elements).
	k := gpu.NewBuilder("dwthaar-pass")
	k.VMov(gpu.V(0), gpu.Tid())
	k.VCmp(gpu.OpVCmpLT, gpu.V(0), gpu.S(3))
	k.IfVCC()
	k.VShl(gpu.V(1), gpu.V(0), gpu.Imm(3)) // byte offset of x[2i]
	k.VAdd(gpu.V(1), gpu.V(1), gpu.S(0))
	k.VLoad(gpu.V(2), gpu.V(1), 0) // x[2i]
	k.VLoad(gpu.V(3), gpu.V(1), 4) // x[2i+1]
	k.VFAdd(gpu.V(4), gpu.V(2), gpu.V(3))
	k.VFMul(gpu.V(4), gpu.V(4), gpu.ImmF(invSqrt2)) // approx
	k.VFSub(gpu.V(5), gpu.V(2), gpu.V(3))
	k.VFMul(gpu.V(5), gpu.V(5), gpu.ImmF(invSqrt2)) // detail
	k.VShl(gpu.V(6), gpu.V(0), gpu.Imm(2))
	k.VAdd(gpu.V(6), gpu.V(6), gpu.S(1))
	k.VStore(gpu.V(6), 0, gpu.V(4)) // dst[i] = approx
	k.VAdd(gpu.V(7), gpu.V(0), gpu.S(4))
	k.VShl(gpu.V(7), gpu.V(7), gpu.Imm(2))
	k.VAdd(gpu.V(7), gpu.V(7), gpu.S(2))
	k.VStore(gpu.V(7), 0, gpu.V(5)) // out[half+i] = detail
	k.EndIf()
	return k.Build()
}

func haarRun(s *sim.Session) error {
	ping, err := s.InputWords(haarIn())
	if err != nil {
		return err
	}
	pong := s.ScratchWords(haarN)
	out := s.OutputWords(haarN)
	prog, err := buildHaarPass()
	if err != nil {
		return err
	}
	src, dst := ping, pong
	for length := haarN; length > 1; length /= 2 {
		count := uint32(length / 2)
		waves := (length/2 + gpu.Lanes - 1) / gpu.Lanes
		err := s.Run(gpu.Dispatch{Prog: prog, Waves: waves, Args: []uint32{src, dst, out, count, count}})
		if err != nil {
			return err
		}
		src, dst = dst, src
	}
	// Final approximation (single value) lives in src[0]; copy it to
	// out[0] with a one-lane kernel.
	k := gpu.NewBuilder("dwthaar-final")
	k.VMov(gpu.V(0), gpu.Tid())
	k.VCmp(gpu.OpVCmpEQ, gpu.V(0), gpu.Imm(0))
	k.IfVCC()
	k.VMov(gpu.V(1), gpu.S(0))
	k.VLoad(gpu.V(2), gpu.V(1), 0)
	k.VMov(gpu.V(3), gpu.S(1))
	k.VStore(gpu.V(3), 0, gpu.V(2))
	k.EndIf()
	fin, err := k.Build()
	if err != nil {
		return err
	}
	return s.Run(gpu.Dispatch{Prog: fin, Waves: 1, Args: []uint32{src, out}})
}

func haarGolden() []byte {
	cur := make([]float32, haarN)
	for i, b := range haarIn() {
		cur[i] = bf(b)
	}
	out := make([]float32, haarN)
	for length := haarN; length > 1; length /= 2 {
		half := length / 2
		next := make([]float32, half)
		for i := 0; i < half; i++ {
			a := (cur[2*i] + cur[2*i+1]) * invSqrt2
			d := (cur[2*i] - cur[2*i+1]) * invSqrt2
			next[i] = a
			out[half+i] = d
		}
		cur = next
	}
	out[0] = cur[0]
	ws := make([]uint32, haarN)
	for i, f := range out {
		ws[i] = fb(f)
	}
	return wordsBytes(ws)
}

// dct: 8x8 block 2-D DCT-II of a 64x64 float image via two matrix-multiply
// passes (rows then columns) — the blocked transform pattern of the AMD
// DCT sample.
const (
	dctImg   = 64
	dctBlock = 8
)

func dctIn() []uint32 {
	return newRNG(0xDC7).floats(dctImg * dctImg)
}

// dctMatrix returns the 8x8 DCT-II basis matrix in float32 bits.
func dctMatrix() []uint32 {
	d := make([]uint32, dctBlock*dctBlock)
	for u := 0; u < dctBlock; u++ {
		scale := float32(math.Sqrt(2.0 / float64(dctBlock)))
		if u == 0 {
			scale = float32(math.Sqrt(1.0 / float64(dctBlock)))
		}
		for i := 0; i < dctBlock; i++ {
			v := float64(scale) * math.Cos(float64(2*i+1)*float64(u)*math.Pi/16)
			d[u*dctBlock+i] = fb(float32(v))
		}
	}
	return d
}

// buildDCTPass builds one of the two multiply passes.
//
// Pass 1 (rowPass=true):  tmp[u][j] = sum_i d[u][i] * x[base + i*64 + j]
// Pass 2 (rowPass=false): y[u][v]   = sum_j tmp[base + u*64 + j] * d[v][j]
//
// Args: s0 = src image/tmp, s1 = D matrix, s2 = dst.
func buildDCTPass(rowPass bool) (*gpu.Program, error) {
	name := "dct-cols"
	if rowPass {
		name = "dct-rows"
	}
	k := gpu.NewBuilder(name)
	k.VMov(gpu.V(0), gpu.Tid())
	k.VShr(gpu.V(1), gpu.V(0), gpu.Imm(6))  // block
	k.VAnd(gpu.V(2), gpu.V(0), gpu.Imm(63)) // inner
	k.VShr(gpu.V(3), gpu.V(2), gpu.Imm(3))  // u
	k.VAnd(gpu.V(4), gpu.V(2), gpu.Imm(7))  // j (pass1) or v (pass2)
	k.VShr(gpu.V(5), gpu.V(1), gpu.Imm(3))  // blockRow
	k.VAnd(gpu.V(6), gpu.V(1), gpu.Imm(7))  // blockCol
	k.VShl(gpu.V(7), gpu.V(5), gpu.Imm(9))  // blockRow*8*64
	k.VShl(gpu.V(8), gpu.V(6), gpu.Imm(3))
	k.VAdd(gpu.V(7), gpu.V(7), gpu.V(8)) // base element index
	if rowPass {
		// src walker: x[base + j + i*64], i = 0..7 (stride 256 bytes)
		k.VAdd(gpu.V(9), gpu.V(7), gpu.V(4))
		k.VShl(gpu.V(9), gpu.V(9), gpu.Imm(2))
		k.VAdd(gpu.V(9), gpu.V(9), gpu.S(0))
		// d walker: d[u*8 + i], stride 4 bytes
		k.VShl(gpu.V(10), gpu.V(3), gpu.Imm(5))
		k.VAdd(gpu.V(10), gpu.V(10), gpu.S(1))
	} else {
		// src walker: tmp[base + u*64 + j], j = 0..7 (stride 4 bytes)
		k.VShl(gpu.V(9), gpu.V(3), gpu.Imm(6))
		k.VAdd(gpu.V(9), gpu.V(9), gpu.V(7))
		k.VShl(gpu.V(9), gpu.V(9), gpu.Imm(2))
		k.VAdd(gpu.V(9), gpu.V(9), gpu.S(0))
		// d walker: d[v*8 + j], stride 4 bytes
		k.VShl(gpu.V(10), gpu.V(4), gpu.Imm(5))
		k.VAdd(gpu.V(10), gpu.V(10), gpu.S(1))
	}
	k.VMov(gpu.V(11), gpu.ImmF(0))
	k.SMov(gpu.S(3), gpu.Imm(dctBlock))
	k.Label("loop")
	k.VLoad(gpu.V(12), gpu.V(9), 0)
	k.VLoad(gpu.V(13), gpu.V(10), 0)
	k.VFMad(gpu.V(11), gpu.V(13), gpu.V(12), gpu.V(11))
	if rowPass {
		k.VAdd(gpu.V(9), gpu.V(9), gpu.Imm(4*dctImg))
	} else {
		k.VAdd(gpu.V(9), gpu.V(9), gpu.Imm(4))
	}
	k.VAdd(gpu.V(10), gpu.V(10), gpu.Imm(4))
	k.SSub(gpu.S(3), gpu.S(3), gpu.Imm(1))
	k.Brnz(gpu.S(3), "loop")
	// dst element index: base + u*64 + (j|v)
	k.VShl(gpu.V(14), gpu.V(3), gpu.Imm(6))
	k.VAdd(gpu.V(14), gpu.V(14), gpu.V(7))
	k.VAdd(gpu.V(14), gpu.V(14), gpu.V(4))
	k.VShl(gpu.V(14), gpu.V(14), gpu.Imm(2))
	k.VAdd(gpu.V(14), gpu.V(14), gpu.S(2))
	k.VStore(gpu.V(14), 0, gpu.V(11))
	return k.Build()
}

func dctRun(s *sim.Session) error {
	img, err := s.InputWords(dctIn())
	if err != nil {
		return err
	}
	dmat, err := s.InputWords(dctMatrix())
	if err != nil {
		return err
	}
	tmp := s.ScratchWords(dctImg * dctImg)
	out := s.OutputWords(dctImg * dctImg)
	rows, err := buildDCTPass(true)
	if err != nil {
		return err
	}
	cols, err := buildDCTPass(false)
	if err != nil {
		return err
	}
	waves := dctImg * dctImg / gpu.Lanes
	if err := s.Run(gpu.Dispatch{Prog: rows, Waves: waves, Args: []uint32{img, dmat, tmp}}); err != nil {
		return err
	}
	return s.Run(gpu.Dispatch{Prog: cols, Waves: waves, Args: []uint32{tmp, dmat, out}})
}

func dctGolden() []byte {
	img := dctIn()
	dmat := dctMatrix()
	x := make([]float32, len(img))
	for i, b := range img {
		x[i] = bf(b)
	}
	d := make([]float32, len(dmat))
	for i, b := range dmat {
		d[i] = bf(b)
	}
	tmp := make([]float32, dctImg*dctImg)
	out := make([]float32, dctImg*dctImg)
	for block := 0; block < (dctImg/dctBlock)*(dctImg/dctBlock); block++ {
		base := (block>>3)*dctBlock*dctImg + (block&7)*dctBlock
		for u := 0; u < dctBlock; u++ {
			for j := 0; j < dctBlock; j++ {
				acc := float32(0)
				for i := 0; i < dctBlock; i++ {
					acc = d[u*dctBlock+i]*x[base+i*dctImg+j] + acc
				}
				tmp[base+u*dctImg+j] = acc
			}
		}
		for u := 0; u < dctBlock; u++ {
			for v := 0; v < dctBlock; v++ {
				acc := float32(0)
				for j := 0; j < dctBlock; j++ {
					acc = d[v*dctBlock+j]*tmp[base+u*dctImg+j] + acc
				}
				out[base+u*dctImg+v] = acc
			}
		}
	}
	ws := make([]uint32, len(out))
	for i, f := range out {
		ws[i] = fb(f)
	}
	return wordsBytes(ws)
}

func init() {
	register("fastwalsh", "1024-point in-place Walsh-Hadamard transform", fwtRun, fwtGolden)
	register("dwthaar1d", "1024-point Haar wavelet decomposition", haarRun, haarGolden)
	register("dct", "8x8-block 2-D DCT of a 64x64 image", dctRun, dctGolden)
}
