package workloads

import (
	"mbavf/internal/gpu"
	"mbavf/internal/sim"
)

// minife: Jacobi relaxation over the 5-point finite-element/finite-
// difference matrix of a 32x32 grid, stored in padded ELL format (4
// off-diagonal entries per row). Each iteration gathers x through the
// column-index array — the sparse, phase-structured solver pattern of
// Mantevo MiniFE.
const (
	feGrid  = 32
	feN     = feGrid * feGrid
	feNNZ   = 4 // padded off-diagonal entries per row
	feIters = 8
)

// feMatrix builds the ELL column/value arrays and the right-hand side.
// Padding entries point at the row itself with value 0.
func feMatrix() (cols []uint32, vals []uint32, rhs []uint32) {
	cols = make([]uint32, feN*feNNZ)
	vals = make([]uint32, feN*feNNZ)
	rhs = make([]uint32, feN)
	r := newRNG(0xFE11)
	for i := 0; i < feN; i++ {
		row, col := i/feGrid, i%feGrid
		k := 0
		add := func(j int) {
			cols[i*feNNZ+k] = uint32(j)
			vals[i*feNNZ+k] = fb(-1.0)
			k++
		}
		if row > 0 {
			add(i - feGrid)
		}
		if row < feGrid-1 {
			add(i + feGrid)
		}
		if col > 0 {
			add(i - 1)
		}
		if col < feGrid-1 {
			add(i + 1)
		}
		for ; k < feNNZ; k++ {
			cols[i*feNNZ+k] = uint32(i)
			vals[i*feNNZ+k] = fb(0)
		}
		rhs[i] = fb(float32(r.next()%1000) / 1000)
	}
	return cols, vals, rhs
}

func minifeRun(s *sim.Session) error {
	cols, vals, rhs := feMatrix()
	colsAddr, err := s.InputWords(cols)
	if err != nil {
		return err
	}
	valsAddr, err := s.InputWords(vals)
	if err != nil {
		return err
	}
	rhsAddr, err := s.InputWords(rhs)
	if err != nil {
		return err
	}
	ping := s.ScratchWords(feN) // x starts at 0
	pong := s.ScratchWords(feN)

	// Jacobi sweep: x'[i] = (b[i] - sum_k vals[i][k] * x[cols[i][k]]) / 4.
	// Args: s0 = cols, s1 = vals, s2 = rhs, s3 = x (src), s4 = x' (dst).
	k := gpu.NewBuilder("minife-jacobi")
	k.VMov(gpu.V(0), gpu.Tid())
	k.VShl(gpu.V(1), gpu.V(0), gpu.Imm(4)) // i*4*4 bytes: ELL row base
	k.VAdd(gpu.V(2), gpu.V(1), gpu.S(0))   // cols walker
	k.VAdd(gpu.V(3), gpu.V(1), gpu.S(1))   // vals walker
	k.VMov(gpu.V(4), gpu.ImmF(0))          // acc
	k.SMov(gpu.S(5), gpu.Imm(feNNZ))
	k.Label("nz")
	k.VLoad(gpu.V(5), gpu.V(2), 0) // col index
	k.VShl(gpu.V(5), gpu.V(5), gpu.Imm(2))
	k.VAdd(gpu.V(5), gpu.V(5), gpu.S(3))
	k.VLoad(gpu.V(6), gpu.V(5), 0) // x[col]
	k.VLoad(gpu.V(7), gpu.V(3), 0) // a value
	k.VFMad(gpu.V(4), gpu.V(7), gpu.V(6), gpu.V(4))
	k.VAdd(gpu.V(2), gpu.V(2), gpu.Imm(4))
	k.VAdd(gpu.V(3), gpu.V(3), gpu.Imm(4))
	k.SSub(gpu.S(5), gpu.S(5), gpu.Imm(1))
	k.Brnz(gpu.S(5), "nz")
	k.VShl(gpu.V(8), gpu.V(0), gpu.Imm(2))
	k.VAdd(gpu.V(9), gpu.V(8), gpu.S(2))
	k.VLoad(gpu.V(10), gpu.V(9), 0) // b[i]
	k.VFSub(gpu.V(10), gpu.V(10), gpu.V(4))
	k.VFMul(gpu.V(10), gpu.V(10), gpu.ImmF(0.25))
	k.VAdd(gpu.V(11), gpu.V(8), gpu.S(4))
	k.VStore(gpu.V(11), 0, gpu.V(10))
	prog, err := k.Build()
	if err != nil {
		return err
	}
	src, dst := ping, pong
	for it := 0; it < feIters; it++ {
		err := s.Run(gpu.Dispatch{Prog: prog, Waves: feN / gpu.Lanes,
			Args: []uint32{colsAddr, valsAddr, rhsAddr, src, dst}})
		if err != nil {
			return err
		}
		src, dst = dst, src
	}
	s.DeclareOutput(src, 4*feN)
	return nil
}

func minifeGolden() []byte {
	cols, vals, rhs := feMatrix()
	x := make([]float32, feN)
	next := make([]float32, feN)
	for it := 0; it < feIters; it++ {
		for i := 0; i < feN; i++ {
			acc := float32(0)
			for k := 0; k < feNNZ; k++ {
				acc = bf(vals[i*feNNZ+k])*x[cols[i*feNNZ+k]] + acc
			}
			next[i] = (bf(rhs[i]) - acc) * 0.25
		}
		x, next = next, x
	}
	ws := make([]uint32, feN)
	for i, f := range x {
		ws[i] = fb(f)
	}
	return wordsBytes(ws)
}

// comd: a toy molecular-dynamics step: 512 particles in 2-D with fixed
// 16-entry neighbor lists, a softened inverse-square force kernel, and an
// Euler integration pass, repeated for 4 timesteps — the neighbor-gather
// plus streaming-update pattern of Mantevo CoMD.
const (
	mdN     = 512
	mdK     = 16
	mdSteps = 4
)

const (
	mdDT   = float32(0.001)
	mdSoft = float32(0.01)
)

func mdInputs() (px, py, nbr []uint32) {
	r := newRNG(0xC04D)
	px = r.floats(mdN)
	py = r.floats(mdN)
	nbr = make([]uint32, mdN*mdK)
	for i := 0; i < mdN; i++ {
		for k := 0; k < mdK; k++ {
			// Neighbors: a window around i plus a pseudo-random far pair.
			var j int
			if k < mdK-2 {
				j = (i + k - (mdK-2)/2 + mdN) % mdN
				if j == i {
					j = (i + mdK) % mdN
				}
			} else {
				j = int(r.next() % mdN)
				if j == i {
					j = (i + 1) % mdN
				}
			}
			nbr[i*mdK+k] = uint32(j)
		}
	}
	return px, py, nbr
}

func buildMDForce() (*gpu.Program, error) {
	// Args: s0 = px, s1 = py, s2 = nbr, s3 = fx, s4 = fy.
	k := gpu.NewBuilder("comd-force")
	k.VMov(gpu.V(0), gpu.Tid())
	k.VShl(gpu.V(1), gpu.V(0), gpu.Imm(2))
	k.VAdd(gpu.V(2), gpu.V(1), gpu.S(0))
	k.VLoad(gpu.V(3), gpu.V(2), 0) // xi
	k.VAdd(gpu.V(2), gpu.V(1), gpu.S(1))
	k.VLoad(gpu.V(4), gpu.V(2), 0)         // yi
	k.VShl(gpu.V(5), gpu.V(0), gpu.Imm(6)) // nbr row base (16*4 bytes)
	k.VAdd(gpu.V(5), gpu.V(5), gpu.S(2))
	k.VMov(gpu.V(6), gpu.ImmF(0)) // fx
	k.VMov(gpu.V(7), gpu.ImmF(0)) // fy
	k.SMov(gpu.S(5), gpu.Imm(mdK))
	k.Label("nbr")
	k.VLoad(gpu.V(8), gpu.V(5), 0) // j
	k.VShl(gpu.V(8), gpu.V(8), gpu.Imm(2))
	k.VAdd(gpu.V(9), gpu.V(8), gpu.S(0))
	k.VLoad(gpu.V(10), gpu.V(9), 0) // xj
	k.VAdd(gpu.V(9), gpu.V(8), gpu.S(1))
	k.VLoad(gpu.V(11), gpu.V(9), 0)         // yj
	k.VFSub(gpu.V(10), gpu.V(10), gpu.V(3)) // dx
	k.VFSub(gpu.V(11), gpu.V(11), gpu.V(4)) // dy
	k.VFMul(gpu.V(12), gpu.V(10), gpu.V(10))
	k.VFMad(gpu.V(12), gpu.V(11), gpu.V(11), gpu.V(12))
	k.VFAdd(gpu.V(12), gpu.V(12), gpu.ImmF(mdSoft)) // r2
	k.VMov(gpu.V(13), gpu.ImmF(1))
	k.VFDiv(gpu.V(13), gpu.V(13), gpu.V(12)) // inv = 1/r2
	k.VFMul(gpu.V(14), gpu.V(13), gpu.V(13))
	k.VFSub(gpu.V(14), gpu.V(14), gpu.V(13))          // f = inv^2 - inv
	k.VFMad(gpu.V(6), gpu.V(14), gpu.V(10), gpu.V(6)) // fx += f*dx
	k.VFMad(gpu.V(7), gpu.V(14), gpu.V(11), gpu.V(7)) // fy += f*dy
	k.VAdd(gpu.V(5), gpu.V(5), gpu.Imm(4))
	k.SSub(gpu.S(5), gpu.S(5), gpu.Imm(1))
	k.Brnz(gpu.S(5), "nbr")
	k.VAdd(gpu.V(15), gpu.V(1), gpu.S(3))
	k.VStore(gpu.V(15), 0, gpu.V(6))
	k.VAdd(gpu.V(15), gpu.V(1), gpu.S(4))
	k.VStore(gpu.V(15), 0, gpu.V(7))
	return k.Build()
}

func buildMDIntegrate() (*gpu.Program, error) {
	// Args: s0 = px, s1 = py, s2 = fx, s3 = fy.
	k := gpu.NewBuilder("comd-integrate")
	k.VMov(gpu.V(0), gpu.Tid())
	k.VShl(gpu.V(1), gpu.V(0), gpu.Imm(2))
	k.VAdd(gpu.V(2), gpu.V(1), gpu.S(2))
	k.VLoad(gpu.V(3), gpu.V(2), 0) // fx
	k.VAdd(gpu.V(2), gpu.V(1), gpu.S(3))
	k.VLoad(gpu.V(4), gpu.V(2), 0) // fy
	k.VAdd(gpu.V(5), gpu.V(1), gpu.S(0))
	k.VLoad(gpu.V(6), gpu.V(5), 0)
	k.VFMad(gpu.V(6), gpu.V(3), gpu.ImmF(mdDT), gpu.V(6)) // x += dt*fx
	k.VStore(gpu.V(5), 0, gpu.V(6))
	k.VAdd(gpu.V(7), gpu.V(1), gpu.S(1))
	k.VLoad(gpu.V(8), gpu.V(7), 0)
	k.VFMad(gpu.V(8), gpu.V(4), gpu.ImmF(mdDT), gpu.V(8)) // y += dt*fy
	k.VStore(gpu.V(7), 0, gpu.V(8))
	return k.Build()
}

func comdRun(s *sim.Session) error {
	px, py, nbr := mdInputs()
	pxAddr, err := s.InputWords(px)
	if err != nil {
		return err
	}
	pyAddr, err := s.InputWords(py)
	if err != nil {
		return err
	}
	nbrAddr, err := s.InputWords(nbr)
	if err != nil {
		return err
	}
	fxAddr := s.ScratchWords(mdN)
	fyAddr := s.ScratchWords(mdN)
	force, err := buildMDForce()
	if err != nil {
		return err
	}
	integrate, err := buildMDIntegrate()
	if err != nil {
		return err
	}
	waves := mdN / gpu.Lanes
	for step := 0; step < mdSteps; step++ {
		if err := s.Run(gpu.Dispatch{Prog: force, Waves: waves,
			Args: []uint32{pxAddr, pyAddr, nbrAddr, fxAddr, fyAddr}}); err != nil {
			return err
		}
		if err := s.Run(gpu.Dispatch{Prog: integrate, Waves: waves,
			Args: []uint32{pxAddr, pyAddr, fxAddr, fyAddr}}); err != nil {
			return err
		}
	}
	s.DeclareOutput(pxAddr, 4*mdN)
	s.DeclareOutput(pyAddr, 4*mdN)
	return nil
}

func comdGolden() []byte {
	pxb, pyb, nbr := mdInputs()
	px := make([]float32, mdN)
	py := make([]float32, mdN)
	for i := range px {
		px[i] = bf(pxb[i])
		py[i] = bf(pyb[i])
	}
	fx := make([]float32, mdN)
	fy := make([]float32, mdN)
	for step := 0; step < mdSteps; step++ {
		for i := 0; i < mdN; i++ {
			var sfx, sfy float32
			for k := 0; k < mdK; k++ {
				j := nbr[i*mdK+k]
				dx := px[j] - px[i]
				dy := py[j] - py[i]
				r2 := dx * dx
				r2 = dy*dy + r2
				r2 = r2 + mdSoft
				inv := float32(1) / r2
				f := inv*inv - inv
				sfx = f*dx + sfx
				sfy = f*dy + sfy
			}
			fx[i] = sfx
			fy[i] = sfy
		}
		for i := 0; i < mdN; i++ {
			px[i] = fx[i]*mdDT + px[i]
			py[i] = fy[i]*mdDT + py[i]
		}
	}
	ws := make([]uint32, 2*mdN)
	for i := range px {
		ws[i] = fb(px[i])
		ws[mdN+i] = fb(py[i])
	}
	return wordsBytes(ws)
}

func init() {
	register("minife", "Jacobi sweeps over a 5-point FEM matrix (ELL)", minifeRun, minifeGolden)
	register("comd", "neighbor-list force + Euler integration MD", comdRun, comdGolden)
}
