package workloads

import (
	"bytes"
	"testing"

	"mbavf/internal/sim"
)

// TestAllWorkloadsMatchGolden runs every workload on the fully
// instrumented simulator and checks the program output bit-exactly
// against the host-side golden implementation.
func TestAllWorkloadsMatchGolden(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			w, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			s, err := sim.Execute(w, sim.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			got, err := s.OutputData()
			if err != nil {
				t.Fatal(err)
			}
			want, err := Golden(name)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("output length %d, want %d", len(got), len(want))
			}
			if !bytes.Equal(got, want) {
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("output diverges at byte %d: %#x vs %#x", i, got[i], want[i])
					}
				}
			}
			if s.Cycles() == 0 {
				t.Error("no cycles simulated")
			}
			t.Logf("%s: %d cycles, %d instrs, %d graph versions",
				name, s.Cycles(), s.Machine.Instructions(), s.Graph.Len())
		})
	}
}

// TestWorkloadsProduceLifetimeActivity checks that the instrumented
// structures actually see traffic for every workload.
func TestWorkloadsProduceLifetimeActivity(t *testing.T) {
	anyDead := false
	for _, name := range Names() {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sim.Execute(w, sim.DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.L1Tracker.SegmentCount() == 0 {
			t.Errorf("%s: no L1 lifetime segments", name)
		}
		if s.L2Tracker.SegmentCount() == 0 {
			t.Errorf("%s: no L2 lifetime segments", name)
		}
		if s.VGPRTracker.SegmentCount() == 0 {
			t.Errorf("%s: no VGPR lifetime segments", name)
		}
		if s.Graph.Stats().DeadCount > 0 {
			anyDead = true
		}
	}
	// Workloads whose every value reaches output legitimately have no dead
	// versions; but across the suite, dynamically-dead values must exist
	// (scratch stores, padded ELL entries, intermediate passes).
	if !anyDead {
		t.Error("no workload produced any dynamically-dead version")
	}
}

// TestInjectionConfigRuns checks the lean configuration used by fault
// injection campaigns.
func TestInjectionConfigRuns(t *testing.T) {
	w, err := ByName("vecadd")
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.Execute(w, sim.InjectionConfig())
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.OutputData()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Golden("vecadd")
	if !bytes.Equal(got, want) {
		t.Error("uninstrumented run output differs from golden")
	}
	if s.Graph != nil || s.L1Tracker != nil {
		t.Error("injection config should not instrument")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown workload should error")
	}
	if _, err := Golden("nope"); err == nil {
		t.Error("unknown golden should error")
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"backprop", "bitonicsort", "comd", "dct", "dwthaar1d",
		"fastwalsh", "histogram", "kmeans", "matmul", "matrixtranspose",
		"minife", "nw", "prefixsum", "recursivegaussian", "reduction",
		"scanlargearrays", "srad", "vecadd"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registry has %d workloads %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("workload %d = %s, want %s", i, got[i], want[i])
		}
	}
	if len(All()) != len(want) {
		t.Error("All() size mismatch")
	}
}
