package workloads

import (
	"mbavf/internal/gpu"
	"mbavf/internal/sim"
)

// bitonicsort: in-place bitonic sorting network over 1024 int32 values,
// one compare-exchange pair per thread, one dispatch per (k, j) stage —
// the AMD BitonicSort sample. Heavy divergence (half the lanes idle per
// stage) and power-of-two strided exchanges.
const bsN = 1024

func bsIn() []uint32 {
	return newRNG(0xB170).words(bsN, 1<<30)
}

func buildBitonicStage() (*gpu.Program, error) {
	// Args: s0 = buffer, s1 = j, s2 = k.
	p := gpu.NewBuilder("bitonic-stage")
	p.VMov(gpu.V(0), gpu.Tid())
	p.VMov(gpu.V(1), gpu.S(1))
	p.VXor(gpu.V(2), gpu.V(0), gpu.V(1)) // ixj
	p.VCmp(gpu.OpVCmpGT, gpu.V(2), gpu.V(0))
	p.IfVCC()
	p.VShl(gpu.V(3), gpu.V(0), gpu.Imm(2))
	p.VAdd(gpu.V(3), gpu.V(3), gpu.S(0))
	p.VLoad(gpu.V(4), gpu.V(3), 0) // a = buf[i]
	p.VShl(gpu.V(5), gpu.V(2), gpu.Imm(2))
	p.VAdd(gpu.V(5), gpu.V(5), gpu.S(0))
	p.VLoad(gpu.V(6), gpu.V(5), 0) // b = buf[ixj]
	p.VMin(gpu.V(7), gpu.V(4), gpu.V(6))
	p.VMax(gpu.V(8), gpu.V(4), gpu.V(6))
	// Ascending block iff (i & k) == 0: store (lo, hi); else (hi, lo).
	p.VMov(gpu.V(9), gpu.S(2))
	p.VAnd(gpu.V(9), gpu.V(0), gpu.V(9))
	p.VCmp(gpu.OpVCmpEQ, gpu.V(9), gpu.Imm(0))
	p.VCndMask(gpu.V(10), gpu.V(7), gpu.V(8)) // at i
	p.VCndMask(gpu.V(11), gpu.V(8), gpu.V(7)) // at ixj
	p.VStore(gpu.V(3), 0, gpu.V(10))
	p.VStore(gpu.V(5), 0, gpu.V(11))
	p.EndIf()
	return p.Build()
}

func bsRun(s *sim.Session) error {
	buf, err := s.InputWords(bsIn())
	if err != nil {
		return err
	}
	s.DeclareOutput(buf, 4*bsN)
	stage, err := buildBitonicStage()
	if err != nil {
		return err
	}
	waves := bsN / gpu.Lanes
	for k := uint32(2); k <= bsN; k *= 2 {
		for j := k / 2; j >= 1; j /= 2 {
			if err := s.Run(gpu.Dispatch{Prog: stage, Waves: waves, Args: []uint32{buf, j, k}}); err != nil {
				return err
			}
		}
	}
	return nil
}

func bsGolden() []byte {
	x := bsIn()
	for k := 2; k <= bsN; k *= 2 {
		for j := k / 2; j >= 1; j /= 2 {
			for i := 0; i < bsN; i++ {
				ixj := i ^ j
				if ixj > i {
					asc := i&k == 0
					if (x[i] > x[ixj]) == asc {
						x[i], x[ixj] = x[ixj], x[i]
					}
				}
			}
		}
	}
	return wordsBytes(x)
}

// reduction: tree sum of 4096 int32 values, halving passes ping-ponging
// between buffers with progressively emptier wavefronts.
const redN = 4096

func redIn() []uint32 {
	return newRNG(0x4ED0).words(redN, 1<<20)
}

func buildReductionPass() (*gpu.Program, error) {
	// Args: s0 = src, s1 = dst, s2 = count (output elements).
	p := gpu.NewBuilder("reduction-pass")
	p.VMov(gpu.V(0), gpu.Tid())
	p.VCmp(gpu.OpVCmpLT, gpu.V(0), gpu.S(2))
	p.IfVCC()
	p.VShl(gpu.V(1), gpu.V(0), gpu.Imm(3))
	p.VAdd(gpu.V(1), gpu.V(1), gpu.S(0))
	p.VLoad(gpu.V(2), gpu.V(1), 0)
	p.VLoad(gpu.V(3), gpu.V(1), 4)
	p.VAdd(gpu.V(2), gpu.V(2), gpu.V(3))
	p.VShl(gpu.V(4), gpu.V(0), gpu.Imm(2))
	p.VAdd(gpu.V(4), gpu.V(4), gpu.S(1))
	p.VStore(gpu.V(4), 0, gpu.V(2))
	p.EndIf()
	return p.Build()
}

func redRun(s *sim.Session) error {
	ping, err := s.InputWords(redIn())
	if err != nil {
		return err
	}
	pong := s.ScratchWords(redN / 2)
	out := s.OutputWords(1)
	pass, err := buildReductionPass()
	if err != nil {
		return err
	}
	src, dst := ping, pong
	for length := redN; length > 2; length /= 2 {
		count := uint32(length / 2)
		waves := (int(count) + gpu.Lanes - 1) / gpu.Lanes
		if err := s.Run(gpu.Dispatch{Prog: pass, Waves: waves, Args: []uint32{src, dst, count}}); err != nil {
			return err
		}
		src, dst = dst, src
	}
	// Final pair sums directly into the output buffer.
	return s.Run(gpu.Dispatch{Prog: pass, Waves: 1, Args: []uint32{src, out, 1}})
}

func redGolden() []byte {
	var sum uint32
	for _, v := range redIn() {
		sum += v
	}
	return wordsBytes([]uint32{sum})
}

// backprop: the forward pass of a two-layer perceptron (256 inputs, 64
// hidden, 16 outputs) with sigmoid activations — Rodinia backprop's
// dense gather-reduce pattern, one thread per neuron.
const (
	bpIn     = 256
	bpHidden = 64
	bpOut    = 16
)

func bpInputs() (x, w1, w2 []uint32) {
	r := newRNG(0xBAC0)
	scale := func(ws []uint32) {
		for i, v := range ws {
			// Map [0,1) floats to small signed weights in [-0.5, 0.5).
			ws[i] = fb(bf(v) - 0.5)
		}
	}
	x = r.floats(bpIn)
	w1 = r.floats(bpIn * bpHidden)
	scale(w1)
	w2 = r.floats(bpHidden * bpOut)
	scale(w2)
	return
}

// buildLayer computes out[j] = sigmoid(sum_i w[j*n+i] * in[i]).
// Args: s0 = in, s1 = weights, s2 = out, s3 = n (inputs), s4 = count.
func buildLayer(name string) (*gpu.Program, error) {
	p := gpu.NewBuilder(name)
	p.VMov(gpu.V(0), gpu.Tid())
	p.VCmp(gpu.OpVCmpLT, gpu.V(0), gpu.S(4))
	p.IfVCC()
	p.VMov(gpu.V(1), gpu.S(3))
	p.VMul(gpu.V(2), gpu.V(0), gpu.V(1)) // j*n
	p.VShl(gpu.V(2), gpu.V(2), gpu.Imm(2))
	p.VAdd(gpu.V(2), gpu.V(2), gpu.S(1)) // weight walker
	p.VMov(gpu.V(3), gpu.S(0))           // input walker
	p.VMov(gpu.V(4), gpu.ImmF(0))        // acc
	p.SMov(gpu.S(5), gpu.S(3))
	p.Label("dot")
	p.VLoad(gpu.V(5), gpu.V(2), 0)
	p.VLoad(gpu.V(6), gpu.V(3), 0)
	p.VFMad(gpu.V(4), gpu.V(5), gpu.V(6), gpu.V(4))
	p.VAdd(gpu.V(2), gpu.V(2), gpu.Imm(4))
	p.VAdd(gpu.V(3), gpu.V(3), gpu.Imm(4))
	p.SSub(gpu.S(5), gpu.S(5), gpu.Imm(1))
	p.Brnz(gpu.S(5), "dot")
	// sigmoid(acc) = 1 / (1 + e^-acc)
	p.VFMul(gpu.V(4), gpu.V(4), gpu.ImmF(-1))
	p.VFExp(gpu.V(4), gpu.V(4))
	p.VFAdd(gpu.V(4), gpu.V(4), gpu.ImmF(1))
	p.VMov(gpu.V(7), gpu.ImmF(1))
	p.VFDiv(gpu.V(4), gpu.V(7), gpu.V(4))
	p.VShl(gpu.V(8), gpu.V(0), gpu.Imm(2))
	p.VAdd(gpu.V(8), gpu.V(8), gpu.S(2))
	p.VStore(gpu.V(8), 0, gpu.V(4))
	p.EndIf()
	return p.Build()
}

func bpRun(s *sim.Session) error {
	x, w1, w2 := bpInputs()
	xAddr, err := s.InputWords(x)
	if err != nil {
		return err
	}
	w1Addr, err := s.InputWords(w1)
	if err != nil {
		return err
	}
	w2Addr, err := s.InputWords(w2)
	if err != nil {
		return err
	}
	hidden := s.ScratchWords(bpHidden)
	out := s.OutputWords(bpOut)
	layer, err := buildLayer("backprop-layer")
	if err != nil {
		return err
	}
	if err := s.Run(gpu.Dispatch{Prog: layer, Waves: bpHidden / gpu.Lanes,
		Args: []uint32{xAddr, w1Addr, hidden, bpIn, bpHidden}}); err != nil {
		return err
	}
	return s.Run(gpu.Dispatch{Prog: layer, Waves: 1,
		Args: []uint32{hidden, w2Addr, out, bpHidden, bpOut}})
}

func bpGolden() []byte {
	x, w1, w2 := bpInputs()
	sigmoidLayer := func(in []float32, w []uint32, n, count int) []float32 {
		out := make([]float32, count)
		for j := 0; j < count; j++ {
			acc := float32(0)
			for i := 0; i < n; i++ {
				acc = bf(w[j*n+i])*in[i] + acc
			}
			out[j] = sigmoid(acc)
		}
		return out
	}
	xin := make([]float32, bpIn)
	for i, b := range x {
		xin[i] = bf(b)
	}
	hidden := sigmoidLayer(xin, w1, bpIn, bpHidden)
	out := sigmoidLayer(hidden, w2, bpHidden, bpOut)
	ws := make([]uint32, bpOut)
	for i, f := range out {
		ws[i] = fb(f)
	}
	return wordsBytes(ws)
}

func sigmoid(v float32) float32 {
	e := expf(v * -1)
	e = e + 1
	return float32(1) / e
}

// nw: Needleman-Wunsch dynamic programming over a 64x64 score matrix,
// processed one anti-diagonal per dispatch — Rodinia nw's wavefront
// dependence pattern with masked lanes at diagonal edges.
const nwN = 64

const nwPenalty = 3

func nwInputs() (scores []uint32) {
	r := newRNG(0x9019)
	return r.words(nwN*nwN, 20)
}

func buildNWDiag() (*gpu.Program, error) {
	// Args: s0 = matrix (with an extra top row/left column of boundary
	// cells), s1 = scores, s2 = diagonal index d, s3 = cell count on d.
	// Thread t computes cell (i, j) with i = t+1, j = d-t+1 in the padded
	// (nwN+1)^2 matrix.
	p := gpu.NewBuilder("nw-diag")
	p.VMov(gpu.V(0), gpu.Tid())
	p.VCmp(gpu.OpVCmpLT, gpu.V(0), gpu.S(3))
	p.IfVCC()
	p.VAdd(gpu.V(1), gpu.V(0), gpu.Imm(1)) // i
	p.VMov(gpu.V(2), gpu.S(2))
	p.VSub(gpu.V(2), gpu.V(2), gpu.V(0))
	p.VAdd(gpu.V(2), gpu.V(2), gpu.Imm(1)) // j
	// Padded row stride nwN+1: idx = i*(nwN+1) + j.
	p.VMul(gpu.V(3), gpu.V(1), gpu.Imm(nwN+1))
	p.VAdd(gpu.V(3), gpu.V(3), gpu.V(2)) // cell index
	p.VShl(gpu.V(4), gpu.V(3), gpu.Imm(2))
	p.VAdd(gpu.V(4), gpu.V(4), gpu.S(0))      // &m[i][j]
	p.VLoad(gpu.V(5), gpu.V(4), -4*(nwN+1)-4) // m[i-1][j-1]
	p.VLoad(gpu.V(6), gpu.V(4), -4*(nwN+1))   // m[i-1][j]
	p.VLoad(gpu.V(7), gpu.V(4), -4)           // m[i][j-1]
	// score index in the unpadded matrix: (i-1)*nwN + (j-1).
	p.VSub(gpu.V(8), gpu.V(1), gpu.Imm(1))
	p.VMul(gpu.V(8), gpu.V(8), gpu.Imm(nwN))
	p.VAdd(gpu.V(8), gpu.V(8), gpu.V(2))
	p.VSub(gpu.V(8), gpu.V(8), gpu.Imm(1))
	p.VShl(gpu.V(8), gpu.V(8), gpu.Imm(2))
	p.VAdd(gpu.V(8), gpu.V(8), gpu.S(1))
	p.VLoad(gpu.V(9), gpu.V(8), 0)                 // s[i][j]
	p.VAdd(gpu.V(5), gpu.V(5), gpu.V(9))           // diag + score
	p.VSub(gpu.V(6), gpu.V(6), gpu.Imm(nwPenalty)) // up - p
	p.VSub(gpu.V(7), gpu.V(7), gpu.Imm(nwPenalty)) // left - p
	p.VMax(gpu.V(5), gpu.V(5), gpu.V(6))
	p.VMax(gpu.V(5), gpu.V(5), gpu.V(7))
	p.VStore(gpu.V(4), 0, gpu.V(5))
	p.EndIf()
	return p.Build()
}

func nwRun(s *sim.Session) error {
	scores, err := s.InputWords(nwInputs())
	if err != nil {
		return err
	}
	// Padded matrix with boundary row/column: m[0][j] = -j*p, m[i][0] = -i*p.
	pad := make([]uint32, (nwN+1)*(nwN+1))
	for j := 0; j <= nwN; j++ {
		pad[j] = uint32(int32(-j * nwPenalty))
	}
	for i := 0; i <= nwN; i++ {
		pad[i*(nwN+1)] = uint32(int32(-i * nwPenalty))
	}
	matrix, err := s.InputWords(pad)
	if err != nil {
		return err
	}
	s.DeclareOutput(matrix, 4*(nwN+1)*(nwN+1))
	diag, err := buildNWDiag()
	if err != nil {
		return err
	}
	for d := 0; d < 2*nwN-1; d++ {
		// Cells (i, j) on diagonal d (0-based in the unpadded matrix):
		// i = t, j = d - t, with max(0, d-nwN+1) <= t <= min(d, nwN-1).
		lo := max(0, d-nwN+1)
		hi := min(d, nwN-1)
		count := hi - lo + 1
		// The kernel maps thread t to i = t+1: shift so thread 0 is i =
		// lo+1 by adjusting the diagonal argument... threads t in
		// [0, count) compute i = lo + t + 1, j = d - (lo + t) + 1.
		// Implemented by folding the lo-row offset into the buffer
		// pointers and passing d' = d - lo so thread t sees j = d'-t+1.
		base := matrix + uint32(4*lo*(nwN+1))
		sbase := scores + uint32(4*lo*nwN)
		waves := (count + gpu.Lanes - 1) / gpu.Lanes
		if err := s.Run(gpu.Dispatch{Prog: diag, Waves: waves,
			Args: []uint32{base, sbase, uint32(d - lo), uint32(count)}}); err != nil {
			return err
		}
	}
	return nil
}

func nwGolden() []byte {
	scores := nwInputs()
	pad := make([]int32, (nwN+1)*(nwN+1))
	for j := 0; j <= nwN; j++ {
		pad[j] = int32(-j * nwPenalty)
	}
	for i := 0; i <= nwN; i++ {
		pad[i*(nwN+1)] = int32(-i * nwPenalty)
	}
	for i := 1; i <= nwN; i++ {
		for j := 1; j <= nwN; j++ {
			diag := pad[(i-1)*(nwN+1)+j-1] + int32(scores[(i-1)*nwN+j-1])
			up := pad[(i-1)*(nwN+1)+j] - nwPenalty
			left := pad[i*(nwN+1)+j-1] - nwPenalty
			pad[i*(nwN+1)+j] = max(diag, max(up, left))
		}
	}
	ws := make([]uint32, len(pad))
	for i, v := range pad {
		ws[i] = uint32(v)
	}
	return wordsBytes(ws)
}

// kmeans: the assignment step of k-means clustering — 512 2-D points, 8
// centroids, one thread per point looping over centroids with
// compare-and-select nearest tracking (Rodinia kmeans' hot kernel).
const (
	kmN = 512
	kmK = 8
)

func kmInputs() (px, py, cx, cy []uint32) {
	r := newRNG(0x63A9)
	return r.floats(kmN), r.floats(kmN), r.floats(kmK), r.floats(kmK)
}

func kmRun(s *sim.Session) error {
	px, py, cx, cy := kmInputs()
	pxA, err := s.InputWords(px)
	if err != nil {
		return err
	}
	pyA, err := s.InputWords(py)
	if err != nil {
		return err
	}
	cxA, err := s.InputWords(cx)
	if err != nil {
		return err
	}
	cyA, err := s.InputWords(cy)
	if err != nil {
		return err
	}
	labels := s.OutputWords(kmN)

	// Args: s0 = px, s1 = py, s2 = cx, s3 = cy, s4 = labels.
	p := gpu.NewBuilder("kmeans-assign")
	p.VMov(gpu.V(0), gpu.Tid())
	p.VShl(gpu.V(1), gpu.V(0), gpu.Imm(2))
	p.VAdd(gpu.V(2), gpu.V(1), gpu.S(0))
	p.VLoad(gpu.V(3), gpu.V(2), 0) // x
	p.VAdd(gpu.V(2), gpu.V(1), gpu.S(1))
	p.VLoad(gpu.V(4), gpu.V(2), 0)   // y
	p.VMov(gpu.V(5), gpu.ImmF(1e30)) // best distance
	p.VMov(gpu.V(6), gpu.Imm(0))     // best index
	p.VMov(gpu.V(7), gpu.S(2))       // cx walker
	p.VMov(gpu.V(8), gpu.S(3))       // cy walker
	p.VMov(gpu.V(9), gpu.Imm(0))     // k
	p.SMov(gpu.S(5), gpu.Imm(kmK))
	p.Label("centers")
	p.VLoad(gpu.V(10), gpu.V(7), 0)
	p.VLoad(gpu.V(11), gpu.V(8), 0)
	p.VFSub(gpu.V(10), gpu.V(10), gpu.V(3))
	p.VFSub(gpu.V(11), gpu.V(11), gpu.V(4))
	p.VFMul(gpu.V(12), gpu.V(10), gpu.V(10))
	p.VFMad(gpu.V(12), gpu.V(11), gpu.V(11), gpu.V(12)) // dist^2
	p.VCmp(gpu.OpVCmpFLT, gpu.V(12), gpu.V(5))
	p.VCndMask(gpu.V(5), gpu.V(12), gpu.V(5)) // best = min
	p.VCndMask(gpu.V(6), gpu.V(9), gpu.V(6))  // best index
	p.VAdd(gpu.V(7), gpu.V(7), gpu.Imm(4))
	p.VAdd(gpu.V(8), gpu.V(8), gpu.Imm(4))
	p.VAdd(gpu.V(9), gpu.V(9), gpu.Imm(1))
	p.SSub(gpu.S(5), gpu.S(5), gpu.Imm(1))
	p.Brnz(gpu.S(5), "centers")
	p.VAdd(gpu.V(13), gpu.V(1), gpu.S(4))
	p.VStore(gpu.V(13), 0, gpu.V(6))
	prog, err := p.Build()
	if err != nil {
		return err
	}
	return s.Run(gpu.Dispatch{Prog: prog, Waves: kmN / gpu.Lanes,
		Args: []uint32{pxA, pyA, cxA, cyA, labels}})
}

func kmGolden() []byte {
	px, py, cx, cy := kmInputs()
	out := make([]uint32, kmN)
	for i := 0; i < kmN; i++ {
		best := float32(1e30)
		bestK := uint32(0)
		for k := 0; k < kmK; k++ {
			dx := bf(cx[k]) - bf(px[i])
			dy := bf(cy[k]) - bf(py[i])
			d := dx * dx
			d = dy*dy + d
			if d < best {
				best = d
				bestK = uint32(k)
			}
		}
		out[i] = bestK
	}
	return wordsBytes(out)
}

func init() {
	register("bitonicsort", "1024-point in-place bitonic sorting network", bsRun, bsGolden)
	register("reduction", "4096-point tree sum", redRun, redGolden)
	register("backprop", "two-layer perceptron forward pass with sigmoid", bpRun, bpGolden)
	register("nw", "Needleman-Wunsch anti-diagonal DP wavefront", nwRun, nwGolden)
	register("kmeans", "k-means assignment over 512 points, 8 centroids", kmRun, kmGolden)
}
