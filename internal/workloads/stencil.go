package workloads

import (
	"math"

	"mbavf/internal/gpu"
	"mbavf/internal/sim"
)

// recursivegaussian: a first-order recursive (IIR) Gaussian approximation
// down each column of a 64x64 float image, with the real algorithm's
// forward and backward passes: yf[i] = a*x[i] + b*yf[i-1] walking down,
// yb[i] = a*x[i] + b*yb[i+1] walking up, out = yf + yb. One thread per
// column; the backward pass re-reads the input at a long reuse distance.
const rgN = 64

const (
	rgA = float32(0.25)
	rgB = float32(0.75)
)

func rgIn() []uint32 {
	return newRNG(0x6A55).floats(rgN * rgN)
}

func rgRun(s *sim.Session) error {
	in, err := s.InputWords(rgIn())
	if err != nil {
		return err
	}
	out := s.OutputWords(rgN * rgN)

	// Args: s0 = in, s1 = out. Thread t owns column t.
	k := gpu.NewBuilder("recursivegaussian")
	k.VMov(gpu.V(0), gpu.Tid())
	k.VShl(gpu.V(1), gpu.V(0), gpu.Imm(2))
	// Forward pass, top to bottom: out[i] = yf[i].
	k.VAdd(gpu.V(2), gpu.V(1), gpu.S(0)) // src walker &in[0][t]
	k.VAdd(gpu.V(3), gpu.V(1), gpu.S(1)) // dst walker
	k.VMov(gpu.V(4), gpu.ImmF(0))        // yf carry
	k.SMov(gpu.S(2), gpu.Imm(rgN))
	k.Label("fwd")
	k.VLoad(gpu.V(5), gpu.V(2), 0)
	k.VFMul(gpu.V(6), gpu.V(4), gpu.ImmF(rgB))
	k.VFMad(gpu.V(4), gpu.V(5), gpu.ImmF(rgA), gpu.V(6)) // yf = x*a + b*yf
	k.VStore(gpu.V(3), 0, gpu.V(4))
	k.VAdd(gpu.V(2), gpu.V(2), gpu.Imm(4*rgN))
	k.VAdd(gpu.V(3), gpu.V(3), gpu.Imm(4*rgN))
	k.SSub(gpu.S(2), gpu.S(2), gpu.Imm(1))
	k.Brnz(gpu.S(2), "fwd")
	// Backward pass, bottom to top: out[i] = yf[i] + yb[i]. The walkers
	// sit one row past the end after the forward loop.
	k.VMov(gpu.V(4), gpu.ImmF(0)) // yb carry
	k.SMov(gpu.S(2), gpu.Imm(rgN))
	k.Label("bwd")
	k.VSub(gpu.V(2), gpu.V(2), gpu.Imm(4*rgN))
	k.VSub(gpu.V(3), gpu.V(3), gpu.Imm(4*rgN))
	k.VLoad(gpu.V(5), gpu.V(2), 0) // x again (long reuse distance)
	k.VFMul(gpu.V(6), gpu.V(4), gpu.ImmF(rgB))
	k.VFMad(gpu.V(4), gpu.V(5), gpu.ImmF(rgA), gpu.V(6)) // yb = x*a + b*yb
	k.VLoad(gpu.V(7), gpu.V(3), 0)                       // yf
	k.VFAdd(gpu.V(7), gpu.V(7), gpu.V(4))                // yf + yb
	k.VStore(gpu.V(3), 0, gpu.V(7))
	k.SSub(gpu.S(2), gpu.S(2), gpu.Imm(1))
	k.Brnz(gpu.S(2), "bwd")
	prog, err := k.Build()
	if err != nil {
		return err
	}
	return s.Run(gpu.Dispatch{Prog: prog, Waves: rgN / gpu.Lanes, Args: []uint32{in, out}})
}

func rgGolden() []byte {
	in := rgIn()
	out := make([]uint32, rgN*rgN)
	for c := 0; c < rgN; c++ {
		y := float32(0)
		for r := 0; r < rgN; r++ {
			x := bf(in[r*rgN+c])
			y = x*rgA + y*rgB
			out[r*rgN+c] = fb(y)
		}
		y = 0
		for r := rgN - 1; r >= 0; r-- {
			x := bf(in[r*rgN+c])
			y = x*rgA + y*rgB
			out[r*rgN+c] = fb(bf(out[r*rgN+c]) + y)
		}
	}
	return wordsBytes(out)
}

// srad: four iterations of an anisotropic-diffusion stencil on a 64x64
// float image. Interior pixels compute four neighbor gradients, a
// coefficient exp(-q*lambda), and a diffusion update; boundary pixels copy
// through a divergent else-branch — the Rodinia srad pattern.
const (
	sradN     = 64
	sradIters = 4
)

const sradLambda = float32(0.5)

func sradIn() []uint32 {
	return newRNG(0x54AD).floats(sradN * sradN)
}

func buildSradPass() (*gpu.Program, error) {
	// Args: s0 = src, s1 = dst.
	k := gpu.NewBuilder("srad-pass")
	k.VMov(gpu.V(0), gpu.Tid())
	k.VShr(gpu.V(1), gpu.V(0), gpu.Imm(6))  // row
	k.VAnd(gpu.V(2), gpu.V(0), gpu.Imm(63)) // col
	// Interior mask: sum of four boundary predicates must be 4.
	k.VMov(gpu.V(3), gpu.Imm(0))
	k.VCmp(gpu.OpVCmpGE, gpu.V(1), gpu.Imm(1))
	k.VCndMask(gpu.V(4), gpu.Imm(1), gpu.Imm(0))
	k.VAdd(gpu.V(3), gpu.V(3), gpu.V(4))
	k.VCmp(gpu.OpVCmpLE, gpu.V(1), gpu.Imm(sradN-2))
	k.VCndMask(gpu.V(4), gpu.Imm(1), gpu.Imm(0))
	k.VAdd(gpu.V(3), gpu.V(3), gpu.V(4))
	k.VCmp(gpu.OpVCmpGE, gpu.V(2), gpu.Imm(1))
	k.VCndMask(gpu.V(4), gpu.Imm(1), gpu.Imm(0))
	k.VAdd(gpu.V(3), gpu.V(3), gpu.V(4))
	k.VCmp(gpu.OpVCmpLE, gpu.V(2), gpu.Imm(sradN-2))
	k.VCndMask(gpu.V(4), gpu.Imm(1), gpu.Imm(0))
	k.VAdd(gpu.V(3), gpu.V(3), gpu.V(4))
	// Own pixel address.
	k.VShl(gpu.V(5), gpu.V(0), gpu.Imm(2))
	k.VAdd(gpu.V(5), gpu.V(5), gpu.S(0))
	k.VLoad(gpu.V(6), gpu.V(5), 0) // center
	k.VCmp(gpu.OpVCmpEQ, gpu.V(3), gpu.Imm(4))
	k.IfVCC()
	k.VLoad(gpu.V(7), gpu.V(5), -4*sradN) // north
	k.VLoad(gpu.V(8), gpu.V(5), 4*sradN)  // south
	k.VLoad(gpu.V(9), gpu.V(5), -4)       // west
	k.VLoad(gpu.V(10), gpu.V(5), 4)       // east
	k.VFSub(gpu.V(7), gpu.V(7), gpu.V(6))
	k.VFSub(gpu.V(8), gpu.V(8), gpu.V(6))
	k.VFSub(gpu.V(9), gpu.V(9), gpu.V(6))
	k.VFSub(gpu.V(10), gpu.V(10), gpu.V(6))
	// q = dN^2 + dS^2 + dW^2 + dE^2
	k.VFMul(gpu.V(11), gpu.V(7), gpu.V(7))
	k.VFMad(gpu.V(11), gpu.V(8), gpu.V(8), gpu.V(11))
	k.VFMad(gpu.V(11), gpu.V(9), gpu.V(9), gpu.V(11))
	k.VFMad(gpu.V(11), gpu.V(10), gpu.V(10), gpu.V(11))
	// c = exp(-q * lambda)
	k.VFMul(gpu.V(12), gpu.V(11), gpu.ImmF(-sradLambda))
	k.VFExp(gpu.V(12), gpu.V(12))
	// div = dN + dS + dW + dE
	k.VFAdd(gpu.V(13), gpu.V(7), gpu.V(8))
	k.VFAdd(gpu.V(13), gpu.V(13), gpu.V(9))
	k.VFAdd(gpu.V(13), gpu.V(13), gpu.V(10))
	// out = center + 0.05 * c * div
	k.VFMul(gpu.V(14), gpu.V(12), gpu.V(13))
	k.VFMad(gpu.V(6), gpu.V(14), gpu.ImmF(0.05), gpu.V(6))
	k.EndIf()
	k.VShl(gpu.V(15), gpu.V(0), gpu.Imm(2))
	k.VAdd(gpu.V(15), gpu.V(15), gpu.S(1))
	k.VStore(gpu.V(15), 0, gpu.V(6))
	return k.Build()
}

func sradRun(s *sim.Session) error {
	ping, err := s.InputWords(sradIn())
	if err != nil {
		return err
	}
	pong := s.ScratchWords(sradN * sradN)
	prog, err := buildSradPass()
	if err != nil {
		return err
	}
	src, dst := ping, pong
	for it := 0; it < sradIters; it++ {
		err := s.Run(gpu.Dispatch{Prog: prog, Waves: sradN * sradN / gpu.Lanes, Args: []uint32{src, dst}})
		if err != nil {
			return err
		}
		src, dst = dst, src
	}
	s.DeclareOutput(src, 4*sradN*sradN)
	return nil
}

func sradGolden() []byte {
	cur := make([]float32, sradN*sradN)
	for i, b := range sradIn() {
		cur[i] = bf(b)
	}
	next := make([]float32, sradN*sradN)
	for it := 0; it < sradIters; it++ {
		for r := 0; r < sradN; r++ {
			for c := 0; c < sradN; c++ {
				i := r*sradN + c
				center := cur[i]
				if r >= 1 && r <= sradN-2 && c >= 1 && c <= sradN-2 {
					dN := cur[i-sradN] - center
					dS := cur[i+sradN] - center
					dW := cur[i-1] - center
					dE := cur[i+1] - center
					q := dN * dN
					q = dS*dS + q
					q = dW*dW + q
					q = dE*dE + q
					cf := float32(math.Exp(float64(q * -sradLambda)))
					div := dN + dS
					div = div + dW
					div = div + dE
					cd := cf * div
					center = cd*0.05 + center
				}
				next[i] = center
			}
		}
		cur, next = next, cur
	}
	ws := make([]uint32, len(cur))
	for i, f := range cur {
		ws[i] = fb(f)
	}
	return wordsBytes(ws)
}

func init() {
	register("recursivegaussian", "per-column recursive IIR filter", rgRun, rgGolden)
	register("srad", "4-iteration diffusion stencil with exp", sradRun, sradGolden)
}
