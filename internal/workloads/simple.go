package workloads

import (
	"mbavf/internal/gpu"
	"mbavf/internal/sim"
)

// vecadd: c[i] = a[i] + b[i], one element per thread. Pure streaming; the
// quickstart workload.
const vecaddN = 1024

func vecaddInputs() ([]uint32, []uint32) {
	r := newRNG(0xC0FFEE)
	return r.words(vecaddN, 1<<20), r.words(vecaddN, 1<<20)
}

func vecaddRun(s *sim.Session) error {
	a, b := vecaddInputs()
	aAddr, err := s.InputWords(a)
	if err != nil {
		return err
	}
	bAddr, err := s.InputWords(b)
	if err != nil {
		return err
	}
	cAddr := s.OutputWords(vecaddN)

	k := gpu.NewBuilder("vecadd")
	k.VMov(gpu.V(0), gpu.Tid())
	k.VShl(gpu.V(0), gpu.V(0), gpu.Imm(2))
	k.VAdd(gpu.V(1), gpu.V(0), gpu.S(0))
	k.VLoad(gpu.V(2), gpu.V(1), 0)
	k.VAdd(gpu.V(1), gpu.V(0), gpu.S(1))
	k.VLoad(gpu.V(3), gpu.V(1), 0)
	k.VAdd(gpu.V(4), gpu.V(2), gpu.V(3))
	k.VAdd(gpu.V(1), gpu.V(0), gpu.S(2))
	k.VStore(gpu.V(1), 0, gpu.V(4))
	prog, err := k.Build()
	if err != nil {
		return err
	}
	return s.Run(gpu.Dispatch{Prog: prog, Waves: vecaddN / gpu.Lanes, Args: []uint32{aAddr, bAddr, cAddr}})
}

func vecaddGolden() []byte {
	a, b := vecaddInputs()
	out := make([]uint32, vecaddN)
	for i := range out {
		out[i] = a[i] + b[i]
	}
	return wordsBytes(out)
}

// matmul: C = A x B for 32x32 integer matrices, one output element per
// thread with a k-loop. Rows of A are reused across a wavefront; columns
// of B stride through memory — the dense-compute pattern of the AMD
// MatrixMultiplication sample.
const matmulN = 32

func matmulIn() ([]uint32, []uint32) {
	r := newRNG(0x3A73)
	return r.words(matmulN*matmulN, 1000), r.words(matmulN*matmulN, 1000)
}

func matmulRun(s *sim.Session) error {
	a, b := matmulIn()
	aAddr, err := s.InputWords(a)
	if err != nil {
		return err
	}
	bAddr, err := s.InputWords(b)
	if err != nil {
		return err
	}
	cAddr := s.OutputWords(matmulN * matmulN)

	k := gpu.NewBuilder("matmul")
	k.VMov(gpu.V(0), gpu.Tid())
	k.VShr(gpu.V(1), gpu.V(0), gpu.Imm(5))  // row
	k.VAnd(gpu.V(2), gpu.V(0), gpu.Imm(31)) // col
	k.VMov(gpu.V(3), gpu.Imm(0))            // acc
	k.VShl(gpu.V(4), gpu.V(1), gpu.Imm(7))  // row*32*4
	k.VAdd(gpu.V(4), gpu.V(4), gpu.S(0))    // &A[row][0]
	k.VShl(gpu.V(5), gpu.V(2), gpu.Imm(2))
	k.VAdd(gpu.V(5), gpu.V(5), gpu.S(1)) // &B[0][col]
	k.SMov(gpu.S(3), gpu.Imm(matmulN))
	k.Label("kloop")
	k.VLoad(gpu.V(6), gpu.V(4), 0)
	k.VLoad(gpu.V(7), gpu.V(5), 0)
	k.VMad(gpu.V(3), gpu.V(6), gpu.V(7), gpu.V(3))
	k.VAdd(gpu.V(4), gpu.V(4), gpu.Imm(4))
	k.VAdd(gpu.V(5), gpu.V(5), gpu.Imm(4*matmulN))
	k.SSub(gpu.S(3), gpu.S(3), gpu.Imm(1))
	k.Brnz(gpu.S(3), "kloop")
	k.VShl(gpu.V(8), gpu.V(0), gpu.Imm(2))
	k.VAdd(gpu.V(8), gpu.V(8), gpu.S(2))
	k.VStore(gpu.V(8), 0, gpu.V(3))
	prog, err := k.Build()
	if err != nil {
		return err
	}
	waves := matmulN * matmulN / gpu.Lanes
	return s.Run(gpu.Dispatch{Prog: prog, Waves: waves, Args: []uint32{aAddr, bAddr, cAddr}})
}

func matmulGolden() []byte {
	a, b := matmulIn()
	out := make([]uint32, matmulN*matmulN)
	for r := 0; r < matmulN; r++ {
		for c := 0; c < matmulN; c++ {
			var acc uint32
			for k := 0; k < matmulN; k++ {
				acc += a[r*matmulN+k] * b[k*matmulN+c]
			}
			out[r*matmulN+c] = acc
		}
	}
	return wordsBytes(out)
}

// matrixtranspose: out[r][c] = in[c][r] for a 128x128 matrix with
// coalesced (row-major) writes and column-strided reads, the layout of
// the optimized MatrixTranspose sample. Each input line is touched by 16
// different wavefront instructions spread over time, exercising cache
// reuse at long strides.
const transposeN = 128

func transposeIn() []uint32 {
	return newRNG(0x7A54).words(transposeN*transposeN, 1<<24)
}

func transposeRun(s *sim.Session) error {
	in := transposeIn()
	inAddr, err := s.InputWords(in)
	if err != nil {
		return err
	}
	outAddr := s.OutputWords(transposeN * transposeN)

	k := gpu.NewBuilder("matrixtranspose")
	k.VMov(gpu.V(0), gpu.Tid())
	k.VShr(gpu.V(1), gpu.V(0), gpu.Imm(7))   // r (output row)
	k.VAnd(gpu.V(2), gpu.V(0), gpu.Imm(127)) // c (output col)
	k.VShl(gpu.V(3), gpu.V(2), gpu.Imm(7))   // c*128
	k.VAdd(gpu.V(3), gpu.V(3), gpu.V(1))     // c*128 + r
	k.VShl(gpu.V(3), gpu.V(3), gpu.Imm(2))
	k.VAdd(gpu.V(3), gpu.V(3), gpu.S(0))
	k.VLoad(gpu.V(4), gpu.V(3), 0) // in[c][r], column-strided gather
	k.VShl(gpu.V(5), gpu.V(0), gpu.Imm(2))
	k.VAdd(gpu.V(5), gpu.V(5), gpu.S(1))
	k.VStore(gpu.V(5), 0, gpu.V(4)) // out[r][c], coalesced
	prog, err := k.Build()
	if err != nil {
		return err
	}
	waves := transposeN * transposeN / gpu.Lanes
	return s.Run(gpu.Dispatch{Prog: prog, Waves: waves, Args: []uint32{inAddr, outAddr}})
}

func transposeGolden() []byte {
	in := transposeIn()
	out := make([]uint32, transposeN*transposeN)
	for r := 0; r < transposeN; r++ {
		for c := 0; c < transposeN; c++ {
			out[c*transposeN+r] = in[r*transposeN+c]
		}
	}
	return wordsBytes(out)
}

func init() {
	register("vecadd", "streaming element-wise add (quickstart)", vecaddRun, vecaddGolden)
	register("matmul", "dense 32x32 integer matrix multiply", matmulRun, matmulGolden)
	register("matrixtranspose", "128x128 strided transpose", transposeRun, transposeGolden)
}
