package workloads

import (
	"mbavf/internal/gpu"
	"mbavf/internal/sim"
)

// histogram: 16KB of bytes binned into 16 buckets. Each thread counts its
// 64-byte slice into a private bin array (byte gathers + read-modify-write
// scatters), then a reduction pass sums the private histograms — the AMD
// Histogram sample's privatization pattern.
const (
	histBytes   = 16384
	histThreads = 256
	histBins    = 16
	histPerThr  = histBytes / histThreads
)

func histIn() []byte {
	r := newRNG(0x4157)
	out := make([]byte, histBytes)
	for i := range out {
		out[i] = byte(r.next())
	}
	return out
}

func histRun(s *sim.Session) error {
	in, err := s.InputBytes(histIn())
	if err != nil {
		return err
	}
	private := s.ScratchWords(histThreads * histBins)
	out := s.OutputWords(histBins)

	// Count pass: args s0 = input, s1 = private bins.
	k := gpu.NewBuilder("histogram-count")
	k.VMov(gpu.V(0), gpu.Tid())
	k.VShl(gpu.V(1), gpu.V(0), gpu.Imm(6)) // tid*64: input offset
	k.VAdd(gpu.V(1), gpu.V(1), gpu.S(0))
	k.VShl(gpu.V(2), gpu.V(0), gpu.Imm(6)) // tid*16*4: private base
	k.VAdd(gpu.V(2), gpu.V(2), gpu.S(1))
	k.SMov(gpu.S(2), gpu.Imm(histPerThr))
	k.Label("loop")
	k.VLoadB(gpu.V(3), gpu.V(1), 0)
	k.VAnd(gpu.V(3), gpu.V(3), gpu.Imm(histBins-1)) // bin
	k.VShl(gpu.V(3), gpu.V(3), gpu.Imm(2))
	k.VAdd(gpu.V(3), gpu.V(3), gpu.V(2)) // &private[tid][bin]
	k.VLoad(gpu.V(4), gpu.V(3), 0)
	k.VAdd(gpu.V(4), gpu.V(4), gpu.Imm(1))
	k.VStore(gpu.V(3), 0, gpu.V(4))
	k.VAdd(gpu.V(1), gpu.V(1), gpu.Imm(1))
	k.SSub(gpu.S(2), gpu.S(2), gpu.Imm(1))
	k.Brnz(gpu.S(2), "loop")
	count, err := k.Build()
	if err != nil {
		return err
	}
	if err := s.Run(gpu.Dispatch{Prog: count, Waves: histThreads / gpu.Lanes, Args: []uint32{in, private}}); err != nil {
		return err
	}

	// Reduce pass: one wave; lane b sums private[t][b] over all threads.
	// Args: s0 = private bins, s1 = output.
	r := gpu.NewBuilder("histogram-reduce")
	r.VMov(gpu.V(0), gpu.Tid())
	r.VShl(gpu.V(1), gpu.V(0), gpu.Imm(2)) // bin byte offset
	r.VAdd(gpu.V(1), gpu.V(1), gpu.S(0))
	r.VMov(gpu.V(2), gpu.Imm(0)) // acc
	r.SMov(gpu.S(2), gpu.Imm(histThreads))
	r.Label("loop")
	r.VLoad(gpu.V(3), gpu.V(1), 0)
	r.VAdd(gpu.V(2), gpu.V(2), gpu.V(3))
	r.VAdd(gpu.V(1), gpu.V(1), gpu.Imm(4*histBins))
	r.SSub(gpu.S(2), gpu.S(2), gpu.Imm(1))
	r.Brnz(gpu.S(2), "loop")
	r.VShl(gpu.V(4), gpu.V(0), gpu.Imm(2))
	r.VAdd(gpu.V(4), gpu.V(4), gpu.S(1))
	r.VStore(gpu.V(4), 0, gpu.V(2))
	reduce, err := r.Build()
	if err != nil {
		return err
	}
	return s.Run(gpu.Dispatch{Prog: reduce, Waves: 1, Args: []uint32{private, out}})
}

func histGolden() []byte {
	in := histIn()
	out := make([]uint32, histBins)
	for _, b := range in {
		out[b&(histBins-1)]++
	}
	return wordsBytes(out)
}

// prefixsum: inclusive scan of 2048 int32 values via Hillis-Steele
// log-steps, ping-ponging between buffers — one dispatch per stride. Lanes
// below the stride diverge (copy-only path), the paper's PrefixSum
// control-flow behavior.
const scanN = 2048

func scanIn() []uint32 {
	return newRNG(0x5CA9).words(scanN, 1000)
}

func buildScanPass() (*gpu.Program, error) {
	// Args: s0 = src, s1 = dst, s2 = stride (elements).
	k := gpu.NewBuilder("prefixsum-pass")
	k.VMov(gpu.V(0), gpu.Tid())
	k.VShl(gpu.V(1), gpu.V(0), gpu.Imm(2))
	k.VAdd(gpu.V(1), gpu.V(1), gpu.S(0)) // &src[i]
	k.VLoad(gpu.V(2), gpu.V(1), 0)
	k.VMov(gpu.V(5), gpu.S(2))
	k.VCmp(gpu.OpVCmpGE, gpu.V(0), gpu.V(5))
	k.IfVCC()
	k.VSub(gpu.V(3), gpu.V(0), gpu.V(5))
	k.VShl(gpu.V(3), gpu.V(3), gpu.Imm(2))
	k.VAdd(gpu.V(3), gpu.V(3), gpu.S(0))
	k.VLoad(gpu.V(4), gpu.V(3), 0) // src[i-stride]
	k.VAdd(gpu.V(2), gpu.V(2), gpu.V(4))
	k.EndIf()
	k.VShl(gpu.V(6), gpu.V(0), gpu.Imm(2))
	k.VAdd(gpu.V(6), gpu.V(6), gpu.S(1))
	k.VStore(gpu.V(6), 0, gpu.V(2))
	return k.Build()
}

func prefixsumRun(s *sim.Session) error {
	ping, err := s.InputWords(scanIn())
	if err != nil {
		return err
	}
	pong := s.ScratchWords(scanN)
	prog, err := buildScanPass()
	if err != nil {
		return err
	}
	src, dst := ping, pong
	for stride := uint32(1); stride < scanN; stride *= 2 {
		err := s.Run(gpu.Dispatch{Prog: prog, Waves: scanN / gpu.Lanes, Args: []uint32{src, dst, stride}})
		if err != nil {
			return err
		}
		src, dst = dst, src
	}
	s.DeclareOutput(src, 4*scanN) // final result lives in the last dst
	return nil
}

func prefixsumGolden() []byte {
	x := scanIn()
	out := make([]uint32, scanN)
	var acc uint32
	for i, v := range x {
		acc += v
		out[i] = acc
	}
	return wordsBytes(out)
}

// scanlargearrays: blocked scan of 8192 values: per-thread serial scan of a
// 16-element block, Hillis-Steele scan of the 512 block sums, then an
// add-back pass — the AMD ScanLargeArrays decomposition.
const (
	slaN     = 8192
	slaBlock = 16
)

func slaIn() []uint32 {
	return newRNG(0x51A4).words(slaN, 500)
}

func slaRun(s *sim.Session) error {
	in, err := s.InputWords(slaIn())
	if err != nil {
		return err
	}
	out := s.OutputWords(slaN)
	sumsPing := s.ScratchWords(slaN / slaBlock)
	sumsPong := s.ScratchWords(slaN / slaBlock)

	// Phase 1: serial block scan. Args: s0 = in, s1 = out, s2 = sums.
	k := gpu.NewBuilder("sla-blockscan")
	k.VMov(gpu.V(0), gpu.Tid())
	k.VShl(gpu.V(1), gpu.V(0), gpu.Imm(6)) // tid*16*4
	k.VAdd(gpu.V(2), gpu.V(1), gpu.S(0))   // src walker
	k.VAdd(gpu.V(3), gpu.V(1), gpu.S(1))   // dst walker
	k.VMov(gpu.V(4), gpu.Imm(0))           // acc
	k.SMov(gpu.S(3), gpu.Imm(slaBlock))
	k.Label("loop")
	k.VLoad(gpu.V(5), gpu.V(2), 0)
	k.VAdd(gpu.V(4), gpu.V(4), gpu.V(5))
	k.VStore(gpu.V(3), 0, gpu.V(4))
	k.VAdd(gpu.V(2), gpu.V(2), gpu.Imm(4))
	k.VAdd(gpu.V(3), gpu.V(3), gpu.Imm(4))
	k.SSub(gpu.S(3), gpu.S(3), gpu.Imm(1))
	k.Brnz(gpu.S(3), "loop")
	k.VShl(gpu.V(6), gpu.V(0), gpu.Imm(2))
	k.VAdd(gpu.V(6), gpu.V(6), gpu.S(2))
	k.VStore(gpu.V(6), 0, gpu.V(4)) // block total
	blockScan, err := k.Build()
	if err != nil {
		return err
	}
	nBlocks := slaN / slaBlock
	if err := s.Run(gpu.Dispatch{Prog: blockScan, Waves: nBlocks / gpu.Lanes, Args: []uint32{in, out, sumsPing}}); err != nil {
		return err
	}

	// Phase 2: scan the block sums.
	pass, err := buildScanPass()
	if err != nil {
		return err
	}
	src, dst := sumsPing, sumsPong
	for stride := uint32(1); stride < uint32(nBlocks); stride *= 2 {
		err := s.Run(gpu.Dispatch{Prog: pass, Waves: nBlocks / gpu.Lanes, Args: []uint32{src, dst, stride}})
		if err != nil {
			return err
		}
		src, dst = dst, src
	}

	// Phase 3: add the preceding blocks' total to every element of blocks
	// 1..n-1. Args: s0 = out, s1 = scanned sums.
	a := gpu.NewBuilder("sla-addback")
	a.VMov(gpu.V(0), gpu.Tid())
	a.VShr(gpu.V(1), gpu.V(0), gpu.Imm(4)) // block
	a.VCmp(gpu.OpVCmpGT, gpu.V(1), gpu.Imm(0))
	a.IfVCC()
	a.VSub(gpu.V(2), gpu.V(1), gpu.Imm(1))
	a.VShl(gpu.V(2), gpu.V(2), gpu.Imm(2))
	a.VAdd(gpu.V(2), gpu.V(2), gpu.S(1))
	a.VLoad(gpu.V(3), gpu.V(2), 0) // sums[block-1]
	a.VShl(gpu.V(4), gpu.V(0), gpu.Imm(2))
	a.VAdd(gpu.V(4), gpu.V(4), gpu.S(0))
	a.VLoad(gpu.V(5), gpu.V(4), 0)
	a.VAdd(gpu.V(5), gpu.V(5), gpu.V(3))
	a.VStore(gpu.V(4), 0, gpu.V(5))
	a.EndIf()
	addBack, err := a.Build()
	if err != nil {
		return err
	}
	return s.Run(gpu.Dispatch{Prog: addBack, Waves: slaN / gpu.Lanes, Args: []uint32{out, src}})
}

func slaGolden() []byte {
	x := slaIn()
	out := make([]uint32, slaN)
	var acc uint32
	for i, v := range x {
		acc += v
		out[i] = acc
	}
	return wordsBytes(out)
}

func init() {
	register("histogram", "16KB byte histogram with private bins", histRun, histGolden)
	register("prefixsum", "2048-point Hillis-Steele inclusive scan", prefixsumRun, prefixsumGolden)
	register("scanlargearrays", "8192-point blocked scan with add-back", slaRun, slaGolden)
}
