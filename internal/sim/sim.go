// Package sim assembles the full APU simulator — memory, cache hierarchy,
// GPU, dataflow graph, and lifetime trackers — and runs workloads on it,
// producing everything MB-AVF analysis needs: per-structure lifetime
// segments, a solved liveness graph, and the cycle count.
package sim

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"mbavf/internal/cache"
	"mbavf/internal/dataflow"
	"mbavf/internal/gpu"
	"mbavf/internal/lifetime"
	"mbavf/internal/mem"
	"mbavf/internal/obs"
)

// Observability series published per finalized run. Counters are created
// once at init; publishing is a handful of atomic adds at Finalize, so
// the simulation hot loops stay untouched.
var (
	obsRuns        = obs.NewCounter("sim.runs")
	obsCycles      = obs.NewCounter("gpu.cycles")
	obsInstrs      = obs.NewCounter("gpu.instructions")
	obsStalls      = obs.NewCounter("gpu.stall_cycles")
	obsL1Hits      = obs.NewCounter("cache.l1.hits")
	obsL1Misses    = obs.NewCounter("cache.l1.misses")
	obsL1Evictions = obs.NewCounter("cache.l1.evictions")
	obsL2Hits      = obs.NewCounter("cache.l2.hits")
	obsL2Misses    = obs.NewCounter("cache.l2.misses")
	obsL2Evictions = obs.NewCounter("cache.l2.evictions")
)

// Config selects the machine shape and which structures to instrument.
type Config struct {
	// MemBytes is the simulated memory size.
	MemBytes int
	// GPU is the compute configuration.
	GPU gpu.Config
	// Caches is the hierarchy configuration.
	Caches cache.HierConfig
	// TrackL1 instruments compute unit 0's L1 data array.
	TrackL1 bool
	// TrackL2 instruments the shared L2 data array.
	TrackL2 bool
	// TrackVGPR instruments compute unit 0's vector register file.
	TrackVGPR bool
	// EnableGraph records the dataflow graph (required for any AVF
	// analysis; disable only for raw fault-injection runs).
	EnableGraph bool
}

// DefaultConfig returns the paper's APU with full instrumentation.
func DefaultConfig() Config {
	return Config{
		MemBytes:    4 << 20,
		GPU:         gpu.DefaultConfig(),
		Caches:      cache.DefaultHierConfig(),
		TrackL1:     true,
		TrackL2:     true,
		TrackVGPR:   true,
		EnableGraph: true,
	}
}

// Fingerprint returns a stable 16-hex-digit digest of the machine shape:
// every field that changes what a simulation run measures. Two configs
// with equal fingerprints produce bit-identical measurement artifacts for
// the same workload, so the run-artifact store keys on it. The canonical
// string spells out every field by name — adding a Config field without
// extending it would silently alias stored artifacts across machine
// shapes, so keep it exhaustive.
func (c Config) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "mem=%d\n", c.MemBytes)
	fmt.Fprintf(h, "gpu.cus=%d gpu.waveslots=%d gpu.vregs=%d gpu.sregs=%d gpu.maxinstrs=%d\n",
		c.GPU.NumCUs, c.GPU.WaveSlotsPerCU, c.GPU.NumVRegs, c.GPU.NumSRegs, c.GPU.MaxInstructions)
	fmt.Fprintf(h, "hier.cus=%d hier.memlat=%d\n", c.Caches.NumCUs, c.Caches.MemLatency)
	fmt.Fprintf(h, "l1.size=%d l1.line=%d l1.ways=%d l1.lat=%d\n",
		c.Caches.L1.SizeBytes, c.Caches.L1.LineBytes, c.Caches.L1.Ways, c.Caches.L1.HitLatency)
	fmt.Fprintf(h, "l2.size=%d l2.line=%d l2.ways=%d l2.lat=%d\n",
		c.Caches.L2.SizeBytes, c.Caches.L2.LineBytes, c.Caches.L2.Ways, c.Caches.L2.HitLatency)
	fmt.Fprintf(h, "track=%t,%t,%t graph=%t\n", c.TrackL1, c.TrackL2, c.TrackVGPR, c.EnableGraph)
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// InjectionConfig returns a lean configuration for fault-injection
// campaigns: functional simulation only, no instrumentation.
func InjectionConfig() Config {
	cfg := DefaultConfig()
	cfg.TrackL1 = false
	cfg.TrackL2 = false
	cfg.TrackVGPR = false
	cfg.EnableGraph = false
	return cfg
}

// Region is a byte range of memory holding final program output.
type Region struct {
	Addr uint32
	Len  int
}

// Session is one simulation run: build inputs, dispatch kernels, finalize,
// then analyze.
type Session struct {
	Cfg     Config
	Mem     *mem.Memory
	Graph   *dataflow.Graph
	Hier    *cache.Hierarchy
	Machine *gpu.Machine

	// Label names the run for observability (the workload name when the
	// session was built by Execute); it feeds span labels like
	// "analyze:minife".
	Label string

	L1Tracker   *lifetime.Tracker
	L2Tracker   *lifetime.Tracker
	VGPRTracker *lifetime.Tracker

	outputs   []Region
	allocPtr  uint32
	finalized bool
}

// NewSession builds a fresh simulator.
func NewSession(cfg Config) (*Session, error) {
	return NewSessionContext(context.Background(), cfg)
}

// NewSessionContext builds a fresh simulator whose dispatches poll ctx:
// cancelling it (or exceeding its deadline) aborts the running kernel
// between instructions with the context's error. Background or nil
// contexts cost nothing on the execution path.
func NewSessionContext(ctx context.Context, cfg Config) (*Session, error) {
	if cfg.MemBytes <= 0 {
		return nil, fmt.Errorf("sim: MemBytes must be positive")
	}
	s := &Session{Cfg: cfg, allocPtr: 64}
	s.Mem = mem.New(cfg.MemBytes)
	if cfg.EnableGraph {
		s.Graph = dataflow.NewGraph()
	}
	var err error
	s.Hier, err = cache.NewHierarchy(cfg.Caches, s.Mem)
	if err != nil {
		return nil, err
	}
	if cfg.TrackL1 {
		sets, ways := s.Hier.L1Slots()
		s.L1Tracker = lifetime.NewTracker(sets*ways, s.Hier.LineBytes())
		s.Hier.TrackL1(0, s.L1Tracker)
	}
	if cfg.TrackL2 {
		sets, ways := s.Hier.L2Slots()
		s.L2Tracker = lifetime.NewTracker(sets*ways, s.Hier.LineBytes())
		s.Hier.TrackL2(s.L2Tracker)
	}
	s.Machine, err = gpu.New(cfg.GPU, s.Mem, s.Hier)
	if err != nil {
		return nil, err
	}
	if ctx != nil && ctx.Done() != nil {
		s.Machine.SetCancel(ctx.Err)
	}
	if cfg.TrackVGPR {
		s.VGPRTracker = lifetime.NewTracker(cfg.GPU.VGPRThreads()*cfg.GPU.NumVRegs, 4)
		s.Machine.TrackVGPR(0, s.VGPRTracker)
	}
	if cfg.EnableGraph {
		s.Machine.AttachGraph(s.Graph)
	}
	return s, nil
}

// Alloc reserves n bytes of memory, 64-byte aligned, and returns the base
// address.
func (s *Session) Alloc(n int) uint32 {
	addr := s.allocPtr
	s.allocPtr += uint32((n + 63) &^ 63)
	if int(s.allocPtr) > s.Mem.Size() {
		panic(fmt.Sprintf("sim: allocation of %d bytes exhausts %d-byte memory", n, s.Mem.Size()))
	}
	return addr
}

// InputWords allocates and initializes an input buffer of 32-bit words.
func (s *Session) InputWords(vals []uint32) (uint32, error) {
	addr := s.Alloc(4 * len(vals))
	return addr, s.Mem.SetInputWords(s.Graph, addr, vals)
}

// InputBytes allocates and initializes a byte input buffer.
func (s *Session) InputBytes(vals []byte) (uint32, error) {
	addr := s.Alloc(len(vals))
	return addr, s.Mem.SetInput(s.Graph, addr, vals)
}

// OutputWords allocates an output buffer of n 32-bit words and declares it
// as final program output.
func (s *Session) OutputWords(n int) uint32 {
	addr := s.Alloc(4 * n)
	s.DeclareOutput(addr, 4*n)
	return addr
}

// OutputBytesBuf allocates an n-byte output buffer and declares it as
// final program output.
func (s *Session) OutputBytesBuf(n int) uint32 {
	addr := s.Alloc(n)
	s.DeclareOutput(addr, n)
	return addr
}

// ScratchWords allocates a buffer that is not program output (intermediate
// data; writes to it that are never consumed are dynamically dead).
func (s *Session) ScratchWords(n int) uint32 { return s.Alloc(4 * n) }

// DeclareOutput marks [addr, addr+n) as final program output.
func (s *Session) DeclareOutput(addr uint32, n int) {
	s.outputs = append(s.outputs, Region{Addr: addr, Len: n})
}

// Outputs returns the declared output regions.
func (s *Session) Outputs() []Region { return s.outputs }

// Run executes one kernel dispatch.
func (s *Session) Run(d gpu.Dispatch) error { return s.Machine.RunDispatch(d) }

// Finalize flushes caches (resolving dirty state into writeback events),
// closes trackers, marks outputs live, and solves the dataflow graph. It
// must be called exactly once, after the last dispatch.
func (s *Session) Finalize() error {
	if s.finalized {
		return fmt.Errorf("sim: session already finalized")
	}
	s.finalized = true
	s.Machine.Finish()
	end := s.Machine.Cycles()
	if s.L1Tracker != nil {
		s.L1Tracker.Finish(end)
	}
	if s.L2Tracker != nil {
		s.L2Tracker.Finish(end)
	}
	if s.Graph != nil {
		for _, r := range s.outputs {
			if err := s.Mem.MarkOutput(s.Graph, r.Addr, r.Len, end); err != nil {
				return err
			}
		}
		s.Graph.Solve()
	}
	s.publishObs()
	return nil
}

// publishObs rolls the run's pipeline and cache statistics into the
// observability counters.
func (s *Session) publishObs() {
	if !obs.Enabled() {
		return
	}
	obsRuns.Add(1)
	obsCycles.Add(s.Machine.Cycles())
	obsInstrs.Add(s.Machine.Instructions())
	obsStalls.Add(s.Machine.StallCycles())
	cs := s.Hier.Stats()
	obsL1Hits.Add(cs.L1Hits)
	obsL1Misses.Add(cs.L1Misses)
	obsL1Evictions.Add(cs.L1Evictions)
	obsL2Hits.Add(cs.L2Hits)
	obsL2Misses.Add(cs.L2Misses)
	obsL2Evictions.Add(cs.L2Evictions)
}

// Cycles returns the total simulated cycles.
func (s *Session) Cycles() uint64 { return s.Machine.Cycles() }

// OutputData concatenates the contents of all declared output regions, in
// declaration order — the program result compared against golden output.
func (s *Session) OutputData() ([]byte, error) {
	var out []byte
	for _, r := range s.outputs {
		b, err := s.Mem.Bytes(r.Addr, r.Len)
		if err != nil {
			return nil, err
		}
		out = append(out, b...)
	}
	return out, nil
}

// Workload is a complete benchmark recipe: it allocates inputs, dispatches
// one or more kernel passes, and declares outputs.
type Workload struct {
	// Name identifies the benchmark ("minife", "dct", ...).
	Name string
	// Description says what access pattern the workload exercises.
	Description string
	// Run executes the workload on a fresh session.
	Run func(s *Session) error
}

// Execute runs workload w on a fresh session with the given config and
// finalizes it.
func Execute(w Workload, cfg Config) (*Session, error) {
	return ExecuteContext(context.Background(), w, cfg)
}

// ExecuteContext is Execute under a context: the workload's dispatches
// poll ctx and a cancellation aborts the run with the context's error.
func ExecuteContext(ctx context.Context, w Workload, cfg Config) (*Session, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sp := obs.StartSpan2("simulate:", w.Name)
	defer sp.End()
	s, err := NewSessionContext(ctx, cfg)
	if err != nil {
		return nil, err
	}
	s.Label = w.Name
	if err := w.Run(s); err != nil {
		return nil, fmt.Errorf("sim: workload %s: %w", w.Name, err)
	}
	if err := s.Finalize(); err != nil {
		return nil, err
	}
	return s, nil
}
