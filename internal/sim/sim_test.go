package sim

import (
	"testing"

	"mbavf/internal/dataflow"
	"mbavf/internal/gpu"
)

func TestNewSessionDefault(t *testing.T) {
	s, err := NewSession(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s.L1Tracker == nil || s.L2Tracker == nil || s.VGPRTracker == nil || s.Graph == nil {
		t.Error("default config should instrument everything")
	}
	sets, ways := s.Hier.L1Slots()
	if s.L1Tracker.Words() != sets*ways {
		t.Errorf("L1 tracker words = %d, want %d", s.L1Tracker.Words(), sets*ways)
	}
	if s.L1Tracker.BytesPerWord() != s.Hier.LineBytes() {
		t.Error("L1 tracker byte width mismatch")
	}
	if s.VGPRTracker.Words() != s.Cfg.GPU.VGPRThreads()*s.Cfg.GPU.NumVRegs {
		t.Error("VGPR tracker word count mismatch")
	}
}

func TestNewSessionInvalid(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemBytes = 0
	if _, err := NewSession(cfg); err == nil {
		t.Error("zero memory should fail")
	}
}

func TestAllocAlignment(t *testing.T) {
	s, err := NewSession(InjectionConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := s.Alloc(10)
	b := s.Alloc(100)
	if a%64 != 0 || b%64 != 0 {
		t.Errorf("allocations not 64B aligned: %d %d", a, b)
	}
	if b < a+64 {
		t.Error("allocations overlap")
	}
}

func TestAllocExhaustionPanics(t *testing.T) {
	cfg := InjectionConfig()
	cfg.MemBytes = 1024
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on memory exhaustion")
		}
	}()
	s.Alloc(4096)
}

func TestOutputRegionsAndData(t *testing.T) {
	s, err := NewSession(InjectionConfig())
	if err != nil {
		t.Fatal(err)
	}
	addr := s.OutputWords(2)
	if err := s.Mem.StoreWord(addr, 0x01020304, [4]dataflow.VersionID{}); err != nil {
		t.Fatal(err)
	}
	if len(s.Outputs()) != 1 || s.Outputs()[0].Len != 8 {
		t.Errorf("outputs = %+v", s.Outputs())
	}
	data, err := s.OutputData()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 8 || data[0] != 4 || data[3] != 1 {
		t.Errorf("output data = %v", data)
	}
}

func TestFinalizeOnce(t *testing.T) {
	w := Workload{Name: "noop", Run: func(s *Session) error {
		b := gpu.NewBuilder("noop")
		b.VMov(gpu.V(0), gpu.Imm(1))
		prog, err := b.Build()
		if err != nil {
			return err
		}
		return s.Run(gpu.Dispatch{Prog: prog, Waves: 1})
	}}
	s, err := Execute(w, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Finalize(); err == nil {
		t.Error("second Finalize should fail")
	}
	if s.Cycles() == 0 {
		t.Error("no cycles")
	}
}

func TestExecuteWorkloadError(t *testing.T) {
	w := Workload{Name: "bad", Run: func(s *Session) error {
		b := gpu.NewBuilder("bad")
		b.VMov(gpu.V(0), gpu.Imm(-4))
		b.VLoad(gpu.V(1), gpu.V(0), 0)
		prog, err := b.Build()
		if err != nil {
			return err
		}
		return s.Run(gpu.Dispatch{Prog: prog, Waves: 1})
	}}
	if _, err := Execute(w, InjectionConfig()); err == nil {
		t.Error("trapping workload should surface an error")
	}
}
