package sim

import (
	"mbavf/internal/dataflow"
	"mbavf/internal/lifetime"
)

// Measurements is the analysis-relevant residue of a simulation run: the
// per-structure lifetime trackers, the solved dataflow graph, the cycle
// counts, and the structure geometry — everything MB-AVF analysis
// consumes, and nothing tied to the live machine (memory contents, cache
// state, pipeline state). It is the unit the run-artifact store persists:
// a Measurements rebuilt from a stored artifact answers every analysis
// query bit-identically to the freshly simulated original.
type Measurements struct {
	// Workload names the benchmark that produced the run.
	Workload string
	// ConfigFP is the machine-config fingerprint (Config.Fingerprint) of
	// the simulator that produced the run; the artifact store keys on it
	// so artifacts from differently shaped machines never alias.
	ConfigFP string
	// Cycles is the run duration; Instructions the dynamic wavefront
	// instruction count.
	Cycles       uint64
	Instructions uint64

	// Geometry of the instrumented structures.
	L1Sets, L1Ways int
	L2Sets, L2Ways int
	LineBytes      int
	VGPRThreads    int
	VGPRRegs       int

	// Per-structure lifetime timelines (nil when the structure was not
	// instrumented) and the solved liveness graph.
	L1Tracker   *lifetime.Tracker
	L2Tracker   *lifetime.Tracker
	VGPRTracker *lifetime.Tracker
	Graph       *dataflow.Graph
}

// L1Slots returns the L1 data array geometry as (sets, ways).
func (m *Measurements) L1Slots() (int, int) { return m.L1Sets, m.L1Ways }

// L2Slots returns the L2 data array geometry as (sets, ways).
func (m *Measurements) L2Slots() (int, int) { return m.L2Sets, m.L2Ways }

// Instrumented reports whether the measurements carry every artifact the
// full analysis suite needs (all three trackers plus the graph).
func (m *Measurements) Instrumented() bool {
	return m.L1Tracker != nil && m.L2Tracker != nil && m.VGPRTracker != nil && m.Graph != nil
}

// Measurements extracts the session's analysis artifacts. Call after
// Finalize: the trackers must be closed and the graph solved.
func (s *Session) Measurements() *Measurements {
	m := &Measurements{
		Workload:     s.Label,
		ConfigFP:     s.Cfg.Fingerprint(),
		Cycles:       s.Cycles(),
		Instructions: s.Machine.Instructions(),
		LineBytes:    s.Hier.LineBytes(),
		VGPRThreads:  s.Cfg.GPU.VGPRThreads(),
		VGPRRegs:     s.Cfg.GPU.NumVRegs,
		L1Tracker:    s.L1Tracker,
		L2Tracker:    s.L2Tracker,
		VGPRTracker:  s.VGPRTracker,
		Graph:        s.Graph,
	}
	m.L1Sets, m.L1Ways = s.Hier.L1Slots()
	m.L2Sets, m.L2Ways = s.Hier.L2Slots()
	return m
}
