package stats

import (
	"math"
	"testing"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean should be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	got, err := GeoMean([]float64{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-4) > 1e-9 {
		t.Errorf("GeoMean = %v, want 4", got)
	}
	if _, err := GeoMean([]float64{1, 0}); err == nil {
		t.Error("zero should error")
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("empty should error")
	}
}

func TestMinMaxMedian(t *testing.T) {
	lo, hi := MinMax([]float64{3, 1, 2})
	if lo != 1 || hi != 3 {
		t.Errorf("MinMax = %v,%v", lo, hi)
	}
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Errorf("Median odd = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("Median even = %v", got)
	}
	if Median(nil) != 0 {
		t.Error("empty median should be 0")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Error("div by zero should be 0")
	}
	if Ratio(6, 3) != 2 {
		t.Error("Ratio(6,3) != 2")
	}
}
