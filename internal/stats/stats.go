// Package stats provides the small statistical helpers the experiment
// harness uses to aggregate AVFs across workloads.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. All values must be positive;
// zero or negative inputs return an error (AVF ratios can legitimately be
// zero, in which case use Mean or filter first).
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: geomean of empty slice")
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: geomean needs positive values, got %v", x)
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs))), nil
}

// MinMax returns the extremes of xs.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return lo, hi
}

// Median returns the median of xs (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Ratio returns a/b, or 0 when b is 0 (used for MB/SB AVF normalization
// when a phase has no ACE time at all).
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
