package inject

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Checkpoint is the on-disk state of a (possibly interrupted) campaign:
// the campaign identity (workload, size, seed, golden-output digest) plus
// every completed shot. It is JSON so that humans and external tooling
// can inspect partial campaigns.
type Checkpoint struct {
	Workload string `json:"workload"`
	N        int    `json:"n"`
	Seed     int64  `json:"seed"`
	// Golden is the hex SHA-256 of the golden output; resume refuses a
	// checkpoint whose golden digest no longer matches the workload.
	Golden string `json:"golden"`
	Shots  []Shot `json:"shots"`
}

// GoldenDigest is the digest stored in and checked against checkpoints.
func GoldenDigest(golden []byte) string {
	sum := sha256.Sum256(golden)
	return hex.EncodeToString(sum[:])
}

// NewCheckpoint describes a campaign for checkpointing.
func NewCheckpoint(workload string, n int, seed int64, golden []byte) *Checkpoint {
	return &Checkpoint{Workload: workload, N: n, Seed: seed, Golden: GoldenDigest(golden)}
}

// Matches reports why the checkpoint cannot resume the given campaign,
// or nil if it can.
func (c *Checkpoint) Matches(workload string, n int, seed int64, golden []byte) error {
	switch {
	case c.Workload != workload:
		return fmt.Errorf("inject: checkpoint is for workload %q, not %q", c.Workload, workload)
	case c.N != n:
		return fmt.Errorf("inject: checkpoint campaign size %d != requested %d", c.N, n)
	case c.Seed != seed:
		return fmt.Errorf("inject: checkpoint seed %d != requested %d", c.Seed, seed)
	case c.Golden != GoldenDigest(golden):
		return fmt.Errorf("inject: checkpoint golden digest mismatch (workload output changed)")
	}
	return nil
}

// Save writes the checkpoint atomically: a temp file in the destination
// directory, fsync, then rename, so an interrupted write can never leave
// a truncated checkpoint behind.
func (c *Checkpoint) Save(path string) error {
	data, err := json.MarshalIndent(c, "", " ")
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadCheckpoint reads a checkpoint written by Save.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var c Checkpoint
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("inject: corrupt checkpoint %s: %w", path, err)
	}
	return &c, nil
}
