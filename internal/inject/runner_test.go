package inject

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mbavf/internal/gpu"
	"mbavf/internal/sim"
)

// tinyProgram stores tid*3 into the output buffer — a minimal valid
// kernel for synthetic robustness workloads.
func tinyProgram(t testing.TB) *gpu.Program {
	t.Helper()
	b := gpu.NewBuilder("tiny")
	b.VMov(gpu.V(0), gpu.Tid())
	b.VMul(gpu.V(1), gpu.V(0), gpu.Imm(3))
	b.VShl(gpu.V(2), gpu.V(0), gpu.Imm(2))
	b.VAdd(gpu.V(2), gpu.V(2), gpu.S(0))
	b.VStore(gpu.V(2), 0, gpu.V(1))
	b.EndPgm()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func tinyDispatch(t testing.TB, s *sim.Session) error {
	out := s.OutputWords(gpu.Lanes)
	return s.Run(gpu.Dispatch{Prog: tinyProgram(t), Waves: 1, Args: []uint32{out}})
}

// spinProgram loops forever; with a small MaxInstructions budget it
// reliably trips the livelock watchdog.
func spinProgram(t testing.TB) *gpu.Program {
	t.Helper()
	b := gpu.NewBuilder("spin")
	b.Label("top")
	b.Br("top")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// wildProgram loads from a corrupted (out-of-memory) address.
func wildProgram(t testing.TB) *gpu.Program {
	t.Helper()
	b := gpu.NewBuilder("wild")
	b.VMov(gpu.V(0), gpu.Imm(-64))
	b.VLoad(gpu.V(1), gpu.V(0), 0)
	b.EndPgm()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// faultyCampaign builds a campaign over a workload whose golden run (the
// first call) is a tiny healthy kernel and whose injected runs are
// replaced by the given misbehavior.
func faultyCampaign(t *testing.T, cfg sim.Config, name string, misbehave func(call int64, s *sim.Session) error) *Campaign {
	t.Helper()
	var calls atomic.Int64
	w := sim.Workload{
		Name: name,
		Run: func(s *sim.Session) error {
			call := calls.Add(1)
			if call == 1 {
				return tinyDispatch(t, s)
			}
			return misbehave(call, s)
		},
	}
	c, err := NewCampaign(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPanickingWorkloadClassifiedCrash(t *testing.T) {
	// Every third call panics mid-run; the campaign must survive,
	// classify exactly those shots as crash, and return all others.
	c := faultyCampaign(t, sim.InjectionConfig(), "panicky", func(call int64, s *sim.Session) error {
		if call%3 == 0 {
			// Mirrors the allocation-exhaustion panic in sim.Session.Alloc.
			panic(fmt.Sprintf("sim: allocation exhausts memory (call %d)", call))
		}
		return tinyDispatch(t, s)
	})
	rep, err := c.Run(context.Background(), RunConfig{N: 9, Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete() {
		t.Fatalf("campaign incomplete: %d/%d shots", len(rep.Shots), rep.N)
	}
	counts := rep.Counts()
	if counts.Crash != 3 {
		t.Errorf("crash count = %d, want 3 (%+v)", counts.Crash, counts)
	}
	if counts.Total() != 9 {
		t.Errorf("classified %d shots, want all 9 (%+v)", counts.Total(), counts)
	}
	// With workers=1, calls arrive in shot order: golden is call 1, so
	// shots 1, 4, 7 (calls 3, 6, 9) are the crashed ones.
	for _, want := range []int{1, 4, 7} {
		if rep.Shots[want].Outcome != OutcomeCrash {
			t.Errorf("shot %d = %v, want crash", want, rep.Shots[want].Outcome)
		}
	}
}

func TestPanickingWorkloadParallel(t *testing.T) {
	c := faultyCampaign(t, sim.InjectionConfig(), "panicky-par", func(call int64, s *sim.Session) error {
		if call%3 == 0 {
			panic("boom")
		}
		return tinyDispatch(t, s)
	})
	rep, err := c.Run(context.Background(), RunConfig{N: 12, Seed: 5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete() {
		t.Fatalf("campaign incomplete: %d/%d shots", len(rep.Shots), rep.N)
	}
	// Calls 2..13 run concurrently; which shots crash is schedule
	// dependent, but the count (calls 3, 6, 9, 12) is not.
	if counts := rep.Counts(); counts.Crash != 4 {
		t.Errorf("crash count = %d, want 4 (%+v)", counts.Crash, counts)
	}
}

func TestBudgetExhaustionClassifiedHang(t *testing.T) {
	// Injected runs livelock; the machine's MaxInstructions watchdog
	// must surface as OutcomeHang, not OutcomeDUE.
	cfg := sim.InjectionConfig()
	cfg.GPU.MaxInstructions = 500
	c := faultyCampaign(t, cfg, "livelock", func(call int64, s *sim.Session) error {
		s.OutputWords(gpu.Lanes)
		return s.Run(gpu.Dispatch{Prog: spinProgram(t), Waves: 1})
	})
	rep, err := c.Run(context.Background(), RunConfig{N: 6, Seed: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	counts := rep.Counts()
	if counts.Hang != 6 {
		t.Errorf("hang count = %d, want 6 (%+v)", counts.Hang, counts)
	}
	if counts.DUE != 0 {
		t.Errorf("budget exhaustion misclassified as DUE (%+v)", counts)
	}
}

func TestBadAddressClassifiedDUE(t *testing.T) {
	c := faultyCampaign(t, sim.InjectionConfig(), "wild", func(call int64, s *sim.Session) error {
		s.OutputWords(gpu.Lanes)
		return s.Run(gpu.Dispatch{Prog: wildProgram(t), Waves: 1})
	})
	rep, err := c.Run(context.Background(), RunConfig{N: 4, Seed: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if counts := rep.Counts(); counts.DUE != 4 {
		t.Errorf("DUE count = %d, want 4 (%+v)", counts.DUE, counts)
	}
}

func TestSerialParallelEquality(t *testing.T) {
	// The determinism property behind checkpoint/resume and -workers:
	// any worker count produces bit-identical reports.
	c := vecaddCampaign(t)
	const n = 24
	for _, seed := range []int64{3, 11} {
		ref, err := c.Run(context.Background(), RunConfig{N: n, Seed: seed, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 8} {
			got, err := c.Run(context.Background(), RunConfig{N: n, Seed: seed, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ref.Shots, got.Shots) {
				t.Fatalf("seed %d: workers=%d report differs from serial", seed, workers)
			}
			if !reflect.DeepEqual(ref.Results(), got.Results()) {
				t.Fatalf("seed %d: workers=%d results differ from serial", seed, workers)
			}
		}
	}
}

func TestCancelDrainsAndResumeCompletes(t *testing.T) {
	c := vecaddCampaign(t)
	const n, seed = 16, 3
	ref, err := c.Run(context.Background(), RunConfig{N: n, Seed: seed, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var collected atomic.Int64
	partial, err := c.Run(ctx, RunConfig{
		N: n, Seed: seed, Workers: 2,
		OnShot: func(Shot) {
			if collected.Add(1) == 4 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if partial.Complete() || len(partial.Shots) < 4 {
		t.Fatalf("partial run has %d/%d shots", len(partial.Shots), n)
	}

	resumed, err := c.Run(context.Background(), RunConfig{
		N: n, Seed: seed, Workers: 2, Completed: partial.Shots,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref.Shots, resumed.Shots) {
		t.Fatal("resumed campaign differs from uninterrupted run")
	}
}

func TestTimeoutReturnsPartialReport(t *testing.T) {
	c := vecaddCampaign(t)
	rep, err := c.Run(context.Background(), RunConfig{N: 64, Seed: 3, Workers: 2, Timeout: time.Nanosecond})
	if err == nil {
		return // astronomically unlikely: the whole campaign beat the clock
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if rep == nil || rep.Complete() {
		t.Fatal("expected a partial report")
	}
}

func TestErrorBudgetAbortsGracefully(t *testing.T) {
	infra := func(call int64, s *sim.Session) error {
		return fmt.Errorf("scratch disk on fire (call %d)", call)
	}
	c := faultyCampaign(t, sim.InjectionConfig(), "broken", infra)
	rep, err := c.Run(context.Background(), RunConfig{N: 20, Seed: 1, Workers: 1, MaxErrors: 3})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if rep.Complete() {
		t.Fatal("budget-aborted campaign should not complete")
	}
	if got := rep.InfraErrors(); got < 4 {
		t.Errorf("recorded %d failed shots, want >= 4", got)
	}
	for _, s := range rep.Shots {
		if !strings.Contains(s.Err, "infrastructure") {
			t.Fatalf("shot error %q does not mark infrastructure failure", s.Err)
		}
	}
}

func TestNoBudgetRecordsAllFailures(t *testing.T) {
	c := faultyCampaign(t, sim.InjectionConfig(), "broken-all", func(call int64, s *sim.Session) error {
		return errors.New("flaky backend")
	})
	rep, err := c.Run(context.Background(), RunConfig{N: 10, Seed: 1, Workers: 2})
	if err != nil {
		t.Fatalf("unbudgeted campaign should keep going: %v", err)
	}
	if !rep.Complete() || rep.InfraErrors() != 10 {
		t.Fatalf("got %d shots, %d failures; want 10 recorded failures", len(rep.Shots), rep.InfraErrors())
	}
	if len(rep.Results()) != 0 {
		t.Error("failed shots must not appear among classified results")
	}
}

func TestRunMaskInfraErrorsCarrySentinel(t *testing.T) {
	c := faultyCampaign(t, sim.InjectionConfig(), "broken-one", func(call int64, s *sim.Session) error {
		return errors.New("loose cable")
	})
	_, err := c.RunSingle(Target{Cycle: 0, Thread: 0, Reg: 0, Bit: 0})
	if !errors.Is(err, ErrInfra) {
		t.Fatalf("err = %v, want ErrInfra sentinel", err)
	}
}

func TestCheckpointRoundtrip(t *testing.T) {
	golden := []byte("golden-bytes")
	ck := NewCheckpoint("vecadd", 100, 7, golden)
	ck.Shots = []Shot{
		{Index: 0, Target: Target{Cycle: 12, Thread: 3, Reg: 9, Bit: 31}, Outcome: OutcomeSDC},
		{Index: 1, Target: Target{Cycle: 90, Thread: 1, Reg: 2, Bit: 0}, Outcome: OutcomeHang},
		{Index: 2, Err: "inject: workload: infrastructure failure: loose cable"},
	}
	path := filepath.Join(t.TempDir(), "camp.ckpt.json")
	if err := ck.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ck, loaded) {
		t.Fatalf("roundtrip mismatch:\n%+v\n%+v", ck, loaded)
	}
	if err := loaded.Matches("vecadd", 100, 7, golden); err != nil {
		t.Errorf("Matches rejected its own campaign: %v", err)
	}
	for _, bad := range []error{
		loaded.Matches("dct", 100, 7, golden),
		loaded.Matches("vecadd", 99, 7, golden),
		loaded.Matches("vecadd", 100, 8, golden),
		loaded.Matches("vecadd", 100, 7, []byte("other")),
	} {
		if bad == nil {
			t.Error("Matches accepted a mismatched campaign")
		}
	}
}

func TestRunRejectsNegativeN(t *testing.T) {
	c := vecaddCampaign(t)
	if _, err := c.Run(context.Background(), RunConfig{N: -1}); err == nil {
		t.Error("negative N should be rejected")
	}
}
