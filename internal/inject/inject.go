// Package inject implements architectural fault-injection campaigns into
// the GPU vector register file, the paper's Section VII-A methodology for
// validating the SDC MB-AVF model.
//
// A campaign first records a golden (fault-free) run of a workload, then
// repeatedly re-simulates it with single- or multi-bit register flips at
// random times and targets, classifying each run's outcome by comparing
// the final program output with the golden output. The ACE-interference
// study builds multi-bit fault groups around the SDC ACE bits found by
// single-bit injection and counts groups whose multi-bit outcome is
// masked even though they contain an SDC ACE bit — the program-level
// interaction (e.g. XOR cancellation, control-flow reconvergence) that
// the analytical MB-AVF model deliberately ignores.
//
// Outcomes follow the taxonomy of large fault-injection studies (Hari et
// al., Cai et al.): Masked, SDC, DUE (a machine-detected trap), Hang
// (instruction-budget livelock) and Crash (the simulated run panicked).
// All five are *classifications* of a successfully injected run;
// failures of the campaign infrastructure itself are reported as errors
// wrapping ErrInfra and never carry an outcome.
package inject

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"

	"mbavf/internal/gpu"
	"mbavf/internal/sim"
)

// Outcome classifies one injected run.
type Outcome int

const (
	// OutcomeMasked: program output matched the golden run.
	OutcomeMasked Outcome = iota
	// OutcomeSDC: the program completed with corrupted output.
	OutcomeSDC
	// OutcomeDUE: the fault was detected by a machine-level mechanism
	// (bad-address or misaligned-access trap).
	OutcomeDUE
	// OutcomeHang: the run exhausted the MaxInstructions budget — an
	// injection-corrupted livelock caught by the watchdog rather than a
	// genuine detection.
	OutcomeHang
	// OutcomeCrash: the simulated run panicked (e.g. an
	// allocation-exhaustion panic); the worker recovered and the
	// campaign continued.
	OutcomeCrash
)

func (o Outcome) String() string {
	switch o {
	case OutcomeMasked:
		return "masked"
	case OutcomeSDC:
		return "sdc"
	case OutcomeDUE:
		return "due"
	case OutcomeHang:
		return "hang"
	case OutcomeCrash:
		return "crash"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// ParseOutcome inverts Outcome.String.
func ParseOutcome(s string) (Outcome, error) {
	for _, o := range []Outcome{OutcomeMasked, OutcomeSDC, OutcomeDUE, OutcomeHang, OutcomeCrash} {
		if o.String() == s {
			return o, nil
		}
	}
	return 0, fmt.Errorf("inject: unknown outcome %q", s)
}

// MarshalJSON encodes the outcome as its string name, the stable form
// used by checkpoint files.
func (o Outcome) MarshalJSON() ([]byte, error) {
	return []byte(`"` + o.String() + `"`), nil
}

// UnmarshalJSON decodes an outcome name.
func (o *Outcome) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	parsed, err := ParseOutcome(s)
	if err != nil {
		return err
	}
	*o = parsed
	return nil
}

// ErrInfra marks a failure of the campaign infrastructure itself
// (session construction, finalization, output extraction, or a non-trap
// workload error). Such failures carry no outcome classification;
// callers distinguish them with errors.Is(err, ErrInfra).
var ErrInfra = errors.New("infrastructure failure")

func infraErr(stage string, err error) error {
	return fmt.Errorf("inject: %s: %w: %w", stage, ErrInfra, err)
}

// Target selects where and when a fault lands: bit Bit of 32-bit register
// Reg of VGPR thread Thread on compute unit 0, at the first issue at or
// after Cycle.
type Target struct {
	Cycle  uint64 `json:"cycle"`
	Thread int    `json:"thread"`
	Reg    int    `json:"reg"`
	Bit    int    `json:"bit"`
}

// Result is one injected run.
type Result struct {
	Target  Target
	Outcome Outcome
}

// Campaign drives repeated injected runs of one workload. The campaign
// itself is immutable after construction; its Run* methods are safe for
// concurrent use (each injected run builds a fresh simulator session).
type Campaign struct {
	workload sim.Workload
	cfg      sim.Config
	golden   []byte
	cycles   uint64
}

// NewCampaign performs the fault-free reference run.
func NewCampaign(w sim.Workload, cfg sim.Config) (*Campaign, error) {
	return NewCampaignContext(context.Background(), w, cfg)
}

// NewCampaignContext is NewCampaign under a context: cancelling ctx
// aborts the golden reference run — the adapter that lets a serving
// layer tear down queued campaign jobs before their (expensive) setup
// completes.
func NewCampaignContext(ctx context.Context, w sim.Workload, cfg sim.Config) (*Campaign, error) {
	s, err := sim.ExecuteContext(ctx, w, cfg)
	if err != nil {
		return nil, fmt.Errorf("inject: golden run: %w", err)
	}
	golden, err := s.OutputData()
	if err != nil {
		return nil, err
	}
	if len(golden) == 0 {
		return nil, fmt.Errorf("inject: workload %s declares no output", w.Name)
	}
	return &Campaign{workload: w, cfg: cfg, golden: golden, cycles: s.Cycles()}, nil
}

// Cycles returns the golden run's duration, the sampling range for
// injection times.
func (c *Campaign) Cycles() uint64 { return c.cycles }

// Golden returns the fault-free output.
func (c *Campaign) Golden() []byte { return c.golden }

// Workload names the campaign's workload.
func (c *Campaign) Workload() string { return c.workload.Name }

// RunMask injects a multi-bit flip (mask) into one register and
// classifies the outcome. A panic anywhere in the simulated run is
// recovered and classified OutcomeCrash; machine traps are classified
// OutcomeDUE (bad address, misaligned) or OutcomeHang (instruction
// budget). A non-nil error wraps ErrInfra and means the run could not be
// classified at all — the returned Outcome is meaningless then.
func (c *Campaign) RunMask(tgt Target, mask uint32) (outcome Outcome, err error) {
	defer func() {
		if p := recover(); p != nil {
			outcome, err = OutcomeCrash, nil
		}
	}()
	s, err := sim.NewSession(c.cfg)
	if err != nil {
		return 0, infraErr("session", err)
	}
	s.Machine.AddInjection(gpu.Injection{
		Cycle:  tgt.Cycle,
		CU:     0,
		Thread: tgt.Thread,
		Reg:    tgt.Reg,
		Mask:   mask,
	})
	if err := c.workload.Run(s); err != nil {
		var trap *gpu.TrapError
		if errors.As(err, &trap) {
			if trap.Kind == gpu.TrapBudget {
				return OutcomeHang, nil
			}
			return OutcomeDUE, nil
		}
		// The golden run of the same recipe succeeded, so a non-trap
		// error here is the infrastructure failing, not the fault being
		// detected.
		return 0, infraErr("workload", err)
	}
	if err := s.Finalize(); err != nil {
		return 0, infraErr("finalize", err)
	}
	out, err := s.OutputData()
	if err != nil {
		return 0, infraErr("output", err)
	}
	if bytes.Equal(out, c.golden) {
		return OutcomeMasked, nil
	}
	return OutcomeSDC, nil
}

// RunSingle injects a single-bit flip.
func (c *Campaign) RunSingle(tgt Target) (Outcome, error) {
	return c.RunMask(tgt, 1<<uint(tgt.Bit&31))
}

// shotRand derives the RNG for shot i of a seeded campaign with a
// splitmix64 finalizer, so every target depends only on (seed, i) and any
// worker schedule — including fully serial — samples identical targets.
func shotRand(seed int64, i int) *rand.Rand {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}

// target draws shot i's injection target uniformly over compute unit 0's
// VGPR file and the golden run's duration.
func (c *Campaign) target(seed int64, i int) Target {
	r := shotRand(seed, i)
	return Target{
		Cycle:  uint64(r.Int63n(int64(c.cycles + 1))),
		Thread: r.Intn(c.cfg.GPU.VGPRThreads()),
		Reg:    r.Intn(c.cfg.GPU.NumVRegs),
		Bit:    r.Intn(32),
	}
}

// SingleBitCampaign performs n random single-bit injections serially and
// returns every result. It is the Workers=1 special case of Run; on
// error it returns the results completed so far alongside the error.
func (c *Campaign) SingleBitCampaign(n int, seed int64) ([]Result, error) {
	rep, err := c.Run(nil, RunConfig{N: n, Seed: seed, Workers: 1})
	if rep == nil {
		return nil, err
	}
	return rep.Results(), err
}

// SDCBits filters a campaign's results to the SDC ACE targets.
func SDCBits(results []Result) []Result {
	var out []Result
	for _, r := range results {
		if r.Outcome == OutcomeSDC {
			out = append(out, r)
		}
	}
	return out
}

// Counts summarizes outcomes.
type Counts struct {
	Masked, SDC, DUE, Hang, Crash int
}

// Total sums all outcome classes.
func (c Counts) Total() int { return c.Masked + c.SDC + c.DUE + c.Hang + c.Crash }

// Count tallies outcome classes.
func Count(results []Result) Counts {
	var c Counts
	for _, r := range results {
		switch r.Outcome {
		case OutcomeMasked:
			c.Masked++
		case OutcomeSDC:
			c.SDC++
		case OutcomeDUE:
			c.DUE++
		case OutcomeHang:
			c.Hang++
		case OutcomeCrash:
			c.Crash++
		}
	}
	return c
}

// groupMask returns an m-bit contiguous flip mask containing bit, clamped
// to the 32-bit register (the anchor shifts down near bit 31), plus the
// anchor bit.
func groupMask(bit, m int) uint32 {
	anchor := bit
	if anchor+m > 32 {
		anchor = 32 - m
	}
	return ((uint32(1) << m) - 1) << uint(anchor)
}

// InterferenceResult counts the Table II study for one fault-mode size.
type InterferenceResult struct {
	ModeSize     int
	Groups       int // multi-bit fault groups injected (one per SDC ACE bit)
	Interference int // groups masked despite containing an SDC ACE bit
	DUE          int // groups converted to a detected outcome (incl. hang/crash)
}

// InterferenceStudy injects, for every SDC ACE bit found by single-bit
// injection, the multi-bit fault group of each mode size containing it
// (same cycle, same register, adjacent bits), and counts ACE
// interference: groups whose multi-bit outcome is masked although the
// single-bit model predicts SDC. On error the rows completed so far are
// returned alongside the error, so a long study degrades gracefully.
func (c *Campaign) InterferenceStudy(sdcBits []Result, modeSizes []int) ([]InterferenceResult, error) {
	out := make([]InterferenceResult, 0, len(modeSizes))
	for _, m := range modeSizes {
		if m < 2 || m > 32 {
			return out, fmt.Errorf("inject: mode size %d out of range [2,32]", m)
		}
		res := InterferenceResult{ModeSize: m}
		for _, sb := range sdcBits {
			o, err := c.RunMask(sb.Target, groupMask(sb.Target.Bit, m))
			if err != nil {
				return out, err
			}
			res.Groups++
			switch o {
			case OutcomeMasked:
				res.Interference++
			case OutcomeDUE, OutcomeHang, OutcomeCrash:
				res.DUE++
			}
		}
		out = append(out, res)
	}
	return out, nil
}
