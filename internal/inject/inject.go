// Package inject implements architectural fault-injection campaigns into
// the GPU vector register file, the paper's Section VII-A methodology for
// validating the SDC MB-AVF model.
//
// A campaign first records a golden (fault-free) run of a workload, then
// repeatedly re-simulates it with single- or multi-bit register flips at
// random times and targets, classifying each run's outcome by comparing
// the final program output with the golden output. The ACE-interference
// study builds multi-bit fault groups around the SDC ACE bits found by
// single-bit injection and counts groups whose multi-bit outcome is
// masked even though they contain an SDC ACE bit — the program-level
// interaction (e.g. XOR cancellation, control-flow reconvergence) that
// the analytical MB-AVF model deliberately ignores.
package inject

import (
	"bytes"
	"fmt"
	"math/rand"

	"mbavf/internal/gpu"
	"mbavf/internal/sim"
)

// Outcome classifies one injected run.
type Outcome int

const (
	// OutcomeMasked: program output matched the golden run.
	OutcomeMasked Outcome = iota
	// OutcomeSDC: the program completed with corrupted output.
	OutcomeSDC
	// OutcomeDUE: the fault was detected by a machine-level mechanism
	// (bad address trap, instruction-budget livelock guard).
	OutcomeDUE
)

func (o Outcome) String() string {
	switch o {
	case OutcomeMasked:
		return "masked"
	case OutcomeSDC:
		return "sdc"
	case OutcomeDUE:
		return "due"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Target selects where and when a fault lands: bit Bit of 32-bit register
// Reg of VGPR thread Thread on compute unit 0, at the first issue at or
// after Cycle.
type Target struct {
	Cycle  uint64
	Thread int
	Reg    int
	Bit    int
}

// Result is one injected run.
type Result struct {
	Target  Target
	Outcome Outcome
}

// Campaign drives repeated injected runs of one workload.
type Campaign struct {
	workload sim.Workload
	cfg      sim.Config
	golden   []byte
	cycles   uint64
}

// NewCampaign performs the fault-free reference run.
func NewCampaign(w sim.Workload, cfg sim.Config) (*Campaign, error) {
	s, err := sim.Execute(w, cfg)
	if err != nil {
		return nil, fmt.Errorf("inject: golden run: %w", err)
	}
	golden, err := s.OutputData()
	if err != nil {
		return nil, err
	}
	if len(golden) == 0 {
		return nil, fmt.Errorf("inject: workload %s declares no output", w.Name)
	}
	return &Campaign{workload: w, cfg: cfg, golden: golden, cycles: s.Cycles()}, nil
}

// Cycles returns the golden run's duration, the sampling range for
// injection times.
func (c *Campaign) Cycles() uint64 { return c.cycles }

// Golden returns the fault-free output.
func (c *Campaign) Golden() []byte { return c.golden }

// RunMask injects a multi-bit flip (mask) into one register and classifies
// the outcome.
func (c *Campaign) RunMask(tgt Target, mask uint32) (Outcome, error) {
	s, err := sim.NewSession(c.cfg)
	if err != nil {
		return OutcomeMasked, err
	}
	s.Machine.AddInjection(gpu.Injection{
		Cycle:  tgt.Cycle,
		CU:     0,
		Thread: tgt.Thread,
		Reg:    tgt.Reg,
		Mask:   mask,
	})
	if err := c.workload.Run(s); err != nil {
		return OutcomeDUE, nil // trap: detected error
	}
	if err := s.Finalize(); err != nil {
		return OutcomeMasked, err
	}
	out, err := s.OutputData()
	if err != nil {
		return OutcomeMasked, err
	}
	if bytes.Equal(out, c.golden) {
		return OutcomeMasked, nil
	}
	return OutcomeSDC, nil
}

// RunSingle injects a single-bit flip.
func (c *Campaign) RunSingle(tgt Target) (Outcome, error) {
	return c.RunMask(tgt, 1<<uint(tgt.Bit&31))
}

// SingleBitCampaign performs n random single-bit injections and returns
// every result. Targets are drawn uniformly over compute unit 0's VGPR
// file and the golden run's duration.
func (c *Campaign) SingleBitCampaign(n int, seed int64) ([]Result, error) {
	r := rand.New(rand.NewSource(seed))
	threads := c.cfg.GPU.VGPRThreads()
	out := make([]Result, 0, n)
	for i := 0; i < n; i++ {
		tgt := Target{
			Cycle:  uint64(r.Int63n(int64(c.cycles + 1))),
			Thread: r.Intn(threads),
			Reg:    r.Intn(c.cfg.GPU.NumVRegs),
			Bit:    r.Intn(32),
		}
		o, err := c.RunSingle(tgt)
		if err != nil {
			return nil, err
		}
		out = append(out, Result{Target: tgt, Outcome: o})
	}
	return out, nil
}

// SDCBits filters a campaign's results to the SDC ACE targets.
func SDCBits(results []Result) []Result {
	var out []Result
	for _, r := range results {
		if r.Outcome == OutcomeSDC {
			out = append(out, r)
		}
	}
	return out
}

// Counts summarizes outcomes.
type Counts struct {
	Masked, SDC, DUE int
}

// Count tallies outcome classes.
func Count(results []Result) Counts {
	var c Counts
	for _, r := range results {
		switch r.Outcome {
		case OutcomeMasked:
			c.Masked++
		case OutcomeSDC:
			c.SDC++
		case OutcomeDUE:
			c.DUE++
		}
	}
	return c
}

// groupMask returns an m-bit contiguous flip mask containing bit, clamped
// to the 32-bit register (the anchor shifts down near bit 31), plus the
// anchor bit.
func groupMask(bit, m int) uint32 {
	anchor := bit
	if anchor+m > 32 {
		anchor = 32 - m
	}
	return ((uint32(1) << m) - 1) << uint(anchor)
}

// InterferenceResult counts the Table II study for one fault-mode size.
type InterferenceResult struct {
	ModeSize     int
	Groups       int // multi-bit fault groups injected (one per SDC ACE bit)
	Interference int // groups masked despite containing an SDC ACE bit
	DUE          int // groups converted to a detected outcome
}

// InterferenceStudy injects, for every SDC ACE bit found by single-bit
// injection, the multi-bit fault group of each mode size containing it
// (same cycle, same register, adjacent bits), and counts ACE
// interference: groups whose multi-bit outcome is masked although the
// single-bit model predicts SDC.
func (c *Campaign) InterferenceStudy(sdcBits []Result, modeSizes []int) ([]InterferenceResult, error) {
	out := make([]InterferenceResult, 0, len(modeSizes))
	for _, m := range modeSizes {
		if m < 2 || m > 32 {
			return nil, fmt.Errorf("inject: mode size %d out of range [2,32]", m)
		}
		res := InterferenceResult{ModeSize: m}
		for _, sb := range sdcBits {
			o, err := c.RunMask(sb.Target, groupMask(sb.Target.Bit, m))
			if err != nil {
				return nil, err
			}
			res.Groups++
			switch o {
			case OutcomeMasked:
				res.Interference++
			case OutcomeDUE:
				res.DUE++
			}
		}
		out = append(out, res)
	}
	return out, nil
}
