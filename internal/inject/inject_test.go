package inject

import (
	"testing"

	"mbavf/internal/sim"
	"mbavf/internal/workloads"
)

func vecaddCampaign(t *testing.T) *Campaign {
	t.Helper()
	w, err := workloads.ByName("vecadd")
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCampaign(w, sim.InjectionConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGoldenRunMatchesWorkloadGolden(t *testing.T) {
	c := vecaddCampaign(t)
	want, err := workloads.Golden("vecadd")
	if err != nil {
		t.Fatal(err)
	}
	if string(c.Golden()) != string(want) {
		t.Fatal("campaign golden differs from host golden")
	}
	if c.Cycles() == 0 {
		t.Fatal("golden run has zero cycles")
	}
}

func TestSingleBitCampaignOutcomes(t *testing.T) {
	c := vecaddCampaign(t)
	results, err := c.SingleBitCampaign(40, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 40 {
		t.Fatalf("got %d results", len(results))
	}
	counts := Count(results)
	if counts.Total() != 40 {
		t.Errorf("counts don't sum: %+v", counts)
	}
	// vecadd consumes registers immediately and writes output from them:
	// both masked and SDC outcomes must occur in a 40-shot campaign.
	if counts.Masked == 0 {
		t.Error("expected some masked injections")
	}
	if counts.SDC == 0 {
		t.Error("expected some SDC injections")
	}
}

func TestCampaignDeterminism(t *testing.T) {
	c := vecaddCampaign(t)
	a, err := c.SingleBitCampaign(10, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.SingleBitCampaign(10, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSDCBitsFilter(t *testing.T) {
	rs := []Result{
		{Outcome: OutcomeMasked},
		{Outcome: OutcomeSDC},
		{Outcome: OutcomeDUE},
		{Outcome: OutcomeSDC},
	}
	if got := len(SDCBits(rs)); got != 2 {
		t.Errorf("SDCBits = %d, want 2", got)
	}
}

func TestGroupMask(t *testing.T) {
	cases := []struct {
		bit, m int
		want   uint32
	}{
		{0, 2, 0b11},
		{5, 3, 0b111 << 5},
		{31, 2, 0b11 << 30},
		{30, 4, 0b1111 << 28},
		// Anchor clamping near bit 31: whenever bit+m > 32 the anchor
		// shifts down so the group stays inside the register but still
		// contains the target bit.
		{31, 3, 0b111 << 29},
		{31, 4, 0b1111 << 28},
		{29, 4, 0b1111 << 28},
		{30, 2, 0b11 << 30},
		{31, 32, 0xFFFFFFFF},
		{0, 32, 0xFFFFFFFF},
		{16, 17, 0x1FFFF << 15},
	}
	for _, c := range cases {
		got := groupMask(c.bit, c.m)
		if got != c.want {
			t.Errorf("groupMask(%d,%d) = %#x, want %#x", c.bit, c.m, got, c.want)
		}
		if got&(1<<uint(c.bit)) == 0 {
			t.Errorf("groupMask(%d,%d) = %#x does not contain the target bit", c.bit, c.m, got)
		}
	}
	// Exhaustive invariants over the whole domain: m contiguous bits,
	// inside the register, containing the target bit.
	for bit := 0; bit < 32; bit++ {
		for m := 2; m <= 32; m++ {
			mask := groupMask(bit, m)
			if n := popcount(mask); n != m {
				t.Fatalf("groupMask(%d,%d) has %d bits set, want %d", bit, m, n, m)
			}
			if mask&(1<<uint(bit)) == 0 {
				t.Fatalf("groupMask(%d,%d) misses the target bit", bit, m)
			}
		}
	}
}

func popcount(x uint32) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func TestInterferenceStudySmall(t *testing.T) {
	c := vecaddCampaign(t)
	singles, err := c.SingleBitCampaign(30, 3)
	if err != nil {
		t.Fatal(err)
	}
	sdc := SDCBits(singles)
	if len(sdc) == 0 {
		t.Skip("no SDC bits found in small campaign")
	}
	study, err := c.InterferenceStudy(sdc[:min(len(sdc), 4)], []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(study) != 2 {
		t.Fatalf("study rows = %d", len(study))
	}
	for _, row := range study {
		if row.Groups == 0 {
			t.Errorf("mode %d: no groups injected", row.ModeSize)
		}
		if row.Interference > row.Groups {
			t.Errorf("mode %d: interference exceeds groups", row.ModeSize)
		}
	}
}

func TestInterferenceRejectsBadModeSize(t *testing.T) {
	c := vecaddCampaign(t)
	if _, err := c.InterferenceStudy(nil, []int{1}); err == nil {
		t.Error("mode size 1 should be rejected")
	}
	if _, err := c.InterferenceStudy(nil, []int{33}); err == nil {
		t.Error("mode size 33 should be rejected")
	}
}

func TestOutcomeStrings(t *testing.T) {
	want := map[Outcome]string{
		OutcomeMasked: "masked",
		OutcomeSDC:    "sdc",
		OutcomeDUE:    "due",
		OutcomeHang:   "hang",
		OutcomeCrash:  "crash",
	}
	for o, s := range want {
		if o.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(o), o.String(), s)
		}
		parsed, err := ParseOutcome(s)
		if err != nil || parsed != o {
			t.Errorf("ParseOutcome(%q) = %v, %v", s, parsed, err)
		}
	}
	if _, err := ParseOutcome("meltdown"); err == nil {
		t.Error("ParseOutcome should reject unknown names")
	}
}
