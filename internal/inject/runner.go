package inject

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"mbavf/internal/obs"
)

// ErrBudget reports that a campaign was aborted because more shots than
// RunConfig.MaxErrors failed with infrastructure errors.
var ErrBudget = errors.New("infrastructure error budget exceeded")

// Observability tallies for campaign runs. Counter adds happen on the
// collector goroutine, one per completed shot; the latency histograms are
// recorded on the worker that ran the shot (Histogram.Record is
// lock-free, so workers never serialize on them).
var (
	obsShots   = obs.NewCounter("inject.shots")
	obsInfra   = obs.NewCounter("inject.infra_errors")
	obsShotNS  = obs.NewHistogram("inject.shot_ns")
	obsOutcome = func() map[Outcome]*obs.Counter {
		m := make(map[Outcome]*obs.Counter)
		for _, o := range []Outcome{OutcomeMasked, OutcomeSDC, OutcomeDUE, OutcomeHang, OutcomeCrash} {
			m[o] = obs.NewCounter("inject.outcome." + o.String())
		}
		return m
	}()
	obsOutcomeNS = func() map[Outcome]*obs.Histogram {
		m := make(map[Outcome]*obs.Histogram)
		for _, o := range []Outcome{OutcomeMasked, OutcomeSDC, OutcomeDUE, OutcomeHang, OutcomeCrash} {
			m[o] = obs.NewHistogram("inject.shot_ns." + o.String())
		}
		return m
	}()
)

// Shot is one indexed injected run within a campaign. Err is non-empty
// when the shot failed with an infrastructure error; Outcome is
// meaningless then (infrastructure failures are never classifications).
type Shot struct {
	Index   int     `json:"index"`
	Target  Target  `json:"target"`
	Outcome Outcome `json:"outcome"`
	Err     string  `json:"err,omitempty"`
}

// RunConfig tunes a parallel single-bit campaign.
type RunConfig struct {
	// N is the number of injections.
	N int
	// Seed drives target sampling. Each shot derives its RNG from
	// (Seed, shot index), so results are bit-identical for every worker
	// count.
	Seed int64
	// Workers is the worker-pool size; values below 1 run serially.
	Workers int
	// Timeout bounds the whole run's wall clock; when it expires the
	// pool drains in-flight shots and Run returns the completed prefix
	// with context.DeadlineExceeded. Zero means no deadline.
	Timeout time.Duration
	// MaxErrors is the infrastructure-error budget: once more than
	// MaxErrors shots have failed with errors the run aborts with
	// ErrBudget (completed shots are still returned). Zero means no
	// budget — every failure is recorded and the campaign keeps going.
	MaxErrors int
	// Completed seeds the run with shots finished by a previous
	// (checkpointed) run; their indices are not re-executed. Shots whose
	// index falls outside [0, N) are ignored.
	Completed []Shot
	// OnShot, when non-nil, observes every newly completed shot from the
	// collector goroutine (never concurrently) — the checkpointing hook.
	OnShot func(Shot)
}

// RunReport is the (possibly partial) product of a campaign run.
type RunReport struct {
	N     int    `json:"n"`
	Seed  int64  `json:"seed"`
	Shots []Shot `json:"shots"` // sorted by index; len < N if interrupted
}

// Complete reports whether every shot finished.
func (r *RunReport) Complete() bool { return len(r.Shots) == r.N }

// InfraErrors counts shots that failed with infrastructure errors.
func (r *RunReport) InfraErrors() int {
	n := 0
	for _, s := range r.Shots {
		if s.Err != "" {
			n++
		}
	}
	return n
}

// Results returns the classified runs in shot order, excluding shots
// that failed with infrastructure errors.
func (r *RunReport) Results() []Result {
	out := make([]Result, 0, len(r.Shots))
	for _, s := range r.Shots {
		if s.Err == "" {
			out = append(out, Result{Target: s.Target, Outcome: s.Outcome})
		}
	}
	return out
}

// Counts tallies the classified outcomes.
func (r *RunReport) Counts() Counts { return Count(r.Results()) }

// runShot executes one indexed injection. Panics are already absorbed by
// RunMask, so a worker can never take the process down.
func (c *Campaign) runShot(seed int64, i int) Shot {
	tgt := c.target(seed, i)
	s := Shot{Index: i, Target: tgt}
	var began time.Time
	if obs.Enabled() {
		began = time.Now()
	}
	o, err := c.RunSingle(tgt)
	if !began.IsZero() {
		ns := uint64(time.Since(began))
		obsShotNS.Record(ns)
		if err == nil {
			obsOutcomeNS[o].Record(ns)
		}
	}
	if err != nil {
		s.Err = err.Error()
		return s
	}
	s.Outcome = o
	return s
}

// RunShot executes one indexed injection. The shot's target depends only
// on (seed, i) through the per-shot splitmix64 RNG, so any executor
// anywhere — a fabric worker, a re-dispatch after a steal, the
// coordinator's local fallback — produces the identical Shot. Exported
// for the distributed campaign fabric.
func (c *Campaign) RunShot(seed int64, i int) Shot { return c.runShot(seed, i) }

// Run executes a single-bit campaign of cfg.N shots on a worker pool.
// Targets depend only on (cfg.Seed, shot index), so serial and parallel
// runs produce identical reports. Cancelling ctx (or exceeding
// cfg.Timeout) stops the feed, drains in-flight shots, and returns the
// completed shots with the context's error — nothing already simulated
// is lost. Per-shot infrastructure failures are recorded on the shot and
// only abort the run once the cfg.MaxErrors budget is exceeded.
func (c *Campaign) Run(ctx context.Context, cfg RunConfig) (*RunReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.N < 0 {
		return nil, fmt.Errorf("inject: negative campaign size %d", cfg.N)
	}
	if cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
		defer cancel()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	rep := &RunReport{N: cfg.N, Seed: cfg.Seed}
	done := make(map[int]bool, len(cfg.Completed))
	for _, s := range cfg.Completed {
		if s.Index >= 0 && s.Index < cfg.N && !done[s.Index] {
			done[s.Index] = true
			rep.Shots = append(rep.Shots, s)
		}
	}

	sp := obs.StartSpan2("campaign:", c.workload.Name)
	defer sp.End()
	obs.CampaignStart(c.workload.Name, cfg.N, len(done))

	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if pending := cfg.N - len(done); workers > pending {
		workers = max(pending, 1)
	}

	indices := make(chan int)
	shots := make(chan Shot)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				shots <- c.runShot(cfg.Seed, i)
			}
		}()
	}
	go func() {
		defer close(indices)
		for i := 0; i < cfg.N; i++ {
			if done[i] {
				continue
			}
			select {
			case indices <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(shots)
	}()

	infraErrs := 0
	budgetHit := false
	for s := range shots {
		rep.Shots = append(rep.Shots, s)
		obsShots.Add(1)
		obs.CampaignShotDone()
		if s.Err != "" {
			obsInfra.Add(1)
			infraErrs++
			if cfg.MaxErrors > 0 && infraErrs > cfg.MaxErrors && !budgetHit {
				budgetHit = true
				cancel() // graceful: drain in-flight shots, keep results
			}
		} else {
			obsOutcome[s.Outcome].Add(1)
		}
		if cfg.OnShot != nil {
			cfg.OnShot(s)
		}
	}
	sort.Slice(rep.Shots, func(i, j int) bool { return rep.Shots[i].Index < rep.Shots[j].Index })

	if budgetHit {
		return rep, fmt.Errorf("inject: %w (%d shots failed)", ErrBudget, infraErrs)
	}
	if err := ctx.Err(); err != nil && !rep.Complete() {
		return rep, err
	}
	return rep, nil
}
