package inject

import (
	"encoding/json"
	"reflect"
	"testing"
	"unicode/utf8"
)

// FuzzCheckpointRoundTrip checks the checkpoint JSON layer three ways:
// a structured checkpoint must survive marshal → unmarshal exactly, its
// identity check must accept the identity it was built from and reject
// any perturbation of it, and arbitrary bytes fed to the decoder must
// produce an error or a checkpoint — never a panic (a resumed campaign
// reads whatever is on disk).
func FuzzCheckpointRoundTrip(f *testing.F) {
	f.Add("dct", 100, int64(42), []byte{1, 2, 3}, []byte(`{"workload":"dct"}`))
	f.Add("", 0, int64(0), []byte{}, []byte(`{`))
	f.Add("minife", 5000, int64(-7), []byte("golden output"),
		[]byte(`{"shots":[{"index":1,"outcome":"sdc"}]}`))
	f.Add("w", 3, int64(1), []byte{0xFF}, []byte(`{"shots":[{"outcome":"nope"}]}`))
	f.Fuzz(func(t *testing.T, workload string, n int, seed int64, golden []byte, raw []byte) {
		if !utf8.ValidString(workload) {
			// JSON encoding rewrites invalid UTF-8 to U+FFFD by design;
			// workload names are always valid identifiers in practice.
			t.Skip()
		}
		c := NewCheckpoint(workload, n, seed, golden)
		outcomes := []Outcome{OutcomeMasked, OutcomeSDC, OutcomeDUE, OutcomeHang, OutcomeCrash}
		for i, o := range outcomes {
			c.Shots = append(c.Shots, Shot{
				Index:   i,
				Target:  Target{Cycle: uint64(seed) + uint64(i), Thread: i, Reg: i % 4, Bit: i % 32},
				Outcome: o,
			})
		}
		c.Shots = append(c.Shots, Shot{Index: len(outcomes), Err: "simulated infra failure"})

		data, err := json.Marshal(c)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var back Checkpoint
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal of own output: %v", err)
		}
		if !reflect.DeepEqual(*c, back) {
			t.Fatalf("round trip changed checkpoint:\nbefore: %+v\nafter:  %+v", *c, back)
		}

		if err := back.Matches(workload, n, seed, golden); err != nil {
			t.Fatalf("checkpoint must match its own identity: %v", err)
		}
		if err := back.Matches(workload+"x", n, seed, golden); err == nil {
			t.Fatal("Matches accepted a different workload")
		}
		if err := back.Matches(workload, n+1, seed, golden); err == nil {
			t.Fatal("Matches accepted a different campaign size")
		}
		if err := back.Matches(workload, n, seed^1, golden); err == nil {
			t.Fatal("Matches accepted a different seed")
		}
		if err := back.Matches(workload, n, seed, append([]byte{0}, golden...)); err == nil {
			t.Fatal("Matches accepted a different golden output")
		}

		// Arbitrary bytes: the decoder may reject them, never panic.
		var junk Checkpoint
		_ = json.Unmarshal(raw, &junk)
	})
}
