package serve

import (
	"encoding/json"
	"net/http"
	"testing"

	"mbavf"
	"mbavf/internal/obs"
	"mbavf/internal/store/httpstore"
	"mbavf/internal/store/mem"
)

// TestArtifactRoutesMountWithServeArtifacts pins the wiring: the store
// protocol answers under /store/v1 only when ServeArtifacts is set.
func TestArtifactRoutesMountWithServeArtifacts(t *testing.T) {
	memB := mem.New()
	_, ts := newTestServer(t, Config{
		Store:          mbavf.NewRunStore(memB),
		ServeArtifacts: true,
	})
	resp, err := http.Get(ts.URL + httpstore.Prefix + "/catalog")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET catalog = %d, want 200", resp.StatusCode)
	}
	var doc struct {
		Artifacts []any `json:"artifacts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Artifacts) != 0 {
		t.Errorf("fresh store catalog lists %d artifacts", len(doc.Artifacts))
	}

	_, off := newTestServer(t, Config{Store: mbavf.NewRunStore(mem.New())})
	resp, err = http.Get(off.URL + httpstore.Prefix + "/catalog")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("catalog without ServeArtifacts = %d, want 404", resp.StatusCode)
	}
}

// TestFleetSharedStore is the fleet contract end to end over real HTTP:
// one server exposes its store; a worker pointed at it via the HTTP
// backend simulates once and records through the wire; a second, cold
// worker then answers the same query from the shared store without
// simulating — and with the same AVF value.
func TestFleetSharedStore(t *testing.T) {
	memB := mem.New()
	_, storeSrv := newTestServer(t, Config{
		Store:          mbavf.NewRunStore(memB),
		ServeArtifacts: true,
	})

	query := "/api/v1/avf?workload=vecadd&structure=l1&scheme=parity&style=logical&factor=2&mode=1"
	var first AVFResponse
	_, w1 := newTestServer(t, Config{
		Store: mbavf.NewRunStore(httpstore.New(storeSrv.URL)),
	})
	getJSON(t, w1.URL+query, http.StatusOK, &first)

	key := mbavf.NewRunStore(memB).Key("vecadd")
	if ok, _ := memB.Has(t.Context(), key); !ok {
		t.Fatal("worker 1 did not record its simulation into the shared store")
	}

	sims := obs.NewCounter("serve.simulations")
	before := sims.Value()
	var second AVFResponse
	_, w2 := newTestServer(t, Config{
		Store: mbavf.NewRunStore(httpstore.New(storeSrv.URL)),
	})
	getJSON(t, w2.URL+query, http.StatusOK, &second)
	if d := sims.Value() - before; d != 0 {
		t.Errorf("cold worker simulated %d times despite the shared store", d)
	}
	if first.AVF != second.AVF {
		t.Errorf("shared-store AVF differs: %+v vs %+v", first.AVF, second.AVF)
	}
}
