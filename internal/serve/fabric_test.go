package serve

import (
	"net/http"
	"testing"

	"mbavf/internal/fabric"
)

// TestFabricWorkerMode: a server started with FabricWorker mounts the
// lease endpoints and answers health checks; one without stays 404.
func TestFabricWorkerMode(t *testing.T) {
	_, worker := newTestServer(t, Config{FabricWorker: true})
	var h fabric.Health
	getJSON(t, worker.URL+fabric.PathHealth, http.StatusOK, &h)
	if h.Status != "ok" {
		t.Fatalf("worker health = %q, want ok", h.Status)
	}

	_, plain := newTestServer(t, Config{})
	resp, err := http.Get(plain.URL + fabric.PathHealth)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("non-worker server answers fabric health: %d", resp.StatusCode)
	}
}

// TestBatchDistributedMatchesLocal runs the same AVF batch against a
// plain server and a coordinator fronting two worker servers: the
// responses must be identical, including per-item errors.
func TestBatchDistributedMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process AVF batch in -short mode")
	}
	_, w1 := newTestServer(t, Config{FabricWorker: true})
	_, w2 := newTestServer(t, Config{FabricWorker: true})
	_, local := newTestServer(t, Config{})
	_, coord := newTestServer(t, Config{FabricPeers: []string{w1.URL, w2.URL}})

	q := AVFQuery{Workload: "vecadd", Structure: "l1", Scheme: "parity", Style: "logical", Factor: 2, ModeBits: 2}
	q2 := q
	q2.Scheme = "sec-ded"
	bad := q
	bad.Scheme = "hamming"
	batch := map[string]any{"queries": []AVFQuery{q, q2, bad}}

	var want, got struct {
		Results []BatchItem `json:"results"`
	}
	postJSON(t, local.URL+"/api/v1/avf/batch", batch, http.StatusOK, &want)
	postJSON(t, coord.URL+"/api/v1/avf/batch", batch, http.StatusOK, &got)

	if len(got.Results) != len(want.Results) {
		t.Fatalf("%d distributed results, want %d", len(got.Results), len(want.Results))
	}
	for i := range want.Results {
		w, g := want.Results[i], got.Results[i]
		if (w.Error == "") != (g.Error == "") {
			t.Errorf("item %d: error mismatch: local %q, distributed %q", i, w.Error, g.Error)
			continue
		}
		if w.Result == nil {
			continue
		}
		if g.Result == nil {
			t.Errorf("item %d: distributed result missing", i)
			continue
		}
		if w.Result.AVF != g.Result.AVF || w.Result.Structure != g.Result.Structure {
			t.Errorf("item %d: distributed AVF %v differs from local %v", i, g.Result, w.Result)
		}
	}
}
