package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"mbavf"
	"mbavf/internal/mttf"
	"mbavf/internal/obs"
	"mbavf/internal/store/httpstore"
	"mbavf/internal/workloads"
)

// AVFQuery names one point of the MB-AVF query space. It is the wire
// form of Run.AVF's parameters plus the workload: every field is a plain
// string or integer so the same shape works as JSON body and as URL
// query parameters.
type AVFQuery struct {
	Workload  string `json:"workload"`
	Structure string `json:"structure"`
	Scheme    string `json:"scheme"`
	Style     string `json:"style"`
	Factor    int    `json:"factor"`
	ModeBits  int    `json:"mode_bits"`
}

// key is the result-cache key: one entry per distinct query point.
func (q AVFQuery) key(kind string) string {
	return fmt.Sprintf("%s|%s|%s|%s|%s|%d|%d", kind, q.Workload, q.Structure, q.Scheme, q.Style, q.Factor, q.ModeBits)
}

// validate resolves and checks the query's enums before any expensive
// work, so malformed queries fail fast with a client error.
func (q AVFQuery) validate(needMode bool) (mbavf.Structure, mbavf.Scheme, mbavf.Interleaving, error) {
	st, err := mbavf.ParseStructure(q.Structure)
	if err != nil {
		return "", "", mbavf.Interleaving{}, err
	}
	scheme := mbavf.Scheme(q.Scheme)
	ok := false
	for _, s := range mbavf.Schemes() {
		if s == scheme {
			ok = true
		}
	}
	if !ok {
		return "", "", mbavf.Interleaving{}, fmt.Errorf("%w: unknown scheme %q", mbavf.ErrBadOption, q.Scheme)
	}
	il := mbavf.Interleaving{Style: mbavf.Style(q.Style), Factor: q.Factor}
	ok = false
	for _, s := range st.Styles() {
		if s == il.Style {
			ok = true
		}
	}
	if !ok {
		return "", "", mbavf.Interleaving{}, fmt.Errorf("%w: style %q not valid for structure %q (have %v)",
			mbavf.ErrBadOption, q.Style, q.Structure, st.Styles())
	}
	if il.Factor < 1 {
		return "", "", mbavf.Interleaving{}, fmt.Errorf("%w: interleaving factor %d must be >= 1", mbavf.ErrBadOption, il.Factor)
	}
	if needMode && q.ModeBits < 1 {
		return "", "", mbavf.Interleaving{}, fmt.Errorf("%w: mode_bits must be >= 1 (got %d)", mbavf.ErrBadOption, q.ModeBits)
	}
	return st, scheme, il, nil
}

// AVFValue is the JSON form of an AVF measurement.
type AVFValue struct {
	DUE       float64 `json:"due"`
	SDC       float64 `json:"sdc"`
	TrueDUE   float64 `json:"true_due"`
	FalseDUE  float64 `json:"false_due"`
	SBAVF     float64 `json:"sb_avf"`
	SBAVFLive float64 `json:"sb_avf_live"`
	Groups    int     `json:"groups"`
	Cycles    uint64  `json:"cycles"`
}

func avfValue(a mbavf.AVF) AVFValue {
	return AVFValue{
		DUE: a.DUE, SDC: a.SDC, TrueDUE: a.TrueDUE, FalseDUE: a.FalseDUE,
		SBAVF: a.SBAVF, SBAVFLive: a.SBAVFLive, Groups: a.Groups, Cycles: a.Cycles,
	}
}

// AVFResponse is one answered AVF query.
type AVFResponse struct {
	AVFQuery
	AVF AVFValue `json:"avf"`
	// Cached reports a result-cache hit: the query was answered without
	// touching the run, let alone simulating.
	Cached    bool    `json:"cached"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// SERResponse is one answered soft-error-rate query (FIT-weighted over
// the paper's Table III fault modes).
type SERResponse struct {
	AVFQuery
	SDCFit    float64 `json:"sdc_fit"`
	DUEFit    float64 `json:"due_fit"`
	Cached    bool    `json:"cached"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// httpStatus maps an error to its response code: bad options are the
// client's fault, unknown names are 404, timeouts are 504, drain
// cancellations are 503, anything else is a server error.
func httpStatus(err error) int {
	switch {
	case errors.Is(err, mbavf.ErrBadOption):
		return http.StatusBadRequest
	case errors.Is(err, errUnknownWorkload):
		return http.StatusNotFound
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeErr(w http.ResponseWriter, err error) {
	writeJSON(w, httpStatus(err), apiError{Error: err.Error()})
}

// Handler builds the service's route table:
//
//	GET  /healthz                  liveness (503 while draining)
//	GET  /metrics                  Prometheus text exposition
//	GET  /api/v1/workloads         bundled workloads + descriptions
//	GET  /api/v1/catalog           full query vocabulary
//	GET  /api/v1/avf               one AVF query (query parameters)
//	POST /api/v1/avf               one AVF query (JSON body)
//	POST /api/v1/avf/batch         many AVF queries in one request
//	GET  /api/v1/ser               one SER query (query parameters)
//	POST /api/v1/ser               one SER query (JSON body)
//	GET  /api/v1/policy            one protection-policy query (query parameters)
//	POST /api/v1/policy            one protection-policy query (JSON body)
//	GET  /api/v1/experiments       runnable paper artifacts
//	POST /api/v1/jobs/injection    async fault-injection campaign
//	POST /api/v1/jobs/experiment   async experiment regeneration
//	GET  /api/v1/jobs              all jobs, newest first
//	GET  /api/v1/jobs/{id}         one job's status/result
//	DELETE /api/v1/jobs/{id}       cancel a job
//
// With ServeArtifacts the HTTP artifact protocol mounts too (the GET
// patterns also answer HEAD):
//
//	GET  /store/v1/artifacts/{key} one artifact (Range-aware)
//	PUT  /store/v1/artifacts/{key} record an artifact
//	DELETE /store/v1/artifacts/{key} remove (or ?quarantine=1) one
//	GET  /store/v1/catalog         stored artifacts (ETag/304)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET "+obs.PromHandlerPath, obs.PromHandler())
	mux.Handle("GET /api/v1/workloads", s.wrap("workloads", s.handleWorkloads))
	mux.Handle("GET /api/v1/catalog", s.wrap("catalog", s.handleCatalog))
	mux.Handle("GET /api/v1/avf", s.wrap("avf", s.handleAVF))
	mux.Handle("POST /api/v1/avf", s.wrap("avf", s.handleAVF))
	mux.Handle("POST /api/v1/avf/batch", s.wrap("avf_batch", s.handleAVFBatch))
	mux.Handle("GET /api/v1/ser", s.wrap("ser", s.handleSER))
	mux.Handle("POST /api/v1/ser", s.wrap("ser", s.handleSER))
	mux.Handle("GET /api/v1/policy", s.wrap("policy", s.handlePolicy))
	mux.Handle("POST /api/v1/policy", s.wrap("policy", s.handlePolicy))
	mux.Handle("GET /api/v1/mttf", s.wrap("mttf", s.handleMTTF))
	mux.Handle("GET /api/v1/experiments", s.wrap("experiments", s.handleExperiments))
	mux.Handle("POST /api/v1/jobs/injection", s.wrap("jobs_injection", s.handleJobInjection))
	mux.Handle("POST /api/v1/jobs/experiment", s.wrap("jobs_experiment", s.handleJobExperiment))
	mux.Handle("GET /api/v1/jobs", s.wrap("jobs_list", s.handleJobList))
	mux.Handle("GET /api/v1/jobs/{id}", s.wrap("jobs_get", s.handleJobGet))
	mux.Handle("DELETE /api/v1/jobs/{id}", s.wrap("jobs_cancel", s.handleJobCancel))
	if s.artifacts != nil {
		mux.Handle("GET "+httpstore.Prefix+"/artifacts/{key}", s.wrap("store_artifact", s.artifacts.HandleGet))
		mux.Handle("PUT "+httpstore.Prefix+"/artifacts/{key}", s.wrap("store_artifact", s.artifacts.HandlePut))
		mux.Handle("DELETE "+httpstore.Prefix+"/artifacts/{key}", s.wrap("store_artifact", s.artifacts.HandleDelete))
		mux.Handle("GET "+httpstore.Prefix+"/catalog", s.wrap("store_catalog", s.artifacts.HandleCatalog))
	}
	s.mountFabric(mux)
	return mux
}

// statusRecorder captures the response code for the error counters.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// wrap is the request middleware: drain refusal, in-flight tracking for
// graceful shutdown, the per-request timeout (also cut short by server
// shutdown), and request metrics with a per-route phase span.
func (s *Server) wrap(name string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "server is draining"})
			return
		}
		s.reqWG.Add(1)
		defer s.reqWG.Done()
		obsRequests.Add(1)
		obsInflight.Set(s.inflight.Add(1))
		defer func() { obsInflight.Set(s.inflight.Add(-1)) }()

		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		stopAfter := context.AfterFunc(s.base, cancel)
		defer stopAfter()

		sp := obs.StartSpan2("http:", name)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		began := time.Now()
		h(rec, r.WithContext(ctx))
		obsReqNS.Record(uint64(time.Since(began)))
		sp.End()
		switch {
		case rec.status >= 500:
			obsResponses5.Add(1)
		case rec.status >= 400:
			obsResponses4.Add(1)
		}
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	type wl struct {
		Name        string `json:"name"`
		Description string `json:"description"`
	}
	out := struct {
		Workloads []wl `json:"workloads"`
	}{}
	for _, name := range workloads.Names() {
		out.Workloads = append(out.Workloads, wl{Name: name, Description: s.descriptions[name]})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCatalog(w http.ResponseWriter, _ *http.Request) {
	type structure struct {
		Name   string   `json:"name"`
		Styles []string `json:"styles"`
	}
	out := struct {
		Workloads   []string    `json:"workloads"`
		Structures  []structure `json:"structures"`
		Schemes     []string    `json:"schemes"`
		Policies    []string    `json:"policies"`
		Experiments []string    `json:"experiments"`
	}{
		Workloads:   workloads.Names(),
		Policies:    mbavf.Policies(),
		Experiments: mbavf.Experiments(),
	}
	for _, st := range mbavf.Structures() {
		cs := structure{Name: string(st)}
		for _, style := range st.Styles() {
			cs.Styles = append(cs.Styles, string(style))
		}
		out.Structures = append(out.Structures, cs)
	}
	for _, sch := range mbavf.Schemes() {
		out.Schemes = append(out.Schemes, string(sch))
	}
	writeJSON(w, http.StatusOK, out)
}

// parseAVFQuery accepts the query either as URL parameters (GET) or as a
// JSON body (POST).
func parseAVFQuery(r *http.Request) (AVFQuery, error) {
	var q AVFQuery
	if r.Method == http.MethodPost {
		if err := json.NewDecoder(r.Body).Decode(&q); err != nil {
			return q, fmt.Errorf("%w: decoding body: %v", mbavf.ErrBadOption, err)
		}
		return q, nil
	}
	v := r.URL.Query()
	q.Workload = v.Get("workload")
	q.Structure = v.Get("structure")
	q.Scheme = v.Get("scheme")
	q.Style = v.Get("style")
	var err error
	if q.Factor, err = atoiDefault(v.Get("factor"), 1); err != nil {
		return q, fmt.Errorf("%w: factor: %v", mbavf.ErrBadOption, err)
	}
	if q.ModeBits, err = atoiDefault(v.Get("mode"), 0); err != nil {
		return q, fmt.Errorf("%w: mode: %v", mbavf.ErrBadOption, err)
	}
	return q, nil
}

func atoiDefault(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}

// queryAVF answers one AVF query through the two-level cache: a result
// hit costs a map lookup; a result miss costs one analysis over the
// (cached or singleflight-deduplicated) run.
func (s *Server) queryAVF(ctx context.Context, q AVFQuery) (AVFResponse, error) {
	st, scheme, il, err := q.validate(true)
	if err != nil {
		return AVFResponse{}, err
	}
	began := time.Now()
	v, cached, err := s.results.Get(ctx, q.key("avf"), func() (any, error) {
		run, _, err := s.run(ctx, q.Workload, st)
		if err != nil {
			return nil, err
		}
		return run.AVF(st, scheme, il, q.ModeBits)
	})
	if err != nil {
		return AVFResponse{}, err
	}
	return AVFResponse{
		AVFQuery:  q,
		AVF:       avfValue(v.(mbavf.AVF)),
		Cached:    cached,
		ElapsedMS: float64(time.Since(began)) / float64(time.Millisecond),
	}, nil
}

func (s *Server) handleAVF(w http.ResponseWriter, r *http.Request) {
	q, err := parseAVFQuery(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	resp, err := s.queryAVF(r.Context(), q)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// BatchItem is one outcome of a batch query: either a result or an
// error (batch requests are not transactional; each query stands alone).
type BatchItem struct {
	Result *AVFResponse `json:"result,omitempty"`
	Error  string       `json:"error,omitempty"`
}

func (s *Server) handleAVFBatch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Queries []AVFQuery `json:"queries"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, fmt.Errorf("%w: decoding body: %v", mbavf.ErrBadOption, err))
		return
	}
	if len(req.Queries) == 0 {
		writeErr(w, fmt.Errorf("%w: empty batch", mbavf.ErrBadOption))
		return
	}
	if len(req.Queries) > s.cfg.MaxBatch {
		writeErr(w, fmt.Errorf("%w: batch of %d exceeds limit %d", mbavf.ErrBadOption, len(req.Queries), s.cfg.MaxBatch))
		return
	}
	var items []BatchItem
	if s.coord != nil {
		var err error
		items, err = s.batchDistributed(r.Context(), req.Queries)
		if err != nil {
			writeErr(w, err)
			return
		}
	} else {
		items = make([]BatchItem, len(req.Queries))
		var wg sync.WaitGroup
		for i, q := range req.Queries {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := s.queryAVF(r.Context(), q)
				if err != nil {
					items[i].Error = err.Error()
					return
				}
				items[i].Result = &resp
			}()
		}
		wg.Wait()
	}
	writeJSON(w, http.StatusOK, struct {
		Results []BatchItem `json:"results"`
	}{items})
}

func (s *Server) handleSER(w http.ResponseWriter, r *http.Request) {
	q, err := parseAVFQuery(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	st, scheme, il, err := q.validate(false)
	if err != nil {
		writeErr(w, err)
		return
	}
	began := time.Now()
	v, cached, err := s.results.Get(r.Context(), q.key("ser"), func() (any, error) {
		run, _, err := s.run(r.Context(), q.Workload, st)
		if err != nil {
			return nil, err
		}
		return run.SER(st, scheme, il)
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	ser := v.(mbavf.SER)
	writeJSON(w, http.StatusOK, SERResponse{
		AVFQuery:  q,
		SDCFit:    ser.SDC,
		DUEFit:    ser.DUE,
		Cached:    cached,
		ElapsedMS: float64(time.Since(began)) / float64(time.Millisecond),
	})
}

// MTTFResponse answers the Figure 2 analytical model: the cache's mean
// time to failure from spatial vs temporal multi-bit faults.
type MTTFResponse struct {
	Bits           float64 `json:"bits"`
	WordBits       float64 `json:"word_bits"`
	RawFITPerBit   float64 `json:"raw_fit_per_bit"`
	SMBFFraction   float64 `json:"smbf_fraction"`
	LifetimeHours  float64 `json:"lifetime_hours"`
	SpatialYears   float64 `json:"spatial_mttf_years"`
	TemporalYears  float64 `json:"temporal_mttf_years"`
	SpatialOverTmp float64 `json:"temporal_over_spatial"`
}

// handleMTTF evaluates the workload-independent MTTF model — no
// simulation, no cache; defaults are the paper's 32MB / 64-bit-word
// structure at raw rate 1e-4 FIT/bit with a 5% multi-bit fraction.
func (s *Server) handleMTTF(w http.ResponseWriter, r *http.Request) {
	p := mttf.Default32MB()
	p.RawFITPerBit = 1e-4
	p.SMBFFraction = 0.05
	v := r.URL.Query()
	for _, f := range []struct {
		name string
		dst  *float64
	}{
		{"bits", &p.Bits},
		{"word_bits", &p.WordBits},
		{"raw_fit_per_bit", &p.RawFITPerBit},
		{"smbf_fraction", &p.SMBFFraction},
		{"lifetime_hours", &p.LifetimeHours},
	} {
		if raw := v.Get(f.name); raw != "" {
			x, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				writeErr(w, fmt.Errorf("%w: %s: %v", mbavf.ErrBadOption, f.name, err))
				return
			}
			*f.dst = x
		}
	}
	spatial, err := mttf.SpatialMTTF(p)
	if err != nil {
		writeErr(w, fmt.Errorf("%w: %v", mbavf.ErrBadOption, err))
		return
	}
	temporal, err := mttf.TemporalMTTF(p)
	if err != nil {
		writeErr(w, fmt.Errorf("%w: %v", mbavf.ErrBadOption, err))
		return
	}
	writeJSON(w, http.StatusOK, MTTFResponse{
		Bits: p.Bits, WordBits: p.WordBits, RawFITPerBit: p.RawFITPerBit,
		SMBFFraction: p.SMBFFraction, LifetimeHours: p.LifetimeHours,
		SpatialYears:   spatial / mttf.HoursPerYear,
		TemporalYears:  temporal / mttf.HoursPerYear,
		SpatialOverTmp: temporal / spatial,
	})
}

func (s *Server) handleExperiments(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Experiments []string `json:"experiments"`
	}{mbavf.Experiments()})
}

// InjectionJobRequest configures an asynchronous fault-injection
// campaign job.
type InjectionJobRequest struct {
	Workload   string `json:"workload"`
	Injections int    `json:"injections"`
	Seed       int64  `json:"seed"`
	Workers    int    `json:"workers"`
}

// InjectionJobResult is a finished campaign's summary.
type InjectionJobResult struct {
	Workload    string `json:"workload"`
	Injections  int    `json:"injections"`
	Seed        int64  `json:"seed"`
	Masked      int    `json:"masked"`
	SDC         int    `json:"sdc"`
	DUE         int    `json:"due"`
	Hang        int    `json:"hang"`
	Crash       int    `json:"crash"`
	InfraErrors int    `json:"infra_errors"`
}

func (s *Server) handleJobInjection(w http.ResponseWriter, r *http.Request) {
	var req InjectionJobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, fmt.Errorf("%w: decoding body: %v", mbavf.ErrBadOption, err))
		return
	}
	if _, ok := s.descriptions[req.Workload]; !ok {
		writeErr(w, fmt.Errorf("%w: %q", errUnknownWorkload, req.Workload))
		return
	}
	if req.Injections < 1 {
		writeErr(w, fmt.Errorf("%w: injections must be >= 1 (got %d)", mbavf.ErrBadOption, req.Injections))
		return
	}
	if req.Workers < 1 {
		req.Workers = runtime.GOMAXPROCS(0)
	}
	j := s.jobs.submit("injection", req.Workload, int64(req.Injections), func(ctx context.Context, j *job) (any, error) {
		ic, err := mbavf.NewInjectionCampaignContext(ctx, req.Workload)
		if err != nil {
			return nil, err
		}
		_, sum, err := ic.RunCampaign(ctx, mbavf.CampaignRunConfig{
			Injections: req.Injections,
			Seed:       req.Seed,
			Workers:    req.Workers,
			Fabric:     s.fabricOptions(),
			Progress: func(completed, _ int) {
				j.completed.Store(int64(completed))
			},
		})
		if err != nil {
			return nil, err
		}
		return InjectionJobResult{
			Workload: req.Workload, Injections: req.Injections, Seed: req.Seed,
			Masked: sum.Masked, SDC: sum.SDC, DUE: sum.DUE, Hang: sum.Hang,
			Crash: sum.Crash, InfraErrors: sum.Errors,
		}, nil
	})
	writeJSON(w, http.StatusAccepted, j.status())
}

// ExperimentJobRequest configures an asynchronous experiment job.
type ExperimentJobRequest struct {
	Name    string `json:"name"`
	Options struct {
		Workloads  []string `json:"workloads"`
		Injections int      `json:"injections"`
		Windows    int      `json:"windows"`
		Seed       int64    `json:"seed"`
		Workers    int      `json:"workers"`
		AVFWindows int      `json:"avf_windows"`
	} `json:"options"`
}

func (s *Server) handleJobExperiment(w http.ResponseWriter, r *http.Request) {
	var req ExperimentJobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, fmt.Errorf("%w: decoding body: %v", mbavf.ErrBadOption, err))
		return
	}
	known := false
	for _, name := range mbavf.Experiments() {
		if name == req.Name {
			known = true
		}
	}
	if !known {
		writeJSON(w, http.StatusNotFound, apiError{Error: fmt.Sprintf("unknown experiment %q", req.Name)})
		return
	}
	opts := mbavf.ExperimentOptions{
		Workloads:  req.Options.Workloads,
		Injections: req.Options.Injections,
		Windows:    req.Options.Windows,
		Seed:       req.Options.Seed,
		Workers:    req.Options.Workers,
		AVFWindows: req.Options.AVFWindows,
	}
	if err := opts.Validate(); err != nil {
		writeErr(w, err)
		return
	}
	j := s.jobs.submit("experiment", req.Name, 0, func(ctx context.Context, _ *job) (any, error) {
		text, err := mbavf.RunExperimentContext(ctx, req.Name, opts)
		if err != nil {
			return nil, err
		}
		return struct {
			Text string `json:"text"`
		}{text}, nil
	})
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) handleJobList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobStatus `json:"jobs"`
	}{s.jobs.list()})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: fmt.Sprintf("unknown job %q", r.PathValue("id"))})
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	found, _ := s.jobs.cancelJob(id)
	if !found {
		writeJSON(w, http.StatusNotFound, apiError{Error: fmt.Sprintf("unknown job %q", id)})
		return
	}
	j, _ := s.jobs.get(id)
	writeJSON(w, http.StatusOK, j.status())
}
