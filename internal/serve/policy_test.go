package serve

import (
	"net/http"
	"testing"

	"mbavf"
)

const vecaddPolicy = "/api/v1/policy?workload=vecadd&structure=l1&policy=sec-ded-on-use&style=logical&factor=2&mode=4"

// TestPolicyMatchesLibrary pins the policy route's numbers to the
// library and verifies the result cache: the second identical query is
// answered from the result cache without touching the run.
func TestPolicyMatchesLibrary(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	simsBefore := obsSims.Value()

	var first, second PolicyResponse
	getJSON(t, ts.URL+vecaddPolicy, http.StatusOK, &first)
	if first.Cached {
		t.Error("first policy query reported a cache hit")
	}
	getJSON(t, ts.URL+vecaddPolicy, http.StatusOK, &second)
	if !second.Cached {
		t.Error("repeated policy query missed the result cache")
	}
	if first.AVF != second.AVF || first.Baseline != second.Baseline {
		t.Errorf("cached policy value diverged: %+v vs %+v", first, second)
	}

	r, err := mbavf.RunWorkload("vecadd")
	if err != nil {
		t.Fatal(err)
	}
	want, err := r.PolicyAVF(mbavf.L1, "sec-ded-on-use",
		mbavf.Interleaving{Style: mbavf.StyleLogical, Factor: 2}, 4, mbavf.DefaultScrubInterval)
	if err != nil {
		t.Fatal(err)
	}
	if first.AVF != avfValue(want.AVF) || first.Baseline != avfValue(want.Baseline) {
		t.Errorf("HTTP policy AVF = %+v/%+v, library = %+v/%+v",
			first.AVF, first.Baseline, avfValue(want.AVF), avfValue(want.Baseline))
	}
	if first.DeltaDUE != want.DeltaDUE || first.DeltaSDC != want.DeltaSDC {
		t.Errorf("HTTP deltas = (%v, %v), library = (%v, %v)",
			first.DeltaDUE, first.DeltaSDC, want.DeltaDUE, want.DeltaSDC)
	}

	// Distinct policies over the same workload share the run: still one
	// simulation across everything above.
	var temporal PolicyResponse
	getJSON(t, ts.URL+"/api/v1/policy?workload=vecadd&structure=l1&policy=sec-ded-scrub&style=logical&factor=2&mode=4&scrub_interval=2048",
		http.StatusOK, &temporal)
	if !temporal.Escalated || temporal.AccumP <= 0 {
		t.Errorf("scrub policy should mix an escalated outcome: %+v", temporal)
	}
	if sims := obsSims.Value() - simsBefore; sims != 1 {
		t.Errorf("policy queries over one workload ran %d simulations, want 1", sims)
	}
}

// TestPolicyPost covers the JSON-body form: an absent scrub_interval
// selects the default, an explicit zero is a client error.
func TestPolicyPost(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	q := map[string]any{
		"workload": "vecadd", "structure": "vgpr", "policy": "parity-on-use",
		"style": "inter-thread", "factor": 2, "mode_bits": 4,
	}
	var resp PolicyResponse
	postJSON(t, ts.URL+"/api/v1/policy", q, http.StatusOK, &resp)
	if resp.ScrubInterval != mbavf.DefaultScrubInterval {
		t.Errorf("absent scrub_interval = %d, want default %d", resp.ScrubInterval, mbavf.DefaultScrubInterval)
	}
	if resp.AVF.FalseDUE != 0 {
		t.Errorf("on-use policy kept false DUEs: %+v", resp.AVF)
	}

	q["scrub_interval"] = 0
	var apiErr apiError
	postJSON(t, ts.URL+"/api/v1/policy", q, http.StatusBadRequest, &apiErr)
	if apiErr.Error == "" {
		t.Error("explicit zero scrub_interval: empty error body")
	}
}

// TestPolicyErrors maps the policy knobs' failure modes to client codes
// before any simulation happens.
func TestPolicyErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	simsBefore := obsSims.Value()
	for _, tc := range []struct {
		url  string
		code int
	}{
		{"/api/v1/policy?workload=vecadd&structure=l1&policy=chipkill&style=logical&factor=2&mode=4", http.StatusBadRequest},
		{"/api/v1/policy?workload=vecadd&structure=l1&policy=sec-ded&style=logical&factor=2&mode=4&scrub_interval=0", http.StatusBadRequest},
		{"/api/v1/policy?workload=vecadd&structure=l1&policy=sec-ded&style=logical&factor=2&mode=4&scrub_interval=-8", http.StatusBadRequest},
		{"/api/v1/policy?workload=vecadd&structure=l1&policy=sec-ded&style=intra-thread&factor=2&mode=4", http.StatusBadRequest},
		{"/api/v1/policy?workload=vecadd&structure=l1&policy=sec-ded&style=logical&factor=0&mode=4", http.StatusBadRequest},
		{"/api/v1/policy?workload=vecadd&structure=l1&policy=sec-ded&style=logical&factor=2&mode=0", http.StatusBadRequest},
		{"/api/v1/policy?workload=nope&structure=l1&policy=sec-ded&style=logical&factor=2&mode=4", http.StatusNotFound},
	} {
		var apiErr apiError
		getJSON(t, ts.URL+tc.url, tc.code, &apiErr)
		if apiErr.Error == "" {
			t.Errorf("%s: empty error body", tc.url)
		}
	}
	// Every 4xx above was decided before simulating. The 404 workload
	// check runs inside the cached query path but also pre-simulation.
	if sims := obsSims.Value() - simsBefore; sims != 0 {
		t.Errorf("error-path queries ran %d simulations, want 0", sims)
	}

	// The catalog advertises the policy vocabulary.
	var catalog struct {
		Policies []string `json:"policies"`
	}
	getJSON(t, ts.URL+"/api/v1/catalog", http.StatusOK, &catalog)
	if len(catalog.Policies) < 4 {
		t.Errorf("catalog policies = %v, want >= 4", catalog.Policies)
	}
}
