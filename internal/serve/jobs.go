package serve

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mbavf/internal/obs"
)

// Job states. A job moves queued -> running -> done/failed, or to
// cancelled from either live state.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

var (
	obsJobsStarted   = obs.NewCounter("serve.jobs.started")
	obsJobsDone      = obs.NewCounter("serve.jobs.done")
	obsJobsFailed    = obs.NewCounter("serve.jobs.failed")
	obsJobsCancelled = obs.NewCounter("serve.jobs.cancelled")
	obsJobsRunning   = obs.NewGauge("serve.jobs.running")
	obsJobsQueued    = obs.NewGauge("serve.jobs.queued")
)

// JobStatus is the wire view of a job, the /api/v1/jobs payload.
type JobStatus struct {
	ID      string `json:"id"`
	Kind    string `json:"kind"`
	State   string `json:"state"`
	Detail  string `json:"detail"` // workload or experiment name
	Created string `json:"created"`
	Started string `json:"started,omitempty"`
	Ended   string `json:"ended,omitempty"`
	// Completed/Total report campaign progress (zero for jobs without
	// incremental progress).
	Completed int64  `json:"completed"`
	Total     int64  `json:"total"`
	Error     string `json:"error,omitempty"`
	Result    any    `json:"result,omitempty"`
}

// job is one asynchronous unit of work: an injection campaign or an
// experiment regeneration.
type job struct {
	id     string
	kind   string
	detail string

	completed atomic.Int64
	total     atomic.Int64

	mu       sync.Mutex
	state    string
	created  time.Time
	started  time.Time
	ended    time.Time
	err      string
	result   any
	cancel   context.CancelFunc
	finished chan struct{}
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.id,
		Kind:      j.kind,
		State:     j.state,
		Detail:    j.detail,
		Created:   j.created.UTC().Format(time.RFC3339Nano),
		Completed: j.completed.Load(),
		Total:     j.total.Load(),
		Error:     j.err,
	}
	if !j.started.IsZero() {
		st.Started = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.ended.IsZero() {
		st.Ended = j.ended.UTC().Format(time.RFC3339Nano)
	}
	if j.state == StateDone {
		st.Result = j.result
	}
	return st
}

// jobManager owns the asynchronous jobs: a bounded worker pool (slots
// concurrent jobs), status registry, cancellation, and bounded retention
// of finished jobs.
type jobManager struct {
	base      context.Context
	slots     chan struct{}
	retention int

	mu     sync.Mutex
	nextID int
	jobs   map[string]*job

	wg sync.WaitGroup
}

func newJobManager(base context.Context, slots, retention int) *jobManager {
	if slots < 1 {
		slots = 1
	}
	if retention < 1 {
		retention = 64
	}
	return &jobManager{
		base:      base,
		slots:     make(chan struct{}, slots),
		retention: retention,
		jobs:      map[string]*job{},
	}
}

// submit registers a job and starts its goroutine. run executes under a
// context cancelled by Cancel or server shutdown; its result (on nil
// error) becomes the job's Result. The job's total progress is seeded
// with total (0 for jobs without incremental progress).
func (m *jobManager) submit(kind, detail string, total int64, run func(ctx context.Context, j *job) (any, error)) *job {
	ctx, cancel := context.WithCancel(m.base)
	j := &job{
		kind:     kind,
		detail:   detail,
		state:    StateQueued,
		created:  time.Now(),
		cancel:   cancel,
		finished: make(chan struct{}),
	}
	j.total.Store(total)

	m.mu.Lock()
	m.nextID++
	j.id = fmt.Sprintf("job-%06d", m.nextID)
	m.jobs[j.id] = j
	m.evictFinishedLocked()
	m.mu.Unlock()
	obsJobsQueued.Set(int64(m.countState(StateQueued)))

	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		defer cancel()
		defer close(j.finished)

		// One bounded pool for all jobs: heavy campaigns queue here
		// instead of oversubscribing the simulation workers.
		select {
		case m.slots <- struct{}{}:
			defer func() { <-m.slots }()
		case <-ctx.Done():
			m.finish(j, nil, ctx.Err())
			return
		}

		j.mu.Lock()
		if j.state != StateQueued { // cancelled while waiting for a slot
			j.mu.Unlock()
			return
		}
		j.state = StateRunning
		j.started = time.Now()
		j.mu.Unlock()
		obsJobsStarted.Add(1)
		obsJobsRunning.Set(int64(m.countState(StateRunning)))
		obsJobsQueued.Set(int64(m.countState(StateQueued)))

		res, err := run(ctx, j)
		m.finish(j, res, err)
	}()
	return j
}

// finish records a job's terminal state.
func (m *jobManager) finish(j *job, res any, err error) {
	j.mu.Lock()
	if j.state == StateCancelled {
		j.mu.Unlock()
		return
	}
	j.ended = time.Now()
	switch {
	case err != nil && context.Cause(m.base) != nil:
		// Server shutdown: the job did not fail, it was drained.
		j.state = StateCancelled
		j.err = err.Error()
		obsJobsCancelled.Add(1)
	case err != nil:
		j.state = StateFailed
		j.err = err.Error()
		obsJobsFailed.Add(1)
	default:
		j.state = StateDone
		j.result = res
		obsJobsDone.Add(1)
	}
	j.mu.Unlock()
	obsJobsRunning.Set(int64(m.countState(StateRunning)))
	obsJobsQueued.Set(int64(m.countState(StateQueued)))
}

// get returns a job by id.
func (m *jobManager) get(id string) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// cancel transitions a job to cancelled and stops its context. It
// returns false when the job does not exist, and reports whether the job
// was still live (queued or running) when cancelled.
func (m *jobManager) cancelJob(id string) (found, wasLive bool) {
	j, ok := m.get(id)
	if !ok {
		return false, false
	}
	j.mu.Lock()
	live := j.state == StateQueued || j.state == StateRunning
	if live {
		j.state = StateCancelled
		j.ended = time.Now()
		if j.err == "" {
			j.err = "cancelled by request"
		}
	}
	j.mu.Unlock()
	j.cancel()
	if live {
		obsJobsCancelled.Add(1)
		obsJobsRunning.Set(int64(m.countState(StateRunning)))
		obsJobsQueued.Set(int64(m.countState(StateQueued)))
	}
	return true, live
}

// cancelQueued cancels every job that has not started yet (the drain
// policy: running jobs get a grace period, queued work is shed).
func (m *jobManager) cancelQueued() {
	m.mu.Lock()
	ids := make([]string, 0, len(m.jobs))
	for id, j := range m.jobs {
		j.mu.Lock()
		if j.state == StateQueued {
			ids = append(ids, id)
		}
		j.mu.Unlock()
	}
	m.mu.Unlock()
	for _, id := range ids {
		m.cancelJob(id)
	}
}

// list returns every job's status, newest first.
func (m *jobManager) list() []JobStatus {
	m.mu.Lock()
	jobs := make([]*job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.status())
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID > out[k].ID })
	return out
}

func (m *jobManager) countState(state string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, j := range m.jobs {
		j.mu.Lock()
		if j.state == state {
			n++
		}
		j.mu.Unlock()
	}
	return n
}

// evictFinishedLocked bounds the registry: when more than retention jobs
// are held, the oldest finished ones are dropped (live jobs are never
// evicted). Caller holds m.mu.
func (m *jobManager) evictFinishedLocked() {
	if len(m.jobs) <= m.retention {
		return
	}
	type done struct {
		id    string
		ended time.Time
	}
	var finished []done
	for id, j := range m.jobs {
		j.mu.Lock()
		if j.state == StateDone || j.state == StateFailed || j.state == StateCancelled {
			finished = append(finished, done{id, j.ended})
		}
		j.mu.Unlock()
	}
	sort.Slice(finished, func(i, k int) bool { return finished[i].ended.Before(finished[k].ended) })
	for _, f := range finished {
		if len(m.jobs) <= m.retention {
			break
		}
		delete(m.jobs, f.id)
	}
}
