package serve

import (
	"context"
	"encoding/json"
	"net/http"

	"mbavf"
	"mbavf/internal/fabric"
	"mbavf/internal/obs"
)

// evaluateAVF adapts the server's cached AVF query path to the fabric's
// opaque evaluator shape. It backs both roles: as a worker it answers
// KindAVF leases from the coordinator, and as a coordinator it is the
// in-process fallback when the fleet is unreachable.
func (s *Server) evaluateAVF(ctx context.Context, q fabric.AVFQuery) (json.RawMessage, error) {
	resp, err := s.queryAVF(ctx, AVFQuery{
		Workload:  q.Workload,
		Structure: q.Structure,
		Scheme:    q.Scheme,
		Style:     q.Style,
		Factor:    q.Factor,
		ModeBits:  q.ModeBits,
	})
	if err != nil {
		return nil, err
	}
	return json.Marshal(resp)
}

// mountFabric adds the worker endpoints to the route table when this
// server is part of a fleet. The fabric handlers bypass the request
// middleware deliberately: a draining coordinator must still be able to
// poll (and release) leases it already dispatched here. The
// observability pair (/fabric/v1/obs, /fabric/v1/events) is mounted in
// every fleet role: Worker.Mount covers the worker case, and a
// coordinator-only server mounts them here so its own registry and
// event log are scrapeable too.
func (s *Server) mountFabric(mux *http.ServeMux) {
	if s.worker != nil {
		s.worker.Mount(mux)
		return
	}
	if s.coord != nil {
		mux.Handle("GET "+fabric.PathObs, obs.SnapshotHandler())
		mux.Handle("GET "+fabric.PathEvents, obs.EventsHandler())
	}
}

// batchDistributed shards a validated AVF batch across the fleet through
// the coordinator, preserving order. Per-item errors come back as items;
// only a total dispatch failure is returned as an error.
func (s *Server) batchDistributed(ctx context.Context, queries []AVFQuery) ([]BatchItem, error) {
	fq := make([]fabric.AVFQuery, len(queries))
	for i, q := range queries {
		fq[i] = fabric.AVFQuery{
			Workload:  q.Workload,
			Structure: q.Structure,
			Scheme:    q.Scheme,
			Style:     q.Style,
			Factor:    q.Factor,
			ModeBits:  q.ModeBits,
		}
	}
	fitems, err := s.coord.RunAVFBatch(ctx, fq)
	if err != nil {
		return nil, err
	}
	items := make([]BatchItem, len(fitems))
	for i, it := range fitems {
		if it.Error != "" {
			items[i].Error = it.Error
			continue
		}
		var resp AVFResponse
		if derr := json.Unmarshal(it.Result, &resp); derr != nil {
			items[i].Error = "decoding fabric result: " + derr.Error()
			continue
		}
		items[i].Result = &resp
	}
	return items, nil
}

// fabricOptions returns the distributed-execution options injection jobs
// should run under, nil when this server is not a coordinator.
func (s *Server) fabricOptions() *mbavf.FabricOptions {
	if s.coord == nil {
		return nil
	}
	return &mbavf.FabricOptions{Workers: s.cfg.FabricPeers}
}
