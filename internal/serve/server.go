// Package serve is the MB-AVF analysis service: an HTTP/JSON layer that
// decouples expensive workload simulation from cheap repeated
// vulnerability queries. One simulated Run answers any number of
// (structure, scheme, interleaving, mode) questions, so the server keeps
// a sharded LRU of completed runs with singleflight deduplication — N
// concurrent requests for the same workload trigger exactly one
// simulation — plus a second-level cache of computed AVF/SER results, a
// bounded simulation worker pool, per-request timeouts, asynchronous
// fault-injection and experiment jobs, and graceful drain.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mbavf"
	"mbavf/internal/fabric"
	"mbavf/internal/obs"
	"mbavf/internal/store/httpstore"
	"mbavf/internal/workloads"
)

// Request- and pool-level observability series; /metrics exposes them as
// mbavf_serve_* alongside the simulator's own counters.
var (
	obsRequests   = obs.NewCounter("serve.requests")
	obsResponses5 = obs.NewCounter("serve.errors_5xx")
	obsResponses4 = obs.NewCounter("serve.errors_4xx")
	obsReqNS      = obs.NewHistogram("serve.request_ns")
	obsInflight   = obs.NewGauge("serve.inflight_requests")
	obsSims       = obs.NewCounter("serve.simulations")
	obsSimWaiting = obs.NewGauge("serve.sim_queue_depth")
)

// Config tunes the analysis service.
type Config struct {
	// CacheShards is the shard count of both caches (default 4).
	CacheShards int
	// RunsPerShard bounds the heavyweight run cache: each shard keeps at
	// most this many instrumented simulation sessions (default 4).
	RunsPerShard int
	// ResultsPerShard bounds the per-query AVF/SER result cache
	// (default 512).
	ResultsPerShard int
	// MaxSims bounds concurrent simulations (default GOMAXPROCS).
	MaxSims int
	// MaxJobs bounds concurrent asynchronous jobs (default 1; campaigns
	// parallelize internally).
	MaxJobs int
	// JobRetention is how many finished jobs stay queryable (default 64).
	JobRetention int
	// RequestTimeout bounds one synchronous request, including any
	// simulation it has to wait for (default 5m; jobs are not subject to
	// it).
	RequestTimeout time.Duration
	// MaxBatch bounds the number of queries in one batch request
	// (default 256).
	MaxBatch int
	// Store, when non-nil, is the persistent run-artifact tier below the
	// in-memory run cache: cache miss -> store load (milliseconds) ->
	// simulate and record. A warm store lets a cold process answer
	// queries without simulating at all. Any store.Backend works here —
	// a local directory, or (via -store-url) the artifact server of
	// another mbavf-serve process.
	Store *mbavf.RunStore
	// ServeArtifacts mounts the HTTP artifact protocol (/store/v1/*)
	// over Store's backend, making this process the fleet's shared
	// artifact server: one worker's recorded simulation becomes every
	// worker's store hit. Ignored when Store is nil.
	ServeArtifacts bool
	// FabricWorker mounts the distributed-campaign fabric's worker
	// endpoints (/fabric/v1/*) on this server, so a coordinator can lease
	// shot ranges and AVF batches to it.
	FabricWorker bool
	// FabricPeers, when non-empty, makes this server a fabric
	// coordinator: AVF batch requests and injection jobs are sharded into
	// leases across these worker base URLs (falling back in-process when
	// the fleet is unreachable).
	FabricPeers []string
	// FabricShotDelay throttles every shot this worker executes — a
	// chaos/testing knob for rehearsing straggler and lease-steal
	// scenarios (see scripts/fabric-smoke.sh). Zero in production.
	FabricShotDelay time.Duration
}

func (c Config) withDefaults() Config {
	if c.CacheShards <= 0 {
		c.CacheShards = 4
	}
	if c.RunsPerShard <= 0 {
		c.RunsPerShard = 4
	}
	if c.ResultsPerShard <= 0 {
		c.ResultsPerShard = 512
	}
	if c.MaxSims <= 0 {
		c.MaxSims = runtime.GOMAXPROCS(0)
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1
	}
	if c.JobRetention <= 0 {
		c.JobRetention = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Minute
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	return c
}

// Server is the analysis service. Build one with New, mount Handler on
// an http.Server, and call Drain on shutdown.
type Server struct {
	cfg Config

	runs    *Cache[*mbavf.Run]
	results *Cache[any]
	jobs    *jobManager

	simSem     chan struct{}
	simWaiting atomic.Int64
	inflight   atomic.Int64

	base     context.Context
	stop     context.CancelCauseFunc
	draining atomic.Bool
	reqWG    sync.WaitGroup

	worker    *fabric.Worker
	coord     *fabric.Coordinator
	artifacts *httpstore.Server

	descriptions map[string]string
}

// New builds a Server. The observability layer is enabled as a side
// effect: a service without metrics is undebuggable.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	obs.Enable()
	base, stop := context.WithCancelCause(context.Background())
	s := &Server{
		cfg:     cfg,
		runs:    NewCache[*mbavf.Run]("serve.cache.runs", cfg.CacheShards, cfg.RunsPerShard),
		results: NewCache[any]("serve.cache.results", cfg.CacheShards, cfg.ResultsPerShard),
		simSem:  make(chan struct{}, cfg.MaxSims),
		base:    base,
		stop:    stop,

		descriptions: map[string]string{},
	}
	s.jobs = newJobManager(base, cfg.MaxJobs, cfg.JobRetention)
	for _, name := range workloads.Names() {
		if d, err := mbavf.WorkloadDescription(name); err == nil {
			s.descriptions[name] = d
		}
	}
	if cfg.FabricWorker {
		s.worker = fabric.NewWorker(fabric.WorkerConfig{
			AVF:       s.evaluateAVF,
			ShotDelay: cfg.FabricShotDelay,
		})
	}
	if cfg.Store != nil && cfg.ServeArtifacts {
		s.artifacts = httpstore.NewServer(cfg.Store.Backend())
	}
	if len(cfg.FabricPeers) > 0 {
		s.coord = fabric.New(fabric.Config{
			Workers:  cfg.FabricPeers,
			LocalAVF: s.evaluateAVF,
		}, nil)
	}
	return s
}

// run returns the instrumented Run of a workload, simulating at most
// once no matter how many requests ask concurrently. The bool reports a
// cache hit. The simulation itself runs under the server's lifecycle
// context — an abandoned request must not kill a result that every
// queued waiter (and future request) will reuse. Callers that know
// which structures they will analyze pass them, so a store-served run
// (possibly fetched section-by-section from a remote artifact server)
// arrives with those sections preloaded and verified.
func (s *Server) run(ctx context.Context, name string, sts ...mbavf.Structure) (*mbavf.Run, bool, error) {
	if _, ok := s.descriptions[name]; !ok {
		return nil, false, fmt.Errorf("%w: %q", errUnknownWorkload, name)
	}
	return s.runs.Get(ctx, name, func() (*mbavf.Run, error) {
		obsSimWaiting.Set(s.simWaiting.Add(1))
		select {
		case s.simSem <- struct{}{}:
		case <-s.base.Done():
			obsSimWaiting.Set(s.simWaiting.Add(-1))
			return nil, context.Cause(s.base)
		}
		obsSimWaiting.Set(s.simWaiting.Add(-1))
		defer func() { <-s.simSem }()
		r, fromStore, err := mbavf.RunWorkloadStoredFor(s.base, name, s.cfg.Store, sts...)
		if err == nil && !fromStore {
			obsSims.Add(1)
		}
		return r, err
	})
}

// errUnknownWorkload marks queries naming a workload the server does not
// have; handlers map it to 404.
var errUnknownWorkload = errors.New("unknown workload")

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain gracefully shuts the server down: new requests are refused with
// 503 (health checks start failing so load balancers stop routing),
// queued jobs are shed, and in-flight requests and running jobs are
// given until ctx expires to finish. On expiry everything still running
// is cancelled — simulations poll their context, so stragglers unwind
// promptly — and ctx's error is returned.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.jobs.cancelQueued()
	if s.worker != nil {
		defer s.worker.Close()
	}
	done := make(chan struct{})
	go func() {
		s.reqWG.Wait()
		s.jobs.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.stop(errors.New("serve: drained"))
		return nil
	case <-ctx.Done():
		s.stop(fmt.Errorf("serve: drain deadline: %w", ctx.Err()))
		<-done
		return ctx.Err()
	}
}
