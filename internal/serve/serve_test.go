package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mbavf"
)

// newTestServer builds a small Server plus an httptest front end. Tests
// use "vecadd" (the fastest bundled workload) so even the -race pass
// stays quick.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return s, ts
}

func getJSON(t *testing.T, url string, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
}

func postJSON(t *testing.T, url string, body any, wantStatus int, out any) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s = %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
}

const vecaddAVF = "/api/v1/avf?workload=vecadd&structure=l1&scheme=sec-ded&style=logical&factor=2&mode=2"

// TestSingleflight is the tentpole's core guarantee: N concurrent
// identical queries on a cold server trigger exactly one simulation.
func TestSingleflight(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSims: 2})
	simsBefore := obsSims.Value()

	const n = 32
	var wg sync.WaitGroup
	responses := make([]AVFResponse, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + vecaddAVF)
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			errs[i] = json.NewDecoder(resp.Body).Decode(&responses[i])
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if sims := obsSims.Value() - simsBefore; sims != 1 {
		t.Errorf("32 concurrent identical queries ran %d simulations, want 1", sims)
	}
	for i := 1; i < n; i++ {
		if responses[i].AVF != responses[0].AVF {
			t.Errorf("response %d diverged: %+v vs %+v", i, responses[i].AVF, responses[0].AVF)
		}
	}
}

// TestResultCache verifies the second level: a repeated query is a pure
// cache hit (no new simulation, Cached=true), and a different query on
// the same workload reuses the cached run.
func TestResultCache(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	simsBefore := obsSims.Value()

	var first, second AVFResponse
	getJSON(t, ts.URL+vecaddAVF, http.StatusOK, &first)
	if first.Cached {
		t.Error("first query reported a cache hit")
	}
	getJSON(t, ts.URL+vecaddAVF, http.StatusOK, &second)
	if !second.Cached {
		t.Error("repeated query missed the result cache")
	}
	if first.AVF != second.AVF {
		t.Errorf("cached value diverged: %+v vs %+v", first.AVF, second.AVF)
	}

	// A new query point on the same workload: result-cache miss, but the
	// run is reused, so still no new simulation.
	var other AVFResponse
	getJSON(t, ts.URL+strings.Replace(vecaddAVF, "mode=2", "mode=4", 1), http.StatusOK, &other)
	if other.Cached {
		t.Error("distinct query point reported a result-cache hit")
	}
	if sims := obsSims.Value() - simsBefore; sims != 1 {
		t.Errorf("three queries over one workload ran %d simulations, want 1", sims)
	}
}

// TestAVFMatchesLibrary pins the route's numbers to the library: the
// HTTP answer must be bit-identical to calling Run.AVF directly.
func TestAVFMatchesLibrary(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var got AVFResponse
	getJSON(t, ts.URL+vecaddAVF, http.StatusOK, &got)

	r, err := mbavf.RunWorkload("vecadd")
	if err != nil {
		t.Fatal(err)
	}
	want, err := r.AVF(mbavf.L1, mbavf.SECDED, mbavf.Interleaving{Style: mbavf.StyleLogical, Factor: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.AVF != avfValue(want) {
		t.Errorf("HTTP AVF = %+v, library = %+v", got.AVF, avfValue(want))
	}
}

func TestRoutesAndErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	var health map[string]string
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &health)
	if health["status"] != "ok" {
		t.Errorf("healthz = %v", health)
	}

	var catalog struct {
		Workloads  []string `json:"workloads"`
		Structures []struct {
			Name   string   `json:"name"`
			Styles []string `json:"styles"`
		} `json:"structures"`
		Schemes     []string `json:"schemes"`
		Experiments []string `json:"experiments"`
	}
	getJSON(t, ts.URL+"/api/v1/catalog", http.StatusOK, &catalog)
	if len(catalog.Workloads) < 10 || len(catalog.Structures) != 3 || len(catalog.Schemes) != 4 || len(catalog.Experiments) < 10 {
		t.Errorf("catalog shape: %d workloads, %d structures, %d schemes, %d experiments",
			len(catalog.Workloads), len(catalog.Structures), len(catalog.Schemes), len(catalog.Experiments))
	}

	var wls struct {
		Workloads []struct {
			Name        string `json:"name"`
			Description string `json:"description"`
		} `json:"workloads"`
	}
	getJSON(t, ts.URL+"/api/v1/workloads", http.StatusOK, &wls)
	if len(wls.Workloads) == 0 || wls.Workloads[0].Description == "" {
		t.Errorf("workloads route: %+v", wls)
	}

	// Client errors map to their codes before any simulation happens.
	for _, tc := range []struct {
		url  string
		code int
	}{
		{"/api/v1/avf?workload=vecadd&structure=l1&scheme=hamming&style=logical&factor=2&mode=2", http.StatusBadRequest},
		{"/api/v1/avf?workload=vecadd&structure=tlb&scheme=parity&style=logical&factor=2&mode=2", http.StatusBadRequest},
		{"/api/v1/avf?workload=vecadd&structure=l1&scheme=parity&style=intra-thread&factor=2&mode=2", http.StatusBadRequest},
		{"/api/v1/avf?workload=vecadd&structure=l1&scheme=parity&style=logical&factor=0&mode=2", http.StatusBadRequest},
		{"/api/v1/avf?workload=vecadd&structure=l1&scheme=parity&style=logical&factor=2&mode=0", http.StatusBadRequest},
		{"/api/v1/avf?workload=nope&structure=l1&scheme=parity&style=logical&factor=2&mode=2", http.StatusNotFound},
		{"/api/v1/jobs/job-999999", http.StatusNotFound},
	} {
		var apiErr apiError
		getJSON(t, ts.URL+tc.url, tc.code, &apiErr)
		if apiErr.Error == "" {
			t.Errorf("%s: empty error body", tc.url)
		}
	}

	// MTTF is the analytical Figure 2 model: spatial multi-bit MTTF must
	// sit far below temporal at realistic rates, and bad params map to 400.
	var m MTTFResponse
	getJSON(t, ts.URL+"/api/v1/mttf?raw_fit_per_bit=1e-4&smbf_fraction=0.05", http.StatusOK, &m)
	if m.SpatialYears <= 0 || m.SpatialOverTmp <= 1 {
		t.Errorf("MTTF shape: %+v", m)
	}
	getJSON(t, ts.URL+"/api/v1/mttf?raw_fit_per_bit=-1", http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/api/v1/mttf?bits=oops", http.StatusBadRequest, nil)

	// SER over HTTP matches the library.
	var ser SERResponse
	getJSON(t, ts.URL+"/api/v1/ser?workload=vecadd&structure=vgpr&scheme=parity&style=intra-thread&factor=2", http.StatusOK, &ser)
	r, err := mbavf.RunWorkload("vecadd")
	if err != nil {
		t.Fatal(err)
	}
	want, err := r.SER(mbavf.VGPR, mbavf.Parity, mbavf.Interleaving{Style: mbavf.StyleIntraThread, Factor: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ser.SDCFit != want.SDC || ser.DUEFit != want.DUE {
		t.Errorf("HTTP SER = (%v, %v), library = %+v", ser.SDCFit, ser.DUEFit, want)
	}
}

func TestBatch(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	q := AVFQuery{Workload: "vecadd", Structure: "l1", Scheme: "parity", Style: "logical", Factor: 2, ModeBits: 2}
	bad := q
	bad.Scheme = "hamming"
	var out struct {
		Results []BatchItem `json:"results"`
	}
	postJSON(t, ts.URL+"/api/v1/avf/batch", map[string]any{"queries": []AVFQuery{q, q, bad}}, http.StatusOK, &out)
	if len(out.Results) != 3 {
		t.Fatalf("%d results, want 3", len(out.Results))
	}
	if out.Results[0].Result == nil || out.Results[1].Result == nil {
		t.Fatal("valid batch items failed")
	}
	if out.Results[0].Result.AVF != out.Results[1].Result.AVF {
		t.Error("identical batch items diverged")
	}
	if out.Results[2].Error == "" {
		t.Error("invalid batch item did not report its error")
	}
	postJSON(t, ts.URL+"/api/v1/avf/batch", map[string]any{"queries": []AVFQuery{}}, http.StatusBadRequest, nil)
}

func TestJobLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	var st JobStatus
	postJSON(t, ts.URL+"/api/v1/jobs/injection",
		InjectionJobRequest{Workload: "vecadd", Injections: 4, Seed: 7, Workers: 2},
		http.StatusAccepted, &st)
	if st.State != StateQueued && st.State != StateRunning {
		t.Fatalf("fresh job state = %q", st.State)
	}

	j, ok := s.jobs.get(st.ID)
	if !ok {
		t.Fatalf("job %q not registered", st.ID)
	}
	select {
	case <-j.finished:
	case <-time.After(2 * time.Minute):
		t.Fatal("job did not finish")
	}

	getJSON(t, ts.URL+"/api/v1/jobs/"+st.ID, http.StatusOK, &st)
	if st.State != StateDone {
		t.Fatalf("job state = %q (%s), want done", st.State, st.Error)
	}
	if st.Completed != 4 || st.Total != 4 {
		t.Errorf("progress = %d/%d, want 4/4", st.Completed, st.Total)
	}
	res, err := json.Marshal(st.Result)
	if err != nil {
		t.Fatal(err)
	}
	var sum InjectionJobResult
	if err := json.Unmarshal(res, &sum); err != nil {
		t.Fatal(err)
	}
	if got := sum.Masked + sum.SDC + sum.DUE + sum.Hang + sum.Crash; got != 4 {
		t.Errorf("classified %d shots, want 4 (%+v)", got, sum)
	}

	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	getJSON(t, ts.URL+"/api/v1/jobs", http.StatusOK, &list)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != st.ID {
		t.Errorf("job list = %+v", list.Jobs)
	}

	postJSON(t, ts.URL+"/api/v1/jobs/injection",
		InjectionJobRequest{Workload: "nope", Injections: 4}, http.StatusNotFound, nil)
	postJSON(t, ts.URL+"/api/v1/jobs/injection",
		InjectionJobRequest{Workload: "vecadd", Injections: 0}, http.StatusBadRequest, nil)
}

// TestJobCancelQueued pins the deterministic cancellation path: with one
// job slot, a second submission stays queued and can be cancelled before
// it ever runs.
func TestJobCancelQueued(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxJobs: 1})

	var running, queued JobStatus
	postJSON(t, ts.URL+"/api/v1/jobs/injection",
		InjectionJobRequest{Workload: "vecadd", Injections: 64, Workers: 2},
		http.StatusAccepted, &running)
	postJSON(t, ts.URL+"/api/v1/jobs/injection",
		InjectionJobRequest{Workload: "vecadd", Injections: 64, Workers: 2},
		http.StatusAccepted, &queued)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.State != StateCancelled {
		t.Errorf("cancelled queued job state = %q", st.State)
	}

	// Cancel the running one too; its context unwinds the campaign.
	if found, _ := s.jobs.cancelJob(running.ID); !found {
		t.Fatal("running job vanished")
	}
	j, _ := s.jobs.get(running.ID)
	select {
	case <-j.finished:
	case <-time.After(2 * time.Minute):
		t.Fatal("cancelled job did not unwind")
	}
	getJSON(t, ts.URL+"/api/v1/jobs/"+running.ID, http.StatusOK, &st)
	if st.State != StateCancelled {
		t.Errorf("cancelled running job state = %q", st.State)
	}
}

// TestGracefulDrain pins the shutdown contract: drain refuses new work,
// waits for in-flight requests, shuts queued jobs, and leaves the server
// answering 503.
func TestGracefulDrain(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Warm one request through so there is real completed work to drain
	// around.
	resp, err := http.Get(ts.URL + vecaddAVF)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if !s.Draining() {
		t.Error("Draining() false after Drain")
	}

	for _, url := range []string{ts.URL + "/healthz", ts.URL + vecaddAVF, ts.URL + "/api/v1/catalog"} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("GET %s after drain = %d, want 503", url, resp.StatusCode)
		}
	}

	// Cached runs stay readable after drain (the middleware refuses the
	// request long before this), but uncached work can no longer simulate:
	// the lifecycle context is gone.
	if _, cached, err := s.run(context.Background(), "vecadd"); err != nil || !cached {
		t.Errorf("cached run after drain: cached=%v err=%v", cached, err)
	}
	if _, _, err := s.run(context.Background(), "dct"); err == nil {
		t.Error("uncached run after drain should fail")
	}
}

// TestDrainDeadline verifies the hard-cancel path: a drain whose context
// expires cancels running jobs rather than waiting forever.
func TestDrainDeadline(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var st JobStatus
	postJSON(t, ts.URL+"/api/v1/jobs/injection",
		InjectionJobRequest{Workload: "vecadd", Injections: 5000, Workers: 2},
		http.StatusAccepted, &st)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain err = %v, want deadline exceeded", err)
	}
	getJSON(t, ts.URL+"/api/v1/jobs/"+st.ID, http.StatusServiceUnavailable, nil)
	j, _ := s.jobs.get(st.ID)
	st = j.status()
	if st.State != StateCancelled && st.State != StateDone {
		t.Errorf("job state after deadline drain = %q", st.State)
	}
}

func TestCacheSingleflightUnit(t *testing.T) {
	c := NewCache[int]("serve.cache.test", 2, 2)
	var builds int
	var mu sync.Mutex
	build := func() (int, error) {
		mu.Lock()
		builds++
		mu.Unlock()
		time.Sleep(10 * time.Millisecond)
		return 42, nil
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := c.Get(context.Background(), "k", build)
			if err != nil || v != 42 {
				t.Errorf("Get = %d, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if builds != 1 {
		t.Errorf("16 concurrent Gets ran %d builds, want 1", builds)
	}

	// Eviction: per-shard capacity 2, so stuffing one shard past its cap
	// drops the oldest entry.
	errBoom := errors.New("boom")
	if _, _, err := c.Get(context.Background(), "bad", func() (int, error) { return 0, errBoom }); !errors.Is(err, errBoom) {
		t.Errorf("build error not propagated: %v", err)
	}
	if _, cached, _ := c.Get(context.Background(), "bad", func() (int, error) { return 7, nil }); cached {
		t.Error("build error was cached")
	}
}
