package serve

import (
	"container/list"
	"context"
	"hash/fnv"
	"sync"

	"mbavf/internal/obs"
)

// Cache is a sharded LRU with singleflight deduplication: N concurrent
// Gets for the same missing key trigger exactly one build; everyone else
// blocks on the leader's result. It backs both the run cache (a handful
// of heavyweight *mbavf.Run sessions) and the query-result cache (many
// tiny AVF/SER values) of the analysis service.
//
// The build function is intentionally context-free: the leader completes
// the build even if the request that started it is abandoned, because the
// result is about to be shared with every waiter and cached for every
// future query. Callers bound builds with the server's lifecycle context,
// not a request context; the per-request context only limits how long a
// waiter is willing to block.
type Cache[V any] struct {
	shards []*shard[V]

	hits   *obs.Counter
	misses *obs.Counter
	joins  *obs.Counter // Gets coalesced onto an in-flight build
	evicts *obs.Counter
}

type shard[V any] struct {
	mu       sync.Mutex
	cap      int
	order    *list.List               // front = most recently used
	entries  map[string]*list.Element // value: *entry[V]
	inflight map[string]*flight[V]
}

type entry[V any] struct {
	key string
	val V
}

type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// NewCache builds a cache of nShards shards holding up to perShard
// entries each. The name prefixes the cache's observability series
// (<name>.hits, .misses, .joins, .evictions).
func NewCache[V any](name string, nShards, perShard int) *Cache[V] {
	if nShards < 1 {
		nShards = 1
	}
	if perShard < 1 {
		perShard = 1
	}
	c := &Cache[V]{
		shards: make([]*shard[V], nShards),
		hits:   obs.NewCounter(name + ".hits"),
		misses: obs.NewCounter(name + ".misses"),
		joins:  obs.NewCounter(name + ".joins"),
		evicts: obs.NewCounter(name + ".evictions"),
	}
	for i := range c.shards {
		c.shards[i] = &shard[V]{
			cap:      perShard,
			order:    list.New(),
			entries:  map[string]*list.Element{},
			inflight: map[string]*flight[V]{},
		}
	}
	return c
}

func (c *Cache[V]) shardFor(key string) *shard[V] {
	h := fnv.New32a()
	h.Write([]byte(key))
	return c.shards[h.Sum32()%uint32(len(c.shards))]
}

// Get returns the cached value for key, or builds it. The second result
// reports whether the value came from the cache (true) as opposed to a
// fresh or joined build (false). Waiters give up when ctx is cancelled,
// but an in-flight build always runs to completion and is cached so the
// work is never wasted. Build errors are not cached.
func (c *Cache[V]) Get(ctx context.Context, key string, build func() (V, error)) (V, bool, error) {
	s := c.shardFor(key)
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		s.order.MoveToFront(el)
		v := el.Value.(*entry[V]).val
		s.mu.Unlock()
		c.hits.Add(1)
		return v, true, nil
	}
	if f, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		c.joins.Add(1)
		var zero V
		select {
		case <-f.done:
			return f.val, false, f.err
		case <-ctx.Done():
			return zero, false, ctx.Err()
		}
	}
	f := &flight[V]{done: make(chan struct{})}
	s.inflight[key] = f
	s.mu.Unlock()
	c.misses.Add(1)

	f.val, f.err = build()

	s.mu.Lock()
	delete(s.inflight, key)
	if f.err == nil {
		s.entries[key] = s.order.PushFront(&entry[V]{key: key, val: f.val})
		for s.order.Len() > s.cap {
			oldest := s.order.Back()
			s.order.Remove(oldest)
			delete(s.entries, oldest.Value.(*entry[V]).key)
			c.evicts.Add(1)
		}
	}
	s.mu.Unlock()
	close(f.done)
	return f.val, false, f.err
}

// Len returns the number of cached entries across all shards.
func (c *Cache[V]) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}
