package serve

// The protection-policy query family: /api/v1/policy evaluates one of
// the built-in policies (delayed reporting, scrubbing, temporal
// accumulation) over a workload's solved spatial fault-group outcomes.
// Policy queries ride the same two-level cache as plain AVF queries — a
// repeated query is a result-cache map lookup, and distinct policies
// over one workload share the singleflight-deduplicated run.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"mbavf"
)

// PolicyQuery names one point of the policy query space: the AVF query
// shape with the scheme replaced by a policy name plus the scrub period.
type PolicyQuery struct {
	Workload  string `json:"workload"`
	Structure string `json:"structure"`
	Policy    string `json:"policy"`
	Style     string `json:"style"`
	Factor    int    `json:"factor"`
	ModeBits  int    `json:"mode_bits"`
	// ScrubInterval is the scrub period in cycles; 0 (or absent) selects
	// the built-in default, explicit non-positive values are rejected.
	ScrubInterval int64 `json:"scrub_interval"`
}

// key is the result-cache key: one entry per distinct policy point.
func (q PolicyQuery) key() string {
	return fmt.Sprintf("policy|%s|%s|%s|%s|%d|%d|%d",
		q.Workload, q.Structure, q.Policy, q.Style, q.Factor, q.ModeBits, q.ScrubInterval)
}

// validate resolves the query's enums and knobs before any expensive
// work, so every malformed policy query fails with a client error
// without loading a run or simulating.
func (q PolicyQuery) validate() (mbavf.Structure, mbavf.Interleaving, error) {
	st, err := mbavf.ParseStructure(q.Structure)
	if err != nil {
		return "", mbavf.Interleaving{}, err
	}
	il := mbavf.Interleaving{Style: mbavf.Style(q.Style), Factor: q.Factor}
	ok := false
	for _, s := range st.Styles() {
		if s == il.Style {
			ok = true
		}
	}
	if !ok {
		return "", mbavf.Interleaving{}, fmt.Errorf("%w: style %q not valid for structure %q (have %v)",
			mbavf.ErrBadOption, q.Style, q.Structure, st.Styles())
	}
	if il.Factor < 1 {
		return "", mbavf.Interleaving{}, fmt.Errorf("%w: interleaving factor %d must be >= 1", mbavf.ErrBadOption, il.Factor)
	}
	if q.ModeBits < 1 {
		return "", mbavf.Interleaving{}, fmt.Errorf("%w: mode_bits must be >= 1 (got %d)", mbavf.ErrBadOption, q.ModeBits)
	}
	ok = false
	for _, name := range mbavf.Policies() {
		if name == q.Policy {
			ok = true
		}
	}
	if !ok {
		return "", mbavf.Interleaving{}, fmt.Errorf("%w: unknown policy %q (have %v)",
			mbavf.ErrBadOption, q.Policy, mbavf.Policies())
	}
	// Run.PolicyAVF re-checks the interval; rejecting it here keeps the
	// failure ahead of any run load or simulation.
	if q.ScrubInterval <= 0 {
		return "", mbavf.Interleaving{}, fmt.Errorf("%w: scrub interval must be positive cycles (got %d)",
			mbavf.ErrBadOption, q.ScrubInterval)
	}
	return st, il, nil
}

// PolicyResponse is one answered policy query: the policy-adjusted AVF,
// the plain-scheme baseline it deviates from, and the deltas.
type PolicyResponse struct {
	PolicyQuery
	AVF      AVFValue `json:"avf"`
	Baseline AVFValue `json:"baseline"`
	DeltaDUE float64  `json:"delta_due"`
	DeltaSDC float64  `json:"delta_sdc"`
	// AccumP is the temporal multi-event occupancy probability mixed into
	// the outcome (0 for policies without a temporal model).
	AccumP    float64 `json:"accum_p"`
	Escalated bool    `json:"escalated"`
	Cached    bool    `json:"cached"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// parsePolicyQuery accepts the query as URL parameters (GET) or as a
// JSON body (POST).
func parsePolicyQuery(r *http.Request) (PolicyQuery, error) {
	var q PolicyQuery
	if r.Method == http.MethodPost {
		// The scrub interval decodes through a pointer so an absent field
		// (-> default) is distinguishable from an explicit zero (-> 400
		// from the typed validation, like any other non-positive value).
		var body struct {
			PolicyQuery
			ScrubInterval *int64 `json:"scrub_interval"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			return q, fmt.Errorf("%w: decoding body: %v", mbavf.ErrBadOption, err)
		}
		q = body.PolicyQuery
		if body.ScrubInterval != nil {
			q.ScrubInterval = *body.ScrubInterval
		} else {
			q.ScrubInterval = mbavf.DefaultScrubInterval
		}
		return q, nil
	}
	v := r.URL.Query()
	q.Workload = v.Get("workload")
	q.Structure = v.Get("structure")
	q.Policy = v.Get("policy")
	q.Style = v.Get("style")
	var err error
	if q.Factor, err = atoiDefault(v.Get("factor"), 1); err != nil {
		return q, fmt.Errorf("%w: factor: %v", mbavf.ErrBadOption, err)
	}
	if q.ModeBits, err = atoiDefault(v.Get("mode"), 0); err != nil {
		return q, fmt.Errorf("%w: mode: %v", mbavf.ErrBadOption, err)
	}
	if raw := v.Get("scrub_interval"); raw != "" {
		if q.ScrubInterval, err = strconv.ParseInt(raw, 10, 64); err != nil {
			return q, fmt.Errorf("%w: scrub_interval: %v", mbavf.ErrBadOption, err)
		}
	} else {
		q.ScrubInterval = mbavf.DefaultScrubInterval
	}
	return q, nil
}

// queryPolicy answers one policy query through the two-level cache.
func (s *Server) queryPolicy(ctx context.Context, q PolicyQuery) (PolicyResponse, error) {
	st, il, err := q.validate()
	if err != nil {
		return PolicyResponse{}, err
	}
	began := time.Now()
	v, cached, err := s.results.Get(ctx, q.key(), func() (any, error) {
		run, _, err := s.run(ctx, q.Workload, st)
		if err != nil {
			return nil, err
		}
		return run.PolicyAVF(st, q.Policy, il, q.ModeBits, q.ScrubInterval)
	})
	if err != nil {
		return PolicyResponse{}, err
	}
	out := v.(mbavf.PolicyOutcome)
	return PolicyResponse{
		PolicyQuery: q,
		AVF:         avfValue(out.AVF),
		Baseline:    avfValue(out.Baseline),
		DeltaDUE:    out.DeltaDUE,
		DeltaSDC:    out.DeltaSDC,
		AccumP:      out.AccumP,
		Escalated:   out.Escalated,
		Cached:      cached,
		ElapsedMS:   float64(time.Since(began)) / float64(time.Millisecond),
	}, nil
}

func (s *Server) handlePolicy(w http.ResponseWriter, r *http.Request) {
	q, err := parsePolicyQuery(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	resp, err := s.queryPolicy(r.Context(), q)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
