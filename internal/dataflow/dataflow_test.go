package dataflow

import (
	"testing"
	"testing/quick"
)

func TestGroundVersionNeverLive(t *testing.T) {
	g := NewGraph()
	g.MarkRootLive(0, 0xFFFFFFFF)
	g.NoteRead(0, 10)
	g.Solve()
	if g.Live(0) != 0 {
		t.Error("ground version must stay dead")
	}
	if g.EverRead(0) {
		t.Error("ground version reads must be ignored")
	}
}

func TestMoveChainPropagation(t *testing.T) {
	g := NewGraph()
	a := g.New(TransferNone, 0)
	b := g.New(TransferMove, 0, a)
	c := g.New(TransferMove, 0, b)
	g.MarkRootLive(c, 0x00FF00FF)
	g.Solve()
	for _, id := range []VersionID{a, b, c} {
		if g.Live(id) != 0x00FF00FF {
			t.Errorf("version %d live = %#x, want 0x00FF00FF", id, g.Live(id))
		}
	}
}

func TestDeadValueStaysDead(t *testing.T) {
	g := NewGraph()
	a := g.New(TransferNone, 0)
	b := g.New(TransferMove, 0, a) // b never consumed: first-level dead
	c := g.New(TransferMove, 0, a)
	g.MarkRootLive(c, 1)
	g.Solve()
	if !g.Dead(b) {
		t.Error("unconsumed version should be dead")
	}
	if g.Dead(a) || g.Dead(c) {
		t.Error("consumed chain should be live")
	}
}

func TestTransitiveDeadness(t *testing.T) {
	// a -> b -> c where only c is unconsumed: a and b are transitively
	// dead (the paper's "transitive dynamic-dead instructions").
	g := NewGraph()
	a := g.New(TransferNone, 0)
	b := g.New(TransferAll, 0, a)
	c := g.New(TransferAll, 0, b)
	g.Solve()
	for _, id := range []VersionID{a, b, c} {
		if !g.Dead(id) {
			t.Errorf("version %d should be transitively dead", id)
		}
	}
	if got := g.Stats().DeadCount; got != 3 {
		t.Errorf("DeadCount = %d, want 3", got)
	}
}

func TestAndLogicMasking(t *testing.T) {
	// r = a AND 0x0000FFFF: upper bits of a cannot influence r.
	g := NewGraph()
	a := g.New(TransferNone, 0)
	r := g.New(TransferAnd, 0x0000FFFF, a)
	g.MarkRootLive(r, 0xFFFFFFFF)
	g.Solve()
	if g.Live(a) != 0x0000FFFF {
		t.Errorf("AND-masked live = %#x, want 0x0000FFFF", g.Live(a))
	}
}

func TestOrLogicMasking(t *testing.T) {
	// r = a OR 0xFF000000: upper byte of a is masked (forced to 1).
	g := NewGraph()
	a := g.New(TransferNone, 0)
	r := g.New(TransferOr, 0xFF000000, a)
	g.MarkRootLive(r, 0xFFFFFFFF)
	g.Solve()
	if g.Live(a) != 0x00FFFFFF {
		t.Errorf("OR-masked live = %#x, want 0x00FFFFFF", g.Live(a))
	}
}

func TestShiftTransfers(t *testing.T) {
	g := NewGraph()
	a := g.New(TransferNone, 0)
	shl := g.New(TransferShl, 8, a) // r = a << 8
	g.MarkRootLive(shl, 0x0000FF00)
	b := g.New(TransferNone, 0)
	shr := g.New(TransferShr, 4, b) // r = b >> 4
	g.MarkRootLive(shr, 0x000000F0)
	g.Solve()
	if g.Live(a) != 0x000000FF {
		t.Errorf("shl dep live = %#x, want 0xFF", g.Live(a))
	}
	if g.Live(b) != 0x00000F00 {
		t.Errorf("shr dep live = %#x, want 0xF00", g.Live(b))
	}
}

func TestArithCarrySpread(t *testing.T) {
	// r = a + b with only result bit 8 live: bits 0..8 of both operands
	// can influence it via carries; bits above 8 cannot.
	g := NewGraph()
	a := g.New(TransferNone, 0)
	b := g.New(TransferNone, 0)
	r := g.New(TransferArith, 0, a, b)
	g.MarkRootLive(r, 1<<8)
	g.Solve()
	want := uint32(1<<9 - 1)
	if g.Live(a) != want || g.Live(b) != want {
		t.Errorf("arith live = %#x/%#x, want %#x", g.Live(a), g.Live(b), want)
	}
}

func TestArithTopBitLive(t *testing.T) {
	g := NewGraph()
	a := g.New(TransferNone, 0)
	r := g.New(TransferArith, 0, a)
	g.MarkRootLive(r, 1<<31)
	g.Solve()
	if g.Live(a) != ^uint32(0) {
		t.Errorf("live = %#x, want all ones", g.Live(a))
	}
}

func TestSelectTransfer(t *testing.T) {
	g := NewGraph()
	val := g.New(TransferNone, 0)
	cond := g.New(TransferNone, 0)
	r := g.New(TransferSelect, 0, val, cond)
	g.MarkRootLive(r, 0xF0)
	g.Solve()
	if g.Live(val) != 0xF0 {
		t.Errorf("selected value live = %#x, want 0xF0", g.Live(val))
	}
	if g.Live(cond) != 1 {
		t.Errorf("condition live = %#x, want 1", g.Live(cond))
	}
}

func TestByteStoreAndAssemble(t *testing.T) {
	g := NewGraph()
	word := g.New(TransferNone, 0)
	// Store all four bytes of word.
	bytes := make([]VersionID, 4)
	for i := range bytes {
		bytes[i] = g.New(TransferByte, uint32(i), word)
	}
	// Load a word back from bytes 0..3.
	loaded := g.New(TransferAssemble, 0, bytes[0], bytes[1], bytes[2], bytes[3])
	g.MarkRootLive(loaded, 0x00FF00FF) // bytes 0 and 2 matter
	g.Solve()
	if g.Live(bytes[0]) != 0xFF || g.Live(bytes[2]) != 0xFF {
		t.Errorf("byte live = %#x,%#x, want 0xFF,0xFF", g.Live(bytes[0]), g.Live(bytes[2]))
	}
	if g.Live(bytes[1]) != 0 || g.Live(bytes[3]) != 0 {
		t.Errorf("dead bytes live = %#x,%#x, want 0", g.Live(bytes[1]), g.Live(bytes[3]))
	}
	if g.Live(word) != 0x00FF00FF {
		t.Errorf("source word live = %#x, want 0x00FF00FF", g.Live(word))
	}
	if g.LiveByte(word, 0) != 0xFF || g.LiveByte(word, 1) != 0 {
		t.Error("LiveByte slicing wrong")
	}
}

func TestXorCancellationIsNotModeled(t *testing.T) {
	// The paper's ACE-interference example: r = a XOR b where a and b are
	// both corrupted. Per-version liveness keeps both fully live — the
	// model deliberately does not capture multi-fault interference; the
	// injection study (Table II) quantifies that error instead.
	g := NewGraph()
	a := g.New(TransferNone, 0)
	b := g.New(TransferNone, 0)
	r := g.New(TransferMove, 0, a) // xor modeled as per-operand move
	r2 := g.New(TransferMove, 0, b)
	g.MarkRootLive(r, 1)
	g.MarkRootLive(r2, 1)
	g.Solve()
	if g.Live(a) != 1 || g.Live(b) != 1 {
		t.Error("xor operands should each be individually live")
	}
}

func TestNoteReadTracking(t *testing.T) {
	g := NewGraph()
	a := g.New(TransferNone, 0)
	if g.EverRead(a) {
		t.Error("fresh version should be unread")
	}
	g.NoteRead(a, 100)
	g.NoteRead(a, 50) // earlier read must not regress lastRead
	if !g.EverRead(a) {
		t.Error("EverRead after NoteRead")
	}
	if !g.ReadAfter(a, 99) {
		t.Error("ReadAfter(99) should be true")
	}
	if g.ReadAfter(a, 100) {
		t.Error("ReadAfter(100) should be false (strictly after)")
	}
}

func TestSolveFreezesGraph(t *testing.T) {
	g := NewGraph()
	g.New(TransferNone, 0)
	g.Solve()
	g.Solve() // idempotent
	defer func() {
		if recover() == nil {
			t.Error("New after Solve should panic")
		}
	}()
	g.New(TransferNone, 0)
}

func TestDepOrderEnforced(t *testing.T) {
	g := NewGraph()
	defer func() {
		if recover() == nil {
			t.Error("forward dep should panic")
		}
	}()
	g.New(TransferMove, 0, VersionID(5))
}

func TestQuickLivenessMonotonic(t *testing.T) {
	// Adding root liveness can only grow live masks.
	f := func(mask1, mask2 uint32) bool {
		build := func(extra uint32) (uint32, uint32) {
			g := NewGraph()
			a := g.New(TransferNone, 0)
			b := g.New(TransferArith, 0, a)
			c := g.New(TransferAnd, 0x0F0F0F0F, b)
			g.MarkRootLive(c, mask1)
			g.MarkRootLive(c, extra)
			g.Solve()
			return g.Live(a), g.Live(b)
		}
		a1, b1 := build(0)
		a2, b2 := build(mask2)
		return a1&a2 == a1 && b1&b2 == b1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAndRefinesAll(t *testing.T) {
	// TransferAnd must never claim more liveness than TransferAll would.
	f := func(aux, root uint32) bool {
		g1 := NewGraph()
		a1 := g1.New(TransferNone, 0)
		r1 := g1.New(TransferAnd, aux, a1)
		g1.MarkRootLive(r1, root)
		g1.Solve()

		g2 := NewGraph()
		a2 := g2.New(TransferNone, 0)
		r2 := g2.New(TransferAll, 0, a2)
		g2.MarkRootLive(r2, root)
		g2.Solve()
		return g1.Live(a1)&^g2.Live(a2) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAndTwoVariableOperands(t *testing.T) {
	// r = a AND b with a=0x0F, b=0xF3 at runtime: a's live bits are where
	// b is 1, b's live bits are where a is 1.
	g := NewGraph()
	a := g.New(TransferNone, 0)
	b := g.New(TransferNone, 0)
	r := g.New2(TransferAnd, 0xF3, 0x0F, a, b) // Aux = b's value, Aux2 = a's value
	g.MarkRootLive(r, 0xFF)
	g.Solve()
	if g.Live(a) != 0xF3 {
		t.Errorf("a live = %#x, want 0xF3", g.Live(a))
	}
	if g.Live(b) != 0x0F {
		t.Errorf("b live = %#x, want 0x0F", g.Live(b))
	}
}

func TestOrTwoVariableOperands(t *testing.T) {
	g := NewGraph()
	a := g.New(TransferNone, 0)
	b := g.New(TransferNone, 0)
	r := g.New2(TransferOr, 0xF0, 0x0C, a, b)
	g.MarkRootLive(r, 0xFF)
	g.Solve()
	if g.Live(a) != 0x0F {
		t.Errorf("a live = %#x, want 0x0F", g.Live(a))
	}
	if g.Live(b) != 0xF3 {
		t.Errorf("b live = %#x, want 0xF3", g.Live(b))
	}
}

func TestMoveMultipleDeps(t *testing.T) {
	// XOR modeled as a two-dep move: both operands get the result mask.
	g := NewGraph()
	a := g.New(TransferNone, 0)
	b := g.New(TransferNone, 0)
	r := g.New(TransferMove, 0, a, b)
	g.MarkRootLive(r, 0xA5)
	g.Solve()
	if g.Live(a) != 0xA5 || g.Live(b) != 0xA5 {
		t.Errorf("xor deps live = %#x,%#x, want 0xA5", g.Live(a), g.Live(b))
	}
}

func TestVariableShiftAmountLive(t *testing.T) {
	g := NewGraph()
	val := g.New(TransferNone, 0)
	amt := g.New(TransferNone, 0)
	r := g.New(TransferShl, 4, val, amt)
	g.MarkRootLive(r, 0xF0)
	g.Solve()
	if g.Live(val) != 0x0F {
		t.Errorf("shifted value live = %#x, want 0x0F", g.Live(val))
	}
	if g.Live(amt) != 31 {
		t.Errorf("shift amount live = %#x, want 0x1F", g.Live(amt))
	}
}

func TestDeadShiftDoesNotTouchAmount(t *testing.T) {
	g := NewGraph()
	val := g.New(TransferNone, 0)
	amt := g.New(TransferNone, 0)
	g.New(TransferShr, 2, val, amt) // result never consumed
	g.Solve()
	if g.Live(val) != 0 || g.Live(amt) != 0 {
		t.Error("dead shift should leave operands dead")
	}
}
