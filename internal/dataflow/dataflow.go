// Package dataflow builds a dynamic value-dependence graph during
// simulation and solves backward bit-level liveness over it.
//
// Every value produced during execution — a vector register write, a
// stored memory byte, a per-lane condition bit — is a version. Versions
// record how liveness propagates from the produced value back to the
// values it was computed from (the transfer function), so a single reverse
// pass over the version array computes, for every version, the mask of
// bits that influence program output.
//
// This is the program-level masking analysis the paper's SDC ACE model
// requires (Section VII): versions with a zero live mask correspond to
// first-level or transitively dynamically-dead values, and partially-zero
// masks capture logic masking (e.g. bits removed by an AND). Control and
// address consumers are handled conservatively: a value that feeds a
// branch condition, a memory address, or scalar code is marked fully live,
// matching standard industrial ACE practice.
package dataflow

import (
	"fmt"
	"math/bits"

	"mbavf/internal/interval"
)

// VersionID names a dynamic value. Version 0 is the ground version: the
// contents of registers and memory before the program ran; it is never
// live and its reads are ignored.
type VersionID uint32

// Transfer describes how a version's liveness propagates to its
// dependencies.
type Transfer uint8

const (
	// TransferNone has no dependencies (immediates, input data).
	TransferNone Transfer = iota
	// TransferAll makes every bit of every dependency live if any result
	// bit is live (multiplies, float ops, comparisons).
	TransferAll
	// TransferMove propagates the result mask unchanged to every
	// dependency (moves, XOR, NOT, and other bit-wise permutation-free
	// ops).
	TransferMove
	// TransferArith propagates carry-aware liveness for addition and
	// subtraction: a dependency bit is live if any result bit at or above
	// it is live.
	TransferArith
	// TransferAnd is bitwise AND: Deps[0]'s live mask is the result mask
	// restricted to bits where the other operand (value in Aux) is 1, and
	// the optional Deps[1] is restricted by Aux2 symmetrically.
	TransferAnd
	// TransferOr is bitwise OR: Deps[0]'s live mask is restricted to bits
	// where the other operand (Aux) is 0; the optional Deps[1] uses Aux2.
	TransferOr
	// TransferShl is a left shift by Aux: dependency bit i feeds result
	// bit i+Aux. The optional Deps[1] is a variable shift amount, whose
	// low five bits are live whenever any result bit is.
	TransferShl
	// TransferShr is a logical right shift by Aux, with the same optional
	// shift-amount dependency as TransferShl.
	TransferShr
	// TransferSelect is a conditional move: Deps[0] is the selected value
	// (mask propagates unchanged) and Deps[1] is the 1-bit condition,
	// live iff any result bit is live.
	TransferSelect
	// TransferByte is a stored memory byte: Deps[0] is the source word
	// version and Aux the byte index within it; the byte's 8-bit mask
	// maps onto bits 8*Aux..8*Aux+7 of the source.
	TransferByte
	// TransferAssemble is a loaded word: Deps[k] is the memory byte
	// version supplying bits 8k..8k+7 of the result. Missing bytes use
	// version 0.
	TransferAssemble
)

const maxDeps = 4

// Version is one dynamic value in the graph.
type Version struct {
	Transfer Transfer
	NDeps    uint8
	Deps     [maxDeps]VersionID
	// Aux carries the transfer's parameter: the other operand's value for
	// TransferAnd/TransferOr, the shift amount for shifts, the byte index
	// for TransferByte.
	Aux uint32
	// Aux2 carries the symmetric parameter for Deps[1] of
	// TransferAnd/TransferOr.
	Aux2 uint32
}

// Graph accumulates versions during a simulation run and solves liveness
// afterwards.
type Graph struct {
	versions []Version
	rootLive []uint32 // liveness injected by control/address/output consumers
	lastRead []interval.Cycle
	everRead []bool
	live     []uint32
	solved   bool
}

// NewGraph returns an empty graph. Version 0 (ground) is pre-allocated.
func NewGraph() *Graph {
	g := &Graph{}
	g.versions = append(g.versions, Version{Transfer: TransferNone})
	g.rootLive = append(g.rootLive, 0)
	g.lastRead = append(g.lastRead, 0)
	g.everRead = append(g.everRead, false)
	return g
}

// Len returns the number of versions, including ground.
func (g *Graph) Len() int { return len(g.versions) }

// New appends a version and returns its id. Dependencies must already
// exist (they always do in an execution-ordered trace).
func (g *Graph) New(t Transfer, aux uint32, deps ...VersionID) VersionID {
	return g.New2(t, aux, 0, deps...)
}

// New2 is New with both transfer parameters (for two-variable-operand
// TransferAnd / TransferOr).
func (g *Graph) New2(t Transfer, aux, aux2 uint32, deps ...VersionID) VersionID {
	if g.solved {
		panic("dataflow: graph already solved")
	}
	if len(deps) > maxDeps {
		panic("dataflow: too many dependencies")
	}
	v := Version{Transfer: t, NDeps: uint8(len(deps)), Aux: aux, Aux2: aux2}
	id := VersionID(len(g.versions))
	for i, d := range deps {
		if d >= id {
			panic(fmt.Sprintf("dataflow: dep %d not older than version %d", d, id))
		}
		v.Deps[i] = d
	}
	g.versions = append(g.versions, v)
	g.rootLive = append(g.rootLive, 0)
	g.lastRead = append(g.lastRead, 0)
	g.everRead = append(g.everRead, false)
	return id
}

// MarkRootLive records that bits in mask of version id are consumed by a
// conservatively-live consumer: a branch condition, a memory address,
// scalar code, or final program output.
func (g *Graph) MarkRootLive(id VersionID, mask uint32) {
	if id == 0 {
		return
	}
	g.rootLive[id] |= mask
}

// NoteRead records an architectural read of version id at the given
// cycle. This drives the microarchitectural (uarch) ACE analysis: a value
// read at cycle c is conservatively required up to c, regardless of
// whether the reading instruction turns out to be dynamically dead.
func (g *Graph) NoteRead(id VersionID, cycle interval.Cycle) {
	if id == 0 {
		return
	}
	g.everRead[id] = true
	if cycle > g.lastRead[id] {
		g.lastRead[id] = cycle
	}
}

// spreadDown returns the mask of bits at or below the highest set bit of
// m: the bits of an addend that can influence live sum bits via carries.
func spreadDown(m uint32) uint32 {
	if m == 0 {
		return 0
	}
	top := 31 - bits.LeadingZeros32(m)
	if top == 31 {
		return ^uint32(0)
	}
	return (uint32(1) << (top + 1)) - 1
}

// Solve computes liveness for every version. It may be called once; the
// graph is frozen afterwards.
func (g *Graph) Solve() {
	if g.solved {
		return
	}
	g.solved = true
	n := len(g.versions)
	g.live = make([]uint32, n)
	copy(g.live, g.rootLive)
	// Dependencies always have smaller ids, so a single descending pass
	// sees each version's full consumer-driven mask before propagating it.
	for id := n - 1; id >= 1; id-- {
		m := g.live[id]
		if m == 0 {
			continue
		}
		v := &g.versions[id]
		switch v.Transfer {
		case TransferNone:
		case TransferAll:
			for i := 0; i < int(v.NDeps); i++ {
				g.live[v.Deps[i]] |= ^uint32(0)
			}
		case TransferMove:
			for i := 0; i < int(v.NDeps); i++ {
				g.live[v.Deps[i]] |= m
			}
		case TransferArith:
			s := spreadDown(m)
			for i := 0; i < int(v.NDeps); i++ {
				g.live[v.Deps[i]] |= s
			}
		case TransferAnd:
			g.live[v.Deps[0]] |= m & v.Aux
			if v.NDeps > 1 {
				g.live[v.Deps[1]] |= m & v.Aux2
			}
		case TransferOr:
			g.live[v.Deps[0]] |= m &^ v.Aux
			if v.NDeps > 1 {
				g.live[v.Deps[1]] |= m &^ v.Aux2
			}
		case TransferShl:
			g.live[v.Deps[0]] |= m >> (v.Aux & 31)
			if v.NDeps > 1 && m != 0 {
				g.live[v.Deps[1]] |= 31
			}
		case TransferShr:
			g.live[v.Deps[0]] |= m << (v.Aux & 31)
			if v.NDeps > 1 && m != 0 {
				g.live[v.Deps[1]] |= 31
			}
		case TransferSelect:
			g.live[v.Deps[0]] |= m
			g.live[v.Deps[1]] |= 1
		case TransferByte:
			g.live[v.Deps[0]] |= (m & 0xFF) << (8 * (v.Aux & 3))
		case TransferAssemble:
			for i := 0; i < int(v.NDeps); i++ {
				g.live[v.Deps[i]] |= (m >> (8 * i)) & 0xFF
			}
		default:
			panic(fmt.Sprintf("dataflow: unknown transfer %d", v.Transfer))
		}
	}
	g.live[0] = 0
}

// Live returns the solved live mask of version id: the bits whose
// corruption can reach program output. Solve must have been called.
func (g *Graph) Live(id VersionID) uint32 {
	if !g.solved {
		panic("dataflow: Solve not called")
	}
	return g.live[id]
}

// LiveByte returns the 8-bit live mask of byte index b (0..3) of version
// id's value.
func (g *Graph) LiveByte(id VersionID, b int) uint8 {
	return uint8(g.Live(id) >> (8 * (b & 3)))
}

// Dead reports whether version id is (transitively) dynamically dead: no
// bit of it influences program output.
func (g *Graph) Dead(id VersionID) bool { return g.Live(id) == 0 }

// EverRead reports whether version id was architecturally read.
func (g *Graph) EverRead(id VersionID) bool { return g.everRead[id] }

// ReadAfter reports whether version id was architecturally read strictly
// after the given cycle. It drives dirty-eviction ACEness: a corrupted
// byte written back to memory matters only if that value is consumed
// later.
func (g *Graph) ReadAfter(id VersionID, cycle interval.Cycle) bool {
	return g.everRead[id] && g.lastRead[id] > cycle
}

// Stats summarizes the graph for reporting.
type Stats struct {
	Versions  int
	DeadCount int // versions never influencing output
}

// Stats returns summary statistics; Solve must have been called.
func (g *Graph) Stats() Stats {
	s := Stats{Versions: len(g.versions) - 1}
	for id := 1; id < len(g.versions); id++ {
		if g.live[id] == 0 {
			s.DeadCount++
		}
	}
	return s
}

// Snapshot is the serializable post-solve state of a graph: everything
// AVF analysis consumes (live masks, read times), without the dependence
// edges.
type Snapshot struct {
	Live     []uint32
	LastRead []interval.Cycle
	EverRead []bool
}

// Snapshot captures the solved graph. Solve must have been called.
func (g *Graph) Snapshot() Snapshot {
	if !g.solved {
		panic("dataflow: Snapshot before Solve")
	}
	return Snapshot{
		Live:     append([]uint32(nil), g.live...),
		LastRead: append([]interval.Cycle(nil), g.lastRead...),
		EverRead: append([]bool(nil), g.everRead...),
	}
}

// Restore reconstructs a solved graph from a snapshot. The restored graph
// answers Live/ReadAfter/Dead queries; it cannot record new versions.
func Restore(s Snapshot) (*Graph, error) {
	return restore(Snapshot{
		Live:     append([]uint32(nil), s.Live...),
		LastRead: append([]interval.Cycle(nil), s.LastRead...),
		EverRead: append([]bool(nil), s.EverRead...),
	})
}

// Adopt is Restore without the defensive copy: the caller transfers
// ownership of the snapshot's slices to the graph and must not touch
// them afterwards. The artifact decoder uses it — its slices are
// freshly built per decode, and copying megabytes of liveness state
// would double the cost of reviving a stored run.
func Adopt(s Snapshot) (*Graph, error) { return restore(s) }

func restore(s Snapshot) (*Graph, error) {
	n := len(s.Live)
	if n == 0 || len(s.LastRead) != n || len(s.EverRead) != n {
		return nil, fmt.Errorf("dataflow: inconsistent snapshot (%d/%d/%d entries)",
			len(s.Live), len(s.LastRead), len(s.EverRead))
	}
	g := &Graph{
		live:     s.Live,
		lastRead: s.LastRead,
		everRead: s.EverRead,
		solved:   true,
	}
	g.live[0] = 0
	return g, nil
}
