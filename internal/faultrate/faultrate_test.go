package faultrate

import (
	"math"
	"testing"
)

func TestTableIMatchesPaperHeadlines(t *testing.T) {
	rows := TableI()
	if len(rows) != 7 {
		t.Fatalf("Table I has %d rows, want 7", len(rows))
	}
	if rows[0].NodeNM != 180 || rows[0].TotalPct != 0.5 {
		t.Errorf("180nm row wrong: %+v", rows[0])
	}
	last := rows[len(rows)-1]
	if last.NodeNM != 22 || last.TotalPct != 3.9 {
		t.Errorf("22nm row wrong: %+v", last)
	}
	// Monotone growth of multi-bit share as features shrink.
	for i := 1; i < len(rows); i++ {
		if rows[i].TotalPct < rows[i-1].TotalPct {
			t.Errorf("multi-bit fraction not monotone at %dnm", rows[i].NodeNM)
		}
	}
	// Per-width percentages sum to the total.
	for _, r := range rows {
		var sum float64
		for _, w := range r.WidthPct {
			sum += w
		}
		if math.Abs(sum-r.TotalPct) > 0.01 {
			t.Errorf("%dnm widths sum to %v, total is %v", r.NodeNM, sum, r.TotalPct)
		}
	}
}

func TestTableIIISumsTo100(t *testing.T) {
	rates := TableIII()
	if len(rates) != 8 {
		t.Fatalf("Table III has %d modes, want 8", len(rates))
	}
	if got := TotalFIT(rates); math.Abs(got-100) > 1e-9 {
		t.Errorf("total rate = %v, want 100", got)
	}
	if rates[0].Width != 1 || rates[0].FIT != 96.1 {
		t.Errorf("single-bit rate wrong: %+v", rates[0])
	}
	// Rates fall with width.
	for i := 2; i < len(rates); i++ {
		if rates[i].FIT > rates[i-1].FIT {
			t.Errorf("rate for %dx1 exceeds %dx1", rates[i].Width, rates[i-1].Width)
		}
	}
}

func TestRateFor(t *testing.T) {
	rates := TableIII()
	fit, err := RateFor(rates, 2)
	if err != nil || fit != 2.6 {
		t.Errorf("RateFor(2) = %v, %v", fit, err)
	}
	if _, err := RateFor(rates, 99); err == nil {
		t.Error("unknown width should error")
	}
}

func TestTotalSER(t *testing.T) {
	rates := []ModeRate{{Width: 1, FIT: 90}, {Width: 2, FIT: 10}}
	got, err := TotalSER(rates, []float64{0.5, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-55) > 1e-9 {
		t.Errorf("TotalSER = %v, want 55", got)
	}
	if _, err := TotalSER(rates, []float64{0.5}); err == nil {
		t.Error("length mismatch should error")
	}
}
