// Package faultrate embeds the published spatial multi-bit fault-rate
// data the paper builds on: the Ibe et al. technology-scaling study
// (Table I) and the per-fault-mode rates used in the VGPR case study
// (Table III), plus FIT arithmetic for rolling AVFs up into soft error
// rates (equation 3).
package faultrate

import "fmt"

// TableIRow is one process node's fault-width distribution: the
// percentage of all SRAM faults whose multi-bit width along a wordline is
// 2, 3, and so on. Width index 0 holds the total multi-bit percentage.
type TableIRow struct {
	// NodeNM is the design rule in nanometers.
	NodeNM int
	// TotalPct is the percentage of all faults that are multi-bit.
	TotalPct float64
	// WidthPct[w] is the percentage of all faults spanning exactly w+2
	// bits (index 0 = 2-bit, 1 = 3-bit, ...); the last entry is ">8 bits".
	WidthPct []float64
}

// TableI reproduces Ibe et al.'s measured ratio of multi-bit to total
// faults by technology node (paper Table I). Multi-bit faults grow from
// 0.5% of SRAM faults at 180nm to 3.9% at 22nm, with both rate and width
// increasing as feature size shrinks.
func TableI() []TableIRow {
	return []TableIRow{
		{NodeNM: 180, TotalPct: 0.5, WidthPct: []float64{0.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0}},
		{NodeNM: 130, TotalPct: 1.0, WidthPct: []float64{0.9, 0.1, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0}},
		{NodeNM: 90, TotalPct: 1.4, WidthPct: []float64{1.2, 0.1, 0.1, 0.0, 0.0, 0.0, 0.0, 0.0}},
		{NodeNM: 65, TotalPct: 1.9, WidthPct: []float64{1.6, 0.2, 0.1, 0.0, 0.0, 0.0, 0.0, 0.0}},
		{NodeNM: 45, TotalPct: 2.8, WidthPct: []float64{2.2, 0.3, 0.2, 0.1, 0.0, 0.0, 0.0, 0.0}},
		{NodeNM: 32, TotalPct: 3.3, WidthPct: []float64{2.4, 0.4, 0.3, 0.1, 0.1, 0.0, 0.0, 0.0}},
		{NodeNM: 22, TotalPct: 3.9, WidthPct: []float64{2.6, 0.5, 0.3, 0.2, 0.1, 0.1, 0.05, 0.05}},
	}
}

// ModeRate is the raw fault rate of one spatial fault mode.
type ModeRate struct {
	// Width is the fault width in bits (1 = single-bit).
	Width int
	// FIT is the raw fault rate in failures per billion device-hours,
	// normalized so that all modes sum to 100 as in Table III.
	FIT float64
}

// TableIII returns the per-mode fault rates used in the paper's case
// study (Table III): a total rate of 100 split across 1x1 through 8x1
// using the 22nm distribution from Ibe et al.
func TableIII() []ModeRate {
	return []ModeRate{
		{Width: 1, FIT: 96.1},
		{Width: 2, FIT: 2.6},
		{Width: 3, FIT: 0.5},
		{Width: 4, FIT: 0.3},
		{Width: 5, FIT: 0.2},
		{Width: 6, FIT: 0.1},
		{Width: 7, FIT: 0.1},
		{Width: 8, FIT: 0.1},
	}
}

// TotalFIT sums the rates of a mode set.
func TotalFIT(rates []ModeRate) float64 {
	var t float64
	for _, r := range rates {
		t += r.FIT
	}
	return t
}

// RateFor returns the FIT of the given fault width.
func RateFor(rates []ModeRate, width int) (float64, error) {
	for _, r := range rates {
		if r.Width == width {
			return r.FIT, nil
		}
	}
	return 0, fmt.Errorf("faultrate: no rate for %d-bit faults", width)
}

// SER computes a structure's soft error rate contribution from one fault
// mode (equation 3's inner term): the mode's raw FIT times its measured
// AVF.
func SER(fit, avf float64) float64 { return fit * avf }

// TotalSER sums per-mode SER contributions: avfs[w] is the AVF measured
// for the mode with matching index in rates.
func TotalSER(rates []ModeRate, avfs []float64) (float64, error) {
	if len(rates) != len(avfs) {
		return 0, fmt.Errorf("faultrate: %d rates but %d AVFs", len(rates), len(avfs))
	}
	var total float64
	for i, r := range rates {
		total += SER(r.FIT, avfs[i])
	}
	return total, nil
}
