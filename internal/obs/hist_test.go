package obs_test

import (
	"math/bits"
	"math/rand"
	"sort"
	"testing"

	"mbavf/internal/obs"
)

func TestHistogramRegistryIdempotent(t *testing.T) {
	defer reset()
	a := obs.NewHistogram("test.hist.registry")
	b := obs.NewHistogram("test.hist.registry")
	if a != b {
		t.Fatal("NewHistogram with one name must return one histogram")
	}
	if a.Name() != "test.hist.registry" {
		t.Fatalf("Name() = %q", a.Name())
	}
}

func TestBucketUpperBound(t *testing.T) {
	cases := map[int]uint64{
		-1: 0, 0: 0, 1: 1, 2: 3, 3: 7, 10: 1023,
		63: 1<<63 - 1, 64: ^uint64(0), 70: ^uint64(0),
	}
	for i, want := range cases {
		if got := obs.BucketUpperBound(i); got != want {
			t.Fatalf("BucketUpperBound(%d) = %d, want %d", i, got, want)
		}
	}
	// Every value lands in the bucket whose bound first covers it.
	rng := rand.New(rand.NewSource(3))
	for n := 0; n < 1000; n++ {
		v := rng.Uint64()
		b := bits.Len64(v)
		if obs.BucketUpperBound(b) < v {
			t.Fatalf("value %d exceeds its bucket bound %d", v, obs.BucketUpperBound(b))
		}
		if b > 0 && obs.BucketUpperBound(b-1) >= v {
			t.Fatalf("value %d fits the previous bucket bound %d", v, obs.BucketUpperBound(b-1))
		}
	}
}

func TestHistogramBucketSemantics(t *testing.T) {
	reset()
	defer reset()
	obs.Enable()
	h := obs.NewHistogram("test.hist.sem")
	for _, v := range []uint64{0, 1, 2, 3, 100} {
		h.Record(v)
	}
	s := h.Snapshot()
	if s.Count != 5 || s.Sum != 106 {
		t.Fatalf("count/sum = %d/%d, want 5/106", s.Count, s.Sum)
	}
	want := map[int]uint64{0: 1, 1: 1, 2: 2, 7: 1}
	for i, n := range s.Buckets {
		if n != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, n, want[i])
		}
	}
	if s.MaxBound() != 127 {
		t.Fatalf("MaxBound = %d, want 127", s.MaxBound())
	}
	if s.Mean() != 106.0/5 {
		t.Fatalf("Mean = %v, want %v", s.Mean(), 106.0/5)
	}
}

// randomValues draws n values spread across magnitudes (uniform draws
// alone almost never exercise small buckets). Values stay below 2^62 so
// the 2v quantile-slack bound cannot overflow.
func randomValues(rng *rand.Rand, n int) []uint64 {
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = rng.Uint64() >> (2 + rng.Intn(62))
	}
	return vals
}

// TestHistogramQuantileProperty checks the power-of-two bucket estimate
// guarantee against exact order statistics: for a true quantile value v,
// the estimate e satisfies v <= e, and e < 2v when v > 0.
func TestHistogramQuantileProperty(t *testing.T) {
	reset()
	defer reset()
	obs.Enable()
	rng := rand.New(rand.NewSource(7))
	h := obs.NewHistogram("test.hist.quantile")
	vals := randomValues(rng, 2000)
	for _, v := range vals {
		h.Record(v)
	}
	s := h.Snapshot()
	sorted := append([]uint64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, q := range []float64{0.01, 0.25, 0.50, 0.90, 0.99, 1.0} {
		rank := int(q * float64(len(sorted)))
		if float64(rank) < q*float64(len(sorted)) || rank == 0 {
			rank++
		}
		v := sorted[rank-1]
		e := s.Quantile(q)
		if e < v {
			t.Fatalf("q=%v: estimate %d below true quantile %d", q, e, v)
		}
		if v > 0 && e >= 2*v {
			t.Fatalf("q=%v: estimate %d not within 2x of true quantile %d", q, e, v)
		}
	}
	if s.Quantile(1.0) != s.MaxBound() {
		t.Fatalf("Quantile(1.0) = %d, want MaxBound %d", s.Quantile(1.0), s.MaxBound())
	}
	if s.Quantile(0.5) > s.Quantile(0.9) || s.Quantile(0.9) > s.Quantile(0.99) {
		t.Fatal("quantile estimates must be monotone in q")
	}
}

// TestHistogramMergeProperty checks that merging partial snapshots is
// exactly equivalent to recording everything into one histogram — the
// contract that lets shards accumulate locally and combine later.
func TestHistogramMergeProperty(t *testing.T) {
	reset()
	defer reset()
	obs.Enable()
	rng := rand.New(rand.NewSource(11))
	vals := randomValues(rng, 1000)
	whole := obs.NewHistogram("test.hist.whole")
	left := obs.NewHistogram("test.hist.left")
	right := obs.NewHistogram("test.hist.right")
	for i, v := range vals {
		whole.Record(v)
		if i%2 == 0 {
			left.Record(v)
		} else {
			right.Record(v)
		}
	}
	merged := left.Snapshot()
	merged.Merge(right.Snapshot())
	w := whole.Snapshot()
	if merged.Count != w.Count || merged.Sum != w.Sum || merged.Buckets != w.Buckets {
		t.Fatalf("merged snapshot diverges from whole:\nmerged: %+v\nwhole:  %+v", merged, w)
	}
}

// TestLocalHistFlushEquivalence checks the goroutine-local accumulator
// publishes exactly what direct Records would have.
func TestLocalHistFlushEquivalence(t *testing.T) {
	reset()
	defer reset()
	obs.Enable()
	rng := rand.New(rand.NewSource(13))
	vals := randomValues(rng, 500)
	direct := obs.NewHistogram("test.hist.direct")
	flushed := obs.NewHistogram("test.hist.flushed")
	var local obs.LocalHist
	for _, v := range vals {
		direct.Record(v)
		local.Observe(v)
	}
	local.FlushTo(flushed)
	d, f := direct.Snapshot(), flushed.Snapshot()
	if d.Count != f.Count || d.Sum != f.Sum || d.Buckets != f.Buckets {
		t.Fatalf("flushed snapshot diverges from direct records")
	}
	// FlushTo zeroes the local state: a second flush adds nothing.
	local.FlushTo(flushed)
	if f2 := flushed.Snapshot(); f2.Count != f.Count {
		t.Fatalf("second flush added %d observations, want 0", f2.Count-f.Count)
	}
}
