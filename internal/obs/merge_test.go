package obs_test

import (
	"encoding/json"
	"testing"
	"time"

	"mbavf/internal/obs"
)

type mergedDoc struct {
	TraceEvents []struct {
		Name string          `json:"name"`
		Cat  string          `json:"cat"`
		Ph   string          `json:"ph"`
		Ts   float64         `json:"ts"`
		Pid  int             `json:"pid"`
		ID   string          `json:"id"`
		Args json.RawMessage `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// synthTrace hand-authors a worker trace document the way WriteTrace
// would serialize it: relative timestamps plus an otherData anchor.
func synthTrace(pid int, process string, anchorMicro int64, events string) []byte {
	return []byte(`{
 "traceEvents": [
  {"name":"process_name","cat":"","ph":"M","ts":0,"pid":` + itoa(pid) + `,"tid":0,"args":{"name":"` + process + `"}},
  ` + events + `
 ],
 "displayTimeUnit": "ms",
 "otherData": {"pid":` + itoa(pid) + `,"process":"` + process + `","startUnixMicro":` + itoa64(anchorMicro) + `}
}`)
}

func itoa(v int) string { return itoa64(int64(v)) }
func itoa64(v int64) string {
	b, _ := json.Marshal(v)
	return string(b)
}

// TestMergeTracesRebasesAndResolvesPids merges a coordinator trace with
// two worker traces that collide on pid, and checks the fleet-trace
// contract: every file's events land in the output rebased onto the
// earliest wall-clock anchor, colliding pids are reassigned, each final
// pid gets exactly one process_name row title, and async events keep
// their cross-process correlation ids.
func TestMergeTracesRebasesAndResolvesPids(t *testing.T) {
	coord := synthTrace(4242, "coordinator", 1_000_000,
		`{"name":"campaign:vecadd","cat":"campaign","ph":"b","ts":10,"pid":4242,"tid":1,"id":"trace1"},
  {"name":"campaign:vecadd","cat":"campaign","ph":"e","ts":5000,"pid":4242,"tid":1,"id":"trace1"}`)
	worker := synthTrace(4242, "worker :18091", 1_000_500,
		`{"name":"lease:l1","cat":"lease","ph":"X","ts":100,"dur":50,"pid":4242,"tid":1},
  {"name":"lease l1","cat":"campaign","ph":"n","ts":120,"pid":4242,"tid":1,"id":"trace1"}`)

	merged, stats, err := obs.MergeTraces(coord, worker)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Files != 2 || len(stats.Pids) != 2 {
		t.Fatalf("stats = %+v, want 2 files on 2 distinct pids", stats)
	}

	var doc mergedDoc
	if err := json.Unmarshal(merged, &doc); err != nil {
		t.Fatalf("merged trace does not parse: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	byName := map[string]int{} // event name → final pid
	byNameTs := map[string]float64{}
	processRows := map[int]string{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			var args struct {
				Name string `json:"name"`
			}
			_ = json.Unmarshal(e.Args, &args)
			if _, dup := processRows[e.Pid]; dup {
				t.Fatalf("pid %d has two process_name events", e.Pid)
			}
			processRows[e.Pid] = args.Name
			continue
		}
		byName[e.Name] = e.Pid
		if _, seen := byNameTs[e.Name]; !seen {
			byNameTs[e.Name] = e.Ts // first occurrence: the "b" of a b/e pair
		}
		if e.Cat == "campaign" && e.ID != "trace1" {
			t.Fatalf("async event %q lost its correlation id: %q", e.Name, e.ID)
		}
	}

	// Pid collision resolved: coordinator keeps 4242, the worker moves.
	if byName["campaign:vecadd"] != 4242 {
		t.Fatalf("coordinator pid = %d, want the recorded 4242", byName["campaign:vecadd"])
	}
	if wpid := byName["lease:l1"]; wpid == 4242 {
		t.Fatal("worker kept the colliding pid 4242")
	}
	if processRows[4242] != "coordinator" || processRows[byName["lease:l1"]] != "worker :18091" {
		t.Fatalf("process rows = %v", processRows)
	}

	// The worker anchor is 500µs later, so its lease span recorded at
	// relative ts=100 lands at absolute 600 — after the campaign begin
	// (ts=10) and before its end (ts=5000) on the shared timeline.
	if got := byNameTs["lease:l1"]; got != 600 {
		t.Fatalf("worker span rebased to ts=%v, want 600", got)
	}
	if byNameTs["campaign:vecadd"] != 10 {
		t.Fatalf("coordinator begin moved to ts=%v, want 10", byNameTs["campaign:vecadd"])
	}
}

// TestMergeTracesRealRecording merges a trace produced by the real
// recording path with a synthesized worker file, so the format WriteTrace
// emits and the format MergeTraces consumes cannot drift apart.
func TestMergeTracesRealRecording(t *testing.T) {
	reset()
	defer reset()
	obs.SetProcessName("merge-unit coordinator")
	obs.StartTrace()
	obs.TraceAsyncBegin("campaign", "campaign:unit", "unit-trace")
	sp := obs.StartSpan("dispatch:unit")
	time.Sleep(time.Millisecond)
	sp.End()
	obs.TraceAsyncEnd("campaign", "campaign:unit", "unit-trace")
	obs.StopTrace()
	own, err := obs.TraceJSON()
	if err != nil {
		t.Fatal(err)
	}

	worker := synthTrace(1, "worker", time.Now().UnixMicro(),
		`{"name":"lease:l9","cat":"lease","ph":"X","ts":5,"dur":2,"pid":1,"tid":1}`)
	merged, stats, err := obs.MergeTraces(own, worker)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Files != 2 || stats.Events == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	var doc mergedDoc
	if err := json.Unmarshal(merged, &doc); err != nil {
		t.Fatalf("merged trace does not parse: %v", err)
	}
	names := map[string]bool{}
	for _, e := range doc.TraceEvents {
		names[e.Name] = true
	}
	for _, want := range []string{"campaign:unit", "dispatch:unit", "lease:l9", "process_name"} {
		if !names[want] {
			t.Fatalf("merged trace missing %q; has %v", want, names)
		}
	}
}

func TestMergeTracesRejectsGarbage(t *testing.T) {
	if _, _, err := obs.MergeTraces([]byte("not json")); err == nil {
		t.Fatal("want an error for an unparseable trace")
	}
	if _, _, err := obs.MergeTraces(); err == nil {
		t.Fatal("want an error for zero inputs")
	}
}
