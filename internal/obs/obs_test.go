package obs_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"mbavf/internal/bitgeom"
	"mbavf/internal/core"
	"mbavf/internal/ecc"
	"mbavf/internal/inject"
	"mbavf/internal/interleave"
	"mbavf/internal/obs"
	"mbavf/internal/sim"
	"mbavf/internal/workloads"
)

// reset returns the layer to its default (disabled, zeroed, not tracing)
// state; every test starts and ends here so ordering cannot leak state.
func reset() {
	obs.Disable()
	obs.StopTrace()
	obs.Reset()
}

func TestCounterRegistryIdempotent(t *testing.T) {
	defer reset()
	a := obs.NewCounter("test.registry.series")
	b := obs.NewCounter("test.registry.series")
	if a != b {
		t.Fatal("NewCounter with one name must return one counter")
	}
	if a.Name() != "test.registry.series" {
		t.Fatalf("Name() = %q", a.Name())
	}
}

func TestCounterGatedByEnable(t *testing.T) {
	defer reset()
	c := obs.NewCounter("test.gated")
	c.Add(5)
	if got := c.Value(); got != 0 {
		t.Fatalf("disabled Add must be a no-op, got %d", got)
	}
	obs.Enable()
	c.Add(5)
	c.Add(2)
	if got := c.Value(); got != 7 {
		t.Fatalf("enabled Add: got %d, want 7", got)
	}
	obs.Reset()
	if got := c.Value(); got != 0 {
		t.Fatalf("Reset: got %d, want 0", got)
	}
}

func TestGauge(t *testing.T) {
	defer reset()
	g := obs.NewGauge("test.gauge")
	g.Set(9)
	if g.Value() != 0 {
		t.Fatal("disabled Set must be a no-op")
	}
	obs.Enable()
	g.Set(9)
	g.Set(4)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Value())
	}
}

func TestSpanPhases(t *testing.T) {
	defer reset()
	obs.Enable()
	for i := 0; i < 3; i++ {
		sp := obs.StartSpan("test-phase")
		time.Sleep(time.Millisecond)
		sp.End()
	}
	_, _, spans := obs.Snapshot()
	var found bool
	for _, s := range spans {
		if s.Name == "test-phase" {
			found = true
			if s.Calls != 3 {
				t.Fatalf("calls = %d, want 3", s.Calls)
			}
			if s.Total <= 0 {
				t.Fatalf("total = %v, want > 0", s.Total)
			}
		}
	}
	if !found {
		t.Fatal("phase not recorded")
	}
}

func TestSummaryTables(t *testing.T) {
	defer reset()
	obs.Enable()
	obs.NewCounter("test.summary").Add(3)
	sp := obs.StartSpan("test-summary-phase")
	sp.End()
	tables := obs.SummaryTables("unit")
	if len(tables) != 2 {
		t.Fatalf("got %d tables, want phase timings + counters", len(tables))
	}
	// Gauge and histogram sections appear once those series exist.
	obs.NewFloatGauge("test.summary.gauge").Set(0.25)
	obs.NewHistogram("test.summary.hist").Record(16)
	tables = obs.SummaryTables("unit")
	if len(tables) != 4 {
		t.Fatalf("got %d tables, want phases + counters + gauges + histograms", len(tables))
	}
}

func TestFloatGauge(t *testing.T) {
	defer reset()
	g := obs.NewFloatGauge("test.fgauge")
	g.Set(0.5)
	if g.Value() != 0 {
		t.Fatal("disabled Set must be a no-op")
	}
	obs.Enable()
	g.Set(0.5)
	g.Set(0.125)
	if g.Value() != 0.125 {
		t.Fatalf("gauge = %v, want 0.125", g.Value())
	}
	obs.NewGauge("test.igauge").Set(3)
	gauges := obs.Gauges()
	if gauges["test.fgauge"] != 0.125 || gauges["test.igauge"] != 3 {
		t.Fatalf("Gauges() = %v, want both series", gauges)
	}
	obs.Reset()
	if g.Value() != 0 {
		t.Fatalf("Reset: got %v, want 0", g.Value())
	}
}

func TestTraceJSONIsChromeLoadable(t *testing.T) {
	defer reset()
	obs.StartTrace()
	sp := obs.StartSpan2("simulate:", "unitwl")
	time.Sleep(time.Millisecond)
	sp.End()
	sp = obs.StartSpan("analyze:unitwl")
	sp.End()
	obs.StopTrace()

	if n := obs.TraceEventCount(); n != 2 {
		t.Fatalf("recorded %d events, want 2", n)
	}
	raw, err := obs.TraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
		Meta            struct {
			Pid            int    `json:"pid"`
			Process        string `json:"process"`
			StartUnixMicro int64  `json:"startUnixMicro"`
		} `json:"otherData"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if doc.Meta.Pid != os.Getpid() || doc.Meta.StartUnixMicro <= 0 || doc.Meta.Process == "" {
		t.Fatalf("merge anchor = %+v, want this pid, a process name, and a positive wall-clock anchor", doc.Meta)
	}
	cats := map[string]string{}
	var sawProcessName bool
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			if e.Name == "process_name" {
				sawProcessName = true
			}
			continue
		}
		if e.Ph != "X" {
			t.Fatalf("event %q has phase %q, want complete event X", e.Name, e.Ph)
		}
		if e.Ts < 0 || e.Dur < 0 {
			t.Fatalf("event %q has negative ts/dur", e.Name)
		}
		cats[e.Name] = e.Cat
	}
	if !sawProcessName {
		t.Fatal("trace is missing the process_name metadata event")
	}
	if cats["simulate:unitwl"] != "simulate" || cats["analyze:unitwl"] != "analyze" {
		t.Fatalf("categories = %v, want prefix before ':'", cats)
	}
}

// TestTraceTidsPerGoroutine checks that spans ending on different
// goroutines land on different trace rows: tids are small stable ids
// assigned per goroutine in order of first appearance, so parallel
// campaign workers render as parallel tracks in Perfetto.
func TestTraceTidsPerGoroutine(t *testing.T) {
	defer reset()
	obs.StartTrace()
	const workers = 4
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := obs.StartSpan("worker:span")
			time.Sleep(time.Millisecond)
			sp.End()
		}()
	}
	wg.Wait()
	obs.StartSpan("main:span").End()
	obs.StopTrace()

	raw, err := obs.TraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	tids := map[int]bool{}
	spans := 0
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		spans++
		// Events carry the real OS pid so traces from different fleet
		// processes never collide after a merge.
		if e.Pid != os.Getpid() {
			t.Fatalf("event %q has pid %d, want this process's %d", e.Name, e.Pid, os.Getpid())
		}
		if e.Tid < 1 || e.Tid > workers+1 {
			t.Fatalf("event %q has tid %d outside the dense range [1,%d]", e.Name, e.Tid, workers+1)
		}
		tids[e.Tid] = true
	}
	if spans != workers+1 {
		t.Fatalf("recorded %d span events, want %d", spans, workers+1)
	}
	if len(tids) != workers+1 {
		t.Fatalf("%d distinct tids across %d goroutines, want %d", len(tids), workers+1, workers+1)
	}
}

func TestTraceRestartClearsEvents(t *testing.T) {
	defer reset()
	obs.StartTrace()
	obs.StartSpan("old").End()
	obs.StartTrace()
	obs.StartSpan("new").End()
	obs.StopTrace()
	if n := obs.TraceEventCount(); n != 1 {
		t.Fatalf("restart kept %d events, want 1", n)
	}
}

// TestZeroAllocWhenDisabled is the contract behind the <=2% overhead
// acceptance bar: with the layer off, counters, gauges, histograms,
// spans, and campaign progress must neither allocate nor take locks.
func TestZeroAllocWhenDisabled(t *testing.T) {
	defer reset()
	c := obs.NewCounter("test.zeroalloc")
	h := obs.NewHistogram("test.zeroalloc.hist")
	g := obs.NewFloatGauge("test.zeroalloc.fgauge")
	var local obs.LocalHist
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		h.Record(1)
		g.Set(0.5)
		local.Observe(7)
		local.FlushTo(h)
		sp := obs.StartSpan2("hot:", "loop")
		sp.End()
		obs.CampaignShotDone()
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %.1f per op, want 0", allocs)
	}
	if c.Value() != 0 {
		t.Fatal("disabled Add must not count")
	}
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("disabled Record/FlushTo must not count, got %d", s.Count)
	}
	if g.Value() != 0 {
		t.Fatal("disabled Set must not store")
	}
}

func TestCampaignProgress(t *testing.T) {
	defer reset()
	obs.Enable()
	obs.CampaignStart("unitwl", 10, 2)
	for i := 0; i < 3; i++ {
		obs.CampaignShotDone()
	}
	p := obs.Progress()
	if p.Workload != "unitwl" || p.Total != 10 || p.Completed != 5 {
		t.Fatalf("progress = %+v, want unitwl 5/10", p)
	}
	if p.ShotsPerS <= 0 {
		t.Fatalf("shots/sec = %v, want > 0 after fresh shots", p.ShotsPerS)
	}
	if p.ETASec <= 0 {
		t.Fatalf("eta = %v, want > 0 with shots remaining", p.ETASec)
	}
}

func TestDebugServer(t *testing.T) {
	defer reset()
	addr, err := obs.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if !obs.Enabled() {
		t.Fatal("ServeDebug must enable the layer")
	}
	obs.NewCounter("test.debugsrv").Add(11)
	obs.CampaignStart("unitwl", 4, 0)
	obs.CampaignShotDone()

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	var vars struct {
		Counters map[string]uint64    `json:"mbavf_counters"`
		Campaign obs.CampaignProgress `json:"mbavf_campaign"`
	}
	if err := json.Unmarshal(get("/debug/vars"), &vars); err != nil {
		t.Fatalf("expvar output does not parse: %v", err)
	}
	if vars.Counters["test.debugsrv"] != 11 {
		t.Fatalf("mbavf_counters = %v, want test.debugsrv=11", vars.Counters)
	}
	if vars.Campaign.Workload != "unitwl" || vars.Campaign.Completed != 1 || vars.Campaign.Total != 4 {
		t.Fatalf("mbavf_campaign = %+v, want unitwl 1/4", vars.Campaign)
	}
	if vars.Campaign.ShotsPerS <= 0 {
		t.Fatalf("mbavf_campaign shots/sec = %v, want live rate > 0", vars.Campaign.ShotsPerS)
	}
	if body := get("/debug/pprof/"); len(body) == 0 {
		t.Fatal("pprof index is empty")
	}
}

// TestCounterConsistencySerialVsParallel runs a fault-injection campaign
// and a sharded MB-AVF analysis concurrently — the two metric producers
// racing on the shared registry — and asserts every counter total and
// histogram count matches a fully serial run (and, for the wall-clock-free
// core.* series, the full bucket distribution). Under -race this doubles
// as the data-race check for the whole publish path.
func TestCounterConsistencySerialVsParallel(t *testing.T) {
	w, err := workloads.ByName("vecadd")
	if err != nil {
		t.Fatal(err)
	}
	// Build the campaign (golden run) and the instrumented session with
	// the layer off so setup work does not pollute the compared totals.
	reset()
	camp, err := inject.NewCampaign(w, sim.InjectionConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.Execute(w, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sets, ways := s.Hier.L1Slots()
	layout, err := interleave.Logical(sets*ways, s.Hier.LineBytes()*8, 2)
	if err != nil {
		t.Fatal(err)
	}

	const shots = 24
	run := func(workers, parallelism int) (map[string]uint64, map[string]obs.HistSnapshot) {
		obs.Enable()
		obs.Reset()
		defer reset()
		var wg sync.WaitGroup
		var campErr, anErr error
		wg.Add(2)
		go func() {
			defer wg.Done()
			_, campErr = camp.Run(context.Background(), inject.RunConfig{
				N: shots, Seed: 7, Workers: workers,
			})
		}()
		go func() {
			defer wg.Done()
			an := &core.Analyzer{
				Name:        "vecadd",
				Layout:      layout,
				Tracker:     s.L1Tracker,
				Graph:       s.Graph,
				TotalCycles: s.Cycles(),
				Parallelism: parallelism,
			}
			_, anErr = an.Analyze(ecc.Parity{}, bitgeom.Mx1(2))
		}()
		wg.Wait()
		if campErr != nil {
			t.Fatalf("campaign (workers=%d): %v", workers, campErr)
		}
		if anErr != nil {
			t.Fatalf("analysis (parallelism=%d): %v", parallelism, anErr)
		}
		hists := map[string]obs.HistSnapshot{}
		for _, h := range obs.Histograms() {
			hists[h.Name] = h
		}
		return obs.Counters(), hists
	}

	serial, serialH := run(1, 1)
	parallel, parallelH := run(4, 4)

	if serial["inject.shots"] != shots {
		t.Fatalf("serial inject.shots = %d, want %d", serial["inject.shots"], shots)
	}
	if serial["core.analyses"] != 1 {
		t.Fatalf("serial core.analyses = %d, want 1", serial["core.analyses"])
	}
	if serial["core.interval_merges"] == 0 {
		t.Fatal("serial core.interval_merges = 0, want > 0")
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("counter totals diverge between serial and parallel runs:\nserial:   %s\nparallel: %s",
			fmtCounters(serial), fmtCounters(parallel))
	}

	// Histograms: every series must record the same number of observations
	// in both runs (shot-latency counts are deterministic even though the
	// latencies themselves are wall clock). The core.* distributions are
	// pure functions of the workload, so they must match bucket-for-bucket.
	if serialH["inject.shot_ns"].Count != shots {
		t.Fatalf("serial inject.shot_ns count = %d, want %d", serialH["inject.shot_ns"].Count, shots)
	}
	if serialH["core.group_bits"].Count == 0 {
		t.Fatal("serial core.group_bits is empty, want one observation per fault group")
	}
	for name, sh := range serialH {
		ph, ok := parallelH[name]
		if !ok {
			t.Fatalf("histogram %s recorded serially but not in parallel", name)
		}
		if sh.Count != ph.Count {
			t.Fatalf("histogram %s count diverges: serial %d, parallel %d", name, sh.Count, ph.Count)
		}
		if strings.HasPrefix(name, "core.") && (sh.Buckets != ph.Buckets || sh.Sum != ph.Sum) {
			t.Fatalf("histogram %s distribution diverges between serial and parallel runs:\nserial:   %v\nparallel: %v",
				name, sh.Buckets, ph.Buckets)
		}
	}
	for name := range parallelH {
		if _, ok := serialH[name]; !ok {
			t.Fatalf("histogram %s recorded in parallel but not serially", name)
		}
	}
}

func fmtCounters(m map[string]uint64) string {
	b, _ := json.Marshal(m)
	return string(b)
}
