package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// campaign is the live progress of the most recent injection campaign:
// the data behind the "mbavf_campaign" expvar and the shots/sec / ETA
// numbers an operator watches on a long run.
var campaign struct {
	total     atomic.Int64 // shots requested
	preseeded atomic.Int64 // shots restored from a checkpoint
	completed atomic.Int64 // shots finished (including preseeded)
	startNS   atomic.Int64 // UnixNano at campaign start (0 = none yet)
	name      atomic.Value // workload name (string)
}

// CampaignStart announces a campaign of total shots on the named
// workload, preseeded of which were restored from a checkpoint (they do
// not count toward the live rate).
func CampaignStart(workload string, total, preseeded int) {
	if !enabled.Load() {
		return
	}
	campaign.name.Store(workload)
	campaign.total.Store(int64(total))
	campaign.preseeded.Store(int64(preseeded))
	campaign.completed.Store(int64(preseeded))
	campaign.startNS.Store(time.Now().UnixNano())
}

// resetCampaign clears the live progress (part of Reset's lifecycle).
func resetCampaign() {
	campaign.total.Store(0)
	campaign.preseeded.Store(0)
	campaign.completed.Store(0)
	campaign.startNS.Store(0)
	campaign.name.Store("")
}

// CampaignShotDone records one completed shot.
func CampaignShotDone() {
	if !enabled.Load() {
		return
	}
	campaign.completed.Add(1)
}

// CampaignProgress is a point-in-time view of the running campaign.
type CampaignProgress struct {
	Workload  string  `json:"workload"`
	Total     int64   `json:"total"`
	Completed int64   `json:"completed"`
	ShotsPerS float64 `json:"shots_per_sec"`
	ETASec    float64 `json:"eta_sec"`
}

// Progress returns the current campaign progress. The rate counts only
// shots executed this session (checkpoint-restored shots are excluded),
// so the ETA stays honest across resumes.
func Progress() CampaignProgress {
	p := CampaignProgress{
		Total:     campaign.total.Load(),
		Completed: campaign.completed.Load(),
	}
	if n, ok := campaign.name.Load().(string); ok {
		p.Workload = n
	}
	startNS := campaign.startNS.Load()
	if startNS == 0 {
		return p
	}
	elapsed := time.Since(time.Unix(0, startNS)).Seconds()
	fresh := p.Completed - campaign.preseeded.Load()
	if elapsed > 0 && fresh > 0 {
		p.ShotsPerS = float64(fresh) / elapsed
		if remaining := p.Total - p.Completed; remaining > 0 {
			p.ETASec = float64(remaining) / p.ShotsPerS
		}
	}
	return p
}

// publishOnce guards the process-global expvar names (expvar panics on
// duplicate Publish).
var publishOnce sync.Once

func publishExpvars() {
	publishOnce.Do(func() {
		expvar.Publish("mbavf_counters", expvar.Func(func() any { return Counters() }))
		expvar.Publish("mbavf_gauges", expvar.Func(func() any { return Gauges() }))
		expvar.Publish("mbavf_campaign", expvar.Func(func() any { return Progress() }))
		expvar.Publish("mbavf_phases", expvar.Func(func() any {
			_, _, spans := Snapshot()
			out := make(map[string]float64, len(spans))
			for _, s := range spans {
				out[s.Name] = float64(s.Total) / float64(time.Millisecond)
			}
			return out
		}))
	})
}

// ServeDebug starts an HTTP debug server on addr (":0" picks a free
// port) exposing expvar at /debug/vars — including live mbavf_counters,
// mbavf_gauges, mbavf_phases, and mbavf_campaign (completed/total,
// shots/sec, ETA) — Prometheus text exposition at /metrics, and the full
// pprof suite at /debug/pprof/. It enables the layer, serves in a
// background goroutine, and returns the bound address.
func ServeDebug(addr string) (string, error) {
	Enable()
	publishExpvars()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: debug listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle(PromHandlerPath, PromHandler())
	// The fabric observability endpoints, mounted here too so a plain
	// debug listener is scrapeable as a fleet member. The literals match
	// fabric.PathObs / fabric.PathEvents (fabric imports obs, not the
	// reverse).
	mux.Handle("/fabric/v1/obs", SnapshotHandler())
	mux.Handle("/fabric/v1/events", EventsHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	// Explicit read deadlines so a slow-loris client cannot pin the
	// listener. WriteTimeout stays unset: pprof profile captures stream
	// for their requested duration.
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
	}
	go func() {
		// The server lives for the process; errors after shutdown are
		// expected and uninteresting.
		_ = srv.Serve(ln)
	}()
	return ln.Addr().String(), nil
}
