package obs_test

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"mbavf/internal/obs"
)

// TestPrometheusGolden pins the exposition format byte-for-byte for one
// of each metric kind. Snapshot skips zero-valued series, so after Reset
// the registry contributes exactly the series this test creates.
func TestPrometheusGolden(t *testing.T) {
	reset()
	defer reset()
	obs.Enable()
	obs.NewCounter("test.prom.counter").Add(7)
	obs.NewFloatGauge("test.prom.fgauge").Set(0.25)
	obs.NewGauge("test.prom.igauge").Set(3)
	h := obs.NewHistogram("test.prom.hist")
	for _, v := range []uint64{1, 2, 3, 100} {
		h.Record(v)
	}

	var b strings.Builder
	obs.WritePrometheus(&b)
	want := `# TYPE mbavf_test_prom_counter counter
mbavf_test_prom_counter 7
# TYPE mbavf_test_prom_fgauge gauge
mbavf_test_prom_fgauge 0.25
# TYPE mbavf_test_prom_igauge gauge
mbavf_test_prom_igauge 3
# TYPE mbavf_test_prom_hist histogram
mbavf_test_prom_hist_bucket{le="1"} 1
mbavf_test_prom_hist_bucket{le="3"} 3
mbavf_test_prom_hist_bucket{le="127"} 4
mbavf_test_prom_hist_bucket{le="+Inf"} 4
mbavf_test_prom_hist_sum 106
mbavf_test_prom_hist_count 4
`
	if got := b.String(); got != want {
		t.Fatalf("exposition diverges from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestPrometheusPhasesAndCampaign covers the labeled series: phase timers
// keep the span name in a label, and a live campaign exports progress
// gauges.
func TestPrometheusPhasesAndCampaign(t *testing.T) {
	reset()
	defer reset()
	obs.Enable()
	sp := obs.StartSpan("analyze:promwl")
	sp.End()
	obs.CampaignStart("promwl", 8, 0)
	obs.CampaignShotDone()

	var b strings.Builder
	obs.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`mbavf_phase_calls_total{phase="analyze:promwl"} 1`,
		`# TYPE mbavf_phase_seconds_total counter`,
		`mbavf_campaign_shots_total{workload="promwl"} 8`,
		`mbavf_campaign_shots_completed{workload="promwl"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestMetricsEndpoint exercises the live /metrics handler end to end:
// valid content type and at least one histogram _bucket series, the form
// a Prometheus scraper needs.
func TestMetricsEndpoint(t *testing.T) {
	reset()
	defer reset()
	addr, err := obs.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	obs.NewCounter("test.prom.live").Add(2)
	obs.NewHistogram("test.prom.live_hist").Record(42)

	resp, err := http.Get("http://" + addr + obs.PromHandlerPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q, want Prometheus text format 0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"mbavf_test_prom_live 2",
		"# TYPE mbavf_test_prom_live_hist histogram",
		`mbavf_test_prom_live_hist_bucket{le="63"} 1`,
		`mbavf_test_prom_live_hist_bucket{le="+Inf"} 1`,
		"mbavf_test_prom_live_hist_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, out)
		}
	}
}

// TestPrometheusLabeledFamilies pins the rendering of '|key=value'
// registry names: a labeled series and its unlabeled aggregate must
// share one metric family — one TYPE line, contiguous samples, the
// aggregate first — which is what the per-backend store counters rely
// on.
func TestPrometheusLabeledFamilies(t *testing.T) {
	reset()
	defer reset()
	obs.Enable()
	obs.NewCounter("test.lab.hits").Add(9)
	obs.NewCounter("test.lab.hits|backend=disk").Add(5)
	obs.NewCounter("test.lab.hits|backend=http").Add(4)
	obs.NewGauge("test.lab.depth|queue=fast").Set(2)

	var b strings.Builder
	obs.WritePrometheus(&b)
	want := `# TYPE mbavf_test_lab_hits counter
mbavf_test_lab_hits 9
mbavf_test_lab_hits{backend="disk"} 5
mbavf_test_lab_hits{backend="http"} 4
# TYPE mbavf_test_lab_depth gauge
mbavf_test_lab_depth{queue="fast"} 2
`
	if got := b.String(); got != want {
		t.Fatalf("labeled exposition diverges from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestPromNameSanitization(t *testing.T) {
	reset()
	defer reset()
	obs.Enable()
	obs.NewCounter("cache.l1-d/hits per set").Add(1)
	var b strings.Builder
	obs.WritePrometheus(&b)
	if !strings.Contains(b.String(), "mbavf_cache_l1_d_hits_per_set 1") {
		t.Fatalf("name not sanitized:\n%s", b.String())
	}
}
