package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-format exposition (version 0.0.4) of the full metric
// registry: counters, gauges (integer and float), phase timers, campaign
// progress, and histograms with cumulative _bucket/_sum/_count series.
// Registry names like "cache.l1.hits" become "mbavf_cache_l1_hits";
// phase timers keep their span name in a label so dynamic labels
// ("analyze:minife") never mint new metric families.

// promName sanitizes a registry name into a legal Prometheus metric name
// ([a-zA-Z_:][a-zA-Z0-9_:]*) with the repository prefix.
func promName(name string) string { return promNameWith("mbavf_", name) }

// promFleetName is promName under the fleet prefix: scraped-and-merged
// worker series expose as mbavf_fleet_* so they never collide with the
// coordinator process's own local series.
func promFleetName(name string) string { return promNameWith("mbavf_fleet_", name) }

func promNameWith(prefix, name string) string {
	var b strings.Builder
	b.Grow(len(name) + len(prefix))
	b.WriteString(prefix)
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabel escapes a label value per the exposition format.
func promLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// promSplit resolves a registry name into its metric family and label
// set. A name may carry one label after a '|' separator — the
// convention labeled series use ("store.hits|backend=disk" renders as
// mbavf_store_hits{backend="disk"}), so a labeled series and its
// unlabeled aggregate share one family. Names without a well-formed
// "key=value" suffix sanitize whole, exactly as before.
func promSplit(name string) (family, labels string) {
	base, lab, found := strings.Cut(name, "|")
	if !found {
		return promName(name), ""
	}
	k, v, ok := strings.Cut(lab, "=")
	if !ok || k == "" {
		return promName(name), ""
	}
	return promName(base), "{" + promNameWith("", k) + `="` + promLabel(v) + `"}`
}

// promScalar is one counter or gauge sample awaiting family grouping.
type promScalar struct {
	family string
	labels string
	value  string
}

// writeScalars emits samples grouped by family — the exposition format
// requires every family's TYPE line to precede all of its samples, and
// all of them to be contiguous. Within a family the unlabeled aggregate
// sorts first (it has the empty label set).
func writeScalars(w io.Writer, typ string, samples []promScalar) {
	sort.Slice(samples, func(i, j int) bool {
		if samples[i].family != samples[j].family {
			return samples[i].family < samples[j].family
		}
		return samples[i].labels < samples[j].labels
	})
	prev := ""
	for _, s := range samples {
		if s.family != prev {
			fmt.Fprintf(w, "# TYPE %s %s\n", s.family, typ)
			prev = s.family
		}
		fmt.Fprintf(w, "%s%s %s\n", s.family, s.labels, s.value)
	}
}

// promFloat renders a float64 without losing precision (Prometheus
// accepts the full Go 'g' forms including scientific notation).
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes the current state of every metric as Prometheus
// text exposition format. Zero-valued series are skipped, matching
// Snapshot's convention.
func WritePrometheus(w io.Writer) {
	counters, gauges, spans := Snapshot()
	cs := make([]promScalar, 0, len(counters))
	for _, c := range counters {
		fam, lab := promSplit(c.Name)
		cs = append(cs, promScalar{fam, lab, strconv.FormatUint(c.Value, 10)})
	}
	writeScalars(w, "counter", cs)
	gs := make([]promScalar, 0, len(gauges))
	for _, g := range gauges {
		fam, lab := promSplit(g.Name)
		gs = append(gs, promScalar{fam, lab, promFloat(g.Value)})
	}
	writeScalars(w, "gauge", gs)
	if len(spans) > 0 {
		fmt.Fprintf(w, "# TYPE mbavf_phase_calls_total counter\n")
		for _, s := range spans {
			fmt.Fprintf(w, "mbavf_phase_calls_total{phase=\"%s\"} %d\n", promLabel(s.Name), s.Calls)
		}
		fmt.Fprintf(w, "# TYPE mbavf_phase_seconds_total counter\n")
		for _, s := range spans {
			fmt.Fprintf(w, "mbavf_phase_seconds_total{phase=\"%s\"} %s\n",
				promLabel(s.Name), promFloat(s.Total.Seconds()))
		}
	}
	writeCampaignProm(w)
	for _, h := range Histograms() {
		writeHistProm(w, h)
	}
	writeFleetProm(w)
}

// writeFleetProm renders the scraped worker snapshots: for every metric
// the fleet reports, one aggregated (unlabeled) sample — the sum over
// workers, so a single PromQL-free scrape sees fleet totals — plus one
// worker-labeled sample per worker. Histograms merge bucket-wise into
// one aggregated family with per-worker _sum/_count samples.
func writeFleetProm(w io.Writer) {
	counters, gauges, hists := collectFleet()
	for _, c := range counters {
		n := promFleetName(c.name)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, c.total)
		for _, pw := range c.perWorker {
			fmt.Fprintf(w, "%s{worker=\"%s\"} %d\n", n, promLabel(pw.worker), pw.value)
		}
	}
	for _, g := range gauges {
		n := promFleetName(g.name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", n, n, promFloat(g.total))
		for _, pw := range g.perWorker {
			fmt.Fprintf(w, "%s{worker=\"%s\"} %s\n", n, promLabel(pw.worker), promFloat(pw.value))
		}
	}
	for _, h := range hists {
		n := promFleetName(h.name)
		fmt.Fprintf(w, "# TYPE %s histogram\n", n)
		var cum uint64
		for i, c := range h.total.Buckets {
			if c == 0 {
				continue
			}
			cum += c
			fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", n, BucketUpperBound(i), cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, h.total.Count)
		fmt.Fprintf(w, "%s_sum %d\n", n, h.total.Sum)
		fmt.Fprintf(w, "%s_count %d\n", n, h.total.Count)
		for _, pw := range h.perWorker {
			fmt.Fprintf(w, "%s_sum{worker=\"%s\"} %d\n", n, promLabel(pw.worker), pw.value.Sum)
			fmt.Fprintf(w, "%s_count{worker=\"%s\"} %d\n", n, promLabel(pw.worker), pw.value.Count)
		}
	}
}

// writeCampaignProm exports the live campaign progress as gauges, the
// series an operator graphs while a long run is in flight.
func writeCampaignProm(w io.Writer) {
	p := Progress()
	if p.Total == 0 {
		return
	}
	wl := promLabel(p.Workload)
	fmt.Fprintf(w, "# TYPE mbavf_campaign_shots_total gauge\nmbavf_campaign_shots_total{workload=\"%s\"} %d\n", wl, p.Total)
	fmt.Fprintf(w, "# TYPE mbavf_campaign_shots_completed gauge\nmbavf_campaign_shots_completed{workload=\"%s\"} %d\n", wl, p.Completed)
	fmt.Fprintf(w, "# TYPE mbavf_campaign_shots_per_second gauge\nmbavf_campaign_shots_per_second{workload=\"%s\"} %s\n", wl, promFloat(p.ShotsPerS))
	fmt.Fprintf(w, "# TYPE mbavf_campaign_eta_seconds gauge\nmbavf_campaign_eta_seconds{workload=\"%s\"} %s\n", wl, promFloat(p.ETASec))
}

// writeHistProm emits one histogram as cumulative buckets. Empty buckets
// between observations are skipped (cumulative counts stay correct with
// sparse boundaries); the +Inf bucket always equals the total count.
func writeHistProm(w io.Writer, h HistSnapshot) {
	n := promName(h.Name)
	fmt.Fprintf(w, "# TYPE %s histogram\n", n)
	var cum uint64
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		cum += c
		fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", n, BucketUpperBound(i), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, h.Count)
	fmt.Fprintf(w, "%s_sum %d\n", n, h.Sum)
	fmt.Fprintf(w, "%s_count %d\n", n, h.Count)
}

// PromHandlerPath is the exposition endpoint registered by ServeDebug.
const PromHandlerPath = "/metrics"

// PromHandler returns the Prometheus exposition endpoint as a reusable
// http.Handler, so any server (the debug listener, the analysis service)
// mounts the same /metrics behavior.
func PromHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w)
	})
}
