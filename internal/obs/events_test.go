package obs_test

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mbavf/internal/obs"
)

func TestEventLogGatedAndStamped(t *testing.T) {
	reset()
	defer reset()
	obs.LogEvent(obs.Event{Type: "dropped"})
	if got := obs.EventTotal(); got != 0 {
		t.Fatalf("disabled LogEvent counted %d events, want 0", got)
	}
	obs.Enable()
	before := time.Now()
	obs.LogEvent(obs.Event{Type: "lease.dispatched", Campaign: "c1", Lease: "l1", Worker: "w1", N: 32})
	events := obs.Events()
	if len(events) != 1 {
		t.Fatalf("retained %d events, want 1", len(events))
	}
	e := events[0]
	if e.Type != "lease.dispatched" || e.Campaign != "c1" || e.Lease != "l1" || e.Worker != "w1" || e.N != 32 {
		t.Fatalf("event = %+v", e)
	}
	if e.T.Before(before) || e.T.After(time.Now()) {
		t.Fatalf("zero T not stamped with now: %v", e.T)
	}
}

// TestEventRingBounded pins the retention contract: the ring keeps the
// most recent 8192 events, EventTotal keeps counting past the cap, and
// the oldest events fall off in order.
func TestEventRingBounded(t *testing.T) {
	reset()
	defer reset()
	obs.Enable()
	const ringCap, extra = 8192, 10
	for i := 0; i < ringCap+extra; i++ {
		obs.LogEvent(obs.Event{Type: "tick", N: i})
	}
	if got := obs.EventTotal(); got != ringCap+extra {
		t.Fatalf("EventTotal = %d, want %d", got, ringCap+extra)
	}
	events := obs.Events()
	if len(events) != ringCap {
		t.Fatalf("retained %d events, want the %d-entry ring", len(events), ringCap)
	}
	if events[0].N != extra || events[len(events)-1].N != ringCap+extra-1 {
		t.Fatalf("ring window = [%d, %d], want [%d, %d] (oldest first)",
			events[0].N, events[len(events)-1].N, extra, ringCap+extra-1)
	}
	obs.Reset()
	if obs.EventTotal() != 0 || len(obs.Events()) != 0 {
		t.Fatal("Reset must clear the event ring")
	}
}

func TestEventSinkJSONL(t *testing.T) {
	reset()
	defer reset()
	obs.Enable()
	var b strings.Builder
	obs.SetEventSink(&b)
	defer obs.SetEventSink(nil)
	obs.LogEvent(obs.Event{Type: "lease.completed", Lease: "l1", DurNS: 1500})
	obs.LogEvent(obs.Event{Type: "lease.stolen", Lease: "l2", Note: "worker gone"})

	sc := bufio.NewScanner(strings.NewReader(b.String()))
	var lines []obs.Event
	for sc.Scan() {
		var e obs.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("sink line does not parse: %v\n%s", err, sc.Text())
		}
		lines = append(lines, e)
	}
	if len(lines) != 2 {
		t.Fatalf("sink holds %d lines, want 2", len(lines))
	}
	if lines[0].Type != "lease.completed" || lines[0].DurNS != 1500 {
		t.Fatalf("line 0 = %+v", lines[0])
	}
	if lines[1].Type != "lease.stolen" || lines[1].Note != "worker gone" {
		t.Fatalf("line 1 = %+v", lines[1])
	}
}

func TestEventsHandler(t *testing.T) {
	reset()
	defer reset()
	obs.Enable()
	obs.LogEvent(obs.Event{Type: "lease.dispatched", Lease: "l1"})
	obs.LogEvent(obs.Event{Type: "lease.completed", Lease: "l1"})

	srv := httptest.NewServer(obs.EventsHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Total  uint64      `json:"total"`
		Events []obs.Event `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("events payload does not parse: %v", err)
	}
	if doc.Total != 2 || len(doc.Events) != 2 {
		t.Fatalf("events = %d/%d, want 2/2", len(doc.Events), doc.Total)
	}
	if doc.Events[0].Type != "lease.dispatched" || doc.Events[1].Type != "lease.completed" {
		t.Fatalf("event order = %q, %q", doc.Events[0].Type, doc.Events[1].Type)
	}
}
