package obs

import (
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// tracing gates trace-event recording, independently of Enable.
var tracing atomic.Bool

// trace is the recorded event log. Timestamps are microseconds relative
// to traceStart, the form Chrome's trace viewer expects.
var trace struct {
	sync.Mutex
	start  time.Time
	events []traceEvent
	// tids maps runtime goroutine ids to small stable track ids assigned
	// in order of first appearance, so parallel campaign workers render
	// on separate Perfetto rows instead of one overlapping flat row.
	tids map[uint64]int
}

// goroutineID parses the current goroutine's runtime id from the
// "goroutine N [...]" stack header. Only called while tracing, where a
// fixed 32-byte stack dump per span end is noise next to the span itself.
func goroutineID() uint64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	s := buf[:n]
	const prefix = "goroutine "
	if len(s) < len(prefix) {
		return 0
	}
	var id uint64
	for _, c := range s[len(prefix):] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

// traceEvent is one Chrome trace_event "complete" event ("ph":"X").
// See the Trace Event Format spec: ts/dur are microseconds; pid/tid
// select the row the span renders on.
type traceEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

// traceFile is the Chrome trace JSON object form (preferred over the
// bare array: it is extensible and unambiguous about time units).
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// StartTrace begins recording spans as trace events. Restarting clears
// previously recorded events.
func StartTrace() {
	trace.Lock()
	trace.start = time.Now()
	trace.events = nil
	trace.tids = nil
	trace.Unlock()
	tracing.Store(true)
}

// StopTrace stops recording; events recorded so far stay available for
// WriteTrace.
func StopTrace() { tracing.Store(false) }

// Tracing reports whether spans are being recorded as trace events.
func Tracing() bool { return tracing.Load() }

// traceSpan appends one completed span. The category is the span-name
// prefix up to the first ':' ("simulate", "analyze", "exp", "campaign"),
// which Chrome uses for filtering and coloring.
func traceSpan(name string, start time.Time, dur time.Duration) {
	if !tracing.Load() {
		return
	}
	cat := name
	for i := 0; i < len(name); i++ {
		if name[i] == ':' {
			cat = name[:i]
			break
		}
	}
	gid := goroutineID()
	trace.Lock()
	if !trace.start.IsZero() && !start.Before(trace.start) {
		tid, ok := trace.tids[gid]
		if !ok {
			if trace.tids == nil {
				trace.tids = map[uint64]int{}
			}
			tid = len(trace.tids) + 1
			trace.tids[gid] = tid
		}
		trace.events = append(trace.events, traceEvent{
			Name: name,
			Cat:  cat,
			Ph:   "X",
			Ts:   float64(start.Sub(trace.start)) / float64(time.Microsecond),
			Dur:  float64(dur) / float64(time.Microsecond),
			Pid:  1,
			Tid:  tid,
		})
	}
	trace.Unlock()
}

// TraceEventCount returns the number of recorded events (for tests and
// progress reporting).
func TraceEventCount() int {
	trace.Lock()
	defer trace.Unlock()
	return len(trace.events)
}

// TraceJSON serializes the recorded events as a Chrome-loadable trace
// document.
func TraceJSON() ([]byte, error) {
	trace.Lock()
	events := make([]traceEvent, len(trace.events))
	copy(events, trace.events)
	trace.Unlock()
	return json.MarshalIndent(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"}, "", " ")
}

// WriteTrace writes the recorded trace to path (chrome://tracing or
// https://ui.perfetto.dev both load it).
func WriteTrace(path string) error {
	data, err := TraceJSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
