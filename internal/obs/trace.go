package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// tracing gates trace-event recording, independently of Enable.
var tracing atomic.Bool

// trace is the recorded event log. Timestamps are microseconds relative
// to traceStart, the form Chrome's trace viewer expects.
var trace struct {
	sync.Mutex
	start  time.Time
	events []traceEvent
	// tids maps runtime goroutine ids to small stable track ids assigned
	// in order of first appearance, so parallel campaign workers render
	// on separate Perfetto rows instead of one overlapping flat row.
	tids map[uint64]int
}

// procName is the label this process's trace events carry (the Perfetto
// process row title). Defaults to the executable name; CLIs override it
// with something role-qualified ("mbavf-serve worker :18091") so a
// merged fleet trace names its rows usefully.
var procName atomic.Value // string

// SetProcessName sets the label this process contributes to traces and
// merged fleet views.
func SetProcessName(name string) { procName.Store(name) }

// ProcessName returns the trace process label (executable basename when
// never set).
func ProcessName() string {
	if n, ok := procName.Load().(string); ok && n != "" {
		return n
	}
	return filepath.Base(os.Args[0])
}

// goroutineID parses the current goroutine's runtime id from the
// "goroutine N [...]" stack header. Only called while tracing, where a
// fixed 32-byte stack dump per span end is noise next to the span itself.
func goroutineID() uint64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	s := buf[:n]
	const prefix = "goroutine "
	if len(s) < len(prefix) {
		return 0
	}
	var id uint64
	for _, c := range s[len(prefix):] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

// traceEvent is one Chrome trace_event: complete spans ("X"), async
// begin/end/instant ("b"/"e"/"n") carrying a cross-process correlation
// id, and metadata ("M"). ts/dur are microseconds; pid/tid select the
// row the event renders on. Pid is the real OS process id, so events
// from different fleet processes never collide after a merge.
type traceEvent struct {
	Name string          `json:"name"`
	Cat  string          `json:"cat"`
	Ph   string          `json:"ph"`
	Ts   float64         `json:"ts"`
	Dur  float64         `json:"dur,omitempty"`
	Pid  int             `json:"pid"`
	Tid  int             `json:"tid"`
	ID   string          `json:"id,omitempty"`
	Args json.RawMessage `json:"args,omitempty"`
}

// TraceMeta is the merge anchor embedded in every trace file under
// "otherData" (a key Chrome ignores): the absolute wall-clock start the
// relative timestamps are measured from, plus the process identity.
type TraceMeta struct {
	Pid            int    `json:"pid"`
	Process        string `json:"process"`
	StartUnixMicro int64  `json:"startUnixMicro"`
}

// traceFile is the Chrome trace JSON object form (preferred over the
// bare array: it is extensible and unambiguous about time units).
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	Meta            *TraceMeta   `json:"otherData,omitempty"`
}

// StartTrace begins recording spans as trace events. Restarting clears
// previously recorded events.
func StartTrace() {
	trace.Lock()
	trace.start = time.Now()
	trace.events = nil
	trace.tids = nil
	trace.Unlock()
	tracing.Store(true)
}

// StopTrace stops recording; events recorded so far stay available for
// WriteTrace.
func StopTrace() { tracing.Store(false) }

// Tracing reports whether spans are being recorded as trace events.
func Tracing() bool { return tracing.Load() }

// category is the span-name prefix up to the first ':' ("simulate",
// "analyze", "lease", "campaign"), which Chrome uses for filtering and
// coloring.
func category(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == ':' {
			return name[:i]
		}
	}
	return name
}

// appendEvent records one event, assigning the goroutine's dense tid.
// ts is the event's absolute start time.
func appendEvent(e traceEvent, ts time.Time) {
	gid := goroutineID()
	trace.Lock()
	if !trace.start.IsZero() && !ts.Before(trace.start) {
		tid, ok := trace.tids[gid]
		if !ok {
			if trace.tids == nil {
				trace.tids = map[uint64]int{}
			}
			tid = len(trace.tids) + 1
			trace.tids[gid] = tid
		}
		e.Ts = float64(ts.Sub(trace.start)) / float64(time.Microsecond)
		e.Pid = os.Getpid()
		e.Tid = tid
		trace.events = append(trace.events, e)
	}
	trace.Unlock()
}

// traceSpan appends one completed span.
func traceSpan(name string, start time.Time, dur time.Duration) {
	if !tracing.Load() {
		return
	}
	appendEvent(traceEvent{
		Name: name,
		Cat:  category(name),
		Ph:   "X",
		Dur:  float64(dur) / float64(time.Microsecond),
	}, start)
}

// TraceAsyncBegin records the start of an async operation correlated by
// (cat, id). Async events with one id nest in the trace viewer no matter
// which process recorded them — the mechanism that lets a worker's lease
// execution render under the coordinator's campaign span in a merged
// fleet trace. Pair with TraceAsyncEnd.
func TraceAsyncBegin(cat, name, id string) {
	if !tracing.Load() || id == "" {
		return
	}
	appendEvent(traceEvent{Name: name, Cat: cat, Ph: "b", ID: id}, time.Now())
}

// TraceAsyncEnd closes the async operation opened by TraceAsyncBegin
// with the same (cat, name, id).
func TraceAsyncEnd(cat, name, id string) {
	if !tracing.Load() || id == "" {
		return
	}
	appendEvent(traceEvent{Name: name, Cat: cat, Ph: "e", ID: id}, time.Now())
}

// TraceAsyncInstant records a zero-duration marker inside the async
// operation (lease dispatched, lease stolen, checksum rejected).
func TraceAsyncInstant(cat, name, id string) {
	if !tracing.Load() || id == "" {
		return
	}
	appendEvent(traceEvent{Name: name, Cat: cat, Ph: "n", ID: id}, time.Now())
}

// TraceEventCount returns the number of recorded events (for tests and
// progress reporting).
func TraceEventCount() int {
	trace.Lock()
	defer trace.Unlock()
	return len(trace.events)
}

// processNameEvent is the "M" metadata event naming a pid's row in the
// trace viewer.
func processNameEvent(pid int, name string) traceEvent {
	args, _ := json.Marshal(map[string]string{"name": name})
	return traceEvent{Name: "process_name", Ph: "M", Pid: pid, Args: args}
}

// TraceJSON serializes the recorded events as a Chrome-loadable trace
// document: a process_name metadata event, every recorded event, and the
// wall-clock anchor MergeTraces aligns files with.
func TraceJSON() ([]byte, error) {
	trace.Lock()
	events := make([]traceEvent, 0, len(trace.events)+1)
	events = append(events, processNameEvent(os.Getpid(), ProcessName()))
	events = append(events, trace.events...)
	meta := &TraceMeta{
		Pid:            os.Getpid(),
		Process:        ProcessName(),
		StartUnixMicro: trace.start.UnixMicro(),
	}
	if trace.start.IsZero() {
		meta.StartUnixMicro = 0
	}
	trace.Unlock()
	return json.MarshalIndent(traceFile{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		Meta:            meta,
	}, "", " ")
}

// WriteTrace writes the recorded trace to path (chrome://tracing or
// https://ui.perfetto.dev both load it).
func WriteTrace(path string) error {
	data, err := TraceJSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
