package obs

import (
	"encoding/json"
	"fmt"
	"sort"
)

// MergedTraceStats summarizes a merge for callers that want to report or
// assert on it (the mbavf-trace CLI, the fabric smoke test).
type MergedTraceStats struct {
	Files     int            `json:"files"`
	Events    int            `json:"events"`
	Pids      []int          `json:"pids"`
	Processes map[int]string `json:"processes"`
}

// MergeTraces stitches several Chrome trace documents — a coordinator's
// and its workers', each written by WriteTrace — into one fleet trace.
//
// Each input file's timestamps are relative to its own StartTrace call;
// the "otherData" anchor (TraceMeta) carries the absolute wall clock of
// that instant, so the merger rebases every file onto the earliest
// anchor and spans line up in real time (clocks on one host; a fleet on
// many hosts aligns only as well as its clocks do). Process ids are kept
// when unique and reassigned on collision — two traces recorded by
// processes that happened to share a pid (different hosts, pid reuse)
// must not interleave their rows — and every pid gets a process_name
// metadata event so the viewer titles the rows.
//
// Async events ("b"/"e"/"n") pass through untouched: their (cat, id)
// correlation is process-independent by construction, which is what lets
// a worker's lease span nest under the coordinator's campaign span in
// the merged view.
func MergeTraces(docs ...[]byte) ([]byte, MergedTraceStats, error) {
	stats := MergedTraceStats{Files: len(docs), Processes: map[int]string{}}
	if len(docs) == 0 {
		return nil, stats, fmt.Errorf("obs: no traces to merge")
	}
	type parsed struct {
		file   traceFile
		anchor int64 // µs since epoch; 0 = unknown
	}
	files := make([]parsed, 0, len(docs))
	var t0 int64
	for i, doc := range docs {
		var f traceFile
		if err := json.Unmarshal(doc, &f); err != nil {
			return nil, stats, fmt.Errorf("obs: trace %d does not parse: %w", i, err)
		}
		p := parsed{file: f}
		if f.Meta != nil && f.Meta.StartUnixMicro > 0 {
			p.anchor = f.Meta.StartUnixMicro
			if t0 == 0 || p.anchor < t0 {
				t0 = p.anchor
			}
		}
		files = append(files, p)
	}

	used := map[int]bool{}
	maxPid := 0
	var out []traceEvent
	for i, p := range files {
		offset := 0.0
		if p.anchor > 0 && t0 > 0 {
			offset = float64(p.anchor - t0)
		}
		// One final pid per source file: the recorded pid when no earlier
		// file claimed it, a fresh one otherwise.
		srcPid := 0
		if p.file.Meta != nil {
			srcPid = p.file.Meta.Pid
		} else if len(p.file.TraceEvents) > 0 {
			srcPid = p.file.TraceEvents[0].Pid
		}
		finalPid := srcPid
		if finalPid <= 0 || used[finalPid] {
			finalPid = maxPid + 1
			for used[finalPid] {
				finalPid++
			}
		}
		used[finalPid] = true
		if finalPid > maxPid {
			maxPid = finalPid
		}

		name := fmt.Sprintf("trace %d", i)
		if p.file.Meta != nil && p.file.Meta.Process != "" {
			name = p.file.Meta.Process
		}
		stats.Processes[finalPid] = name
		out = append(out, processNameEvent(finalPid, name))
		for _, e := range p.file.TraceEvents {
			if e.Ph == "M" && e.Name == "process_name" {
				continue // regenerated above with the final pid
			}
			e.Pid = finalPid
			e.Ts += offset
			out = append(out, e)
		}
	}
	// Stable by timestamp (metadata events carry ts 0 and float sorting
	// is exact here), so the merged file reads chronologically.
	sort.SliceStable(out, func(i, j int) bool { return out[i].Ts < out[j].Ts })

	stats.Events = len(out)
	for pid := range used {
		stats.Pids = append(stats.Pids, pid)
	}
	sort.Ints(stats.Pids)
	data, err := json.MarshalIndent(traceFile{TraceEvents: out, DisplayTimeUnit: "ms"}, "", " ")
	return data, stats, err
}
