package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"
)

// Event is one structured lifecycle record: what happened, to which
// lease, on which worker, under which campaign. The fabric logs the
// lease lifecycle (dispatched, heartbeat, stalled, stolen, quarantined,
// checksum-reject, completed) through this shape; the per-lease campaign
// timeline and the /fabric/v1/events endpoint read it back.
type Event struct {
	T        time.Time `json:"t"`
	Type     string    `json:"type"`
	Campaign string    `json:"campaign,omitempty"`
	Lease    string    `json:"lease,omitempty"`
	Worker   string    `json:"worker,omitempty"`
	// DurNS is the event's duration where one applies (a completed
	// lease's dispatch→done latency).
	DurNS int64 `json:"dur_ns,omitempty"`
	// N carries the event's magnitude where one applies (shots in a
	// lease, completed count at a heartbeat).
	N    int    `json:"n,omitempty"`
	Note string `json:"note,omitempty"`
}

// eventCap bounds the in-memory event ring. Old events fall off; the
// JSONL sink (when set) has already persisted them.
const eventCap = 8192

// eventLog is a bounded ring with an optional JSONL sink. Logging is a
// short critical section appending to a preallocated ring — cheap enough
// for per-heartbeat events — and completely skipped while the layer is
// disabled.
var eventLog struct {
	sync.Mutex
	ring  [eventCap]Event
	next  int    // ring write cursor
	total uint64 // events ever logged
	sink  io.Writer
}

// LogEvent records one event when the layer is enabled. The zero T is
// stamped with the current time.
func LogEvent(e Event) {
	if !enabled.Load() {
		return
	}
	if e.T.IsZero() {
		e.T = time.Now()
	}
	var sink io.Writer
	eventLog.Lock()
	eventLog.ring[eventLog.next] = e
	eventLog.next = (eventLog.next + 1) % eventCap
	eventLog.total++
	sink = eventLog.sink
	eventLog.Unlock()
	if sink != nil {
		// Serialization happens outside the ring lock; JSONL lines are
		// self-delimiting so interleaved writers stay parseable as long as
		// the sink's Write is atomic per call (os.File is).
		if data, err := json.Marshal(e); err == nil {
			sink.Write(append(data, '\n'))
		}
	}
}

// SetEventSink streams every subsequent event as one JSON line to w
// (nil disables). The ring keeps serving recent events either way.
func SetEventSink(w io.Writer) {
	eventLog.Lock()
	eventLog.sink = w
	eventLog.Unlock()
}

// Events returns the retained events, oldest first.
func Events() []Event {
	eventLog.Lock()
	defer eventLog.Unlock()
	n := int(min(eventLog.total, uint64(eventCap)))
	out := make([]Event, 0, n)
	start := (eventLog.next - n + eventCap) % eventCap
	for i := 0; i < n; i++ {
		out = append(out, eventLog.ring[(start+i)%eventCap])
	}
	return out
}

// EventTotal returns the number of events ever logged (retained or not).
func EventTotal() uint64 {
	eventLog.Lock()
	defer eventLog.Unlock()
	return eventLog.total
}

// resetEvents clears the ring (part of Reset's lifecycle; the sink, an
// external resource, survives).
func resetEvents() {
	eventLog.Lock()
	eventLog.next = 0
	eventLog.total = 0
	eventLog.ring = [eventCap]Event{}
	eventLog.Unlock()
}

// EventsHandler serves the retained events as a JSON document — the
// /fabric/v1/events endpoint workers and coordinators mount.
func EventsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		events := Events()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(struct {
			Total  uint64  `json:"total"`
			Events []Event `json:"events"`
		}{EventTotal(), events})
	})
}
