package obs_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"mbavf/internal/obs"
)

// TestFleetPrometheusGolden pins the coordinator-aggregated exposition
// byte-for-byte against the hand-merged sum of two worker snapshots:
// aggregate (unlabeled) samples equal the sum over workers, per-worker
// samples carry a sanitized worker label, and sparse histogram buckets
// merge into correct cumulative series.
func TestFleetPrometheusGolden(t *testing.T) {
	reset()
	defer reset()
	obs.Enable()

	workerA := "http://127.0.0.1:18091"
	workerB := "w\"2\\b" // exercises label escaping of " and \
	obs.PublishFleet(workerA, obs.RegistrySnapshot{
		Counters: []obs.CounterSnapshot{
			{Name: "inject.shots", Value: 10},
			{Name: "store.hits", Value: 3},
		},
		Gauges: []obs.GaugeSnapshot{{Name: "avf.value", Value: 0.25}},
		Hists: []obs.HistWire{{
			Name: "lease.ms", Sum: 101,
			Buckets: []obs.HistBucket{{Bit: 1, N: 1}, {Bit: 7, N: 1}},
		}},
	})
	obs.PublishFleet(workerB, obs.RegistrySnapshot{
		Counters: []obs.CounterSnapshot{{Name: "inject.shots", Value: 5}},
		Hists: []obs.HistWire{{
			Name: "lease.ms", Sum: 3,
			Buckets: []obs.HistBucket{{Bit: 2, N: 1}},
		}},
	})

	// The local registry holds no non-zero series after reset, so the
	// exposition is exactly the fleet section.
	var b strings.Builder
	obs.WritePrometheus(&b)
	want := `# TYPE mbavf_fleet_inject_shots counter
mbavf_fleet_inject_shots 15
mbavf_fleet_inject_shots{worker="http://127.0.0.1:18091"} 10
mbavf_fleet_inject_shots{worker="w\"2\\b"} 5
# TYPE mbavf_fleet_store_hits counter
mbavf_fleet_store_hits 3
mbavf_fleet_store_hits{worker="http://127.0.0.1:18091"} 3
# TYPE mbavf_fleet_avf_value gauge
mbavf_fleet_avf_value 0.25
mbavf_fleet_avf_value{worker="http://127.0.0.1:18091"} 0.25
# TYPE mbavf_fleet_lease_ms histogram
mbavf_fleet_lease_ms_bucket{le="1"} 1
mbavf_fleet_lease_ms_bucket{le="3"} 2
mbavf_fleet_lease_ms_bucket{le="127"} 3
mbavf_fleet_lease_ms_bucket{le="+Inf"} 3
mbavf_fleet_lease_ms_sum 104
mbavf_fleet_lease_ms_count 3
mbavf_fleet_lease_ms_sum{worker="http://127.0.0.1:18091"} 101
mbavf_fleet_lease_ms_count{worker="http://127.0.0.1:18091"} 2
mbavf_fleet_lease_ms_sum{worker="w\"2\\b"} 3
mbavf_fleet_lease_ms_count{worker="w\"2\\b"} 1
`
	if got := b.String(); got != want {
		t.Fatalf("fleet exposition diverges from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	if ws := obs.FleetWorkers(); !reflect.DeepEqual(ws, []string{workerA, workerB}) {
		t.Fatalf("FleetWorkers() = %v", ws)
	}
	obs.Reset()
	if ws := obs.FleetWorkers(); len(ws) != 0 {
		t.Fatalf("Reset kept fleet snapshots: %v", ws)
	}
}

// TestHistWireRoundTrip checks the sparse wire form is lossless: dense →
// wire → dense reproduces buckets, count, and sum.
func TestHistWireRoundTrip(t *testing.T) {
	reset()
	defer reset()
	obs.Enable()
	h := obs.NewHistogram("test.wire.hist")
	for _, v := range []uint64{0, 1, 5, 5, 1 << 40} {
		h.Record(v)
	}
	dense := h.Snapshot()
	back := dense.Wire().Dense()
	if back != dense {
		t.Fatalf("wire round trip diverges:\nin:  %+v\nout: %+v", dense, back)
	}
	if len(dense.Wire().Buckets) != 4 {
		t.Fatalf("wire buckets = %d, want 4 non-empty (sparse)", len(dense.Wire().Buckets))
	}
}

// TestSnapshotHandlerScrape drives the worker side of fleet metrics over
// HTTP: the /fabric/v1/obs payload parses back into a RegistrySnapshot
// matching CaptureRegistry.
func TestSnapshotHandlerScrape(t *testing.T) {
	reset()
	defer reset()
	obs.Enable()
	obs.NewCounter("test.scrape.counter").Add(4)
	obs.NewHistogram("test.scrape.hist").Record(9)

	srv := httptest.NewServer(obs.SnapshotHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got obs.RegistrySnapshot
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatalf("snapshot payload does not parse: %v", err)
	}
	want := obs.CaptureRegistry()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("scraped snapshot diverges:\ngot:  %+v\nwant: %+v", got, want)
	}
	found := false
	for _, c := range got.Counters {
		if c.Name == "test.scrape.counter" && c.Value == 4 {
			found = true
		}
	}
	if !found {
		t.Fatalf("scraped counters missing test.scrape.counter=4: %+v", got.Counters)
	}
}
