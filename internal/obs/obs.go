// Package obs is the repository's observability layer: named atomic
// counters and gauges, phase wall-clock timers, a Chrome trace_event
// exporter, and an opt-in expvar/pprof debug endpoint with live campaign
// progress.
//
// The layer is off by default and designed to vanish when disabled:
// Counter.Add and Gauge.Set are a single atomic load plus a branch, and
// StartSpan returns an inert zero Span without allocating. Long-lived
// subsystems (the GPU pipeline, the caches, the MB-AVF engine, the
// injection runner) hold package-level *Counter handles created once at
// init; hot loops accumulate into plain locals and publish a single Add
// at phase boundaries, so even the enabled path stays off the critical
// path.
//
// Enable() turns on counters and phase timing; StartTrace() additionally
// records every completed span as a Chrome trace_event. The two are
// independent stores: Reset() clears counters and phase accumulators
// (the per-experiment summary lifecycle) without losing trace events.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mbavf/internal/report"
)

// enabled gates counters, gauges, and phase accumulation.
var enabled atomic.Bool

// Enable turns the observability layer on.
func Enable() { enabled.Store(true) }

// Disable turns the observability layer off. Existing values are kept
// (call Reset to zero them).
func Disable() { enabled.Store(false) }

// Enabled reports whether the layer is collecting.
func Enabled() bool { return enabled.Load() }

// Active reports whether spans have any effect (metrics or tracing); use
// it to skip building span labels on hot paths when everything is off.
func Active() bool { return enabled.Load() || tracing.Load() }

// registry holds every named counter, gauge, and histogram ever created.
// Creation happens at package init of the instrumented subsystems;
// lookups on hot paths go through the returned handles, never the map.
var registry struct {
	sync.Mutex
	counters    map[string]*Counter
	gauges      map[string]*Gauge
	floatGauges map[string]*FloatGauge
	histograms  map[string]*Histogram
}

// sortByName orders snapshot slices for deterministic output.
func sortByName[T any](s []T, name func(T) string) {
	sort.Slice(s, func(i, j int) bool { return name(s[i]) < name(s[j]) })
}

// Counter is a named, monotonically increasing atomic counter. The zero
// value is unusable; create counters with NewCounter.
type Counter struct {
	name string
	v    atomic.Uint64
}

// NewCounter returns the counter with the given name, creating it on
// first use. Calling NewCounter twice with one name returns the same
// counter, so independent packages can share a series.
func NewCounter(name string) *Counter {
	registry.Lock()
	defer registry.Unlock()
	if registry.counters == nil {
		registry.counters = map[string]*Counter{}
	}
	if c, ok := registry.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	registry.counters[name] = c
	return c
}

// Name returns the counter's registry name.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by n when the layer is enabled.
func (c *Counter) Add(n uint64) {
	if !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a named last-value metric (e.g. campaign shots remaining).
type Gauge struct {
	name string
	v    atomic.Int64
}

// NewGauge returns the gauge with the given name, creating it on first
// use.
func NewGauge(name string) *Gauge {
	registry.Lock()
	defer registry.Unlock()
	if registry.gauges == nil {
		registry.gauges = map[string]*Gauge{}
	}
	if g, ok := registry.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name}
	registry.gauges[name] = g
	return g
}

// Name returns the gauge's registry name.
func (g *Gauge) Name() string { return g.name }

// Set stores v when the layer is enabled.
func (g *Gauge) Set(v int64) {
	if !enabled.Load() {
		return
	}
	g.v.Store(v)
}

// Value returns the last stored value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is a named last-value metric for fractional series (AVFs,
// rates). Stored as float64 bits in a uint64, so Set/Value stay lock-free.
type FloatGauge struct {
	name string
	bits atomic.Uint64
}

// NewFloatGauge returns the float gauge with the given name, creating it
// on first use.
func NewFloatGauge(name string) *FloatGauge {
	registry.Lock()
	defer registry.Unlock()
	if registry.floatGauges == nil {
		registry.floatGauges = map[string]*FloatGauge{}
	}
	if g, ok := registry.floatGauges[name]; ok {
		return g
	}
	g := &FloatGauge{name: name}
	registry.floatGauges[name] = g
	return g
}

// Name returns the gauge's registry name.
func (g *FloatGauge) Name() string { return g.name }

// Set stores v when the layer is enabled.
func (g *FloatGauge) Set(v float64) {
	if !enabled.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last stored value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// phases accumulates wall time per span name.
var phases struct {
	sync.Mutex
	m map[string]*phaseStat
}

type phaseStat struct {
	calls uint64
	total time.Duration
}

// Span is one timed phase. The zero Span is inert: End on it does
// nothing, so disabled StartSpan costs no allocation and no time call.
type Span struct {
	name  string
	start time.Time
}

// StartSpan begins timing a phase. When the layer is disabled and no
// trace is recording, it returns the zero Span.
func StartSpan(name string) Span {
	if !Active() {
		return Span{}
	}
	return Span{name: name, start: time.Now()}
}

// StartSpan2 is StartSpan(prefix + name) without paying the string
// concatenation when the layer is off — for hot call sites that label
// spans dynamically (per workload, per campaign).
func StartSpan2(prefix, name string) Span {
	if !Active() {
		return Span{}
	}
	return Span{name: prefix + name, start: time.Now()}
}

// End finishes the span, adding its duration to the phase accumulator
// and, when tracing, appending a trace event.
func (s Span) End() {
	if s.name == "" {
		return
	}
	end := time.Now()
	dur := end.Sub(s.start)
	if enabled.Load() {
		phases.Lock()
		if phases.m == nil {
			phases.m = map[string]*phaseStat{}
		}
		st := phases.m[s.name]
		if st == nil {
			st = &phaseStat{}
			phases.m[s.name] = st
		}
		st.calls++
		st.total += dur
		phases.Unlock()
	}
	traceSpan(s.name, s.start, dur)
}

// CounterSnapshot is one counter's value at snapshot time.
type CounterSnapshot struct {
	Name  string
	Value uint64
}

// GaugeSnapshot is one gauge's value at snapshot time. Integer and float
// gauges share the snapshot form (int64 values fit float64 exactly for
// every magnitude these series reach).
type GaugeSnapshot struct {
	Name  string
	Value float64
}

// PhaseSnapshot is one phase's accumulated wall time.
type PhaseSnapshot struct {
	Name  string
	Calls uint64
	Total time.Duration
}

// Snapshot captures every non-zero counter, every non-zero gauge (integer
// and float), and every recorded phase, sorted by name.
func Snapshot() (counters []CounterSnapshot, gauges []GaugeSnapshot, spans []PhaseSnapshot) {
	registry.Lock()
	for name, c := range registry.counters {
		if v := c.Value(); v != 0 {
			counters = append(counters, CounterSnapshot{Name: name, Value: v})
		}
	}
	for name, g := range registry.gauges {
		if v := g.Value(); v != 0 {
			gauges = append(gauges, GaugeSnapshot{Name: name, Value: float64(v)})
		}
	}
	for name, g := range registry.floatGauges {
		if v := g.Value(); v != 0 {
			gauges = append(gauges, GaugeSnapshot{Name: name, Value: v})
		}
	}
	registry.Unlock()
	phases.Lock()
	for name, st := range phases.m {
		spans = append(spans, PhaseSnapshot{Name: name, Calls: st.calls, Total: st.total})
	}
	phases.Unlock()
	sortByName(counters, func(s CounterSnapshot) string { return s.Name })
	sortByName(gauges, func(s GaugeSnapshot) string { return s.Name })
	sortByName(spans, func(s PhaseSnapshot) string { return s.Name })
	return counters, gauges, spans
}

// Counters returns a name → value map of every non-zero counter — the
// form the expvar endpoint and the race-consistency tests consume.
func Counters() map[string]uint64 {
	cs, _, _ := Snapshot()
	out := make(map[string]uint64, len(cs))
	for _, c := range cs {
		out[c.Name] = c.Value
	}
	return out
}

// Gauges returns a name → value map of every non-zero gauge, integer and
// float — the form the expvar endpoint consumes.
func Gauges() map[string]float64 {
	_, gs, _ := Snapshot()
	out := make(map[string]float64, len(gs))
	for _, g := range gs {
		out[g.Name] = g.Value
	}
	return out
}

// Reset zeroes every counter, gauge, histogram, phase accumulator, the
// live campaign progress, the structured event ring, and the scraped
// fleet snapshots. Trace events are kept (the trace spans the whole
// process; summaries are per experiment).
func Reset() {
	registry.Lock()
	for _, c := range registry.counters {
		c.v.Store(0)
	}
	for _, g := range registry.gauges {
		g.v.Store(0)
	}
	for _, g := range registry.floatGauges {
		g.bits.Store(0)
	}
	for _, h := range registry.histograms {
		h.reset()
	}
	registry.Unlock()
	phases.Lock()
	phases.m = nil
	phases.Unlock()
	resetCampaign()
	resetEvents()
	resetFleet()
}

// SummaryTables renders the current snapshot as report tables: phase
// wall-time first (the per-experiment timing summary), then counters,
// gauges, and histogram quantile summaries. Empty sections are omitted.
func SummaryTables(title string) []*report.Table {
	counters, gauges, spans := Snapshot()
	var out []*report.Table
	if len(spans) > 0 {
		t := report.NewTable(title+": phase timings", "phase", "calls", "total ms", "mean ms")
		for _, s := range spans {
			ms := float64(s.Total) / float64(time.Millisecond)
			t.AddRowf(s.Name, int(s.Calls), ms, ms/float64(s.Calls))
		}
		out = append(out, t)
	}
	if len(counters) > 0 {
		t := report.NewTable(title+": counters", "counter", "value")
		for _, c := range counters {
			t.AddRowf(c.Name, c.Value)
		}
		out = append(out, t)
	}
	if len(gauges) > 0 {
		t := report.NewTable(title+": gauges", "gauge", "value")
		for _, g := range gauges {
			t.AddRowf(g.Name, g.Value)
		}
		out = append(out, t)
	}
	if hists := Histograms(); len(hists) > 0 {
		t := report.NewTable(title+": histograms", "histogram", "count", "mean", "p50", "p90", "p99", "max")
		for _, h := range hists {
			t.AddRowf(h.Name, h.Count, h.Mean(),
				h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.MaxBound())
		}
		out = append(out, t)
	}
	return out
}
