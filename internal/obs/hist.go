package obs

import (
	"math/bits"
	"sync/atomic"
)

// NumHistBuckets is the number of power-of-two histogram buckets: bucket
// i counts recorded values v with bits.Len64(v) == i, i.e. bucket 0 holds
// exactly 0 and bucket i (i >= 1) holds [2^(i-1), 2^i - 1]. The layout
// covers the full uint64 range, so Record never needs a bounds check.
const NumHistBuckets = 65

// BucketUpperBound returns the largest value bucket i can hold (the
// Prometheus "le" boundary of the bucket).
func BucketUpperBound(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// Histogram is a named, lock-free histogram over uint64 values with
// power-of-two buckets. Like Counter, the zero value is unusable (create
// with NewHistogram), Record is gated on Enable, and the disabled path is
// a single atomic load plus a branch with no allocation. The enabled
// record path is two atomic adds — safe from any number of goroutines.
type Histogram struct {
	name    string
	sum     atomic.Uint64
	buckets [NumHistBuckets]atomic.Uint64
}

// NewHistogram returns the histogram with the given name, creating it on
// first use. Calling NewHistogram twice with one name returns the same
// histogram, so independent packages can share a series.
func NewHistogram(name string) *Histogram {
	registry.Lock()
	defer registry.Unlock()
	if registry.histograms == nil {
		registry.histograms = map[string]*Histogram{}
	}
	if h, ok := registry.histograms[name]; ok {
		return h
	}
	h := &Histogram{name: name}
	registry.histograms[name] = h
	return h
}

// Name returns the histogram's registry name.
func (h *Histogram) Name() string { return h.name }

// Record adds one observation when the layer is enabled.
func (h *Histogram) Record(v uint64) {
	if !enabled.Load() {
		return
	}
	h.buckets[bits.Len64(v)].Add(1)
	h.sum.Add(v)
}

// reset zeroes the histogram (caller holds the registry lock via Reset).
func (h *Histogram) reset() {
	h.sum.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Snapshot captures the histogram's current state. Concurrent Records
// tear at most one observation between buckets and sum, which summary
// consumers tolerate.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Name: h.name, Sum: h.sum.Load()}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Buckets[i] = n
		s.Count += n
	}
	return s
}

// LocalHist is a plain, goroutine-private histogram for hot loops: sweep
// workers observe into a LocalHist with no atomics at all and publish the
// whole thing with one FlushTo at a shard boundary — the same
// accumulate-locally idiom the counters use.
type LocalHist struct {
	sum     uint64
	buckets [NumHistBuckets]uint64
}

// Observe adds one observation. It is not gated on Enable; callers on
// disabled-path-sensitive loops should check Enabled() once outside the
// loop.
func (l *LocalHist) Observe(v uint64) {
	l.buckets[bits.Len64(v)]++
	l.sum += v
}

// FlushTo merges the local histogram into h when the layer is enabled,
// then zeroes the local state either way.
func (l *LocalHist) FlushTo(h *Histogram) {
	if enabled.Load() {
		for i, n := range l.buckets {
			if n != 0 {
				h.buckets[i].Add(n)
			}
		}
		h.sum.Add(l.sum)
	}
	*l = LocalHist{}
}

// HistSnapshot is one histogram's state at snapshot time. Snapshots are
// plain values: mergeable (Merge) and reducible to quantile summaries.
type HistSnapshot struct {
	Name    string
	Count   uint64
	Sum     uint64
	Buckets [NumHistBuckets]uint64
}

// Merge adds another snapshot's observations into s (bucket-wise; the
// names need not match — merging partial snapshots of one logical series
// is the point).
func (s *HistSnapshot) Merge(o HistSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Mean returns the exact mean of all observations (the sum is tracked
// exactly, not reconstructed from buckets).
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper-bound estimate of the q-quantile (0 < q <= 1):
// the upper bound of the bucket holding the ceil(q*Count)-th smallest
// observation. For any true quantile value v > 0 the estimate e satisfies
// v <= e < 2v (one power-of-two bucket of slack).
func (s *HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if float64(rank) < q*float64(s.Count) || rank == 0 {
		rank++ // ceil, and at least the first observation
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for i, n := range s.Buckets {
		cum += n
		if cum >= rank {
			return BucketUpperBound(i)
		}
	}
	return s.MaxBound()
}

// MaxBound returns the upper bound of the highest non-empty bucket — the
// histogram's upper-bound estimate of the maximum observation.
func (s *HistSnapshot) MaxBound() uint64 {
	for i := NumHistBuckets - 1; i >= 0; i-- {
		if s.Buckets[i] != 0 {
			return BucketUpperBound(i)
		}
	}
	return 0
}

// Histograms captures every histogram with at least one observation,
// sorted by name.
func Histograms() []HistSnapshot {
	registry.Lock()
	out := make([]HistSnapshot, 0, len(registry.histograms))
	for _, h := range registry.histograms {
		if s := h.Snapshot(); s.Count != 0 {
			out = append(out, s)
		}
	}
	registry.Unlock()
	sortByName(out, func(s HistSnapshot) string { return s.Name })
	return out
}
