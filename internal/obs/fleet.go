package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
)

// HistBucket is one non-empty power-of-two bucket in the wire form of a
// histogram: Bit is the bucket index (bits.Len64 of the values it
// holds), N the observation count. Sparse by construction — a latency
// histogram touches a handful of its 65 buckets, so shipping pairs beats
// shipping the dense array.
type HistBucket struct {
	Bit int    `json:"bit"`
	N   uint64 `json:"n"`
}

// HistWire is a histogram snapshot in wire form (sparse buckets).
type HistWire struct {
	Name    string       `json:"name"`
	Sum     uint64       `json:"sum"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Dense converts the wire form back to a mergeable HistSnapshot.
func (h HistWire) Dense() HistSnapshot {
	s := HistSnapshot{Name: h.Name, Sum: h.Sum}
	for _, b := range h.Buckets {
		if b.Bit >= 0 && b.Bit < NumHistBuckets {
			s.Buckets[b.Bit] += b.N
			s.Count += b.N
		}
	}
	return s
}

// Wire converts a dense snapshot to the sparse wire form.
func (s HistSnapshot) Wire() HistWire {
	w := HistWire{Name: s.Name, Sum: s.Sum}
	for i, n := range s.Buckets {
		if n != 0 {
			w.Buckets = append(w.Buckets, HistBucket{Bit: i, N: n})
		}
	}
	return w
}

// RegistrySnapshot is one process's full metric registry at a point in
// time, in a JSON-serializable, mergeable form: the payload of the
// GET /fabric/v1/obs endpoint a coordinator scrapes from each worker.
type RegistrySnapshot struct {
	Counters []CounterSnapshot `json:"counters,omitempty"`
	Gauges   []GaugeSnapshot   `json:"gauges,omitempty"`
	Hists    []HistWire        `json:"histograms,omitempty"`
}

// CaptureRegistry snapshots every non-zero counter, gauge, and histogram
// of this process, sorted by name.
func CaptureRegistry() RegistrySnapshot {
	counters, gauges, _ := Snapshot()
	var s RegistrySnapshot
	s.Counters = counters
	s.Gauges = gauges
	for _, h := range Histograms() {
		s.Hists = append(s.Hists, h.Wire())
	}
	return s
}

// SnapshotHandler serves CaptureRegistry as JSON — the worker side of
// fleet metrics: one GET and the coordinator holds everything this
// process counts.
func SnapshotHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(CaptureRegistry())
	})
}

// fleet holds the most recent snapshot scraped from each worker, keyed
// by the worker's identity (its base URL). A worker that dies keeps its
// last snapshot — its tallies still happened and the aggregated series
// must not regress when it stops answering.
var fleet struct {
	sync.Mutex
	workers map[string]RegistrySnapshot
}

// PublishFleet stores worker's latest registry snapshot, replacing any
// earlier one. The coordinator calls this on every scrape tick; the
// Prometheus exposition folds the stored snapshots into mbavf_fleet_*
// series.
func PublishFleet(worker string, s RegistrySnapshot) {
	fleet.Lock()
	if fleet.workers == nil {
		fleet.workers = map[string]RegistrySnapshot{}
	}
	fleet.workers[worker] = s
	fleet.Unlock()
}

// FleetWorkers returns the identities with a published snapshot, sorted.
func FleetWorkers() []string {
	fleet.Lock()
	defer fleet.Unlock()
	out := make([]string, 0, len(fleet.workers))
	for w := range fleet.workers {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// resetFleet clears the scraped snapshots (part of Reset's lifecycle).
func resetFleet() {
	fleet.Lock()
	fleet.workers = nil
	fleet.Unlock()
}

// fleetSeries is the merged view the exposition renders: per metric
// name, the per-worker values and their sum.
type fleetSeries[T any] struct {
	name      string
	total     T
	perWorker []workerValue[T]
}

type workerValue[T any] struct {
	worker string
	value  T
}

// collectFleet folds the stored snapshots into sorted merged series.
func collectFleet() (counters []fleetSeries[uint64], gauges []fleetSeries[float64], hists []fleetSeries[HistSnapshot]) {
	fleet.Lock()
	workers := make([]string, 0, len(fleet.workers))
	for w := range fleet.workers {
		workers = append(workers, w)
	}
	sort.Strings(workers)

	cIdx := map[string]int{}
	gIdx := map[string]int{}
	hIdx := map[string]int{}
	for _, w := range workers {
		snap := fleet.workers[w]
		for _, c := range snap.Counters {
			i, ok := cIdx[c.Name]
			if !ok {
				i = len(counters)
				cIdx[c.Name] = i
				counters = append(counters, fleetSeries[uint64]{name: c.Name})
			}
			counters[i].total += c.Value
			counters[i].perWorker = append(counters[i].perWorker, workerValue[uint64]{w, c.Value})
		}
		for _, g := range snap.Gauges {
			i, ok := gIdx[g.Name]
			if !ok {
				i = len(gauges)
				gIdx[g.Name] = i
				gauges = append(gauges, fleetSeries[float64]{name: g.Name})
			}
			gauges[i].total += g.Value
			gauges[i].perWorker = append(gauges[i].perWorker, workerValue[float64]{w, g.Value})
		}
		for _, hw := range snap.Hists {
			h := hw.Dense()
			i, ok := hIdx[h.Name]
			if !ok {
				i = len(hists)
				hIdx[h.Name] = i
				hists = append(hists, fleetSeries[HistSnapshot]{name: h.Name})
			}
			hists[i].total.Merge(h)
			hists[i].perWorker = append(hists[i].perWorker, workerValue[HistSnapshot]{w, h})
		}
	}
	fleet.Unlock()
	sortByName(counters, func(s fleetSeries[uint64]) string { return s.name })
	sortByName(gauges, func(s fleetSeries[float64]) string { return s.name })
	sortByName(hists, func(s fleetSeries[HistSnapshot]) string { return s.name })
	return counters, gauges, hists
}
