package bitgeom

import (
	"testing"
	"testing/quick"
)

func TestGeometryIndexRoundTrip(t *testing.T) {
	g := Geometry{Rows: 7, Cols: 13}
	for i := 0; i < g.Bits(); i++ {
		p := g.Pos(i)
		if !g.Contains(p) {
			t.Fatalf("Pos(%d) = %v outside geometry", i, p)
		}
		if got := g.Index(p); got != i {
			t.Fatalf("Index(Pos(%d)) = %d", i, got)
		}
	}
	if g.Contains(BitPos{7, 0}) || g.Contains(BitPos{0, 13}) || g.Contains(BitPos{-1, 0}) {
		t.Error("Contains accepted out-of-bounds position")
	}
}

func TestMx1Paper4x1Example(t *testing.T) {
	// Figure 1: a 2x1 fault mode has 3 unique fault groups in a 4x1 array.
	g := Geometry{Rows: 1, Cols: 4}
	m := Mx1(2)
	if got := g.GroupCount(m); got != 3 {
		t.Fatalf("GroupCount(2x1 on 4x1) = %d, want 3", got)
	}
	want := [][]BitPos{
		{{0, 0}, {0, 1}},
		{{0, 1}, {0, 2}},
		{{0, 2}, {0, 3}},
	}
	g.ForEachGroup(m, func(i int, bits []BitPos) {
		for j, b := range bits {
			if b != want[i][j] {
				t.Errorf("group %d bit %d = %v, want %v", i, j, b, want[i][j])
			}
		}
	})
}

func TestMx1Names(t *testing.T) {
	for m := 1; m <= 8; m++ {
		fm := Mx1(m)
		if fm.Size() != m {
			t.Errorf("Mx1(%d).Size() = %d", m, fm.Size())
		}
		h, w := fm.Bounds()
		if h != 1 || w != m {
			t.Errorf("Mx1(%d).Bounds() = %d,%d", m, h, w)
		}
	}
	if Mx1(3).Name() != "3x1" {
		t.Errorf("Mx1(3).Name() = %q", Mx1(3).Name())
	}
}

func TestRect(t *testing.T) {
	m := Rect(2, 3)
	if m.Size() != 6 {
		t.Fatalf("Rect(2,3).Size() = %d, want 6", m.Size())
	}
	h, w := m.Bounds()
	if h != 2 || w != 3 {
		t.Errorf("Bounds = %d,%d, want 2,3", h, w)
	}
	g := Geometry{Rows: 4, Cols: 5}
	// anchors: (4-2+1) x (5-3+1) = 3x3 = 9
	if got := g.GroupCount(m); got != 9 {
		t.Errorf("GroupCount = %d, want 9", got)
	}
}

func TestCustomNormalization(t *testing.T) {
	m := Custom("L", []Offset{{2, 5}, {3, 5}, {3, 6}})
	offs := m.Offsets()
	if offs[0] != (Offset{0, 0}) || offs[1] != (Offset{1, 0}) || offs[2] != (Offset{1, 1}) {
		t.Errorf("normalization wrong: %v", offs)
	}
}

func TestCustomDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate offset")
		}
	}()
	Custom("dup", []Offset{{0, 0}, {1, 1}, {0, 0}})
}

func TestModeTooBigForArray(t *testing.T) {
	g := Geometry{Rows: 1, Cols: 4}
	if got := g.GroupCount(Mx1(5)); got != 0 {
		t.Errorf("GroupCount(5x1 on 1x4) = %d, want 0", got)
	}
	if got := g.GroupCount(Rect(2, 2)); got != 0 {
		t.Errorf("GroupCount(2x2 on 1x4) = %d, want 0", got)
	}
}

func TestGroupBitsInBounds(t *testing.T) {
	g := Geometry{Rows: 8, Cols: 64}
	for _, m := range []FaultMode{Mx1(2), Mx1(4), Mx1(8), Rect(2, 2), Custom("diag", []Offset{{0, 0}, {1, 1}})} {
		n := g.GroupCount(m)
		g.ForEachGroup(m, func(i int, bits []BitPos) {
			if len(bits) != m.Size() {
				t.Fatalf("%s group %d has %d bits, want %d", m.Name(), i, len(bits), m.Size())
			}
			for _, b := range bits {
				if !g.Contains(b) {
					t.Fatalf("%s group %d contains out-of-bounds bit %v", m.Name(), i, b)
				}
			}
		})
		if n != g.GroupCount(m) {
			t.Fatalf("GroupCount changed")
		}
	}
}

func TestQuickGroupCountFormula(t *testing.T) {
	f := func(rows, cols, m uint8) bool {
		g := Geometry{Rows: int(rows%16) + 1, Cols: int(cols%128) + 1}
		mode := Mx1(int(m%8) + 1)
		want := 0
		if g.Cols >= mode.Size() {
			want = g.Rows * (g.Cols - mode.Size() + 1)
		}
		return g.GroupCount(mode) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEveryBitCoveredByGroups(t *testing.T) {
	// Every bit of the array must appear in at least one Mx1 group when the
	// mode fits, and anchor enumeration must be exhaustive and unique.
	f := func(cols, msz uint8) bool {
		g := Geometry{Rows: 2, Cols: int(cols%32) + 8}
		m := Mx1(int(msz%4) + 1)
		covered := make([]int, g.Bits())
		seen := make(map[[2]int]bool)
		g.ForEachGroup(m, func(i int, bits []BitPos) {
			a := g.GroupAnchor(m, i)
			key := [2]int{a.Row, a.Col}
			if seen[key] {
				t.Fatalf("duplicate anchor %v", a)
			}
			seen[key] = true
			for _, b := range bits {
				covered[g.Index(b)]++
			}
		})
		for _, c := range covered {
			if c == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRowMask(t *testing.T) {
	cases := []struct {
		mode FaultMode
		mask uint64
		ok   bool
	}{
		{Mx1(1), 1, true},
		{Mx1(2), 0b11, true},
		{Mx1(5), 0b11111, true},
		{Mx1(64), ^uint64(0), true},
		{Mx1(65), 0, false},
		{Rect(2, 2), 0, false},
		{Custom("gap3", []Offset{{DRow: 0, DCol: 0}, {DRow: 0, DCol: 2}}), 0b101, true},
		{Custom("tall", []Offset{{DRow: 0, DCol: 0}, {DRow: 1, DCol: 0}}), 0, false},
	}
	for _, c := range cases {
		mask, ok := c.mode.RowMask()
		if mask != c.mask || ok != c.ok {
			t.Errorf("%s: RowMask = (%#x, %v), want (%#x, %v)", c.mode.Name(), mask, ok, c.mask, c.ok)
		}
	}
}

func TestAnchorsPerRow(t *testing.T) {
	g := Geometry{Rows: 4, Cols: 16}
	cases := []struct {
		mode FaultMode
		want int
	}{
		{Mx1(1), 16},
		{Mx1(4), 13},
		{Mx1(16), 1},
		{Mx1(17), 0},
		{Rect(2, 2), 15},
		{Rect(5, 1), 0},
	}
	for _, c := range cases {
		if got := g.AnchorsPerRow(c.mode); got != c.want {
			t.Errorf("%s: AnchorsPerRow = %d, want %d", c.mode.Name(), got, c.want)
		}
	}
	// The contract the packed solver's row sharding relies on: for
	// single-row modes, groups of row r are [r*ac, (r+1)*ac).
	mode := Mx1(3)
	ac := g.AnchorsPerRow(mode)
	if g.GroupCount(mode) != g.Rows*ac {
		t.Fatalf("GroupCount %d != Rows*AnchorsPerRow %d", g.GroupCount(mode), g.Rows*ac)
	}
	for i := 0; i < g.GroupCount(mode); i++ {
		a := g.GroupAnchor(mode, i)
		if a.Row != i/ac || a.Col != i%ac {
			t.Fatalf("group %d anchored at %+v, want row %d col %d", i, a, i/ac, i%ac)
		}
	}
}
