// Package bitgeom models the physical layout of an SRAM array and the
// geometry of spatial multi-bit fault modes.
//
// Following the paper's terminology (Section IV-A), a fault mode is a
// specific multi-bit flip pattern (e.g. a 3x1 fault: three consecutive bits
// along one wordline) and a fault group is a concrete set of bits in a
// structure matching that pattern. A 2x1 mode on a 4x1 array has three
// fault groups (Figure 1); groups do not wrap around array edges.
package bitgeom

import (
	"fmt"
	"strconv"
)

// Geometry describes a physical SRAM array as Rows wordlines by Cols bit
// columns. Bit (0,0) is the top-left bit; bits along a row are physically
// adjacent, which is the adjacency that matters for the dominant Mx1
// spatial multi-bit fault modes.
type Geometry struct {
	Rows, Cols int
}

// Bits returns the total number of bits in the array.
func (g Geometry) Bits() int { return g.Rows * g.Cols }

// BitPos identifies a single physical bit position.
type BitPos struct {
	Row, Col int
}

// Index returns the linear index of p in row-major order.
func (g Geometry) Index(p BitPos) int { return p.Row*g.Cols + p.Col }

// Pos returns the position of linear index i.
func (g Geometry) Pos(i int) BitPos { return BitPos{Row: i / g.Cols, Col: i % g.Cols} }

// Contains reports whether p lies inside the array.
func (g Geometry) Contains(p BitPos) bool {
	return p.Row >= 0 && p.Row < g.Rows && p.Col >= 0 && p.Col < g.Cols
}

// Offset is a bit position relative to a fault group's anchor bit.
type Offset struct {
	DRow, DCol int
}

// FaultMode is a specific spatial multi-bit fault geometry: the set of bit
// offsets, relative to an anchor, that flip together when a fault of this
// mode strikes. Offsets are normalized so the minimum row and column
// offsets are zero.
type FaultMode struct {
	name    string
	offsets []Offset
	height  int // max DRow + 1
	width   int // max DCol + 1
}

// Mx1 returns the contiguous m-bits-along-a-wordline fault mode ("mx1"),
// the dominant spatial fault geometry observed in SRAM testing. m must be
// at least 1; Mx1(1) is the single-bit "fault mode".
func Mx1(m int) FaultMode {
	if m < 1 {
		panic("bitgeom: Mx1 requires m >= 1")
	}
	offs := make([]Offset, m)
	for i := range offs {
		offs[i] = Offset{0, i}
	}
	return newMode(strconv.Itoa(m)+"x1", offs)
}

// Rect returns a solid h-rows by w-columns rectangular fault mode ("hxw"
// with h rows and w columns, named as in the paper: a 3x1 fault is 3 bits
// along one wordline, so Rect(1, 3) is named "3x1").
func Rect(h, w int) FaultMode {
	if h < 1 || w < 1 {
		panic("bitgeom: Rect requires h, w >= 1")
	}
	offs := make([]Offset, 0, h*w)
	for r := 0; r < h; r++ {
		for c := 0; c < w; c++ {
			offs = append(offs, Offset{r, c})
		}
	}
	return newMode(fmt.Sprintf("%dx%d", w, h), offs)
}

// Custom returns a fault mode with an arbitrary (possibly non-contiguous)
// offset pattern. Offsets are normalized; duplicates panic.
func Custom(name string, offs []Offset) FaultMode {
	return newMode(name, append([]Offset(nil), offs...))
}

func newMode(name string, offs []Offset) FaultMode {
	if len(offs) == 0 {
		panic("bitgeom: fault mode needs at least one offset")
	}
	minR, minC := offs[0].DRow, offs[0].DCol
	for _, o := range offs {
		minR = min(minR, o.DRow)
		minC = min(minC, o.DCol)
	}
	seen := make(map[Offset]bool, len(offs))
	maxR, maxC := 0, 0
	for i := range offs {
		offs[i].DRow -= minR
		offs[i].DCol -= minC
		if seen[offs[i]] {
			panic("bitgeom: duplicate offset in fault mode " + name)
		}
		seen[offs[i]] = true
		maxR = max(maxR, offs[i].DRow)
		maxC = max(maxC, offs[i].DCol)
	}
	return FaultMode{name: name, offsets: offs, height: maxR + 1, width: maxC + 1}
}

// Name returns the mode's display name (e.g. "3x1").
func (m FaultMode) Name() string { return m.name }

// Size returns the number of bits flipped by a fault of this mode.
func (m FaultMode) Size() int { return len(m.offsets) }

// Offsets returns the normalized offsets. The slice is owned by the mode
// and must not be modified.
func (m FaultMode) Offsets() []Offset { return m.offsets }

// Bounds returns the bounding-box height (rows) and width (columns) of the
// mode's pattern.
func (m FaultMode) Bounds() (h, w int) { return m.height, m.width }

// RowMask returns the mode's offset pattern packed into a 64-bit word
// mask relative to the anchor column — bit j is set iff the mode flips
// the bit j columns right of the anchor — and whether the mode is
// row-packable at all: a single-wordline pattern whose bounding width
// fits one 64-bit word. The word-packed ACE solver uses this mask to
// intersect fault groups with occupancy words instead of walking bits.
func (m FaultMode) RowMask() (uint64, bool) {
	if m.height != 1 || m.width > 64 {
		return 0, false
	}
	var mask uint64
	for _, o := range m.offsets {
		mask |= uint64(1) << o.DCol
	}
	return mask, true
}

// AnchorsPerRow returns the number of fault-group anchor positions per
// wordline for mode m (zero when the mode does not fit the geometry).
// For single-row modes GroupCount = Rows * AnchorsPerRow and the groups
// of row r are exactly indices [r*AnchorsPerRow, (r+1)*AnchorsPerRow) —
// the contract the row-sharded packed solver relies on.
func (g Geometry) AnchorsPerRow(m FaultMode) int {
	ac := g.Cols - m.width + 1
	if ac <= 0 || g.Rows-m.height+1 <= 0 {
		return 0
	}
	return ac
}

// GroupCount returns the number of unique fault groups of mode m in the
// array: every anchor position whose full pattern fits in-bounds.
func (g Geometry) GroupCount(m FaultMode) int {
	ar := g.Rows - m.height + 1
	ac := g.Cols - m.width + 1
	if ar <= 0 || ac <= 0 {
		return 0
	}
	return ar * ac
}

// GroupAnchor returns the anchor position of fault group i (0-based, in
// row-major anchor order).
func (g Geometry) GroupAnchor(m FaultMode, i int) BitPos {
	ac := g.Cols - m.width + 1
	return BitPos{Row: i / ac, Col: i % ac}
}

// GroupBits appends the absolute bit positions of fault group i to buf and
// returns the extended slice. Bits are in the mode's offset order.
func (g Geometry) GroupBits(m FaultMode, i int, buf []BitPos) []BitPos {
	a := g.GroupAnchor(m, i)
	for _, o := range m.offsets {
		buf = append(buf, BitPos{Row: a.Row + o.DRow, Col: a.Col + o.DCol})
	}
	return buf
}

// ForEachGroup calls fn for every fault group of mode m, passing the group
// index and its bit positions. The bits slice is reused between calls and
// must not be retained.
func (g Geometry) ForEachGroup(m FaultMode, fn func(i int, bits []BitPos)) {
	n := g.GroupCount(m)
	buf := make([]BitPos, 0, m.Size())
	for i := 0; i < n; i++ {
		buf = g.GroupBits(m, i, buf[:0])
		fn(i, buf)
	}
}
