package gpu

import (
	"strings"
	"testing"

	"mbavf/internal/cache"
	"mbavf/internal/mem"
)

const vecaddAsm = `
; c[i] = a[i] + b[i]; s0=&a s1=&b s2=&c
v_mov   v0, tid
v_shl   v0, v0, 2
v_add   v1, v0, s0
v_load  v2, [v1+0]
v_add   v1, v0, s1
v_load  v3, [v1]
v_add   v4, v2, v3
v_add   v1, v0, s2
v_store [v1+0], v4
s_endpgm
`

func TestAssembleAndRun(t *testing.T) {
	prog, err := Assemble("vecadd", vecaddAsm)
	if err != nil {
		t.Fatal(err)
	}
	memory := mem.New(1 << 16)
	hier, err := cache.NewHierarchy(cache.DefaultHierConfig(), memory)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(DefaultConfig(), memory, hier)
	if err != nil {
		t.Fatal(err)
	}
	a := make([]uint32, Lanes)
	bv := make([]uint32, Lanes)
	for i := range a {
		a[i] = uint32(10 * i)
		bv[i] = uint32(i)
	}
	if err := memory.SetInputWords(nil, 0x1000, a); err != nil {
		t.Fatal(err)
	}
	if err := memory.SetInputWords(nil, 0x2000, bv); err != nil {
		t.Fatal(err)
	}
	if err := m.RunDispatch(Dispatch{Prog: prog, Waves: 1, Args: []uint32{0x1000, 0x2000, 0x3000}}); err != nil {
		t.Fatal(err)
	}
	out, _ := memory.Words(0x3000, Lanes)
	for i, v := range out {
		if v != uint32(11*i) {
			t.Errorf("c[%d] = %d, want %d", i, v, 11*i)
		}
	}
}

func TestAssembleControlFlow(t *testing.T) {
	src := `
s_mov s1, 5
s_mov s2, 0
top:
s_add s2, s2, s1
s_sub s1, s1, 1
s_brnz s1, top
v_mov v14, s2
v_shl v15, lane, 2
v_add v15, v15, s0
v_store [v15], v14
`
	prog, err := Assemble("loop", src)
	if err != nil {
		t.Fatal(err)
	}
	memory := mem.New(1 << 12)
	hier, _ := cache.NewHierarchy(cache.DefaultHierConfig(), memory)
	m, _ := New(DefaultConfig(), memory, hier)
	if err := m.RunDispatch(Dispatch{Prog: prog, Waves: 1, Args: []uint32{0x100}}); err != nil {
		t.Fatal(err)
	}
	out, _ := memory.Words(0x100, 1)
	if out[0] != 15 {
		t.Errorf("sum = %d, want 15", out[0])
	}
}

func TestAssembleDivergenceAndFloats(t *testing.T) {
	src := `
v_mov v0, lane
v_cmp_lt v0, 8
s_if_vcc
v_mov v14, 1.5f
s_else
v_mov v14, 2.5f
s_endif
v_shl v15, v0, 2
v_add v15, v15, s0
v_store [v15+0], v14
`
	prog, err := Assemble("diverge", src)
	if err != nil {
		t.Fatal(err)
	}
	memory := mem.New(1 << 12)
	hier, _ := cache.NewHierarchy(cache.DefaultHierConfig(), memory)
	m, _ := New(DefaultConfig(), memory, hier)
	if err := m.RunDispatch(Dispatch{Prog: prog, Waves: 1, Args: []uint32{0x100}}); err != nil {
		t.Fatal(err)
	}
	out, _ := memory.Words(0x100, Lanes)
	for lane, v := range out {
		want := float32(1.5)
		if lane >= 8 {
			want = 2.5
		}
		if f32from(v) != want {
			t.Errorf("lane %d = %v, want %v", lane, f32from(v), want)
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"mnemonic", "v_bogus v0, v1", "unknown mnemonic"},
		{"operand count", "v_add v0", "operands"},
		{"bad operand", "v_add v0, v1, @", "bad operand"},
		{"bad mem", "v_load v0, v1", "[reg+offset]"},
		{"empty mem", "v_load v0, []", "empty memory operand"},
		{"scalar addr", "v_load v0, [s1+0]", "vector register"},
		{"empty label", ":", "empty label"},
		{"bad float", "v_mov v0, 1.x5f", "bad float"},
		{"undefined label", "s_branch nowhere", "undefined label"},
		{"huge imm", "v_mov v0, 99999999999", "out of 32-bit range"},
	}
	for _, c := range cases {
		_, err := Assemble(c.name, c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want contains %q", c.name, err, c.want)
		}
	}
}

func TestHexAndNegativeImmediates(t *testing.T) {
	prog, err := Assemble("imm", `
v_mov v14, 0xFF
v_add v14, v14, -55
v_shl v15, lane, 2
v_add v15, v15, s0
v_store [v15], v14
`)
	if err != nil {
		t.Fatal(err)
	}
	memory := mem.New(1 << 12)
	hier, _ := cache.NewHierarchy(cache.DefaultHierConfig(), memory)
	m, _ := New(DefaultConfig(), memory, hier)
	if err := m.RunDispatch(Dispatch{Prog: prog, Waves: 1, Args: []uint32{0x100}}); err != nil {
		t.Fatal(err)
	}
	out, _ := memory.Words(0x100, 1)
	if out[0] != 200 {
		t.Errorf("result = %d, want 200", out[0])
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	prog, err := Assemble("rt", vecaddAsm+`
s_mov s3, 3
again:
v_cmp_eq v0, 0
s_if_vcc
v_loadb v5, [v1+2]
v_storeb [v1+3], v5
s_endif
s_sub s3, s3, 1
s_brnz s3, again
`)
	if err != nil {
		t.Fatal(err)
	}
	text := Disassemble(prog)
	prog2, err := Assemble("rt2", text)
	if err != nil {
		t.Fatalf("disassembly does not re-assemble: %v\n%s", err, text)
	}
	if len(prog2.Code) != len(prog.Code) {
		t.Fatalf("instruction count changed: %d vs %d", len(prog2.Code), len(prog.Code))
	}
	for i := range prog.Code {
		if prog.Code[i] != prog2.Code[i] {
			t.Errorf("instr %d differs:\n %v\n %v", i, prog.Code[i], prog2.Code[i])
		}
	}
}
