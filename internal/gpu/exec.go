package gpu

import (
	"errors"
	"fmt"
	"math"

	"mbavf/internal/dataflow"
)

func f32bits(f float32) uint32 { return math.Float32bits(f) }
func f32from(b uint32) float32 { return math.Float32frombits(b) }
func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

var errScalarOperand = errors.New("vector register used in scalar context")

// newVer records a dataflow version, or returns ground when no graph is
// attached (injection runs disable dataflow).
func (m *Machine) newVer(t dataflow.Transfer, aux, aux2 uint32, deps ...dataflow.VersionID) dataflow.VersionID {
	if m.graph == nil {
		return 0
	}
	return m.graph.New2(t, aux, aux2, deps...)
}

func (m *Machine) rootLive(v dataflow.VersionID, mask uint32) {
	if m.graph != nil {
		m.graph.MarkRootLive(v, mask)
	}
}

func (m *Machine) noteRead(v dataflow.VersionID, t uint64) {
	if m.graph != nil {
		m.graph.NoteRead(v, t)
	}
}

// readV fetches a vector-context operand for one lane.
func (m *Machine) readV(w *wave, lane int, o Operand, t uint64) (uint32, dataflow.VersionID) {
	switch o.Kind {
	case OpdVReg:
		idx := int(o.Val)*Lanes + lane
		if m.vgprTracker != nil && w.cu == m.trackCU {
			word := m.vgprWord(w.slot, lane, int(o.Val))
			for b := 0; b < 4; b++ {
				m.vgprTracker.Read(word, b, t)
			}
		}
		return w.vreg[idx], w.vregVer[idx]
	case OpdSReg:
		return w.sreg[o.Val], 0
	case OpdImm:
		return uint32(o.Val), 0
	case OpdLane:
		return uint32(lane), 0
	case OpdWave:
		return uint32(w.id), 0
	case OpdTid:
		return uint32(w.id*Lanes + lane), 0
	default:
		return 0, 0
	}
}

// writeV writes a vector register for one lane.
func (m *Machine) writeV(w *wave, lane, reg int, val uint32, ver dataflow.VersionID, t uint64) {
	idx := reg*Lanes + lane
	w.vreg[idx] = val
	w.vregVer[idx] = ver
	if m.vgprTracker != nil && w.cu == m.trackCU {
		word := m.vgprWord(w.slot, lane, reg)
		for b := 0; b < 4; b++ {
			m.vgprTracker.Open(word, b, t, ver)
		}
	}
}

// readS fetches a scalar-context operand.
func (m *Machine) readS(w *wave, o Operand) (uint32, error) {
	switch o.Kind {
	case OpdSReg:
		return w.sreg[o.Val], nil
	case OpdImm:
		return uint32(o.Val), nil
	case OpdWave:
		return uint32(w.id), nil
	case OpdNone:
		return 0, nil
	default:
		return 0, errScalarOperand
	}
}

func latencyOf(op Opcode) uint64 {
	switch op {
	case OpVFDiv, OpVFSqrt, OpVFExp:
		return 8
	case OpVFAdd, OpVFSub, OpVFMul, OpVFMad, OpVFMin, OpVFMax, OpVI2F, OpVF2I:
		return 2
	default:
		return 1
	}
}

// step executes one instruction of wave w issued at cycle t, returning its
// latency.
func (m *Machine) step(w *wave, t uint64) (uint64, error) {
	in := w.prog.Code[w.pc]
	next := w.pc + 1
	lat := latencyOf(in.Op)
	w.instrs++

	switch in.Op {
	case OpNop:

	case OpEndPgm:
		w.done = true

	case OpVMov, OpVNot, OpVI2F, OpVF2I, OpVFSqrt, OpVFExp:
		if err := needVDst(in); err != nil {
			return 0, err
		}
		for lane := 0; lane < Lanes; lane++ {
			if w.exec&(1<<lane) == 0 {
				continue
			}
			a, av := m.readV(w, lane, in.Src[0], t)
			var res uint32
			var ver dataflow.VersionID
			switch in.Op {
			case OpVMov:
				res = a
				if av != 0 {
					ver = m.newVer(dataflow.TransferMove, 0, 0, av)
				} else {
					ver = m.newVer(dataflow.TransferNone, 0, 0)
				}
			case OpVNot:
				res = ^a
				ver = m.newVer(dataflow.TransferMove, 0, 0, av)
			case OpVI2F:
				res = f32bits(float32(int32(a)))
				ver = m.newVer(dataflow.TransferAll, 0, 0, av)
			case OpVF2I:
				f := f32from(a)
				if f != f { // NaN
					f = 0
				}
				res = uint32(int32(f))
				ver = m.newVer(dataflow.TransferAll, 0, 0, av)
			case OpVFSqrt:
				res = f32bits(float32(math.Sqrt(float64(f32from(a)))))
				ver = m.newVer(dataflow.TransferAll, 0, 0, av)
			case OpVFExp:
				res = f32bits(float32(math.Exp(float64(f32from(a)))))
				ver = m.newVer(dataflow.TransferAll, 0, 0, av)
			}
			m.writeV(w, lane, int(in.Dst.Val), res, ver, t)
		}

	case OpVAdd, OpVSub, OpVMul, OpVAnd, OpVOr, OpVXor, OpVShl, OpVShr, OpVAshr,
		OpVMin, OpVMax, OpVFAdd, OpVFSub, OpVFMul, OpVFDiv, OpVFMin, OpVFMax:
		if err := needVDst(in); err != nil {
			return 0, err
		}
		for lane := 0; lane < Lanes; lane++ {
			if w.exec&(1<<lane) == 0 {
				continue
			}
			a, av := m.readV(w, lane, in.Src[0], t)
			b, bv := m.readV(w, lane, in.Src[1], t)
			res, ver := m.execBinary(in.Op, a, b, av, bv)
			m.writeV(w, lane, int(in.Dst.Val), res, ver, t)
		}

	case OpVMad, OpVFMad:
		if err := needVDst(in); err != nil {
			return 0, err
		}
		for lane := 0; lane < Lanes; lane++ {
			if w.exec&(1<<lane) == 0 {
				continue
			}
			a, av := m.readV(w, lane, in.Src[0], t)
			b, bv := m.readV(w, lane, in.Src[1], t)
			c, cv := m.readV(w, lane, in.Src[2], t)
			var res uint32
			if in.Op == OpVMad {
				res = a*b + c
			} else {
				res = f32bits(f32from(a)*f32from(b) + f32from(c))
			}
			ver := m.newVer(dataflow.TransferAll, 0, 0, av, bv, cv)
			m.writeV(w, lane, int(in.Dst.Val), res, ver, t)
		}

	case OpVCndMask:
		if err := needVDst(in); err != nil {
			return 0, err
		}
		for lane := 0; lane < Lanes; lane++ {
			if w.exec&(1<<lane) == 0 {
				continue
			}
			a, av := m.readV(w, lane, in.Src[0], t)
			b, bv := m.readV(w, lane, in.Src[1], t)
			res, chosen := b, bv
			if w.vcc&(1<<lane) != 0 {
				res, chosen = a, av
			}
			ver := m.newVer(dataflow.TransferSelect, 0, 0, chosen, w.vccVer[lane])
			m.writeV(w, lane, int(in.Dst.Val), res, ver, t)
		}

	case OpVCmpEQ, OpVCmpNE, OpVCmpLT, OpVCmpLE, OpVCmpGT, OpVCmpGE, OpVCmpFLT, OpVCmpFGE:
		for lane := 0; lane < Lanes; lane++ {
			if w.exec&(1<<lane) == 0 {
				continue
			}
			a, av := m.readV(w, lane, in.Src[0], t)
			b, bv := m.readV(w, lane, in.Src[1], t)
			var bit bool
			switch in.Op {
			case OpVCmpEQ:
				bit = a == b
			case OpVCmpNE:
				bit = a != b
			case OpVCmpLT:
				bit = int32(a) < int32(b)
			case OpVCmpLE:
				bit = int32(a) <= int32(b)
			case OpVCmpGT:
				bit = int32(a) > int32(b)
			case OpVCmpGE:
				bit = int32(a) >= int32(b)
			case OpVCmpFLT:
				bit = f32from(a) < f32from(b)
			case OpVCmpFGE:
				bit = f32from(a) >= f32from(b)
			}
			if bit {
				w.vcc |= 1 << lane
			} else {
				w.vcc &^= 1 << lane
			}
			w.vccVer[lane] = m.newVer(dataflow.TransferAll, 0, 0, av, bv)
		}

	case OpVLoad, OpVLoadB:
		if err := needVDst(in); err != nil {
			return 0, err
		}
		var err error
		lat, err = m.execLoad(w, in, t)
		if err != nil {
			return 0, err
		}

	case OpVStore, OpVStoreB:
		var err error
		lat, err = m.execStore(w, in, t)
		if err != nil {
			return 0, err
		}

	case OpIfVCC:
		entry := execEntry{saved: w.exec, thenMask: w.exec & w.vcc}
		if m.graph != nil {
			for lane := 0; lane < Lanes; lane++ {
				if entry.saved&(1<<lane) != 0 {
					m.graph.MarkRootLive(w.vccVer[lane], 1)
				}
			}
		}
		w.stack = append(w.stack, entry)
		w.exec = entry.thenMask

	case OpElse:
		if len(w.stack) == 0 {
			return 0, errors.New("ELSE with empty divergence stack")
		}
		top := w.stack[len(w.stack)-1]
		w.exec = top.saved &^ top.thenMask

	case OpEndIf:
		if len(w.stack) == 0 {
			return 0, errors.New("ENDIF with empty divergence stack")
		}
		w.exec = w.stack[len(w.stack)-1].saved
		w.stack = w.stack[:len(w.stack)-1]

	case OpSMov, OpSAdd, OpSSub, OpSMul, OpSShl, OpSShr, OpSAnd, OpSSlt:
		if in.Dst.Kind != OpdSReg {
			return 0, fmt.Errorf("scalar op %v needs scalar destination", in.Op)
		}
		a, err := m.readS(w, in.Src[0])
		if err != nil {
			return 0, err
		}
		b, err := m.readS(w, in.Src[1])
		if err != nil {
			return 0, err
		}
		var res uint32
		switch in.Op {
		case OpSMov:
			res = a
		case OpSAdd:
			res = a + b
		case OpSSub:
			res = a - b
		case OpSMul:
			res = a * b
		case OpSShl:
			res = a << (b & 31)
		case OpSShr:
			res = a >> (b & 31)
		case OpSAnd:
			res = a & b
		case OpSSlt:
			res = b2u(int32(a) < int32(b))
		}
		w.sreg[in.Dst.Val] = res

	case OpBr:
		next = int(in.Target)

	case OpBrz, OpBrnz:
		c, err := m.readS(w, in.Src[0])
		if err != nil {
			return 0, err
		}
		if (in.Op == OpBrz) == (c == 0) {
			next = int(in.Target)
		}

	default:
		return 0, fmt.Errorf("unimplemented opcode %v", in.Op)
	}

	if next < 0 || next > len(w.prog.Code) {
		return 0, fmt.Errorf("branch target %d out of program", next)
	}
	w.pc = next
	return lat, nil
}

func needVDst(in Instr) error {
	if in.Dst.Kind != OpdVReg {
		return fmt.Errorf("op %v needs vector destination", in.Op)
	}
	return nil
}

// execBinary computes a two-source vector ALU op and its dataflow version.
func (m *Machine) execBinary(op Opcode, a, b uint32, av, bv dataflow.VersionID) (uint32, dataflow.VersionID) {
	var res uint32
	var ver dataflow.VersionID
	switch op {
	case OpVAdd:
		res = a + b
		ver = m.newVer(dataflow.TransferArith, 0, 0, av, bv)
	case OpVSub:
		res = a - b
		ver = m.newVer(dataflow.TransferArith, 0, 0, av, bv)
	case OpVMul:
		res = a * b
		ver = m.newVer(dataflow.TransferAll, 0, 0, av, bv)
	case OpVAnd:
		res = a & b
		ver = m.newVer(dataflow.TransferAnd, b, a, av, bv)
	case OpVOr:
		res = a | b
		ver = m.newVer(dataflow.TransferOr, b, a, av, bv)
	case OpVXor:
		res = a ^ b
		ver = m.newVer(dataflow.TransferMove, 0, 0, av, bv)
	case OpVShl:
		res = a << (b & 31)
		ver = m.newVer(dataflow.TransferShl, b&31, 0, av, bv)
	case OpVShr:
		res = a >> (b & 31)
		ver = m.newVer(dataflow.TransferShr, b&31, 0, av, bv)
	case OpVAshr:
		res = uint32(int32(a) >> (b & 31))
		ver = m.newVer(dataflow.TransferAll, 0, 0, av, bv)
	case OpVMin:
		res = uint32(min(int32(a), int32(b)))
		ver = m.newVer(dataflow.TransferAll, 0, 0, av, bv)
	case OpVMax:
		res = uint32(max(int32(a), int32(b)))
		ver = m.newVer(dataflow.TransferAll, 0, 0, av, bv)
	case OpVFAdd:
		res = f32bits(f32from(a) + f32from(b))
		ver = m.newVer(dataflow.TransferAll, 0, 0, av, bv)
	case OpVFSub:
		res = f32bits(f32from(a) - f32from(b))
		ver = m.newVer(dataflow.TransferAll, 0, 0, av, bv)
	case OpVFMul:
		res = f32bits(f32from(a) * f32from(b))
		ver = m.newVer(dataflow.TransferAll, 0, 0, av, bv)
	case OpVFDiv:
		res = f32bits(f32from(a) / f32from(b))
		ver = m.newVer(dataflow.TransferAll, 0, 0, av, bv)
	case OpVFMin:
		res = f32bits(float32(math.Min(float64(f32from(a)), float64(f32from(b)))))
		ver = m.newVer(dataflow.TransferAll, 0, 0, av, bv)
	case OpVFMax:
		res = f32bits(float32(math.Max(float64(f32from(a)), float64(f32from(b)))))
		ver = m.newVer(dataflow.TransferAll, 0, 0, av, bv)
	}
	return res, ver
}

func (m *Machine) execLoad(w *wave, in Instr, t uint64) (uint64, error) {
	size := 4
	if in.Op == OpVLoadB {
		size = 1
	}
	lat := uint64(1)
	for lane := 0; lane < Lanes; lane++ {
		if w.exec&(1<<lane) == 0 {
			continue
		}
		base, bver := m.readV(w, lane, in.Src[0], t)
		m.rootLive(bver, ^uint32(0)) // address bits are conservatively live
		addr := base + uint32(in.Src[1].Val)
		var val uint32
		var ver dataflow.VersionID
		if size == 4 {
			if addr%4 != 0 {
				return 0, trapf(TrapMisaligned, "misaligned 32-bit load at %#x", addr)
			}
			v, vers, err := m.memory.LoadWord(addr)
			if err != nil {
				return 0, &TrapError{Kind: TrapBadAddress, Err: err}
			}
			val = v
			for _, bv := range vers {
				m.noteRead(bv, t)
			}
			ver = m.newVer(dataflow.TransferAssemble, 0, 0, vers[0], vers[1], vers[2], vers[3])
		} else {
			bval, bv, err := m.memory.LoadByte(addr)
			if err != nil {
				return 0, &TrapError{Kind: TrapBadAddress, Err: err}
			}
			val = uint32(bval)
			m.noteRead(bv, t)
			ver = m.newVer(dataflow.TransferAssemble, 0, 0, bv)
		}
		l := m.caches.Load(w.cu, addr, size, t)
		lat = max(lat, l)
		m.writeV(w, lane, int(in.Dst.Val), val, ver, t)
	}
	return lat, nil
}

func (m *Machine) execStore(w *wave, in Instr, t uint64) (uint64, error) {
	size := 4
	if in.Op == OpVStoreB {
		size = 1
	}
	lat := uint64(1)
	for lane := 0; lane < Lanes; lane++ {
		if w.exec&(1<<lane) == 0 {
			continue
		}
		base, bver := m.readV(w, lane, in.Src[0], t)
		m.rootLive(bver, ^uint32(0))
		addr := base + uint32(in.Src[1].Val)
		val, vver := m.readV(w, lane, in.Src[2], t)
		if size == 4 {
			if addr%4 != 0 {
				return 0, trapf(TrapMisaligned, "misaligned 32-bit store at %#x", addr)
			}
			var bvers [4]dataflow.VersionID
			for k := 0; k < 4; k++ {
				bvers[k] = m.newVer(dataflow.TransferByte, uint32(k), 0, vver)
			}
			l := m.caches.Store(w.cu, addr, 4, t, bvers[:])
			lat = max(lat, l)
			if err := m.memory.StoreWord(addr, val, bvers); err != nil {
				return 0, &TrapError{Kind: TrapBadAddress, Err: err}
			}
		} else {
			bver := m.newVer(dataflow.TransferByte, 0, 0, vver)
			l := m.caches.Store(w.cu, addr, 1, t, []dataflow.VersionID{bver})
			lat = max(lat, l)
			if err := m.memory.StoreByte(addr, byte(val), bver); err != nil {
				return 0, &TrapError{Kind: TrapBadAddress, Err: err}
			}
		}
	}
	return lat, nil
}
