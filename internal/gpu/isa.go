// Package gpu implements the GPU compute model of the APU simulator: a
// SIMD machine of compute units executing 16-lane wavefronts over a small
// vector/scalar ISA, with per-lane 32-bit vector general-purpose registers
// (the VGPR file whose vulnerability the paper's case study analyzes),
// EXEC-mask structured divergence, and loads/stores routed through the
// cache hierarchy.
package gpu

import "fmt"

// Lanes is the wavefront width: the paper's model operates on 16 threads
// at a time, and inter-thread register interleaving happens within these
// groups of 16.
const Lanes = 16

// Opcode enumerates the ISA.
type Opcode uint8

const (
	OpNop Opcode = iota

	// Vector ALU (per active lane, 32-bit).
	OpVMov     // dst = src0
	OpVAdd     // dst = src0 + src1
	OpVSub     // dst = src0 - src1
	OpVMul     // dst = src0 * src1 (low 32 bits)
	OpVMad     // dst = src0*src1 + src2
	OpVAnd     // dst = src0 & src1
	OpVOr      // dst = src0 | src1
	OpVXor     // dst = src0 ^ src1
	OpVNot     // dst = ^src0
	OpVShl     // dst = src0 << (src1 & 31)
	OpVShr     // dst = src0 >> (src1 & 31) logical
	OpVAshr    // dst = int32(src0) >> (src1 & 31)
	OpVMin     // dst = min(int32(src0), int32(src1))
	OpVMax     // dst = max(int32(src0), int32(src1))
	OpVCndMask // dst = VCC[lane] ? src0 : src1

	// Vector compares: write per-lane bits of VCC.
	OpVCmpEQ
	OpVCmpNE
	OpVCmpLT // signed
	OpVCmpLE
	OpVCmpGT
	OpVCmpGE
	OpVCmpFLT // float <
	OpVCmpFGE // float >=

	// Vector float (IEEE-754 single precision on the raw register bits).
	OpVFAdd
	OpVFSub
	OpVFMul
	OpVFMad // dst = src0*src1 + src2
	OpVFDiv
	OpVFSqrt
	OpVFExp // e^x
	OpVFMin
	OpVFMax
	OpVI2F // int32 -> float
	OpVF2I // float -> int32 (truncate)

	// Vector memory. Addresses are per-lane byte addresses from src0 plus
	// the signed immediate in src1; word accesses must be 4-byte aligned.
	OpVLoad   // dst = mem32[src0 + imm]
	OpVStore  // mem32[src0 + imm] = src2
	OpVLoadB  // dst = zext(mem8[src0 + imm])
	OpVStoreB // mem8[src0 + imm] = src2 & 0xFF

	// Structured divergence on VCC.
	OpIfVCC // push exec; exec &= VCC
	OpElse  // exec = saved & ^then-mask
	OpEndIf // pop exec

	// Scalar (wavefront-uniform) ALU and control.
	OpSMov // sdst = src0
	OpSAdd // sdst = src0 + src1
	OpSSub
	OpSMul
	OpSShl
	OpSShr
	OpSAnd
	OpSSlt // sdst = (int32(src0) < int32(src1)) ? 1 : 0
	OpBr   // pc = target
	OpBrz  // if src0 == 0: pc = target
	OpBrnz // if src0 != 0: pc = target

	// OpEndPgm terminates the wavefront.
	OpEndPgm
)

var opNames = map[Opcode]string{
	OpNop:  "nop",
	OpVMov: "v_mov", OpVAdd: "v_add", OpVSub: "v_sub", OpVMul: "v_mul",
	OpVMad: "v_mad", OpVAnd: "v_and", OpVOr: "v_or", OpVXor: "v_xor",
	OpVNot: "v_not", OpVShl: "v_shl", OpVShr: "v_shr", OpVAshr: "v_ashr",
	OpVMin: "v_min", OpVMax: "v_max", OpVCndMask: "v_cndmask",
	OpVCmpEQ: "v_cmp_eq", OpVCmpNE: "v_cmp_ne", OpVCmpLT: "v_cmp_lt",
	OpVCmpLE: "v_cmp_le", OpVCmpGT: "v_cmp_gt", OpVCmpGE: "v_cmp_ge",
	OpVCmpFLT: "v_cmp_flt", OpVCmpFGE: "v_cmp_fge",
	OpVFAdd: "v_fadd", OpVFSub: "v_fsub", OpVFMul: "v_fmul", OpVFMad: "v_fmad",
	OpVFDiv: "v_fdiv", OpVFSqrt: "v_fsqrt", OpVFExp: "v_fexp",
	OpVFMin: "v_fmin", OpVFMax: "v_fmax", OpVI2F: "v_i2f", OpVF2I: "v_f2i",
	OpVLoad: "v_load", OpVStore: "v_store", OpVLoadB: "v_loadb", OpVStoreB: "v_storeb",
	OpIfVCC: "s_if_vcc", OpElse: "s_else", OpEndIf: "s_endif",
	OpSMov: "s_mov", OpSAdd: "s_add", OpSSub: "s_sub", OpSMul: "s_mul",
	OpSShl: "s_shl", OpSShr: "s_shr", OpSAnd: "s_and", OpSSlt: "s_slt",
	OpBr: "s_branch", OpBrz: "s_brz", OpBrnz: "s_brnz",
	OpEndPgm: "s_endpgm",
}

func (o Opcode) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("Opcode(%d)", uint8(o))
}

// OperandKind selects what an instruction operand refers to.
type OperandKind uint8

const (
	OpdNone OperandKind = iota
	OpdVReg             // vector register, per-lane
	OpdSReg             // scalar register, wave-uniform
	OpdImm              // 32-bit immediate
	OpdLane             // lane index 0..15
	OpdWave             // global wavefront index within the dispatch
	OpdTid              // global thread id: wave*16 + lane
)

// Operand is one instruction operand.
type Operand struct {
	Kind OperandKind
	Val  int32 // register index for OpdVReg/OpdSReg, value for OpdImm
}

// V returns a vector register operand.
func V(i int) Operand { return Operand{Kind: OpdVReg, Val: int32(i)} }

// S returns a scalar register operand.
func S(i int) Operand { return Operand{Kind: OpdSReg, Val: int32(i)} }

// Imm returns an immediate operand.
func Imm(v int32) Operand { return Operand{Kind: OpdImm, Val: v} }

// ImmF returns a float32 immediate operand (raw IEEE-754 bits).
func ImmF(v float32) Operand {
	return Operand{Kind: OpdImm, Val: int32(f32bits(v))}
}

// LaneID returns the lane-index source operand.
func LaneID() Operand { return Operand{Kind: OpdLane} }

// WaveID returns the wavefront-index source operand.
func WaveID() Operand { return Operand{Kind: OpdWave} }

// Tid returns the global-thread-id source operand.
func Tid() Operand { return Operand{Kind: OpdTid} }

// Instr is one decoded instruction.
type Instr struct {
	Op     Opcode
	Dst    Operand
	Src    [3]Operand
	Target int32 // branch target (instruction index), resolved by the builder
}

func (in Instr) String() string {
	return fmt.Sprintf("%s dst=%v src=%v target=%d", in.Op, in.Dst, in.Src, in.Target)
}

// Program is an executable kernel.
type Program struct {
	Name     string
	Code     []Instr
	NumVRegs int
	NumSRegs int
}
