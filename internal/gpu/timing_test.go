package gpu

import (
	"testing"

	"mbavf/internal/cache"
	"mbavf/internal/mem"
)

// buildMemBound returns a kernel whose lanes each load n strided words
// (one distinct cache line per iteration), then store a checksum.
func buildMemBound(t *testing.T, n int) *Program {
	t.Helper()
	b := NewBuilder("membound")
	b.VMov(V(0), Tid())
	b.VMul(V(1), V(0), Imm(int32(64*n))) // disjoint n-line block per thread
	b.VAdd(V(1), V(1), S(0))
	b.VMov(V(2), Imm(0))
	b.SMov(S(2), Imm(int32(n)))
	b.Label("loop")
	b.VLoad(V(3), V(1), 0)
	b.VAdd(V(2), V(2), V(3))
	b.VAdd(V(1), V(1), Imm(64)) // next line within the thread's block
	b.SSub(S(2), S(2), Imm(1))
	b.Brnz(S(2), "loop")
	b.VShl(V(4), V(0), Imm(2))
	b.VAdd(V(4), V(4), S(1))
	b.VStore(V(4), 0, V(2))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func rigWithCfg(t *testing.T, cfg Config) (*Machine, *mem.Memory) {
	t.Helper()
	memory := mem.New(4 << 20)
	hier, err := cache.NewHierarchy(cache.DefaultHierConfig(), memory)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(cfg, memory, hier)
	if err != nil {
		t.Fatal(err)
	}
	return m, memory
}

// TestMultiWaveOverlapsMemoryStalls: with several resident waves per CU,
// memory stalls of one wave are hidden by issuing others, so cycles grow
// sublinearly in the wave count.
func TestMultiWaveOverlapsMemoryStalls(t *testing.T) {
	run := func(waves int) uint64 {
		cfg := DefaultConfig()
		cfg.NumCUs = 1
		cfg.WaveSlotsPerCU = 4
		m, _ := rigWithCfg(t, cfg)
		prog := buildMemBound(t, 8)
		if err := m.RunDispatch(Dispatch{Prog: prog, Waves: waves, Args: []uint32{0, 1 << 20}}); err != nil {
			t.Fatal(err)
		}
		return m.Cycles()
	}
	one := run(1)
	four := run(4)
	if four >= 4*one {
		t.Errorf("4 resident waves took %d cycles vs %d for 1: no latency hiding", four, one)
	}
	if four <= one {
		t.Errorf("4 waves (%d cycles) cannot be faster than 1 (%d)", four, one)
	}
}

// TestMoreCUsReduceCycles: the same dispatch across more compute units
// finishes sooner.
func TestMoreCUsReduceCycles(t *testing.T) {
	run := func(cus int) uint64 {
		cfg := DefaultConfig()
		cfg.NumCUs = cus
		cfg.WaveSlotsPerCU = 1
		m, _ := rigWithCfg(t, cfg)
		prog := buildMemBound(t, 4)
		if err := m.RunDispatch(Dispatch{Prog: prog, Waves: 8, Args: []uint32{0, 1 << 20}}); err != nil {
			t.Fatal(err)
		}
		return m.Cycles()
	}
	c1 := run(1)
	c4 := run(4)
	if c4 >= c1 {
		t.Errorf("4 CUs (%d cycles) should beat 1 CU (%d)", c4, c1)
	}
}

// TestCacheHitsShortenRuns: a second pass over the same data (warm L2)
// takes fewer cycles than the cold pass.
func TestCacheHitsShortenRuns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumCUs = 1
	m, _ := rigWithCfg(t, cfg)
	prog := buildMemBound(t, 8)
	if err := m.RunDispatch(Dispatch{Prog: prog, Waves: 1, Args: []uint32{0, 1 << 20}}); err != nil {
		t.Fatal(err)
	}
	cold := m.Cycles()
	if err := m.RunDispatch(Dispatch{Prog: prog, Waves: 1, Args: []uint32{0, 1 << 20}}); err != nil {
		t.Fatal(err)
	}
	warm := m.Cycles() - cold
	if warm >= cold {
		t.Errorf("warm pass (%d cycles) should beat cold pass (%d)", warm, cold)
	}
}

// TestCyclesMonotonicAcrossDispatches: the cycle counter never rewinds at
// dispatch boundaries.
func TestCyclesMonotonicAcrossDispatches(t *testing.T) {
	cfg := DefaultConfig()
	m, _ := rigWithCfg(t, cfg)
	prog := buildMemBound(t, 2)
	var prev uint64
	for i := 0; i < 3; i++ {
		if err := m.RunDispatch(Dispatch{Prog: prog, Waves: 2, Args: []uint32{0, 1 << 20}}); err != nil {
			t.Fatal(err)
		}
		if m.Cycles() <= prev {
			t.Fatalf("cycles did not advance: %d then %d", prev, m.Cycles())
		}
		prev = m.Cycles()
	}
}

// TestDeterministicCycles: identical runs produce identical cycle counts
// and instruction counts.
func TestDeterministicCycles(t *testing.T) {
	run := func() (uint64, uint64) {
		cfg := DefaultConfig()
		m, _ := rigWithCfg(t, cfg)
		prog := buildMemBound(t, 6)
		if err := m.RunDispatch(Dispatch{Prog: prog, Waves: 6, Args: []uint32{0, 1 << 20}}); err != nil {
			t.Fatal(err)
		}
		return m.Cycles(), m.Instructions()
	}
	c1, i1 := run()
	c2, i2 := run()
	if c1 != c2 || i1 != i2 {
		t.Errorf("nondeterministic simulation: %d/%d vs %d/%d", c1, i1, c2, i2)
	}
}
