package gpu

import "fmt"

// TrapKind classifies machine-detected execution traps. A trap is a
// fault the hardware itself catches during wavefront execution — the
// detected-error half of an injection outcome taxonomy — as opposed to
// infrastructure failures (bad programs, host-side setup errors), which
// stay plain errors.
type TrapKind int

const (
	// TrapBadAddress: a load or store touched memory outside the
	// simulated address space (typically an injection-corrupted address
	// register).
	TrapBadAddress TrapKind = iota
	// TrapMisaligned: a 32-bit access to a non-word-aligned address.
	TrapMisaligned
	// TrapBudget: the MaxInstructions budget was exhausted — the
	// livelock guard against injection-corrupted infinite loops.
	// Fault-injection campaigns classify this as a hang, not a
	// detected error.
	TrapBudget
)

func (k TrapKind) String() string {
	switch k {
	case TrapBadAddress:
		return "bad-address"
	case TrapMisaligned:
		return "misaligned"
	case TrapBudget:
		return "budget"
	default:
		return fmt.Sprintf("TrapKind(%d)", int(k))
	}
}

// TrapError is a machine-level trap raised during execution. Callers
// that need the taxonomy (the fault-injection classifier) retrieve it
// through errors.As; everything else sees an ordinary error.
type TrapError struct {
	Kind TrapKind
	Err  error
}

func (e *TrapError) Error() string {
	return fmt.Sprintf("trap (%s): %v", e.Kind, e.Err)
}

func (e *TrapError) Unwrap() error { return e.Err }

func trapf(kind TrapKind, format string, args ...any) error {
	return &TrapError{Kind: kind, Err: fmt.Errorf(format, args...)}
}
