package gpu

import (
	"errors"
	"strings"
	"testing"

	"mbavf/internal/cache"
	"mbavf/internal/dataflow"
	"mbavf/internal/lifetime"
	"mbavf/internal/mem"
)

func testRig(t *testing.T, withGraph bool) (*Machine, *mem.Memory, *dataflow.Graph) {
	t.Helper()
	var g *dataflow.Graph
	if withGraph {
		g = dataflow.NewGraph()
	}
	memory := mem.New(1 << 20)
	hier, err := cache.NewHierarchy(cache.DefaultHierConfig(), memory)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(DefaultConfig(), memory, hier)
	if err != nil {
		t.Fatal(err)
	}
	if withGraph {
		m.AttachGraph(g)
	}
	return m, memory, g
}

// buildVecAdd returns c[i] = a[i] + b[i] over one element per thread.
// Args: s0 = &a, s1 = &b, s2 = &c.
func buildVecAdd(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("vecadd")
	b.VMov(V(0), Tid())
	b.VShl(V(0), V(0), Imm(2)) // byte offset = tid*4
	b.VAdd(V(1), V(0), S(0))
	b.VLoad(V(2), V(1), 0) // a[i]
	b.VAdd(V(1), V(0), S(1))
	b.VLoad(V(3), V(1), 0) // b[i]
	b.VAdd(V(4), V(2), V(3))
	b.VAdd(V(1), V(0), S(2))
	b.VStore(V(1), 0, V(4))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuilderResolvesLabels(t *testing.T) {
	b := NewBuilder("loop")
	b.SMov(S(0), Imm(3))
	b.Label("top")
	b.SSub(S(0), S(0), Imm(1))
	b.Brnz(S(0), "top")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[2].Target != 1 {
		t.Errorf("branch target = %d, want 1", p.Code[2].Target)
	}
	if p.Code[len(p.Code)-1].Op != OpEndPgm {
		t.Error("Build should append EndPgm")
	}
}

func TestBuilderRejectsBadPrograms(t *testing.T) {
	cases := []struct {
		name  string
		build func(*Builder)
		want  string
	}{
		{"undefined label", func(b *Builder) { b.Br("nowhere") }, "undefined label"},
		{"else outside if", func(b *Builder) { b.Else() }, "ELSE outside IF"},
		{"unbalanced if", func(b *Builder) { b.IfVCC() }, "unbalanced IF"},
		{"double else", func(b *Builder) { b.IfVCC(); b.Else(); b.Else(); b.EndIf() }, "double ELSE"},
		{"imm branch cond", func(b *Builder) { b.Label("x"); b.Brz(Imm(0), "x") }, "scalar register condition"},
		{"negative reg", func(b *Builder) { b.VMov(V(-1), Imm(0)) }, "negative"},
	}
	for _, c := range cases {
		b := NewBuilder(c.name)
		c.build(b)
		_, err := b.Build()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want contains %q", c.name, err, c.want)
		}
	}
}

func TestVecAddEndToEnd(t *testing.T) {
	m, memory, g := testRig(t, true)
	const n = 64 // 4 waves
	a := make([]uint32, n)
	bvals := make([]uint32, n)
	for i := range a {
		a[i] = uint32(i * 3)
		bvals[i] = uint32(1000 - i)
	}
	var aAddr, bAddr, cAddr uint32 = 0x1000, 0x2000, 0x3000
	if err := memory.SetInputWords(g, aAddr, a); err != nil {
		t.Fatal(err)
	}
	if err := memory.SetInputWords(g, bAddr, bvals); err != nil {
		t.Fatal(err)
	}
	prog := buildVecAdd(t)
	err := m.RunDispatch(Dispatch{Prog: prog, Waves: n / Lanes, Args: []uint32{aAddr, bAddr, cAddr}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := memory.Words(cAddr, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if want := a[i] + bvals[i]; out[i] != want {
			t.Fatalf("c[%d] = %d, want %d", i, out[i], want)
		}
	}
	if m.Cycles() == 0 || m.Instructions() == 0 {
		t.Error("cycle/instruction counters not advancing")
	}
}

func TestDataflowLivenessThroughKernel(t *testing.T) {
	// Store a dead value and a live value; only the live one's input
	// should be live after marking outputs.
	m, memory, g := testRig(t, true)
	b := NewBuilder("deadstore")
	b.VMov(V(0), Tid())
	b.VShl(V(0), V(0), Imm(2))
	b.VAdd(V(1), V(0), S(0))
	b.VLoad(V(2), V(1), 0)     // load input
	b.VMul(V(3), V(2), Imm(7)) // live chain
	b.VAdd(V(4), V(0), S(1))
	b.VStore(V(4), 0, V(3)) // store to output
	b.VMul(V(5), V(2), Imm(9))
	b.VAdd(V(6), V(0), S(2))
	b.VStore(V(6), 0, V(5)) // store to scratch (never marked output)
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var in, out, scratch uint32 = 0x1000, 0x2000, 0x3000
	vals := make([]uint32, Lanes)
	for i := range vals {
		vals[i] = uint32(i)
	}
	if err := memory.SetInputWords(g, in, vals); err != nil {
		t.Fatal(err)
	}
	if err := m.RunDispatch(Dispatch{Prog: prog, Waves: 1, Args: []uint32{in, out, scratch}}); err != nil {
		t.Fatal(err)
	}
	m.Finish()
	if err := memory.MarkOutput(g, out, Lanes*4, m.Cycles()); err != nil {
		t.Fatal(err)
	}
	g.Solve()
	// The input bytes must be live (they flow to output), and the scratch
	// bytes' versions dead.
	if g.Live(memory.VersionAt(in)) == 0 {
		t.Error("input byte should be live through output chain")
	}
	if g.Live(memory.VersionAt(scratch)) != 0 {
		t.Error("scratch store should be dead")
	}
	if g.Stats().DeadCount == 0 {
		t.Error("expected some dead versions")
	}
}

func TestDivergenceIfElse(t *testing.T) {
	// Even lanes get 100, odd lanes get 200.
	m, memory, _ := testRig(t, false)
	b := NewBuilder("diverge")
	b.VMov(V(0), LaneID())
	b.VAnd(V(1), V(0), Imm(1))
	b.VCmp(OpVCmpEQ, V(1), Imm(0))
	b.IfVCC()
	b.VMov(V(2), Imm(100))
	b.Else()
	b.VMov(V(2), Imm(200))
	b.EndIf()
	b.VShl(V(3), V(0), Imm(2))
	b.VAdd(V(3), V(3), S(0))
	b.VStore(V(3), 0, V(2))
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunDispatch(Dispatch{Prog: prog, Waves: 1, Args: []uint32{0x4000}}); err != nil {
		t.Fatal(err)
	}
	out, _ := memory.Words(0x4000, Lanes)
	for i, v := range out {
		want := uint32(100)
		if i%2 == 1 {
			want = 200
		}
		if v != want {
			t.Errorf("lane %d = %d, want %d", i, v, want)
		}
	}
}

func TestScalarLoop(t *testing.T) {
	// Sum 1..10 in a scalar register, broadcast to memory.
	m, memory, _ := testRig(t, false)
	b := NewBuilder("loop")
	b.SMov(S(1), Imm(0))  // acc
	b.SMov(S(2), Imm(10)) // counter
	b.Label("top")
	b.SAdd(S(1), S(1), S(2))
	b.SSub(S(2), S(2), Imm(1))
	b.Brnz(S(2), "top")
	b.VMov(V(0), S(1))
	b.VShl(V(1), LaneID(), Imm(2))
	b.VAdd(V(1), V(1), S(0))
	b.VStore(V(1), 0, V(0))
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunDispatch(Dispatch{Prog: prog, Waves: 1, Args: []uint32{0x100}}); err != nil {
		t.Fatal(err)
	}
	out, _ := memory.Words(0x100, Lanes)
	for i, v := range out {
		if v != 55 {
			t.Fatalf("lane %d = %d, want 55", i, v)
		}
	}
}

func TestByteLoadStore(t *testing.T) {
	m, memory, g := testRig(t, true)
	if err := memory.SetInput(g, 0x1000, []byte{10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120, 130, 140, 150, 160}); err != nil {
		t.Fatal(err)
	}
	b := NewBuilder("bytes")
	b.VAdd(V(0), LaneID(), S(0))
	b.VLoadB(V(1), V(0), 0)
	b.VAdd(V(1), V(1), Imm(1))
	b.VAdd(V(2), LaneID(), S(1))
	b.VStoreB(V(2), 0, V(1))
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunDispatch(Dispatch{Prog: prog, Waves: 1, Args: []uint32{0x1000, 0x2000}}); err != nil {
		t.Fatal(err)
	}
	out, _ := memory.Bytes(0x2000, Lanes)
	for i, v := range out {
		if want := byte(10*(i+1) + 1); v != want {
			t.Errorf("byte %d = %d, want %d", i, v, want)
		}
	}
}

func TestFloatOps(t *testing.T) {
	m, memory, _ := testRig(t, false)
	b := NewBuilder("float")
	b.VMov(V(0), ImmF(2.0))
	b.VMov(V(1), ImmF(3.5))
	b.VFMul(V(2), V(0), V(1))    // 7.0
	b.VFAdd(V(2), V(2), ImmF(1)) // 8.0
	b.VFSqrt(V(3), V(2))         // ~2.828
	b.VFDiv(V(4), V(3), V(0))    // ~1.414
	b.VShl(V(5), LaneID(), Imm(2))
	b.VAdd(V(5), V(5), S(0))
	b.VStore(V(5), 0, V(4))
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunDispatch(Dispatch{Prog: prog, Waves: 1, Args: []uint32{0x800}}); err != nil {
		t.Fatal(err)
	}
	out, _ := memory.Words(0x800, 1)
	got := f32from(out[0])
	if got < 1.41 || got > 1.42 {
		t.Errorf("float chain result = %v, want ~1.4142", got)
	}
}

func TestVGPRTrackerRecordsLifetimes(t *testing.T) {
	m, memory, _ := testRig(t, false)
	cfg := m.Config()
	tr := lifetime.NewTracker(cfg.VGPRThreads()*cfg.NumVRegs, 4)
	m.TrackVGPR(0, tr)
	prog := buildVecAdd(t)
	vals := make([]uint32, Lanes)
	if err := memory.SetInputWords(nil, 0x1000, vals); err != nil {
		t.Fatal(err)
	}
	if err := memory.SetInputWords(nil, 0x2000, vals); err != nil {
		t.Fatal(err)
	}
	if err := m.RunDispatch(Dispatch{Prog: prog, Waves: 1, Args: []uint32{0x1000, 0x2000, 0x3000}}); err != nil {
		t.Fatal(err)
	}
	m.Finish()
	if tr.SegmentCount() == 0 {
		t.Fatal("VGPR tracker recorded nothing")
	}
	// v0 of thread 0 (slot 0, lane 0): written then read several times.
	word := 0*cfg.NumVRegs + 0
	segs := tr.Segments(word, 0)
	if len(segs) < 2 {
		t.Fatalf("v0 lane0 segments = %+v, want write->read chains", segs)
	}
	if segs[0].Kind != lifetime.SegACE {
		t.Errorf("first v0 segment should be ACE (read soon after write), got %v", segs[0].Kind)
	}
}

func TestInjectionFlipsRegister(t *testing.T) {
	// Flip bit 5 of v2 (the loaded a[i]) in thread 0 before it is consumed;
	// output must differ by 32 for element 0 only.
	prog := func(t *testing.T) *Program { return buildVecAdd(t) }(t)
	run := func(inject bool) []uint32 {
		m, memory, _ := testRig(t, false)
		a := make([]uint32, Lanes)
		b := make([]uint32, Lanes)
		if err := memory.SetInputWords(nil, 0x1000, a); err != nil {
			t.Fatal(err)
		}
		if err := memory.SetInputWords(nil, 0x2000, b); err != nil {
			t.Fatal(err)
		}
		if inject {
			m.AddInjection(Injection{Cycle: 0, CU: 0, Thread: 0, Reg: 2, Mask: 1 << 5})
		}
		if err := m.RunDispatch(Dispatch{Prog: prog, Waves: 1, Args: []uint32{0x1000, 0x2000, 0x3000}}); err != nil {
			t.Fatal(err)
		}
		out, _ := memory.Words(0x3000, Lanes)
		return out
	}
	clean := run(false)
	faulty := run(true)
	if clean[0] == faulty[0] {
		t.Skip("injection landed before the register write; covered by campaign tests")
	}
	for i := 1; i < Lanes; i++ {
		if clean[i] != faulty[i] {
			t.Errorf("element %d disturbed: %d vs %d", i, clean[i], faulty[i])
		}
	}
}

func TestInjectionIntoEmptySlotMasked(t *testing.T) {
	m, memory, _ := testRig(t, false)
	// Thread 255 = slot 15: beyond WaveSlotsPerCU(4)*16 threads? thread 255
	// -> slot 15, which exceeds the 4 slots: dropped silently.
	m.AddInjection(Injection{Cycle: 0, CU: 0, Thread: 255, Reg: 0, Mask: 1})
	prog := buildVecAdd(t)
	if err := memory.SetInputWords(nil, 0x1000, make([]uint32, Lanes)); err != nil {
		t.Fatal(err)
	}
	if err := memory.SetInputWords(nil, 0x2000, make([]uint32, Lanes)); err != nil {
		t.Fatal(err)
	}
	if err := m.RunDispatch(Dispatch{Prog: prog, Waves: 1, Args: []uint32{0x1000, 0x2000, 0x3000}}); err != nil {
		t.Fatal(err)
	}
	out, _ := memory.Words(0x3000, Lanes)
	for i, v := range out {
		if v != 0 {
			t.Errorf("element %d = %d, want 0", i, v)
		}
	}
}

func TestTrapOnBadAddress(t *testing.T) {
	m, _, _ := testRig(t, false)
	b := NewBuilder("wild")
	b.VMov(V(0), Imm(-64)) // huge unsigned address
	b.VLoad(V(1), V(0), 0)
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	err = m.RunDispatch(Dispatch{Prog: prog, Waves: 1})
	if err == nil {
		t.Fatal("wild load should trap")
	}
	var trap *TrapError
	if !errors.As(err, &trap) || trap.Kind != TrapBadAddress {
		t.Fatalf("err = %v, want TrapBadAddress", err)
	}
}

func TestTrapOnMisalignedLoad(t *testing.T) {
	m, _, _ := testRig(t, false)
	b := NewBuilder("misaligned")
	b.VMov(V(0), Imm(2))
	b.VLoad(V(1), V(0), 0)
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	err = m.RunDispatch(Dispatch{Prog: prog, Waves: 1})
	if err == nil || !strings.Contains(err.Error(), "misaligned") {
		t.Fatalf("err = %v, want misaligned trap", err)
	}
	var trap *TrapError
	if !errors.As(err, &trap) || trap.Kind != TrapMisaligned {
		t.Fatalf("err = %v, want TrapMisaligned", err)
	}
}

func TestInstructionBudgetTrap(t *testing.T) {
	memory := mem.New(1 << 12)
	hier, err := cache.NewHierarchy(cache.DefaultHierConfig(), memory)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxInstructions = 100
	m, err := New(cfg, memory, hier)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder("spin")
	b.Label("top")
	b.Br("top")
	prog, _ := b.Build()
	err = m.RunDispatch(Dispatch{Prog: prog, Waves: 1})
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("err = %v, want budget trap", err)
	}
	var trap *TrapError
	if !errors.As(err, &trap) || trap.Kind != TrapBudget {
		t.Fatalf("err = %v, want TrapBudget", err)
	}
}

func TestMultiWaveMultiCU(t *testing.T) {
	m, memory, _ := testRig(t, false)
	const waves = 20 // exceeds 16 slots: tests queueing and slot reuse
	n := waves * Lanes
	a := make([]uint32, n)
	bv := make([]uint32, n)
	for i := range a {
		a[i] = uint32(i)
		bv[i] = uint32(2 * i)
	}
	if err := memory.SetInputWords(nil, 0x10000, a); err != nil {
		t.Fatal(err)
	}
	if err := memory.SetInputWords(nil, 0x20000, bv); err != nil {
		t.Fatal(err)
	}
	prog := buildVecAdd(t)
	if err := m.RunDispatch(Dispatch{Prog: prog, Waves: waves, Args: []uint32{0x10000, 0x20000, 0x30000}}); err != nil {
		t.Fatal(err)
	}
	out, _ := memory.Words(0x30000, n)
	for i := range out {
		if out[i] != uint32(3*i) {
			t.Fatalf("c[%d] = %d, want %d", i, out[i], 3*i)
		}
	}
}

func TestCmpAndCndMask(t *testing.T) {
	// dst = max(lane, 7) via compare+select.
	m, memory, _ := testRig(t, false)
	b := NewBuilder("select")
	b.VMov(V(0), LaneID())
	b.VCmp(OpVCmpGT, V(0), Imm(7))
	b.VCndMask(V(1), V(0), Imm(7)) // vcc ? lane : 7
	b.VShl(V(2), LaneID(), Imm(2))
	b.VAdd(V(2), V(2), S(0))
	b.VStore(V(2), 0, V(1))
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunDispatch(Dispatch{Prog: prog, Waves: 1, Args: []uint32{0x100}}); err != nil {
		t.Fatal(err)
	}
	out, _ := memory.Words(0x100, Lanes)
	for i, v := range out {
		want := uint32(max(i, 7))
		if v != want {
			t.Errorf("lane %d = %d, want %d", i, v, want)
		}
	}
}
