package gpu

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Assemble parses a textual kernel into a Program. The syntax is one
// instruction per line:
//
//	; per-thread offset
//	v_mov   v0, tid
//	v_shl   v0, v0, 2
//	v_add   v1, v0, s0
//	v_load  v2, [v1+0]
//	v_fmad  v3, v2, 2.5f, v3
//	loop:
//	s_sub   s3, s3, 1
//	s_brnz  s3, loop
//	s_endpgm
//
// Operands are vN / sN registers, integer immediates (decimal or 0x hex),
// float immediates with an f suffix or a decimal point, and the specials
// tid, lane, wave. Loads and stores use [vN+offset] addresses. Labels end
// with a colon; `;` and `#` start comments. A missing final s_endpgm is
// appended, as with the Builder.
func Assemble(name, src string) (*Program, error) {
	b := NewBuilder(name)
	var nameToOp = map[string]Opcode{}
	for op, n := range opNames {
		nameToOp[n] = op
	}
	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		lineNo := ln + 1
		if strings.HasSuffix(line, ":") {
			label := strings.TrimSpace(strings.TrimSuffix(line, ":"))
			if label == "" {
				return nil, fmt.Errorf("gpu: %s:%d: empty label", name, lineNo)
			}
			b.Label(label)
			continue
		}
		fields := strings.SplitN(line, " ", 2)
		mnemonic := strings.TrimSpace(fields[0])
		op, ok := nameToOp[mnemonic]
		if !ok {
			return nil, fmt.Errorf("gpu: %s:%d: unknown mnemonic %q", name, lineNo, mnemonic)
		}
		var args []string
		if len(fields) == 2 {
			for _, a := range strings.Split(fields[1], ",") {
				args = append(args, strings.TrimSpace(a))
			}
		}
		if err := assembleOne(b, op, args); err != nil {
			return nil, fmt.Errorf("gpu: %s:%d: %w", name, lineNo, err)
		}
	}
	return b.Build()
}

func assembleOne(b *Builder, op Opcode, args []string) error {
	want := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s wants %d operands, got %d", op, n, len(args))
		}
		return nil
	}
	switch op {
	case OpNop, OpEndPgm, OpIfVCC, OpElse, OpEndIf:
		if err := want(0); err != nil {
			return err
		}
		b.emit(Instr{Op: op})
	case OpBr:
		if err := want(1); err != nil {
			return err
		}
		b.branch(op, Operand{}, args[0])
	case OpBrz, OpBrnz:
		if err := want(2); err != nil {
			return err
		}
		cond, err := parseOperand(args[0])
		if err != nil {
			return err
		}
		b.branch(op, cond, args[1])
	case OpVLoad, OpVLoadB:
		if err := want(2); err != nil {
			return err
		}
		dst, err := parseOperand(args[0])
		if err != nil {
			return err
		}
		addr, off, err := parseMem(args[1])
		if err != nil {
			return err
		}
		b.emit(Instr{Op: op, Dst: dst, Src: [3]Operand{addr, Imm(off)}})
	case OpVStore, OpVStoreB:
		if err := want(2); err != nil {
			return err
		}
		addr, off, err := parseMem(args[0])
		if err != nil {
			return err
		}
		val, err := parseOperand(args[1])
		if err != nil {
			return err
		}
		b.emit(Instr{Op: op, Src: [3]Operand{addr, Imm(off), val}})
	case OpVCmpEQ, OpVCmpNE, OpVCmpLT, OpVCmpLE, OpVCmpGT, OpVCmpGE, OpVCmpFLT, OpVCmpFGE:
		if err := want(2); err != nil {
			return err
		}
		a, err := parseOperand(args[0])
		if err != nil {
			return err
		}
		c, err := parseOperand(args[1])
		if err != nil {
			return err
		}
		b.emit(Instr{Op: op, Src: [3]Operand{a, c}})
	default:
		// dst + 1..3 sources.
		if len(args) < 2 || len(args) > 4 {
			return fmt.Errorf("%s wants a destination and 1-3 sources, got %d operands", op, len(args))
		}
		ops := make([]Operand, len(args))
		for i, a := range args {
			o, err := parseOperand(a)
			if err != nil {
				return err
			}
			ops[i] = o
		}
		in := Instr{Op: op, Dst: ops[0]}
		copy(in.Src[:], ops[1:])
		b.emit(in)
	}
	return nil
}

// parseOperand parses a register, immediate, or special source.
func parseOperand(s string) (Operand, error) {
	switch s {
	case "tid":
		return Tid(), nil
	case "lane":
		return LaneID(), nil
	case "wave":
		return WaveID(), nil
	case "":
		return Operand{}, fmt.Errorf("empty operand")
	}
	if (s[0] == 'v' || s[0] == 's') && len(s) > 1 {
		if idx, err := strconv.Atoi(s[1:]); err == nil {
			if s[0] == 'v' {
				return V(idx), nil
			}
			return S(idx), nil
		}
	}
	if strings.HasSuffix(s, "f") || strings.ContainsAny(s, ".eE") && !strings.HasPrefix(s, "0x") {
		fs := strings.TrimSuffix(s, "f")
		f, err := strconv.ParseFloat(fs, 32)
		if err != nil {
			return Operand{}, fmt.Errorf("bad float immediate %q", s)
		}
		return ImmF(float32(f)), nil
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return Operand{}, fmt.Errorf("bad operand %q", s)
	}
	if v < math.MinInt32 || v > math.MaxUint32 {
		return Operand{}, fmt.Errorf("immediate %q out of 32-bit range", s)
	}
	return Imm(int32(v)), nil
}

// parseMem parses a "[vN+off]" or "[vN]" address expression.
func parseMem(s string) (Operand, int32, error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return Operand{}, 0, fmt.Errorf("memory operand %q needs [reg+offset] form", s)
	}
	inner := s[1 : len(s)-1]
	if inner == "" {
		return Operand{}, 0, fmt.Errorf("empty memory operand %q", s)
	}
	regPart, offPart := inner, ""
	if i := strings.IndexAny(inner[1:], "+-"); i >= 0 {
		regPart, offPart = inner[:i+1], inner[i+1:]
	}
	reg, err := parseOperand(strings.TrimSpace(regPart))
	if err != nil {
		return Operand{}, 0, err
	}
	if reg.Kind != OpdVReg {
		return Operand{}, 0, fmt.Errorf("memory address %q must use a vector register", s)
	}
	var off int64
	if offPart != "" {
		off, err = strconv.ParseInt(strings.TrimSpace(offPart), 0, 32)
		if err != nil {
			return Operand{}, 0, fmt.Errorf("bad address offset in %q", s)
		}
	}
	return reg, int32(off), nil
}

// Disassemble renders a program back to assembler syntax accepted by
// Assemble. Branch targets become generated labels.
func Disassemble(p *Program) string {
	labels := map[int]string{}
	for _, in := range p.Code {
		switch in.Op {
		case OpBr, OpBrz, OpBrnz:
			t := int(in.Target)
			if _, ok := labels[t]; !ok {
				labels[t] = fmt.Sprintf("L%d", t)
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "; kernel %s (%d vregs, %d sregs)\n", p.Name, p.NumVRegs, p.NumSRegs)
	for i, in := range p.Code {
		if l, ok := labels[i]; ok {
			fmt.Fprintf(&sb, "%s:\n", l)
		}
		sb.WriteString("\t")
		sb.WriteString(disasmInstr(in, labels))
		sb.WriteString("\n")
	}
	return sb.String()
}

func fmtOperand(o Operand) string {
	switch o.Kind {
	case OpdVReg:
		return fmt.Sprintf("v%d", o.Val)
	case OpdSReg:
		return fmt.Sprintf("s%d", o.Val)
	case OpdImm:
		return strconv.FormatInt(int64(o.Val), 10)
	case OpdLane:
		return "lane"
	case OpdWave:
		return "wave"
	case OpdTid:
		return "tid"
	default:
		return "?"
	}
}

func disasmInstr(in Instr, labels map[int]string) string {
	name := in.Op.String()
	switch in.Op {
	case OpNop, OpEndPgm, OpIfVCC, OpElse, OpEndIf:
		return name
	case OpBr:
		return fmt.Sprintf("%s %s", name, labels[int(in.Target)])
	case OpBrz, OpBrnz:
		return fmt.Sprintf("%s %s, %s", name, fmtOperand(in.Src[0]), labels[int(in.Target)])
	case OpVLoad, OpVLoadB:
		return fmt.Sprintf("%s %s, [%s+%d]", name, fmtOperand(in.Dst), fmtOperand(in.Src[0]), in.Src[1].Val)
	case OpVStore, OpVStoreB:
		return fmt.Sprintf("%s [%s+%d], %s", name, fmtOperand(in.Src[0]), in.Src[1].Val, fmtOperand(in.Src[2]))
	case OpVCmpEQ, OpVCmpNE, OpVCmpLT, OpVCmpLE, OpVCmpGT, OpVCmpGE, OpVCmpFLT, OpVCmpFGE:
		return fmt.Sprintf("%s %s, %s", name, fmtOperand(in.Src[0]), fmtOperand(in.Src[1]))
	default:
		parts := []string{fmtOperand(in.Dst)}
		for _, s := range in.Src {
			if s.Kind != OpdNone {
				parts = append(parts, fmtOperand(s))
			}
		}
		return fmt.Sprintf("%s %s", name, strings.Join(parts, ", "))
	}
}
