package gpu

import (
	"math"
	"testing"
)

// runUnary executes "dst = op(a)" on lane 0 and returns the result.
func runOp(t *testing.T, build func(b *Builder)) []uint32 {
	t.Helper()
	m, memory, _ := testRig(t, false)
	b := NewBuilder("op")
	build(b)
	b.VShl(V(15), LaneID(), Imm(2))
	b.VAdd(V(15), V(15), S(0))
	b.VStore(V(15), 0, V(14)) // convention: result in v14
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunDispatch(Dispatch{Prog: prog, Waves: 1, Args: []uint32{0x400}}); err != nil {
		t.Fatal(err)
	}
	out, err := memory.Words(0x400, Lanes)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestIntegerALUOps(t *testing.T) {
	cases := []struct {
		name  string
		build func(*Builder)
		want  uint32
	}{
		{"add", func(b *Builder) { b.VAdd(V(14), Imm(7), Imm(5)) }, 12},
		{"add-wrap", func(b *Builder) { b.VAdd(V(14), Imm(-1), Imm(2)) }, 1},
		{"sub", func(b *Builder) { b.VSub(V(14), Imm(7), Imm(5)) }, 2},
		{"sub-borrow", func(b *Builder) { b.VSub(V(14), Imm(5), Imm(7)) }, 0xFFFFFFFE},
		{"mul", func(b *Builder) { b.VMul(V(14), Imm(6), Imm(7)) }, 42},
		{"mad", func(b *Builder) { b.VMad(V(14), Imm(6), Imm(7), Imm(100)) }, 142},
		{"and", func(b *Builder) { b.VAnd(V(14), Imm(0xFF), Imm(0x0F0)) }, 0xF0},
		{"or", func(b *Builder) { b.VOr(V(14), Imm(0xF0), Imm(0x0F)) }, 0xFF},
		{"xor", func(b *Builder) { b.VXor(V(14), Imm(0xFF), Imm(0x0F)) }, 0xF0},
		{"not", func(b *Builder) { b.VNot(V(14), Imm(0)) }, 0xFFFFFFFF},
		{"shl", func(b *Builder) { b.VShl(V(14), Imm(1), Imm(4)) }, 16},
		{"shl-mask", func(b *Builder) { b.VShl(V(14), Imm(1), Imm(33)) }, 2},
		{"shr", func(b *Builder) { b.VShr(V(14), Imm(-1), Imm(28)) }, 0xF},
		{"ashr", func(b *Builder) { b.VAshr(V(14), Imm(-16), Imm(2)) }, uint32(0xFFFFFFFC)},
		{"min", func(b *Builder) { b.VMin(V(14), Imm(-3), Imm(2)) }, uint32(0xFFFFFFFD)},
		{"max", func(b *Builder) { b.VMax(V(14), Imm(-3), Imm(2)) }, 2},
	}
	for _, c := range cases {
		out := runOp(t, c.build)
		for lane, v := range out {
			if v != c.want {
				t.Errorf("%s lane %d = %#x, want %#x", c.name, lane, v, c.want)
				break
			}
		}
	}
}

func TestFloatALUOps(t *testing.T) {
	cases := []struct {
		name  string
		build func(*Builder)
		want  float32
	}{
		{"fadd", func(b *Builder) { b.VFAdd(V(14), ImmF(1.5), ImmF(2.25)) }, 3.75},
		{"fsub", func(b *Builder) { b.VFSub(V(14), ImmF(1.5), ImmF(2.25)) }, -0.75},
		{"fmul", func(b *Builder) { b.VFMul(V(14), ImmF(1.5), ImmF(2)) }, 3},
		{"fmad", func(b *Builder) { b.VFMad(V(14), ImmF(2), ImmF(3), ImmF(1)) }, 7},
		{"fdiv", func(b *Builder) { b.VFDiv(V(14), ImmF(7), ImmF(2)) }, 3.5},
		{"fsqrt", func(b *Builder) { b.VFSqrt(V(14), ImmF(9)) }, 3},
		{"fexp", func(b *Builder) { b.VFExp(V(14), ImmF(0)) }, 1},
		{"fmin", func(b *Builder) { b.VFMin(V(14), ImmF(-1), ImmF(2)) }, -1},
		{"fmax", func(b *Builder) { b.VFMax(V(14), ImmF(-1), ImmF(2)) }, 2},
		{"i2f", func(b *Builder) { b.VI2F(V(14), Imm(-7)) }, -7},
	}
	for _, c := range cases {
		out := runOp(t, c.build)
		got := f32from(out[0])
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestF2ITruncationAndNaN(t *testing.T) {
	out := runOp(t, func(b *Builder) { b.VF2I(V(14), ImmF(3.9)) })
	if int32(out[0]) != 3 {
		t.Errorf("f2i(3.9) = %d, want 3", int32(out[0]))
	}
	out = runOp(t, func(b *Builder) { b.VF2I(V(14), ImmF(-2.7)) })
	if int32(out[0]) != -2 {
		t.Errorf("f2i(-2.7) = %d, want -2", int32(out[0]))
	}
	nan := Operand{Kind: OpdImm, Val: int32(math.Float32bits(float32(math.NaN())))}
	out = runOp(t, func(b *Builder) { b.VF2I(V(14), nan) })
	if out[0] != 0 {
		t.Errorf("f2i(NaN) = %d, want 0", out[0])
	}
}

func TestCompareOpcodes(t *testing.T) {
	// Each compare writes VCC; materialize via CndMask(1, 0).
	check := func(name string, op Opcode, a, b int32, want uint32) {
		t.Helper()
		out := runOp(t, func(bd *Builder) {
			bd.VCmp(op, Imm(a), Imm(b))
			bd.VCndMask(V(14), Imm(1), Imm(0))
		})
		if out[0] != want {
			t.Errorf("%s(%d,%d) = %d, want %d", name, a, b, out[0], want)
		}
	}
	check("eq", OpVCmpEQ, 3, 3, 1)
	check("eq", OpVCmpEQ, 3, 4, 0)
	check("ne", OpVCmpNE, 3, 4, 1)
	check("lt", OpVCmpLT, -5, 3, 1)
	check("lt", OpVCmpLT, 3, -5, 0)
	check("le", OpVCmpLE, 3, 3, 1)
	check("gt", OpVCmpGT, 4, 3, 1)
	check("ge", OpVCmpGE, 3, 3, 1)
}

func TestFloatCompares(t *testing.T) {
	out := runOp(t, func(b *Builder) {
		b.VCmp(OpVCmpFLT, ImmF(1.5), ImmF(2.5))
		b.VCndMask(V(14), Imm(1), Imm(0))
	})
	if out[0] != 1 {
		t.Error("1.5 < 2.5 should set VCC")
	}
	out = runOp(t, func(b *Builder) {
		b.VCmp(OpVCmpFGE, ImmF(2.5), ImmF(2.5))
		b.VCndMask(V(14), Imm(1), Imm(0))
	})
	if out[0] != 1 {
		t.Error("2.5 >= 2.5 should set VCC")
	}
}

func TestScalarOps(t *testing.T) {
	m, memory, _ := testRig(t, false)
	b := NewBuilder("scalar")
	b.SMov(S(1), Imm(12))
	b.SAdd(S(2), S(1), Imm(3)) // 15
	b.SSub(S(3), S(2), Imm(5)) // 10
	b.SMul(S(4), S(3), Imm(4)) // 40
	b.SShl(S(5), S(4), Imm(1)) // 80
	b.SShr(S(6), S(5), Imm(3)) // 10
	b.SAnd(S(7), S(6), Imm(6)) // 2
	b.SSlt(S(8), S(7), Imm(3)) // 1
	b.SSlt(S(9), Imm(3), S(7)) // 0
	// Pack: v14 = s8*10 + s9 + s7*100
	b.VMov(V(1), S(8))
	b.VMul(V(1), V(1), Imm(10))
	b.VMov(V(2), S(9))
	b.VAdd(V(1), V(1), V(2))
	b.VMov(V(3), S(7))
	b.VMad(V(14), V(3), Imm(100), V(1))
	b.VShl(V(15), LaneID(), Imm(2))
	b.VAdd(V(15), V(15), S(0))
	b.VStore(V(15), 0, V(14))
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunDispatch(Dispatch{Prog: prog, Waves: 1, Args: []uint32{0x200}}); err != nil {
		t.Fatal(err)
	}
	out, _ := memory.Words(0x200, 1)
	if out[0] != 210 {
		t.Errorf("scalar chain = %d, want 210", out[0])
	}
}

func TestNestedDivergence(t *testing.T) {
	// Nested IF: lanes 0-7 outer, lanes 0-3 inner.
	m, memory, _ := testRig(t, false)
	b := NewBuilder("nested")
	b.VMov(V(0), LaneID())
	b.VMov(V(14), Imm(0))
	b.VCmp(OpVCmpLT, V(0), Imm(8))
	b.IfVCC()
	b.VMov(V(14), Imm(1))
	b.VCmp(OpVCmpLT, V(0), Imm(4))
	b.IfVCC()
	b.VMov(V(14), Imm(2))
	b.Else()
	b.VMov(V(14), Imm(3))
	b.EndIf()
	b.EndIf()
	b.VShl(V(15), V(0), Imm(2))
	b.VAdd(V(15), V(15), S(0))
	b.VStore(V(15), 0, V(14))
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunDispatch(Dispatch{Prog: prog, Waves: 1, Args: []uint32{0x300}}); err != nil {
		t.Fatal(err)
	}
	out, _ := memory.Words(0x300, Lanes)
	for lane, v := range out {
		var want uint32
		switch {
		case lane < 4:
			want = 2
		case lane < 8:
			want = 3
		default:
			want = 0
		}
		if v != want {
			t.Errorf("lane %d = %d, want %d", lane, v, want)
		}
	}
}

func TestSpecialOperands(t *testing.T) {
	m, memory, _ := testRig(t, false)
	b := NewBuilder("specials")
	b.VMov(V(1), WaveID())
	b.VMul(V(1), V(1), Imm(1000))
	b.VMov(V(2), Tid())
	b.VMad(V(14), V(2), Imm(1), V(1)) // wave*1000 + tid
	b.VShl(V(15), Tid(), Imm(2))
	b.VAdd(V(15), V(15), S(0))
	b.VStore(V(15), 0, V(14))
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunDispatch(Dispatch{Prog: prog, Waves: 2, Args: []uint32{0x500}}); err != nil {
		t.Fatal(err)
	}
	out, _ := memory.Words(0x500, 2*Lanes)
	for tid, v := range out {
		want := uint32(tid/Lanes)*1000 + uint32(tid)
		if v != want {
			t.Errorf("tid %d = %d, want %d", tid, v, want)
		}
	}
}

func TestOpcodeStrings(t *testing.T) {
	for op := OpNop; op <= OpEndPgm; op++ {
		if s := op.String(); s == "" || s[0] == 'O' && s[1] == 'p' {
			t.Errorf("opcode %d has no name: %q", op, s)
		}
	}
	if Opcode(200).String() != "Opcode(200)" {
		t.Error("unknown opcode string wrong")
	}
}
