package gpu

import "fmt"

// Builder assembles a Program: it records instructions, resolves branch
// labels, and validates register indices and IF/ELSE/ENDIF structure.
type Builder struct {
	name     string
	code     []Instr
	labels   map[string]int
	fixups   map[int]string // instruction index -> unresolved label
	numVRegs int
	numSRegs int
	errs     []error
}

// NewBuilder starts a program named name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:   name,
		labels: make(map[string]int),
		fixups: make(map[int]string),
	}
}

func (b *Builder) errf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf("gpu: %s: %s", b.name, fmt.Sprintf(format, args...)))
}

func (b *Builder) noteOperand(o Operand) {
	switch o.Kind {
	case OpdVReg:
		if o.Val < 0 {
			b.errf("negative vector register v%d", o.Val)
			return
		}
		if int(o.Val)+1 > b.numVRegs {
			b.numVRegs = int(o.Val) + 1
		}
	case OpdSReg:
		if o.Val < 0 {
			b.errf("negative scalar register s%d", o.Val)
			return
		}
		if int(o.Val)+1 > b.numSRegs {
			b.numSRegs = int(o.Val) + 1
		}
	}
}

func (b *Builder) emit(in Instr) *Builder {
	b.noteOperand(in.Dst)
	for _, s := range in.Src {
		b.noteOperand(s)
	}
	b.code = append(b.code, in)
	return b
}

// Label binds name to the next emitted instruction.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.errf("duplicate label %q", name)
	}
	b.labels[name] = len(b.code)
	return b
}

func (b *Builder) branch(op Opcode, cond Operand, label string) *Builder {
	b.fixups[len(b.code)] = label
	return b.emit(Instr{Op: op, Src: [3]Operand{cond}})
}

// Vector ALU.

// VMov emits dst = src.
func (b *Builder) VMov(dst, src Operand) *Builder {
	return b.emit(Instr{Op: OpVMov, Dst: dst, Src: [3]Operand{src}})
}

// VAdd emits dst = a + b.
func (b *Builder) VAdd(dst, a, c Operand) *Builder {
	return b.emit(Instr{Op: OpVAdd, Dst: dst, Src: [3]Operand{a, c}})
}

// VSub emits dst = a - b.
func (b *Builder) VSub(dst, a, c Operand) *Builder {
	return b.emit(Instr{Op: OpVSub, Dst: dst, Src: [3]Operand{a, c}})
}

// VMul emits dst = a * b (low 32 bits).
func (b *Builder) VMul(dst, a, c Operand) *Builder {
	return b.emit(Instr{Op: OpVMul, Dst: dst, Src: [3]Operand{a, c}})
}

// VMad emits dst = a*b + c.
func (b *Builder) VMad(dst, a, c, d Operand) *Builder {
	return b.emit(Instr{Op: OpVMad, Dst: dst, Src: [3]Operand{a, c, d}})
}

// VAnd emits dst = a & b.
func (b *Builder) VAnd(dst, a, c Operand) *Builder {
	return b.emit(Instr{Op: OpVAnd, Dst: dst, Src: [3]Operand{a, c}})
}

// VOr emits dst = a | b.
func (b *Builder) VOr(dst, a, c Operand) *Builder {
	return b.emit(Instr{Op: OpVOr, Dst: dst, Src: [3]Operand{a, c}})
}

// VXor emits dst = a ^ b.
func (b *Builder) VXor(dst, a, c Operand) *Builder {
	return b.emit(Instr{Op: OpVXor, Dst: dst, Src: [3]Operand{a, c}})
}

// VNot emits dst = ^a.
func (b *Builder) VNot(dst, a Operand) *Builder {
	return b.emit(Instr{Op: OpVNot, Dst: dst, Src: [3]Operand{a}})
}

// VShl emits dst = a << (b & 31).
func (b *Builder) VShl(dst, a, c Operand) *Builder {
	return b.emit(Instr{Op: OpVShl, Dst: dst, Src: [3]Operand{a, c}})
}

// VShr emits dst = a >> (b & 31), logical.
func (b *Builder) VShr(dst, a, c Operand) *Builder {
	return b.emit(Instr{Op: OpVShr, Dst: dst, Src: [3]Operand{a, c}})
}

// VAshr emits dst = int32(a) >> (b & 31).
func (b *Builder) VAshr(dst, a, c Operand) *Builder {
	return b.emit(Instr{Op: OpVAshr, Dst: dst, Src: [3]Operand{a, c}})
}

// VMin emits dst = min(int32(a), int32(b)).
func (b *Builder) VMin(dst, a, c Operand) *Builder {
	return b.emit(Instr{Op: OpVMin, Dst: dst, Src: [3]Operand{a, c}})
}

// VMax emits dst = max(int32(a), int32(b)).
func (b *Builder) VMax(dst, a, c Operand) *Builder {
	return b.emit(Instr{Op: OpVMax, Dst: dst, Src: [3]Operand{a, c}})
}

// VCndMask emits dst = VCC[lane] ? a : b.
func (b *Builder) VCndMask(dst, a, c Operand) *Builder {
	return b.emit(Instr{Op: OpVCndMask, Dst: dst, Src: [3]Operand{a, c}})
}

// VCmp emits a vector compare writing VCC; op must be one of the OpVCmp*
// opcodes.
func (b *Builder) VCmp(op Opcode, a, c Operand) *Builder {
	if op < OpVCmpEQ || op > OpVCmpFGE {
		b.errf("VCmp with non-compare opcode %v", op)
	}
	return b.emit(Instr{Op: op, Src: [3]Operand{a, c}})
}

// Vector float.

// VFAdd emits dst = a + b (float32).
func (b *Builder) VFAdd(dst, a, c Operand) *Builder {
	return b.emit(Instr{Op: OpVFAdd, Dst: dst, Src: [3]Operand{a, c}})
}

// VFSub emits dst = a - b (float32).
func (b *Builder) VFSub(dst, a, c Operand) *Builder {
	return b.emit(Instr{Op: OpVFSub, Dst: dst, Src: [3]Operand{a, c}})
}

// VFMul emits dst = a * b (float32).
func (b *Builder) VFMul(dst, a, c Operand) *Builder {
	return b.emit(Instr{Op: OpVFMul, Dst: dst, Src: [3]Operand{a, c}})
}

// VFMad emits dst = a*b + c (float32).
func (b *Builder) VFMad(dst, a, c, d Operand) *Builder {
	return b.emit(Instr{Op: OpVFMad, Dst: dst, Src: [3]Operand{a, c, d}})
}

// VFDiv emits dst = a / b (float32).
func (b *Builder) VFDiv(dst, a, c Operand) *Builder {
	return b.emit(Instr{Op: OpVFDiv, Dst: dst, Src: [3]Operand{a, c}})
}

// VFSqrt emits dst = sqrt(a) (float32).
func (b *Builder) VFSqrt(dst, a Operand) *Builder {
	return b.emit(Instr{Op: OpVFSqrt, Dst: dst, Src: [3]Operand{a}})
}

// VFExp emits dst = e^a (float32).
func (b *Builder) VFExp(dst, a Operand) *Builder {
	return b.emit(Instr{Op: OpVFExp, Dst: dst, Src: [3]Operand{a}})
}

// VFMin emits dst = min(a, b) (float32).
func (b *Builder) VFMin(dst, a, c Operand) *Builder {
	return b.emit(Instr{Op: OpVFMin, Dst: dst, Src: [3]Operand{a, c}})
}

// VFMax emits dst = max(a, b) (float32).
func (b *Builder) VFMax(dst, a, c Operand) *Builder {
	return b.emit(Instr{Op: OpVFMax, Dst: dst, Src: [3]Operand{a, c}})
}

// VI2F emits dst = float32(int32(a)).
func (b *Builder) VI2F(dst, a Operand) *Builder {
	return b.emit(Instr{Op: OpVI2F, Dst: dst, Src: [3]Operand{a}})
}

// VF2I emits dst = int32(trunc(float32(a))).
func (b *Builder) VF2I(dst, a Operand) *Builder {
	return b.emit(Instr{Op: OpVF2I, Dst: dst, Src: [3]Operand{a}})
}

// Memory.

// VLoad emits dst = mem32[addr + off].
func (b *Builder) VLoad(dst, addr Operand, off int32) *Builder {
	return b.emit(Instr{Op: OpVLoad, Dst: dst, Src: [3]Operand{addr, Imm(off)}})
}

// VStore emits mem32[addr + off] = val.
func (b *Builder) VStore(addr Operand, off int32, val Operand) *Builder {
	return b.emit(Instr{Op: OpVStore, Src: [3]Operand{addr, Imm(off), val}})
}

// VLoadB emits dst = zext(mem8[addr + off]).
func (b *Builder) VLoadB(dst, addr Operand, off int32) *Builder {
	return b.emit(Instr{Op: OpVLoadB, Dst: dst, Src: [3]Operand{addr, Imm(off)}})
}

// VStoreB emits mem8[addr + off] = val & 0xFF.
func (b *Builder) VStoreB(addr Operand, off int32, val Operand) *Builder {
	return b.emit(Instr{Op: OpVStoreB, Src: [3]Operand{addr, Imm(off), val}})
}

// Control flow.

// IfVCC begins a divergent region for lanes with their VCC bit set.
func (b *Builder) IfVCC() *Builder { return b.emit(Instr{Op: OpIfVCC}) }

// Else flips the active lane set of the innermost IfVCC region.
func (b *Builder) Else() *Builder { return b.emit(Instr{Op: OpElse}) }

// EndIf closes the innermost divergent region.
func (b *Builder) EndIf() *Builder { return b.emit(Instr{Op: OpEndIf}) }

// Br emits an unconditional branch to label.
func (b *Builder) Br(label string) *Builder { return b.branch(OpBr, Operand{}, label) }

// Brz branches to label when scalar cond is zero.
func (b *Builder) Brz(cond Operand, label string) *Builder { return b.branch(OpBrz, cond, label) }

// Brnz branches to label when scalar cond is non-zero.
func (b *Builder) Brnz(cond Operand, label string) *Builder { return b.branch(OpBrnz, cond, label) }

// Scalar ALU.

// SMov emits sdst = src.
func (b *Builder) SMov(dst, src Operand) *Builder {
	return b.emit(Instr{Op: OpSMov, Dst: dst, Src: [3]Operand{src}})
}

// SAdd emits sdst = a + b.
func (b *Builder) SAdd(dst, a, c Operand) *Builder {
	return b.emit(Instr{Op: OpSAdd, Dst: dst, Src: [3]Operand{a, c}})
}

// SSub emits sdst = a - b.
func (b *Builder) SSub(dst, a, c Operand) *Builder {
	return b.emit(Instr{Op: OpSSub, Dst: dst, Src: [3]Operand{a, c}})
}

// SMul emits sdst = a * b.
func (b *Builder) SMul(dst, a, c Operand) *Builder {
	return b.emit(Instr{Op: OpSMul, Dst: dst, Src: [3]Operand{a, c}})
}

// SShl emits sdst = a << (b & 31).
func (b *Builder) SShl(dst, a, c Operand) *Builder {
	return b.emit(Instr{Op: OpSShl, Dst: dst, Src: [3]Operand{a, c}})
}

// SShr emits sdst = a >> (b & 31).
func (b *Builder) SShr(dst, a, c Operand) *Builder {
	return b.emit(Instr{Op: OpSShr, Dst: dst, Src: [3]Operand{a, c}})
}

// SAnd emits sdst = a & b.
func (b *Builder) SAnd(dst, a, c Operand) *Builder {
	return b.emit(Instr{Op: OpSAnd, Dst: dst, Src: [3]Operand{a, c}})
}

// SSlt emits sdst = (int32(a) < int32(b)) ? 1 : 0.
func (b *Builder) SSlt(dst, a, c Operand) *Builder {
	return b.emit(Instr{Op: OpSSlt, Dst: dst, Src: [3]Operand{a, c}})
}

// EndPgm terminates the wavefront.
func (b *Builder) EndPgm() *Builder { return b.emit(Instr{Op: OpEndPgm}) }

// Build resolves labels, validates structure, and returns the program.
func (b *Builder) Build() (*Program, error) {
	code := append([]Instr(nil), b.code...)
	for idx, label := range b.fixups {
		target, ok := b.labels[label]
		if !ok {
			b.errf("undefined label %q", label)
			continue
		}
		code[idx].Target = int32(target)
	}
	depth := 0
	sawElse := []bool{}
	for i, in := range code {
		switch in.Op {
		case OpIfVCC:
			depth++
			sawElse = append(sawElse, false)
		case OpElse:
			if depth == 0 {
				b.errf("ELSE outside IF at instruction %d", i)
			} else if sawElse[len(sawElse)-1] {
				b.errf("double ELSE at instruction %d", i)
			} else {
				sawElse[len(sawElse)-1] = true
			}
		case OpEndIf:
			if depth == 0 {
				b.errf("ENDIF outside IF at instruction %d", i)
			} else {
				depth--
				sawElse = sawElse[:len(sawElse)-1]
			}
		case OpBrz, OpBrnz:
			if in.Src[0].Kind != OpdSReg {
				b.errf("conditional branch at %d needs a scalar register condition", i)
			}
		}
	}
	if depth != 0 {
		b.errf("unbalanced IF/ENDIF (depth %d at end)", depth)
	}
	if len(code) == 0 || code[len(code)-1].Op != OpEndPgm {
		code = append(code, Instr{Op: OpEndPgm})
	}
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	return &Program{
		Name:     b.name,
		Code:     code,
		NumVRegs: b.numVRegs,
		NumSRegs: b.numSRegs,
	}, nil
}
