package gpu

import (
	"fmt"
	"sort"

	"mbavf/internal/cache"
	"mbavf/internal/dataflow"
	"mbavf/internal/lifetime"
	"mbavf/internal/mem"
)

// Config sizes the GPU.
type Config struct {
	// NumCUs is the number of compute units (4 in the paper's APU).
	NumCUs int
	// WaveSlotsPerCU is the number of wavefronts resident on a CU at
	// once; their registers coexist in the CU's VGPR file.
	WaveSlotsPerCU int
	// NumVRegs is the number of 32-bit vector registers per wavefront.
	NumVRegs int
	// NumSRegs is the number of scalar registers per wavefront.
	NumSRegs int
	// MaxInstructions bounds total dynamic wavefront instructions; runs
	// exceeding it trap (guards against injection-corrupted infinite
	// loops).
	MaxInstructions uint64
}

// DefaultConfig mirrors the paper's APU GPU: 4 compute units, 4 resident
// wavefronts per CU, 32 VGPRs.
func DefaultConfig() Config {
	return Config{
		NumCUs:          4,
		WaveSlotsPerCU:  4,
		NumVRegs:        32,
		NumSRegs:        16,
		MaxInstructions: 64 << 20,
	}
}

// VGPRThreads returns the number of threads whose registers coexist in one
// CU's VGPR file: resident wave slots times the 16 lanes.
func (c Config) VGPRThreads() int { return c.WaveSlotsPerCU * Lanes }

// Dispatch launches Waves wavefronts of Prog. Args are copied into scalar
// registers s0.. of every wavefront at launch.
type Dispatch struct {
	Prog  *Program
	Waves int
	Args  []uint32
}

// Injection flips Mask bits of 32-bit register Reg of Thread (slot*16 +
// lane) in the given CU's VGPR file at the first instruction issue at or
// after Cycle. If the targeted wave slot is unoccupied at that time the
// flip lands in unallocated state and is naturally masked.
type Injection struct {
	Cycle   uint64
	CU      int
	Thread  int
	Reg     int
	Mask    uint32
	applied bool
}

type execEntry struct {
	saved    uint16
	thenMask uint16
}

type wave struct {
	id      int
	cu      int
	slot    int
	prog    *Program
	args    []uint32
	pc      int
	readyAt uint64
	done    bool
	started bool

	vreg    []uint32 // reg*Lanes + lane
	vregVer []dataflow.VersionID
	sreg    []uint32
	vcc     uint16
	vccVer  [Lanes]dataflow.VersionID
	exec    uint16
	stack   []execEntry
	instrs  uint64
}

// Machine is the GPU: compute units, wavefront scheduler, register state,
// and hooks into memory, caches, the dataflow graph, and the VGPR
// lifetime tracker.
type Machine struct {
	cfg    Config
	memory *mem.Memory
	caches *cache.Hierarchy
	graph  *dataflow.Graph

	vgprTracker *lifetime.Tracker
	trackCU     int

	slots    []*wave // cu*WaveSlotsPerCU + slot; nil when free
	cuFree   []uint64
	endCycle uint64
	instrs   uint64
	stalls   uint64

	injections []Injection
	nextInj    int

	// cancel, when non-nil, is polled between instructions (every
	// cancelCheckMask+1 issues); a non-nil return aborts the dispatch
	// with that error. It is how context cancellation reaches the
	// otherwise context-free execution loop.
	cancel func() error
}

// cancelCheckMask throttles cancellation polls to one per 4096
// instructions, keeping the hook invisible on the issue path.
const cancelCheckMask = 4096 - 1

// New builds a machine over the given memory and cache hierarchy.
func New(cfg Config, memory *mem.Memory, caches *cache.Hierarchy) (*Machine, error) {
	if cfg.NumCUs < 1 || cfg.WaveSlotsPerCU < 1 || cfg.NumVRegs < 1 || cfg.NumSRegs < 1 {
		return nil, fmt.Errorf("gpu: invalid config %+v", cfg)
	}
	if cfg.MaxInstructions == 0 {
		cfg.MaxInstructions = DefaultConfig().MaxInstructions
	}
	return &Machine{
		cfg:     cfg,
		memory:  memory,
		caches:  caches,
		slots:   make([]*wave, cfg.NumCUs*cfg.WaveSlotsPerCU),
		cuFree:  make([]uint64, cfg.NumCUs),
		trackCU: -1,
	}, nil
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// AttachGraph enables dataflow recording into g. It must be set before any
// dispatch runs and cannot be combined with injections.
func (m *Machine) AttachGraph(g *dataflow.Graph) { m.graph = g }

// SetCancel installs a cancellation poll (typically context.Context.Err)
// checked periodically during dispatch execution. A non-nil return makes
// the running dispatch stop and surface that error; the machine is not
// usable afterwards. A nil hook disables polling.
func (m *Machine) SetCancel(f func() error) { m.cancel = f }

// TrackVGPR attaches a lifetime tracker to the given CU's vector register
// file. The tracker must have VGPRThreads()*NumVRegs words of 4 bytes:
// word = thread*NumVRegs + reg with thread = slot*16 + lane.
func (m *Machine) TrackVGPR(cu int, t *lifetime.Tracker) {
	m.trackCU = cu
	m.vgprTracker = t
}

// AddInjection schedules a register fault. All injections must be added
// before running.
func (m *Machine) AddInjection(inj Injection) {
	m.injections = append(m.injections, inj)
	sort.SliceStable(m.injections, func(i, j int) bool {
		return m.injections[i].Cycle < m.injections[j].Cycle
	})
}

// Cycles returns the last cycle any instruction completed.
func (m *Machine) Cycles() uint64 { return m.endCycle }

// Instructions returns the total dynamic wavefront instructions executed.
func (m *Machine) Instructions() uint64 { return m.instrs }

// StallCycles returns the cycles compute units spent idle waiting for an
// issued wavefront's operands (memory and execution latency) — the
// pipeline-stall measure the observability layer reports per run.
func (m *Machine) StallCycles() uint64 { return m.stalls }

func (m *Machine) vgprWord(slot, lane, reg int) int {
	return (slot*Lanes+lane)*m.cfg.NumVRegs + reg
}

func (m *Machine) newWave(id int, d Dispatch) *wave {
	w := &wave{
		id:      id,
		prog:    d.Prog,
		args:    d.Args,
		vreg:    make([]uint32, m.cfg.NumVRegs*Lanes),
		vregVer: make([]dataflow.VersionID, m.cfg.NumVRegs*Lanes),
		sreg:    make([]uint32, m.cfg.NumSRegs),
		exec:    0xFFFF,
	}
	copy(w.sreg, d.Args)
	return w
}

func (m *Machine) admit(w *wave, cu, slot int, at uint64) {
	w.cu = cu
	w.slot = slot
	w.readyAt = at
	w.started = true
	m.slots[cu*m.cfg.WaveSlotsPerCU+slot] = w
}

// applyInjections flips registers for every injection due at or before t.
func (m *Machine) applyInjections(t uint64) {
	for m.nextInj < len(m.injections) && m.injections[m.nextInj].Cycle <= t {
		inj := &m.injections[m.nextInj]
		m.nextInj++
		if inj.applied {
			continue
		}
		inj.applied = true
		if inj.CU < 0 || inj.CU >= m.cfg.NumCUs {
			continue
		}
		slot := inj.Thread / Lanes
		lane := inj.Thread % Lanes
		if slot < 0 || slot >= m.cfg.WaveSlotsPerCU || inj.Reg < 0 || inj.Reg >= m.cfg.NumVRegs {
			continue
		}
		w := m.slots[inj.CU*m.cfg.WaveSlotsPerCU+slot]
		if w == nil {
			continue // empty slot: fault in unallocated state, masked
		}
		w.vreg[inj.Reg*Lanes+lane] ^= inj.Mask
	}
}

// RunDispatch executes one kernel dispatch to completion. L1 caches are
// flushed at the dispatch boundary, matching GPU kernel-completion
// semantics; this is what makes multi-pass kernels with cross-wavefront
// dataflow coherent. It returns an error if the kernel trapped.
func (m *Machine) RunDispatch(d Dispatch) error {
	if d.Prog == nil || d.Waves < 1 {
		return fmt.Errorf("gpu: dispatch needs a program and at least one wave")
	}
	if m.cancel != nil {
		if err := m.cancel(); err != nil {
			return fmt.Errorf("gpu: dispatch cancelled: %w", err)
		}
	}
	if d.Prog.NumVRegs > m.cfg.NumVRegs || d.Prog.NumSRegs > m.cfg.NumSRegs {
		return fmt.Errorf("gpu: program %q needs %d vregs / %d sregs, machine has %d / %d",
			d.Prog.Name, d.Prog.NumVRegs, d.Prog.NumSRegs, m.cfg.NumVRegs, m.cfg.NumSRegs)
	}
	if len(d.Args) > m.cfg.NumSRegs {
		return fmt.Errorf("gpu: %d dispatch args exceed %d scalar registers", len(d.Args), m.cfg.NumSRegs)
	}
	var queue []*wave
	for i := 0; i < d.Waves; i++ {
		queue = append(queue, m.newWave(i, d))
	}
	// Fill free slots round-robin across CUs.
	for cu := 0; cu < m.cfg.NumCUs && len(queue) > 0; cu++ {
		for slot := 0; slot < m.cfg.WaveSlotsPerCU && len(queue) > 0; slot++ {
			if m.slots[cu*m.cfg.WaveSlotsPerCU+slot] == nil {
				m.admit(queue[0], cu, slot, m.endCycle)
				queue = queue[1:]
			}
		}
	}
	for {
		// Pick the runnable wave with the earliest possible issue time.
		var w *wave
		var issue uint64
		for _, cand := range m.slots {
			if cand == nil || cand.done {
				continue
			}
			at := max(m.cuFree[cand.cu], cand.readyAt)
			if w == nil || at < issue {
				w, issue = cand, at
			}
		}
		if w == nil {
			break
		}
		m.stalls += issue - m.cuFree[w.cu] // CU idle until the wave's operands arrive
		m.applyInjections(issue)
		lat, err := m.step(w, issue)
		if err != nil {
			m.endCycle = max(m.endCycle, issue+1)
			return fmt.Errorf("gpu: wave %d of %q at pc %d: %w", w.id, w.prog.Name, w.pc, err)
		}
		m.cuFree[w.cu] = issue + 1
		w.readyAt = issue + lat
		m.endCycle = max(m.endCycle, issue+lat)
		m.instrs++
		if m.instrs > m.cfg.MaxInstructions {
			return trapf(TrapBudget, "gpu: instruction budget %d exceeded (livelock?)", m.cfg.MaxInstructions)
		}
		if m.cancel != nil && m.instrs&cancelCheckMask == 0 {
			if err := m.cancel(); err != nil {
				m.endCycle = max(m.endCycle, issue+1)
				return fmt.Errorf("gpu: dispatch cancelled: %w", err)
			}
		}
		if w.done {
			idx := w.cu*m.cfg.WaveSlotsPerCU + w.slot
			m.slots[idx] = nil
			if len(queue) > 0 {
				m.admit(queue[0], w.cu, w.slot, issue+1)
				queue = queue[1:]
			}
		}
	}
	m.caches.FlushL1s(m.endCycle)
	return nil
}

// Finish flushes the whole cache hierarchy at the end of simulation so
// dirty state resolves into writeback events, and closes the VGPR
// tracker. Call once after the last dispatch.
func (m *Machine) Finish() {
	m.caches.FlushAll(m.endCycle)
	if m.vgprTracker != nil {
		m.vgprTracker.Finish(m.endCycle)
	}
}
