package gpu

import (
	"testing"
)

// FuzzAssemble checks that arbitrary source text never panics the
// assembler: it must either produce a valid program or return an error.
func FuzzAssemble(f *testing.F) {
	f.Add(vecaddAsm)
	f.Add("v_mov v0, tid\ns_endpgm")
	f.Add("loop:\ns_branch loop")
	f.Add("v_load v1, [v0+4]")
	f.Add("v_cmp_lt v0, 3\ns_if_vcc\ns_endif")
	f.Add("; comment only")
	f.Add("v_mov v0, 1.5f\nv_mov v1, 0xFF\nv_mov v2, -12")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Assemble("fuzz", src)
		if err != nil {
			return
		}
		// Valid programs must round-trip through the disassembler.
		text := Disassemble(prog)
		prog2, err := Assemble("fuzz2", text)
		if err != nil {
			t.Fatalf("disassembly failed to re-assemble: %v\n%s", err, text)
		}
		if len(prog2.Code) != len(prog.Code) {
			t.Fatalf("round trip changed instruction count %d -> %d", len(prog.Code), len(prog2.Code))
		}
	})
}
