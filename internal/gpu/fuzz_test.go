package gpu

import (
	"testing"
)

// FuzzAssembleRoundTrip checks that arbitrary source text never panics
// the assembler — it must either produce a valid program or return an
// error — and that every valid program survives a full
// Assemble → Disassemble → Assemble round trip with the disassembly as a
// fixed point.
func FuzzAssembleRoundTrip(f *testing.F) {
	f.Add(vecaddAsm)
	f.Add("v_mov v0, tid\ns_endpgm")
	f.Add("loop:\ns_branch loop")
	f.Add("v_load v1, [v0+4]")
	f.Add("v_cmp_lt v0, 3\ns_if_vcc\ns_endif")
	f.Add("; comment only")
	f.Add("v_mov v0, 1.5f\nv_mov v1, 0xFF\nv_mov v2, -12")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Assemble("fuzz", src)
		if err != nil {
			return
		}
		// Valid programs must round-trip through the disassembler.
		text := Disassemble(prog)
		// Re-assemble under the same name: the disassembly header names
		// the kernel, and the fixed-point check below compares texts.
		prog2, err := Assemble("fuzz", text)
		if err != nil {
			t.Fatalf("disassembly failed to re-assemble: %v\n%s", err, text)
		}
		if len(prog2.Code) != len(prog.Code) {
			t.Fatalf("round trip changed instruction count %d -> %d", len(prog.Code), len(prog2.Code))
		}
		if prog2.NumVRegs != prog.NumVRegs || prog2.NumSRegs != prog.NumSRegs {
			t.Fatalf("round trip changed register demand %d/%d -> %d/%d",
				prog.NumVRegs, prog.NumSRegs, prog2.NumVRegs, prog2.NumSRegs)
		}
		// The disassembly must be a fixed point: disassembling the
		// re-assembled program reproduces it byte for byte.
		if text2 := Disassemble(prog2); text2 != text {
			t.Fatalf("disassembly is not a fixed point:\nfirst:\n%s\nsecond:\n%s", text, text2)
		}
	})
}
