// Package interleave describes how a hardware structure's logical data
// words are laid out across a physical SRAM bit array, and which protection
// domain each physical bit belongs to.
//
// Bit interleaving determines how a spatial multi-bit fault — a run of
// physically adjacent flipped bits — is split across protection domains,
// which in turn decides whether protection schemes see one large fault or
// several small ones. The paper studies:
//
//   - logical interleaving: each data word is split into I interleaved
//     check words, so adjacent bits of the same word are protected by
//     different codes (extra check-bit area, highest ACE locality);
//   - way-physical interleaving: bits from I different ways of the same
//     cache set are interleaved;
//   - index-physical interleaving: bits from lines at I adjacent set
//     indices are interleaved;
//   - intra-thread (rx) interleaving: different registers of the same GPU
//     thread are interleaved;
//   - inter-thread (tx) interleaving: the same register of I adjacent GPU
//     threads is interleaved.
package interleave

import (
	"fmt"

	"mbavf/internal/bitgeom"
)

// WordBit identifies one bit of one logical data word: Word is the word
// index in the structure (cache line, 32-bit register instance, ...) and
// Bit its bit offset within that word.
type WordBit struct {
	Word, Bit int
}

// Layout couples a physical bit-array geometry with the mapping from each
// physical bit to its logical word bit and its protection domain.
type Layout struct {
	name string
	// Geom is the physical array shape whose rows are wordlines.
	Geom bitgeom.Geometry
	// Words is the number of logical data words stored in the array.
	Words int
	// WordBits is the size of each logical data word in bits.
	WordBits int
	// Domains is the number of protection domains (one code word each).
	Domains int
	// DomainBits is the number of data bits protected by one domain.
	DomainBits int
	// Factor is the interleaving degree I (1 = no interleaving).
	Factor int
	mapFn  func(p bitgeom.BitPos) (WordBit, int)
}

// Name returns the layout's display name, e.g. "way-physical-x2".
func (l *Layout) Name() string { return l.name }

// Map returns the logical word bit and protection domain of physical bit p.
func (l *Layout) Map(p bitgeom.BitPos) (WordBit, int) { return l.mapFn(p) }

// RowMap is the word-level remap table of one physical wordline: flat
// per-column arrays of the logical word, word-bit, and protection domain
// that Map returns for (row, col). The packed ACE solver resolves every
// column of a wordline once per row through this table — one sequential
// array walk — instead of calling Map once per fault-group bit per group.
type RowMap struct {
	Word, Bit, Dom []int32
}

// Row fills m with the remap table of physical row r, reusing m's
// backing arrays across calls.
func (l *Layout) Row(r int, m *RowMap) {
	cols := l.Geom.Cols
	if cap(m.Word) < cols {
		m.Word = make([]int32, cols)
		m.Bit = make([]int32, cols)
		m.Dom = make([]int32, cols)
	}
	m.Word, m.Bit, m.Dom = m.Word[:cols], m.Bit[:cols], m.Dom[:cols]
	for c := 0; c < cols; c++ {
		wb, dom := l.mapFn(bitgeom.BitPos{Row: r, Col: c})
		m.Word[c], m.Bit[c], m.Dom[c] = int32(wb.Word), int32(wb.Bit), int32(dom)
	}
}

// NewCustom returns a layout with an arbitrary bit mapping. It exists
// for structures whose physical scramble none of the named constructors
// describe (and for solver equivalence tests that need geometries
// straddling 64-bit word boundaries). wordBits is the logical word width
// backing the geometry's rows; mapFn must be a bijection from geometry
// bits onto (word, bit) pairs with word < words and bit < wordBits.
func NewCustom(name string, geom bitgeom.Geometry, words, wordBits, domains, factor int, mapFn func(bitgeom.BitPos) (WordBit, int)) (*Layout, error) {
	if words < 1 || wordBits < 1 || domains < 1 || factor < 1 {
		return nil, fmt.Errorf("interleave: custom layout %q needs positive words/wordBits/domains/factor", name)
	}
	if mapFn == nil {
		return nil, fmt.Errorf("interleave: custom layout %q needs a map function", name)
	}
	return &Layout{
		name:       name,
		Geom:       geom,
		Words:      words,
		WordBits:   wordBits,
		Domains:    domains,
		DomainBits: (words * wordBits) / domains,
		Factor:     factor,
		mapFn:      mapFn,
	}, nil
}

func validate(kind string, groups, factor int) error {
	if factor < 1 {
		return fmt.Errorf("interleave: %s factor %d must be >= 1", kind, factor)
	}
	if groups%factor != 0 {
		return fmt.Errorf("interleave: %s factor %d must divide %d", kind, factor, groups)
	}
	return nil
}

// Logical returns a layout in which each physical row holds one data word
// and the word is split into factor interleaved check words: physical
// column c of word w is logical bit c, protected by domain w*factor +
// c%factor. With factor 1 this is the un-interleaved baseline layout.
func Logical(words, wordBits, factor int) (*Layout, error) {
	if err := validate("logical", wordBits, factor); err != nil {
		return nil, err
	}
	name := "logical"
	if factor > 1 {
		name = fmt.Sprintf("logical-x%d", factor)
	}
	return &Layout{
		name:       name,
		Geom:       bitgeom.Geometry{Rows: words, Cols: wordBits},
		Words:      words,
		WordBits:   wordBits,
		Domains:    words * factor,
		DomainBits: wordBits / factor,
		Factor:     factor,
		mapFn: func(p bitgeom.BitPos) (WordBit, int) {
			return WordBit{Word: p.Row, Bit: p.Col}, p.Row*factor + p.Col%factor
		},
	}, nil
}

// WayPhysical returns a cache-data-array layout interleaving lines from
// factor different ways of the same set. Lines are indexed set*ways + way.
// Each physical row holds factor complete lines: the row for (set, way
// group g) places bit b of way g*factor+k at column b*factor+k. Each line
// is one protection domain.
func WayPhysical(sets, ways, lineBits, factor int) (*Layout, error) {
	if err := validate("way-physical", ways, factor); err != nil {
		return nil, err
	}
	words := sets * ways
	return &Layout{
		name:       fmt.Sprintf("way-physical-x%d", factor),
		Geom:       bitgeom.Geometry{Rows: words / factor, Cols: lineBits * factor},
		Words:      words,
		WordBits:   lineBits,
		Domains:    words,
		DomainBits: lineBits,
		Factor:     factor,
		mapFn: func(p bitgeom.BitPos) (WordBit, int) {
			groupsPerSet := ways / factor
			set := p.Row / groupsPerSet
			group := p.Row % groupsPerSet
			way := group*factor + p.Col%factor
			word := set*ways + way
			return WordBit{Word: word, Bit: p.Col / factor}, word
		},
	}, nil
}

// IndexPhysical returns a cache-data-array layout interleaving lines from
// factor adjacent set indices (same way). The row for (set group g, way)
// places bit b of set g*factor+k at column b*factor+k. Each line is one
// protection domain.
func IndexPhysical(sets, ways, lineBits, factor int) (*Layout, error) {
	if err := validate("index-physical", sets, factor); err != nil {
		return nil, err
	}
	words := sets * ways
	return &Layout{
		name:       fmt.Sprintf("index-physical-x%d", factor),
		Geom:       bitgeom.Geometry{Rows: words / factor, Cols: lineBits * factor},
		Words:      words,
		WordBits:   lineBits,
		Domains:    words,
		DomainBits: lineBits,
		Factor:     factor,
		mapFn: func(p bitgeom.BitPos) (WordBit, int) {
			groupsPerWay := sets / factor
			way := p.Row / groupsPerWay
			group := p.Row % groupsPerWay
			set := group*factor + p.Col%factor
			word := set*ways + way
			return WordBit{Word: word, Bit: p.Col / factor}, word
		},
	}, nil
}

// IntraThread returns a register-file layout ("rx" interleaving in the
// paper's case study) interleaving factor different registers of the same
// thread. Register instances are indexed thread*regs + reg and each is one
// protection domain. The row for (thread, reg group g) places bit b of
// register g*factor+k at column b*factor+k.
func IntraThread(threads, regs, regBits, factor int) (*Layout, error) {
	if err := validate("intra-thread", regs, factor); err != nil {
		return nil, err
	}
	words := threads * regs
	return &Layout{
		name:       fmt.Sprintf("intra-thread-x%d", factor),
		Geom:       bitgeom.Geometry{Rows: words / factor, Cols: regBits * factor},
		Words:      words,
		WordBits:   regBits,
		Domains:    words,
		DomainBits: regBits,
		Factor:     factor,
		mapFn: func(p bitgeom.BitPos) (WordBit, int) {
			groupsPerThread := regs / factor
			thread := p.Row / groupsPerThread
			group := p.Row % groupsPerThread
			reg := group*factor + p.Col%factor
			word := thread*regs + reg
			return WordBit{Word: word, Bit: p.Col / factor}, word
		},
	}, nil
}

// InterThread returns a register-file layout ("tx" interleaving in the
// paper's case study) interleaving the same register of factor adjacent
// threads. The row for (thread group g, reg) places bit b of thread
// g*factor+k at column b*factor+k. Register instances are indexed
// thread*regs + reg and each is one protection domain.
func InterThread(threads, regs, regBits, factor int) (*Layout, error) {
	if err := validate("inter-thread", threads, factor); err != nil {
		return nil, err
	}
	words := threads * regs
	return &Layout{
		name:       fmt.Sprintf("inter-thread-x%d", factor),
		Geom:       bitgeom.Geometry{Rows: words / factor, Cols: regBits * factor},
		Words:      words,
		WordBits:   regBits,
		Domains:    words,
		DomainBits: regBits,
		Factor:     factor,
		mapFn: func(p bitgeom.BitPos) (WordBit, int) {
			groupsPerReg := threads / factor
			reg := p.Row / groupsPerReg
			group := p.Row % groupsPerReg
			thread := group*factor + p.Col%factor
			word := thread*regs + reg
			return WordBit{Word: word, Bit: p.Col / factor}, word
		},
	}, nil
}
