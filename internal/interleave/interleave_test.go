package interleave

import (
	"testing"

	"mbavf/internal/bitgeom"
)

// checkBijection verifies that the layout maps physical bits one-to-one
// onto (word, bit) pairs, that every domain is non-empty and equally
// sized, and that any Factor consecutive bits in a row hit Factor distinct
// domains.
func checkBijection(t *testing.T, l *Layout) {
	t.Helper()
	if l.Geom.Bits() != l.Words*l.WordBits {
		t.Fatalf("%s: geometry %dx%d holds %d bits, want %d words x %d bits",
			l.Name(), l.Geom.Rows, l.Geom.Cols, l.Geom.Bits(), l.Words, l.WordBits)
	}
	seen := make(map[WordBit]bool, l.Geom.Bits())
	domainSize := make(map[int]int)
	for r := 0; r < l.Geom.Rows; r++ {
		var prevDomains []int
		for c := 0; c < l.Geom.Cols; c++ {
			wb, dom := l.Map(bitgeom.BitPos{Row: r, Col: c})
			if wb.Word < 0 || wb.Word >= l.Words || wb.Bit < 0 || wb.Bit >= l.WordBits {
				t.Fatalf("%s: bit (%d,%d) maps out of range: %+v", l.Name(), r, c, wb)
			}
			if dom < 0 || dom >= l.Domains {
				t.Fatalf("%s: bit (%d,%d) domain %d out of range", l.Name(), r, c, dom)
			}
			if seen[wb] {
				t.Fatalf("%s: logical bit %+v mapped twice", l.Name(), wb)
			}
			seen[wb] = true
			domainSize[dom]++
			prevDomains = append(prevDomains, dom)
			if len(prevDomains) >= l.Factor {
				window := prevDomains[len(prevDomains)-l.Factor:]
				uniq := make(map[int]bool, l.Factor)
				for _, d := range window {
					uniq[d] = true
				}
				if len(uniq) != l.Factor {
					t.Fatalf("%s: row %d cols ending %d: %d consecutive bits map to %d domains, want %d",
						l.Name(), r, c, l.Factor, len(uniq), l.Factor)
				}
			}
		}
	}
	if len(domainSize) != l.Domains {
		t.Fatalf("%s: %d domains populated, want %d", l.Name(), len(domainSize), l.Domains)
	}
	for dom, sz := range domainSize {
		if sz != l.DomainBits {
			t.Fatalf("%s: domain %d has %d bits, want %d", l.Name(), dom, sz, l.DomainBits)
		}
	}
}

func TestLogicalLayouts(t *testing.T) {
	for _, factor := range []int{1, 2, 4} {
		l, err := Logical(8, 64, factor)
		if err != nil {
			t.Fatal(err)
		}
		checkBijection(t, l)
		if factor > 1 && l.Domains != 8*factor {
			t.Errorf("logical x%d domains = %d, want %d", factor, l.Domains, 8*factor)
		}
	}
}

func TestLogicalSameWordDifferentDomains(t *testing.T) {
	l, err := Logical(4, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	wb0, d0 := l.Map(bitgeom.BitPos{Row: 1, Col: 0})
	wb1, d1 := l.Map(bitgeom.BitPos{Row: 1, Col: 1})
	if wb0.Word != wb1.Word {
		t.Fatalf("adjacent bits should stay in the same logical word: %v %v", wb0, wb1)
	}
	if d0 == d1 {
		t.Fatal("adjacent bits of a logically interleaved word must be in different domains")
	}
}

func TestWayPhysicalAdjacencyCrossesWays(t *testing.T) {
	const sets, ways, lineBits = 4, 4, 64
	l, err := WayPhysical(sets, ways, lineBits, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkBijection(t, l)
	// Adjacent physical bits belong to different lines in the same set.
	wb0, _ := l.Map(bitgeom.BitPos{Row: 0, Col: 0})
	wb1, _ := l.Map(bitgeom.BitPos{Row: 0, Col: 1})
	set0, way0 := wb0.Word/ways, wb0.Word%ways
	set1, way1 := wb1.Word/ways, wb1.Word%ways
	if set0 != set1 {
		t.Errorf("way-physical adjacent bits changed set: %d vs %d", set0, set1)
	}
	if way0 == way1 {
		t.Error("way-physical adjacent bits stayed in the same way")
	}
}

func TestIndexPhysicalAdjacencyCrossesSets(t *testing.T) {
	const sets, ways, lineBits = 8, 2, 64
	l, err := IndexPhysical(sets, ways, lineBits, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkBijection(t, l)
	wb0, _ := l.Map(bitgeom.BitPos{Row: 0, Col: 0})
	wb1, _ := l.Map(bitgeom.BitPos{Row: 0, Col: 1})
	set0, way0 := wb0.Word/ways, wb0.Word%ways
	set1, way1 := wb1.Word/ways, wb1.Word%ways
	if way0 != way1 {
		t.Errorf("index-physical adjacent bits changed way: %d vs %d", way0, way1)
	}
	if set0 == set1 {
		t.Error("index-physical adjacent bits stayed in the same set")
	}
	if set1 != set0+1 {
		t.Errorf("index-physical should interleave adjacent indices, got sets %d,%d", set0, set1)
	}
}

func TestIntraThreadAdjacency(t *testing.T) {
	const threads, regs, regBits = 4, 8, 32
	l, err := IntraThread(threads, regs, regBits, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkBijection(t, l)
	wb0, _ := l.Map(bitgeom.BitPos{Row: 0, Col: 0})
	wb1, _ := l.Map(bitgeom.BitPos{Row: 0, Col: 1})
	t0, r0 := wb0.Word/regs, wb0.Word%regs
	t1, r1 := wb1.Word/regs, wb1.Word%regs
	if t0 != t1 {
		t.Error("intra-thread adjacent bits changed thread")
	}
	if r0 == r1 {
		t.Error("intra-thread adjacent bits stayed in the same register")
	}
}

func TestInterThreadAdjacency(t *testing.T) {
	const threads, regs, regBits = 16, 4, 32
	for _, factor := range []int{2, 4} {
		l, err := InterThread(threads, regs, regBits, factor)
		if err != nil {
			t.Fatal(err)
		}
		checkBijection(t, l)
		wb0, _ := l.Map(bitgeom.BitPos{Row: 0, Col: 0})
		wb1, _ := l.Map(bitgeom.BitPos{Row: 0, Col: 1})
		t0, r0 := wb0.Word/regs, wb0.Word%regs
		t1, r1 := wb1.Word/regs, wb1.Word%regs
		if r0 != r1 {
			t.Error("inter-thread adjacent bits changed register index")
		}
		if t0 == t1 {
			t.Error("inter-thread adjacent bits stayed in the same thread")
		}
		if t1 != t0+1 {
			t.Errorf("inter-thread x%d should interleave adjacent threads, got %d,%d", factor, t0, t1)
		}
	}
}

func TestInvalidFactors(t *testing.T) {
	if _, err := Logical(4, 32, 3); err == nil {
		t.Error("logical x3 over 32 bits should fail")
	}
	if _, err := Logical(4, 32, 0); err == nil {
		t.Error("factor 0 should fail")
	}
	if _, err := WayPhysical(4, 4, 64, 8); err == nil {
		t.Error("way factor 8 with 4 ways should fail")
	}
	if _, err := IndexPhysical(4, 2, 64, 8); err == nil {
		t.Error("index factor 8 with 4 sets should fail")
	}
	if _, err := IntraThread(4, 4, 32, 8); err == nil {
		t.Error("intra-thread factor 8 with 4 regs should fail")
	}
	if _, err := InterThread(4, 4, 32, 8); err == nil {
		t.Error("inter-thread factor 8 with 4 threads should fail")
	}
}

func TestNames(t *testing.T) {
	l1, _ := Logical(2, 32, 1)
	if l1.Name() != "logical" {
		t.Errorf("name = %q", l1.Name())
	}
	l2, _ := Logical(2, 32, 2)
	if l2.Name() != "logical-x2" {
		t.Errorf("name = %q", l2.Name())
	}
	w, _ := WayPhysical(2, 2, 32, 2)
	if w.Name() != "way-physical-x2" {
		t.Errorf("name = %q", w.Name())
	}
}

func TestAllLayoutsBijective(t *testing.T) {
	mk := func(f func() (*Layout, error)) *Layout {
		t.Helper()
		l, err := f()
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	layouts := []*Layout{
		mk(func() (*Layout, error) { return Logical(16, 64, 4) }),
		mk(func() (*Layout, error) { return WayPhysical(8, 4, 64, 4) }),
		mk(func() (*Layout, error) { return IndexPhysical(16, 2, 64, 4) }),
		mk(func() (*Layout, error) { return IntraThread(8, 8, 32, 4) }),
		mk(func() (*Layout, error) { return InterThread(16, 4, 32, 4) }),
	}
	for _, l := range layouts {
		checkBijection(t, l)
	}
}

// TestRowMatchesMap checks the packed solver's remap table against the
// point query it caches: Row(r) must agree with Map at every column of
// every row, for every layout family, with buffers reused across rows.
func TestRowMatchesMap(t *testing.T) {
	mk := func(f func() (*Layout, error)) *Layout {
		t.Helper()
		l, err := f()
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	layouts := []*Layout{
		mk(func() (*Layout, error) { return Logical(8, 64, 4) }),
		mk(func() (*Layout, error) { return WayPhysical(4, 4, 32, 2) }),
		mk(func() (*Layout, error) { return IndexPhysical(8, 2, 32, 4) }),
		mk(func() (*Layout, error) { return IntraThread(4, 8, 32, 4) }),
		mk(func() (*Layout, error) { return InterThread(8, 4, 32, 2) }),
		mk(func() (*Layout, error) {
			return NewCustom("custom-65", bitgeom.Geometry{Rows: 3, Cols: 65}, 3, 72, 3, 1,
				func(p bitgeom.BitPos) (WordBit, int) {
					return WordBit{Word: p.Row, Bit: p.Col}, p.Row
				})
		}),
	}
	var m RowMap
	for _, l := range layouts {
		for r := 0; r < l.Geom.Rows; r++ {
			l.Row(r, &m)
			if len(m.Word) != l.Geom.Cols {
				t.Fatalf("%s row %d: table has %d cols, want %d", l.Name(), r, len(m.Word), l.Geom.Cols)
			}
			for c := 0; c < l.Geom.Cols; c++ {
				wb, dom := l.Map(bitgeom.BitPos{Row: r, Col: c})
				if int(m.Word[c]) != wb.Word || int(m.Bit[c]) != wb.Bit || int(m.Dom[c]) != dom {
					t.Fatalf("%s (%d,%d): Row gives (%d,%d,%d), Map gives (%d,%d,%d)",
						l.Name(), r, c, m.Word[c], m.Bit[c], m.Dom[c], wb.Word, wb.Bit, dom)
				}
			}
		}
	}
}

func TestNewCustomValidation(t *testing.T) {
	geom := bitgeom.Geometry{Rows: 2, Cols: 8}
	fn := func(p bitgeom.BitPos) (WordBit, int) { return WordBit{Word: p.Row, Bit: p.Col}, 0 }
	if _, err := NewCustom("bad", geom, 0, 8, 1, 1, fn); err == nil {
		t.Error("zero words accepted")
	}
	if _, err := NewCustom("bad", geom, 2, 8, 1, 0, fn); err == nil {
		t.Error("zero factor accepted")
	}
	if _, err := NewCustom("bad", geom, 2, 8, 1, 1, nil); err == nil {
		t.Error("nil map function accepted")
	}
	l, err := NewCustom("ok", geom, 2, 8, 4, 2, fn)
	if err != nil {
		t.Fatal(err)
	}
	if l.DomainBits != 4 {
		t.Errorf("DomainBits = %d, want 4", l.DomainBits)
	}
}
