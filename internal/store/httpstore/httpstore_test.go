package httpstore_test

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"mbavf/internal/fabric"
	"mbavf/internal/store/backend"
	"mbavf/internal/store/httpstore"
	"mbavf/internal/store/mem"
	"mbavf/internal/store/storetest"
)

// newServer mounts the artifact protocol over a fresh mem backend and
// returns the backing store plus a client over real HTTP.
func newServer(t *testing.T, opts ...httpstore.Option) (*mem.Backend, *httpstore.Client) {
	t.Helper()
	mb := mem.New()
	mux := http.NewServeMux()
	httpstore.NewServer(mb).Mount(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return mb, httpstore.New(srv.URL, opts...)
}

// TestConformance proves the client+server pair satisfies the same
// backend contract as a local directory: the fleet-shared store is not
// a second, weaker kind of store.
func TestConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T) backend.Interface {
		_, c := newServer(t)
		return c
	})
}

const testKey = "0123456789abcdef0123456789abcdef"

func TestQuarantineReachesServer(t *testing.T) {
	ctx := context.Background()
	mb, c := newServer(t)
	if err := c.Put(ctx, testKey, []byte("damaged")); err != nil {
		t.Fatal(err)
	}
	if err := c.Quarantine(ctx, testKey); err != nil {
		t.Fatal(err)
	}
	if has, _ := c.Has(ctx, testKey); has {
		t.Error("quarantined key still addressable through the client")
	}
	if data, ok := mb.Quarantined(testKey); !ok || string(data) != "damaged" {
		t.Errorf("server-side quarantine = (%q, %v), want the original bytes", data, ok)
	}
}

// TestRangeReads pins both section-read paths: a protocol-speaking
// server answers 206 with just the slice; a naive server that ignores
// Range (answers 200 with the whole blob) still yields correct bytes
// because the client slices locally.
func TestRangeReads(t *testing.T) {
	ctx := context.Background()
	data := make([]byte, 512)
	for i := range data {
		data[i] = byte(i * 13)
	}

	_, c := newServer(t)
	if err := c.Put(ctx, testKey, data); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadSection(ctx, testKey, 100, 50)
	if err != nil {
		t.Fatalf("ReadSection over 206: %v", err)
	}
	if !bytes.Equal(got, data[100:150]) {
		t.Error("ReadSection over 206 returned wrong bytes")
	}

	// A server that never honors Range.
	naive := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write(data)
	}))
	defer naive.Close()
	nc := httpstore.New(naive.URL)
	got, err = nc.ReadSection(ctx, testKey, 100, 50)
	if err != nil {
		t.Fatalf("ReadSection over naive 200: %v", err)
	}
	if !bytes.Equal(got, data[100:150]) {
		t.Error("ReadSection over naive 200 returned wrong bytes")
	}
}

// TestPutRetriesChecksumReject pins the upload-integrity loop: a server
// that rejects the first upload as transit-damaged (400 mentioning
// "checksum") gets a retried PUT, and the operation succeeds.
func TestPutRetriesChecksumReject(t *testing.T) {
	var puts atomic.Int64
	mb := mem.New()
	inner := http.NewServeMux()
	httpstore.NewServer(mb).Mount(inner)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPut && puts.Add(1) == 1 {
			io.Copy(io.Discard, r.Body)
			http.Error(w, "body checksum mismatch (transport damage)", http.StatusBadRequest)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	c := httpstore.New(srv.URL, httpstore.WithRetry(3, time.Millisecond))
	if err := c.Put(context.Background(), testKey, []byte("payload")); err != nil {
		t.Fatalf("Put with one checksum reject: %v", err)
	}
	if got := puts.Load(); got != 2 {
		t.Errorf("server saw %d PUTs, want 2 (reject + retry)", got)
	}
	if data, err := mb.Get(context.Background(), testKey); err != nil || string(data) != "payload" {
		t.Errorf("backend holds (%q, %v) after retried PUT", data, err)
	}
}

// TestCatalogConditionalFetch pins the 304 path: an unchanged catalog
// replays the cached listing; a change (new artifact) invalidates it.
func TestCatalogConditionalFetch(t *testing.T) {
	ctx := context.Background()
	_, c := newServer(t)
	if err := c.Put(ctx, testKey, []byte("one")); err != nil {
		t.Fatal(err)
	}
	first, err := c.List(ctx)
	if err != nil || len(first) != 1 {
		t.Fatalf("List = (%d entries, %v), want 1", len(first), err)
	}
	// Second fetch: the server answers 304 and the client replays.
	second, err := c.List(ctx)
	if err != nil || len(second) != 1 || second[0].Key != testKey {
		t.Fatalf("conditional List = (%v, %v)", second, err)
	}
	other := "fedcba9876543210fedcba9876543210"
	if err := c.Put(ctx, other, []byte("two")); err != nil {
		t.Fatal(err)
	}
	third, err := c.List(ctx)
	if err != nil || len(third) != 2 {
		t.Fatalf("List after change = (%d entries, %v), want 2", len(third), err)
	}
}

// TestChaosTransport drives the client through fabric's fault-injecting
// transport: dropped connections, injected 503s, and bit-flipped
// response bodies. Every operation must still converge to the correct
// bytes — drops and 5xx through retry, corruption through the checksum
// header — with a seeded RNG so the run is reproducible.
func TestChaosTransport(t *testing.T) {
	ctx := context.Background()
	mb := mem.New()
	mux := http.NewServeMux()
	httpstore.NewServer(mb).Mount(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	chaos := fabric.NewChaosTransport(fabric.ChaosConfig{
		Seed:        7,
		DropRequest: 0.10,
		Err5xx:      0.10,
		Corrupt:     0.10,
	}, srv.Client().Transport)
	c := httpstore.New(srv.URL,
		httpstore.WithHTTPClient(&http.Client{Transport: chaos}),
		httpstore.WithRetry(10, time.Millisecond))

	payload := make([]byte, 2048)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	for round := 0; round < 30; round++ {
		if err := c.Put(ctx, testKey, payload); err != nil {
			t.Fatalf("round %d: Put under chaos: %v", round, err)
		}
		got, err := c.Get(ctx, testKey)
		if err != nil {
			t.Fatalf("round %d: Get under chaos: %v", round, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round %d: Get under chaos returned damaged bytes", round)
		}
		sec, err := c.ReadSection(ctx, testKey, 512, 256)
		if err != nil {
			t.Fatalf("round %d: ReadSection under chaos: %v", round, err)
		}
		if !bytes.Equal(sec, payload[512:768]) {
			t.Fatalf("round %d: ReadSection under chaos returned damaged bytes", round)
		}
	}
	injected := chaos.Injected()
	if injected["drop_request"] == 0 && injected["err_5xx"] == 0 && injected["corrupt"] == 0 {
		t.Errorf("chaos injected nothing (%v); the test proved nothing", injected)
	}
}
