// Package httpstore speaks the HTTP artifact protocol: a Client backend
// that lets a whole fleet of workers share one artifact store over the
// network, and a Server that mounts any other backend (normally disk)
// behind it. One worker simulates and records; every other worker's
// query is then a ranged fetch instead of a simulation.
//
// # Protocol
//
// Artifacts live under {base}/store/v1:
//
//	GET    /store/v1/artifacts/{key}   whole blob (200) or a Range
//	                                   slice (206); X-Mbavf-Checksum
//	                                   carries the sha256 of the bytes
//	                                   as sent
//	HEAD   /store/v1/artifacts/{key}   size, ETag, X-Mbavf-Modtime
//	PUT    /store/v1/artifacts/{key}   store the body (201); the
//	                                   server verifies X-Mbavf-Checksum
//	                                   when the client sends it
//	DELETE /store/v1/artifacts/{key}   remove (?quarantine=1 keeps the
//	                                   bytes server-side for
//	                                   post-mortem)
//	GET    /store/v1/catalog           JSON listing with an ETag;
//	                                   If-None-Match answers 304
//
// Keys are validated 32-hex-digit content addresses on both ends; a
// malformed key is 400, a missing one 404. The checksum header guards
// transport integrity only — the artifact format's per-section CRC32s
// still decide whether the payload is analyzable, so damage that
// happened before the bytes reached the server quarantines exactly as
// on a local store.
//
// The client retries transient failures (network errors, 5xx, 429,
// checksum mismatches) with exponential backoff and reports everything
// else — including exhaustion — as a plain error, which the run-store
// treats as transient: the caller falls through to simulation rather
// than failing the query. The store stays an accelerator, never a
// correctness dependency.
package httpstore

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"mbavf/internal/obs"
	"mbavf/internal/store/backend"
)

// Prefix is the URL path prefix of the artifact protocol.
const Prefix = "/store/v1"

const (
	checksumHeader = "X-Mbavf-Checksum"
	modTimeHeader  = "X-Mbavf-Modtime"
)

// Client-side observability; /metrics exposes these as
// mbavf_store_http_*. range_reads counting up while bytes_read stays
// well below the artifact sizes is the signature of the lazy
// per-section fetch path working.
var (
	obsRequests    = obs.NewCounter("store.http.requests")
	obsRetries     = obs.NewCounter("store.http.retries")
	obsRangeReads  = obs.NewCounter("store.http.range_reads")
	obsChecksumBad = obs.NewCounter("store.http.checksum_rejects")
	obsCatalog304  = obs.NewCounter("store.http.catalog_not_modified")
)

func checksum(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Client is the artifact-store backend over HTTP. It is safe for
// concurrent use.
type Client struct {
	base     string
	hc       *http.Client
	attempts int
	backoff  time.Duration

	// Conditional catalog fetches: the server's ETag plus the listing it
	// tagged, replayed on 304.
	mu          sync.Mutex
	catalogETag string
	catalog     []backend.KeyInfo
}

// Option tunes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the transport — how the chaos tests inject
// fabric.NewChaosTransport under the client.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetry sets the total attempt budget per operation and the base
// backoff between attempts (doubled each retry).
func WithRetry(attempts int, backoff time.Duration) Option {
	return func(c *Client) {
		if attempts > 0 {
			c.attempts = attempts
		}
		c.backoff = backoff
	}
}

// New returns a client over the artifact server at baseURL (with or
// without the /store/v1 suffix; "http://host:8080" is enough).
func New(baseURL string, opts ...Option) *Client {
	base := strings.TrimRight(baseURL, "/")
	base = strings.TrimSuffix(base, Prefix)
	c := &Client{
		base:     base,
		hc:       &http.Client{},
		attempts: 3,
		backoff:  100 * time.Millisecond,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Name identifies the backend kind for metrics labels.
func (c *Client) Name() string { return "http" }

// String describes the instance.
func (c *Client) String() string { return c.base + Prefix }

// Ranged reports true: an HTTP Range request transfers only the bytes
// asked for, so the store's section-table-scan load path pays off.
func (c *Client) Ranged() bool { return true }

func (c *Client) artifactURL(key string) string {
	return c.base + Prefix + "/artifacts/" + key
}

// errTransient wraps failures worth retrying (network errors, 5xx,
// transport-damaged bodies).
type errTransient struct{ err error }

func (e errTransient) Error() string { return e.err.Error() }
func (e errTransient) Unwrap() error { return e.err }

// do runs one attempt-budgeted operation. op builds and executes a
// request and returns its result; failures wrapped in errTransient are
// retried with exponential backoff, everything else returns
// immediately.
func (c *Client) do(ctx context.Context, op func() error) error {
	var err error
	for attempt := 0; attempt < c.attempts; attempt++ {
		if attempt > 0 {
			obsRetries.Add(1)
			select {
			case <-time.After(c.backoff << (attempt - 1)):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		obsRequests.Add(1)
		err = op()
		var t errTransient
		if err == nil || !errors.As(err, &t) {
			return err
		}
	}
	return fmt.Errorf("store: http backend gave up after %d attempts: %w", c.attempts, err)
}

// roundTrip executes one request, mapping network failures to
// errTransient and draining/closing the body into memory.
func (c *Client) roundTrip(req *http.Request) (*http.Response, []byte, error) {
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, nil, errTransient{fmt.Errorf("store: %w", err)}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, errTransient{fmt.Errorf("store: reading response: %w", err)}
	}
	if resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests {
		return nil, nil, errTransient{fmt.Errorf("store: server answered %s: %s", resp.Status, strings.TrimSpace(string(body)))}
	}
	return resp, body, nil
}

// Get returns the artifact stored under key.
func (c *Client) Get(ctx context.Context, key string) ([]byte, error) {
	if err := backend.CheckKey(key); err != nil {
		return nil, err
	}
	var out []byte
	err := c.do(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.artifactURL(key), nil)
		if err != nil {
			return err
		}
		resp, body, err := c.roundTrip(req)
		if err != nil {
			return err
		}
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusNotFound:
			return fmt.Errorf("%w: %s", backend.ErrNotFound, key)
		default:
			return fmt.Errorf("store: GET %s: %s", key, resp.Status)
		}
		if want := resp.Header.Get(checksumHeader); want != "" && checksum(body) != want {
			obsChecksumBad.Add(1)
			return errTransient{fmt.Errorf("store: GET %s: body checksum mismatch (transport damage)", key)}
		}
		out = body
		return nil
	})
	return out, err
}

// ReadSection returns n bytes of the artifact starting at off, via an
// HTTP Range request. A server that ignores the Range header (answers
// 200 with the whole blob) still works: the slice is cut client-side.
func (c *Client) ReadSection(ctx context.Context, key string, off, n int64) ([]byte, error) {
	if err := backend.CheckKey(key); err != nil {
		return nil, err
	}
	if off < 0 || n < 0 {
		return nil, fmt.Errorf("store: reading %s [%d,+%d): negative range", key, off, n)
	}
	var out []byte
	err := c.do(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.artifactURL(key), nil)
		if err != nil {
			return err
		}
		req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", off, off+n-1))
		resp, body, err := c.roundTrip(req)
		if err != nil {
			return err
		}
		switch resp.StatusCode {
		case http.StatusPartialContent:
			if int64(len(body)) != n {
				obsChecksumBad.Add(1)
				return errTransient{fmt.Errorf("store: GET %s range: got %d bytes, want %d", key, len(body), n)}
			}
		case http.StatusOK:
			// Range not honored; verify the whole body, then slice locally.
			if want := resp.Header.Get(checksumHeader); want != "" && checksum(body) != want {
				obsChecksumBad.Add(1)
				return errTransient{fmt.Errorf("store: GET %s range: body checksum mismatch (transport damage)", key)}
			}
			if off+n > int64(len(body)) {
				return fmt.Errorf("store: reading %s [%d,+%d): out of range (blob is %d bytes)", key, off, n, len(body))
			}
			out = body[off : off+n]
			obsRangeReads.Add(1)
			return nil
		case http.StatusNotFound:
			return fmt.Errorf("%w: %s", backend.ErrNotFound, key)
		case http.StatusRequestedRangeNotSatisfiable:
			return fmt.Errorf("store: reading %s [%d,+%d): out of range", key, off, n)
		default:
			return fmt.Errorf("store: GET %s range: %s", key, resp.Status)
		}
		if want := resp.Header.Get(checksumHeader); want != "" && checksum(body) != want {
			obsChecksumBad.Add(1)
			return errTransient{fmt.Errorf("store: GET %s range: body checksum mismatch (transport damage)", key)}
		}
		out = body
		obsRangeReads.Add(1)
		return nil
	})
	return out, err
}

// Put stores data under key. The request carries the body's sha256 so
// the server can reject a transit-damaged upload (which the client then
// retries).
func (c *Client) Put(ctx context.Context, key string, data []byte) error {
	if err := backend.CheckKey(key); err != nil {
		return err
	}
	sum := checksum(data)
	return c.do(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.artifactURL(key), bytes.NewReader(data))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		req.Header.Set(checksumHeader, sum)
		resp, body, err := c.roundTrip(req)
		if err != nil {
			return err
		}
		switch resp.StatusCode {
		case http.StatusCreated, http.StatusOK, http.StatusNoContent:
			return nil
		case http.StatusBadRequest:
			// The server validated the checksum and the bytes did not
			// match: damaged in transit, retry.
			if strings.Contains(string(body), "checksum") {
				obsChecksumBad.Add(1)
				return errTransient{fmt.Errorf("store: PUT %s: %s", key, strings.TrimSpace(string(body)))}
			}
			return fmt.Errorf("store: PUT %s: %s: %s", key, resp.Status, strings.TrimSpace(string(body)))
		default:
			return fmt.Errorf("store: PUT %s: %s", key, resp.Status)
		}
	})
}

// Has reports whether an artifact is stored under key.
func (c *Client) Has(ctx context.Context, key string) (bool, error) {
	_, err := c.Stat(ctx, key)
	if err == nil {
		return true, nil
	}
	if errors.Is(err, backend.ErrNotFound) {
		return false, nil
	}
	return false, err
}

// Stat describes the artifact stored under key via a HEAD request.
func (c *Client) Stat(ctx context.Context, key string) (backend.KeyInfo, error) {
	if err := backend.CheckKey(key); err != nil {
		return backend.KeyInfo{}, err
	}
	var out backend.KeyInfo
	err := c.do(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodHead, c.artifactURL(key), nil)
		if err != nil {
			return err
		}
		resp, _, err := c.roundTrip(req)
		if err != nil {
			return err
		}
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusNotFound:
			return fmt.Errorf("%w: %s", backend.ErrNotFound, key)
		default:
			return fmt.Errorf("store: HEAD %s: %s", key, resp.Status)
		}
		size, _ := strconv.ParseInt(resp.Header.Get("Content-Length"), 10, 64)
		var mod time.Time
		if ns, err := strconv.ParseInt(resp.Header.Get(modTimeHeader), 10, 64); err == nil {
			mod = time.Unix(0, ns)
		}
		out = backend.KeyInfo{
			Key:     key,
			Bytes:   size,
			ModTime: mod,
			ETag:    strings.Trim(resp.Header.Get("ETag"), `"`),
		}
		return nil
	})
	return out, err
}

// catalogDoc is the catalog listing's JSON wire form.
type catalogDoc struct {
	Artifacts []catalogEntry `json:"artifacts"`
}

type catalogEntry struct {
	Key     string `json:"key"`
	Bytes   int64  `json:"bytes"`
	ModTime int64  `json:"mod_time_unix_ns"`
	ETag    string `json:"etag"`
}

// List enumerates the stored artifacts via the catalog endpoint. The
// server's ETag is replayed as If-None-Match, so an unchanged catalog
// costs a 304 and no body.
func (c *Client) List(ctx context.Context) ([]backend.KeyInfo, error) {
	c.mu.Lock()
	etag := c.catalogETag
	c.mu.Unlock()
	var out []backend.KeyInfo
	err := c.do(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+Prefix+"/catalog", nil)
		if err != nil {
			return err
		}
		if etag != "" {
			req.Header.Set("If-None-Match", `"`+etag+`"`)
		}
		resp, body, err := c.roundTrip(req)
		if err != nil {
			return err
		}
		switch resp.StatusCode {
		case http.StatusNotModified:
			obsCatalog304.Add(1)
			c.mu.Lock()
			out = append(out[:0], c.catalog...)
			c.mu.Unlock()
			return nil
		case http.StatusOK:
		default:
			return fmt.Errorf("store: GET catalog: %s", resp.Status)
		}
		var doc catalogDoc
		if err := json.Unmarshal(body, &doc); err != nil {
			return errTransient{fmt.Errorf("store: catalog body: %w", err)}
		}
		out = out[:0]
		for _, e := range doc.Artifacts {
			out = append(out, backend.KeyInfo{
				Key: e.Key, Bytes: e.Bytes, ModTime: time.Unix(0, e.ModTime), ETag: e.ETag,
			})
		}
		c.mu.Lock()
		c.catalogETag = strings.Trim(resp.Header.Get("ETag"), `"`)
		c.catalog = append(c.catalog[:0:0], out...)
		c.mu.Unlock()
		return nil
	})
	return out, err
}

// Delete removes the artifact stored under key; a missing key is not an
// error.
func (c *Client) Delete(ctx context.Context, key string) error {
	return c.delete(ctx, key, false)
}

// Quarantine asks the server to move the damaged artifact out of the
// addressable namespace while keeping its bytes for post-mortem.
func (c *Client) Quarantine(ctx context.Context, key string) error {
	return c.delete(ctx, key, true)
}

func (c *Client) delete(ctx context.Context, key string, quarantine bool) error {
	if err := backend.CheckKey(key); err != nil {
		return err
	}
	return c.do(ctx, func() error {
		url := c.artifactURL(key)
		if quarantine {
			url += "?quarantine=1"
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodDelete, url, nil)
		if err != nil {
			return err
		}
		resp, _, err := c.roundTrip(req)
		if err != nil {
			return err
		}
		switch resp.StatusCode {
		case http.StatusNoContent, http.StatusOK, http.StatusNotFound:
			return nil
		default:
			return fmt.Errorf("store: DELETE %s: %s", key, resp.Status)
		}
	})
}

var (
	_ backend.Interface   = (*Client)(nil)
	_ backend.Quarantiner = (*Client)(nil)
	_ backend.Ranged      = (*Client)(nil)
)
