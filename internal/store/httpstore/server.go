package httpstore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"mbavf/internal/store/backend"
)

// maxUploadBytes bounds one PUT body; the largest real artifact is
// single-digit megabytes, so a gigabyte cap only stops abuse.
const maxUploadBytes = 1 << 30

// Server exposes any backend over the HTTP artifact protocol. Mounted
// on mbavf-serve, it turns one process's disk store into the fleet's
// shared store.
type Server struct {
	b backend.Interface
}

// NewServer wraps b in the protocol handlers.
func NewServer(b backend.Interface) *Server { return &Server{b: b} }

// Mount registers the protocol routes on mux. Servers with their own
// middleware (draining, metrics) register the individual handlers
// instead.
func (s *Server) Mount(mux *http.ServeMux) {
	mux.HandleFunc("GET "+Prefix+"/artifacts/{key}", s.HandleGet)
	mux.HandleFunc("PUT "+Prefix+"/artifacts/{key}", s.HandlePut)
	mux.HandleFunc("DELETE "+Prefix+"/artifacts/{key}", s.HandleDelete)
	mux.HandleFunc("GET "+Prefix+"/catalog", s.HandleCatalog)
}

// httpError writes a plain-text error; artifact bodies are binary, so
// errors do not masquerade as payloads.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), status)
}

// pathKey extracts and validates the {key} path segment.
func pathKey(w http.ResponseWriter, r *http.Request) (string, bool) {
	key := r.PathValue("key")
	if err := backend.CheckKey(key); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return "", false
	}
	return key, true
}

// parseRange parses a single "bytes=a-b" range (both bounds explicit —
// the only form the client emits). ok reports whether the header was a
// well-formed single range; malformed or unsupported ranges are served
// the whole blob per RFC 9110's may-ignore rule.
func parseRange(h string) (off, end int64, ok bool) {
	spec, found := strings.CutPrefix(h, "bytes=")
	if !found || strings.Contains(spec, ",") {
		return 0, 0, false
	}
	lo, hi, found := strings.Cut(spec, "-")
	if !found || lo == "" || hi == "" {
		return 0, 0, false
	}
	off, err1 := strconv.ParseInt(lo, 10, 64)
	end, err2 := strconv.ParseInt(hi, 10, 64)
	if err1 != nil || err2 != nil || off < 0 || end < off {
		return 0, 0, false
	}
	return off, end, true
}

// HandleGet serves GET and HEAD for one artifact, honoring single-range
// Range headers with 206 responses. Bodies carry X-Mbavf-Checksum (the
// sha256 of the bytes as sent) so the client can detect transport
// damage and retry.
func (s *Server) HandleGet(w http.ResponseWriter, r *http.Request) {
	key, ok := pathKey(w, r)
	if !ok {
		return
	}
	ctx := r.Context()
	info, err := s.b.Stat(ctx, key)
	if errors.Is(err, backend.ErrNotFound) {
		httpError(w, http.StatusNotFound, "artifact %s not found", key)
		return
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Accept-Ranges", "bytes")
	w.Header().Set("ETag", `"`+info.ETag+`"`)
	w.Header().Set(modTimeHeader, strconv.FormatInt(info.ModTime.UnixNano(), 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	if r.Method == http.MethodHead {
		w.Header().Set("Content-Length", strconv.FormatInt(info.Bytes, 10))
		w.WriteHeader(http.StatusOK)
		return
	}
	if rng := r.Header.Get("Range"); rng != "" {
		off, end, ok := parseRange(rng)
		if ok {
			if off >= info.Bytes {
				w.Header().Set("Content-Range", fmt.Sprintf("bytes */%d", info.Bytes))
				httpError(w, http.StatusRequestedRangeNotSatisfiable, "range %s outside %d-byte artifact", rng, info.Bytes)
				return
			}
			if end >= info.Bytes {
				end = info.Bytes - 1
			}
			data, err := s.b.ReadSection(ctx, key, off, end-off+1)
			if errors.Is(err, backend.ErrNotFound) {
				httpError(w, http.StatusNotFound, "artifact %s not found", key)
				return
			}
			if err != nil {
				httpError(w, http.StatusInternalServerError, "%v", err)
				return
			}
			w.Header().Set(checksumHeader, checksum(data))
			w.Header().Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", off, end, info.Bytes))
			w.Header().Set("Content-Length", strconv.Itoa(len(data)))
			w.WriteHeader(http.StatusPartialContent)
			_, _ = w.Write(data)
			return
		}
		// Unsupported range form: fall through to the whole blob (200),
		// which the client handles by slicing locally.
	}
	data, err := s.b.Get(ctx, key)
	if errors.Is(err, backend.ErrNotFound) {
		httpError(w, http.StatusNotFound, "artifact %s not found", key)
		return
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set(checksumHeader, checksum(data))
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// HandlePut stores an uploaded artifact. When the request carries
// X-Mbavf-Checksum, the body must hash to it — a mismatch means the
// bytes were damaged in transit, answered 400 so the client retries
// with a fresh copy.
func (s *Server) HandlePut(w http.ResponseWriter, r *http.Request) {
	key, ok := pathKey(w, r)
	if !ok {
		return
	}
	body, err := readBody(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if want := r.Header.Get(checksumHeader); want != "" && checksum(body) != want {
		httpError(w, http.StatusBadRequest, "body checksum mismatch (transport damage)")
		return
	}
	if err := s.b.Put(r.Context(), key, body); err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.WriteHeader(http.StatusCreated)
}

func readBody(r *http.Request) ([]byte, error) {
	defer r.Body.Close()
	return io.ReadAll(http.MaxBytesReader(nil, r.Body, maxUploadBytes))
}

// HandleDelete removes one artifact; ?quarantine=1 keeps its bytes out
// of the namespace but inspectable, when the underlying backend can.
func (s *Server) HandleDelete(w http.ResponseWriter, r *http.Request) {
	key, ok := pathKey(w, r)
	if !ok {
		return
	}
	ctx := r.Context()
	var err error
	if r.URL.Query().Get("quarantine") == "1" {
		if q, qok := s.b.(backend.Quarantiner); qok {
			err = q.Quarantine(ctx, key)
		} else {
			err = s.b.Delete(ctx, key)
		}
	} else {
		err = s.b.Delete(ctx, key)
	}
	if err != nil && !errors.Is(err, backend.ErrNotFound) {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// HandleCatalog lists the stored artifacts as JSON, tagged with an ETag
// derived from every entry's (key, etag) pair: any artifact change
// changes it. If-None-Match answers 304 with no body, so workers can
// poll the catalog cheaply.
func (s *Server) HandleCatalog(w http.ResponseWriter, r *http.Request) {
	kis, err := s.b.List(r.Context())
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	sort.Slice(kis, func(i, j int) bool { return kis[i].Key < kis[j].Key })
	h := sha256.New()
	doc := catalogDoc{Artifacts: make([]catalogEntry, 0, len(kis))}
	for _, ki := range kis {
		fmt.Fprintf(h, "%s=%s\n", ki.Key, ki.ETag)
		doc.Artifacts = append(doc.Artifacts, catalogEntry{
			Key: ki.Key, Bytes: ki.Bytes, ModTime: ki.ModTime.UnixNano(), ETag: ki.ETag,
		})
	}
	etag := `"` + hex.EncodeToString(h.Sum(nil)[:16]) + `"`
	w.Header().Set("ETag", etag)
	if r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(doc)
}
