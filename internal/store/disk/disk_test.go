package disk_test

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mbavf/internal/store/backend"
	"mbavf/internal/store/disk"
	"mbavf/internal/store/storetest"
)

func TestConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T) backend.Interface {
		b, err := disk.New(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		return b
	})
}

// TestSweepReclaimsDebris pins the disk backend's private GC surface:
// quarantined artifacts and stale temp files go, live artifacts stay,
// and a dry run only counts.
func TestSweepReclaimsDebris(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	b, err := disk.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	live := "0123456789abcdef0123456789abcdef"
	if err := b.Put(ctx, live, []byte("keep me")); err != nil {
		t.Fatal(err)
	}
	if err := b.Quarantine(ctx, live); err != nil {
		t.Fatal(err)
	}
	// An orphaned temp file old enough to reclaim.
	tmp := filepath.Join(dir, ".tmp-orphan")
	if err := os.WriteFile(tmp, []byte("xx"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(tmp, old, old); err != nil {
		t.Fatal(err)
	}

	removed, freed, err := b.Sweep(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 || freed != 9 {
		t.Errorf("dry-run Sweep: removed %d freed %d, want 2 and 9", removed, freed)
	}
	if _, err := os.Stat(tmp); err != nil {
		t.Error("dry-run Sweep removed the temp file")
	}

	removed, freed, err = b.Sweep(ctx, false)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 || freed != 9 {
		t.Errorf("Sweep: removed %d freed %d, want 2 and 9", removed, freed)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Error("Sweep left the orphaned temp file")
	}
}
