// Package disk is the directory-backed artifact-store backend: one file
// per content-addressed key, written atomically via temp-file-plus-
// rename so concurrent readers (including other processes sharing the
// directory) only ever observe complete artifacts. Damaged artifacts
// quarantine by rename into a quarantine/ subdirectory, keeping their
// bytes for post-mortem until a GC sweep reclaims them.
package disk

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mbavf/internal/store/backend"
)

// artifactExt is the on-disk suffix of stored artifacts.
const artifactExt = ".mbavf"

// quarantineDir collects artifacts that failed decoding. They are kept
// (renamed, not deleted) so an operator can post-mortem the damage, and
// reclaimed by GC's sweep.
const quarantineDir = "quarantine"

// tempMaxAge is how long an orphaned temp file may sit before a sweep
// reclaims it; an active writer renames within seconds.
const tempMaxAge = time.Hour

// Backend is a content-addressed directory of artifacts. All methods
// are safe for concurrent use by independent processes.
type Backend struct {
	dir string
}

// New returns a disk backend rooted at dir, creating the directory if
// needed.
func New(dir string) (*Backend, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Backend{dir: dir}, nil
}

// Name identifies the backend kind for metrics labels.
func (b *Backend) Name() string { return "disk" }

// String returns the store's root directory.
func (b *Backend) String() string { return b.dir }

// Dir returns the store's root directory.
func (b *Backend) Dir() string { return b.dir }

// Path returns the file path the artifact with the given key lives at.
func (b *Backend) Path(key string) string { return filepath.Join(b.dir, key+artifactExt) }

// Ranged reports false: a local artifact is one sequential read, so
// eagerly loading it whole beats five pread calls plus a stat.
func (b *Backend) Ranged() bool { return false }

// etag derives a version tag from what the filesystem gives us; rename
// commits update the mtime, so any replacement changes the tag.
func etag(st fs.FileInfo) string {
	return fmt.Sprintf("%x-%x", st.ModTime().UnixNano(), st.Size())
}

// Get returns the artifact stored under key, or backend.ErrNotFound.
func (b *Backend) Get(ctx context.Context, key string) ([]byte, error) {
	if err := backend.CheckKey(key); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(b.Path(key))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", backend.ErrNotFound, key)
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return data, nil
}

// ReadSection returns n bytes of the artifact starting at off.
func (b *Backend) ReadSection(ctx context.Context, key string, off, n int64) ([]byte, error) {
	if err := backend.CheckKey(key); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	f, err := os.Open(b.Path(key))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", backend.ErrNotFound, key)
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	buf := make([]byte, n)
	if _, err := f.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("store: reading %s [%d,+%d): %w", key, off, n, err)
	}
	return buf, nil
}

// Put commits data under key atomically: it is written to a temp file
// in the store directory and renamed into place, so a crash mid-write
// never leaves a partial artifact addressable.
func (b *Backend) Put(ctx context.Context, key string, data []byte) error {
	if err := backend.CheckKey(key); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(b.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), b.Path(key)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Has reports whether an artifact is stored under key.
func (b *Backend) Has(ctx context.Context, key string) (bool, error) {
	if err := backend.CheckKey(key); err != nil {
		return false, err
	}
	if err := ctx.Err(); err != nil {
		return false, err
	}
	_, err := os.Stat(b.Path(key))
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("store: %w", err)
	}
	return true, nil
}

// Stat describes the artifact stored under key.
func (b *Backend) Stat(ctx context.Context, key string) (backend.KeyInfo, error) {
	if err := backend.CheckKey(key); err != nil {
		return backend.KeyInfo{}, err
	}
	if err := ctx.Err(); err != nil {
		return backend.KeyInfo{}, err
	}
	st, err := os.Stat(b.Path(key))
	if errors.Is(err, fs.ErrNotExist) {
		return backend.KeyInfo{}, fmt.Errorf("%w: %s", backend.ErrNotFound, key)
	}
	if err != nil {
		return backend.KeyInfo{}, fmt.Errorf("store: %w", err)
	}
	return backend.KeyInfo{Key: key, Bytes: st.Size(), ModTime: st.ModTime(), ETag: etag(st)}, nil
}

// List enumerates the stored artifacts, sorted by key (os.ReadDir
// returns sorted entries).
func (b *Backend) List(ctx context.Context) ([]backend.KeyInfo, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ents, err := os.ReadDir(b.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []backend.KeyInfo
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if filepath.Ext(name) != artifactExt {
			continue
		}
		key := strings.TrimSuffix(name, artifactExt)
		if backend.CheckKey(key) != nil {
			continue
		}
		st, serr := e.Info()
		if serr != nil {
			continue // raced with a concurrent delete
		}
		out = append(out, backend.KeyInfo{Key: key, Bytes: st.Size(), ModTime: st.ModTime(), ETag: etag(st)})
	}
	return out, nil
}

// Delete removes the artifact stored under key, if any.
func (b *Backend) Delete(ctx context.Context, key string) error {
	if err := backend.CheckKey(key); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := os.Remove(b.Path(key)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Quarantine moves a damaged artifact out of the addressable namespace
// so the next Get for its key misses cleanly, keeping the bytes under
// quarantine/ for post-mortem. A failed rename falls back to removal.
func (b *Backend) Quarantine(ctx context.Context, key string) error {
	if err := backend.CheckKey(key); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	qdir := filepath.Join(b.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err == nil {
		if os.Rename(b.Path(key), filepath.Join(qdir, key+artifactExt)) == nil {
			return nil
		}
	}
	if err := os.Remove(b.Path(key)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("store: %w", err)
	}
	return fmt.Errorf("store: quarantine of %s fell back to removal", key)
}

// Sweep reclaims the backend's private debris: everything in
// quarantine/ and orphaned temp files older than an hour (a crashed
// writer's leftovers; an active writer renames within seconds). With
// dryRun it only counts what it would remove.
func (b *Backend) Sweep(ctx context.Context, dryRun bool) (removed int, freed int64, err error) {
	qdir := filepath.Join(b.dir, quarantineDir)
	if ents, rerr := os.ReadDir(qdir); rerr == nil {
		for _, e := range ents {
			if err := ctx.Err(); err != nil {
				return removed, freed, err
			}
			p := filepath.Join(qdir, e.Name())
			st, serr := os.Stat(p)
			if serr != nil {
				continue
			}
			if dryRun || os.Remove(p) == nil {
				removed++
				freed += st.Size()
			}
		}
	}
	ents, rerr := os.ReadDir(b.dir)
	if rerr != nil {
		return removed, freed, fmt.Errorf("store: %w", rerr)
	}
	for _, e := range ents {
		if err := ctx.Err(); err != nil {
			return removed, freed, err
		}
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, ".tmp-") {
			continue
		}
		st, serr := e.Info()
		if serr != nil || time.Since(st.ModTime()) <= tempMaxAge {
			continue
		}
		if dryRun || os.Remove(filepath.Join(b.dir, name)) == nil {
			removed++
			freed += st.Size()
		}
	}
	return removed, freed, nil
}

// check the interface contracts at compile time.
var (
	_ backend.Interface   = (*Backend)(nil)
	_ backend.Quarantiner = (*Backend)(nil)
	_ backend.Sweeper     = (*Backend)(nil)
	_ backend.Ranged      = (*Backend)(nil)
)
