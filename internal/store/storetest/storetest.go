// Package storetest is the backend conformance suite: one set of
// contract tests every artifact-store backend (disk, mem, httpstore)
// must pass, so "implements backend.Interface" means the same thing
// everywhere — including the corners the store layer leans on, like
// ErrNotFound typing, byte-exact round trips, ranged reads, and
// concurrent Put/Get safety under the race detector.
package storetest

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"mbavf/internal/store/backend"
)

// key returns the i-th well-formed test key: 32 hex digits, distinct
// per i.
func key(i int) string { return fmt.Sprintf("%032x", i+1) }

// blob returns a deterministic test payload of length n, distinct per
// seed.
func blob(seed byte, n int) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = seed + byte(i*7)
	}
	return data
}

// Run exercises one backend implementation against the full contract.
// mk builds a fresh, empty backend per subtest; cleanup belongs on
// t.Cleanup inside mk.
func Run(t *testing.T, mk func(t *testing.T) backend.Interface) {
	t.Run("Missing", func(t *testing.T) { testMissing(t, mk(t)) })
	t.Run("RoundTrip", func(t *testing.T) { testRoundTrip(t, mk(t)) })
	t.Run("Overwrite", func(t *testing.T) { testOverwrite(t, mk(t)) })
	t.Run("ReadSection", func(t *testing.T) { testReadSection(t, mk(t)) })
	t.Run("List", func(t *testing.T) { testList(t, mk(t)) })
	t.Run("MalformedKeys", func(t *testing.T) { testMalformedKeys(t, mk(t)) })
	t.Run("Quarantine", func(t *testing.T) { testQuarantine(t, mk(t)) })
	t.Run("Concurrent", func(t *testing.T) { testConcurrent(t, mk(t)) })
}

// testMissing pins the empty-store behavior: typed misses, false Has,
// idempotent Delete.
func testMissing(t *testing.T, b backend.Interface) {
	ctx := context.Background()
	k := key(0)
	if _, err := b.Get(ctx, k); !errors.Is(err, backend.ErrNotFound) {
		t.Errorf("Get of missing key: want ErrNotFound, got %v", err)
	}
	if _, err := b.Stat(ctx, k); !errors.Is(err, backend.ErrNotFound) {
		t.Errorf("Stat of missing key: want ErrNotFound, got %v", err)
	}
	ok, err := b.Has(ctx, k)
	if err != nil || ok {
		t.Errorf("Has of missing key: got (%v, %v), want (false, nil)", ok, err)
	}
	if err := b.Delete(ctx, k); err != nil {
		t.Errorf("Delete of missing key must be a no-op, got %v", err)
	}
}

func testRoundTrip(t *testing.T, b backend.Interface) {
	ctx := context.Background()
	k, data := key(0), blob(1, 4096)
	if err := b.Put(ctx, k, data); err != nil {
		t.Fatalf("Put: %v", err)
	}
	ok, err := b.Has(ctx, k)
	if err != nil || !ok {
		t.Fatalf("Has after Put: got (%v, %v), want (true, nil)", ok, err)
	}
	got, err := b.Get(ctx, k)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("Get returned %d bytes that differ from the %d put", len(got), len(data))
	}
	ki, err := b.Stat(ctx, k)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if ki.Key != k || ki.Bytes != int64(len(data)) {
		t.Errorf("Stat = %+v, want key %s with %d bytes", ki, k, len(data))
	}
	if ki.ETag == "" {
		t.Error("Stat returned an empty ETag")
	}
	if err := b.Delete(ctx, k); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := b.Get(ctx, k); !errors.Is(err, backend.ErrNotFound) {
		t.Errorf("Get after Delete: want ErrNotFound, got %v", err)
	}
}

// testOverwrite pins last-writer-wins semantics and that a replacement
// with different content changes the version tag.
func testOverwrite(t *testing.T, b backend.Interface) {
	ctx := context.Background()
	k := key(0)
	if err := b.Put(ctx, k, blob(1, 100)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	before, err := b.Stat(ctx, k)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	second := blob(2, 200)
	if err := b.Put(ctx, k, second); err != nil {
		t.Fatalf("overwrite Put: %v", err)
	}
	got, err := b.Get(ctx, k)
	if err != nil {
		t.Fatalf("Get after overwrite: %v", err)
	}
	if !bytes.Equal(got, second) {
		t.Error("Get after overwrite returned stale bytes")
	}
	after, err := b.Stat(ctx, k)
	if err != nil {
		t.Fatalf("Stat after overwrite: %v", err)
	}
	if after.ETag == before.ETag {
		t.Errorf("ETag unchanged across a content change: %q", after.ETag)
	}
}

func testReadSection(t *testing.T, b backend.Interface) {
	ctx := context.Background()
	k, data := key(0), blob(3, 1000)
	if err := b.Put(ctx, k, data); err != nil {
		t.Fatalf("Put: %v", err)
	}
	for _, rng := range []struct{ off, n int64 }{
		{0, 1}, {0, 1000}, {17, 83}, {999, 1}, {500, 500},
	} {
		got, err := b.ReadSection(ctx, k, rng.off, rng.n)
		if err != nil {
			t.Fatalf("ReadSection[%d,+%d): %v", rng.off, rng.n, err)
		}
		if !bytes.Equal(got, data[rng.off:rng.off+rng.n]) {
			t.Fatalf("ReadSection[%d,+%d) returned wrong bytes", rng.off, rng.n)
		}
	}
	if _, err := b.ReadSection(ctx, key(1), 0, 10); !errors.Is(err, backend.ErrNotFound) {
		t.Errorf("ReadSection of missing key: want ErrNotFound, got %v", err)
	}
}

func testList(t *testing.T, b backend.Interface) {
	ctx := context.Background()
	kis, err := b.List(ctx)
	if err != nil {
		t.Fatalf("List of empty store: %v", err)
	}
	if len(kis) != 0 {
		t.Fatalf("empty store lists %d artifacts", len(kis))
	}
	want := map[string]int{}
	for i := 0; i < 3; i++ {
		n := 100 * (i + 1)
		if err := b.Put(ctx, key(i), blob(byte(i), n)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
		want[key(i)] = n
	}
	kis, err = b.List(ctx)
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(kis) != len(want) {
		t.Fatalf("List returned %d artifacts, want %d", len(kis), len(want))
	}
	for _, ki := range kis {
		n, ok := want[ki.Key]
		if !ok {
			t.Errorf("List invented key %s", ki.Key)
			continue
		}
		if ki.Bytes != int64(n) {
			t.Errorf("List reports %d bytes for %s, want %d", ki.Bytes, ki.Key, n)
		}
	}
}

// testMalformedKeys pins that no operation touches storage under a key
// that fails validation — path traversal through a key must be
// impossible at the backend layer, not just in the store above it.
func testMalformedKeys(t *testing.T, b backend.Interface) {
	ctx := context.Background()
	for _, k := range []string{"", "short", "../../../../etc/passwd", "ZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZ",
		"0123456789abcdef0123456789abcde\n"} {
		if _, err := b.Get(ctx, k); err == nil {
			t.Errorf("Get(%q) accepted", k)
		}
		if err := b.Put(ctx, k, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted", k)
		}
		if ok, _ := b.Has(ctx, k); ok {
			t.Errorf("Has(%q) true", k)
		}
		if _, err := b.Stat(ctx, k); err == nil {
			t.Errorf("Stat(%q) accepted", k)
		}
		if err := b.Delete(ctx, k); err == nil {
			t.Errorf("Delete(%q) accepted", k)
		}
	}
}

// testQuarantine pins that a quarantined key misses cleanly and can be
// re-recorded — the contract the store's corruption fallback builds on.
// Backends without a Quarantiner are covered by Delete semantics, which
// testRoundTrip already pins.
func testQuarantine(t *testing.T, b backend.Interface) {
	q, ok := b.(backend.Quarantiner)
	if !ok {
		t.Skip("backend has no Quarantiner")
	}
	ctx := context.Background()
	k := key(0)
	if err := b.Put(ctx, k, blob(4, 64)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := q.Quarantine(ctx, k); err != nil {
		t.Fatalf("Quarantine: %v", err)
	}
	if has, _ := b.Has(ctx, k); has {
		t.Error("quarantined key still addressable")
	}
	if _, err := b.Get(ctx, k); !errors.Is(err, backend.ErrNotFound) {
		t.Errorf("Get of quarantined key: want ErrNotFound, got %v", err)
	}
	replacement := blob(5, 64)
	if err := b.Put(ctx, k, replacement); err != nil {
		t.Fatalf("re-record after quarantine: %v", err)
	}
	got, err := b.Get(ctx, k)
	if err != nil || !bytes.Equal(got, replacement) {
		t.Errorf("Get after re-record: %v", err)
	}
}

// testConcurrent races writers against readers on a small key space.
// Run under -race this proves the backend's internal synchronization;
// semantically it pins that a reader only ever observes a complete
// payload some writer put — never torn bytes.
func testConcurrent(t *testing.T, b backend.Interface) {
	ctx := context.Background()
	const (
		keys    = 4
		writers = 4
		readers = 4
		rounds  = 25
	)
	valid := func(data []byte) bool {
		// Every payload is blob(seed, 256): the seed is byte 0 and each
		// later byte is derived from it, so completeness is checkable.
		if len(data) != 256 {
			return false
		}
		return bytes.Equal(data, blob(data[0], 256))
	}
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed byte) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				k := key(int(seed) % keys)
				if err := b.Put(ctx, k, blob(seed+byte(r), 256)); err != nil {
					errs <- fmt.Errorf("concurrent Put: %w", err)
					return
				}
			}
		}(byte(w))
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				k := key((i + r) % keys)
				data, err := b.Get(ctx, k)
				if errors.Is(err, backend.ErrNotFound) {
					continue // not yet written
				}
				if err != nil {
					errs <- fmt.Errorf("concurrent Get: %w", err)
					return
				}
				if !valid(data) {
					errs <- fmt.Errorf("concurrent Get observed torn payload (%d bytes)", len(data))
					return
				}
				if _, err := b.ReadSection(ctx, k, 16, 16); err != nil && !errors.Is(err, backend.ErrNotFound) {
					errs <- fmt.Errorf("concurrent ReadSection: %w", err)
					return
				}
			}
		}(rd)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
