// Package store persists run-artifact measurements — per-byte ACE
// lifetime segments, the solved liveness graph, cycle counts, and the
// machine-config fingerprint — in a compact, versioned, CRC-checked
// binary format, and serves them back from a content-addressed on-disk
// store. Simulation is the dominant cost of every MB-AVF query by orders
// of magnitude; recording its artifacts once per (workload, machine
// config) turns every later analysis into a millisecond-scale decode.
//
// # Format
//
// An artifact is a 5-byte header followed by self-describing sections:
//
//	header  := "MBAV" version(u8)
//	section := id(u8) payloadLen(uvarint) payload crc32(u32 LE)
//
// The CRC (IEEE, over the payload only) makes truncation and bit rot
// detectable per section: a corrupt artifact is rejected with ErrCorrupt
// and quarantined by the store, never silently analyzed. Section ids are
// meta(1), l1(2), l2(3), vgpr(4), graph(5); each appears exactly once.
// Within payloads all integers are varints: lifetime segments are
// delta-encoded (gap since previous segment end, duration, kind,
// zigzag version delta) and the graph's last-read cycles are zigzag
// deltas, which together shrink artifacts by roughly 4-6x versus fixed
// width. Encoding is deterministic — the same measurements always yield
// the same bytes — so artifacts are content-stable and diffable.
//
// Version policy: the single version byte covers the whole layout. Any
// incompatible change (new section semantics, changed encodings) bumps
// it, and readers reject every version but their own with ErrFormat.
// There is no migration machinery on purpose: artifacts are a cache of
// reproducible computation, so the upgrade path is re-recording.
package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"mbavf/internal/dataflow"
	"mbavf/internal/interval"
	"mbavf/internal/lifetime"
	"mbavf/internal/sim"
)

// Typed decode failures. Everything the decoder can dislike wraps one of
// these two, so callers can distinguish "not an artifact / wrong
// generation" (ErrFormat) from "was an artifact, now damaged"
// (ErrCorrupt) — the store quarantines both rather than analyze them.
var (
	// ErrFormat marks data that is not an artifact this build reads: bad
	// magic, an unsupported version, or an unknown/duplicated section.
	ErrFormat = errors.New("store: unrecognized artifact format")
	// ErrCorrupt marks an artifact with a damaged body: CRC mismatch,
	// truncation, or internally inconsistent payloads.
	ErrCorrupt = errors.New("store: corrupt artifact")
)

const (
	magic   = "MBAV"
	version = 1

	secMeta  = 1
	secL1    = 2
	secL2    = 3
	secVGPR  = 4
	secGraph = 5
	numSecs  = 5

	// vgprBytesPerWord is the register file's word granularity: 32-bit
	// vector registers tracked per byte.
	vgprBytesPerWord = 4
)

// sectionName labels sections in errors and `mbavf-store inspect`.
func sectionName(id byte) string {
	switch id {
	case secMeta:
		return "meta"
	case secL1:
		return "l1"
	case secL2:
		return "l2"
	case secVGPR:
		return "vgpr"
	case secGraph:
		return "graph"
	default:
		return fmt.Sprintf("section(%d)", id)
	}
}

// Meta is the artifact's self-description: everything `mbavf-store ls`
// and `inspect` report without decoding the measurement payloads.
type Meta struct {
	Workload     string
	ConfigFP     string
	Cycles       uint64
	Instructions uint64
	L1Sets       int
	L1Ways       int
	L2Sets       int
	L2Ways       int
	LineBytes    int
	VGPRThreads  int
	VGPRRegs     int
}

// SectionInfo describes one section of an encoded artifact.
type SectionInfo struct {
	Name  string
	Bytes int
}

// --- encoding ---

// enc is a varint-oriented append-only buffer.
type enc struct{ b []byte }

func (e *enc) uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) varint(v int64)   { e.b = binary.AppendVarint(e.b, v) }
func (e *enc) byte(v byte)      { e.b = append(e.b, v) }
func (e *enc) bytes(v []byte)   { e.b = append(e.b, v...) }
func (e *enc) str(s string)     { e.uvarint(uint64(len(s))); e.b = append(e.b, s...) }
func (e *enc) uint(v int)       { e.uvarint(uint64(v)) }

// appendSection frames one section: id, length, payload, CRC.
func appendSection(dst []byte, id byte, payload []byte) []byte {
	dst = append(dst, id)
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	return append(dst, crc[:]...)
}

// encodeMeta serializes the Meta section payload.
func encodeMeta(m *sim.Measurements) []byte {
	var e enc
	e.str(m.Workload)
	e.str(m.ConfigFP)
	e.uvarint(m.Cycles)
	e.uvarint(m.Instructions)
	e.uint(m.L1Sets)
	e.uint(m.L1Ways)
	e.uint(m.L2Sets)
	e.uint(m.L2Ways)
	e.uint(m.LineBytes)
	e.uint(m.VGPRThreads)
	e.uint(m.VGPRRegs)
	return e.b
}

// encodeTracker serializes one structure's lifetime timeline. Segments
// within a slot are ordered and non-overlapping (the tracker builds them
// that way), so each is stored as (gap since previous end, duration,
// kind, zigzag delta of the data version) — small numbers everywhere.
func encodeTracker(t *lifetime.Tracker) []byte {
	var e enc
	e.uint(t.Words())
	e.uint(t.BytesPerWord())
	// The total segment count lets the decoder allocate one exact-size
	// arena for all slots instead of one slice per slot — the difference
	// between a ~50ms and a ~10ms decode on a cache-sized tracker.
	total := 0
	for w := 0; w < t.Words(); w++ {
		for b := 0; b < t.BytesPerWord(); b++ {
			total += len(t.Segments(w, b))
		}
	}
	e.uvarint(uint64(total))
	for w := 0; w < t.Words(); w++ {
		for b := 0; b < t.BytesPerWord(); b++ {
			segs := t.Segments(w, b)
			e.uvarint(uint64(len(segs)))
			var prevEnd interval.Cycle
			var prevVer int64
			for _, s := range segs {
				e.uvarint(s.Start - prevEnd)
				e.uvarint(s.End - s.Start)
				// Kind (2 bits) rides in the low bits of the zigzagged
				// version delta: consecutive segments of a byte usually
				// hold adjacent versions, so the whole third field still
				// fits one byte — a quarter of the per-segment parse work
				// and ~15% of the artifact size compared to a separate
				// kind byte.
				vd := int64(s.Version) - prevVer
				zz := uint64(vd<<1) ^ uint64(vd>>63)
				e.uvarint(zz<<2 | uint64(s.Kind))
				prevEnd = s.End
				prevVer = int64(s.Version)
			}
		}
	}
	return e.b
}

// encodeGraph serializes the solved liveness graph: live masks as
// uvarints (mostly 0 or small), last-read cycles as zigzag deltas (they
// grow with version id), and the ever-read flags as a bitset.
func encodeGraph(g *dataflow.Graph) []byte {
	s := g.Snapshot()
	var e enc
	n := len(s.Live)
	e.uint(n)
	for _, v := range s.Live {
		e.uvarint(uint64(v))
	}
	var prev int64
	for _, v := range s.LastRead {
		e.varint(int64(v) - prev)
		prev = int64(v)
	}
	bits := make([]byte, (n+7)/8)
	for i, r := range s.EverRead {
		if r {
			bits[i/8] |= 1 << (i % 8)
		}
	}
	e.bytes(bits)
	return e.b
}

// Encode writes m as one complete artifact. The measurements must be
// fully instrumented (all three trackers and the graph); encoding is
// deterministic, so equal measurements produce equal bytes.
func Encode(w io.Writer, m *sim.Measurements) error {
	if !m.Instrumented() {
		return fmt.Errorf("store: measurements are not fully instrumented; nothing to encode")
	}
	out := append(make([]byte, 0, 1<<16), magic...)
	out = append(out, version)
	out = appendSection(out, secMeta, encodeMeta(m))
	out = appendSection(out, secL1, encodeTracker(m.L1Tracker))
	out = appendSection(out, secL2, encodeTracker(m.L2Tracker))
	out = appendSection(out, secVGPR, encodeTracker(m.VGPRTracker))
	out = appendSection(out, secGraph, encodeGraph(m.Graph))
	_, err := w.Write(out)
	return err
}

// EncodedBytes returns m's artifact encoding as a byte slice.
func EncodedBytes(m *sim.Measurements) ([]byte, error) {
	var buf bytes.Buffer
	if err := Encode(&buf, m); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// --- decoding ---

// dec is a bounds-checked cursor over an untrusted payload. Every read
// reports failure instead of panicking, so hostile bytes surface as
// typed errors all the way up.
type dec struct {
	b   []byte
	off int
}

func (d *dec) remaining() int { return len(d.b) - d.off }

func (d *dec) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: malformed uvarint at offset %d", ErrCorrupt, d.off)
	}
	d.off += n
	return v, nil
}

func (d *dec) varint() (int64, error) {
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: malformed varint at offset %d", ErrCorrupt, d.off)
	}
	d.off += n
	return v, nil
}

func (d *dec) byte() (byte, error) {
	if d.off >= len(d.b) {
		return 0, fmt.Errorf("%w: truncated payload", ErrCorrupt)
	}
	v := d.b[d.off]
	d.off++
	return v, nil
}

func (d *dec) take(n int) ([]byte, error) {
	if n < 0 || d.remaining() < n {
		return nil, fmt.Errorf("%w: truncated payload (want %d bytes, have %d)", ErrCorrupt, n, d.remaining())
	}
	v := d.b[d.off : d.off+n]
	d.off += n
	return v, nil
}

func (d *dec) str(maxLen int) (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(maxLen) {
		return "", fmt.Errorf("%w: string length %d exceeds limit %d", ErrCorrupt, n, maxLen)
	}
	b, err := d.take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// count reads an element count and sanity-checks it against the bytes
// actually present (each element needs at least minBytes), so a hostile
// length cannot force a giant allocation from a tiny input.
func (d *dec) count(minBytes int) (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(math.MaxInt32) || int64(v)*int64(minBytes) > int64(d.remaining()) {
		return 0, fmt.Errorf("%w: count %d impossible with %d bytes left", ErrCorrupt, v, d.remaining())
	}
	return int(v), nil
}

// splitSections validates the header and the section framing of a whole
// artifact: magic, version, every section present exactly once, every
// CRC matching. It returns the raw payloads indexed by section id.
func splitSections(data []byte) (map[byte][]byte, error) {
	if len(data) < len(magic)+1 || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrFormat)
	}
	if v := data[len(magic)]; v != version {
		return nil, fmt.Errorf("%w: artifact version %d, this build reads %d", ErrFormat, v, version)
	}
	d := &dec{b: data, off: len(magic) + 1}
	secs := make(map[byte][]byte, numSecs)
	for d.remaining() > 0 {
		id, err := d.byte()
		if err != nil {
			return nil, err
		}
		if id < secMeta || id > secGraph {
			return nil, fmt.Errorf("%w: unknown section id %d", ErrFormat, id)
		}
		if _, dup := secs[id]; dup {
			return nil, fmt.Errorf("%w: duplicate %s section", ErrFormat, sectionName(id))
		}
		n, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(d.remaining()) {
			return nil, fmt.Errorf("%w: %s section length %d exceeds file", ErrCorrupt, sectionName(id), n)
		}
		payload, err := d.take(int(n))
		if err != nil {
			return nil, err
		}
		crcb, err := d.take(4)
		if err != nil {
			return nil, fmt.Errorf("%w: %s section missing checksum", ErrCorrupt, sectionName(id))
		}
		if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(crcb); got != want {
			return nil, fmt.Errorf("%w: %s section checksum mismatch (%08x != %08x)",
				ErrCorrupt, sectionName(id), got, want)
		}
		secs[id] = payload
	}
	for id := byte(secMeta); id <= secGraph; id++ {
		if _, ok := secs[id]; !ok {
			return nil, fmt.Errorf("%w: missing %s section", ErrFormat, sectionName(id))
		}
	}
	return secs, nil
}

// maxNameLen bounds the workload and fingerprint strings in meta; real
// values are tens of bytes.
const maxNameLen = 1 << 10

// decodeMeta parses the meta payload.
func decodeMeta(payload []byte) (Meta, error) {
	d := &dec{b: payload}
	var m Meta
	var err error
	if m.Workload, err = d.str(maxNameLen); err != nil {
		return Meta{}, err
	}
	if m.ConfigFP, err = d.str(maxNameLen); err != nil {
		return Meta{}, err
	}
	if m.Cycles, err = d.uvarint(); err != nil {
		return Meta{}, err
	}
	if m.Instructions, err = d.uvarint(); err != nil {
		return Meta{}, err
	}
	for _, dst := range []*int{&m.L1Sets, &m.L1Ways, &m.L2Sets, &m.L2Ways, &m.LineBytes, &m.VGPRThreads, &m.VGPRRegs} {
		v, err := d.uvarint()
		if err != nil {
			return Meta{}, err
		}
		if v > uint64(math.MaxInt32) {
			return Meta{}, fmt.Errorf("%w: geometry value %d out of range", ErrCorrupt, v)
		}
		*dst = int(v)
	}
	if m.Cycles == 0 {
		return Meta{}, fmt.Errorf("%w: artifact has zero cycles", ErrCorrupt)
	}
	if d.remaining() != 0 {
		return Meta{}, fmt.Errorf("%w: %d trailing bytes in meta section", ErrCorrupt, d.remaining())
	}
	return m, nil
}

// decodeTracker rebuilds one structure's lifetime tracker. maxVer bounds
// the version ids segments may reference (the graph's length), so a
// decoded artifact can never index the liveness arrays out of range.
func decodeTracker(name string, payload []byte, wantWords, wantBPW int, maxVer uint64) (*lifetime.Tracker, error) {
	d := &dec{b: payload}
	words, err := d.count(1)
	if err != nil {
		return nil, err
	}
	bpw, err := d.count(1)
	if err != nil {
		return nil, err
	}
	if words != wantWords || bpw != wantBPW {
		return nil, fmt.Errorf("%w: %s tracker is %dx%d, meta says %dx%d",
			ErrCorrupt, name, words, bpw, wantWords, wantBPW)
	}
	total, err := d.count(3) // gap+dur+packed >= 3 bytes per segment
	if err != nil {
		return nil, fmt.Errorf("%s tracker total: %w", name, err)
	}
	if words*bpw > d.remaining() { // each slot needs >= 1 byte (its count)
		return nil, fmt.Errorf("%w: %s tracker claims %d slots with %d bytes left",
			ErrCorrupt, name, words*bpw, d.remaining())
	}
	// One arena for every slot's segments: the declared total (already
	// sanity-checked against the bytes present) sizes it exactly, so the
	// appends below never reallocate and the subslices stay valid.
	arena := make([]lifetime.Seg, 0, total)
	segs := make([][]lifetime.Seg, words*bpw)
	for i := range segs {
		n, err := d.count(3)
		if err != nil {
			return nil, fmt.Errorf("%s tracker slot %d: %w", name, i, err)
		}
		if n == 0 {
			continue
		}
		if n > total-len(arena) {
			return nil, fmt.Errorf("%w: %s tracker slot counts exceed declared total %d",
				ErrCorrupt, name, total)
		}
		base := len(arena)
		slot := arena[base : base+n : base+n]
		arena = arena[:base+n]
		// Hand-inlined varint reads on a local cursor: this loop decodes
		// millions of segments per cache-sized tracker, and the one- and
		// two-byte fast paths (the overwhelmingly common cases for
		// delta-encoded values) plus skipped method-call overhead are
		// what let a warm-store load beat re-simulation by an order of
		// magnitude instead of a small factor.
		b, off := d.b, d.off
		var prevEnd interval.Cycle
		var prevVer int64
		ok := true
		for j := range slot {
			var gap, dur, packed uint64
			if off+1 < len(b) && b[off] < 0x80 {
				gap, off = uint64(b[off]), off+1
			} else if off+2 < len(b) && b[off]&0x80 != 0 && b[off+1] < 0x80 {
				gap, off = uint64(b[off]&0x7f)|uint64(b[off+1])<<7, off+2
			} else if v, k := binary.Uvarint(b[off:]); k > 0 {
				gap, off = v, off+k
			} else {
				ok = false
				break
			}
			if off+1 < len(b) && b[off] < 0x80 {
				dur, off = uint64(b[off]), off+1
			} else if off+2 < len(b) && b[off]&0x80 != 0 && b[off+1] < 0x80 {
				dur, off = uint64(b[off]&0x7f)|uint64(b[off+1])<<7, off+2
			} else if v, k := binary.Uvarint(b[off:]); k > 0 {
				dur, off = v, off+k
			} else {
				ok = false
				break
			}
			if off < len(b) && b[off] < 0x80 {
				packed, off = uint64(b[off]), off+1
			} else if off+1 < len(b) && b[off+1] < 0x80 {
				packed, off = uint64(b[off]&0x7f)|uint64(b[off+1])<<7, off+2
			} else if v, k := binary.Uvarint(b[off:]); k > 0 {
				packed, off = v, off+k
			} else {
				ok = false
				break
			}
			kind := packed & 3
			zz := packed >> 2
			vd := int64(zz>>1) ^ -int64(zz&1) // zigzag decode
			start := prevEnd + gap
			end := start + dur
			if dur == 0 || start < prevEnd || end < start {
				return nil, fmt.Errorf("%w: %s tracker slot %d has a degenerate segment", ErrCorrupt, name, i)
			}
			if kind > uint64(lifetime.SegPending) {
				return nil, fmt.Errorf("%w: %s tracker slot %d has segment kind %d", ErrCorrupt, name, i, kind)
			}
			ver := prevVer + vd
			if ver < 0 || uint64(ver) >= maxVer {
				return nil, fmt.Errorf("%w: %s tracker references version %d outside graph of %d",
					ErrCorrupt, name, ver, maxVer)
			}
			slot[j] = lifetime.Seg{Start: start, End: end, Kind: lifetime.SegKind(kind), Version: dataflow.VersionID(ver)}
			prevEnd = end
			prevVer = ver
		}
		d.off = off
		if !ok {
			return nil, fmt.Errorf("%w: truncated segment in %s tracker slot %d", ErrCorrupt, name, i)
		}
		segs[i] = slot
	}
	if len(arena) != total {
		return nil, fmt.Errorf("%w: %s tracker declared %d segments, found %d",
			ErrCorrupt, name, total, len(arena))
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in %s section", ErrCorrupt, d.remaining(), name)
	}
	t, err := lifetime.Adopt(words, bpw, segs)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return t, nil
}

// unpackBits maps a bitset byte to its eight bools (LSB first), so the
// ever-read bitset expands with one 8-byte copy per input byte instead
// of eight masked shifts.
var unpackBits = func() (t [256][8]bool) {
	for v := range t {
		for i := 0; i < 8; i++ {
			t[v][i] = v&(1<<i) != 0
		}
	}
	return
}()

// decodeGraph rebuilds the solved liveness graph.
func decodeGraph(payload []byte) (*dataflow.Graph, int, error) {
	d := &dec{b: payload}
	n, err := d.count(2) // live(>=1) + lastread(>=1); the bitset is checked below
	if err != nil {
		return nil, 0, err
	}
	if n == 0 {
		return nil, 0, fmt.Errorf("%w: empty graph", ErrCorrupt)
	}
	snap := dataflow.Snapshot{
		Live:     make([]uint32, n),
		LastRead: make([]interval.Cycle, n),
		EverRead: make([]bool, n),
	}
	// Local-cursor reads with a one-byte fast path: the graph of a long
	// run holds hundreds of thousands of versions, and most live masks
	// and read-time deltas are small.
	b, off := d.b, d.off
	for i := range snap.Live {
		var v uint64
		if off < len(b) && b[off] < 0x80 {
			v, off = uint64(b[off]), off+1
		} else if off+1 < len(b) && b[off+1] < 0x80 {
			v, off = uint64(b[off]&0x7f)|uint64(b[off+1])<<7, off+2
		} else if u, k := binary.Uvarint(b[off:]); k > 0 {
			v, off = u, off+k
		} else {
			return nil, 0, fmt.Errorf("%w: truncated live mask %d", ErrCorrupt, i)
		}
		if v > math.MaxUint32 {
			return nil, 0, fmt.Errorf("%w: live mask %d exceeds 32 bits", ErrCorrupt, v)
		}
		snap.Live[i] = uint32(v)
	}
	var prev int64
	for i := range snap.LastRead {
		var zz uint64
		if off < len(b) && b[off] < 0x80 {
			zz, off = uint64(b[off]), off+1
		} else if off+1 < len(b) && b[off+1] < 0x80 {
			zz, off = uint64(b[off]&0x7f)|uint64(b[off+1])<<7, off+2
		} else if u, k := binary.Uvarint(b[off:]); k > 0 {
			zz, off = u, off+k
		} else {
			return nil, 0, fmt.Errorf("%w: truncated read time %d", ErrCorrupt, i)
		}
		prev += int64(zz>>1) ^ -int64(zz&1)
		snap.LastRead[i] = uint64(prev)
	}
	d.off = off
	bits, err := d.take((n + 7) / 8)
	if err != nil {
		return nil, 0, err
	}
	for i := 0; i+8 <= n; i += 8 {
		copy(snap.EverRead[i:i+8], unpackBits[bits[i/8]][:])
	}
	for i := n &^ 7; i < n; i++ {
		snap.EverRead[i] = bits[i/8]&(1<<(i%8)) != 0
	}
	if d.remaining() != 0 {
		return nil, 0, fmt.Errorf("%w: %d trailing bytes in graph section", ErrCorrupt, d.remaining())
	}
	g, err := dataflow.Adopt(snap)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return g, n, nil
}

// Decode parses a complete artifact back into measurements. It never
// panics on hostile input: every failure wraps ErrFormat or ErrCorrupt.
// The decoded measurements are fully cross-validated (geometry against
// tracker shapes, segment versions against the graph), so analysis over
// them is as safe as over a fresh simulation.
func Decode(data []byte) (*sim.Measurements, error) {
	a, err := Parse(data)
	if err != nil {
		return nil, err
	}
	return a.Measurements()
}

// DecodeReader is Decode over a stream.
func DecodeReader(r io.Reader) (*sim.Measurements, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// SectionCheck is one section's integrity verdict from CheckSections.
type SectionCheck struct {
	Name  string
	Bytes int
	// Err is nil when the section's CRC matches its payload.
	Err error
}

// CheckSections walks a complete artifact's framing and verifies every
// section CRC, collecting one result per section instead of failing on
// the first mismatch — so `mbavf-store verify` and the scrubber can
// report exactly which sections rotted. Framing-level damage (bad
// magic, malformed lengths, truncation, duplicate or missing sections)
// is returned as the error, alongside whatever sections were walkable
// before the damage.
func CheckSections(data []byte) ([]SectionCheck, error) {
	if len(data) < len(magic)+1 || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrFormat)
	}
	if v := data[len(magic)]; v != version {
		return nil, fmt.Errorf("%w: artifact version %d, this build reads %d", ErrFormat, v, version)
	}
	d := &dec{b: data, off: len(magic) + 1}
	var out []SectionCheck
	seen := make(map[byte]bool, numSecs)
	for d.remaining() > 0 {
		id, err := d.byte()
		if err != nil {
			return out, err
		}
		if id < secMeta || id > secGraph {
			return out, fmt.Errorf("%w: unknown section id %d", ErrFormat, id)
		}
		if seen[id] {
			return out, fmt.Errorf("%w: duplicate %s section", ErrFormat, sectionName(id))
		}
		seen[id] = true
		n, err := d.uvarint()
		if err != nil {
			return out, err
		}
		if n > uint64(d.remaining()) {
			return out, fmt.Errorf("%w: %s section length %d exceeds file", ErrCorrupt, sectionName(id), n)
		}
		payload, err := d.take(int(n))
		if err != nil {
			return out, err
		}
		crcb, err := d.take(4)
		if err != nil {
			return out, fmt.Errorf("%w: %s section missing checksum", ErrCorrupt, sectionName(id))
		}
		sc := SectionCheck{Name: sectionName(id), Bytes: len(payload)}
		if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(crcb); got != want {
			sc.Err = fmt.Errorf("%w: %s section checksum mismatch (%08x != %08x)",
				ErrCorrupt, sectionName(id), got, want)
		}
		out = append(out, sc)
	}
	for id := byte(secMeta); id <= secGraph; id++ {
		if !seen[id] {
			return out, fmt.Errorf("%w: missing %s section", ErrFormat, sectionName(id))
		}
	}
	return out, nil
}

// secLoc locates one section's payload inside an artifact blob, with
// the CRC its bytes must hash to. The ranged load path verifies each
// section at fetch time instead of eagerly.
type secLoc struct {
	off, n int64
	crc    uint32
}

// maxSecHdr bounds one section header: id byte plus the payload-length
// uvarint.
const maxSecHdr = 1 + binary.MaxVarintLen64

// scanSections walks an artifact's section table through small ranged
// reads — read(off, n) returns n bytes of the blob at off — without
// transferring any payload. Each iteration reads a section's trailing
// CRC together with the next section's header, so a five-section
// artifact costs six small reads. The framing is validated exactly as
// splitSections does (magic, version, every section exactly once);
// payload CRCs are NOT checked here — the returned locations carry them
// for verification at fetch time.
func scanSections(size int64, read func(off, n int64) ([]byte, error)) (map[byte]secLoc, error) {
	hdr := int64(len(magic) + 1)
	if size < hdr {
		return nil, fmt.Errorf("%w: bad magic", ErrFormat)
	}
	take := func(off, n int64) ([]byte, error) {
		if off+n > size {
			n = size - off
		}
		return read(off, n)
	}
	buf, err := take(0, hdr+maxSecHdr)
	if err != nil {
		return nil, err
	}
	if int64(len(buf)) < hdr || string(buf[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrFormat)
	}
	if v := buf[len(magic)]; v != version {
		return nil, fmt.Errorf("%w: artifact version %d, this build reads %d", ErrFormat, v, version)
	}
	bufOff := int64(0)
	off := hdr
	secs := make(map[byte]secLoc, numSecs)
	for off < size {
		if off < bufOff || off >= bufOff+int64(len(buf)) {
			if buf, err = take(off, maxSecHdr); err != nil {
				return nil, err
			}
			bufOff = off
		}
		window := buf[off-bufOff:]
		id := window[0]
		if id < secMeta || id > secGraph {
			return nil, fmt.Errorf("%w: unknown section id %d", ErrFormat, id)
		}
		if _, dup := secs[id]; dup {
			return nil, fmt.Errorf("%w: duplicate %s section", ErrFormat, sectionName(id))
		}
		n, k := binary.Uvarint(window[1:])
		if k <= 0 {
			return nil, fmt.Errorf("%w: truncated %s section header", ErrCorrupt, sectionName(id))
		}
		payOff := off + 1 + int64(k)
		if n > uint64(size) || payOff+int64(n)+4 > size {
			return nil, fmt.Errorf("%w: %s section length %d exceeds file", ErrCorrupt, sectionName(id), n)
		}
		crcOff := payOff + int64(n)
		// One read covers this section's CRC and (opportunistically) the
		// next section's header.
		if buf, err = take(crcOff, 4+maxSecHdr); err != nil {
			return nil, err
		}
		bufOff = crcOff
		if len(buf) < 4 {
			return nil, fmt.Errorf("%w: %s section missing checksum", ErrCorrupt, sectionName(id))
		}
		secs[id] = secLoc{off: payOff, n: int64(n), crc: binary.LittleEndian.Uint32(buf[:4])}
		off = crcOff + 4
	}
	for id := byte(secMeta); id <= secGraph; id++ {
		if _, ok := secs[id]; !ok {
			return nil, fmt.Errorf("%w: missing %s section", ErrFormat, sectionName(id))
		}
	}
	return secs, nil
}

// DecodeMeta validates the framing (header, CRCs) of a complete artifact
// and parses only its meta section — the cheap path behind `ls` and
// `inspect`, which must not pay full segment decoding per artifact.
func DecodeMeta(data []byte) (Meta, []SectionInfo, error) {
	secs, err := splitSections(data)
	if err != nil {
		return Meta{}, nil, err
	}
	meta, err := decodeMeta(secs[secMeta])
	if err != nil {
		return Meta{}, nil, err
	}
	infos := make([]SectionInfo, 0, numSecs)
	for id := byte(secMeta); id <= secGraph; id++ {
		infos = append(infos, SectionInfo{Name: sectionName(id), Bytes: len(secs[id])})
	}
	return meta, infos, nil
}
