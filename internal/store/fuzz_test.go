package store

import (
	"bytes"
	"errors"
	"testing"

	"mbavf/internal/dataflow"
	"mbavf/internal/lifetime"
	"mbavf/internal/sim"
)

// tinyMeasurements hand-builds the smallest valid artifact content: a
// 1x1x1B L1 and L2, a 1-thread 1-register VGPR, and a 2-version graph.
// Fuzzing mutates this ~100-byte seed thousands of times faster than the
// half-megabyte simulated one.
func tinyMeasurements(f *testing.F) *sim.Measurements {
	f.Helper()
	g, err := dataflow.Restore(dataflow.Snapshot{
		Live:     []uint32{0, 1},
		LastRead: []uint64{0, 7},
		EverRead: []bool{false, true},
	})
	if err != nil {
		f.Fatal(err)
	}
	seg := []lifetime.Seg{{Start: 1, End: 5, Kind: lifetime.SegACE, Version: 1}}
	l1, err := lifetime.Adopt(1, 1, [][]lifetime.Seg{seg})
	if err != nil {
		f.Fatal(err)
	}
	l2, err := lifetime.Adopt(1, 1, [][]lifetime.Seg{{}})
	if err != nil {
		f.Fatal(err)
	}
	vgpr, err := lifetime.Adopt(1, 4, [][]lifetime.Seg{seg, {}, {}, {}})
	if err != nil {
		f.Fatal(err)
	}
	return &sim.Measurements{
		Workload: "tiny", ConfigFP: "fp", Cycles: 10, Instructions: 3,
		L1Sets: 1, L1Ways: 1, L2Sets: 1, L2Ways: 1, LineBytes: 1,
		VGPRThreads: 1, VGPRRegs: 1,
		L1Tracker: l1, L2Tracker: l2, VGPRTracker: vgpr, Graph: g,
	}
}

// FuzzStoreRoundTrip drives the artifact decoder with hostile bytes: it
// must never panic, never allocate unboundedly, and reject every invalid
// input with a typed error (ErrFormat or ErrCorrupt). Inputs that do
// decode must round-trip bit-identically through re-encoding — the
// store's "never silently analyze damage" contract, mechanized.
func FuzzStoreRoundTrip(f *testing.F) {
	// Seed with a genuine (tiny) artifact so the fuzzer starts from
	// valid framing and mutates inward past the CRCs, plus the classic
	// adversarial shapes.
	valid, err := EncodedBytes(tinyMeasurements(f))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("MBAV"))
	f.Add([]byte{'M', 'B', 'A', 'V', version})
	f.Add(append(bytes.Clone(valid[:len(valid)/2]), 0xff))
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrFormat) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if !dec.Instrumented() {
			t.Fatal("decode returned uninstrumented measurements")
		}
		again, err := EncodedBytes(dec)
		if err != nil {
			t.Fatalf("re-encode of decoded artifact failed: %v", err)
		}
		if !bytes.Equal(data, again) {
			t.Fatalf("decode/encode not bit-identical: %d in, %d out", len(data), len(again))
		}
		// The lightweight metadata path must agree with the full decode.
		meta, _, err := DecodeMeta(data)
		if err != nil {
			t.Fatalf("DecodeMeta rejected what Decode accepted: %v", err)
		}
		if meta.Workload != dec.Workload || meta.Cycles != dec.Cycles {
			t.Fatalf("DecodeMeta disagrees with Decode: %+v vs %+v", meta, dec)
		}
	})
}
