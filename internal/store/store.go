package store

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"time"

	"mbavf/internal/obs"
	"mbavf/internal/sim"
)

// Observability series; /metrics exposes them as mbavf_store_*. A
// cold-start query that answers without simulating shows up as a
// store.hits increment with store.misses (and serve.simulations) flat.
var (
	obsHits         = obs.NewCounter("store.hits")
	obsMisses       = obs.NewCounter("store.misses")
	obsPuts         = obs.NewCounter("store.puts")
	obsCorrupt      = obs.NewCounter("store.corrupt")
	obsQuarantined  = obs.NewCounter("store.quarantined")
	obsGCRemoved    = obs.NewCounter("store.gc_removed")
	obsBytesRead    = obs.NewCounter("store.bytes_read")
	obsBytesWritten = obs.NewCounter("store.bytes_written")
	// obsDecodeNS records one sample per decoded section payload (graph
	// or tracker); lazily loaded artifacts contribute only the sections
	// their queries actually touched.
	obsDecodeNS = obs.NewHistogram("store.decode_ns")
)

// ErrNotFound marks a Get/Inspect for a key the store does not hold;
// callers fall through to simulation.
var ErrNotFound = errors.New("store: artifact not found")

// artifactExt is the on-disk suffix of stored artifacts.
const artifactExt = ".mbavf"

// quarantineDir collects artifacts that failed decoding. They are kept
// (renamed, not deleted) so an operator can post-mortem the damage, and
// reclaimed by GC.
const quarantineDir = "quarantine"

// KeyFor returns the content address of a (workload, machine config)
// pair: a 32-hex-digit digest stable across processes and hosts. The
// workload name covers the workload's parameters too — bundled
// workloads bake their sizes into their identity — and the config
// fingerprint covers every field of the machine shape.
func KeyFor(workload string, cfg sim.Config) string {
	h := sha256.New()
	fmt.Fprintf(h, "workload=%s\nconfig=%s\n", workload, cfg.Fingerprint())
	return hex.EncodeToString(h.Sum(nil))[:32]
}

// keyRE validates externally supplied keys before they touch the
// filesystem (they become file names).
var keyRE = regexp.MustCompile(`^[0-9a-f]{32}$`)

// Store is a content-addressed directory of run artifacts. All methods
// are safe for concurrent use by independent processes: writers commit
// via temp-file-plus-rename, so readers only ever observe complete
// files, and a crashed writer leaves at worst an orphaned temp file for
// GC to sweep.
type Store struct {
	dir string
}

// Open returns a store rooted at dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Path returns the file path an artifact with the given key lives at.
func (s *Store) Path(key string) string { return filepath.Join(s.dir, key+artifactExt) }

func checkKey(key string) error {
	if !keyRE.MatchString(key) {
		return fmt.Errorf("store: malformed key %q", key)
	}
	return nil
}

// Get loads and decodes the artifact stored under key. A missing
// artifact returns ErrNotFound; a damaged one is quarantined and
// returns an error wrapping ErrCorrupt or ErrFormat — it is never
// silently analyzed, and the caller's fallback is re-simulation.
func (s *Store) Get(key string) (*sim.Measurements, error) {
	if err := checkKey(key); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(s.Path(key))
	if errors.Is(err, fs.ErrNotExist) {
		obsMisses.Add(1)
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	obsBytesRead.Add(uint64(len(data)))
	m, err := Decode(data)
	if err != nil {
		if errors.Is(err, ErrCorrupt) || errors.Is(err, ErrFormat) {
			obsCorrupt.Add(1)
			s.quarantine(key)
		}
		return nil, err
	}
	obsHits.Add(1)
	return m, nil
}

// GetArtifact loads the artifact stored under key as a lazily decoding
// Artifact: the framing and every CRC are verified before it returns (a
// damaged file is quarantined exactly as in Get), but the measurement
// payloads decode on first use. This is the serving tier's load path —
// reviving a run costs low milliseconds, and each analysis then decodes
// only the sections it touches.
func (s *Store) GetArtifact(key string) (*Artifact, error) {
	if err := checkKey(key); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(s.Path(key))
	if errors.Is(err, fs.ErrNotExist) {
		obsMisses.Add(1)
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	obsBytesRead.Add(uint64(len(data)))
	a, err := Parse(data)
	if err != nil {
		if errors.Is(err, ErrCorrupt) || errors.Is(err, ErrFormat) {
			obsCorrupt.Add(1)
			s.quarantine(key)
		}
		return nil, err
	}
	obsHits.Add(1)
	return a, nil
}

// quarantine moves a damaged artifact out of the addressable namespace
// so the next Get for its key misses cleanly. Best-effort: a failed
// rename falls back to removal, and a failed removal leaves the file to
// fail CRC again.
func (s *Store) quarantine(key string) {
	qdir := filepath.Join(s.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err == nil {
		if os.Rename(s.Path(key), filepath.Join(qdir, key+artifactExt)) == nil {
			obsQuarantined.Add(1)
			return
		}
	}
	_ = os.Remove(s.Path(key))
}

// Put encodes m and commits it under key atomically: the artifact is
// written to a temp file in the store directory and renamed into place,
// so a crash mid-write never leaves a partial artifact addressable.
func (s *Store) Put(key string, m *sim.Measurements) error {
	if err := checkKey(key); err != nil {
		return err
	}
	data, err := EncodedBytes(m)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.Path(key)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	obsPuts.Add(1)
	obsBytesWritten.Add(uint64(len(data)))
	return nil
}

// Has reports whether an artifact is stored under key (without
// validating it; Get still decides whether it is usable).
func (s *Store) Has(key string) bool {
	if checkKey(key) != nil {
		return false
	}
	_, err := os.Stat(s.Path(key))
	return err == nil
}

// Delete removes the artifact stored under key, if any.
func (s *Store) Delete(key string) error {
	if err := checkKey(key); err != nil {
		return err
	}
	if err := os.Remove(s.Path(key)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Info describes one stored artifact for listing and inspection.
type Info struct {
	Key      string
	Bytes    int64
	ModTime  time.Time
	Meta     Meta
	Sections []SectionInfo
	// Err carries the decode failure of a damaged artifact in List
	// output (Inspect returns it as an error instead).
	Err error
}

// keys returns the stored artifact keys, sorted.
func (s *Store) keys() ([]string, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var keys []string
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if filepath.Ext(name) != artifactExt {
			continue
		}
		key := name[:len(name)-len(artifactExt)]
		if keyRE.MatchString(key) {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// Inspect reads one artifact's metadata and section layout, verifying
// its framing and CRCs but not decoding the measurement payloads.
func (s *Store) Inspect(key string) (Info, error) {
	if err := checkKey(key); err != nil {
		return Info{}, err
	}
	st, err := os.Stat(s.Path(key))
	if errors.Is(err, fs.ErrNotExist) {
		return Info{}, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if err != nil {
		return Info{}, fmt.Errorf("store: %w", err)
	}
	data, err := os.ReadFile(s.Path(key))
	if err != nil {
		return Info{}, fmt.Errorf("store: %w", err)
	}
	meta, secs, err := DecodeMeta(data)
	if err != nil {
		return Info{}, err
	}
	return Info{Key: key, Bytes: st.Size(), ModTime: st.ModTime(), Meta: meta, Sections: secs}, nil
}

// List enumerates the stored artifacts. Damaged artifacts are included
// with Err set rather than hidden, so `mbavf-store ls` shows them.
func (s *Store) List() ([]Info, error) {
	keys, err := s.keys()
	if err != nil {
		return nil, err
	}
	out := make([]Info, 0, len(keys))
	for _, key := range keys {
		info, err := s.Inspect(key)
		if err != nil {
			if errors.Is(err, ErrNotFound) {
				continue // raced with a concurrent delete
			}
			info = Info{Key: key, Err: err}
			if st, serr := os.Stat(s.Path(key)); serr == nil {
				info.Bytes, info.ModTime = st.Size(), st.ModTime()
			}
		}
		out = append(out, info)
	}
	return out, nil
}

// Verify fully decodes the artifact under key, exercising every CRC and
// every payload invariant. It does not quarantine: verify is a
// diagnostic, not a serving path.
func (s *Store) Verify(key string) error {
	if err := checkKey(key); err != nil {
		return err
	}
	data, err := os.ReadFile(s.Path(key))
	if errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	_, err = Decode(data)
	return err
}

// GC bounds the store: quarantined artifacts and orphaned temp files
// are always removed, then the oldest artifacts (by modification time)
// are evicted until the remainder fits maxBytes. maxBytes <= 0 means
// unlimited (only the quarantine/temp sweep runs). It returns how many
// files were removed and how many bytes were freed.
func (s *Store) GC(maxBytes int64) (removed int, freed int64, err error) {
	// Sweep the quarantine and stale temp files first.
	qdir := filepath.Join(s.dir, quarantineDir)
	if ents, rerr := os.ReadDir(qdir); rerr == nil {
		for _, e := range ents {
			p := filepath.Join(qdir, e.Name())
			if st, serr := os.Stat(p); serr == nil && os.Remove(p) == nil {
				removed++
				freed += st.Size()
			}
		}
	}
	ents, rerr := os.ReadDir(s.dir)
	if rerr != nil {
		return removed, freed, fmt.Errorf("store: %w", rerr)
	}
	type aged struct {
		key  string
		size int64
		mod  time.Time
	}
	var arts []aged
	var total int64
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		st, serr := e.Info()
		if serr != nil {
			continue
		}
		name := e.Name()
		if filepath.Ext(name) != artifactExt {
			// Orphaned temp file from a crashed writer: reclaim if it has
			// been sitting for a while (an active writer renames within
			// seconds).
			if len(name) > 4 && name[:5] == ".tmp-" && time.Since(st.ModTime()) > time.Hour {
				if os.Remove(filepath.Join(s.dir, name)) == nil {
					removed++
					freed += st.Size()
				}
			}
			continue
		}
		arts = append(arts, aged{key: name[:len(name)-len(artifactExt)], size: st.Size(), mod: st.ModTime()})
		total += st.Size()
	}
	if maxBytes > 0 && total > maxBytes {
		sort.Slice(arts, func(i, j int) bool { return arts[i].mod.Before(arts[j].mod) })
		for _, a := range arts {
			if total <= maxBytes {
				break
			}
			if os.Remove(filepath.Join(s.dir, a.key+artifactExt)) == nil {
				removed++
				freed += a.size
				total -= a.size
			}
		}
	}
	obsGCRemoved.Add(uint64(removed))
	return removed, freed, nil
}
