package store

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"time"

	"mbavf/internal/obs"
	"mbavf/internal/sim"
	"mbavf/internal/store/backend"
	"mbavf/internal/store/disk"
)

// Observability series; /metrics exposes them as mbavf_store_*. Every
// family is counted twice: once unlabeled (the process aggregate smoke
// tests and dashboards grep for) and once per backend kind, exposed as
// mbavf_store_*{backend="disk"} — so a process mixing a local disk
// store and a remote HTTP store still shows where the bytes went. A
// cold-start query that answers without simulating shows up as a
// store.hits increment with store.misses (and serve.simulations) flat.
var (
	// obsDecodeNS records one sample per decoded section payload (graph
	// or tracker); lazily loaded artifacts contribute only the sections
	// their queries actually touched.
	obsDecodeNS = obs.NewHistogram("store.decode_ns")
)

// counter2 increments the aggregate family and its backend-labeled
// series together.
type counter2 struct{ agg, lab *obs.Counter }

func (c counter2) Add(n uint64) { c.agg.Add(n); c.lab.Add(n) }

// metrics is one Store's counter set, labeled by its backend kind.
type metrics struct {
	hits         counter2
	misses       counter2
	puts         counter2
	corrupt      counter2
	quarantined  counter2
	gcRemoved    counter2
	bytesRead    counter2
	bytesWritten counter2
	scrubChecked counter2
	scrubDamaged counter2
}

func newMetrics(kind string) *metrics {
	c := func(family string) counter2 {
		// The registry hands back the same counter for the same name, so
		// every Store over the same backend kind shares one series.
		return counter2{obs.NewCounter(family), obs.NewCounter(family + "|backend=" + kind)}
	}
	return &metrics{
		hits:         c("store.hits"),
		misses:       c("store.misses"),
		puts:         c("store.puts"),
		corrupt:      c("store.corrupt"),
		quarantined:  c("store.quarantined"),
		gcRemoved:    c("store.gc_removed"),
		bytesRead:    c("store.bytes_read"),
		bytesWritten: c("store.bytes_written"),
		scrubChecked: c("store.scrub_checked"),
		scrubDamaged: c("store.scrub_damaged"),
	}
}

// ErrNotFound marks a Get/Inspect for a key the store does not hold;
// callers fall through to simulation.
var ErrNotFound = backend.ErrNotFound

// Backend is the pluggable blob layer beneath a Store; see
// internal/store/backend for the contract and internal/store/disk,
// .../mem, .../httpstore for the implementations.
type Backend = backend.Interface

// KeyFor returns the content address of a (workload, machine config)
// pair: a 32-hex-digit digest stable across processes and hosts. The
// workload name covers the workload's parameters too — bundled
// workloads bake their sizes into their identity — and the config
// fingerprint covers every field of the machine shape.
func KeyFor(workload string, cfg sim.Config) string {
	h := sha256.New()
	fmt.Fprintf(h, "workload=%s\nconfig=%s\n", workload, cfg.Fingerprint())
	return hex.EncodeToString(h.Sum(nil))[:32]
}

// Store is a content-addressed collection of run artifacts over a
// pluggable Backend. The Store owns artifact semantics — format
// validation, CRC checking, quarantine of damaged artifacts, lazy
// decoding, scrub and GC policy — while the backend only moves opaque
// bytes. All methods are safe for concurrent use.
type Store struct {
	b backend.Interface
	m *metrics
	// ranged backends (HTTP) get the section-table-scan load path: an
	// L1 query transfers the meta, graph and L1 sections only.
	ranged bool
}

// NewStore wraps a backend in artifact semantics.
func NewStore(b backend.Interface) *Store {
	s := &Store{b: b, m: newMetrics(b.Name())}
	if rb, ok := b.(backend.Ranged); ok {
		s.ranged = rb.Ranged()
	}
	return s
}

// Open returns a store over a disk backend rooted at dir, creating the
// directory if needed — a shorthand for NewStore(disk.New(dir)) kept
// for the many callers that predate pluggable backends.
func Open(dir string) (*Store, error) {
	b, err := disk.New(dir)
	if err != nil {
		return nil, err
	}
	return NewStore(b), nil
}

// Backend returns the blob layer this store runs over (so a server can
// mount it behind the HTTP artifact protocol).
func (s *Store) Backend() backend.Interface { return s.b }

// Dir describes the backing location: the root directory of a disk
// store, the base URL of an HTTP store.
func (s *Store) Dir() string { return s.b.String() }

// Path returns the file path an artifact with the given key lives at,
// or "" when the backend is not file-based.
func (s *Store) Path(key string) string {
	if d, ok := s.b.(*disk.Backend); ok {
		return d.Path(key)
	}
	return ""
}

func checkKey(key string) error { return backend.CheckKey(key) }

// Get loads and fully decodes the artifact stored under key. A missing
// artifact returns ErrNotFound; a damaged one is quarantined and
// returns an error wrapping ErrCorrupt or ErrFormat — it is never
// silently analyzed, and the caller's fallback is re-simulation.
func (s *Store) Get(ctx context.Context, key string) (*sim.Measurements, error) {
	data, err := s.getBytes(ctx, key)
	if err != nil {
		return nil, err
	}
	m, err := Decode(data)
	if err != nil {
		if errors.Is(err, ErrCorrupt) || errors.Is(err, ErrFormat) {
			s.m.corrupt.Add(1)
			s.quarantine(ctx, key)
		}
		return nil, err
	}
	s.m.hits.Add(1)
	return m, nil
}

// getBytes fetches the whole artifact blob, accounting for misses and
// bytes read (but not hits — the caller decides once decoding works).
func (s *Store) getBytes(ctx context.Context, key string) ([]byte, error) {
	if err := checkKey(key); err != nil {
		return nil, err
	}
	data, err := s.b.Get(ctx, key)
	if errors.Is(err, ErrNotFound) {
		s.m.misses.Add(1)
		return nil, err
	}
	if err != nil {
		return nil, err
	}
	s.m.bytesRead.Add(uint64(len(data)))
	return data, nil
}

// GetArtifact loads the artifact stored under key as a lazily decoding
// Artifact. Over a local backend the whole blob is read and every CRC
// verified before it returns (a damaged file is quarantined exactly as
// in Get); over a ranged backend (HTTP) only the section table and the
// meta section transfer here, and each remaining section is fetched —
// and CRC-verified — on the first analysis that touches it. Either way
// the measurement payloads decode on first use. This is the serving
// tier's load path: reviving a run costs low milliseconds, and each
// analysis then pays for only the sections it touches.
func (s *Store) GetArtifact(ctx context.Context, key string) (*Artifact, error) {
	if s.ranged {
		if err := checkKey(key); err != nil {
			return nil, err
		}
		return s.getArtifactRanged(ctx, key)
	}
	data, err := s.getBytes(ctx, key)
	if err != nil {
		return nil, err
	}
	a, err := Parse(data)
	if err != nil {
		if errors.Is(err, ErrCorrupt) || errors.Is(err, ErrFormat) {
			s.m.corrupt.Add(1)
			s.quarantine(ctx, key)
		}
		return nil, err
	}
	s.m.hits.Add(1)
	return a, nil
}

// getArtifactRanged builds an Artifact without transferring the whole
// blob: Stat for the size, a handful of small ReadSection calls to walk
// the section table (validating framing eagerly), then the meta payload.
// Section CRCs are verified as sections are fetched; a mismatch at any
// point quarantines the artifact, exactly like the eager path.
func (s *Store) getArtifactRanged(ctx context.Context, key string) (*Artifact, error) {
	info, err := s.b.Stat(ctx, key)
	if errors.Is(err, ErrNotFound) {
		s.m.misses.Add(1)
		return nil, err
	}
	if err != nil {
		return nil, err
	}
	read := func(off, n int64) ([]byte, error) {
		data, err := s.b.ReadSection(ctx, key, off, n)
		if err == nil {
			s.m.bytesRead.Add(uint64(len(data)))
		}
		return data, err
	}
	locs, err := scanSections(info.Bytes, read)
	if err != nil {
		if errors.Is(err, ErrCorrupt) || errors.Is(err, ErrFormat) {
			s.m.corrupt.Add(1)
			s.quarantine(ctx, key)
		}
		return nil, err
	}
	// The meta section decodes now: Load must be able to check the
	// artifact's identity before anyone analyzes it.
	mloc := locs[secMeta]
	payload, err := read(mloc.off, mloc.n)
	if err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(payload) != mloc.crc {
		err := fmt.Errorf("%w: meta section checksum mismatch", ErrCorrupt)
		s.m.corrupt.Add(1)
		s.quarantine(ctx, key)
		return nil, err
	}
	meta, err := decodeMeta(payload)
	if err != nil {
		s.m.corrupt.Add(1)
		s.quarantine(ctx, key)
		return nil, err
	}
	s.m.hits.Add(1)
	// Later section fetches run on a detached context: the artifact
	// outlives the request that loaded it (it sits in the serve tier's
	// run cache), so an abandoned request must not poison its decoding.
	dctx := context.WithoutCancel(ctx)
	src := &rangedSource{
		ctx:     dctx,
		b:       s.b,
		key:     key,
		locs:    locs,
		onBytes: func(n int) { s.m.bytesRead.Add(uint64(n)) },
		onCorrupt: func() {
			s.m.corrupt.Add(1)
			s.quarantine(dctx, key)
		},
	}
	return &Artifact{meta: meta, src: src}, nil
}

// quarantine moves a damaged artifact out of the addressable namespace
// so the next Get for its key misses cleanly. Backends that cannot keep
// the bytes for post-mortem just delete. Best-effort: a failure leaves
// the artifact to fail its CRC again.
func (s *Store) quarantine(ctx context.Context, key string) {
	if q, ok := s.b.(backend.Quarantiner); ok {
		if q.Quarantine(ctx, key) == nil {
			s.m.quarantined.Add(1)
		}
		return
	}
	if s.b.Delete(ctx, key) == nil {
		s.m.quarantined.Add(1)
	}
}

// Put encodes m and commits it under key atomically.
func (s *Store) Put(ctx context.Context, key string, m *sim.Measurements) error {
	if err := checkKey(key); err != nil {
		return err
	}
	data, err := EncodedBytes(m)
	if err != nil {
		return err
	}
	if err := s.b.Put(ctx, key, data); err != nil {
		return err
	}
	s.m.puts.Add(1)
	s.m.bytesWritten.Add(uint64(len(data)))
	return nil
}

// Has reports whether an artifact is stored under key (without
// validating it; Get still decides whether it is usable).
func (s *Store) Has(ctx context.Context, key string) bool {
	if checkKey(key) != nil {
		return false
	}
	ok, err := s.b.Has(ctx, key)
	return err == nil && ok
}

// Delete removes the artifact stored under key, if any.
func (s *Store) Delete(ctx context.Context, key string) error {
	if err := checkKey(key); err != nil {
		return err
	}
	return s.b.Delete(ctx, key)
}

// Info describes one stored artifact for listing and inspection.
type Info struct {
	Key      string
	Bytes    int64
	ModTime  time.Time
	Meta     Meta
	Sections []SectionInfo
	// Err carries the decode failure of a damaged artifact in List
	// output (Inspect returns it as an error instead).
	Err error
}

// Inspect reads one artifact's metadata and section layout, verifying
// its framing and CRCs but not decoding the measurement payloads.
func (s *Store) Inspect(ctx context.Context, key string) (Info, error) {
	if err := checkKey(key); err != nil {
		return Info{}, err
	}
	ki, err := s.b.Stat(ctx, key)
	if err != nil {
		return Info{}, err
	}
	data, err := s.b.Get(ctx, key)
	if err != nil {
		return Info{}, err
	}
	meta, secs, err := DecodeMeta(data)
	if err != nil {
		return Info{}, err
	}
	return Info{Key: key, Bytes: ki.Bytes, ModTime: ki.ModTime, Meta: meta, Sections: secs}, nil
}

// List enumerates the stored artifacts, sorted by key. Damaged
// artifacts are included with Err set rather than hidden, so
// `mbavf-store ls` shows them.
func (s *Store) List(ctx context.Context) ([]Info, error) {
	kis, err := s.b.List(ctx)
	if err != nil {
		return nil, err
	}
	sort.Slice(kis, func(i, j int) bool { return kis[i].Key < kis[j].Key })
	out := make([]Info, 0, len(kis))
	for _, ki := range kis {
		info, err := s.Inspect(ctx, ki.Key)
		if err != nil {
			if errors.Is(err, ErrNotFound) {
				continue // raced with a concurrent delete
			}
			info = Info{Key: ki.Key, Bytes: ki.Bytes, ModTime: ki.ModTime, Err: err}
		}
		out = append(out, info)
	}
	return out, nil
}

// Verify fully decodes the artifact under key, exercising every CRC and
// every payload invariant. It does not quarantine: verify is a
// diagnostic, not a serving path.
func (s *Store) Verify(ctx context.Context, key string) error {
	if err := checkKey(key); err != nil {
		return err
	}
	data, err := s.b.Get(ctx, key)
	if err != nil {
		return err
	}
	_, err = Decode(data)
	return err
}

// VerifySections checks the artifact under key section by section,
// returning one result per section so damage reports name the section
// that rotted instead of just the artifact. The returned error covers
// framing-level damage (bad magic, truncation) that prevents walking
// the sections at all.
func (s *Store) VerifySections(ctx context.Context, key string) ([]SectionCheck, error) {
	if err := checkKey(key); err != nil {
		return nil, err
	}
	data, err := s.b.Get(ctx, key)
	if err != nil {
		return nil, err
	}
	return CheckSections(data)
}

// Scrub walks every stored artifact and validates its framing and every
// section CRC (cheap CPU-bound checks over one sequential read each),
// quarantining the damaged ones so they fail over to re-simulation
// before a query ever trips on them. It returns how many artifacts were
// checked and how many were found damaged.
func (s *Store) Scrub(ctx context.Context) (checked, damaged int, err error) {
	kis, err := s.b.List(ctx)
	if err != nil {
		return 0, 0, err
	}
	for _, ki := range kis {
		if err := ctx.Err(); err != nil {
			return checked, damaged, err
		}
		data, err := s.b.Get(ctx, ki.Key)
		if errors.Is(err, ErrNotFound) {
			continue // raced with a concurrent delete
		}
		if err != nil {
			return checked, damaged, err
		}
		checked++
		s.m.scrubChecked.Add(1)
		bad := false
		secs, serr := CheckSections(data)
		if serr != nil {
			bad = true
		}
		for _, sc := range secs {
			if sc.Err != nil {
				bad = true
			}
		}
		if bad {
			damaged++
			s.m.scrubDamaged.Add(1)
			s.m.corrupt.Add(1)
			s.quarantine(ctx, ki.Key)
		}
	}
	return checked, damaged, nil
}

// GC bounds the store: the backend's private debris (quarantined
// artifacts, orphaned temp files) is swept first, then the oldest
// artifacts (by modification time) are evicted until the remainder fits
// maxBytes. maxBytes <= 0 means unlimited (only the sweep runs). With
// dryRun nothing is removed; the counts report what a real GC would
// reclaim. It returns how many blobs were removed and how many bytes
// were freed.
func (s *Store) GC(ctx context.Context, maxBytes int64, dryRun bool) (removed int, freed int64, err error) {
	if sw, ok := s.b.(backend.Sweeper); ok {
		removed, freed, err = sw.Sweep(ctx, dryRun)
		if err != nil {
			return removed, freed, err
		}
	}
	kis, err := s.b.List(ctx)
	if err != nil {
		return removed, freed, err
	}
	var total int64
	for _, ki := range kis {
		total += ki.Bytes
	}
	if maxBytes > 0 && total > maxBytes {
		sort.Slice(kis, func(i, j int) bool { return kis[i].ModTime.Before(kis[j].ModTime) })
		for _, ki := range kis {
			if total <= maxBytes {
				break
			}
			if !dryRun {
				if s.b.Delete(ctx, ki.Key) != nil {
					continue
				}
			}
			removed++
			freed += ki.Bytes
			total -= ki.Bytes
		}
	}
	if !dryRun {
		s.m.gcRemoved.Add(uint64(removed))
	}
	return removed, freed, nil
}

// MaintainConfig tunes the background maintenance loop.
type MaintainConfig struct {
	// Interval between maintenance passes (default 10 minutes).
	Interval time.Duration
	// MaxBytes bounds the store size for GC eviction; <= 0 disables
	// eviction (the sweep and scrub still run).
	MaxBytes int64
	// Scrub enables the per-pass CRC scrub over every artifact.
	Scrub bool
}

// Maintain runs scrub and GC passes every Interval until ctx is
// cancelled. It blocks; callers run it in a goroutine. Failures are
// absorbed (the loop keeps going) — maintenance is hygiene, never a
// correctness dependency — but they surface in the scrub/GC counters.
func (s *Store) Maintain(ctx context.Context, cfg MaintainConfig) {
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * time.Minute
	}
	t := time.NewTicker(cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		if cfg.Scrub {
			_, _, _ = s.Scrub(ctx)
		}
		_, _, _ = s.GC(ctx, cfg.MaxBytes, false)
	}
}
