package store

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"mbavf/internal/sim"
	"mbavf/internal/store/backend"
	"mbavf/internal/workloads"
)

// measured simulates one small instrumented workload, once per test
// binary; every codec and store test shares the result read-only.
var measured = sync.OnceValues(func() (*sim.Measurements, error) {
	w, err := workloads.ByName("vecadd")
	if err != nil {
		return nil, err
	}
	s, err := sim.Execute(w, sim.DefaultConfig())
	if err != nil {
		return nil, err
	}
	return s.Measurements(), nil
})

func testMeasurements(t *testing.T) *sim.Measurements {
	t.Helper()
	m, err := measured()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func encoded(t *testing.T) []byte {
	t.Helper()
	data, err := EncodedBytes(testMeasurements(t))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := testMeasurements(t)
	data := encoded(t)
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Workload != m.Workload || got.ConfigFP != m.ConfigFP ||
		got.Cycles != m.Cycles || got.Instructions != m.Instructions {
		t.Errorf("meta mismatch: got %+v", got)
	}
	// Bit-identical round trip: re-encoding the decoded measurements must
	// reproduce the original artifact byte for byte.
	again, err := EncodedBytes(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Errorf("re-encode differs: %d vs %d bytes", len(data), len(again))
	}
}

func TestDecodeRejectsEveryFlippedByte(t *testing.T) {
	data := encoded(t)
	// Flipping any single byte anywhere in the artifact must yield a
	// typed error: either the framing breaks (ErrFormat) or a CRC catches
	// it (ErrCorrupt). Sampling every byte is cheap at vecadd size.
	step := 1
	if len(data) > 8192 {
		step = len(data) / 8192
	}
	for i := 0; i < len(data); i += step {
		mut := bytes.Clone(data)
		mut[i] ^= 0xff
		_, err := Decode(mut)
		if err == nil {
			t.Fatalf("flipped byte %d: decode accepted corrupt artifact", i)
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrFormat) {
			t.Fatalf("flipped byte %d: untyped error %v", i, err)
		}
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	data := encoded(t)
	for _, n := range []int{0, 1, 3, 4, 5, len(data) / 2, len(data) - 1} {
		if _, err := Decode(data[:n]); err == nil {
			t.Errorf("truncated to %d bytes: decode accepted", n)
		} else if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrFormat) {
			t.Errorf("truncated to %d bytes: untyped error %v", n, err)
		}
	}
}

func TestDecodeMetaMatchesFull(t *testing.T) {
	m := testMeasurements(t)
	data := encoded(t)
	meta, secs, err := DecodeMeta(data)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Workload != m.Workload || meta.Cycles != m.Cycles ||
		meta.L1Sets != m.L1Sets || meta.VGPRThreads != m.VGPRThreads {
		t.Errorf("meta mismatch: %+v", meta)
	}
	if len(secs) != 5 {
		t.Fatalf("want 5 sections, got %d", len(secs))
	}
	total := 0
	for _, s := range secs {
		if s.Name == "" || s.Bytes < 0 {
			t.Errorf("bad section info %+v", s)
		}
		total += s.Bytes
	}
	if total >= len(data) {
		t.Errorf("section payloads (%d) not smaller than artifact (%d)", total, len(data))
	}
}

func TestKeyFor(t *testing.T) {
	cfg := sim.DefaultConfig()
	k1 := KeyFor("vecadd", cfg)
	if err := backend.CheckKey(k1); err != nil {
		t.Fatalf("malformed key %q: %v", k1, err)
	}
	if k1 != KeyFor("vecadd", cfg) {
		t.Error("key not stable")
	}
	if k1 == KeyFor("minife", cfg) {
		t.Error("key ignores workload")
	}
	cfg2 := cfg
	cfg2.Caches.L1.SizeBytes *= 2
	if k1 == KeyFor("vecadd", cfg2) {
		t.Error("key ignores machine config")
	}
}

func TestStorePutGetHasDelete(t *testing.T) {
	ctx := context.Background()
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := testMeasurements(t)
	key := KeyFor(m.Workload, sim.DefaultConfig())

	if _, err := st.Get(ctx, key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound before put, got %v", err)
	}
	if st.Has(ctx, key) {
		t.Error("Has before put")
	}
	if err := st.Put(ctx, key, m); err != nil {
		t.Fatal(err)
	}
	if !st.Has(ctx, key) {
		t.Error("no Has after put")
	}
	got, err := st.Get(ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	if got.Workload != m.Workload || got.Cycles != m.Cycles {
		t.Errorf("get mismatch: %+v", got)
	}
	if err := st.Delete(ctx, key); err != nil {
		t.Fatal(err)
	}
	if st.Has(ctx, key) {
		t.Error("Has after delete")
	}
	if err := st.Delete(ctx, key); err != nil {
		t.Errorf("delete of missing key should be a no-op, got %v", err)
	}
}

func TestStoreRejectsMalformedKeys(t *testing.T) {
	ctx := context.Background()
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "short", "../../../../etc/passwd", "ZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZ"} {
		if _, err := st.Get(ctx, key); err == nil {
			t.Errorf("Get(%q) accepted", key)
		}
		if err := st.Put(ctx, key, testMeasurements(t)); err == nil {
			t.Errorf("Put(%q) accepted", key)
		}
		if st.Has(ctx, key) {
			t.Errorf("Has(%q) true", key)
		}
	}
}

func TestStoreQuarantinesCorruptArtifact(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := testMeasurements(t)
	key := KeyFor(m.Workload, sim.DefaultConfig())
	if err := st.Put(ctx, key, m); err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the middle of the committed artifact.
	path := st.Path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = st.Get(ctx, key)
	if err == nil {
		t.Fatal("Get accepted corrupt artifact")
	}
	if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrFormat) {
		t.Fatalf("untyped corruption error %v", err)
	}
	if st.Has(ctx, key) {
		t.Error("corrupt artifact still addressable after quarantine")
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine", key+".mbavf")); err != nil {
		t.Errorf("quarantined file missing: %v", err)
	}
	// The key now misses cleanly: the fallback path is re-record.
	if _, err := st.Get(ctx, key); !errors.Is(err, ErrNotFound) {
		t.Errorf("want ErrNotFound after quarantine, got %v", err)
	}
	if err := st.Put(ctx, key, m); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(ctx, key); err != nil {
		t.Errorf("re-record after quarantine failed: %v", err)
	}
}

func TestStoreListInspectVerify(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := testMeasurements(t)
	key := KeyFor(m.Workload, sim.DefaultConfig())
	if err := st.Put(ctx, key, m); err != nil {
		t.Fatal(err)
	}
	// A second, damaged artifact under a different (well-formed) key.
	badKey := "00000000000000000000000000000000"
	if err := os.WriteFile(st.Path(badKey), []byte("MBAVgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	infos, err := st.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("want 2 listed artifacts, got %d", len(infos))
	}
	var okN, badN int
	for _, in := range infos {
		if in.Err != nil {
			badN++
			if in.Key != badKey {
				t.Errorf("wrong artifact flagged damaged: %s", in.Key)
			}
		} else {
			okN++
			if in.Meta.Workload != m.Workload {
				t.Errorf("listed meta mismatch: %+v", in.Meta)
			}
		}
	}
	if okN != 1 || badN != 1 {
		t.Errorf("want 1 ok + 1 damaged, got %d + %d", okN, badN)
	}

	in, err := st.Inspect(ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	if in.Meta.Cycles != m.Cycles || len(in.Sections) != 5 {
		t.Errorf("inspect mismatch: %+v", in)
	}
	if _, err := st.Inspect(ctx, badKey); err == nil {
		t.Error("Inspect accepted damaged artifact")
	}

	if err := st.Verify(ctx, key); err != nil {
		t.Errorf("Verify of good artifact: %v", err)
	}
	if err := st.Verify(ctx, badKey); err == nil {
		t.Error("Verify accepted damaged artifact")
	}
	// Verify must not quarantine: it is a diagnostic.
	if !st.Has(ctx, badKey) {
		t.Error("Verify quarantined the artifact")
	}
}

func TestStoreGC(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := testMeasurements(t)
	key := KeyFor(m.Workload, sim.DefaultConfig())
	if err := st.Put(ctx, key, m); err != nil {
		t.Fatal(err)
	}
	// Plant a quarantined file; GC always reclaims it.
	qdir := filepath.Join(dir, "quarantine")
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(qdir, "deadbeef.mbavf"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	removed, freed, err := st.GC(ctx, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 || freed != 1 {
		t.Errorf("quarantine sweep: removed %d freed %d", removed, freed)
	}
	if !st.Has(ctx, key) {
		t.Error("unlimited GC evicted a live artifact")
	}
	// A dry run against a 1-byte budget reports the eviction without
	// performing it.
	removed, _, err = st.GC(ctx, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 || !st.Has(ctx, key) {
		t.Errorf("dry-run GC: removed %d, has=%v", removed, st.Has(ctx, key))
	}
	// A 1-byte budget evicts everything.
	removed, _, err = st.GC(ctx, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 || st.Has(ctx, key) {
		t.Errorf("budgeted GC: removed %d, has=%v", removed, st.Has(ctx, key))
	}
}

func TestEncodeRequiresInstrumentation(t *testing.T) {
	m := testMeasurements(t)
	partial := *m
	partial.Graph = nil
	if _, err := EncodedBytes(&partial); err == nil {
		t.Error("encode accepted uninstrumented measurements")
	}
	var buf bytes.Buffer
	if err := Encode(&buf, &partial); err == nil {
		t.Error("Encode accepted uninstrumented measurements")
	}
}
