package mem_test

import (
	"context"
	"testing"

	"mbavf/internal/store/backend"
	"mbavf/internal/store/mem"
	"mbavf/internal/store/storetest"
)

func TestConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T) backend.Interface { return mem.New() })
}

// The ranged variant must satisfy the same contract; only the store
// layer's load-path choice differs.
func TestConformanceRanged(t *testing.T) {
	storetest.Run(t, func(t *testing.T) backend.Interface { return mem.NewRanged() })
}

// TestQuarantineKeepsBytes pins the post-mortem hook: quarantined bytes
// stay inspectable until a sweep reclaims them.
func TestQuarantineKeepsBytes(t *testing.T) {
	ctx := context.Background()
	b := mem.New()
	key := "0123456789abcdef0123456789abcdef"
	if err := b.Put(ctx, key, []byte("damaged")); err != nil {
		t.Fatal(err)
	}
	if err := b.Quarantine(ctx, key); err != nil {
		t.Fatal(err)
	}
	data, ok := b.Quarantined(key)
	if !ok || string(data) != "damaged" {
		t.Fatalf("Quarantined = (%q, %v), want the original bytes", data, ok)
	}
	removed, freed, err := b.Sweep(ctx, false)
	if err != nil || removed != 1 || freed != 7 {
		t.Fatalf("Sweep = (%d, %d, %v), want (1, 7, nil)", removed, freed, err)
	}
	if _, ok := b.Quarantined(key); ok {
		t.Error("Sweep left quarantined bytes")
	}
}
