// Package mem is the in-memory artifact-store backend: a mutex-guarded
// map used by tests (the backend conformance suite runs against it
// directly) and as the blob namespace behind an httpstore server in
// unit tests. Blobs are copied on Put and Get, so callers can never
// alias the stored bytes.
package mem

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"mbavf/internal/store/backend"
)

// blob is one stored value with the metadata Stat and List report.
type blob struct {
	data []byte
	mod  time.Time
	etag string
}

// Backend is an in-memory content-addressed blob map, safe for
// concurrent use.
type Backend struct {
	mu          sync.Mutex
	blobs       map[string]blob
	quarantined map[string][]byte
	ranged      bool
}

// New returns an empty in-memory backend.
func New() *Backend {
	return &Backend{blobs: make(map[string]blob), quarantined: make(map[string][]byte)}
}

// NewRanged returns an in-memory backend that advertises cheap section
// reads, forcing the store layer onto its ranged (section-table-scan)
// load path — the test double for HTTP Range semantics.
func NewRanged() *Backend {
	b := New()
	b.ranged = true
	return b
}

// Name identifies the backend kind for metrics labels.
func (b *Backend) Name() string { return "mem" }

// String describes the instance.
func (b *Backend) String() string { return "mem" }

// Ranged reports whether this instance advertises cheap section reads.
func (b *Backend) Ranged() bool { return b.ranged }

// Get returns a copy of the blob stored under key.
func (b *Backend) Get(ctx context.Context, key string) ([]byte, error) {
	if err := backend.CheckKey(key); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	bl, ok := b.blobs[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", backend.ErrNotFound, key)
	}
	out := make([]byte, len(bl.data))
	copy(out, bl.data)
	return out, nil
}

// ReadSection returns n bytes of the blob starting at off.
func (b *Backend) ReadSection(ctx context.Context, key string, off, n int64) ([]byte, error) {
	if err := backend.CheckKey(key); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	bl, ok := b.blobs[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", backend.ErrNotFound, key)
	}
	if off < 0 || n < 0 || off+n > int64(len(bl.data)) {
		return nil, fmt.Errorf("store: reading %s [%d,+%d): out of range (blob is %d bytes)", key, off, n, len(bl.data))
	}
	out := make([]byte, n)
	copy(out, bl.data[off:off+n])
	return out, nil
}

// Put stores a copy of data under key.
func (b *Backend) Put(ctx context.Context, key string, data []byte) error {
	if err := backend.CheckKey(key); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	sum := sha256.Sum256(cp)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.blobs[key] = blob{data: cp, mod: time.Now(), etag: hex.EncodeToString(sum[:16])}
	return nil
}

// Has reports whether a blob is stored under key.
func (b *Backend) Has(ctx context.Context, key string) (bool, error) {
	if err := backend.CheckKey(key); err != nil {
		return false, err
	}
	if err := ctx.Err(); err != nil {
		return false, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.blobs[key]
	return ok, nil
}

// Stat describes the blob stored under key.
func (b *Backend) Stat(ctx context.Context, key string) (backend.KeyInfo, error) {
	if err := backend.CheckKey(key); err != nil {
		return backend.KeyInfo{}, err
	}
	if err := ctx.Err(); err != nil {
		return backend.KeyInfo{}, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	bl, ok := b.blobs[key]
	if !ok {
		return backend.KeyInfo{}, fmt.Errorf("%w: %s", backend.ErrNotFound, key)
	}
	return backend.KeyInfo{Key: key, Bytes: int64(len(bl.data)), ModTime: bl.mod, ETag: bl.etag}, nil
}

// List enumerates the stored blobs.
func (b *Backend) List(ctx context.Context) ([]backend.KeyInfo, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]backend.KeyInfo, 0, len(b.blobs))
	for key, bl := range b.blobs {
		out = append(out, backend.KeyInfo{Key: key, Bytes: int64(len(bl.data)), ModTime: bl.mod, ETag: bl.etag})
	}
	return out, nil
}

// Delete removes the blob stored under key, if any.
func (b *Backend) Delete(ctx context.Context, key string) error {
	if err := backend.CheckKey(key); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.blobs, key)
	return nil
}

// Quarantine moves a damaged blob out of the addressable namespace,
// keeping its bytes inspectable via Quarantined.
func (b *Backend) Quarantine(ctx context.Context, key string) error {
	if err := backend.CheckKey(key); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if bl, ok := b.blobs[key]; ok {
		b.quarantined[key] = bl.data
		delete(b.blobs, key)
	}
	return nil
}

// Quarantined returns the quarantined bytes for key, if any — test
// hooks for asserting quarantine behavior.
func (b *Backend) Quarantined(key string) ([]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	data, ok := b.quarantined[key]
	return data, ok
}

// Sweep drops everything in quarantine. With dryRun it only counts.
func (b *Backend) Sweep(ctx context.Context, dryRun bool) (removed int, freed int64, err error) {
	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for key, data := range b.quarantined {
		removed++
		freed += int64(len(data))
		if !dryRun {
			delete(b.quarantined, key)
		}
	}
	return removed, freed, nil
}

var (
	_ backend.Interface   = (*Backend)(nil)
	_ backend.Quarantiner = (*Backend)(nil)
	_ backend.Sweeper     = (*Backend)(nil)
	_ backend.Ranged      = (*Backend)(nil)
)
