// Package backend defines the pluggable storage interface beneath the
// run-artifact store. A backend is a flat, content-addressed blob
// namespace: keys are 32-hex-digit digests, values are opaque encoded
// artifacts. All artifact semantics — format framing, CRC validation,
// quarantine policy, lazy decoding — live one layer up in
// internal/store, so a backend only has to move bytes reliably.
//
// The package is a leaf on purpose: internal/store and every backend
// implementation (disk, mem, httpstore) import it, and it imports
// nothing of theirs, so new backends (object storage, tiered
// disk+HTTP) slot in without touching the store layer.
package backend

import (
	"context"
	"errors"
	"fmt"
	"regexp"
	"time"
)

// ErrNotFound marks a Get/Stat/ReadSection for a key the backend does
// not hold. Every implementation must return an error wrapping this for
// missing keys — the store layer's miss accounting and the run-store's
// fall-through to simulation both key off errors.Is(err, ErrNotFound).
var ErrNotFound = errors.New("store: artifact not found")

// keyRE validates externally supplied keys before they touch a
// filesystem or a URL path (they become file and resource names).
var keyRE = regexp.MustCompile(`^[0-9a-f]{32}$`)

// CheckKey rejects keys that are not 32-hex-digit content addresses.
// Backends call it at their boundary so a hostile key ("../../etc/…")
// can never traverse out of the namespace.
func CheckKey(key string) error {
	if !keyRE.MatchString(key) {
		return fmt.Errorf("store: malformed key %q", key)
	}
	return nil
}

// KeyInfo describes one stored blob without reading its contents.
type KeyInfo struct {
	Key     string
	Bytes   int64
	ModTime time.Time
	// ETag is an opaque version tag that changes whenever the blob's
	// bytes change. The HTTP backend surfaces it for conditional catalog
	// fetches; other backends derive it from what they have (mtime+size,
	// a content digest).
	ETag string
}

// Interface is the contract every artifact-store backend implements.
// Keys are validated 32-hex-digit content addresses; values are opaque.
// Implementations must be safe for concurrent use, and writes must be
// atomic at blob granularity: a reader never observes a half-written
// value.
type Interface interface {
	// Name identifies the implementation kind ("disk", "http", "mem")
	// for metrics labels.
	Name() string
	// String describes this instance (directory path, base URL) for
	// human-facing output.
	String() string
	// Get returns the full blob stored under key, or ErrNotFound.
	Get(ctx context.Context, key string) ([]byte, error)
	// Put stores data under key, atomically replacing any previous
	// value.
	Put(ctx context.Context, key string, data []byte) error
	// Has reports whether a blob is stored under key.
	Has(ctx context.Context, key string) (bool, error)
	// Stat describes the blob stored under key, or ErrNotFound.
	Stat(ctx context.Context, key string) (KeyInfo, error)
	// List enumerates the stored blobs in unspecified order.
	List(ctx context.Context) ([]KeyInfo, error)
	// Delete removes the blob stored under key; deleting a missing key
	// is not an error.
	Delete(ctx context.Context, key string) error
	// ReadSection returns n bytes of the blob starting at off, or
	// ErrNotFound. A read past the end of the blob is an error. This is
	// what lets the store's lazy per-section decode pull only the
	// timeline a query touches instead of the whole artifact.
	ReadSection(ctx context.Context, key string, off, n int64) ([]byte, error)
}

// Quarantiner is implemented by backends that can move a damaged blob
// out of the addressable namespace while keeping its bytes for
// post-mortem (the disk backend renames into quarantine/; the HTTP
// client asks the server to do the same). The store falls back to
// Delete on backends without it.
type Quarantiner interface {
	Quarantine(ctx context.Context, key string) error
}

// Sweeper is implemented by backends with private debris to reclaim —
// quarantined blobs, orphaned temp files from crashed writers. The
// store's GC invokes it before eviction. When dryRun is set, the sweep
// only counts what it would remove.
type Sweeper interface {
	Sweep(ctx context.Context, dryRun bool) (removed int, freed int64, err error)
}

// Ranged is implemented by backends whose ReadSection is genuinely
// cheaper than Get — a disk pread, an HTTP Range request. The store
// uses it to decide between loading a whole artifact eagerly (one
// sequential read beats five seeks on a local file) and scanning the
// section table remotely so an L1 query never transfers the L2 and
// register-file timelines.
type Ranged interface {
	Ranged() bool
}
