package store

import (
	"context"
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"mbavf/internal/dataflow"
	"mbavf/internal/lifetime"
	"mbavf/internal/sim"
	"mbavf/internal/store/backend"
)

// sectionSource hands an Artifact its raw section payloads. The
// whole-blob path (mapSource) already holds every CRC-verified payload
// in memory; the ranged path (rangedSource) fetches a section from the
// backend on first use and verifies its CRC then.
type sectionSource interface {
	payload(id byte) ([]byte, error)
}

// mapSource serves payloads split out of a fully loaded blob by
// splitSections, which verified every CRC before the Artifact existed.
type mapSource map[byte][]byte

func (m mapSource) payload(id byte) ([]byte, error) { return m[id], nil }

// rangedSource fetches section payloads through a backend's ranged
// reads. Each section's CRC (captured by the section-table scan at load
// time) is verified against the fetched bytes, so transport damage and
// bit rot surface as ErrCorrupt — and quarantine the artifact — exactly
// as on the eager path, just later.
type rangedSource struct {
	ctx       context.Context
	b         backend.Interface
	key       string
	locs      map[byte]secLoc
	onBytes   func(n int)
	onCorrupt func()
}

func (r *rangedSource) payload(id byte) ([]byte, error) {
	loc, ok := r.locs[id]
	if !ok {
		// scanSections guarantees every section; this is unreachable.
		return nil, fmt.Errorf("%w: missing %s section", ErrFormat, sectionName(id))
	}
	data, err := r.b.ReadSection(r.ctx, r.key, loc.off, loc.n)
	if err != nil {
		return nil, fmt.Errorf("store: fetching %s section: %w", sectionName(id), err)
	}
	if crc32.ChecksumIEEE(data) != loc.crc {
		r.onCorrupt()
		return nil, fmt.Errorf("%w: %s section checksum mismatch", ErrCorrupt, sectionName(id))
	}
	r.onBytes(len(data))
	return data, nil
}

// Artifact is a parsed run artifact whose measurement payloads decode on
// first use. On the whole-blob path Parse validates everything
// structural up front — magic, version, section framing, every CRC — so
// any byte-level damage is caught before an Artifact exists; on the
// ranged path the framing is validated at load time and each section's
// CRC on first fetch. Either way the per-section payload decoding (the
// expensive part, millions of varint-packed segments) is deferred until
// an analysis actually touches that structure. A single L1 query
// against a big artifact therefore pays for the meta, graph and L1
// sections only, never for the L2 and register-file timelines — and
// over a ranged backend it never even transfers them.
//
// All methods are safe for concurrent use: each section decodes at most
// once (sync.Once) and is immutable afterwards, matching the read-only
// sharing contract of analysis over a fresh simulation.
type Artifact struct {
	meta Meta
	src  sectionSource

	graphOnce sync.Once
	graph     *dataflow.Graph
	nVers     int
	graphErr  error

	trackers [3]lazyTracker // indexed by secL1/secL2/secVGPR - secL1
}

type lazyTracker struct {
	once sync.Once
	t    *lifetime.Tracker
	err  error
}

// Parse validates an artifact's header, section framing and checksums
// and decodes its meta section. Hostile or damaged input fails here with
// ErrFormat or ErrCorrupt; the returned Artifact's payloads are
// CRC-clean and decode lazily.
func Parse(data []byte) (*Artifact, error) {
	secs, err := splitSections(data)
	if err != nil {
		return nil, err
	}
	meta, err := decodeMeta(secs[secMeta])
	if err != nil {
		return nil, err
	}
	return &Artifact{meta: meta, src: mapSource(secs)}, nil
}

// Meta returns the artifact's identity and geometry (decoded by Parse).
func (a *Artifact) Meta() Meta { return a.meta }

// Graph returns the solved liveness graph, decoding it on first call.
func (a *Artifact) Graph() (*dataflow.Graph, error) {
	a.graphOnce.Do(func() {
		payload, err := a.src.payload(secGraph)
		if err != nil {
			a.graphErr = err
			return
		}
		start := time.Now()
		a.graph, a.nVers, a.graphErr = decodeGraph(payload)
		if a.graphErr == nil {
			obsDecodeNS.Record(uint64(time.Since(start).Nanoseconds()))
		}
	})
	return a.graph, a.graphErr
}

// tracker decodes one structure's tracker on first call. The graph
// decodes first if needed: segment version ids are validated against
// its length.
func (a *Artifact) tracker(id byte, name string, words, bpw int) (*lifetime.Tracker, error) {
	lt := &a.trackers[id-secL1]
	lt.once.Do(func() {
		if _, err := a.Graph(); err != nil {
			lt.err = fmt.Errorf("%s tracker needs the graph: %w", name, err)
			return
		}
		payload, err := a.src.payload(id)
		if err != nil {
			lt.err = err
			return
		}
		start := time.Now()
		lt.t, lt.err = decodeTracker(name, payload, words, bpw, uint64(a.nVers))
		if lt.err == nil {
			obsDecodeNS.Record(uint64(time.Since(start).Nanoseconds()))
		}
	})
	return lt.t, lt.err
}

// L1 returns the L1 data array's lifetime tracker, decoding on first
// call.
func (a *Artifact) L1() (*lifetime.Tracker, error) {
	return a.tracker(secL1, "l1", a.meta.L1Sets*a.meta.L1Ways, a.meta.LineBytes)
}

// L2 returns the L2 data array's lifetime tracker, decoding on first
// call.
func (a *Artifact) L2() (*lifetime.Tracker, error) {
	return a.tracker(secL2, "l2", a.meta.L2Sets*a.meta.L2Ways, a.meta.LineBytes)
}

// VGPR returns the vector register file's lifetime tracker, decoding on
// first call.
func (a *Artifact) VGPR() (*lifetime.Tracker, error) {
	return a.tracker(secVGPR, "vgpr", a.meta.VGPRThreads*a.meta.VGPRRegs, vgprBytesPerWord)
}

// Measurements decodes every remaining section and assembles the full
// measurement set — the eager path behind Decode and Verify. Sections
// already decoded are reused, so calling it after queries costs only
// what the queries have not yet paid.
func (a *Artifact) Measurements() (*sim.Measurements, error) {
	g, err := a.Graph()
	if err != nil {
		return nil, err
	}
	l1, err := a.L1()
	if err != nil {
		return nil, err
	}
	l2, err := a.L2()
	if err != nil {
		return nil, err
	}
	vgpr, err := a.VGPR()
	if err != nil {
		return nil, err
	}
	return &sim.Measurements{
		Workload:     a.meta.Workload,
		ConfigFP:     a.meta.ConfigFP,
		Cycles:       a.meta.Cycles,
		Instructions: a.meta.Instructions,
		L1Sets:       a.meta.L1Sets,
		L1Ways:       a.meta.L1Ways,
		L2Sets:       a.meta.L2Sets,
		L2Ways:       a.meta.L2Ways,
		LineBytes:    a.meta.LineBytes,
		VGPRThreads:  a.meta.VGPRThreads,
		VGPRRegs:     a.meta.VGPRRegs,
		L1Tracker:    l1,
		L2Tracker:    l2,
		VGPRTracker:  vgpr,
		Graph:        g,
	}, nil
}
