package mbavf

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"

	"mbavf/internal/fabric"
	"mbavf/internal/inject"
)

// startFabricWorker boots a production-configured fabric worker (the
// default campaign resolver over the real workload registry, exactly
// what `mbavf-serve -worker` runs) on an httptest server.
func startFabricWorker(t *testing.T) string {
	t.Helper()
	w := fabric.NewWorker(fabric.WorkerConfig{})
	mux := http.NewServeMux()
	w.Mount(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(func() {
		srv.Close()
		w.Close()
	})
	return srv.URL
}

// TestRunCampaignDistributed runs the public campaign API against a
// two-worker fleet and checks the results and summary are bit-identical
// to the in-process run, and that checkpoint resume works unchanged on
// the distributed path.
func TestRunCampaignDistributed(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload campaign in -short mode")
	}
	c, err := NewInjectionCampaign("vecadd")
	if err != nil {
		t.Fatal(err)
	}
	const n, seed = 16, 3

	ref, refSum, err := c.RunCampaign(context.Background(), CampaignRunConfig{
		Injections: n, Seed: seed, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	fab := &FabricOptions{Workers: []string{startFabricWorker(t), startFabricWorker(t)}, ShardSize: 3}
	dist, distSum, err := c.RunCampaign(context.Background(), CampaignRunConfig{
		Injections: n, Seed: seed, Fabric: fab,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, dist) || refSum != distSum {
		t.Fatal("distributed campaign differs from in-process run")
	}

	// Checkpoint on the distributed path, truncate to simulate a crash,
	// resume distributed: still identical.
	path := filepath.Join(t.TempDir(), "vecadd.ckpt.json")
	if _, _, err := c.RunCampaign(context.Background(), CampaignRunConfig{
		Injections: n, Seed: seed, CheckpointPath: path, CheckpointEvery: 4, Fabric: fab,
	}); err != nil {
		t.Fatal(err)
	}
	ck, err := inject.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ck.Shots) != n {
		t.Fatalf("checkpoint holds %d/%d shots", len(ck.Shots), n)
	}
	ck.Shots = ck.Shots[:5]
	if err := ck.Save(path); err != nil {
		t.Fatal(err)
	}
	resumed, resSum, err := c.RunCampaign(context.Background(), CampaignRunConfig{
		Injections: n, Seed: seed, CheckpointPath: path, Resume: true, Fabric: fab,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, resumed) || refSum != resSum {
		t.Fatal("distributed resumed campaign differs from uninterrupted run")
	}
}
