package mbavf

import (
	"errors"
	"fmt"

	"mbavf/internal/core"
	"mbavf/internal/dataflow"
	"mbavf/internal/faultrate"
	"mbavf/internal/interleave"
	"mbavf/internal/lifetime"
)

// ErrBadOption marks a request that is well-formed Go but semantically
// invalid: an unknown structure or scheme, an interleaving style that the
// structure does not support, a non-positive interleaving factor or fault
// mode, or a negative experiment option. Callers (in particular the HTTP
// serving layer) distinguish it from infrastructure failures with
// errors.Is and map it to a client error.
var ErrBadOption = errors.New("mbavf: bad option")

// Structure names an analyzable hardware structure. It is the single
// dispatch point of the unified query API: every (structure, scheme,
// interleaving, mode) combination goes through Run.AVF / Run.SER instead
// of one method per structure.
type Structure string

// Analyzable structures.
const (
	// L1 is compute unit 0's L1 data array.
	L1 Structure = "l1"
	// L2 is the shared L2 data array.
	L2 Structure = "l2"
	// VGPR is compute unit 0's vector register file.
	VGPR Structure = "vgpr"
)

// Structures lists every analyzable structure.
func Structures() []Structure { return []Structure{L1, L2, VGPR} }

// ParseStructure maps a wire name ("l1", "l2", "vgpr") to a Structure.
func ParseStructure(s string) (Structure, error) {
	for _, st := range Structures() {
		if string(st) == s {
			return st, nil
		}
	}
	return "", fmt.Errorf("%w: unknown structure %q (have l1, l2, vgpr)", ErrBadOption, s)
}

// Styles returns the interleaving styles the structure supports: the
// cache styles for L1/L2, the register-file styles for VGPR.
func (st Structure) Styles() []Style {
	switch st {
	case VGPR:
		return []Style{StyleIntraThread, StyleInterThread}
	default:
		return []Style{StyleLogical, StyleWayPhysical, StyleIndexPhysical}
	}
}

// Schemes lists the supported protection schemes.
func Schemes() []Scheme { return []Scheme{NoProtection, Parity, SECDED, DECTED} }

// validateQuery is the one shared parameter check behind every AVF entry
// point (unified and legacy, total and windowed): the interleaving degree
// and the fault-mode width must both be positive. Layout constructors
// additionally require the factor to divide the structure's geometry.
func validateQuery(il Interleaving, modeBits int) error {
	if il.Factor < 1 {
		return fmt.Errorf("%w: interleaving factor %d must be >= 1", ErrBadOption, il.Factor)
	}
	if modeBits < 1 {
		return fmt.Errorf("%w: fault mode must span at least 1 bit (got %d)", ErrBadOption, modeBits)
	}
	return nil
}

// graph returns the run's solved liveness graph, decoding it from the
// backing store artifact on first use for store-loaded runs.
func (r *Run) graph() (*dataflow.Graph, error) {
	if r.m.Graph != nil {
		return r.m.Graph, nil
	}
	if r.art != nil {
		return r.art.Graph()
	}
	return nil, fmt.Errorf("mbavf: run has no liveness graph")
}

// tracker returns one structure's lifetime tracker, decoding it from
// the backing store artifact on first use for store-loaded runs.
func (r *Run) tracker(st Structure) (*lifetime.Tracker, error) {
	switch st {
	case L1:
		if r.m.L1Tracker != nil {
			return r.m.L1Tracker, nil
		}
		if r.art != nil {
			return r.art.L1()
		}
	case L2:
		if r.m.L2Tracker != nil {
			return r.m.L2Tracker, nil
		}
		if r.art != nil {
			return r.art.L2()
		}
	case VGPR:
		if r.m.VGPRTracker != nil {
			return r.m.VGPRTracker, nil
		}
		if r.art != nil {
			return r.art.VGPR()
		}
	}
	return nil, fmt.Errorf("mbavf: run has no %s instrumentation", st)
}

// analyzerFor builds the MB-AVF analyzer of one structure under one
// interleaving layout — the single construction path shared by the
// unified API, the legacy per-structure methods, and the windowed series.
func (r *Run) analyzerFor(st Structure, il Interleaving) (*core.Analyzer, error) {
	var lay *interleave.Layout
	var preempt, wordVersions bool
	var err error
	switch st {
	case L1:
		lay, err = r.l1Layout(il)
	case L2:
		lay, err = r.l2Layout(il)
	case VGPR:
		lay, preempt, err = r.vgprLayout(il)
		wordVersions = true
	default:
		return nil, fmt.Errorf("%w: unknown structure %q (have l1, l2, vgpr)", ErrBadOption, st)
	}
	if err != nil {
		return nil, err
	}
	// The layout is validated before the (possibly lazily decoded)
	// measurements are touched, so malformed queries against
	// store-loaded runs never pay for a section decode.
	g, err := r.graph()
	if err != nil {
		return nil, err
	}
	tr, err := r.tracker(st)
	if err != nil {
		return nil, err
	}
	return &core.Analyzer{
		Layout:               lay,
		Tracker:              tr,
		Graph:                g,
		WordVersions:         wordVersions,
		TotalCycles:          r.m.Cycles,
		DetectionPreemptsSDC: preempt,
	}, nil
}

// AVF measures the MB-AVF of an Mx1 fault mode (modeBits adjacent bits
// along a wordline) in the given structure under the given protection
// scheme and interleaving layout. It is the unified entry point behind
// the legacy L1AVF/L2AVF/VGPRAVF methods and the analysis service's
// query routes; for the VGPR with inter-thread interleaving it applies
// the paper's detection-preempts-SDC rule.
func (r *Run) AVF(st Structure, scheme Scheme, il Interleaving, modeBits int) (AVF, error) {
	if err := validateQuery(il, modeBits); err != nil {
		return AVF{}, err
	}
	a, err := r.analyzerFor(st, il)
	if err != nil {
		return AVF{}, err
	}
	return r.analyze(a, scheme, modeBits)
}

// AVFSeries measures the structure's MB-AVF over time, split into the
// given number of windows — the unified form of L1AVFSeries and
// VGPRAVFSeries.
func (r *Run) AVFSeries(st Structure, scheme Scheme, il Interleaving, modeBits, windows int) (AVFSeries, error) {
	if err := validateQuery(il, modeBits); err != nil {
		return AVFSeries{}, err
	}
	a, err := r.analyzerFor(st, il)
	if err != nil {
		return AVFSeries{}, err
	}
	return seriesOf(a, scheme, modeBits, windows)
}

// SER rolls the structure's per-mode AVFs into SDC and DUE soft error
// rates using the paper's Table III raw fault rates (1x1 through 8x1,
// total rate normalized to 100).
func (r *Run) SER(st Structure, scheme Scheme, il Interleaving) (SER, error) {
	var out SER
	for _, mr := range faultrate.TableIII() {
		avf, err := r.AVF(st, scheme, il, mr.Width)
		if err != nil {
			return SER{}, err
		}
		out.SDC += faultrate.SER(mr.FIT, avf.SDC)
		out.DUE += faultrate.SER(mr.FIT, avf.TrueDUE+avf.FalseDUE)
	}
	return out, nil
}
