// Quickstart: run one workload on the simulated APU and measure the
// multi-bit AVF of its L1 cache under parity with x2 logical
// interleaving.
package main

import (
	"fmt"
	"log"

	"mbavf"
)

func main() {
	// Execute the bundled vecadd workload: the simulator runs it to
	// completion, recording per-bit lifetime events in the L1/L2 caches
	// and the vector register file, plus a dynamic dataflow graph for
	// program-level masking analysis.
	run, err := mbavf.RunWorkload("matmul")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d cycles, %d wavefront instructions\n",
		run.Cycles(), run.Instructions())

	// Measure the vulnerability of the L1 data array to 2x1 spatial
	// multi-bit faults (two adjacent bits flipped by one particle strike)
	// when each cache line is protected by parity and physically adjacent
	// bits belong to two different check words (x2 logical interleaving).
	il := mbavf.Interleaving{Style: mbavf.StyleLogical, Factor: 2}
	avf, err := run.L1AVF(mbavf.Parity, il, 2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("single-bit AVF:        %6.2f%%\n", 100*avf.SBAVF)
	fmt.Printf("2x1 DUE MB-AVF:        %6.2f%%  (%.2fx single-bit)\n",
		100*avf.DUE, avf.DUE/avf.SBAVF)
	fmt.Printf("2x1 SDC MB-AVF:        %6.2f%%\n", 100*avf.SDC)
	fmt.Printf("fault groups analyzed: %d over %d cycles\n", avf.Groups, avf.Cycles)

	// The same fault mode without interleaving defeats parity entirely
	// (two flips in one check word are undetectable), converting the DUE
	// vulnerability into silent data corruption.
	flat, err := run.L1AVF(mbavf.Parity, mbavf.Interleaving{Style: mbavf.StyleLogical, Factor: 1}, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwithout interleaving:  DUE %.2f%%, SDC %.2f%% — interleaving converts SDC into detectable errors\n",
		100*flat.DUE, 100*flat.SDC)
}
