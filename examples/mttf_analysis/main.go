// MTTF analysis: why the library focuses on *spatial* multi-bit faults.
//
// A temporal multi-bit fault needs two independent particle strikes to
// accumulate in the same protection word before the data is replaced, so
// its rate falls with the square of the raw fault rate. A spatial
// multi-bit fault needs a single strike. Sweeping realistic raw rates for
// a 32MB cache (the paper's Figure 2) shows spatial faults dominating by
// orders of magnitude — and the gap widens as technology lowers raw
// per-bit rates.
package main

import (
	"fmt"
	"log"
	"math"

	"mbavf"
)

func main() {
	rates := []float64{1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8}
	pts, err := mbavf.MTTFSweep(rates)
	if err != nil {
		log.Fatal(err)
	}

	years := func(h float64) string {
		y := h / (24 * 365.25)
		switch {
		case y >= 1e6:
			return fmt.Sprintf("%.1e yr", y)
		case y >= 1:
			return fmt.Sprintf("%.1f yr", y)
		default:
			return fmt.Sprintf("%.1f d", h/24)
		}
	}

	fmt.Println("MTTF of a 32MB cache: spatial vs temporal multi-bit faults")
	fmt.Printf("%-12s %14s %14s %16s %16s %12s\n",
		"FIT/bit", "spatial 0.1%", "spatial 5%", "temporal (inf)", "temporal (100y)", "gap")
	for _, p := range pts {
		fmt.Printf("%-12.0e %14s %14s %16s %16s %11.0fx\n",
			p.RawFITPerBit,
			years(p.SpatialLow), years(p.SpatialHigh),
			years(p.TemporalInf), years(p.Temporal100yr),
			p.Temporal100yr/p.SpatialLow)
	}

	last := pts[len(pts)-1]
	fmt.Printf("\nat %.0e FIT/bit the spatial-fault MTTF sits %.0f orders of magnitude below the temporal one:\n",
		last.RawFITPerBit, math.Log10(last.Temporal100yr/last.SpatialLow))
	fmt.Println("modeling and remediation effort belongs on spatial multi-bit faults.")
}
