// Interleaving study: compare logical, way-physical and index-physical
// bit interleaving on the L1 cache across workloads and fault-mode sizes —
// the design-space exploration behind the paper's Figures 4 and 6.
//
// The study demonstrates ACE locality: bits written and read together
// (the same cache line) are ACE together, so interleaving a line with
// itself (logical) keeps a multi-bit fault's MB-AVF near the 1x floor,
// while interleaving different lines (physical) pushes it toward the Mx
// ceiling.
package main

import (
	"fmt"
	"log"

	"mbavf"
)

func main() {
	workloadSet := []string{"minife", "matmul", "srad", "comd", "histogram"}
	styles := []mbavf.Style{mbavf.StyleLogical, mbavf.StyleWayPhysical, mbavf.StyleIndexPhysical}

	fmt.Println("2x1 DUE MB-AVF / SB-AVF in the L1 cache, parity, x2 interleaving")
	fmt.Printf("%-12s %10s %12s %12s %12s\n", "workload", "SB-AVF", "logical", "way-phys", "index-phys")
	for _, name := range workloadSet {
		run, err := mbavf.RunWorkload(name)
		if err != nil {
			log.Fatal(err)
		}
		row := make([]float64, len(styles))
		var sb float64
		for i, style := range styles {
			avf, err := run.L1AVF(mbavf.Parity, mbavf.Interleaving{Style: style, Factor: 2}, 2)
			if err != nil {
				log.Fatal(err)
			}
			sb = avf.SBAVF
			if sb > 0 {
				row[i] = avf.DUE / sb
			}
		}
		fmt.Printf("%-12s %9.2f%% %11.2fx %11.2fx %11.2fx\n", name, 100*sb, row[0], row[1], row[2])
	}

	// Fault-mode scaling (Figure 6 shape): larger spatial faults have
	// higher MB-AVF because a bigger group is more likely to contain at
	// least one ACE bit.
	fmt.Println("\nDUE MB-AVF / SB-AVF vs fault-mode size (minife, parity, x4 way-physical)")
	run, err := mbavf.RunWorkload("minife")
	if err != nil {
		log.Fatal(err)
	}
	for m := 2; m <= 8; m++ {
		avf, err := run.L1AVF(mbavf.Parity, mbavf.Interleaving{Style: mbavf.StyleWayPhysical, Factor: 4}, m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %dx1: %.2fx\n", m, avf.DUE/avf.SBAVF)
	}
}
