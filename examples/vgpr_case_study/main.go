// VGPR case study: choose a protection scheme for the GPU vector
// register file to minimize silent data corruption per unit of area —
// the paper's Section VIII design exercise (Figure 11).
//
// Each candidate couples a code (parity or SEC-DED ECC) with a register
// interleaving style: rx interleaves different registers of the same
// thread; tx interleaves the same register across the 16 threads of a
// wavefront. Because a wavefront reads the same register of all its
// threads in lock-step, a detectable error in one thread's slice of an
// inter-thread-interleaved fault is caught before an adjacent thread's
// silent corruption can propagate — the detection-preempts-SDC effect
// that makes cheap parity with tx interleaving beat expensive ECC.
package main

import (
	"fmt"
	"log"

	"mbavf"
)

func main() {
	workloadSet := []string{"minife", "matmul", "srad", "prefixsum"}

	type config struct {
		label  string
		scheme mbavf.Scheme
		style  mbavf.Style
		factor int
	}
	configs := []config{
		{"parity rx2", mbavf.Parity, mbavf.StyleIntraThread, 2},
		{"parity rx4", mbavf.Parity, mbavf.StyleIntraThread, 4},
		{"parity tx2", mbavf.Parity, mbavf.StyleInterThread, 2},
		{"parity tx4", mbavf.Parity, mbavf.StyleInterThread, 4},
		{"sec-ded rx2", mbavf.SECDED, mbavf.StyleIntraThread, 2},
		{"sec-ded tx2", mbavf.SECDED, mbavf.StyleInterThread, 2},
	}

	runs := make(map[string]*mbavf.Run)
	for _, name := range workloadSet {
		r, err := mbavf.RunWorkload(name)
		if err != nil {
			log.Fatal(err)
		}
		runs[name] = r
	}

	fmt.Println("VGPR soft error rates (FIT-weighted over 1x1..8x1 fault modes, mean across workloads)")
	fmt.Printf("%-12s %12s %12s %10s\n", "config", "SDC", "DUE", "area")
	type scored struct {
		label string
		sdc   float64
	}
	var results []scored
	for _, cfg := range configs {
		var sdc, due float64
		for _, name := range workloadSet {
			ser, err := runs[name].VGPRSER(cfg.scheme, mbavf.Interleaving{Style: cfg.style, Factor: cfg.factor})
			if err != nil {
				log.Fatal(err)
			}
			sdc += ser.SDC
			due += ser.DUE
		}
		sdc /= float64(len(workloadSet))
		due /= float64(len(workloadSet))
		overhead, err := cfg.scheme.CheckBitOverhead(32)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %12.4f %12.4f %9.1f%%\n", cfg.label, sdc, due, 100*overhead)
		results = append(results, scored{cfg.label, sdc})
	}

	best := results[0]
	for _, r := range results[1:] {
		if r.sdc < best.sdc {
			best = r
		}
	}
	fmt.Printf("\nlowest SDC: %s", best.label)
	for _, r := range results {
		if r.label == "sec-ded rx2" && best.sdc < r.sdc {
			fmt.Printf(" — %.0f%% below sec-ded rx2 at a fraction of the area",
				100*(1-best.sdc/r.sdc))
		}
	}
	fmt.Println()
}
