// Custom kernel: analyze the multi-bit vulnerability of your own GPU
// kernel, written in the library's assembler syntax.
//
// The kernel below is a blocked dot product: each thread accumulates a
// strided slice of two vectors, writing one partial sum. We then measure
// how its register and cache footprints respond to protection choices.
package main

import (
	"fmt"
	"log"
	"math"

	"mbavf"
)

const dotAsm = `
; partial dot product: out[t] = sum over i of x[t*K+i]*y[t*K+i]
; args: s0=&x, s1=&y, s2=&out, s3=K (elements per thread)
v_mov   v0, tid
v_mov   v1, s3
v_mul   v1, v0, v1       ; first element index
v_shl   v1, v1, 2
v_add   v2, v1, s0       ; x walker
v_add   v3, v1, s1       ; y walker
v_mov   v4, 0.0f         ; acc
s_mov   s4, s3
loop:
v_load  v5, [v2]
v_load  v6, [v3]
v_fmad  v4, v5, v6, v4
v_add   v2, v2, 4
v_add   v3, v3, 4
s_sub   s4, s4, 1
s_brnz  s4, loop
v_shl   v7, v0, 2
v_add   v7, v7, s2
v_store [v7], v4
s_endpgm
`

func main() {
	kernel, err := mbavf.AssembleKernel("dot", dotAsm)
	if err != nil {
		log.Fatal(err)
	}

	const (
		threads = 256
		perThr  = 16
		n       = threads * perThr
	)
	c, err := mbavf.NewCustom()
	if err != nil {
		log.Fatal(err)
	}
	x := make([]uint32, n)
	y := make([]uint32, n)
	for i := range x {
		x[i] = fbits(float32(i%97) / 97)
		y[i] = fbits(float32(i%53) / 53)
	}
	xAddr := c.Input(x)
	yAddr := c.Input(y)
	outAddr := c.Output(threads)
	c.Dispatch(kernel, threads/16, xAddr, yAddr, outAddr, perThr)
	run, err := c.Finish()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dot kernel: %d cycles, %d instructions\n\n", run.Cycles(), run.Instructions())

	fmt.Println("L1 vulnerability of the custom kernel (2x1 faults):")
	for _, style := range []mbavf.Style{mbavf.StyleLogical, mbavf.StyleWayPhysical, mbavf.StyleIndexPhysical} {
		avf, err := run.L1AVF(mbavf.Parity, mbavf.Interleaving{Style: style, Factor: 2}, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s DUE MB-AVF %.4f (%.2fx SB-AVF %.4f)\n",
			style, avf.DUE, ratio(avf.DUE, avf.SBAVF), avf.SBAVF)
	}

	fmt.Println("\nVGPR SER under candidate protections (Table III rates):")
	for _, cfg := range []struct {
		scheme mbavf.Scheme
		style  mbavf.Style
	}{
		{mbavf.Parity, mbavf.StyleIntraThread},
		{mbavf.Parity, mbavf.StyleInterThread},
		{mbavf.SECDED, mbavf.StyleInterThread},
	} {
		ser, err := run.VGPRSER(cfg.scheme, mbavf.Interleaving{Style: cfg.style, Factor: 2})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s %-14s SDC %.4f  DUE %.4f\n", cfg.scheme, cfg.style, ser.SDC, ser.DUE)
	}
}

func fbits(f float32) uint32 { return math.Float32bits(f) }

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
